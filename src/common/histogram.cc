#include "common/histogram.hh"

#include <stdexcept>

namespace lrs
{

void
Log2Histogram::merge(const Log2Histogram &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    if (count_ == 0 || other.max_ > max_)
        max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    for (std::size_t b = 0; b < kBuckets; ++b)
        buckets_[b] += other.buckets_[b];
}

void
Log2Histogram::reset()
{
    count_ = sum_ = min_ = max_ = 0;
    buckets_.fill(0);
}

json::Value
Log2Histogram::toJson() const
{
    json::Value v = json::Value::object();
    v.set("count", json::Value(count_));
    v.set("sum", json::Value(sum_));
    v.set("min", json::Value(min()));
    v.set("max", json::Value(max()));
    std::size_t last = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        if (buckets_[b])
            last = b + 1;
    }
    json::Value arr = json::Value::array();
    for (std::size_t b = 0; b < last; ++b)
        arr.push(json::Value(buckets_[b]));
    v.set("buckets", std::move(arr));
    return v;
}

Log2Histogram
Log2Histogram::fromJson(const json::Value &v)
{
    Log2Histogram h;
    h.count_ = v.at("count").asU64();
    h.sum_ = v.at("sum").asU64();
    h.min_ = v.at("min").asU64();
    h.max_ = v.at("max").asU64();
    const json::Value &arr = v.at("buckets");
    if (arr.size() > kBuckets)
        throw std::runtime_error("Log2Histogram: too many buckets");
    for (std::size_t b = 0; b < arr.size(); ++b)
        h.buckets_[b] = arr.at(b).asU64();
    return h;
}

} // namespace lrs
