/**
 * @file
 * Deterministic fixed-bucket histograms for the telemetry layer.
 *
 * Distributions in the simulator (load-to-use delay, replay distance,
 * window occupancy, predictor confidence) span several orders of
 * magnitude, so the histogram uses fixed log2 buckets: bucket 0 holds
 * the value 0 and bucket k (k >= 1) holds [2^(k-1), 2^k). All
 * bookkeeping — per-bucket counts and the exact min/max/sum — is
 * plain unsigned 64-bit arithmetic, which makes two properties fall
 * out for free:
 *
 *  - merge() is an exact element-wise add, so merging per-cell
 *    histograms in slot (cell-id) order produces bit-identical
 *    aggregates for any SimJobPool worker count (the determinism
 *    contract, docs/PARALLELISM.md);
 *  - the JSON export round-trips exactly (json::Value stores 64-bit
 *    integers natively; nothing is squeezed through a double).
 *
 * Sums may wrap modulo 2^64 on astronomically long runs; wrapping is
 * itself deterministic so merges and comparisons stay exact.
 */

#ifndef LRS_COMMON_HISTOGRAM_HH
#define LRS_COMMON_HISTOGRAM_HH

#include <array>
#include <bit>
#include <cstdint>

#include "common/json.hh"

namespace lrs
{

/** A mergeable log2-bucketed histogram over unsigned 64-bit samples. */
class Log2Histogram
{
  public:
    /** Bucket 0 = {0}; bucket k = [2^(k-1), 2^k) for k in 1..64. */
    static constexpr std::size_t kBuckets = 65;

    /** Bucket index for @p v (== bit width of v). */
    static constexpr std::size_t
    bucketOf(std::uint64_t v)
    {
        return static_cast<std::size_t>(std::bit_width(v));
    }

    /** Inclusive lower bound of bucket @p b (0, 1, 2, 4, 8, ...). */
    static constexpr std::uint64_t
    bucketLow(std::size_t b)
    {
        return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
    }

    void
    record(std::uint64_t v)
    {
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        ++count_;
        sum_ += v;
        ++buckets_[bucketOf(v)];
    }

    /**
     * Record @p n identical samples of value @p v in O(1). Exactly
     * equivalent (including modulo-2^64 sum wrapping) to calling
     * record(v) @p n times — the bulk-accounting primitive the core's
     * idle-cycle skip-ahead relies on (docs/PERFORMANCE.md).
     */
    void
    record(std::uint64_t v, std::uint64_t n)
    {
        if (n == 0)
            return;
        if (count_ == 0 || v < min_)
            min_ = v;
        if (count_ == 0 || v > max_)
            max_ = v;
        count_ += n;
        sum_ += v * n;
        buckets_[bucketOf(v)] += n;
    }

    /** Element-wise exact add of @p other into this histogram. */
    void merge(const Log2Histogram &other);

    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    /** Exact extrema; both 0 while the histogram is empty. */
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }
    std::uint64_t bucket(std::size_t b) const { return buckets_.at(b); }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Export as {"count","sum","min","max","buckets":[...]} with the
     * bucket array trimmed after the last non-zero bucket (an empty
     * histogram exports an empty array). All fields are exact.
     */
    json::Value toJson() const;

    /** Rebuild from a toJson() document (throws on malformed input). */
    static Log2Histogram fromJson(const json::Value &v);

  private:
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    std::array<std::uint64_t, kBuckets> buckets_{};
};

} // namespace lrs

#endif // LRS_COMMON_HISTOGRAM_HH
