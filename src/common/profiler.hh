/**
 * @file
 * Host-time self-profiler for the simulator's own pipeline stages.
 *
 * Answers "where does the host CPU spend its wall time?" — the
 * measurement baseline any cycle-kernel optimisation (the planned SoA
 * refactor, ROADMAP item 1) is judged against. The core brackets each
 * stage (rename/fetch, schedule, execute, commit, predictor lookup)
 * with a scoped RAII timer; `lrs_sim --profile` turns collection on
 * and reports a per-stage breakdown plus end-to-end uops/sec.
 *
 * Design constraints, in order:
 *
 *  - The *off* path must be free: a Scope constructed while profiling
 *    is disabled does one relaxed atomic load and nothing else, so
 *    the instrumented core stays byte- and speed-identical when the
 *    flag is off (tools/check_overhead.sh enforces this).
 *  - Self time, not inclusive time: nested scopes subtract their own
 *    total from the enclosing scope, so the per-stage numbers sum to
 *    the instrumented total instead of double-counting (predictor
 *    lookups nest inside rename/execute; execute nests inside the
 *    schedule scan).
 *  - Per-worker accumulation: samples land in a thread-local block
 *    (registered once per thread under a mutex); report() sums the
 *    blocks, so SimJobPool workers profile without sharing a cache
 *    line. Host timing is inherently non-deterministic, so profiler
 *    output is only ever emitted on the side (stderr / a "profile"
 *    JSON block behind --profile), never into byte-compared tables.
 *
 * The clock is rdtsc on x86-64 (calibrated once against
 * steady_clock), and steady_clock elsewhere.
 */

#ifndef LRS_COMMON_PROFILER_HH
#define LRS_COMMON_PROFILER_HH

#include <atomic>
#include <cstdint>

#include "common/json.hh"

namespace lrs::prof
{

/** Simulator stages the core brackets with Scope timers. */
enum class Stage
{
    Rename,  ///< fetch/rename/dispatch front end
    Issue,   ///< scheduling-window wakeup/select scan
    Execute, ///< functional execution + memory timing
    Commit,  ///< in-order retirement
    Predict, ///< CHT / HMP / bank predictor lookups
};
constexpr std::size_t kNumStages = 5;

/** Names matching Stage, for reports. */
const char *stageName(Stage s);

/** Globally enable/disable collection (default off). */
void setEnabled(bool on);

inline std::atomic<bool> g_enabled{false};

inline bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

/** Read the calibrated tick clock (ticks; see ticksPerSecond()). */
std::uint64_t nowTicks();

/** Tick rate of nowTicks(), calibrated once per process. */
double ticksPerSecond();

/**
 * RAII stage bracket. Cheap no-op while profiling is disabled. On
 * destruction, attributes its *self* time (total minus nested child
 * scopes) to the stage in this thread's accumulator block.
 */
class Scope
{
  public:
    explicit Scope(Stage s);
    ~Scope();

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    Stage stage_;
    bool active_;
    std::uint64_t start_ = 0;
    std::uint64_t childTicks_ = 0;
    Scope *parent_ = nullptr;
};

/** Zero every registered thread block (between runs). */
void resetAll();

/** Sum of self-ticks attributed to @p s across all threads. */
std::uint64_t stageTicks(Stage s);

/**
 * Aggregate report: per-stage seconds + share of the instrumented
 * total, the total, and uops/sec derived from @p uops and
 * @p wallSeconds (end-to-end wall time measured by the caller).
 */
json::Value reportJson(std::uint64_t uops, double wallSeconds);

/** Human-readable rendering of reportJson() for stderr. */
std::string reportText(std::uint64_t uops, double wallSeconds);

} // namespace lrs::prof

#endif // LRS_COMMON_PROFILER_HH
