#include "common/fault_injector.hh"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/parse.hh"

namespace lrs
{

namespace
{

double
envRate(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    const double d = std::strtod(v, &end);
    if (end == v || *end != '\0' || d < 0.0 || d > 1.0)
        return fallback;
    return d;
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    // Strict base-10 only: the old strtoull(.., 0) path accepted
    // "-1" (wrapping to 2^64-1) and clamped out-of-range input to
    // ULLONG_MAX without any errno check. Bad overrides now warn and
    // keep the fallback instead of silently injecting with a
    // nonsense seed or latency bound.
    std::uint64_t n = 0;
    if (!tryParseU64(v, n)) {
        std::fprintf(stderr,
                     "lrs: ignoring %s='%s' (want a base-10 unsigned "
                     "64-bit integer); using %llu\n",
                     name, v,
                     static_cast<unsigned long long>(fallback));
        return fallback;
    }
    return n;
}

} // namespace

FaultConfig
FaultConfig::fromEnv()
{
    FaultConfig cfg;
    cfg.seed = envU64("LRS_FAULT_SEED", cfg.seed);
    cfg.traceRate = envRate("LRS_FAULT_TRACE_RATE", cfg.traceRate);
    cfg.bitRate = envRate("LRS_FAULT_BIT_RATE", cfg.bitRate);
    cfg.latRate = envRate("LRS_FAULT_LAT_RATE", cfg.latRate);
    cfg.maxLatencyDelta =
        envU64("LRS_FAULT_LAT_MAX", cfg.maxLatencyDelta);
    if (cfg.maxLatencyDelta == 0)
        cfg.maxLatencyDelta = 1;
    return cfg;
}

bool
FaultInjector::corruptRecord(std::uint8_t *record, std::size_t size)
{
    if (size == 0 || cfg_.traceRate <= 0.0 ||
        !rng_.chance(cfg_.traceRate)) {
        return false;
    }
    // 1..3 byte sites, random values. A same-value rewrite is
    // possible and fine: the *rate* stats count corruption attempts,
    // the reader's stats count what it actually had to skip.
    const std::size_t sites =
        1 + static_cast<std::size_t>(rng_.below(3));
    for (std::size_t i = 0; i < sites; ++i) {
        record[rng_.below(size)] =
            static_cast<std::uint8_t>(rng_.next());
    }
    ++traceFaults_;
    return true;
}

std::size_t
FaultInjector::corruptBuffer(std::uint8_t *data, std::size_t size,
                             std::size_t protect_prefix,
                             std::size_t record_bytes)
{
    if (record_bytes == 0 || size <= protect_prefix)
        return 0;
    std::size_t corrupted = 0;
    for (std::size_t off = protect_prefix;
         off + record_bytes <= size; off += record_bytes) {
        if (corruptRecord(data + off, record_bytes))
            ++corrupted;
    }
    return corrupted;
}

void
FaultInjector::registerStats(StatsGroup g)
{
    g.bindCounter("trace_records_corrupted", &traceFaults_,
                  "trace records corrupted by the injector");
    g.bindCounter("predictor_bit_flips", &bitFlips_,
                  "predictor table bits flipped by the injector");
    g.bindCounter("latency_perturbs", &latencyPerturbs_,
                  "memory accesses with injected extra latency");
    g.derived("trace_rate", [this] { return cfg_.traceRate; },
              "configured per-record trace corruption probability");
    g.derived("bit_rate", [this] { return cfg_.bitRate; },
              "configured per-query bit-flip probability");
    g.derived("lat_rate", [this] { return cfg_.latRate; },
              "configured per-access latency perturbation probability");
}

} // namespace lrs
