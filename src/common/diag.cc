#include "common/diag.hh"

namespace lrs
{

const char *
diagCodeName(DiagCode code)
{
    switch (code) {
      case DiagCode::ConfigInvalid:       return "E_CONFIG_INVALID";
      case DiagCode::ConfigUnknownKey:    return "E_CONFIG_UNKNOWN_KEY";
      case DiagCode::ConfigSyntax:        return "E_CONFIG_SYNTAX";
      case DiagCode::TraceBadMagic:       return "E_TRACE_BAD_MAGIC";
      case DiagCode::TraceBadHeader:      return "E_TRACE_BAD_HEADER";
      case DiagCode::TraceTruncated:      return "E_TRACE_TRUNCATED";
      case DiagCode::TraceBadRecord:      return "E_TRACE_BAD_RECORD";
      case DiagCode::TraceBudgetExceeded:
        return "E_TRACE_BUDGET_EXCEEDED";
      case DiagCode::TraceLimitExceeded:
        return "E_TRACE_LIMIT_EXCEEDED";
      case DiagCode::IoOpenFailed:        return "E_IO_OPEN_FAILED";
      case DiagCode::IoWriteFailed:       return "E_IO_WRITE_FAILED";
      case DiagCode::AuditViolation:      return "E_AUDIT_VIOLATION";
      case DiagCode::DataInvalid:         return "E_DATA_INVALID";
      case DiagCode::DeadlineExceeded:    return "E_DEADLINE_EXCEEDED";
      case DiagCode::Interrupted:         return "E_INTERRUPTED";
      case DiagCode::JournalInvalid:      return "E_JOURNAL_INVALID";
      case DiagCode::CellCrashed:         return "E_CELL_CRASHED";
      case DiagCode::ProtocolError:       return "E_PROTOCOL";
      case DiagCode::QuotaExceeded:       return "E_QUOTA_EXCEEDED";
      case DiagCode::Draining:            return "E_DRAINING";
      case DiagCode::NotFound:            return "E_NOT_FOUND";
      case DiagCode::Internal:            return "E_INTERNAL";
    }
    return "E_UNKNOWN";
}

std::string
Diag::toString() const
{
    std::string s = "[" + component + "] ";
    s += diagCodeName(code);
    if (!param.empty())
        s += " " + param;
    s += ": " + message;
    if (cycle != 0)
        s += " (cycle " + std::to_string(cycle) + ")";
    return s;
}

Diag
makeDiag(DiagCode code, std::string component, std::string param,
         std::string message, std::uint64_t cycle)
{
    Diag d;
    d.code = code;
    d.component = std::move(component);
    d.param = std::move(param);
    d.message = std::move(message);
    d.cycle = cycle;
    return d;
}

std::string
formatDiags(const std::vector<Diag> &diags)
{
    if (diags.empty())
        return "unspecified error";
    std::string s;
    for (std::size_t i = 0; i < diags.size(); ++i) {
        if (i > 0)
            s += "\n";
        s += diags[i].toString();
    }
    if (diags.size() > 1) {
        s += "\n(" + std::to_string(diags.size()) +
             " violations reported)";
    }
    return s;
}

void
throwConfig(std::string component, std::string param,
            std::string message)
{
    throw ConfigError(makeDiag(DiagCode::ConfigInvalid,
                               std::move(component), std::move(param),
                               std::move(message)));
}

} // namespace lrs
