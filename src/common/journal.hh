/**
 * @file
 * Crash-safe checkpoint journal for batch sweeps.
 *
 * A journal is an append-only JSONL file: one line per record, each
 * line framed as
 *
 *     LRSJ1 <crc32:8 lowercase hex> <compact JSON object>\n
 *
 * where the CRC-32 covers exactly the JSON bytes. Appends go through a
 * POSIX O_APPEND descriptor as a single write() followed by fsync(),
 * so a record is either durably complete or entirely absent — a
 * SIGKILL (or power cut) mid-sweep can at worst truncate the final
 * line, never interleave or tear earlier ones.
 *
 * The reader is built for exactly that failure model plus plain disk
 * corruption: it validates every line independently (framing, CRC,
 * JSON parse) and *resynchronises on the next newline* when a line is
 * damaged, so a corrupt record in the middle of the file costs that
 * one record, and a truncated tail costs only the torn line. Every
 * drop is counted in JournalReadStats — recovery is silent to the
 * caller's control flow but never to its accounting.
 *
 * The journal stores JSON values, not domain types: the sweep
 * supervisor (core/supervisor.hh) defines the record schema and owns
 * resume semantics. See docs/ROBUSTNESS.md ("Sweep supervisor").
 */

#ifndef LRS_COMMON_JOURNAL_HH
#define LRS_COMMON_JOURNAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"

namespace lrs
{

/** Recovery accounting of one readJournal() pass. */
struct JournalReadStats
{
    /** Records that validated (framing + CRC + JSON parse). */
    std::uint64_t records = 0;
    /** Lines dropped: bad framing, CRC mismatch, or unparsable JSON. */
    std::uint64_t badLines = 0;
    /** Bytes discarded with those lines. */
    std::uint64_t droppedBytes = 0;
    /** The file ended mid-line (torn final append). */
    bool truncatedTail = false;
    /** 1-based line number of the first damaged record (0 = none). */
    std::uint64_t firstBadLine = 0;
    /** Byte offset of that line's first byte in the file. */
    std::uint64_t firstBadOffset = 0;
};

/**
 * Append-only journal writer. Records are durable on return from
 * append(): the line is written with one write() on an O_APPEND
 * descriptor and fsync()ed before append() returns. Throws IoError
 * on any failure (open, write, sync) — a checkpoint that may or may
 * not exist is worse than a loud stop.
 */
class JournalWriter
{
  public:
    /**
     * Open @p path for appending, creating it if needed. With
     * @p truncate the file is emptied first (a fresh, non-resumed
     * sweep must not inherit a stale journal's records).
     */
    explicit JournalWriter(std::string path, bool truncate = false);
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Serialize @p record compactly, frame it, append, fsync. */
    void append(const json::Value &record);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    int fd_ = -1;
};

/**
 * Read every valid record of the journal at @p path, in file order,
 * resyncing past damaged lines (see file comment). Throws IoError if
 * the file cannot be opened or read at the byte level; content damage
 * is never an exception, only JournalReadStats accounting.
 */
std::vector<json::Value> readJournal(const std::string &path,
                                     JournalReadStats *stats = nullptr);

/** Frame one record line exactly as JournalWriter::append() writes it
 *  (exposed for tests and external tooling). Includes the newline. */
std::string journalLine(const json::Value &record);

} // namespace lrs

#endif // LRS_COMMON_JOURNAL_HH
