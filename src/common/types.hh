/**
 * @file
 * Fundamental scalar types shared by every loadsched module.
 *
 * The simulator is cycle driven; all timestamps are expressed in core
 * clock cycles as unsigned 64-bit integers. Memory addresses are linear
 * (flat) 64-bit byte addresses, matching the paper's linear instruction
 * pointer / linear data address terminology.
 */

#ifndef LRS_COMMON_TYPES_HH
#define LRS_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace lrs
{

/** A linear byte address (data or instruction pointer). */
using Addr = std::uint64_t;

/** A point in time or a duration, in core clock cycles. */
using Cycle = std::uint64_t;

/** Dynamic sequence number of a micro-operation within a trace. */
using SeqNum = std::uint64_t;

/** A cycle value meaning "not yet known / never". */
constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/** An invalid/absent address marker. */
constexpr Addr kAddrInvalid = std::numeric_limits<Addr>::max();

} // namespace lrs

#endif // LRS_COMMON_TYPES_HH
