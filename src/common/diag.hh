/**
 * @file
 * Structured diagnostics.
 *
 * Every error the simulator can report carries a Diag: a machine-
 * readable code, the component that detected it, the offending
 * parameter (when there is one) and an actionable message including
 * the rejected value. Validation routines return *all* violations at
 * once (a user fixing a config file should not play whack-a-mole),
 * and the exception types below carry the full Diag list so front
 * ends can map error classes to distinct exit codes.
 *
 * Exception taxonomy (what a front end should do with each):
 *  - ConfigError: the machine/predictor configuration is invalid.
 *    Derives from std::invalid_argument. Fix the config; exit code 3.
 *  - IoError: a file could not be opened/read/written. Derives from
 *    std::runtime_error; exit code 4.
 *  - TraceError: a trace stream is malformed beyond recovery (bad
 *    header, truncation in strict mode, bad-record budget exhausted).
 *    Derives from IoError; exit code 4.
 *  - AuditError: the invariant auditor found corrupted simulator
 *    state — results cannot be trusted. Derives from
 *    std::runtime_error; exit code 1.
 */

#ifndef LRS_COMMON_DIAG_HH
#define LRS_COMMON_DIAG_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace lrs
{

/** Machine-readable diagnostic classes. */
enum class DiagCode : std::uint8_t
{
    ConfigInvalid,       ///< a parameter value is out of range
    ConfigUnknownKey,    ///< config file references no known key
    ConfigSyntax,        ///< config file line is not "key = value"
    TraceBadMagic,       ///< stream does not start with LRSTRC01
    TraceBadHeader,      ///< implausible name length / header fields
    TraceTruncated,      ///< stream ended mid-record
    TraceBadRecord,      ///< record failed field validation
    TraceBudgetExceeded, ///< recovery skipped more records than allowed
    TraceLimitExceeded,  ///< trace exceeds a hard resource cap
    IoOpenFailed,        ///< cannot open a file
    IoWriteFailed,       ///< write/flush failed
    AuditViolation,      ///< a structural invariant does not hold
    DataInvalid,         ///< a result/aggregation value is unusable
    DeadlineExceeded,    ///< a cycle/wall-clock budget ran out
    Interrupted,         ///< SIGINT/SIGTERM requested a clean stop
    JournalInvalid,      ///< checkpoint journal rejected (grid mismatch)
    CellCrashed,         ///< an isolated sweep cell died abnormally
    ProtocolError,       ///< a service client sent an unintelligible line
    QuotaExceeded,       ///< a service client exceeded an admission quota
    Draining,            ///< the service is shutting down; no new work
    NotFound,            ///< a referenced submission does not exist
    Internal,            ///< should-not-happen simulator defect
};

/** Stable identifier string, e.g. "E_CONFIG_INVALID". */
const char *diagCodeName(DiagCode code);

/**
 * One structured diagnostic.
 */
struct Diag
{
    DiagCode code = DiagCode::Internal;
    /** Component that detected the problem, e.g. "pred.cht". */
    std::string component;
    /** Offending parameter, e.g. "entries"; empty when N/A. */
    std::string param;
    /** Actionable message including the offending value. */
    std::string message;
    /** Simulation cycle when applicable (audit diags); 0 otherwise. */
    std::uint64_t cycle = 0;

    /** "[pred.cht] E_CONFIG_INVALID entries: must be ... (got 100)" */
    std::string toString() const;
};

/** Build a Diag in one expression. */
Diag makeDiag(DiagCode code, std::string component, std::string param,
              std::string message, std::uint64_t cycle = 0);

/** Render a list of diags one per line (for exception messages). */
std::string formatDiags(const std::vector<Diag> &diags);

/**
 * Mixin carrying the structured diagnostics of an error. The concrete
 * exception types below multiply inherit from this and the std
 * exception matching their established catch sites.
 */
class DiagnosticError
{
  public:
    virtual ~DiagnosticError() = default;

    const std::vector<Diag> &diags() const { return diags_; }

  protected:
    explicit DiagnosticError(std::vector<Diag> diags)
        : diags_(std::move(diags))
    {
    }

    std::vector<Diag> diags_;
};

/**
 * Invalid machine/predictor/trace-generator configuration. Thrown
 * unconditionally (never compiled out): a bad config in a Release
 * build must fail fast, not silently produce wrong numbers.
 */
class ConfigError : public std::invalid_argument,
                    public DiagnosticError
{
  public:
    explicit ConfigError(std::vector<Diag> diags)
        : std::invalid_argument(formatDiags(diags)),
          DiagnosticError(std::move(diags))
    {
    }

    explicit ConfigError(Diag d)
        : ConfigError(std::vector<Diag>{std::move(d)})
    {
    }
};

/** File-level I/O failure (open/read/write). */
class IoError : public std::runtime_error, public DiagnosticError
{
  public:
    explicit IoError(std::vector<Diag> diags)
        : std::runtime_error(formatDiags(diags)),
          DiagnosticError(std::move(diags))
    {
    }

    explicit IoError(Diag d) : IoError(std::vector<Diag>{std::move(d)})
    {
    }
};

/** Malformed trace content (strict mode or exhausted budget). */
class TraceError : public IoError
{
  public:
    using IoError::IoError;
};

/** The invariant auditor found corrupted simulator state. */
class AuditError : public std::runtime_error, public DiagnosticError
{
  public:
    explicit AuditError(std::vector<Diag> diags)
        : std::runtime_error(formatDiags(diags)),
          DiagnosticError(std::move(diags))
    {
    }
};

/**
 * A deterministic cycle budget (MachineConfig::maxCycles) or the
 * sweep supervisor's wall-clock watchdog expired. Batch runners map
 * this to the TIMEOUT cell outcome instead of treating it as a
 * generic failure — a cell that ran out of budget is recoverable
 * information, not corruption.
 */
class DeadlineError : public std::runtime_error, public DiagnosticError
{
  public:
    explicit DeadlineError(Diag d)
        : std::runtime_error(d.toString()),
          DiagnosticError(std::vector<Diag>{std::move(d)})
    {
    }
};

/**
 * A cooperative cancellation (SIGINT/SIGTERM via
 * requestSweepInterrupt()) unwound the simulation. The sweep
 * supervisor records the cell as not-run so --resume re-executes it;
 * lrs_sim exits with its distinct "interrupted" code.
 */
class InterruptError : public std::runtime_error, public DiagnosticError
{
  public:
    explicit InterruptError(Diag d)
        : std::runtime_error(d.toString()),
          DiagnosticError(std::vector<Diag>{std::move(d)})
    {
    }
};

/**
 * Convenience for constructor parameter checks: throw a single-Diag
 * ConfigError. Used where assert() used to live — unlike assert this
 * is active in every build type.
 */
[[noreturn]] void throwConfig(std::string component, std::string param,
                              std::string message);

} // namespace lrs

#endif // LRS_COMMON_DIAG_HH
