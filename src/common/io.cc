#include "common/io.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "common/diag.hh"

namespace lrs
{

bool
writeFully(int fd, const void *data, std::size_t len) noexcept
{
    const char *p = static_cast<const char *>(data);
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::write(fd, p + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

void
writeFullyOrThrow(int fd, std::string_view s,
                  const std::string &component,
                  const std::string &path)
{
    errno = 0;
    if (writeFully(fd, s))
        return;
    throw IoError(makeDiag(DiagCode::IoWriteFailed, component, "path",
                           "write failed: " + path + " (" +
                               std::strerror(errno) + ")"));
}

} // namespace lrs
