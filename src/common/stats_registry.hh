/**
 * @file
 * Named, hierarchically grouped statistics registry.
 *
 * Components (the core, the MOB, each cache level, each predictor)
 * register their counters/distributions/histograms under dotted names
 * ("core.retire.uops", "mem.l1.hits", "pred.cht.updates"); the
 * registry then provides uniform reset, lookup, and JSON export —
 * replacing per-component hand-rolled printf tables as the
 * machine-readable output path.
 *
 * Three registration styles:
 *  - owned:   the registry allocates the stat and hands back a
 *             reference the component increments (`counter()`,
 *             `distribution()`, `histogram()`);
 *  - bound:   the stat lives in the component (e.g. a SimResult
 *             field) and the registry holds a pointer
 *             (`bindCounter()`), so existing struct-field tallies
 *             keep working while gaining a name;
 *  - derived: a getter evaluated at export time (`derived()`), for
 *             rates and component-internal values exposed through
 *             accessors (e.g. cache hit counts).
 *
 * Names must be unique; re-registering a name throws
 * std::logic_error. Export order is registration order.
 */

#ifndef LRS_COMMON_STATS_REGISTRY_HH
#define LRS_COMMON_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/json.hh"
#include "common/stats.hh"

namespace lrs
{

class StatsGroup;

class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /** Register an owned counter; returns the counter to increment. */
    Counter &counter(const std::string &name,
                     const std::string &desc = "");

    /** Register a counter living elsewhere (e.g. a SimResult field). */
    void bindCounter(const std::string &name, std::uint64_t *slot,
                     const std::string &desc = "");

    /** Register an owned distribution. */
    Distribution &distribution(const std::string &name,
                               const std::string &desc = "");

    /** Register an owned histogram. */
    Histogram &histogram(const std::string &name,
                         std::size_t num_buckets, double bucket_width,
                         const std::string &desc = "");

    /** Register an owned log2 histogram (common/histogram.hh). */
    Log2Histogram &log2hist(const std::string &name,
                            const std::string &desc = "");

    /** Register a derived (computed-at-export) scalar. */
    void derived(const std::string &name,
                 std::function<double()> getter,
                 const std::string &desc = "");

    /** A prefixed view for hierarchical registration. */
    StatsGroup group(const std::string &prefix);

    bool has(const std::string &name) const;
    std::size_t size() const { return stats_.size(); }

    /** Names in registration order. */
    std::vector<std::string> names() const;

    /**
     * Current scalar value of a stat: counter value, distribution
     * mean, histogram total, or derived getter result. Throws
     * std::out_of_range for unknown names.
     */
    double value(const std::string &name) const;

    /** Zero every owned and bound stat (derived stats are views). */
    void reset();

    /**
     * Export as a nested JSON object: dotted names become nested
     * objects ("mem.l1.hits" -> {"mem":{"l1":{"hits":N}}}).
     * Distributions and histograms export their component values as
     * sub-objects.
     */
    json::Value toJson() const;

  private:
    enum class Kind
    {
        OwnedCounter,
        BoundCounter,
        OwnedDistribution,
        OwnedHistogram,
        OwnedLog2Histogram,
        Derived,
    };

    struct Stat
    {
        std::string name;
        std::string desc;
        Kind kind;
        std::unique_ptr<Counter> ownedCounter;
        std::uint64_t *boundCounter = nullptr;
        std::unique_ptr<Distribution> dist;
        std::unique_ptr<Histogram> hist;
        std::unique_ptr<Log2Histogram> log2hist;
        std::function<double()> getter;
    };

    Stat &add(const std::string &name, const std::string &desc,
              Kind kind);

    json::Value leafJson(const Stat &s) const;

    std::vector<std::unique_ptr<Stat>> stats_; ///< registration order
};

/**
 * Thin prefixing view over a registry: group("mem").counter("l1.hits")
 * registers "mem.l1.hits". Groups may be nested.
 */
class StatsGroup
{
  public:
    StatsGroup(StatsRegistry &reg, std::string prefix)
        : reg_(reg), prefix_(std::move(prefix))
    {}

    Counter &
    counter(const std::string &name, const std::string &desc = "")
    {
        return reg_.counter(join(name), desc);
    }

    void
    bindCounter(const std::string &name, std::uint64_t *slot,
                const std::string &desc = "")
    {
        reg_.bindCounter(join(name), slot, desc);
    }

    Distribution &
    distribution(const std::string &name, const std::string &desc = "")
    {
        return reg_.distribution(join(name), desc);
    }

    Histogram &
    histogram(const std::string &name, std::size_t num_buckets,
              double bucket_width, const std::string &desc = "")
    {
        return reg_.histogram(join(name), num_buckets, bucket_width,
                              desc);
    }

    Log2Histogram &
    log2hist(const std::string &name, const std::string &desc = "")
    {
        return reg_.log2hist(join(name), desc);
    }

    void
    derived(const std::string &name, std::function<double()> getter,
            const std::string &desc = "")
    {
        reg_.derived(join(name), std::move(getter), desc);
    }

    StatsGroup
    group(const std::string &sub)
    {
        return StatsGroup(reg_, join(sub));
    }

    const std::string &prefix() const { return prefix_; }

  private:
    std::string
    join(const std::string &name) const
    {
        return prefix_.empty() ? name : prefix_ + "." + name;
    }

    StatsRegistry &reg_;
    std::string prefix_;
};

} // namespace lrs

#endif // LRS_COMMON_STATS_REGISTRY_HH
