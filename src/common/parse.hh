/**
 * @file
 * Strict unsigned-integer parsing shared by every config surface.
 *
 * The standard library conversions are booby-trapped for config use:
 * std::stoull("-1") does not throw — it wraps to 2^64−1 (the C
 * heritage of strtoull, which negates the magnitude), so an ini line
 * like `max_cycles = -1` silently became "effectively unbounded".
 * strtoull also accepts leading whitespace and a '+' sign, and with
 * errno unchecked it clamps out-of-range input to ULLONG_MAX instead
 * of failing. Three near-copies of that mistake grew in grid.cc,
 * config_io.cc and fault_injector.cc; this header is the one shared
 * discipline that replaces them (and backs envU64 in runner.cc).
 *
 * tryParseU64() accepts exactly the canonical base-10 spelling of an
 * unsigned 64-bit integer: one or more ASCII digits, nothing else.
 * No sign, no whitespace, no hex/octal prefix, no partial consumption,
 * and overflow past 2^64−1 is rejected rather than clamped.
 */

#ifndef LRS_COMMON_PARSE_HH
#define LRS_COMMON_PARSE_HH

#include <cstdint>
#include <string_view>

namespace lrs
{

/**
 * Parse @p s as a strict base-10 unsigned 64-bit integer into
 * @p out. Returns false — leaving @p out untouched — unless @p s is
 * entirely ASCII digits and the value fits in 64 bits. Rejects the
 * empty string, leading '-'/'+', whitespace anywhere, and overflow.
 */
bool tryParseU64(std::string_view s, std::uint64_t &out) noexcept;

} // namespace lrs

#endif // LRS_COMMON_PARSE_HH
