/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything stochastic in the synthetic trace generator flows from a
 * single per-trace seed through this generator, so every simulation run
 * is bit-reproducible across hosts and build modes. The implementation
 * is xorshift128+ (fast, decent statistical quality, trivially
 * portable); it is NOT intended for cryptographic use.
 */

#ifndef LRS_COMMON_RANDOM_HH
#define LRS_COMMON_RANDOM_HH

#include <cassert>
#include <cstdint>
#include <initializer_list>

namespace lrs
{

/**
 * Deterministic xorshift128+ pseudo-random generator.
 *
 * A zero seed is remapped internally so the state never collapses to
 * all-zero (which would make xorshift emit zeros forever).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        reseed(seed);
    }

    /** Reset the generator to a reproducible state derived from @p seed. */
    void
    reseed(std::uint64_t seed)
    {
        // SplitMix64 expansion of the seed into the 128-bit state.
        std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
        for (auto *s : {&s0_, &s1_}) {
            z += 0x9e3779b97f4a7c15ULL;
            std::uint64_t x = z;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
            *s = x ^ (x >> 31);
        }
        if (s0_ == 0 && s1_ == 0)
            s1_ = 0x1234567890abcdefULL;
    }

    /**
     * Raw 128-bit generator state, for machine snapshots
     * (core/snapshot.hh): restoring via setState() makes the
     * subsequent next() sequence bit-identical to the saved
     * generator's.
     */
    std::uint64_t state0() const { return s0_; }
    std::uint64_t state1() const { return s1_; }

    /** Restore a state captured by state0()/state1(). */
    void
    setState(std::uint64_t s0, std::uint64_t s1)
    {
        s0_ = s0;
        s1_ = s1;
        if (s0_ == 0 && s1_ == 0)
            s1_ = 0x1234567890abcdefULL; // never all-zero
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = s0_;
        const std::uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound != 0);
        // Multiply-shift trick; bias is negligible for our bounds.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0); // 2^-53
    }

    /**
     * Geometric-ish burst length: returns >=1, mean roughly
     * 1/(1-continue_p) for continue_p in [0,1).
     */
    std::uint64_t
    burst(double continue_p, std::uint64_t cap = 64)
    {
        std::uint64_t n = 1;
        while (n < cap && chance(continue_p))
            ++n;
        return n;
    }

  private:
    std::uint64_t s0_ = 0;
    std::uint64_t s1_ = 0;
};

} // namespace lrs

#endif // LRS_COMMON_RANDOM_HH
