/**
 * @file
 * Helpers for the machine-snapshot layer (core/snapshot.hh): exact
 * JSON encoding of the integer vectors, counter tables and doubles
 * that make up simulator component state.
 *
 * The snapshot determinism contract (docs/ROBUSTNESS.md, "Snapshots")
 * is *bit* identity, so nothing here may round: integers ride on
 * json::Value's exact u64/i64 representation, and doubles are encoded
 * as their IEEE-754 bit pattern in a u64 — "0.1" never takes a trip
 * through decimal text.
 *
 * Loaders throw ConfigError(E_JOURNAL_INVALID) on any malformed or
 * size-mismatched section: a snapshot that cannot be restored exactly
 * must fail loudly, never produce a subtly different machine.
 */

#ifndef LRS_COMMON_STATE_IO_HH
#define LRS_COMMON_STATE_IO_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/diag.hh"
#include "common/json.hh"
#include "common/sat_counter.hh"

namespace lrs::stateio
{

/** Reject a malformed snapshot section, naming the field. */
[[noreturn]] inline void
fail(const std::string &field, const std::string &message)
{
    throw ConfigError(makeDiag(DiagCode::JournalInvalid,
                               "core.snapshot", field, message));
}

/** Fetch a required object member or fail(). */
inline const json::Value &
need(const json::Value &obj, const std::string &key)
{
    if (!obj.isObject())
        fail(key, "expected an object carrying '" + key + "'");
    const json::Value *v = obj.find(key);
    if (!v)
        fail(key, "missing snapshot field '" + key + "'");
    return *v;
}

inline std::uint64_t
needU64(const json::Value &obj, const std::string &key)
{
    const json::Value &v = need(obj, key);
    if (!v.isNumber())
        fail(key, "snapshot field '" + key + "' is not a number");
    return v.asU64();
}

inline bool
needBool(const json::Value &obj, const std::string &key)
{
    const json::Value &v = need(obj, key);
    if (!v.isBool())
        fail(key, "snapshot field '" + key + "' is not a boolean");
    return v.asBool();
}

inline const std::string &
needString(const json::Value &obj, const std::string &key)
{
    const json::Value &v = need(obj, key);
    if (!v.isString())
        fail(key, "snapshot field '" + key + "' is not a string");
    return v.asString();
}

/** Encode a double as its exact IEEE-754 bit pattern. */
inline json::Value
packDouble(double d)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return json::Value(bits);
}

inline double
unpackDouble(const json::Value &obj, const std::string &key)
{
    const std::uint64_t bits = needU64(obj, key);
    double d = 0.0;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

/** Encode any integer vector as an exact JSON array. */
template <typename T>
json::Value
packInts(const std::vector<T> &v)
{
    json::Value arr = json::Value::array();
    for (const T x : v)
        arr.push(json::Value(static_cast<std::uint64_t>(x)));
    return arr;
}

/**
 * Restore an integer vector saved by packInts(). The destination size
 * is structural (fixed by the machine config), so a length mismatch
 * means the snapshot belongs to a different geometry: fail loudly.
 */
template <typename T>
void
unpackInts(const json::Value &obj, const std::string &key,
           std::vector<T> &out)
{
    const json::Value &arr = need(obj, key);
    if (!arr.isArray() || arr.size() != out.size()) {
        fail(key, "snapshot array '" + key + "' has " +
                      (arr.isArray() ? std::to_string(arr.size())
                                     : std::string("no")) +
                      " elements; the machine needs " +
                      std::to_string(out.size()));
    }
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<T>(arr.at(i).asU64());
}

/** Saturating-counter tables: the value array (widths are config). */
inline json::Value
packCounters(const std::vector<SatCounter> &table)
{
    json::Value arr = json::Value::array();
    for (const SatCounter &c : table)
        arr.push(json::Value(static_cast<std::uint64_t>(c.value())));
    return arr;
}

inline void
unpackCounters(const json::Value &obj, const std::string &key,
               std::vector<SatCounter> &table)
{
    const json::Value &arr = need(obj, key);
    if (!arr.isArray() || arr.size() != table.size()) {
        fail(key, "counter table '" + key +
                      "' does not match the configured geometry");
    }
    for (std::size_t i = 0; i < table.size(); ++i) {
        const std::uint64_t v = arr.at(i).asU64();
        if (v > table[i].maxVal()) {
            fail(key, "counter value " + std::to_string(v) +
                          " exceeds the configured width");
        }
        table[i].set(static_cast<std::uint8_t>(v));
    }
}

} // namespace lrs::stateio

#endif // LRS_COMMON_STATE_IO_HH
