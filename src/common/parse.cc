#include "common/parse.hh"

namespace lrs
{

bool
tryParseU64(std::string_view s, std::uint64_t &out) noexcept
{
    if (s.empty())
        return false;
    std::uint64_t v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9')
            return false;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (UINT64_MAX - digit) / 10)
            return false; // would overflow 2^64-1: reject, not clamp
        v = v * 10 + digit;
    }
    out = v;
    return true;
}

} // namespace lrs
