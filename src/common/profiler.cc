#include "common/profiler.hh"

#include <chrono>
#include <mutex>
#include <vector>

#include "common/stats.hh"

namespace lrs::prof
{

namespace
{

/**
 * Per-thread accumulator. Relaxed atomics: each slot is written only
 * by its owning thread; report() reads cross-thread while workers are
 * quiescent, and relaxed loads keep the hot path free of fences while
 * staying within the data-race rules under TSan.
 */
struct Block
{
    std::atomic<std::uint64_t> ticks[kNumStages] = {};
};

std::mutex g_blocksMutex;
std::vector<Block *> &
blocks()
{
    static std::vector<Block *> v;
    return v;
}

Block &
threadBlock()
{
    thread_local Block *b = [] {
        auto *nb = new Block(); // lives for the process; threads are
                                // pooled, so the set stays tiny
        std::lock_guard<std::mutex> lock(g_blocksMutex);
        blocks().push_back(nb);
        return nb;
    }();
    return *b;
}

thread_local Scope *t_current = nullptr;

#if defined(__x86_64__)
inline std::uint64_t
rawTicks()
{
    return __builtin_ia32_rdtsc();
}
constexpr bool kRawIsTsc = true;
#else
inline std::uint64_t
rawTicks()
{
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}
constexpr bool kRawIsTsc = false;
#endif

double
calibrate()
{
    if (!kRawIsTsc) {
        using period = std::chrono::steady_clock::period;
        return static_cast<double>(period::den) /
               static_cast<double>(period::num);
    }
    // Measure the TSC against steady_clock over a few milliseconds;
    // good to well under a percent, which is plenty for a profile.
    const auto w0 = std::chrono::steady_clock::now();
    const std::uint64_t t0 = rawTicks();
    for (;;) {
        const auto w1 = std::chrono::steady_clock::now();
        const std::chrono::duration<double> dt = w1 - w0;
        if (dt.count() >= 5e-3) {
            const std::uint64_t t1 = rawTicks();
            return static_cast<double>(t1 - t0) / dt.count();
        }
    }
}

} // namespace

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::Rename:  return "rename";
      case Stage::Issue:   return "issue";
      case Stage::Execute: return "execute";
      case Stage::Commit:  return "commit";
      case Stage::Predict: return "predict";
    }
    return "?";
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t
nowTicks()
{
    return rawTicks();
}

double
ticksPerSecond()
{
    static const double rate = calibrate();
    return rate;
}

Scope::Scope(Stage s) : stage_(s), active_(enabled())
{
    if (!active_)
        return;
    parent_ = t_current;
    t_current = this;
    start_ = rawTicks();
}

Scope::~Scope()
{
    if (!active_)
        return;
    const std::uint64_t total = rawTicks() - start_;
    const std::uint64_t self =
        total >= childTicks_ ? total - childTicks_ : 0;
    threadBlock()
        .ticks[static_cast<std::size_t>(stage_)]
        .fetch_add(self, std::memory_order_relaxed);
    if (parent_)
        parent_->childTicks_ += total;
    t_current = parent_;
}

void
resetAll()
{
    std::lock_guard<std::mutex> lock(g_blocksMutex);
    for (Block *b : blocks()) {
        for (std::size_t s = 0; s < kNumStages; ++s)
            b->ticks[s].store(0, std::memory_order_relaxed);
    }
}

std::uint64_t
stageTicks(Stage s)
{
    std::lock_guard<std::mutex> lock(g_blocksMutex);
    std::uint64_t sum = 0;
    for (const Block *b : blocks()) {
        sum += b->ticks[static_cast<std::size_t>(s)].load(
            std::memory_order_relaxed);
    }
    return sum;
}

json::Value
reportJson(std::uint64_t uops, double wallSeconds)
{
    const double tps = ticksPerSecond();
    std::uint64_t ticks[kNumStages];
    std::uint64_t totalTicks = 0;
    for (std::size_t s = 0; s < kNumStages; ++s) {
        ticks[s] = stageTicks(static_cast<Stage>(s));
        totalTicks += ticks[s];
    }
    json::Value v = json::Value::object();
    json::Value stages = json::Value::object();
    for (std::size_t s = 0; s < kNumStages; ++s) {
        json::Value e = json::Value::object();
        const double sec = static_cast<double>(ticks[s]) / tps;
        e.set("seconds", json::Value(sec));
        e.set("share",
              json::Value(totalTicks
                              ? static_cast<double>(ticks[s]) /
                                    static_cast<double>(totalTicks)
                              : 0.0));
        stages.set(stageName(static_cast<Stage>(s)), std::move(e));
    }
    v.set("stages", std::move(stages));
    v.set("instrumented_seconds",
          json::Value(static_cast<double>(totalTicks) / tps));
    v.set("wall_seconds", json::Value(wallSeconds));
    v.set("uops", json::Value(uops));
    v.set("uops_per_sec",
          json::Value(wallSeconds > 0.0
                          ? static_cast<double>(uops) / wallSeconds
                          : 0.0));
    return v;
}

std::string
reportText(std::uint64_t uops, double wallSeconds)
{
    const json::Value v = reportJson(uops, wallSeconds);
    std::string out = "self-profile (host time):\n";
    for (const auto &kv : v.at("stages").members()) {
        out += strprintf("  %-8s %10.4f s  %5.1f%%\n",
                         kv.first.c_str(),
                         kv.second.at("seconds").asDouble(),
                         kv.second.at("share").asDouble() * 100.0);
    }
    out += strprintf("  %-8s %10.4f s (instrumented)\n", "total",
                     v.at("instrumented_seconds").asDouble());
    out += strprintf("  wall     %10.4f s   %.0f uops/sec\n",
                     wallSeconds, v.at("uops_per_sec").asDouble());
    return out;
}

} // namespace lrs::prof
