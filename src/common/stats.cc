#include "stats.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace lrs
{

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

Histogram::Histogram(std::size_t num_buckets, double bucket_width)
    : counts_(num_buckets, 0), width_(bucket_width)
{
}

void
Histogram::sample(double v, std::uint64_t weight)
{
    const auto idx = static_cast<std::size_t>(v / width_);
    if (v < 0 || idx >= counts_.size())
        overflow_ += weight;
    else
        counts_[idx] += weight;
    total_ += weight;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

double
Histogram::cdfAt(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t b = 0; b <= i && b < counts_.size(); ++b)
        acc += counts_[b];
    return static_cast<double>(acc) / static_cast<double>(total_);
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::startRow()
{
    rows_.emplace_back();
}

void
TextTable::cell(const std::string &s)
{
    if (rows_.empty())
        startRow();
    rows_.back().push_back(s);
}

void
TextTable::cell(double v, int precision)
{
    cell(strprintf("%.*f", precision, v));
}

void
TextTable::cellPct(double fraction, int precision)
{
    cell(strprintf("%.*f%%", precision, fraction * 100.0));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    widths.reserve(headers_.size());
    for (const auto &h : headers_)
        widths.push_back(h.size());
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c >= widths.size())
                widths.push_back(0);
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &s = c < row.size() ? row[c] : std::string();
            os << (c ? "  " : "");
            os << s;
            for (std::size_t p = s.size(); p < widths[c]; ++p)
                os << ' ';
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c ? 2 : 0);
    for (std::size_t p = 0; p < rule; ++p)
        os << '-';
    os << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
TextTable::toString() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

} // namespace lrs
