/**
 * @file
 * Lightweight statistics package: named counters, ratios, histograms
 * and a fixed-width table printer used by the figure benches to emit
 * paper-style rows.
 */

#ifndef LRS_COMMON_STATS_HH
#define LRS_COMMON_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lrs
{

/**
 * A monotonically increasing event counter.
 */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Running scalar statistics (count / mean / min / max) over samples.
 */
class Distribution
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A fixed-bucket histogram over [0, buckets*width) with an overflow
 * bucket. Used e.g. for load-store collision distance distributions.
 */
class Histogram
{
  public:
    Histogram(std::size_t num_buckets, double bucket_width);

    void sample(double v, std::uint64_t weight = 1);
    void reset();

    std::size_t numBuckets() const { return counts_.size(); }
    double bucketWidth() const { return width_; }
    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

    /** Fraction of samples at or below bucket @p i (inclusive CDF). */
    double cdfAt(std::size_t i) const;

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    double width_;
};

/**
 * Fixed-width console table: the benches use it to print the same rows
 * and series the paper's figures report.
 *
 * Columns are declared once; rows are added as strings or doubles and
 * the whole table is emitted with aligned columns and a separator rule.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new row; values are appended with cell()/cellf(). */
    void startRow();
    void cell(const std::string &s);
    void cell(double v, int precision = 3);
    void cellPct(double fraction, int precision = 2);

    /** Render to a stream with aligned columns. */
    void print(std::ostream &os) const;
    std::string toString() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style helper returning std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace lrs

#endif // LRS_COMMON_STATS_HH
