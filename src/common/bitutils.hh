/**
 * @file
 * Small bit-manipulation helpers used by caches and predictors.
 */

#ifndef LRS_COMMON_BITUTILS_HH
#define LRS_COMMON_BITUTILS_HH

#include <cassert>
#include <cstdint>

namespace lrs
{

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** floor(log2(v)) for v >= 1. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** ceil(log2(v)) for v >= 1. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return isPowerOf2(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/** Mask with the low @p bits bits set. */
constexpr std::uint64_t
mask(unsigned bits)
{
    return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

/** Extract bits [lo, lo+width) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned width)
{
    return (v >> lo) & mask(width);
}

/**
 * Fold a 64-bit value down to @p width bits by xoring @p width-bit
 * slices together. Used to index predictor tables with good mixing of
 * high PC bits.
 */
constexpr std::uint64_t
foldXor(std::uint64_t v, unsigned width)
{
    if (width == 0)
        return 0; // single-entry table
    if (width >= 64)
        return v;
    std::uint64_t r = 0;
    while (v) {
        r ^= v & mask(width);
        v >>= width;
    }
    return r;
}

/**
 * One round of a 64-bit integer hash (Stafford mix13 finalizer).
 * Used where predictor tables need decorrelated indices (e.g. the
 * three gskew banks).
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace lrs

#endif // LRS_COMMON_BITUTILS_HH
