/**
 * @file
 * Deterministic fault injection for robustness testing.
 *
 * The simulator's failure handling is only trustworthy if it is
 * exercised: this component deliberately corrupts trace bytes, flips
 * predictor table bits, and perturbs memory latencies, under a single
 * seed, so that every fault scenario is bit-reproducible. The intended
 * contract for the rest of the system is *recover or fail loudly* —
 * an injected fault must never silently change a result without a
 * trail in the stats registry ("fault.*", "trace.*") or a thrown
 * diagnostic.
 *
 * The three fault classes map to the three trust boundaries:
 *  - trace bytes  (external input: must be survivable — see the
 *    TraceReader recovery mode),
 *  - predictor bits (internal *hint* state: corruption may change
 *    timing but must never change correctness),
 *  - latency perturbation (timing robustness: results must degrade
 *    gracefully, never hang or wedge the scheduler).
 */

#ifndef LRS_COMMON_FAULT_INJECTOR_HH
#define LRS_COMMON_FAULT_INJECTOR_HH

#include <cstddef>
#include <cstdint>

#include "common/random.hh"
#include "common/state_io.hh"
#include "common/stats_registry.hh"
#include "common/types.hh"

namespace lrs
{

/** What to inject, how often, under which seed. */
struct FaultConfig
{
    std::uint64_t seed = 0xfa0175ULL;

    /** Per-record probability of corrupting a trace record's bytes. */
    double traceRate = 0.0;
    /** Per-query probability that a predictor bit flip fires. */
    double bitRate = 0.0;
    /** Per-access probability of perturbing a memory latency. */
    double latRate = 0.0;
    /** Upper bound on added latency cycles (perturbation only adds —
     *  shrinking a latency could move data readiness into the past). */
    Cycle maxLatencyDelta = 16;

    bool
    enabled() const
    {
        return traceRate > 0.0 || bitRate > 0.0 || latRate > 0.0;
    }

    /**
     * Build a FaultConfig from the environment:
     *   LRS_FAULT_SEED        (u64, default keeps the struct default)
     *   LRS_FAULT_TRACE_RATE  (double in [0,1])
     *   LRS_FAULT_BIT_RATE    (double in [0,1])
     *   LRS_FAULT_LAT_RATE    (double in [0,1])
     *   LRS_FAULT_LAT_MAX     (u64 cycles)
     * Unset/malformed variables leave the field at its default, so an
     * ordinary environment yields a disabled injector.
     */
    static FaultConfig fromEnv();
};

/**
 * Seeded fault source. One instance per run; every decision flows
 * from the seed, so a failing fault scenario can be replayed exactly
 * with `--fault-seed`.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &cfg = FaultConfig{})
        : cfg_(cfg), rng_(cfg.seed)
    {}

    bool enabled() const { return cfg_.enabled(); }
    const FaultConfig &config() const { return cfg_; }

    /**
     * Maybe corrupt one trace record of @p size bytes in place
     * (probability traceRate; 1..3 bytes are rewritten to random
     * values). Returns true if the record was corrupted.
     */
    bool corruptRecord(std::uint8_t *record, std::size_t size);

    /**
     * Corrupt a whole serialized trace image: every @p record_bytes
     * window past @p protect_prefix (the header) is a corruption
     * candidate at traceRate. Returns the number of corrupted
     * records.
     */
    std::size_t corruptBuffer(std::uint8_t *data, std::size_t size,
                              std::size_t protect_prefix,
                              std::size_t record_bytes);

    /** Should a predictor-bit flip fire for this query? */
    bool
    fireBitFlip()
    {
        if (cfg_.bitRate <= 0.0 || !rng_.chance(cfg_.bitRate))
            return false;
        ++bitFlips_;
        return true;
    }

    /**
     * Extra cycles to add to a memory access latency (0 = leave it
     * alone). Strictly additive: injected timing faults slow the
     * machine down, they never teleport data into the past.
     */
    Cycle
    perturbLatency()
    {
        if (cfg_.latRate <= 0.0 || !rng_.chance(cfg_.latRate))
            return 0;
        ++latencyPerturbs_;
        return 1 + rng_.below(cfg_.maxLatencyDelta);
    }

    /** The injector's private stream (for callers picking WHICH bit). */
    Rng &rng() { return rng_; }

    std::uint64_t traceFaults() const { return traceFaults_; }
    std::uint64_t bitFlips() const { return bitFlips_; }
    std::uint64_t latencyPerturbs() const { return latencyPerturbs_; }

    /** Register injected-fault counters under @p g ("fault.*"). */
    void registerStats(StatsGroup g);

    /**
     * Machine-snapshot support (core/snapshot.hh): the RNG stream
     * position and the fault counters, exactly. The configuration
     * itself is NOT saved — it travels with the machine config, and a
     * restored run must be given the same FaultConfig to be
     * bit-reproducible.
     */
    json::Value
    saveState() const
    {
        json::Value st = json::Value::object();
        st.set("rng0", rng_.state0());
        st.set("rng1", rng_.state1());
        st.set("trace_faults", traceFaults_);
        st.set("bit_flips", bitFlips_);
        st.set("latency_perturbs", latencyPerturbs_);
        return st;
    }

    void
    loadState(const json::Value &state)
    {
        rng_.setState(stateio::needU64(state, "rng0"),
                      stateio::needU64(state, "rng1"));
        traceFaults_ = stateio::needU64(state, "trace_faults");
        bitFlips_ = stateio::needU64(state, "bit_flips");
        latencyPerturbs_ = stateio::needU64(state, "latency_perturbs");
    }

  private:
    FaultConfig cfg_;
    Rng rng_;

    std::uint64_t traceFaults_ = 0;
    std::uint64_t bitFlips_ = 0;
    std::uint64_t latencyPerturbs_ = 0;
};

} // namespace lrs

#endif // LRS_COMMON_FAULT_INJECTOR_HH
