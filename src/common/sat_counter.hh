/**
 * @file
 * Saturating counters and the sticky bit, the building blocks of every
 * binary predictor in the paper (collision, hit-miss, bank, branch).
 */

#ifndef LRS_COMMON_SAT_COUNTER_HH
#define LRS_COMMON_SAT_COUNTER_HH

#include <cassert>
#include <cstdint>
#include <string>

#include "common/diag.hh"

namespace lrs
{

/**
 * An n-bit saturating up/down counter.
 *
 * The counter predicts "taken" (colliding / miss / bank 1 ...) when its
 * value is in the upper half of its range. A 1-bit counter degenerates
 * to last-outcome; the paper's CHT uses 1-bit and 2-bit variants and
 * its hit-miss/bank predictor components use 2-bit and 3-bit variants.
 */
class SatCounter
{
  public:
    explicit SatCounter(unsigned num_bits = 2, std::uint8_t initial = 0)
        : bits_(static_cast<std::uint8_t>(num_bits)), val_(initial)
    {
        if (num_bits < 1 || num_bits > 7) {
            throwConfig("sat_counter", "num_bits",
                        "counter width must be 1..7 bits (got " +
                            std::to_string(num_bits) + ")");
        }
        if (initial > maxVal()) {
            throwConfig("sat_counter", "initial",
                        "initial value " + std::to_string(initial) +
                            " exceeds the " +
                            std::to_string(num_bits) +
                            "-bit maximum " + std::to_string(maxVal()));
        }
    }

    /** Largest representable value. */
    std::uint8_t maxVal() const { return (1u << bits_) - 1; }

    /** Threshold at or above which the prediction is "taken". */
    std::uint8_t threshold() const { return 1u << (bits_ - 1); }

    /** Current raw value. */
    std::uint8_t value() const { return val_; }

    /** Binary prediction derived from the value. */
    bool predict() const { return val_ >= threshold(); }

    /**
     * Confidence in [0,1]: distance of the counter from its decision
     * threshold, normalised. A freshly flipped counter has low
     * confidence; a saturated one has confidence 1.
     */
    double
    confidence() const
    {
        const int t = threshold();
        const int d = predict() ? (val_ - t + 1) : (t - val_);
        return static_cast<double>(d) / t;
    }

    /** Train toward taken (true) or not-taken (false). */
    void
    update(bool taken)
    {
        if (taken) {
            if (val_ < maxVal())
                ++val_;
        } else {
            if (val_ > 0)
                --val_;
        }
    }

    /** Force a specific value (used by table reset policies). */
    void
    set(std::uint8_t v)
    {
        assert(v <= maxVal());
        val_ = v;
    }

  private:
    std::uint8_t bits_;
    std::uint8_t val_;
};

/**
 * A sticky bit: once set it stays set until explicitly cleared.
 *
 * This is the paper's cheapest collision predictor — biased to
 * mispredict on the safe side (a load that collided once is predicted
 * colliding forever), and removable entirely in the 0-bit tag-only CHT.
 */
class StickyBit
{
  public:
    bool predict() const { return set_; }

    /** Training can only set the bit, never clear it. */
    void
    update(bool taken)
    {
        if (taken)
            set_ = true;
    }

    /** Explicit clear, used by cyclic-clearing policies [Chry98]. */
    void clear() { set_ = false; }

  private:
    bool set_ = false;
};

} // namespace lrs

#endif // LRS_COMMON_SAT_COUNTER_HH
