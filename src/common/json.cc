#include "common/json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lrs::json
{

void
Value::expect(Kind k) const
{
    if (kind_ != k)
        throw std::logic_error("json::Value: wrong kind access");
}

void
Value::push(Value v)
{
    expect(Kind::Array);
    elems_.push_back(std::move(v));
}

std::size_t
Value::size() const
{
    if (kind_ == Kind::Array)
        return elems_.size();
    if (kind_ == Kind::Object)
        return members_.size();
    throw std::logic_error("json::Value: size() on scalar");
}

const Value &
Value::at(std::size_t i) const
{
    expect(Kind::Array);
    return elems_.at(i);
}

void
Value::set(const std::string &key, Value v)
{
    expect(Kind::Object);
    for (auto &kv : members_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    members_.emplace_back(key, std::move(v));
}

const Value *
Value::find(const std::string &key) const
{
    expect(Kind::Object);
    for (const auto &kv : members_) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

const Value &
Value::at(const std::string &key) const
{
    const Value *v = find(key);
    if (!v)
        throw std::out_of_range("json: no member \"" + key + "\"");
    return *v;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

void
appendNumber(std::string &out, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no NaN/Inf; null is the documented encoding.
        out += "null";
        return;
    }
    if (d == std::floor(d) && std::fabs(d) < 1e15) {
        // Integral values print without a fraction part so counters
        // stay readable (and exactly round-trippable).
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        out += buf;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    const auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * d, ' ');
    };

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        // Exact integers print their own digits; for every value a
        // double represents exactly this matches the integral fast
        // path below, so pre-existing exports stay byte-identical.
        if (rep_ == NumRep::U64) {
            char buf[24];
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(u64_));
            out += buf;
        } else if (rep_ == NumRep::I64) {
            char buf[24];
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(i64_));
            out += buf;
        } else {
            appendNumber(out, num_);
        }
        break;
      case Kind::String:
        out += '"';
        out += escape(str_);
        out += '"';
        break;
      case Kind::Array:
        out += '[';
        for (std::size_t i = 0; i < elems_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            elems_[i].dumpTo(out, indent, depth + 1);
        }
        if (!elems_.empty())
            newline(depth);
        out += ']';
        break;
      case Kind::Object:
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            out += '"';
            out += escape(members_[i].first);
            out += indent > 0 ? "\": " : "\":";
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!members_.empty())
            newline(depth);
        out += '}';
        break;
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    if (indent > 0)
        out += '\n';
    return out;
}

// --- reader ---

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    Value
    document()
    {
        Value v = value();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg)
    {
        throw ParseError(msg, pos_);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLit(const char *lit)
    {
        const std::size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value
    value()
    {
        skipWs();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return Value(string());
          case 't':
            if (!consumeLit("true"))
                fail("bad literal");
            return Value(true);
          case 'f':
            if (!consumeLit("false"))
                fail("bad literal");
            return Value(false);
          case 'n':
            if (!consumeLit("null"))
                fail("bad literal");
            return Value(nullptr);
          default:
            return number();
        }
    }

    Value
    object()
    {
        expect('{');
        Value v = Value::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            v.set(key, value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Value
    array()
    {
        expect('[');
        Value v = Value::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.push(value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9') cp |= h - '0';
                    else if (h >= 'a' && h <= 'f') cp |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F') cp |= h - 'A' + 10;
                    else fail("bad \\u escape");
                }
                // The stats layer only ever escapes control chars;
                // encode the BMP code point as UTF-8 (no surrogates).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    Value
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            fail("expected a value");
        char *end = nullptr;
        const std::string tok = s_.substr(start, pos_ - start);
        // Integer tokens parse into the exact representation so
        // count/sum fields above 2^53 survive a round-trip; anything
        // with a fraction or exponent (and out-of-range integers)
        // takes the double path as before.
        //
        // Unlike the config parsers (common/parse.hh), the raw
        // strtoull here cannot signed-wrap: a token starting with '-'
        // takes the strtoll branch, so strtoull only ever sees
        // non-negative digits, and ERANGE clamping is caught by the
        // errno check, demoting the token to the strtod double path
        // instead of returning a clamped integer.
        const bool integral =
            tok.find_first_of(".eE") == std::string::npos;
        if (integral) {
            errno = 0;
            if (tok[0] == '-') {
                const long long ll = std::strtoll(tok.c_str(), &end, 10);
                if (errno == 0 && end == tok.c_str() + tok.size())
                    return Value(static_cast<std::int64_t>(ll));
            } else {
                const unsigned long long ull =
                    std::strtoull(tok.c_str(), &end, 10);
                if (errno == 0 && end == tok.c_str() + tok.size())
                    return Value(static_cast<std::uint64_t>(ull));
            }
        }
        errno = 0;
        const double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            fail("malformed number");
        return Value(d);
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

Value
Value::parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace lrs::json
