/**
 * @file
 * Dependency-free JSON support for the observability layer.
 *
 * The writer half is a small value tree (`json::Value`) with a
 * serializer tuned for stats output: object key order is preserved
 * (insertion order), doubles are emitted with enough precision to
 * round-trip, and NaN/Inf — which plain JSON cannot represent — are
 * emitted as `null`, matching the NaN-safe conventions documented in
 * results.hh.
 *
 * Numbers built from 64-bit integers keep their exact integer
 * representation rather than being squeezed through a double: counter
 * and histogram sums above 2^53 would otherwise silently lose bits on
 * export and re-parse. The serialized text is unchanged for every
 * value a double can represent exactly (the integral fast path prints
 * the same digits), so existing exports stay byte-identical.
 *
 * The reader half is a minimal recursive-descent parser covering the
 * subset the writer emits (all of RFC 8259 minus \u surrogate pairs,
 * which the stats layer never produces). It exists so tests can
 * round-trip registry/result exports instead of string-matching them.
 */

#ifndef LRS_COMMON_JSON_HH
#define LRS_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace lrs::json
{

class Value;

/** Thrown by the reader on malformed input. */
class ParseError : public std::runtime_error
{
  public:
    ParseError(const std::string &what, std::size_t offset)
        : std::runtime_error(what + " at offset " +
                             std::to_string(offset)),
          offset_(offset)
    {}

    std::size_t offset() const { return offset_; }

  private:
    std::size_t offset_;
};

/**
 * One JSON value. Objects preserve insertion order so exported stats
 * stay in registration order (stable diffs between runs).
 */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Value() : kind_(Kind::Null) {}
    Value(std::nullptr_t) : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(double d) : kind_(Kind::Number), num_(d) {}
    Value(int i)
        : kind_(Kind::Number), rep_(NumRep::I64), num_(i), i64_(i)
    {}
    Value(std::uint64_t u)
        : kind_(Kind::Number), rep_(NumRep::U64),
          num_(static_cast<double>(u)), u64_(u)
    {}
    Value(std::int64_t i)
        : kind_(Kind::Number), rep_(NumRep::I64),
          num_(static_cast<double>(i)), i64_(i)
    {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    static Value array() { Value v; v.kind_ = Kind::Array; return v; }
    static Value object() { Value v; v.kind_ = Kind::Object; return v; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { expect(Kind::Bool); return bool_; }
    double asDouble() const { expect(Kind::Number); return num_; }
    std::uint64_t
    asU64() const
    {
        expect(Kind::Number);
        switch (rep_) {
          case NumRep::U64: return u64_;
          case NumRep::I64: return static_cast<std::uint64_t>(i64_);
          case NumRep::Dbl: break;
        }
        return static_cast<std::uint64_t>(num_);
    }
    std::int64_t
    asI64() const
    {
        expect(Kind::Number);
        switch (rep_) {
          case NumRep::U64: return static_cast<std::int64_t>(u64_);
          case NumRep::I64: return i64_;
          case NumRep::Dbl: break;
        }
        return static_cast<std::int64_t>(num_);
    }
    const std::string &asString() const
    {
        expect(Kind::String);
        return str_;
    }

    // --- array interface ---
    void push(Value v);
    std::size_t size() const;
    const Value &at(std::size_t i) const;

    // --- object interface ---
    /** Set @p key (replacing an existing binding in place). */
    void set(const std::string &key, Value v);
    /** Member lookup; throws std::out_of_range when absent. */
    const Value &at(const std::string &key) const;
    /** Member lookup; nullptr when absent. */
    const Value *find(const std::string &key) const;
    bool has(const std::string &key) const { return find(key); }
    const std::vector<std::pair<std::string, Value>> &
    members() const
    {
        expect(Kind::Object);
        return members_;
    }

    /** Serialize; @p indent > 0 pretty-prints with that step. */
    std::string dump(int indent = 0) const;

    /** Parse @p text (the complete document). Throws ParseError. */
    static Value parse(const std::string &text);

  private:
    /** How a Number is stored; exact integers bypass the double. */
    enum class NumRep
    {
        Dbl,
        U64,
        I64,
    };

    void expect(Kind k) const;
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    NumRep rep_ = NumRep::Dbl;
    bool bool_ = false;
    double num_ = 0.0;
    std::uint64_t u64_ = 0;
    std::int64_t i64_ = 0;
    std::string str_;
    std::vector<Value> elems_;
    std::vector<std::pair<std::string, Value>> members_;
};

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string escape(const std::string &s);

} // namespace lrs::json

#endif // LRS_COMMON_JSON_HH
