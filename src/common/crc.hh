/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
 * guarding checkpoint-journal records (common/journal.hh). Chosen over
 * a hand-rolled hash because its error-detection properties are known
 * (all single-bit and burst errors up to 32 bits) and its test vectors
 * are public, so a corrupted record can never masquerade as valid
 * because of a checksum defect of our own making.
 */

#ifndef LRS_COMMON_CRC_HH
#define LRS_COMMON_CRC_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace lrs
{

/**
 * Incremental CRC-32: pass the previous return value as @p seed to
 * continue a running checksum (standard init/final inversion is
 * handled internally, so chunked and one-shot calls agree).
 */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

inline std::uint32_t
crc32(const std::string &s, std::uint32_t seed = 0)
{
    return crc32(s.data(), s.size(), seed);
}

} // namespace lrs

#endif // LRS_COMMON_CRC_HH
