#include "common/buildinfo.hh"

#include "common/stats.hh"

// LRS_BUILD_TYPE / LRS_SANITIZE_MODE / LRS_GIT_SHA come in as compile
// definitions on this one translation unit (src/common/CMakeLists.txt)
// so a provenance change never recompiles the world.
#ifndef LRS_BUILD_TYPE
#define LRS_BUILD_TYPE "unknown"
#endif
#ifndef LRS_SANITIZE_MODE
#define LRS_SANITIZE_MODE "none"
#endif
#ifndef LRS_GIT_SHA
#define LRS_GIT_SHA "unknown"
#endif

namespace lrs
{

namespace
{

const char *
compilerId()
{
#if defined(__clang__)
    return "clang";
#elif defined(__GNUC__)
    return "gcc";
#else
    return "unknown";
#endif
}

std::string
compilerVersion()
{
#if defined(__clang__)
    return strprintf("%d.%d.%d", __clang_major__, __clang_minor__,
                     __clang_patchlevel__);
#elif defined(__GNUC__)
    return strprintf("%d.%d.%d", __GNUC__, __GNUC_MINOR__,
                     __GNUC_PATCHLEVEL__);
#else
    return "unknown";
#endif
}

} // namespace

json::Value
buildProvenanceJson()
{
    json::Value v = json::Value::object();
    v.set("compiler", json::Value(compilerId()));
    v.set("compiler_version", json::Value(compilerVersion()));
    v.set("build_type", json::Value(LRS_BUILD_TYPE));
    v.set("sanitize", json::Value(LRS_SANITIZE_MODE));
    v.set("git_sha", json::Value(LRS_GIT_SHA));
    return v;
}

} // namespace lrs
