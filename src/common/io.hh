/**
 * @file
 * Low-level POSIX I/O helpers shared by every durability path.
 *
 * Several layers append whole records to file descriptors — the
 * checkpoint journal, the progress heartbeat stream, the flight
 * recorder's dump, the isolated-cell result pipe, bench JsonReport
 * files, and the sweep service's sockets. Each used to open-code its
 * own write() loop; any copy that forgot EINTR or short-write
 * continuation risked silently truncated records. writeFully() is the
 * one shared discipline: it retries on EINTR and continues partial
 * writes until the buffer is fully on its way or a real error stops
 * it.
 */

#ifndef LRS_COMMON_IO_HH
#define LRS_COMMON_IO_HH

#include <cstddef>
#include <string>
#include <string_view>

namespace lrs
{

/**
 * Write all @p len bytes of @p data to @p fd, retrying interrupted
 * calls (EINTR) and continuing short writes. Returns true when every
 * byte was accepted by the kernel; false on any other error, with
 * errno describing it. Async-signal-safe (calls only write()), so a
 * signal handler may use it on a pre-opened descriptor.
 *
 * Not for non-blocking descriptors under backpressure: EAGAIN is a
 * real error here (the sweep service keeps its own buffered
 * non-blocking send path for sockets).
 */
bool writeFully(int fd, const void *data, std::size_t len) noexcept;

inline bool
writeFully(int fd, std::string_view s) noexcept
{
    return writeFully(fd, s.data(), s.size());
}

/**
 * writeFully() or throw IoError (DiagCode::IoWriteFailed) naming the
 * @p component and @p path, with strerror(errno) appended — the
 * journal-grade loud-failure convention (docs/ROBUSTNESS.md).
 */
void writeFullyOrThrow(int fd, std::string_view s,
                       const std::string &component,
                       const std::string &path);

} // namespace lrs

#endif // LRS_COMMON_IO_HH
