#include "common/journal.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/crc.hh"
#include "common/diag.hh"
#include "common/io.hh"

namespace lrs
{

namespace
{

constexpr const char *kMagic = "LRSJ1";
constexpr std::size_t kMagicLen = 5;
/** "LRSJ1" + ' ' + 8 hex + ' ' — bytes before the JSON payload. */
constexpr std::size_t kPrefixLen = kMagicLen + 1 + 8 + 1;

std::string
hex8(std::uint32_t v)
{
    char buf[9];
    std::snprintf(buf, sizeof(buf), "%08x", v);
    return buf;
}

/** Parse exactly 8 lowercase/uppercase hex chars; false on junk. */
bool
parseHex8(const char *s, std::uint32_t &out)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 8; ++i) {
        const char c = s[i];
        v <<= 4;
        if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
        else return false;
    }
    out = v;
    return true;
}

[[noreturn]] void
throwIo(DiagCode code, const std::string &path, const char *what)
{
    throw IoError(makeDiag(code, "common.journal", "path",
                           std::string(what) + ": " + path +
                               (errno ? std::string(" (") +
                                            std::strerror(errno) + ")"
                                      : std::string())));
}

} // namespace

std::string
journalLine(const json::Value &record)
{
    const std::string body = record.dump(0);
    std::string line;
    line.reserve(kPrefixLen + body.size() + 1);
    line += kMagic;
    line += ' ';
    line += hex8(crc32(body));
    line += ' ';
    line += body;
    line += '\n';
    return line;
}

JournalWriter::JournalWriter(std::string path, bool truncate)
    : path_(std::move(path))
{
    int flags = O_WRONLY | O_CREAT | O_APPEND;
    if (truncate)
        flags |= O_TRUNC;
    errno = 0;
    fd_ = ::open(path_.c_str(), flags, 0644);
    if (fd_ < 0)
        throwIo(DiagCode::IoOpenFailed, path_, "cannot open journal");
}

JournalWriter::~JournalWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
JournalWriter::append(const json::Value &record)
{
    const std::string line = journalLine(record);
    // One writeFully() on an O_APPEND fd: POSIX appends the whole
    // buffer at the (atomically advanced) end of file, so concurrent
    // appenders and a mid-call SIGKILL can tear at most this line,
    // never an earlier one. Short writes are continued; the tail the
    // reader may then see torn is exactly the crash model it resyncs
    // from.
    errno = 0;
    if (!writeFully(fd_, line))
        throwIo(DiagCode::IoWriteFailed, path_, "journal write failed");
    errno = 0;
    if (::fsync(fd_) != 0)
        throwIo(DiagCode::IoWriteFailed, path_, "journal fsync failed");
}

std::vector<json::Value>
readJournal(const std::string &path, JournalReadStats *stats)
{
    std::ifstream is(path, std::ios::binary);
    errno = 0;
    if (!is)
        throwIo(DiagCode::IoOpenFailed, path, "cannot open journal");
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string bytes = buf.str();

    JournalReadStats local;
    JournalReadStats &st = stats ? *stats : local;
    st = JournalReadStats{};

    std::vector<json::Value> out;
    std::size_t pos = 0;
    std::uint64_t lineNo = 0;
    const auto markBad = [&] {
        if (st.firstBadLine == 0) {
            st.firstBadLine = lineNo;
            st.firstBadOffset = pos;
        }
    };
    while (pos < bytes.size()) {
        ++lineNo;
        const std::size_t nl = bytes.find('\n', pos);
        if (nl == std::string::npos) {
            // Torn final append (SIGKILL mid-write): drop the tail.
            st.truncatedTail = true;
            ++st.badLines;
            st.droppedBytes += bytes.size() - pos;
            markBad();
            break;
        }
        const std::size_t len = nl - pos;
        bool ok = false;
        if (len > kPrefixLen &&
            bytes.compare(pos, kMagicLen, kMagic) == 0 &&
            bytes[pos + kMagicLen] == ' ' &&
            bytes[pos + kPrefixLen - 1] == ' ') {
            std::uint32_t want = 0;
            if (parseHex8(bytes.data() + pos + kMagicLen + 1, want)) {
                const char *body = bytes.data() + pos + kPrefixLen;
                const std::size_t bodyLen = len - kPrefixLen;
                if (crc32(body, bodyLen) == want) {
                    try {
                        out.push_back(json::Value::parse(
                            std::string(body, bodyLen)));
                        ok = true;
                    } catch (const json::ParseError &) {
                        // CRC-valid but unparsable: treated as damage
                        // (a foreign writer or a defect, not our
                        // crash model) — drop and resync.
                    }
                }
            }
        }
        if (ok) {
            ++st.records;
        } else {
            ++st.badLines;
            st.droppedBytes += len + 1;
            markBad();
        }
        pos = nl + 1;
    }
    return out;
}

} // namespace lrs
