#include "common/stats_registry.hh"

#include <stdexcept>

namespace lrs
{

StatsRegistry::Stat &
StatsRegistry::add(const std::string &name, const std::string &desc,
                   Kind kind)
{
    if (name.empty())
        throw std::logic_error("StatsRegistry: empty stat name");
    if (has(name))
        throw std::logic_error("StatsRegistry: duplicate stat \"" +
                               name + "\"");
    auto s = std::make_unique<Stat>();
    s->name = name;
    s->desc = desc;
    s->kind = kind;
    stats_.push_back(std::move(s));
    return *stats_.back();
}

Counter &
StatsRegistry::counter(const std::string &name,
                       const std::string &desc)
{
    Stat &s = add(name, desc, Kind::OwnedCounter);
    s.ownedCounter = std::make_unique<Counter>();
    return *s.ownedCounter;
}

void
StatsRegistry::bindCounter(const std::string &name,
                           std::uint64_t *slot,
                           const std::string &desc)
{
    if (slot == nullptr)
        throw std::logic_error("StatsRegistry: null bound counter \"" +
                               name + "\"");
    add(name, desc, Kind::BoundCounter).boundCounter = slot;
}

Distribution &
StatsRegistry::distribution(const std::string &name,
                            const std::string &desc)
{
    Stat &s = add(name, desc, Kind::OwnedDistribution);
    s.dist = std::make_unique<Distribution>();
    return *s.dist;
}

Histogram &
StatsRegistry::histogram(const std::string &name,
                         std::size_t num_buckets, double bucket_width,
                         const std::string &desc)
{
    Stat &s = add(name, desc, Kind::OwnedHistogram);
    s.hist = std::make_unique<Histogram>(num_buckets, bucket_width);
    return *s.hist;
}

Log2Histogram &
StatsRegistry::log2hist(const std::string &name,
                        const std::string &desc)
{
    Stat &s = add(name, desc, Kind::OwnedLog2Histogram);
    s.log2hist = std::make_unique<Log2Histogram>();
    return *s.log2hist;
}

void
StatsRegistry::derived(const std::string &name,
                       std::function<double()> getter,
                       const std::string &desc)
{
    if (!getter)
        throw std::logic_error("StatsRegistry: null getter for \"" +
                               name + "\"");
    add(name, desc, Kind::Derived).getter = std::move(getter);
}

StatsGroup
StatsRegistry::group(const std::string &prefix)
{
    return StatsGroup(*this, prefix);
}

bool
StatsRegistry::has(const std::string &name) const
{
    for (const auto &s : stats_) {
        if (s->name == name)
            return true;
    }
    return false;
}

std::vector<std::string>
StatsRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(stats_.size());
    for (const auto &s : stats_)
        out.push_back(s->name);
    return out;
}

double
StatsRegistry::value(const std::string &name) const
{
    for (const auto &s : stats_) {
        if (s->name != name)
            continue;
        switch (s->kind) {
          case Kind::OwnedCounter:
            return static_cast<double>(s->ownedCounter->value());
          case Kind::BoundCounter:
            return static_cast<double>(*s->boundCounter);
          case Kind::OwnedDistribution:
            return s->dist->mean();
          case Kind::OwnedHistogram:
            return static_cast<double>(s->hist->total());
          case Kind::OwnedLog2Histogram:
            return static_cast<double>(s->log2hist->count());
          case Kind::Derived:
            return s->getter();
        }
    }
    throw std::out_of_range("StatsRegistry: no stat \"" + name +
                            "\"");
}

void
StatsRegistry::reset()
{
    for (auto &s : stats_) {
        switch (s->kind) {
          case Kind::OwnedCounter:
            s->ownedCounter->reset();
            break;
          case Kind::BoundCounter:
            *s->boundCounter = 0;
            break;
          case Kind::OwnedDistribution:
            s->dist->reset();
            break;
          case Kind::OwnedHistogram:
            s->hist->reset();
            break;
          case Kind::OwnedLog2Histogram:
            s->log2hist->reset();
            break;
          case Kind::Derived:
            break; // a view onto component state; nothing to reset
        }
    }
}

json::Value
StatsRegistry::leafJson(const Stat &s) const
{
    switch (s.kind) {
      case Kind::OwnedCounter:
        return json::Value(s.ownedCounter->value());
      case Kind::BoundCounter:
        return json::Value(*s.boundCounter);
      case Kind::Derived:
        return json::Value(s.getter());
      case Kind::OwnedDistribution: {
        json::Value v = json::Value::object();
        v.set("count", s.dist->count());
        v.set("sum", s.dist->sum());
        v.set("mean", s.dist->mean());
        v.set("min", s.dist->min());
        v.set("max", s.dist->max());
        return v;
      }
      case Kind::OwnedLog2Histogram:
        return s.log2hist->toJson();
      case Kind::OwnedHistogram: {
        json::Value v = json::Value::object();
        v.set("bucket_width", s.hist->bucketWidth());
        json::Value counts = json::Value::array();
        for (std::size_t i = 0; i < s.hist->numBuckets(); ++i)
            counts.push(s.hist->bucket(i));
        v.set("counts", std::move(counts));
        v.set("overflow", s.hist->overflow());
        v.set("total", s.hist->total());
        return v;
      }
    }
    return json::Value();
}

json::Value
StatsRegistry::toJson() const
{
    json::Value root = json::Value::object();
    for (const auto &s : stats_) {
        // Walk/create the nested objects named by the dotted prefix.
        json::Value *node = &root;
        std::size_t start = 0;
        while (true) {
            const std::size_t dot = s->name.find('.', start);
            if (dot == std::string::npos)
                break;
            const std::string part = s->name.substr(start, dot - start);
            if (const json::Value *child = node->find(part);
                child == nullptr || !child->isObject()) {
                node->set(part, json::Value::object());
            }
            // set() keeps the member in place, so this lookup is the
            // freshly inserted (or pre-existing) object.
            node = const_cast<json::Value *>(node->find(part));
            start = dot + 1;
        }
        node->set(s->name.substr(start), leafJson(*s));
    }
    return root;
}

} // namespace lrs
