/**
 * @file
 * Build provenance for JSON exports.
 *
 * Every `lrs_sim --json` document and bench JsonReport carries a
 * "build" block identifying the binary that produced it — compiler id
 * and version, build type, sanitizer mode, and the git revision when
 * the build system could determine one — so BENCH_*.json entries in
 * the perf trajectory stay attributable long after the build tree is
 * gone. Provenance is attached to *top-level* documents only, never
 * to per-cell results: journaled cell documents must stay
 * byte-identical across resumes by a different binary
 * (docs/ROBUSTNESS.md, "Checkpoint journal and resume").
 */

#ifndef LRS_COMMON_BUILDINFO_HH
#define LRS_COMMON_BUILDINFO_HH

#include "common/json.hh"

namespace lrs
{

/**
 * {"compiler","compiler_version","build_type","sanitize","git_sha"}.
 * Fields the build system could not determine are "unknown".
 */
json::Value buildProvenanceJson();

} // namespace lrs

#endif // LRS_COMMON_BUILDINFO_HH
