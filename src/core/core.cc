#include "core/core.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/bitutils.hh"
#include "common/profiler.hh"
#include "common/state_io.hh"
#include "core/runner.hh"

namespace lrs
{

const char *
orderingSchemeName(OrderingScheme s)
{
    switch (s) {
      case OrderingScheme::Traditional:   return "Traditional";
      case OrderingScheme::Opportunistic: return "Opportunistic";
      case OrderingScheme::Postponing:    return "Postponing";
      case OrderingScheme::Inclusive:     return "Inclusive";
      case OrderingScheme::Exclusive:     return "Exclusive";
      case OrderingScheme::Perfect:       return "Perfect";
      case OrderingScheme::StoreBarrier:  return "StoreBarrier";
      case OrderingScheme::StoreSets:     return "StoreSets";
    }
    return "?";
}

const char *
bankModeName(BankMode m)
{
    switch (m) {
      case BankMode::TrueMultiPorted: return "true-multiported";
      case BankMode::Conventional:    return "conventional-banked";
      case BankMode::DualScheduled:   return "dual-scheduled";
      case BankMode::Sliced:          return "sliced-banked";
    }
    return "?";
}

const char *
bankPredKindName(BankPredKind k)
{
    switch (k) {
      case BankPredKind::None: return "none";
      case BankPredKind::A:    return "A";
      case BankPredKind::B:    return "B";
      case BankPredKind::C:    return "C";
      case BankPredKind::Addr: return "addr";
    }
    return "?";
}

const char *
hmpKindName(HmpKind k)
{
    switch (k) {
      case HmpKind::AlwaysHit:   return "always-hit";
      case HmpKind::Local:       return "local";
      case HmpKind::Chooser:     return "chooser";
      case HmpKind::LocalTiming: return "local+timing";
      case HmpKind::Perfect:     return "perfect";
    }
    return "?";
}

namespace
{

/**
 * Validation gate for the constructor below: cfg_ is the first member,
 * so routing its initializer through here rejects a bad machine before
 * any dependent member (caches, ROB, predictors) is sized from it.
 */
const MachineConfig &
validated(const MachineConfig &cfg)
{
    cfg.validateOrThrow();
    return cfg;
}

} // namespace

OooCore::OooCore(const MachineConfig &cfg)
    : cfg_(validated(cfg)), mem_(cfg.mem),
      branchPred_(cfg.branchHistBits, 2, /*initial=weakly taken*/ 2),
      rob_(cfg.robSize), robSeq_(cfg.robSize, 0),
      robState_(cfg.robSize, State::Waiting),
      robEst_(cfg.robSize, kCycleNever),
      robActual_(cfg.robSize, kCycleNever),
      robComplete_(cfg.robSize, kCycleNever),
      robStall_(cfg.robSize, 0),
      renameTable_(kNumArchRegs, -1), renameSeq_(kNumArchRegs, 0)
{
    if (cfg_.usesCht() || cfg_.chtShadow) {
        ChtParams cp = cfg_.cht;
        if (cfg_.scheme == OrderingScheme::Exclusive)
            cp.trackDistance = true;
        cht_ = std::make_unique<Cht>(cp);
    }

    switch (cfg_.hmp) {
      case HmpKind::Local:
        hmp_ = makeLocalHmp();
        break;
      case HmpKind::Chooser:
        hmp_ = makeChooserHmp();
        break;
      case HmpKind::LocalTiming:
        hmp_ = makeTimingLocalHmp();
        break;
      case HmpKind::AlwaysHit:
      case HmpKind::Perfect:
        hmp_.reset();
        break;
    }

    switch (cfg_.bankPred) {
      case BankPredKind::A:
        bankPred_ = makeBankPredictorA();
        break;
      case BankPredKind::B:
        bankPred_ = makeBankPredictorB();
        break;
      case BankPredKind::C:
        bankPred_ = makeBankPredictorC();
        break;
      case BankPredKind::Addr:
        bankPred_ = makeAddressBankPredictor();
        break;
      case BankPredKind::None:
        break;
    }

    switch (cfg_.bankMode) {
      case BankMode::Conventional:
        memPipeExtraLat_ = cfg_.conventionalExtraLat;
        break;
      case BankMode::DualScheduled:
        memPipeExtraLat_ = cfg_.dualSchedExtraLat;
        break;
      default:
        memPipeExtraLat_ = 0;
        break;
    }

    if (cfg_.scheme == OrderingScheme::StoreBarrier) {
        barrierCache_ =
            std::make_unique<BimodalPredictor>(cfg_.barrierEntries);
    }

    if (cfg_.scheme == OrderingScheme::StoreSets) {
        storeSets_ = std::make_unique<StoreSets>(cfg_.ssitEntries,
                                                 cfg_.storeSetCount);
    }

    if (cfg_.stridePrefetch)
        prefetcher_ = std::make_unique<LoadAddressPredictor>(1024);

    // Before registerStats(): the mob.partial_* counters register only
    // when partial-address disambiguation is on.
    mob_.setPartialBits(cfg_.mobPartialBits);

    registerStats();
}

OooCore::~OooCore() = default;

void
OooCore::registerStats()
{
    StatsGroup core = statsReg_.group("core");
    core.bindCounter("cycles", &res_.cycles, "simulated cycles");
    core.bindCounter("uops", &res_.uops, "retired uops");
    core.bindCounter("loads", &res_.loads, "retired loads");
    core.bindCounter("stores", &res_.stores, "retired stores (STAs)");
    core.bindCounter("branches", &res_.branches, "retired branches");
    core.bindCounter("branch_mispredicts", &res_.branchMispredicts);
    core.bindCounter("wasted_issues", &res_.wastedIssues,
                     "issue slots burnt by replays");
    core.bindCounter("replayed_uops", &res_.replayedUops,
                     "uops that issued more than once");
    core.bindCounter("prefetches", &res_.prefetches);
    core.derived("ipc", [this] { return res_.ipc(); },
                 "retired uops per cycle");

    StatsGroup sched = statsReg_.group("sched");
    sched.bindCounter("collision_penalties", &res_.collisionPenalties,
                      "loads that paid the collision penalty");
    sched.bindCounter("order_violations", &res_.orderViolations,
                      "true memory-order violations (squashes)");
    sched.bindCounter("forwarded", &res_.forwarded,
                      "loads serviced by store-to-load forwarding");
    sched.bindCounter("spec_forwards", &res_.specForwards);
    sched.bindCounter("spec_misforwards", &res_.specMisforwards);
    StatsGroup cls = sched.group("class");
    cls.bindCounter("not_conflicting", &res_.notConflicting);
    cls.bindCounter("anc_pnc", &res_.ancPnc);
    cls.bindCounter("anc_pc", &res_.ancPc);
    cls.bindCounter("ac_pc", &res_.acPc);
    cls.bindCounter("ac_pnc", &res_.acPnc);

    StatsGroup mem = statsReg_.group("mem");
    mem.bindCounter("load_misses", &res_.l1Misses,
                    "retired-load L1 misses (incl. dynamic)");
    mem.bindCounter("dynamic_misses", &res_.dynamicMisses,
                    "loads that hit a line still in flight");
    mem_.registerStats(mem);
    mob_.registerStats(mem.group("mob"));

    StatsGroup pred = statsReg_.group("pred");
    StatsGroup hmp = pred.group("hmp");
    hmp.bindCounter("ah_ph", &res_.ahPh, "actual hit, predicted hit");
    hmp.bindCounter("ah_pm", &res_.ahPm, "actual hit, predicted miss");
    hmp.bindCounter("am_ph", &res_.amPh, "actual miss, predicted hit");
    hmp.bindCounter("am_pm", &res_.amPm,
                    "actual miss, predicted miss");
    if (hmp_)
        hmp_->registerStats(hmp);
    if (cht_)
        cht_->registerStats(pred.group("cht"));
    StatsGroup bank = pred.group("bank");
    bank.bindCounter("conflicts", &res_.bankConflicts,
                     "conventional-pipe bank conflicts");
    bank.bindCounter("mispredicts", &res_.bankMispredicts,
                     "sliced-pipe wrong-bank re-executions");
    bank.bindCounter("replications", &res_.bankReplications,
                     "low-confidence all-pipe replications");
    if (bankPred_)
        bankPred_->registerStats(bank);

    statsReg_.bindCounter("audit.checks", &auditChecks_,
                          "invariant audits performed");

    // Telemetry histograms, default off (collect_histograms /
    // --histograms). Registered last so the off path leaves every
    // pre-existing export byte-identical.
    if (cfg_.collectHistograms) {
        StatsGroup hist = statsReg_.group("hist");
        hLoadUse_ = &hist.log2hist(
            "load_to_use", "cycles from load issue to data ready");
        hReplayDist_ = &hist.log2hist(
            "replay_distance",
            "cycles a wasted issue fired before its data (wakeup "
            "misprediction gap; top bucket = data unknown)");
        hOccSched_ = &hist.log2hist(
            "occ_sched", "scheduling-window occupancy per cycle");
        hOccRob_ = &hist.log2hist("occ_rob",
                                  "ROB occupancy per cycle");
        hOccMob_ = &hist.log2hist("occ_mob",
                                  "MOB occupancy per cycle");
        hChtConf_ = &hist.log2hist(
            "cht_confidence",
            "CHT saturating-counter value at each prediction");
        hHmpConf_ = &hist.log2hist(
            "hmp_confidence",
            "hit-miss predictor confidence at each prediction, in "
            "percent");
    }
}

SimResult
OooCore::run(TraceStream &trace)
{
    beginRun(trace);
    advanceTo(trace);
    return finishRun();
}

void
OooCore::beginRun(TraceStream &trace)
{
    res_ = SimResult{};
    res_.trace = trace.name();
    res_.config = std::string(orderingSchemeName(cfg_.scheme)) + "/" +
                  hmpKindName(cfg_.hmp);

    trace.reset();
    now_ = 0;
    headSeq_ = nextSeq_ = 0;
    rsCount_ = 0;
    poolUsed_ = 0;
    fetchBlockedUntil_ = 0;
    branchPending_ = false;
    haveLastSta_ = false;
    pathHist_ = 0;
    traceDone_ = false;
    std::fill(renameTable_.begin(), renameTable_.end(), -1);
    pendingCollision_.clear();
    mob_.clear();

    res_.statsInterval = cfg_.statsInterval;
    iv_ = IntervalCursor{};
    iv_.countdown = cfg_.statsInterval;
    auditCountdown_ = cfg_.auditInterval;

    resetHistograms();
}

void
OooCore::resetHistograms()
{
    // The single reset path for all seven distributions: beginRun()
    // and every loadState() branch that does not restore a complete
    // "hist" section route through here, so a run can never start (or
    // resume) with counts seeded from an earlier run on this core.
    if (!cfg_.collectHistograms)
        return; // pointers are null; nothing exists to carry over
    hLoadUse_->reset();
    hReplayDist_->reset();
    hOccSched_->reset();
    hOccRob_->reset();
    hOccMob_->reset();
    hChtConf_->reset();
    hHmpConf_->reset();
}

bool
OooCore::advanceTo(TraceStream &trace, Cycle stop_at)
{
    const bool skip_ahead = cycleSkipAhead();
    while (!traceDone_ || headSeq_ != nextSeq_) {
        // Side-effect-free stop check first: state on return is bit-
        // identical to an uninterrupted run entering cycle stop_at.
        if (now_ >= stop_at)
            return false;
        // Cooperative per-run deadline: counted in *simulated* cycles
        // so the same budget trips at the same instruction on any
        // host — the sweep supervisor maps this to a TIMEOUT cell.
        if (cfg_.maxCycles && now_ >= cfg_.maxCycles) {
            throw DeadlineError(makeDiag(
                DiagCode::DeadlineExceeded, "core", "max_cycles",
                "cycle budget of " + std::to_string(cfg_.maxCycles) +
                    " exhausted with " +
                    std::to_string(nextSeq_ - headSeq_) +
                    " uops in flight",
                now_));
        }
        // Cooperative cancellation (SIGINT/SIGTERM): polled every 16K
        // cycles so a long cell unwinds promptly at negligible cost.
        if ((now_ & 0x3FFF) == 0 && sweepInterruptRequested()) {
            throw InterruptError(makeDiag(
                DiagCode::Interrupted, "core", "",
                "simulation interrupted by request", now_));
        }
        cycleActivity_ = 0;
        {
            prof::Scope ps(prof::Stage::Execute);
            resolvePendingCollisions();
        }
        {
            prof::Scope ps(prof::Stage::Commit);
            retireStage();
        }
        {
            prof::Scope ps(prof::Stage::Issue);
            issueStage();
        }
        {
            prof::Scope ps(prof::Stage::Rename);
            renameStage(trace);
        }
        ++now_;
        if (hOccSched_) {
            hOccSched_->record(static_cast<std::uint64_t>(rsCount_));
            hOccRob_->record(nextSeq_ - headSeq_);
            hOccMob_->record(mob_.size());
        }
        if (cfg_.statsInterval) {
            iv_.occSched += static_cast<std::uint64_t>(rsCount_);
            iv_.occRob += nextSeq_ - headSeq_;
            if (--iv_.countdown == 0) {
                snapshotInterval();
                iv_.countdown = cfg_.statsInterval;
            }
        }
        if (cfg_.auditInterval && --auditCountdown_ == 0) {
            auditNow();
            auditCountdown_ = cfg_.auditInterval;
        }

        // Idle-cycle skip-ahead (docs/PERFORMANCE.md). A cycle that
        // mutated nothing leaves the machine frozen: every stage is a
        // pure function of state and now_, and every now_ comparison
        // is a monotone threshold, so cycles keep mutating nothing
        // until the earliest threshold is crossed. Jump there in one
        // step, replaying the per-cycle accounting above in bulk —
        // arithmetically identical to stepping (frozen occupancies
        // recorded k times are one record(v, k)). The jump target is
        // clamped so every scheduled boundary (stop_at, the cycle
        // deadline, the 16K interrupt poll, interval snapshots, audit
        // cadence) still fires at exactly the cycle it would have;
        // clamp landings re-detect idleness and skip again. Cycles on
        // a 16K poll boundary never start a skip: the next loop
        // iteration must run its top-of-loop poll first.
        if (skip_ahead && cycleActivity_ == 0 &&
            (now_ & 0x3FFF) != 0 && now_ < stop_at &&
            (!cfg_.maxCycles || now_ < cfg_.maxCycles) &&
            (!traceDone_ || headSeq_ != nextSeq_)) {
            const Cycle event = nextEventCycle();
            if (event != kCycleNever) {
                Cycle target = std::min(event, stop_at);
                if (cfg_.maxCycles)
                    target = std::min(target, cfg_.maxCycles);
                target = std::min(
                    target, ((now_ >> 14) + 1) << 14); // next poll
                if (cfg_.statsInterval)
                    target = std::min(target, now_ + iv_.countdown);
                if (cfg_.auditInterval)
                    target = std::min(target, now_ + auditCountdown_);
                const Cycle k = target - now_;
                if (k > 0) {
                    if (hOccSched_) {
                        hOccSched_->record(
                            static_cast<std::uint64_t>(rsCount_), k);
                        hOccRob_->record(nextSeq_ - headSeq_, k);
                        hOccMob_->record(mob_.size(), k);
                    }
                    if (cfg_.statsInterval) {
                        iv_.occSched +=
                            k * static_cast<std::uint64_t>(rsCount_);
                        iv_.occRob += k * (nextSeq_ - headSeq_);
                        iv_.countdown -= k;
                    }
                    if (cfg_.auditInterval)
                        auditCountdown_ -= k;
                    now_ = target;
                    if (cfg_.statsInterval && iv_.countdown == 0) {
                        snapshotInterval();
                        iv_.countdown = cfg_.statsInterval;
                    }
                    if (cfg_.auditInterval && auditCountdown_ == 0) {
                        auditNow();
                        auditCountdown_ = cfg_.auditInterval;
                    }
                }
            }
        }
        // A stuck machine is a simulator bug; fail loudly. The bound
        // is per-uop amortized and must scale with the configured
        // memory latency: a fixed 64 cycles/uop false-fires on slow
        // hierarchies (e.g. memLatency 2000 pointer chases) that are
        // making perfectly sound forward progress.
        assert(now_ < (trace.size() + 1000) *
                          (64 + cfg_.mem.memLatency) &&
               "simulated core appears deadlocked");
    }
    return true;
}

Cycle
OooCore::nextEventCycle() const
{
    Cycle event = kCycleNever;
    // now_ is the next cycle to execute (the skip decision runs after
    // ++now_), and every gate activates the cycle it compares equal —
    // "completeAt <= now" retires at exactly completeAt — so a
    // threshold equal to now_ is an event for the pending cycle, not a
    // past one. It yields k == 0: no skip, step normally.
    const auto consider = [&event, this](Cycle c) {
        if (c != kCycleNever && c >= now_ && c < event)
            event = c;
    };
    // Fetch resumes at fetchBlockedUntil_ — but only if something is
    // fetchable then: with the trace drained nothing arrives, and
    // with a mispredicted branch pending the unblock is driven by the
    // branch's own issue (covered by its slot thresholds below).
    if (!traceDone_ && !branchPending_)
        consider(fetchBlockedUntil_);
    // Every in-flight slot's time thresholds: replay backoff and
    // wakeup estimate gate issue, actual readiness gates the
    // burn-vs-issue decision, completion gates retirement (and store
    // completion queries against the MOB, whose STA/STD timestamps
    // are set from these same issue events).
    for (SeqNum s = headSeq_; s != nextSeq_; ++s) {
        const int slot = slotOf(s);
        if (robState_[slot] == State::Waiting)
            consider(robStall_[slot]);
        consider(robEst_[slot]);
        consider(robActual_[slot]);
        consider(robComplete_[slot]);
    }
    // Belt and braces: in-window stores' STA/STD completion times.
    // Every future one is mirrored by an in-flight STA/STD uop's
    // completeAt above, but the scan is cheap and an underestimate
    // only costs one extra (idle) stepped cycle.
    for (std::size_t i = 0, n = mob_.size(); i < n; ++i) {
        const Mob::StoreRec &r = mob_.storeAt(i);
        consider(r.staDoneAt);
        consider(r.stdDoneAt);
    }
    return event;
}

SimResult
OooCore::finishRun()
{
    res_.cycles = now_;
    if (cfg_.statsInterval && now_ > iv_.cycle)
        snapshotInterval(); // flush the final partial interval
    if (cfg_.auditInterval)
        auditNow(); // the drained machine must also be sound
    if (cfg_.collectHistograms)
        exportHistograms();
    return res_;
}

namespace
{

/** Fixed field order of one serialized RobEntry (see packRobEntry). */
constexpr std::size_t kRobEntryArity = 37;

json::Value
packU(std::uint64_t v)
{
    return json::Value(v);
}

json::Value
packI(std::int64_t v)
{
    return json::Value(v);
}

json::Value
packB(bool v)
{
    return json::Value(static_cast<std::uint64_t>(v ? 1 : 0));
}

bool
loadBool(const json::Value &row, std::size_t k)
{
    const std::uint64_t v = row.at(k).asU64();
    if (v > 1)
        stateio::fail("rob", "boolean field out of range");
    return v != 0;
}

} // namespace

json::Value
OooCore::saveState() const
{
    json::Value st = json::Value::object();

    json::Value core = json::Value::object();
    core.set("now", now_);
    core.set("head_seq", headSeq_);
    core.set("next_seq", nextSeq_);
    core.set("rs_count", static_cast<std::uint64_t>(rsCount_));
    core.set("pool_used", static_cast<std::uint64_t>(poolUsed_));
    core.set("fetch_blocked_until", fetchBlockedUntil_);
    core.set("branch_pending", branchPending_);
    core.set("last_sta_seq", lastStaSeq_);
    core.set("have_last_sta", haveLastSta_);
    core.set("path_hist", pathHist_);
    core.set("trace_done", traceDone_);
    core.set("audit_checks", auditChecks_);
    core.set("audit_countdown", auditCountdown_);
    core.set("rename_table", stateio::packInts(renameTable_));
    core.set("rename_seq", stateio::packInts(renameSeq_));
    // pendingCollision_ is the one dynamically-sized core vector.
    json::Value pend = json::Value::array();
    for (const int slot : pendingCollision_)
        pend.push(packI(slot));
    core.set("pending_collision", std::move(pend));
    st.set("core", std::move(core));

    // Every ROB slot verbatim (not just [headSeq_, nextSeq_)): stale
    // slots are still reachable through rename-table guards, and
    // restoring them byte-for-byte sidesteps any reasoning about
    // which stale fields those guards may read.
    json::Value rob = json::Value::array();
    for (std::size_t s = 0; s < rob_.size(); ++s) {
        const RobEntry &e = rob_[s];
        json::Value row = json::Value::array();
        // Field order is the on-disk format: the first ten positions
        // predate the SoA split and now interleave array lanes with
        // cold record fields.
        row.push(packU(robSeq_[s]));
        row.push(packU(static_cast<std::uint64_t>(robState_[s])));
        row.push(packI(e.src1Slot));
        row.push(packI(e.src2Slot));
        row.push(packU(e.src1Seq));
        row.push(packU(e.src2Seq));
        row.push(packU(robEst_[s]));
        row.push(packU(robActual_[s]));
        row.push(packU(robComplete_[s]));
        row.push(packU(robStall_[s]));
        row.push(packB(e.everWasted));
        row.push(packU(static_cast<std::uint64_t>(e.cls)));
        row.push(packB(e.predColliding));
        row.push(packU(e.predDistance));
        row.push(packU(e.actualDistance));
        row.push(packB(e.hmPredMiss));
        row.push(packB(e.hmActualMiss));
        row.push(packB(e.collisionPenalized));
        row.push(packU(e.waitStoreSeq));
        row.push(packB(e.waitingOnStore));
        row.push(packB(e.violationSquash));
        row.push(packB(e.hasExclTarget));
        row.push(packU(e.exclStoreSeq));
        row.push(packU(e.ssWaitSeq));
        row.push(packU(e.pairSeq));
        row.push(packB(e.isPairedStd));
        row.push(packB(e.mispredictedBranch));
        row.push(packB(e.bankMispredicted));
        row.push(packU(e.pathAtPredict));
        row.push(packU(e.uop.pc));
        row.push(packU(static_cast<std::uint64_t>(e.uop.cls)));
        row.push(packI(e.uop.src1));
        row.push(packI(e.uop.src2));
        row.push(packI(e.uop.dst));
        row.push(packU(e.uop.addr));
        row.push(packU(e.uop.memSize));
        row.push(packB(e.uop.taken));
        rob.push(std::move(row));
    }
    st.set("rob", std::move(rob));

    json::Value iv = json::Value::object();
    iv.set("cycle", iv_.cycle);
    iv.set("uops", iv_.uops);
    iv.set("wasted", iv_.wasted);
    iv.set("loads", iv_.loads);
    iv.set("classified", iv_.classified);
    iv.set("cht_mis", iv_.chtMis);
    iv.set("hmp_mis", iv_.hmpMis);
    iv.set("bank_mis", iv_.bankMis);
    iv.set("occ_sched", iv_.occSched);
    iv.set("occ_rob", iv_.occRob);
    iv.set("countdown", iv_.countdown);
    st.set("interval", std::move(iv));

    st.set("result", res_.saveState());
    st.set("mem", mem_.saveState());
    st.set("mob", mob_.saveState());
    st.set("branch_pred", branchPred_.saveState());
    if (cht_)
        st.set("cht", cht_->saveState());
    if (hmp_)
        st.set("hmp", hmp_->saveState());
    if (bankPred_)
        st.set("bank_pred", bankPred_->saveState());
    if (barrierCache_)
        st.set("barrier_cache", barrierCache_->saveState());
    if (storeSets_)
        st.set("store_sets", storeSets_->saveState());
    if (prefetcher_)
        st.set("prefetcher", prefetcher_->saveState());
    if (faults_)
        st.set("faults", faults_->saveState());

    if (cfg_.collectHistograms) {
        json::Value h = json::Value::object();
        h.set("load_to_use", hLoadUse_->toJson());
        h.set("replay_distance", hReplayDist_->toJson());
        h.set("occ_sched", hOccSched_->toJson());
        h.set("occ_rob", hOccRob_->toJson());
        h.set("occ_mob", hOccMob_->toJson());
        h.set("cht_confidence", hChtConf_->toJson());
        h.set("hmp_confidence", hHmpConf_->toJson());
        st.set("hist", std::move(h));
    }

    return st;
}

void
OooCore::loadState(const json::Value &state, TraceStream &trace)
{
    const json::Value &core = stateio::need(state, "core");
    now_ = stateio::needU64(core, "now");
    headSeq_ = stateio::needU64(core, "head_seq");
    nextSeq_ = stateio::needU64(core, "next_seq");
    const std::uint64_t rs = stateio::needU64(core, "rs_count");
    const std::uint64_t pool = stateio::needU64(core, "pool_used");
    if (rs > static_cast<std::uint64_t>(cfg_.schedWindow) ||
        pool > static_cast<std::uint64_t>(cfg_.regPool)) {
        stateio::fail("core", "occupancy exceeds the configured "
                              "window/pool sizes");
    }
    rsCount_ = static_cast<int>(rs);
    poolUsed_ = static_cast<int>(pool);
    fetchBlockedUntil_ = stateio::needU64(core, "fetch_blocked_until");
    branchPending_ = stateio::needBool(core, "branch_pending");
    lastStaSeq_ = stateio::needU64(core, "last_sta_seq");
    haveLastSta_ = stateio::needBool(core, "have_last_sta");
    pathHist_ = stateio::needU64(core, "path_hist");
    traceDone_ = stateio::needBool(core, "trace_done");
    auditChecks_ = stateio::needU64(core, "audit_checks");
    auditCountdown_ = stateio::needU64(core, "audit_countdown");
    stateio::unpackInts(core, "rename_table", renameTable_);
    stateio::unpackInts(core, "rename_seq", renameSeq_);
    const json::Value &pend = stateio::need(core, "pending_collision");
    if (!pend.isArray())
        stateio::fail("pending_collision", "expected an array");
    pendingCollision_.clear();
    pendingCollision_.reserve(pend.size());
    for (std::size_t k = 0; k < pend.size(); ++k) {
        const std::int64_t slot = pend.at(k).asI64();
        if (slot < 0 ||
            slot >= static_cast<std::int64_t>(rob_.size()))
            stateio::fail("pending_collision", "slot out of range");
        pendingCollision_.push_back(static_cast<int>(slot));
    }

    const json::Value &rob = stateio::need(state, "rob");
    if (!rob.isArray() || rob.size() != rob_.size()) {
        stateio::fail("rob", "ROB image does not match the configured "
                             "rob_size");
    }
    for (std::size_t s = 0; s < rob_.size(); ++s) {
        const json::Value &row = rob.at(s);
        if (!row.isArray() || row.size() != kRobEntryArity)
            stateio::fail("rob", "malformed ROB entry row");
        RobEntry &e = rob_[s];
        robSeq_[s] = row.at(0).asU64();
        const std::uint64_t stv = row.at(1).asU64();
        if (stv > static_cast<std::uint64_t>(State::Issued))
            stateio::fail("rob", "entry state out of range");
        robState_[s] = static_cast<State>(stv);
        e.src1Slot = static_cast<int>(row.at(2).asI64());
        e.src2Slot = static_cast<int>(row.at(3).asI64());
        e.src1Seq = row.at(4).asU64();
        e.src2Seq = row.at(5).asU64();
        robEst_[s] = row.at(6).asU64();
        robActual_[s] = row.at(7).asU64();
        robComplete_[s] = row.at(8).asU64();
        robStall_[s] = row.at(9).asU64();
        e.everWasted = loadBool(row, 10);
        const std::uint64_t clv = row.at(11).asU64();
        if (clv > static_cast<std::uint64_t>(LoadClass::Colliding))
            stateio::fail("rob", "load class out of range");
        e.cls = static_cast<LoadClass>(clv);
        e.predColliding = loadBool(row, 12);
        e.predDistance = static_cast<unsigned>(row.at(13).asU64());
        e.actualDistance = static_cast<unsigned>(row.at(14).asU64());
        e.hmPredMiss = loadBool(row, 15);
        e.hmActualMiss = loadBool(row, 16);
        e.collisionPenalized = loadBool(row, 17);
        e.waitStoreSeq = row.at(18).asU64();
        e.waitingOnStore = loadBool(row, 19);
        e.violationSquash = loadBool(row, 20);
        e.hasExclTarget = loadBool(row, 21);
        e.exclStoreSeq = row.at(22).asU64();
        e.ssWaitSeq = row.at(23).asU64();
        e.pairSeq = row.at(24).asU64();
        e.isPairedStd = loadBool(row, 25);
        e.mispredictedBranch = loadBool(row, 26);
        e.bankMispredicted = loadBool(row, 27);
        e.pathAtPredict = row.at(28).asU64();
        e.uop.pc = row.at(29).asU64();
        const std::uint64_t ucv = row.at(30).asU64();
        if (ucv > static_cast<std::uint64_t>(UopClass::Branch))
            stateio::fail("rob", "uop class out of range");
        e.uop.cls = static_cast<UopClass>(ucv);
        e.uop.src1 = static_cast<std::int8_t>(row.at(31).asI64());
        e.uop.src2 = static_cast<std::int8_t>(row.at(32).asI64());
        e.uop.dst = static_cast<std::int8_t>(row.at(33).asI64());
        e.uop.addr = row.at(34).asU64();
        e.uop.memSize =
            static_cast<std::uint8_t>(row.at(35).asU64());
        e.uop.taken = loadBool(row, 36);
    }

    const json::Value &iv = stateio::need(state, "interval");
    iv_.cycle = stateio::needU64(iv, "cycle");
    iv_.uops = stateio::needU64(iv, "uops");
    iv_.wasted = stateio::needU64(iv, "wasted");
    iv_.loads = stateio::needU64(iv, "loads");
    iv_.classified = stateio::needU64(iv, "classified");
    iv_.chtMis = stateio::needU64(iv, "cht_mis");
    iv_.hmpMis = stateio::needU64(iv, "hmp_mis");
    iv_.bankMis = stateio::needU64(iv, "bank_mis");
    iv_.occSched = stateio::needU64(iv, "occ_sched");
    iv_.occRob = stateio::needU64(iv, "occ_rob");
    iv_.countdown = stateio::needU64(iv, "countdown");

    res_.loadState(stateio::need(state, "result"));
    mem_.loadState(stateio::need(state, "mem"));
    mob_.loadState(stateio::need(state, "mob"));
    branchPred_.loadState(stateio::need(state, "branch_pred"));

    // Optional components restore only when BOTH the machine and the
    // snapshot have them. A cross-scheme warmup fork (snapshot taken
    // under the grid's base scheme, restored into a variant) leaves
    // the variant-only structures cold — the documented semantics of
    // the warm-once protocol (docs/ROBUSTNESS.md, "Snapshots").
    const auto loadOpt = [&state](const char *key, auto &component) {
        if (!component)
            return;
        if (const json::Value *sec = state.find(key))
            component->loadState(*sec);
    };
    loadOpt("cht", cht_);
    loadOpt("hmp", hmp_);
    loadOpt("bank_pred", bankPred_);
    loadOpt("barrier_cache", barrierCache_);
    loadOpt("store_sets", storeSets_);
    loadOpt("prefetcher", prefetcher_);
    if (faults_) {
        if (const json::Value *sec = state.find("faults"))
            faults_->loadState(*sec);
    }

    if (cfg_.collectHistograms) {
        if (const json::Value *h = state.find("hist")) {
            // All seven distributions restore atomically or the load
            // fails: a partial section would leave some histograms
            // carrying this core's previous-run counts next to the
            // snapshot's — exactly the donor-seeded mixture the
            // strict contract forbids. Restore into temporaries
            // first so a throw mutates nothing.
            if (!h->isObject() || h->size() != 7) {
                stateio::fail("hist",
                              "histogram section must contain exactly "
                              "the seven known distributions");
            }
            Log2Histogram lu = Log2Histogram::fromJson(
                stateio::need(*h, "load_to_use"));
            Log2Histogram rd = Log2Histogram::fromJson(
                stateio::need(*h, "replay_distance"));
            Log2Histogram os = Log2Histogram::fromJson(
                stateio::need(*h, "occ_sched"));
            Log2Histogram orb = Log2Histogram::fromJson(
                stateio::need(*h, "occ_rob"));
            Log2Histogram om = Log2Histogram::fromJson(
                stateio::need(*h, "occ_mob"));
            Log2Histogram cc = Log2Histogram::fromJson(
                stateio::need(*h, "cht_confidence"));
            Log2Histogram hc = Log2Histogram::fromJson(
                stateio::need(*h, "hmp_confidence"));
            *hLoadUse_ = lu;
            *hReplayDist_ = rd;
            *hOccSched_ = os;
            *hOccRob_ = orb;
            *hOccMob_ = om;
            *hChtConf_ = cc;
            *hHmpConf_ = hc;
        } else {
            // Snapshot written with histograms off, restored into a
            // config newly enabling them (warm-fork): the donor has
            // no distribution state, so this run's must start cold —
            // never carry counts from whatever this core ran before.
            resetHistograms();
        }
    }

    // Labels are config-derived, never snapshot-derived: a warmup
    // fork must report the scheme it RUNS, not the one it warmed
    // under, and for a same-config restore the recomputation is
    // byte-identical anyway.
    res_.trace = trace.name();
    res_.config = std::string(orderingSchemeName(cfg_.scheme)) + "/" +
                  hmpKindName(cfg_.hmp);
    res_.statsInterval = cfg_.statsInterval;

    // Every uop renamed so far came from exactly one trace.next(), so
    // the snapshot's fetch position IS nextSeq_.
    trace.seek(nextSeq_);
}

void
OooCore::exportHistograms()
{
    // Mirror the "hist.*" registry subtree into the SimResult so
    // batch cells carry their histograms through the journal/JSON
    // path (results travel; the registry stays with the core).
    json::Value h = json::Value::object();
    h.set("load_to_use", hLoadUse_->toJson());
    h.set("replay_distance", hReplayDist_->toJson());
    h.set("occ_sched", hOccSched_->toJson());
    h.set("occ_rob", hOccRob_->toJson());
    h.set("occ_mob", hOccMob_->toJson());
    h.set("cht_confidence", hChtConf_->toJson());
    h.set("hmp_confidence", hHmpConf_->toJson());
    res_.histograms = std::move(h);
}

AuditView
OooCore::auditView() const
{
    AuditView v;
    v.robSize = cfg_.robSize;
    v.schedWindow = cfg_.schedWindow;
    v.regPool = cfg_.regPool;
    v.headSeq = headSeq_;
    v.nextSeq = nextSeq_;
    v.rsCount = rsCount_;
    v.poolUsed = poolUsed_;
    v.entries.reserve(nextSeq_ - headSeq_);
    for (SeqNum s = headSeq_; s < nextSeq_; ++s) {
        const int slot = slotOf(s);
        const RobEntry &re = rob_[slot];
        AuditView::Entry e;
        e.seq = robSeq_[slot];
        e.slot = slot;
        e.waiting = robState_[slot] == State::Waiting;
        e.src1Slot = re.src1Slot;
        e.src2Slot = re.src2Slot;
        e.src1Seq = re.src1Seq;
        e.src2Seq = re.src2Seq;
        e.isPairedStd = re.isPairedStd;
        e.pairSeq = re.pairSeq;
        v.entries.push_back(e);
    }
    v.mobStores.reserve(mob_.size());
    for (std::size_t i = 0, n = mob_.size(); i < n; ++i)
        v.mobStores.push_back(mob_.storeAt(i).seq);
    return v;
}

void
OooCore::auditNow()
{
    ++auditChecks_;
    if (auto diags = StateAuditor::check(auditView(), now_);
        !diags.empty()) {
        throw AuditError(std::move(diags));
    }
}

void
OooCore::snapshotInterval()
{
    const Cycle dc = now_ - iv_.cycle;
    if (dc == 0)
        return;

    const auto delta = [](std::uint64_t cur, std::uint64_t &prev) {
        const std::uint64_t d = cur - prev;
        prev = cur;
        return d;
    };
    const std::uint64_t du = delta(res_.uops, iv_.uops);
    const std::uint64_t dw = delta(res_.wastedIssues, iv_.wasted);
    const std::uint64_t dl = delta(res_.loads, iv_.loads);
    const std::uint64_t dcls =
        delta(res_.classifiedLoads(), iv_.classified);
    const std::uint64_t dcht =
        delta(res_.ancPc + res_.acPnc, iv_.chtMis);
    const std::uint64_t dhmp = delta(res_.ahPm + res_.amPh, iv_.hmpMis);
    const std::uint64_t dbank =
        delta(res_.bankMispredicts, iv_.bankMis);

    IntervalSample s;
    s.cycle = now_;
    s.uops = du;
    const double cyc = static_cast<double>(dc);
    s.ipc = static_cast<double>(du) / cyc;
    s.replayRate = static_cast<double>(dw) / cyc;
    s.chtMispredictRate =
        dcls ? static_cast<double>(dcht) / static_cast<double>(dcls)
             : 0.0;
    s.hmpMispredictRate =
        dl ? static_cast<double>(dhmp) / static_cast<double>(dl) : 0.0;
    s.bankMispredictRate =
        dl ? static_cast<double>(dbank) / static_cast<double>(dl)
           : 0.0;
    s.schedOccupancy = static_cast<double>(iv_.occSched) / cyc /
                       static_cast<double>(cfg_.schedWindow);
    s.robOccupancy = static_cast<double>(iv_.occRob) / cyc /
                     static_cast<double>(cfg_.robSize);
    iv_.occSched = iv_.occRob = 0;
    iv_.cycle = now_;
    res_.intervals.push_back(s);
}

Cycle
OooCore::srcEstimate(int slot, SeqNum seq) const
{
    if (slot < 0)
        return 0;
    if (robSeq_[slot] != seq || !inWindow(seq))
        return 0; // producer retired: value architecturally ready
    return robEst_[slot];
}

Cycle
OooCore::srcActual(int slot, SeqNum seq) const
{
    if (slot < 0)
        return 0;
    if (robSeq_[slot] != seq || !inWindow(seq))
        return 0;
    return robActual_[slot];
}

void
OooCore::resolvePendingCollisions()
{
    if (pendingCollision_.empty())
        return;
    // Stable swap-compact: one pass with a write cursor, keepers
    // sliding left in their original order. The former middle-erase
    // walk was O(n^2) in resolutions per cycle and made the surviving
    // order an artifact of erase mechanics; resolution and retry
    // order here is exactly arrival (push_back) order, pinned by the
    // PendingCollisionOrder regression test.
    std::size_t w = 0;
    for (std::size_t r = 0; r < pendingCollision_.size(); ++r) {
        const int slot = pendingCollision_[r];
        RobEntry &e = rob_[slot];
        if (!e.waitingOnStore) {
            ++cycleActivity_;
            continue; // resolved elsewhere; drop the stale entry
        }
        const Mob::StoreRec *rec = mob_.get(e.waitStoreSeq);
        if (rec == nullptr) {
            // The store retired, so both its parts completed earlier;
            // release the load with the penalty from now.
            robActual_[slot] = robEst_[slot] = robComplete_[slot] =
                now_ + cfg_.collisionPenalty;
            e.waitingOnStore = false;
            ++res_.forwarded;
            ++cycleActivity_;
            traceUop(TraceEvent::Forward, slot);
            if (hLoadUse_)
                hLoadUse_->record(robComplete_[slot] - now_);
            continue;
        }
        if (rec->staDoneAt != kCycleNever &&
            rec->stdDoneAt != kCycleNever) {
            const Cycle data =
                std::max(now_, std::max(rec->staDoneAt,
                                        rec->stdDoneAt)) +
                cfg_.collisionPenalty + cfg_.mem.l1.latency;
            robActual_[slot] = robEst_[slot] = robComplete_[slot] =
                data;
            e.waitingOnStore = false;
            ++res_.forwarded;
            ++cycleActivity_;
            traceUop(TraceEvent::Forward, slot);
            if (hLoadUse_)
                hLoadUse_->record(data - now_);
            if (e.violationSquash)
                fetchBlockedUntil_ = std::max(fetchBlockedUntil_, data);
            continue;
        }
        pendingCollision_[w++] = slot;
    }
    pendingCollision_.resize(w);
}

void
OooCore::countLoadClass(const RobEntry &e)
{
    switch (e.cls) {
      case LoadClass::NotConflicting:
        ++res_.notConflicting;
        break;
      case LoadClass::ConflictNotColliding:
        if (e.predColliding)
            ++res_.ancPc;
        else
            ++res_.ancPnc;
        break;
      case LoadClass::Colliding:
        if (e.predColliding)
            ++res_.acPc;
        else
            ++res_.acPnc;
        break;
      case LoadClass::Unclassified:
        // Should not happen: every load is classified before issue.
        assert(false && "retiring unclassified load");
        break;
    }
}

void
OooCore::retireStage()
{
    int retired = 0;
    while (headSeq_ != nextSeq_ && retired < cfg_.retireWidth) {
        const int slot = slotOf(headSeq_);
        RobEntry &e = rob_[slot];
        if (robState_[slot] != State::Issued ||
            robComplete_[slot] > now_) {
            break;
        }

        ++res_.uops;
        ++cycleActivity_;
        traceUop(TraceEvent::Retire, slot);
        const Uop &u = e.uop;
        if (u.isLoad()) {
            ++res_.loads;
            countLoadClass(e);
            if (cht_) {
                cht_->update(u.pc, e.cls == LoadClass::Colliding,
                             e.actualDistance, e.pathAtPredict);
            }
            if (hmp_)
                hmp_->update(u.pc, e.hmActualMiss, u.addr);
        } else if (u.isSta()) {
            ++res_.stores;
        } else if (u.isStd()) {
            // The store leaves the MOB window only once its data part
            // retires; until then younger loads must still see it.
            if (barrierCache_ || storeSets_) {
                const Mob::StoreRec *rec = mob_.get(e.pairSeq);
                assert(rec != nullptr);
                // [Hess95]: increment on a caused violation,
                // decrement otherwise.
                if (barrierCache_)
                    barrierCache_->update(rec->pc,
                                          rec->causedViolation);
                // [Chry98]: the completed store empties its LFST
                // slot.
                if (storeSets_)
                    storeSets_->storeCompleted(rec->pc, rec->seq);
            }
            mob_.retire(e.pairSeq);
        } else if (u.isBranch()) {
            ++res_.branches;
            if (e.mispredictedBranch)
                ++res_.branchMispredicts;
        }
        if (u.dst >= 0)
            --poolUsed_;
        ++headSeq_;
        ++retired;
    }
}

bool
OooCore::schemeAllowsLoad(int slot) const
{
    const RobEntry &e = rob_[slot];
    const SeqNum seq = robSeq_[slot];
    switch (cfg_.scheme) {
      case OrderingScheme::Traditional:
        return mob_.allOlderAddrKnown(seq, now_);
      case OrderingScheme::Opportunistic:
        return true;
      case OrderingScheme::Postponing:
        if (!mob_.allOlderAddrKnown(seq, now_))
            return false;
        return !e.predColliding || mob_.allOlderDataKnown(seq, now_);
      case OrderingScheme::Inclusive:
        return !e.predColliding || mob_.allOlderComplete(seq, now_);
      case OrderingScheme::Exclusive: {
        if (!e.predColliding)
            return true;
        if (!e.hasExclTarget) {
            // Colliding but no distance annotation yet: inclusive
            // behaviour (wait for everything older).
            return mob_.allOlderComplete(seq, now_);
        }
        const Mob::StoreRec *s = mob_.get(e.exclStoreSeq);
        if (s == nullptr || s->completeAt(now_))
            return true;
        // Speculative value forwarding: once the paired store's DATA
        // is ready, the load may consume it without waiting for the
        // address check.
        return cfg_.exclusiveSpecForward && s->dataKnownAt(now_);
      }
      case OrderingScheme::Perfect: {
        const Mob::StoreRec *m = mob_.youngestOverlapOlder(
            seq, e.uop.addr, e.uop.memSize);
        return m == nullptr || m->completeAt(now_);
      }
      case OrderingScheme::StoreBarrier:
        // [Hess95]: loads may pass any store except those whose
        // barrier counter fired at fetch time.
        return !mob_.anyBarrierOlderIncomplete(seq, now_);
      case OrderingScheme::StoreSets: {
        // [Chry98]: wait for the set's last fetched store, if any.
        if (e.ssWaitSeq == StoreSets::kNoStoreSeq)
            return true;
        const Mob::StoreRec *s = mob_.get(e.ssWaitSeq);
        return s == nullptr || s->completeAt(now_);
      }
    }
    return true;
}

void
OooCore::classifyLoad(int slot)
{
    RobEntry &e = rob_[slot];
    if (e.cls != LoadClass::Unclassified)
        return;
    const SeqNum seq = robSeq_[slot];
    ++cycleActivity_; // the classification itself is a state change
    // Colliding: the youngest older store overlapping the load's
    // address is still incomplete — advancing the load would return
    // stale data and force a re-execution (the collision penalty).
    // This covers both the unknown-address case and the P6 "wrong
    // load-STD ordering" case (address known, data not).
    const Mob::StoreRec *m =
        mob_.youngestOverlapOlder(seq, e.uop.addr, e.uop.memSize);
    if (m != nullptr && !m->completeAt(now_)) {
        e.cls = LoadClass::Colliding;
        e.actualDistance =
            mob_.overlapDistance(seq, e.uop.addr, e.uop.memSize);
        return;
    }
    // Conflicting: some older store's address is unknown at the
    // load's first schedule opportunity (the paper's definition), so
    // the load cannot be proven independent yet.
    if (mob_.anyUnknownAddrOlder(seq, now_))
        e.cls = LoadClass::ConflictNotColliding;
    else
        e.cls = LoadClass::NotConflicting;
}

void
OooCore::executeLoad(int slot)
{
    RobEntry &e = rob_[slot];
    const SeqNum seq = robSeq_[slot];
    const Uop &u = e.uop;
    // Train the bank predictor as soon as the address generates —
    // waiting for retirement would leave in-flight instances of the
    // same load unaccounted and make stride predictions lag.
    if (bankPred_)
        bankPred_->updateAddr(u.pc, u.addr, bankOf(u.addr));
    // The memory-pipe organisation adds its structural latency here
    // (crossbar/decision stage or second-level scheduler, Figure 4).
    Cycle agu_done = now_ + cfg_.aguLat + memPipeExtraLat_;
    const Cycle l1_lat = cfg_.mem.l1.latency;
    if (e.bankMispredicted) {
        // Sliced pipe, wrong bank: the load re-executes through the
        // correct pipe once the bank is known.
        ++res_.bankMispredicts;
        agu_done += cfg_.aguLat + l1_lat;
    }

    // Partial-address disambiguation (mob_partial_bits > 0): the
    // narrow comparator flags a false 4K-alias dependence on an older
    // known-address store, and the load conservatively pays the
    // re-execution penalty before proceeding. Off by default (bits=0),
    // keeping the full-address timing byte-identical.
    if (cfg_.mobPartialBits != 0 &&
        mob_.partialAliasOlder(seq, u.addr, u.memSize, now_)) {
        agu_done += cfg_.collisionPenalty;
    }

    // Consult the MOB with oracle addresses for the ordering outcome.
    const Mob::StoreRec *m =
        mob_.youngestOverlapOlder(seq, u.addr, u.memSize);

    bool actual_miss = false;
    bool lazy = false;
    bool spec_forwarded = false;
    Cycle data = 0;

    // Exclusive pairing: take the paired store's data before its
    // address resolved (section 2.1's value-forwarding extension).
    if (cfg_.exclusiveSpecForward && e.predColliding &&
        e.hasExclTarget) {
        const Mob::StoreRec *pair = mob_.get(e.exclStoreSeq);
        if (pair != nullptr && pair->dataKnownAt(now_) &&
            !pair->addrKnownAt(now_)) {
            ++res_.specForwards;
            spec_forwarded = true;
            if (pair == m) {
                // Correct pairing: the data really is the load's.
                data = agu_done + l1_lat;
                ++res_.forwarded;
                traceUop(TraceEvent::Forward, slot);
            } else {
                // Wrong pairing: detected when the pair's STA
                // resolves; the load (and its slice) re-executes.
                ++res_.specMisforwards;
                ++res_.collisionPenalties;
                traceUop(TraceEvent::Squash, slot);
                e.collisionPenalized = true;
                if (m != nullptr && (m->staDoneAt == kCycleNever ||
                                     m->stdDoneAt == kCycleNever)) {
                    lazy = true;
                    e.waitingOnStore = true;
                    e.violationSquash = true;
                    e.waitStoreSeq = m->seq;
                    pendingCollision_.push_back(slot);
                } else if (m != nullptr) {
                    // Real producer is another (complete) store.
                    data = std::max(agu_done,
                                    std::max(m->staDoneAt,
                                             m->stdDoneAt) +
                                        cfg_.collisionPenalty) +
                           l1_lat;
                    fetchBlockedUntil_ =
                        std::max(fetchBlockedUntil_, data);
                    ++res_.forwarded;
                    traceUop(TraceEvent::Forward, slot);
                } else {
                    // Real value comes from memory: re-executed
                    // access after the penalty.
                    const auto acc = mem_.access(
                        u.addr, agu_done + cfg_.collisionPenalty);
                    data = acc.readyAt;
                    actual_miss = !acc.l1Hit;
                    fetchBlockedUntil_ =
                        std::max(fetchBlockedUntil_, data);
                }
            }
        }
    }

    if (spec_forwarded) {
        // Timing resolved above; fall through to the HMP accounting.
    } else if (m && m->completeAt(now_)) {
        // Clean store-to-load forwarding.
        data = agu_done + l1_lat;
        ++res_.forwarded;
        traceUop(TraceEvent::Forward, slot);
    } else if (m) {
        // The load was scheduled against an incomplete store it
        // depends on: the wrong-ordering case. Its data is delayed to
        // the store's completion plus the collision penalty,
        // modelling the re-execution of the load.
        ++res_.collisionPenalties;
        e.collisionPenalized = true;
        // If the store's address was not even resolved when the load
        // executed, this is a true memory-order violation: it is only
        // detected when the STA executes, and the machine recovers by
        // squashing and re-executing the load's slice — modelled as a
        // front-end disturbance until the load's re-execution
        // completes (cf. the paper: "the wrongly advanced load and
        // all its dependent instructions must be re-executed or even
        // re-scheduled").
        const bool violation = !m->addrKnownAt(now_);
        if (violation) {
            ++res_.orderViolations;
            traceUop(TraceEvent::Squash, slot);
        }
        // The dependence baselines train on the stores that caused
        // wrong ordering.
        mob_.markViolation(m->seq);
        if (storeSets_) {
            const Mob::StoreRec *vr = mob_.get(m->seq);
            if (vr != nullptr)
                storeSets_->violation(u.pc, vr->pc);
        }
        if (m->staDoneAt != kCycleNever && m->stdDoneAt != kCycleNever) {
            // After the store completes and the re-schedule penalty
            // elapses, the load re-executes and pays its access
            // latency again.
            data = std::max(agu_done,
                            std::max(m->staDoneAt, m->stdDoneAt) +
                                cfg_.collisionPenalty) +
                   l1_lat;
            ++res_.forwarded;
            traceUop(TraceEvent::Forward, slot);
            if (violation) {
                // Detected when the STA executes; the squash-and-
                // refetch recovery keeps the front end from making
                // progress until the re-executed load's data returns.
                fetchBlockedUntil_ =
                    std::max(fetchBlockedUntil_, data);
            }
        } else {
            lazy = true;
            e.waitingOnStore = true;
            e.violationSquash = violation;
            e.waitStoreSeq = m->seq;
            pendingCollision_.push_back(slot);
        }
    } else {
        // Normal cache access.
        const auto acc = mem_.access(u.addr, agu_done);
        data = acc.readyAt;
        actual_miss = !acc.l1Hit;
        if (acc.dynamicMiss)
            ++res_.dynamicMisses;
        // Injected timing fault: strictly additive, so readiness only
        // moves later — the schedule degrades, it never goes acausal.
        if (faults_)
            data += faults_->perturbLatency();
    }

    if (prefetcher_) {
        // Stride prefetch: run ahead of the predicted address stream,
        // touching future lines so later instances hit or at least
        // turn into dynamic misses that overlap.
        const auto pf = prefetcher_->predict(u.pc);
        prefetcher_->update(u.pc, u.addr);
        if (pf.valid && pf.stride != 0) {
            const std::int64_t stride = pf.stride;
            const Addr line = cfg_.mem.l1.lineBytes;
            for (unsigned d = 1; d <= cfg_.prefetchDegree; ++d) {
                const Addr target = static_cast<Addr>(
                    static_cast<std::int64_t>(u.addr) +
                    stride * static_cast<std::int64_t>(d));
                if (target / line != u.addr / line) {
                    mem_.access(target, agu_done);
                    ++res_.prefetches;
                }
            }
        }
    }

    // Hit-miss prediction and the consumer wakeup estimate.
    bool pred_miss = false;
    switch (cfg_.hmp) {
      case HmpKind::AlwaysHit:
        pred_miss = false;
        break;
      case HmpKind::Perfect:
        pred_miss = actual_miss;
        break;
      default: {
        // Timing structures are indexed by address; the predictor
        // supplies its (stride-)predicted line, and only then is the
        // outstanding-miss queue consulted.
        prof::Scope ps(prof::Stage::Predict);
        const Addr probe = hmp_->timingProbeAddr(u.pc);
        if (probe != kAddrInvalid) {
            const auto ti = mem_.timingInfo(probe, now_);
            const HitMissPredictor::Hint hint{ti.outstandingMiss,
                                              ti.recentFill};
            pred_miss = hmp_->predictMiss(u.pc, &hint);
        } else {
            pred_miss = hmp_->predictMiss(u.pc, nullptr);
        }
        if (hHmpConf_) {
            // Confidence is a [0,1] double; bucketise as percent.
            hHmpConf_->record(static_cast<std::uint64_t>(std::llround(
                hmp_->missConfidence(u.pc) * 100.0)));
        }
        break;
      }
    }
    e.hmPredMiss = pred_miss;
    e.hmActualMiss = actual_miss;
    if (actual_miss) {
        ++res_.l1Misses;
        if (pred_miss)
            ++res_.amPm;
        else
            ++res_.amPh;
    } else {
        if (pred_miss)
            ++res_.ahPm;
        else
            ++res_.ahPh;
    }

    if (lazy) {
        // Wakeup blocked until the colliding store completes.
        robEst_[slot] = robActual_[slot] = robComplete_[slot] =
            kCycleNever;
        return;
    }

    if (hLoadUse_)
        hLoadUse_->record(data - now_);

    robActual_[slot] = robComplete_[slot] = data;
    if (!pred_miss) {
        // Scheduler assumes an L1 hit; consumers wake speculatively.
        robEst_[slot] = agu_done + l1_lat;
    } else if (actual_miss) {
        // Caught miss: consumers wake exactly when the data lands.
        robEst_[slot] = data;
    } else {
        // AH-PM: consumers wait for the hit indication.
        robEst_[slot] = data + cfg_.ahpmPenalty;
    }
}

void
OooCore::issueEntry(int slot)
{
    RobEntry &e = rob_[slot];
    const Uop &u = e.uop;
    robState_[slot] = State::Issued;
    --rsCount_;
    ++cycleActivity_;
    traceUop(TraceEvent::Issue, slot);

    switch (u.cls) {
      case UopClass::IntAlu:
        robActual_[slot] = robEst_[slot] = robComplete_[slot] =
            now_ + cfg_.intLat;
        break;
      case UopClass::FpAlu:
        robActual_[slot] = robEst_[slot] = robComplete_[slot] =
            now_ + cfg_.fpLat;
        break;
      case UopClass::Complex:
        robActual_[slot] = robEst_[slot] = robComplete_[slot] =
            now_ + cfg_.complexLat;
        break;
      case UopClass::Branch:
        robActual_[slot] = robEst_[slot] = robComplete_[slot] =
            now_ + cfg_.branchLat;
        if (e.mispredictedBranch) {
            branchPending_ = false;
            fetchBlockedUntil_ = std::max(
                fetchBlockedUntil_,
                robComplete_[slot] + cfg_.branchMispredictPenalty);
            traceUop(TraceEvent::Squash, slot);
        }
        break;
      case UopClass::StoreAddr: {
        const Cycle t = now_ + cfg_.aguLat;
        robActual_[slot] = robEst_[slot] = robComplete_[slot] = t;
        mob_.staExecuted(robSeq_[slot], t);
        maybeTouchStore(robSeq_[slot]);
        if (bankPred_)
            bankPred_->updateAddr(u.pc, u.addr, bankOf(u.addr));
        break;
      }
      case UopClass::StoreData: {
        const Cycle t = now_ + cfg_.stdLat;
        robActual_[slot] = robEst_[slot] = robComplete_[slot] = t;
        assert(e.isPairedStd);
        mob_.stdExecuted(e.pairSeq, t);
        maybeTouchStore(e.pairSeq);
        break;
      }
      case UopClass::Load:
        executeLoad(slot);
        break;
    }
}

void
OooCore::maybeTouchStore(SeqNum sta_seq)
{
    // Write-allocate the store's line once both parts have executed.
    // Exactly one of the two issueEntry() calls (STA's or STD's, the
    // later one) sees both timestamps known, so this touches once.
    const Mob::StoreRec *rec = mob_.get(sta_seq);
    assert(rec != nullptr);
    if (rec->staDoneAt == kCycleNever || rec->stdDoneAt == kCycleNever)
        return;
    mem_.access(rec->addr, std::max(rec->staDoneAt, rec->stdDoneAt));
}

void
OooCore::issueStage()
{
    int int_free = cfg_.intUnits;
    int fp_free = cfg_.fpUnits;
    int complex_free = cfg_.complexUnits;
    int std_free = cfg_.stdPorts;

    MemPorts mp;
    mp.totalFree = cfg_.bankMode == BankMode::Sliced
                       ? static_cast<int>(cfg_.numBanks)
                       : cfg_.memUnits;
    for (unsigned b = 0; b < cfg_.numBanks; ++b)
        mp.bankFree[b] = 1;

    for (SeqNum seq = headSeq_; seq != nextSeq_; ++seq) {
        const int slot = slotOf(seq);
        if (robState_[slot] != State::Waiting)
            continue;
        RobEntry &e = rob_[slot];

        const bool is_mem = e.uop.isMem();
        int *pool = nullptr;
        switch (e.uop.cls) {
          case UopClass::IntAlu:
          case UopClass::Branch:
            pool = &int_free;
            break;
          case UopClass::FpAlu:
            pool = &fp_free;
            break;
          case UopClass::Complex:
            pool = &complex_free;
            break;
          case UopClass::Load:
          case UopClass::StoreAddr:
            pool = &mp.totalFree;
            break;
          case UopClass::StoreData:
            pool = &std_free;
            break;
        }

        const Cycle a1 = srcActual(e.src1Slot, e.src1Seq);
        const Cycle a2 = srcActual(e.src2Slot, e.src2Seq);
        const Cycle true_ready = std::max(a1, a2);

        // Ground-truth classification of loads happens the first time
        // the load could be scheduled ignoring ordering constraints:
        // register sources ready and a free memory unit (section 2.1).
        if (e.uop.isLoad() && e.cls == LoadClass::Unclassified &&
            true_ready <= now_ && *pool > 0) {
            classifyLoad(slot);
        }

        if (*pool <= 0)
            continue;
        if (robStall_[slot] > now_)
            continue;

        const Cycle e1 = srcEstimate(e.src1Slot, e.src1Seq);
        const Cycle e2 = srcEstimate(e.src2Slot, e.src2Seq);
        if (std::max(e1, e2) > now_)
            continue; // not woken yet

        if (e.uop.isLoad() && !schemeAllowsLoad(slot))
            continue;

        if (true_ready > now_) {
            // Speculatively woken too early (producer's latency was
            // mispredicted): the issue slot is burnt and the uop
            // replays. Replays repeat every replayBackoff cycles
            // until the producer's data really arrives — the
            // re-execution bandwidth cost the paper highlights — and
            // the recovery adds the reschedule penalty at the end.
            --*pool;
            ++res_.wastedIssues;
            ++cycleActivity_;
            traceUop(TraceEvent::Replay, slot);
            if (hReplayDist_) {
                // Top bucket = the producer's data time was still
                // unknown when the slot burnt (kCycleNever).
                hReplayDist_->record(true_ready == kCycleNever
                                         ? ~std::uint64_t{0}
                                         : true_ready - now_);
            }
            if (!e.everWasted) {
                e.everWasted = true;
                ++res_.replayedUops;
            }
            const Cycle retry = now_ + cfg_.replayBackoff;
            if (true_ready == kCycleNever || retry < true_ready) {
                // Data still outstanding: replay again soon.
                robStall_[slot] = retry;
            } else {
                // Data lands before the next replay: final recovery
                // costs the reschedule penalty.
                robStall_[slot] = true_ready + cfg_.reschedulePenalty;
            }
            continue;
        }

        if (is_mem) {
            issueMemUop(slot, mp);
            continue;
        }
        --*pool;
        issueEntry(slot);
    }
}

void
OooCore::issueMemUop(int slot, MemPorts &mp)
{
    RobEntry &e = rob_[slot];
    const Uop &u = e.uop;

    switch (cfg_.bankMode) {
      case BankMode::TrueMultiPorted:
      case BankMode::DualScheduled:
        // No bank constraints (the dual-scheduled pipe resolves them
        // in its second-level scheduler at extra latency).
        --mp.totalFree;
        issueEntry(slot);
        return;

      case BankMode::Conventional: {
        const unsigned bank = bankOf(u.addr);
        if (bankPred_ != nullptr) {
            // Predictor-assisted scheduling: do not co-dispatch loads
            // predicted to hit the same bank; the skipped load keeps
            // its slot and retries next cycle.
            const auto p = bankPred_->predict(u.pc);
            if (p.valid) {
                if (mp.predClaimed[p.bank])
                    return;
                mp.predClaimed[p.bank] = true;
            }
        }
        if (mp.bankFree[bank] <= 0) {
            // Bank conflict detected after address generation: the
            // pipe slot is burnt and the access retries.
            --mp.totalFree;
            ++res_.bankConflicts;
            ++cycleActivity_;
            robStall_[slot] = now_ + 1;
            return;
        }
        --mp.totalFree;
        --mp.bankFree[bank];
        issueEntry(slot);
        return;
      }

      case BankMode::Sliced: {
        if (u.isSta()) {
            // Stores are never on the critical path (section 2.3):
            // the STA rides whichever pipe is free and the store
            // buffer routes the data to the right bank later.
            for (unsigned b = 0; b < cfg_.numBanks; ++b) {
                if (mp.bankFree[b] > 0) {
                    --mp.bankFree[b];
                    --mp.totalFree;
                    issueEntry(slot);
                    return;
                }
            }
            return; // every pipe busy; retry next cycle
        }
        const auto p = bankPred_->predict(u.pc);
        if (p.valid) {
            if (mp.bankFree[p.bank] <= 0)
                return; // predicted pipe busy
            --mp.bankFree[p.bank];
            --mp.totalFree;
            e.bankMispredicted = p.bank != bankOf(u.addr);
            issueEntry(slot);
            return;
        }
        // No confident prediction: replicate to every pipe.
        for (unsigned b = 0; b < cfg_.numBanks; ++b) {
            if (mp.bankFree[b] <= 0)
                return;
        }
        for (unsigned b = 0; b < cfg_.numBanks; ++b) {
            --mp.bankFree[b];
            --mp.totalFree;
        }
        ++res_.bankReplications;
        issueEntry(slot);
        return;
      }
    }
}

void
OooCore::renameStage(TraceStream &trace)
{
    if (traceDone_ || branchPending_ || now_ < fetchBlockedUntil_)
        return;

    for (int i = 0; i < cfg_.fetchWidth; ++i) {
        if (static_cast<int>(nextSeq_ - headSeq_) >= cfg_.robSize)
            return;
        if (rsCount_ >= cfg_.schedWindow)
            return;
        if (poolUsed_ >= cfg_.regPool)
            return;

        const Uop *u = trace.next();
        if (!u) {
            traceDone_ = true;
            ++cycleActivity_; // one-time transition, not an idle read
            return;
        }

        const SeqNum seq = nextSeq_++;
        const int slot = slotOf(seq);
        RobEntry &e = rob_[slot];
        e = RobEntry{};
        // Reset the slot's SoA lanes alongside the cold record (same
        // values the former in-record fields initialised to).
        robSeq_[slot] = seq;
        robState_[slot] = State::Waiting;
        robEst_[slot] = kCycleNever;
        robActual_[slot] = kCycleNever;
        robComplete_[slot] = kCycleNever;
        robStall_[slot] = 0;
        e.uop = *u;
        ++rsCount_;
        ++cycleActivity_;
        traceUop(TraceEvent::Rename, slot);

        if (u->src1 >= 0) {
            const int ps = renameTable_[u->src1];
            if (ps >= 0 && robSeq_[ps] == renameSeq_[u->src1] &&
                inWindow(renameSeq_[u->src1])) {
                e.src1Slot = ps;
                e.src1Seq = renameSeq_[u->src1];
            }
        }
        if (u->src2 >= 0) {
            const int ps = renameTable_[u->src2];
            if (ps >= 0 && robSeq_[ps] == renameSeq_[u->src2] &&
                inWindow(renameSeq_[u->src2])) {
                e.src2Slot = ps;
                e.src2Seq = renameSeq_[u->src2];
            }
        }
        if (u->dst >= 0) {
            renameTable_[u->dst] = slot;
            renameSeq_[u->dst] = seq;
            ++poolUsed_;
        }

        switch (u->cls) {
          case UopClass::Load:
            if (storeSets_)
                e.ssWaitSeq = storeSets_->loadRenamed(u->pc);
            if (cht_) {
                // Injected state fault: the CHT is a hint structure,
                // so a flipped bit may cost timing but never
                // correctness — exactly what the injector verifies.
                if (faults_ && faults_->fireBitFlip())
                    cht_->corruptRandomBit(faults_->rng());
                e.pathAtPredict = pathHist_;
                const auto p = [&] {
                    prof::Scope ps(prof::Stage::Predict);
                    return cht_->predict(u->pc, pathHist_);
                }();
                e.predColliding = p.colliding;
                e.predDistance = p.distance;
                if (hChtConf_)
                    hChtConf_->record(p.confidence);
                if (cfg_.scheme == OrderingScheme::Exclusive &&
                    p.colliding && p.distance > 0) {
                    const Mob::StoreRec *s =
                        mob_.olderAtDistance(seq, p.distance);
                    if (s) {
                        e.hasExclTarget = true;
                        e.exclStoreSeq = s->seq;
                    } else {
                        // Fewer older stores than the predicted
                        // distance: nothing to wait for.
                        e.hasExclTarget = true;
                        e.exclStoreSeq = kNoStore;
                    }
                }
            }
            break;
          case UopClass::StoreAddr: {
            // [Hess95]: the barrier cache is queried at fetch time of
            // the store; a set counter fences all following loads.
            const bool barrier =
                barrierCache_ && barrierCache_->predict(u->pc).taken;
            mob_.insert(seq, u->addr, u->memSize, u->pc, barrier);
            if (storeSets_)
                storeSets_->storeRenamed(u->pc, seq);
            lastStaSeq_ = seq;
            haveLastSta_ = true;
            break;
          }
          case UopClass::StoreData:
            assert(haveLastSta_ && mob_.get(lastStaSeq_) != nullptr);
            e.pairSeq = lastStaSeq_;
            e.isPairedStd = true;
            break;
          case UopClass::Branch: {
            const auto bp = branchPred_.predict(u->pc);
            branchPred_.update(u->pc, u->taken);
            pathHist_ = (pathHist_ << 1) | (u->taken ? 1u : 0u);
            if (bp.taken != u->taken) {
                e.mispredictedBranch = true;
                // Block the front end until the branch resolves.
                branchPending_ = true;
                return;
            }
            break;
          }
          default:
            break;
        }
    }
}

} // namespace lrs
