#include "core/flight_recorder.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

#include "common/diag.hh"
#include "common/io.hh"
#include "common/journal.hh"

namespace lrs
{

FlightRecorder::FlightRecorder(std::size_t capacity)
    : buf_(capacity ? capacity : 1)
{
    notes_.reserve(kMaxNotes);
}

void
FlightRecorder::setIdentity(std::size_t cell, std::string key)
{
    cell_ = cell;
    key_ = std::move(key);
}

void
FlightRecorder::setDumpPath(std::string path,
                            std::uint64_t flushInterval)
{
    path_ = std::move(path);
    flushInterval_ = flushInterval;
    dumpNow();
}

void
FlightRecorder::note(const std::string &kind, const std::string &text)
{
    if (notes_.size() < kMaxNotes)
        notes_.push_back({kind, text});
    else
        ++droppedNotes_;
    dumpNow();
}

json::Value
FlightRecorder::headerJson() const
{
    json::Value h = json::Value::object();
    h.set("v", json::Value(1));
    h.set("type", json::Value("flight_recorder"));
    h.set("cell", json::Value(static_cast<std::uint64_t>(cell_)));
    h.set("key", json::Value(key_));
    h.set("capacity",
          json::Value(static_cast<std::uint64_t>(buf_.size())));
    h.set("events", json::Value(static_cast<std::uint64_t>(count_)));
    h.set("total_recorded", json::Value(total_));
    h.set("wrapped", json::Value(wrapped()));
    json::Value notes = json::Value::array();
    for (const Note &n : notes_) {
        json::Value nv = json::Value::object();
        nv.set("kind", json::Value(n.kind));
        nv.set("text", json::Value(n.text));
        notes.push(std::move(nv));
    }
    h.set("notes", std::move(notes));
    if (droppedNotes_)
        h.set("dropped_notes", json::Value(droppedNotes_));
    return h;
}

json::Value
FlightRecorder::eventJson(const Event &e) const
{
    json::Value v = json::Value::object();
    v.set("c", json::Value(e.cycle));
    v.set("e", json::Value(traceEventName(e.ev)));
    v.set("seq", json::Value(e.seq));
    v.set("pc", json::Value(e.pc));
    v.set("cls", json::Value(uopClassName(e.cls)));
    return v;
}

void
FlightRecorder::dumpNow()
{
    if (path_.empty())
        return;

    std::string out = journalLine(headerJson());
    // Oldest first, same walk as PipelineTracer::at().
    const std::size_t start = wrapped() ? next_ : 0;
    for (std::size_t i = 0; i < count_; ++i) {
        const std::size_t idx = (start + i) % buf_.size();
        out += journalLine(eventJson(buf_[idx]));
    }

    // Temp-write + fsync + rename: whatever instant the process is
    // killed, the path either holds the previous complete snapshot or
    // this one — never a half-written mix.
    const auto ioFail = [](DiagCode code, const std::string &path,
                           const char *what) -> IoError {
        return IoError(makeDiag(code, "core.flight_recorder", "path",
                                std::string(what) + ": " + path));
    };

    const std::string tmp = path_ + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        throw ioFail(DiagCode::IoOpenFailed, tmp, "cannot open");
    if (!writeFully(fd, out)) {
        ::close(fd);
        throw ioFail(DiagCode::IoWriteFailed, tmp, "write failed");
    }
    if (::fsync(fd) != 0 || ::close(fd) != 0)
        throw ioFail(DiagCode::IoWriteFailed, tmp, "sync failed");
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        throw ioFail(DiagCode::IoWriteFailed, path_, "rename failed");
}

void
FlightRecorder::removeDump()
{
    if (path_.empty())
        return;
    ::unlink(path_.c_str());
    ::unlink((path_ + ".tmp").c_str());
}

} // namespace lrs
