/**
 * @file
 * Structural invariant auditing of the in-flight machine state.
 *
 * The core's correctness rests on a handful of structural invariants
 * (ROB ring discipline, scheduling-window accounting, wakeup edges
 * pointing at live producers, MOB/ROB agreement on in-flight stores).
 * A bug — or an injected fault — that breaks one of them usually does
 * not crash; it silently produces plausible-but-wrong timing. The
 * auditor makes such corruption *loud*: every `audit_interval` cycles
 * (or `--audit` / `LRS_AUDIT=1`) the core snapshots its state into an
 * AuditView and StateAuditor::check() walks every invariant,
 * reporting each violation as a Diag with the offending sequence
 * numbers and the cycle it was caught.
 *
 * The auditor is deliberately decoupled from OooCore: it audits a
 * flattened AuditView, so tests can hand-craft corrupt views and
 * verify each invariant fires, without needing to corrupt a live
 * core's private state.
 */

#ifndef LRS_CORE_AUDITOR_HH
#define LRS_CORE_AUDITOR_HH

#include <cstdint>
#include <vector>

#include "common/diag.hh"
#include "common/types.hh"

namespace lrs
{

/** Flattened snapshot of the core's in-flight state, for auditing. */
struct AuditView
{
    // Configured bounds.
    int robSize = 0;
    int schedWindow = 0;
    int regPool = 0;

    // Window occupancy accounting as the core believes it.
    SeqNum headSeq = 0;
    SeqNum nextSeq = 0;
    int rsCount = 0;
    int poolUsed = 0;

    /** One in-flight ROB entry (subset relevant to the invariants). */
    struct Entry
    {
        SeqNum seq = 0;
        int slot = -1;
        bool waiting = false; ///< still in the scheduling window
        int src1Slot = -1, src2Slot = -1;
        SeqNum src1Seq = 0, src2Seq = 0;
        bool isPairedStd = false;
        SeqNum pairSeq = 0;
    };
    /** In-flight entries, oldest first (seq == headSeq + index). */
    std::vector<Entry> entries;

    /** MOB stores' STA sequence numbers, queue order (oldest first). */
    std::vector<SeqNum> mobStores;
};

/**
 * Stateless invariant checker over an AuditView.
 *
 * Invariants checked (each yields an AuditViolation Diag naming the
 * entry and values involved):
 *  1. occupancy: headSeq <= nextSeq and nextSeq - headSeq <= robSize;
 *     entries.size() matches the occupancy.
 *  2. age ordering: entries are contiguous ascending from headSeq.
 *  3. ring discipline: every entry sits at slot seq % robSize.
 *  4. window accounting: rsCount equals the number of Waiting
 *     entries and never exceeds schedWindow.
 *  5. register pool: 0 <= poolUsed <= regPool.
 *  6. wakeup edges: a source reference (slot, seq) must satisfy
 *     slot == seq % robSize, point strictly backwards in program
 *     order, and — when the producer is still in flight — the slot
 *     must actually hold that producer (no orphaned edges onto
 *     recycled slots).
 *  7. STD pairing: a paired STD's STA is strictly older, and while
 *     the STA is still in flight the MOB must know it.
 *  8. MOB ordering: store seqs strictly ascending, all < nextSeq,
 *     and no more in-window stores than ROB entries.
 */
class StateAuditor
{
  public:
    /**
     * Walk every invariant; returns ALL violations found (empty =
     * state is structurally sound). @p cycle is stamped into each
     * Diag so reports locate the corruption in time.
     */
    static std::vector<Diag> check(const AuditView &v, Cycle cycle);
};

} // namespace lrs

#endif // LRS_CORE_AUDITOR_HH
