#include "core/runner.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lrs
{

SimResult
runSim(TraceStream &trace, const MachineConfig &cfg)
{
    OooCore core(cfg);
    return core.run(trace);
}

SimResult
runSim(const TraceParams &params, const MachineConfig &cfg)
{
    auto trace = TraceLibrary::make(params);
    return runSim(*trace, cfg);
}

const std::vector<OrderingScheme> &
allSchemes()
{
    static const std::vector<OrderingScheme> kSchemes = {
        OrderingScheme::Traditional,   OrderingScheme::Opportunistic,
        OrderingScheme::Postponing,    OrderingScheme::Inclusive,
        OrderingScheme::Exclusive,     OrderingScheme::Perfect,
    };
    return kSchemes;
}

std::vector<SimResult>
runAllSchemes(VecTrace &trace, MachineConfig cfg)
{
    std::vector<SimResult> out;
    for (const auto scheme : allSchemes()) {
        cfg.scheme = scheme;
        out.push_back(runSim(trace, cfg));
    }
    return out;
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += std::log(v);
    return std::exp(acc / static_cast<double>(values.size()));
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0') {
        // An override that was set but cannot be parsed is almost
        // certainly a typo'd experiment; silently running with the
        // default would fake a result. Warn once per lookup.
        std::fprintf(stderr,
                     "warning: ignoring unparsable %s=\"%s\" "
                     "(using %llu)\n",
                     name, s,
                     static_cast<unsigned long long>(fallback));
        return fallback;
    }
    return v;
}

} // namespace lrs
