#include "core/runner.hh"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/diag.hh"
#include "common/parse.hh"
#include "core/parallel.hh"

namespace lrs
{

namespace
{

/** Lock-free so a signal handler can store to it (see runner.hh). */
std::atomic<bool> gSweepInterrupt{false};

/** Relaxed atomic: pool workers read it while tests/CLI flip it. */
std::atomic<bool> gCycleSkipAhead{true};

} // namespace

void
requestSweepInterrupt() noexcept
{
    gSweepInterrupt.store(true, std::memory_order_relaxed);
}

bool
sweepInterruptRequested() noexcept
{
    return gSweepInterrupt.load(std::memory_order_relaxed);
}

void
clearSweepInterrupt() noexcept
{
    gSweepInterrupt.store(false, std::memory_order_relaxed);
}

void
setCycleSkipAhead(bool enabled) noexcept
{
    gCycleSkipAhead.store(enabled, std::memory_order_relaxed);
}

bool
cycleSkipAhead() noexcept
{
    return gCycleSkipAhead.load(std::memory_order_relaxed);
}

SimResult
runSim(TraceStream &trace, const MachineConfig &cfg)
{
    OooCore core(cfg);
    return core.run(trace);
}

SimResult
runSim(const TraceParams &params, const MachineConfig &cfg)
{
    auto trace = TraceLibrary::make(params);
    return runSim(*trace, cfg);
}

const std::vector<OrderingScheme> &
allSchemes()
{
    static const std::vector<OrderingScheme> kSchemes = {
        OrderingScheme::Traditional,   OrderingScheme::Opportunistic,
        OrderingScheme::Postponing,    OrderingScheme::Inclusive,
        OrderingScheme::Exclusive,     OrderingScheme::Perfect,
    };
    return kSchemes;
}

std::vector<SimResult>
runAllSchemes(VecTrace &trace, MachineConfig cfg)
{
    const auto &schemes = allSchemes();
    std::vector<SimResult> out(schemes.size());
    // One job per scheme through the shared pool; each job runs an
    // independent machine over a private cursor on the same uops, and
    // writes its slot, so the vector is identical to the serial loop
    // no matter how many workers ran it (or whether this call was
    // itself a pool job, in which case it runs inline).
    SimJobPool::shared().forEach(schemes.size(), [&](std::size_t i) {
        MachineConfig c = cfg;
        c.scheme = schemes[i];
        VecTrace local(trace.name(), trace.uops());
        out[i] = runSim(local, c);
    });
    return out;
}

double
geomean(const std::vector<double> &values)
{
    double acc = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        const double v = values[i];
        // log() of zero or a negative value (a crashed scheme's 0.0
        // "speedup", or NaN from an unran baseline) would silently
        // poison the whole mean with -inf/NaN; skip it and say so.
        if (!(v > 0.0)) {
            const Diag d = makeDiag(
                DiagCode::DataInvalid, "core.runner", "geomean",
                "skipping non-positive value " + std::to_string(v) +
                    " (element " + std::to_string(i) + " of " +
                    std::to_string(values.size()) + ")");
            std::fprintf(stderr, "warning: %s\n", d.toString().c_str());
            continue;
        }
        acc += std::log(v);
        ++counted;
    }
    if (counted == 0)
        return 0.0;
    return std::exp(acc / static_cast<double>(counted));
}

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *s = std::getenv(name);
    if (!s || !*s)
        return fallback;
    // An override that was set but cannot be parsed — or one so large
    // it would clamp, or a negative that would silently wrap — is
    // almost certainly a typo'd experiment; silently running with
    // anything else would fake a result. Warn once per lookup.
    std::uint64_t v = 0;
    if (!tryParseU64(s, v)) {
        std::fprintf(stderr,
                     "warning: ignoring unparsable %s=\"%s\" "
                     "(using %llu)\n",
                     name, s,
                     static_cast<unsigned long long>(fallback));
        return fallback;
    }
    return v;
}

} // namespace lrs
