/**
 * @file
 * Opt-in pipeline event tracer.
 *
 * Records per-uop lifecycle events (rename, issue, replay, squash,
 * forward, retire) into a fixed-capacity ring buffer — oldest events
 * are overwritten once the buffer wraps, so a trace of the *end* of a
 * long run is always available at bounded memory.
 *
 * The tracer is attached to a core via OooCore::attachTracer(); when
 * none is attached the core's per-event cost is a single null-pointer
 * test, so runs without tracing pay no measurable overhead.
 *
 * The buffer exports Chrome trace_event JSON (the format understood
 * by chrome://tracing and https://ui.perfetto.dev): each lifecycle
 * kind becomes one named thread track, so a replay storm or a
 * squash cascade is visible as a dense burst on its track, aligned
 * in simulated-cycle time with the issues and retires around it.
 */

#ifndef LRS_CORE_TRACER_HH
#define LRS_CORE_TRACER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/uop.hh"

namespace lrs
{

/** Per-uop lifecycle event kinds recorded by the tracer. */
enum class TraceEvent : std::uint8_t
{
    Rename,  ///< entered the ROB / scheduling window
    Issue,   ///< dispatched to an execution unit
    Replay,  ///< issued too early and burnt the slot (wasted issue)
    Squash,  ///< order violation / branch mispredict recovery
    Forward, ///< load serviced by store-to-load forwarding
    Retire,  ///< left the machine
};

/** Number of distinct TraceEvent kinds. */
constexpr std::size_t kNumTraceEvents = 6;

const char *traceEventName(TraceEvent ev);

class PipelineTracer
{
  public:
    struct Record
    {
        Cycle cycle;
        SeqNum seq;
        Addr pc;
        TraceEvent ev;
        UopClass cls;
    };

    /** @p capacity is the ring size in events (must be > 0). */
    explicit PipelineTracer(std::size_t capacity = kDefaultCapacity);

    static constexpr std::size_t kDefaultCapacity = 1u << 18;

    /** Append one event, overwriting the oldest once full. */
    void
    record(TraceEvent ev, Cycle cycle, SeqNum seq, Addr pc,
           UopClass cls)
    {
        Record &r = buf_[next_];
        r.cycle = cycle;
        r.seq = seq;
        r.pc = pc;
        r.ev = ev;
        r.cls = cls;
        next_ = next_ + 1 == buf_.size() ? 0 : next_ + 1;
        if (count_ < buf_.size())
            ++count_;
        ++total_;
    }

    std::size_t capacity() const { return buf_.size(); }
    /** Events currently held (<= capacity). */
    std::size_t size() const { return count_; }
    /** Events ever recorded (counts those overwritten by wrap). */
    std::uint64_t totalRecorded() const { return total_; }
    /** True iff recording has overwritten old events. */
    bool wrapped() const { return total_ > count_; }

    /** The @p i-th buffered event, oldest first. */
    const Record &at(std::size_t i) const;

    void clear();

    /**
     * Serialize the buffered events as a Chrome trace_event document
     * ({"traceEvents": [...]}). One metadata record names each
     * lifecycle track; timestamps are simulated cycles (shown as
     * microseconds by the viewers).
     */
    std::string toChromeTrace() const;

    /** Write toChromeTrace() to @p path; throws on I/O failure. */
    void writeChromeTrace(const std::string &path) const;

  private:
    std::vector<Record> buf_;
    std::size_t next_ = 0;  ///< slot the next record lands in
    std::size_t count_ = 0; ///< live records
    std::uint64_t total_ = 0;
};

} // namespace lrs

#endif // LRS_CORE_TRACER_HH
