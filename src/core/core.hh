/**
 * @file
 * The trace-driven out-of-order core.
 *
 * A cycle-driven model of the machine in section 3.1: in-order
 * fetch/rename into a ROB + scheduling window (reservation stations),
 * out-of-order dispatch to per-class execution units, in-order retire.
 * Loads interact with the MOB according to the selected memory
 * ordering scheme, with the data hierarchy for latency, with the CHT
 * for collision prediction and with the hit-miss predictor for
 * speculative wakeup of their consumers.
 *
 * Mis-speculation is modelled operationally, not by fixed abatements:
 * a consumer woken too early issues, burns its execution slot, and is
 * rescheduled (the paper's re-execution bandwidth cost); a wrongly
 * advanced load re-executes after the colliding store completes plus
 * the collision penalty.
 */

#ifndef LRS_CORE_CORE_HH
#define LRS_CORE_CORE_HH

#include <array>
#include <limits>
#include <memory>
#include <vector>

#include "common/fault_injector.hh"
#include "common/histogram.hh"
#include "common/stats_registry.hh"
#include "core/auditor.hh"
#include "core/config.hh"
#include "core/flight_recorder.hh"
#include "core/results.hh"
#include "core/tracer.hh"
#include "memory/hierarchy.hh"
#include "memory/mob.hh"
#include "predictors/bank_pred.hh"
#include "predictors/bimodal.hh"
#include "predictors/cht.hh"
#include "predictors/gshare.hh"
#include "predictors/hitmiss.hh"
#include "predictors/store_sets.hh"
#include "trace/stream.hh"

namespace lrs
{

/**
 * One simulated core. Build one per run; run() consumes a trace.
 */
class OooCore
{
  public:
    explicit OooCore(const MachineConfig &cfg);
    ~OooCore();

    /** Simulate @p trace to completion and return the statistics. */
    SimResult run(TraceStream &trace);

    // --- stepped execution (machine snapshots, core/snapshot.hh) ---
    /** Reset the machine and bind a fresh run to @p trace (cycle 0). */
    void beginRun(TraceStream &trace);

    /**
     * Advance until the machine drains or now() reaches @p stop_at,
     * whichever comes first. The stop check sits at the top of the
     * cycle loop, before any side effect, so the machine state on
     * return is exactly the state an uninterrupted run has entering
     * cycle stop_at — the property the snapshot bit-identity contract
     * rests on. Returns true when the run completed (machine drained).
     */
    bool advanceTo(TraceStream &trace, Cycle stop_at = kCycleNever);

    /** Close out a drained run and return the statistics. */
    SimResult finishRun();

    /** Current simulated cycle of the run in progress. */
    Cycle now() const { return now_; }

    /**
     * Machine-snapshot support (core/snapshot.hh): serialize /
     * restore the complete dynamic state at an advanceTo() boundary.
     * loadState() replaces beginRun(): it rebinds @p trace (seeking
     * it to the snapshot's fetch position) and restores every
     * component this machine shares with the snapshot. Sections for
     * components only one side has (cross-scheme warmup forks) start
     * cold; everything else must restore exactly or the load throws
     * ConfigError(E_JOURNAL_INVALID).
     */
    json::Value saveState() const;
    void loadState(const json::Value &state, TraceStream &trace);

    const MachineConfig &config() const { return cfg_; }

    /**
     * Attach a pipeline event tracer (not owned; nullptr detaches).
     * With no tracer attached each potential event costs a single
     * null-pointer test.
     */
    void attachTracer(PipelineTracer *t) { tracer_ = t; }

    /**
     * Attach a flight recorder (not owned; nullptr detaches). Shares
     * the tracer's event stream and cost model: with none attached
     * each potential event costs a single null-pointer test.
     */
    void attachFlightRecorder(FlightRecorder *fr) { flight_ = fr; }

    /**
     * The core's stats registry: every component's counters under
     * dotted names ("core.*", "sched.*", "mem.*", "pred.*" — see
     * docs/OBSERVABILITY.md). Bound counters alias the SimResult of
     * the current/last run().
     */
    StatsRegistry &stats() { return statsReg_; }
    const StatsRegistry &stats() const { return statsReg_; }

    /**
     * Attach a fault injector (not owned; nullptr detaches). While
     * attached it flips CHT bits at prediction time and perturbs
     * load latencies — see docs/ROBUSTNESS.md. With none attached
     * each potential fault site costs a null-pointer test.
     */
    void attachFaultInjector(FaultInjector *fi) { faults_ = fi; }

    /**
     * Snapshot the in-flight state for the invariant auditor. Public
     * so tests and tools can audit on demand; run() audits itself
     * every cfg().auditInterval cycles.
     */
    AuditView auditView() const;

  private:
    /** Ground-truth collision classification of a load. */
    enum class LoadClass : std::uint8_t
    {
        Unclassified,
        NotConflicting,
        ConflictNotColliding, ///< ANC
        Colliding,            ///< AC
    };

    enum class State : std::uint8_t
    {
        Waiting, ///< in the scheduling window
        Issued,  ///< dispatched to an execution unit
    };

    /**
     * Cold per-slot bookkeeping. The six fields every per-cycle stage
     * scan reads (seq, state, estReady, actualReady, completeAt,
     * stallUntil) live in the parallel structure-of-arrays vectors
     * below (robSeq_ .. robStall_, same slot index) so the hot scans
     * stream over dense flat arrays instead of striding through this
     * record (docs/PERFORMANCE.md).
     */
    struct RobEntry
    {
        Uop uop;

        // Producers of the register sources: ROB slot or -1 if the
        // value was already architectural at rename.
        int src1Slot = -1, src2Slot = -1;
        SeqNum src1Seq = 0, src2Seq = 0;

        bool everWasted = false;

        // Load bookkeeping.
        LoadClass cls = LoadClass::Unclassified;
        bool predColliding = false;
        unsigned predDistance = 0;
        unsigned actualDistance = 0;
        bool hmPredMiss = false;
        bool hmActualMiss = false;
        bool collisionPenalized = false;
        /** STA seq the load is lazily waiting on (collision case). */
        SeqNum waitStoreSeq = 0;
        bool waitingOnStore = false;
        /** Lazy collision is a true order violation (squash on fix). */
        bool violationSquash = false;

        // Exclusive-scheme wait target, resolved at rename.
        bool hasExclTarget = false;
        SeqNum exclStoreSeq = 0;
        // Store-sets wait target (LFST entry at rename), or
        // StoreSets::kNoStoreSeq.
        SeqNum ssWaitSeq = ~static_cast<SeqNum>(0);

        // Store bookkeeping: an STD records its STA's sequence number
        // (slots can be reused while the pair is still in flight).
        SeqNum pairSeq = 0;
        bool isPairedStd = false;

        bool mispredictedBranch = false;
        /** Sliced pipe sent this load to the wrong bank. */
        bool bankMispredicted = false;
        /** Branch-path history captured when the CHT predicted. */
        std::uint64_t pathAtPredict = 0;
    };

    /** Sentinel "no store to wait for" for exclStoreSeq. */
    static constexpr SeqNum kNoStore =
        std::numeric_limits<SeqNum>::max();

    // --- pipeline stages (called once per cycle) ---
    void resolvePendingCollisions();
    void retireStage();
    void issueStage();
    void renameStage(TraceStream &trace);

    // --- observability ---
    /** Register every component's stats (constructor-time, once). */
    void registerStats();

    /** Close the current interval and append an IntervalSample. */
    void snapshotInterval();

    /** Run the invariant auditor now; throws AuditError on damage. */
    void auditNow();

    /** Record a per-uop lifecycle event if a tracer is attached. */
    void
    traceUop(TraceEvent ev, int slot)
    {
        if (tracer_) {
            tracer_->record(ev, now_, robSeq_[slot], rob_[slot].uop.pc,
                            rob_[slot].uop.cls);
        }
        if (flight_) {
            flight_->record(ev, now_, robSeq_[slot], rob_[slot].uop.pc,
                            rob_[slot].uop.cls);
        }
    }

    /** Fill res_.histograms from the telemetry histograms (run end). */
    void exportHistograms();

    /** Reset all seven telemetry histograms (no-op when off). */
    void resetHistograms();

    // --- helpers ---
    RobEntry &entryAt(int slot) { return rob_[slot]; }
    int slotOf(SeqNum seq) const
    {
        return static_cast<int>(seq % rob_.size());
    }
    bool inWindow(SeqNum seq) const
    {
        return seq >= headSeq_ && seq < nextSeq_;
    }

    /** Wakeup estimate of a source producer (kCycleNever blocks). */
    Cycle srcEstimate(int slot, SeqNum seq) const;
    /** True readiness of a source producer. */
    Cycle srcActual(int slot, SeqNum seq) const;

    /** Does the ordering scheme let the load in @p slot dispatch now? */
    bool schemeAllowsLoad(int slot) const;

    /** Classify the load in @p slot against the MOB, once. */
    void classifyLoad(int slot);

    /** Execute a load: ordering outcome, cache access, HMP wakeup. */
    void executeLoad(int slot);

    void issueEntry(int slot);
    void countLoadClass(const RobEntry &e);

    /**
     * Earliest future cycle at which any stage could mutate state,
     * given that the current cycle mutated nothing (cycleActivity_ ==
     * 0): the min over every in-flight slot's stall/est/actual/
     * complete thresholds, every MOB store's STA/STD completion, and
     * the fetch-unblock horizon. Returns kCycleNever when no such
     * event exists (a drained or genuinely stuck machine).
     */
    Cycle nextEventCycle() const;

    /** Write-allocate a store's line once STA and STD both executed. */
    void maybeTouchStore(SeqNum sta_seq);

    /** Per-cycle state of the memory pipes / cache banks. */
    struct MemPorts
    {
        int totalFree = 0;
        std::array<int, 8> bankFree{};
        std::array<bool, 8> predClaimed{};
    };

    /**
     * Try to issue a memory uop (load or STA) under the configured
     * bank mode. Returns true if the scan should move on (whether the
     * uop issued, burnt a slot, or was skipped).
     */
    void issueMemUop(int slot, MemPorts &mp);

    /** Bank of an address under the configured interleave. */
    unsigned bankOf(Addr addr) const
    {
        return static_cast<unsigned>(addr / cfg_.mem.l1.lineBytes) %
               cfg_.numBanks;
    }

    MachineConfig cfg_;
    MemoryHierarchy mem_;
    Mob mob_;
    std::unique_ptr<Cht> cht_;
    std::unique_ptr<HitMissPredictor> hmp_;
    std::unique_ptr<BankPredictor> bankPred_;
    std::unique_ptr<BimodalPredictor> barrierCache_;
    std::unique_ptr<StoreSets> storeSets_;
    std::unique_ptr<LoadAddressPredictor> prefetcher_;
    GsharePredictor branchPred_;
    /** Extra load latency of the configured memory pipe (Figure 4). */
    Cycle memPipeExtraLat_ = 0;

    std::vector<RobEntry> rob_; ///< ring, slot = seq % size

    /**
     * SoA hot state, parallel to rob_ (same slot indexing): the six
     * fields the per-cycle scans (issue, retire, wakeup, skip-ahead)
     * read for every in-flight slot, pulled into dense flat arrays so
     * those scans touch only the bytes they need. Defaults match a
     * fresh RobEntry's former field initialisers; renameStage resets
     * the slot's lane entries alongside the cold record.
     */
    std::vector<SeqNum> robSeq_;
    std::vector<State> robState_;
    std::vector<Cycle> robEst_;      ///< speculative wakeup estimate
    std::vector<Cycle> robActual_;   ///< true data-ready time
    std::vector<Cycle> robComplete_; ///< retirement-ready time
    std::vector<Cycle> robStall_;    ///< replay backoff horizon

    SeqNum headSeq_ = 0;        ///< oldest in-flight seq
    SeqNum nextSeq_ = 0;        ///< next seq to insert
    int rsCount_ = 0;           ///< Waiting entries (scheduling window)
    int poolUsed_ = 0;          ///< allocated rename registers

    std::vector<int> renameTable_;   ///< arch reg -> producer slot
    std::vector<SeqNum> renameSeq_;  ///< arch reg -> producer seq

    std::vector<int> pendingCollision_; ///< load slots awaiting stores

    Cycle now_ = 0;
    /**
     * State mutations performed in the cycle being executed; reset at
     * the top of each advanceTo() iteration. Zero at end of cycle
     * means the machine is frozen until a time threshold is crossed —
     * the precondition for idle-cycle skip-ahead. Scratch state, not
     * snapshotted (always dead at advanceTo() boundaries).
     */
    std::uint64_t cycleActivity_ = 0;
    /** Finite front-end stall horizon (mispredicts, squashes). */
    Cycle fetchBlockedUntil_ = 0;
    /** A mispredicted branch is in flight; fetch stalls until it
     *  resolves (which then extends fetchBlockedUntil_). */
    bool branchPending_ = false;
    SeqNum lastStaSeq_ = 0;
    bool haveLastSta_ = false;
    /** Global branch-path register (taken bits, fetch order). */
    std::uint64_t pathHist_ = 0;
    bool traceDone_ = false;

    SimResult res_;

    // --- observability state ---
    PipelineTracer *tracer_ = nullptr;   ///< not owned; may be null
    FlightRecorder *flight_ = nullptr;   ///< not owned; may be null
    StatsRegistry statsReg_;

    /**
     * Telemetry histograms (owned by statsReg_ under "hist.*"); all
     * null unless cfg_.collectHistograms, so the off path costs one
     * null test per sample site. Deterministic by construction: they
     * record simulated quantities only, never host state.
     */
    Log2Histogram *hLoadUse_ = nullptr;   ///< load-to-use delay
    Log2Histogram *hReplayDist_ = nullptr;///< wasted-issue replay gap
    Log2Histogram *hOccSched_ = nullptr;  ///< window occupancy / cycle
    Log2Histogram *hOccRob_ = nullptr;    ///< ROB occupancy / cycle
    Log2Histogram *hOccMob_ = nullptr;    ///< MOB occupancy / cycle
    Log2Histogram *hChtConf_ = nullptr;   ///< CHT counter at predict
    Log2Histogram *hHmpConf_ = nullptr;   ///< HMP confidence (percent)

    // --- robustness state ---
    FaultInjector *faults_ = nullptr; ///< not owned; may be null
    std::uint64_t auditChecks_ = 0;   ///< audits performed ("audit.checks")
    std::uint64_t auditCountdown_ = 0;

    /**
     * Interval-series bookkeeping: totals at the last snapshot (for
     * deltas) and occupancy accumulators over the open interval.
     */
    struct IntervalCursor
    {
        Cycle cycle = 0;
        std::uint64_t uops = 0;
        std::uint64_t wasted = 0;
        std::uint64_t loads = 0;
        std::uint64_t classified = 0;
        std::uint64_t chtMis = 0;
        std::uint64_t hmpMis = 0;
        std::uint64_t bankMis = 0;
        std::uint64_t occSched = 0; ///< sum of rsCount_ per cycle
        std::uint64_t occRob = 0;   ///< sum of ROB entries per cycle
        std::uint64_t countdown = 0;
    } iv_;
};

} // namespace lrs

#endif // LRS_CORE_CORE_HH
