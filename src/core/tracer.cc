#include "core/tracer.hh"

#include <fstream>
#include <stdexcept>

#include "common/json.hh"
#include "common/stats.hh"

namespace lrs
{

const char *
traceEventName(TraceEvent ev)
{
    switch (ev) {
      case TraceEvent::Rename:  return "rename";
      case TraceEvent::Issue:   return "issue";
      case TraceEvent::Replay:  return "replay";
      case TraceEvent::Squash:  return "squash";
      case TraceEvent::Forward: return "forward";
      case TraceEvent::Retire:  return "retire";
    }
    return "?";
}

// A zero capacity is clamped to one slot rather than rejected: the
// ring must never be empty or record() would index into nothing.
PipelineTracer::PipelineTracer(std::size_t capacity)
    : buf_(capacity ? capacity : 1)
{}

const PipelineTracer::Record &
PipelineTracer::at(std::size_t i) const
{
    if (i >= count_)
        throw std::out_of_range("PipelineTracer::at");
    // Oldest record: right after the write cursor once wrapped,
    // slot 0 otherwise.
    const std::size_t base = count_ == buf_.size() ? next_ : 0;
    return buf_[(base + i) % buf_.size()];
}

void
PipelineTracer::clear()
{
    next_ = 0;
    count_ = 0;
    total_ = 0;
}

std::string
PipelineTracer::toChromeTrace() const
{
    // Emitted by hand rather than through json::Value: a full trace
    // is hundreds of thousands of events and the value tree would
    // triple peak memory for no benefit.
    std::string out;
    out.reserve(count_ * 96 + 1024);
    out += "{\"traceEvents\":[";

    // Metadata: one named thread track per lifecycle event kind.
    for (std::size_t k = 0; k < kNumTraceEvents; ++k) {
        if (k)
            out += ',';
        out += strprintf(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
            "\"tid\":%zu,\"args\":{\"name\":\"%s\"}}",
            k, traceEventName(static_cast<TraceEvent>(k)));
    }

    for (std::size_t i = 0; i < count_; ++i) {
        const Record &r = at(i);
        out += ',';
        out += strprintf(
            "{\"name\":\"%s\",\"cat\":\"pipeline\",\"ph\":\"i\","
            "\"s\":\"t\",\"ts\":%llu,\"pid\":0,\"tid\":%u,"
            "\"args\":{\"seq\":%llu,\"pc\":\"0x%llx\","
            "\"cls\":\"%s\"}}",
            traceEventName(r.ev),
            static_cast<unsigned long long>(r.cycle),
            static_cast<unsigned>(r.ev),
            static_cast<unsigned long long>(r.seq),
            static_cast<unsigned long long>(r.pc),
            uopClassName(r.cls));
    }

    out += "],\"displayTimeUnit\":\"ms\",";
    out += strprintf("\"otherData\":{\"recorded\":%llu,"
                     "\"buffered\":%zu,\"wrapped\":%s}}",
                     static_cast<unsigned long long>(total_), count_,
                     wrapped() ? "true" : "false");
    return out;
}

void
PipelineTracer::writeChromeTrace(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("tracer: cannot open " + path);
    const std::string doc = toChromeTrace();
    os.write(doc.data(),
             static_cast<std::streamsize>(doc.size()));
    if (!os)
        throw std::runtime_error("tracer: write failed: " + path);
}

} // namespace lrs
