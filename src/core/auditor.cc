#include "core/auditor.hh"

#include <algorithm>
#include <string>

namespace lrs
{

namespace
{

std::string
seqStr(SeqNum s)
{
    return std::to_string(s);
}

} // namespace

std::vector<Diag>
StateAuditor::check(const AuditView &v, Cycle cycle)
{
    std::vector<Diag> diags;
    const auto bad = [&](const std::string &what,
                         const std::string &msg) {
        Diag d = makeDiag(DiagCode::AuditViolation, "audit", what, msg);
        d.cycle = cycle;
        diags.push_back(std::move(d));
    };

    // 1. Occupancy.
    if (v.nextSeq < v.headSeq) {
        bad("occupancy", "nextSeq " + seqStr(v.nextSeq) +
                             " behind headSeq " + seqStr(v.headSeq));
        return diags; // every entry-walk below would be nonsense
    }
    const std::uint64_t occ = v.nextSeq - v.headSeq;
    if (v.robSize > 0 &&
        occ > static_cast<std::uint64_t>(v.robSize)) {
        bad("occupancy", "window holds " + std::to_string(occ) +
                             " uops but the ROB has only " +
                             std::to_string(v.robSize) + " entries");
    }
    if (v.entries.size() != occ) {
        bad("occupancy",
            "snapshot has " + std::to_string(v.entries.size()) +
                " entries for an occupancy of " + std::to_string(occ));
    }

    // 2+3. Age ordering and ring discipline.
    int waiting = 0;
    for (std::size_t i = 0; i < v.entries.size(); ++i) {
        const AuditView::Entry &e = v.entries[i];
        const SeqNum expect = v.headSeq + i;
        if (e.seq != expect) {
            bad("age_order", "entry " + std::to_string(i) +
                                 " has seq " + seqStr(e.seq) +
                                 ", expected " + seqStr(expect) +
                                 " (ages must be contiguous)");
        }
        if (v.robSize > 0 &&
            e.slot != static_cast<int>(
                          e.seq % static_cast<SeqNum>(v.robSize))) {
            bad("ring_slot",
                "seq " + seqStr(e.seq) + " sits in slot " +
                    std::to_string(e.slot) + ", ring demands slot " +
                    seqStr(e.seq % static_cast<SeqNum>(v.robSize)));
        }
        if (e.waiting)
            ++waiting;
    }

    // 4. Scheduling-window accounting.
    if (v.rsCount != waiting) {
        bad("rs_count", "core counts " + std::to_string(v.rsCount) +
                            " waiting uops, the window holds " +
                            std::to_string(waiting));
    }
    if (v.schedWindow > 0 && v.rsCount > v.schedWindow) {
        bad("rs_count", "rsCount " + std::to_string(v.rsCount) +
                            " exceeds the scheduling window of " +
                            std::to_string(v.schedWindow));
    }

    // 5. Register pool.
    if (v.poolUsed < 0 || (v.regPool > 0 && v.poolUsed > v.regPool)) {
        bad("reg_pool", "poolUsed " + std::to_string(v.poolUsed) +
                            " outside [0, " +
                            std::to_string(v.regPool) + "]");
    }

    // 6. Wakeup edges and 7. STD pairing.
    const auto inFlight = [&](SeqNum s) {
        return s >= v.headSeq && s < v.nextSeq;
    };
    const auto checkEdge = [&](const AuditView::Entry &e, int which,
                               int slot, SeqNum seq) {
        if (slot < 0)
            return; // architectural source, no edge
        const std::string what =
            "src" + std::to_string(which) + "@" + seqStr(e.seq);
        if (v.robSize > 0 &&
            slot != static_cast<int>(
                        seq % static_cast<SeqNum>(v.robSize))) {
            bad(what, "edge slot " + std::to_string(slot) +
                          " disagrees with producer seq " +
                          seqStr(seq));
            return;
        }
        if (seq >= e.seq) {
            bad(what, "producer seq " + seqStr(seq) +
                          " is not older than the consumer");
            return;
        }
        if (inFlight(seq)) {
            const std::uint64_t idx = seq - v.headSeq;
            if (idx < v.entries.size() &&
                v.entries[idx].seq != seq) {
                bad(what, "orphaned edge: slot recycled, producer " +
                              seqStr(seq) + " no longer in flight");
            }
        }
    };
    for (const AuditView::Entry &e : v.entries) {
        checkEdge(e, 1, e.src1Slot, e.src1Seq);
        checkEdge(e, 2, e.src2Slot, e.src2Seq);
        if (e.isPairedStd) {
            const std::string what = "std_pair@" + seqStr(e.seq);
            if (e.pairSeq >= e.seq) {
                bad(what, "STD pairs with STA " + seqStr(e.pairSeq) +
                              " which is not older");
            } else if (inFlight(e.pairSeq) &&
                       std::find(v.mobStores.begin(),
                                 v.mobStores.end(),
                                 e.pairSeq) == v.mobStores.end()) {
                bad(what, "STD's in-flight STA " + seqStr(e.pairSeq) +
                              " is unknown to the MOB");
            }
        }
    }

    // 8. MOB ordering and sizing.
    for (std::size_t i = 0; i < v.mobStores.size(); ++i) {
        if (i > 0 && v.mobStores[i] <= v.mobStores[i - 1]) {
            bad("mob_order",
                "store seqs not strictly ascending at index " +
                    std::to_string(i) + " (" +
                    seqStr(v.mobStores[i - 1]) + " then " +
                    seqStr(v.mobStores[i]) + ")");
        }
        if (v.mobStores[i] >= v.nextSeq) {
            bad("mob_order", "MOB store " + seqStr(v.mobStores[i]) +
                                 " is younger than nextSeq " +
                                 seqStr(v.nextSeq));
        }
    }
    if (v.mobStores.size() > v.entries.size()) {
        bad("mob_size",
            "MOB tracks " + std::to_string(v.mobStores.size()) +
                " stores but only " +
                std::to_string(v.entries.size()) +
                " uops are in flight");
    }

    return diags;
}

} // namespace lrs
