#include "core/supervisor.hh"

#include <cassert>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/diag.hh"
#include "common/io.hh"
#include "core/runner.hh"

namespace lrs
{

namespace
{

[[noreturn]] void
throwJournalInvalid(const std::string &path, const std::string &why)
{
    throw ConfigError(makeDiag(
        DiagCode::JournalInvalid, "core.supervisor", "journal",
        why + " (journal: " + path +
            "; delete it or point --resume at the right grid)"));
}

/**
 * Fill the table-facing summary of a result restored from its JSON
 * document (resumed or isolated cells): the fields the front end
 * prints directly — trace/config labels, cycles, uops — while the
 * full document rides along in JobOutcome::resultJson.
 */
void
restoreResultSummary(JobOutcome &o)
{
    const json::Value &r = o.resultJson;
    o.result.trace = r.at("trace").asString();
    o.result.config = r.at("config").asString();
    o.result.cycles = r.at("cycles").asU64();
    o.result.uops = r.at("uops").asU64();
}

} // namespace

SweepSupervisor::SweepSupervisor(SweepOptions opts)
    : opts_(std::move(opts))
{
    StatsGroup g = reg_.group("sweep");
    g.bindCounter("cells", &stats_.cells, "grid size");
    g.bindCounter("ok", &stats_.ok, "cells completed this run");
    g.bindCounter("failed", &stats_.failed, "cells FAILED finally");
    g.bindCounter("timeout", &stats_.timeout, "cells TIMEOUT finally");
    g.bindCounter("crashed", &stats_.crashed, "cells CRASHED finally");
    g.bindCounter("skipped", &stats_.skipped,
                  "cells restored from the journal");
    g.bindCounter("retries", &stats_.retries,
                  "cell re-executions performed");
    g.bindCounter("gave_up", &stats_.gaveUp,
                  "cells still failed after every attempt");
    g.bindCounter("interrupted", &stats_.interrupted,
                  "cells not run because the sweep was interrupted");
}

SweepSupervisor::~SweepSupervisor() = default;

void
SweepSupervisor::loadJournal(std::vector<JobOutcome> &outcomes,
                             const std::vector<std::string> &keys)
{
    std::error_code ec;
    if (!std::filesystem::exists(opts_.journalPath, ec))
        return; // nothing to resume: every cell runs
    JournalReadStats jst;
    const std::vector<json::Value> recs =
        readJournal(opts_.journalPath, &jst);
    if (jst.badLines) {
        std::fprintf(stderr,
                     "warning: [core.supervisor] journal %s: dropped "
                     "%llu damaged line(s), %llu byte(s)%s; resynced "
                     "to the last good record\n",
                     opts_.journalPath.c_str(),
                     static_cast<unsigned long long>(jst.badLines),
                     static_cast<unsigned long long>(jst.droppedBytes),
                     jst.truncatedTail ? " (torn tail)" : "");
    }
    for (const json::Value &rec : recs) {
        if (!rec.isObject() || !rec.has("cell") || !rec.has("key") ||
            !rec.has("status")) {
            throwJournalInvalid(opts_.journalPath,
                                "record is not a sweep-cell record");
        }
        const std::uint64_t cell = rec.at("cell").asU64();
        if (cell >= keys.size()) {
            throwJournalInvalid(
                opts_.journalPath,
                "cell id " + std::to_string(cell) +
                    " out of range for this grid of " +
                    std::to_string(keys.size()));
        }
        const std::string &key = rec.at("key").asString();
        if (key != keys[cell]) {
            throwJournalInvalid(
                opts_.journalPath,
                "cell " + std::to_string(cell) + " is '" + key +
                    "' in the journal but '" + keys[cell] +
                    "' in this grid");
        }
        // Later records win: a retried cell appends one record per
        // attempt, and only its last word stands.
        JobOutcome &o = outcomes[cell];
        o = JobOutcome{};
        if (parseCellStatus(rec.at("status").asString()) ==
            CellStatus::Ok) {
            const json::Value *res = rec.find("result");
            if (!res) {
                throwJournalInvalid(
                    opts_.journalPath,
                    "OK record for cell " + std::to_string(cell) +
                        " carries no result");
            }
            o.status = CellStatus::Skipped;
            o.attempts = 0;
            o.resultJson = *res;
            try {
                restoreResultSummary(o);
            } catch (const std::exception &) {
                throwJournalInvalid(
                    opts_.journalPath,
                    "result record for cell " + std::to_string(cell) +
                        " is missing summary fields");
            }
        }
        // Non-OK last records leave the default outcome in place:
        // the cell simply runs again this time around.
    }
}

void
SweepSupervisor::emitProgress()
{
    if (opts_.progressFd < 0)
        return;
    std::lock_guard<std::mutex> lk(progressM_);
    if (progressDead_)
        return;
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t elapsedMs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - progStart_)
            .count());
    // Journal-restored (skipped) cells are not fresh work: they must
    // never count toward the rate or ETA, and their tally can never
    // exceed the grid. A disagreement here would wrap the unsigned
    // subtraction into a multi-exabyte ETA, so clamp defensively and
    // assert in debug builds.
    assert(progSkipped_ + progDone_ <= progTotal_ &&
           "sweep progress counters exceed the grid size");
    const std::uint64_t accounted = progSkipped_ + progDone_;
    const std::uint64_t remaining =
        accounted < progTotal_ ? progTotal_ - accounted : 0;
    json::Value hb = json::Value::object();
    hb.set("v", 1);
    hb.set("type", "progress");
    hb.set("total", progTotal_);
    hb.set("done", progDone_);
    hb.set("ok", progOk_);
    hb.set("failed", progFailed_);
    hb.set("timeout", progTimeout_);
    hb.set("crashed", progCrashed_);
    hb.set("skipped", progSkipped_);
    hb.set("in_flight", inFlight_.load(std::memory_order_relaxed));
    hb.set("workers", static_cast<std::uint64_t>(progWorkers_));
    hb.set("elapsed_ms", elapsedMs);
    // ETA from the observed fresh-cell rate; null until the first
    // cell finishes (no rate yet), 0 once nothing remains.
    if (progDone_ == 0) {
        hb.set("eta_ms", json::Value());
    } else {
        hb.set("eta_ms",
               remaining * elapsedMs / progDone_);
    }
    hb.set("uops", progUops_);
    hb.set("uops_per_sec",
           elapsedMs ? static_cast<double>(progUops_) * 1000.0 /
                           static_cast<double>(elapsedMs)
                     : 0.0);
    std::string line = hb.dump(0);
    line.push_back('\n');
    // One write per line so a consumer tailing the fd never sees a
    // torn heartbeat; a failed write retires the stream for the rest
    // of the sweep (the results are unaffected).
    if (!writeFully(opts_.progressFd, line))
        progressDead_ = true;
}

void
SweepSupervisor::journalOutcome(std::size_t cell,
                                const std::string &key,
                                const JobOutcome &o)
{
    json::Value rec = json::Value::object();
    rec.set("v", 1);
    rec.set("cell", static_cast<std::uint64_t>(cell));
    rec.set("key", key);
    rec.set("status", cellStatusName(o.status));
    rec.set("attempts", static_cast<std::uint64_t>(o.attempts));
    if (o.status == CellStatus::Ok) {
        rec.set("result", o.resultJson);
    } else {
        rec.set("code", o.code);
        rec.set("error", o.error);
        if (o.signal)
            rec.set("signal", o.signal);
    }
    // Serialise appenders: each record is one write()+fsync() and the
    // order of records does not matter (ids key them), but the
    // writer object itself is not concurrency-safe.
    std::lock_guard<std::mutex> lk(journalM_);
    writer_->append(rec);
}

JobOutcome
SweepSupervisor::runIsolated(const CellRunner &runner, std::size_t cell,
                             unsigned attempt)
{
    int fds[2];
    if (::pipe(fds) != 0) {
        throw IoError(makeDiag(DiagCode::IoOpenFailed,
                               "core.supervisor", "pipe",
                               std::string("pipe() failed: ") +
                                   std::strerror(errno)));
    }
    // Flush stdio so the child does not replay inherited buffers.
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
        const int err = errno;
        ::close(fds[0]);
        ::close(fds[1]);
        throw IoError(makeDiag(DiagCode::IoOpenFailed,
                               "core.supervisor", "fork",
                               std::string("fork() failed: ") +
                                   std::strerror(err)));
    }
    if (pid == 0) {
        // Child: run the cell, stream the outcome, _exit. Any crash
        // from here on (SIGSEGV, std::terminate, abort) kills only
        // this process and the parent records the cell as CRASHED.
        ::close(fds[0]);
        JobOutcome o;
        try {
            o = runner(cell, attempt);
        } catch (const std::exception &e) {
            classifyJobException(o, e);
        } catch (...) {
            o.failed = true;
            o.status = CellStatus::Failed;
            o.code = diagCodeName(DiagCode::Internal);
            o.error = "isolated cell threw a non-std exception";
        }
        if (o.status == CellStatus::Ok && o.resultJson.isNull())
            o.resultJson = o.result.toJson();
        json::Value doc = json::Value::object();
        doc.set("status", cellStatusName(o.status));
        doc.set("code", o.code);
        doc.set("error", o.error);
        doc.set("signal", o.signal);
        if (o.status == CellStatus::Ok)
            doc.set("result", o.resultJson);
        const std::string text = doc.dump(0);
        if (!writeFully(fds[1], text))
            ::_exit(3); // parent records CRASHED (no result)
        ::close(fds[1]);
        ::_exit(0);
    }

    // Parent: drain the pipe under the wall-clock watchdog.
    ::close(fds[1]);
    std::string buf;
    bool timedOut = false;
    bool interrupted = false;
    const auto start = std::chrono::steady_clock::now();
    for (;;) {
        int waitMs = -1; // block
        if (opts_.cellTimeoutMs) {
            const auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            const auto remaining =
                static_cast<long long>(opts_.cellTimeoutMs) - elapsed;
            if (remaining <= 0) {
                timedOut = true;
                break;
            }
            waitMs = static_cast<int>(
                remaining < 200 ? remaining : 200);
        } else {
            // Still poll in slices so an interrupt reaches a child
            // that never writes.
            waitMs = 200;
        }
        if (sweepInterruptRequested()) {
            interrupted = true;
            break;
        }
        struct pollfd pfd;
        pfd.fd = fds[0];
        pfd.events = POLLIN;
        const int pr = ::poll(&pfd, 1, waitMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            break; // treat as EOF; waitpid decides the outcome
        }
        if (pr == 0)
            continue; // slice expired; re-check deadline/interrupt
        char chunk[4096];
        const ssize_t n = ::read(fds[0], chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0)
            break; // EOF: child finished writing
        buf.append(chunk, static_cast<std::size_t>(n));
    }
    if (timedOut || interrupted)
        ::kill(pid, SIGKILL);
    ::close(fds[0]);
    int st = 0;
    while (::waitpid(pid, &st, 0) < 0 && errno == EINTR) {
    }

    JobOutcome o;
    if (interrupted) {
        o.failed = true;
        o.status = CellStatus::Failed;
        o.code = diagCodeName(DiagCode::Interrupted);
        o.error = "isolated cell killed: sweep interrupted";
        return o;
    }
    if (timedOut) {
        o.failed = true;
        o.status = CellStatus::Timeout;
        o.code = diagCodeName(DiagCode::DeadlineExceeded);
        o.error = "wall-clock watchdog (" +
                  std::to_string(opts_.cellTimeoutMs) +
                  " ms) expired; isolated cell killed";
        return o;
    }
    if (WIFSIGNALED(st)) {
        o.failed = true;
        o.status = CellStatus::Crashed;
        o.signal = WTERMSIG(st);
        o.code = diagCodeName(DiagCode::CellCrashed);
        o.error = "isolated cell killed by signal " +
                  std::to_string(o.signal);
        return o;
    }
    if (!WIFEXITED(st) || WEXITSTATUS(st) != 0 || buf.empty()) {
        // A sanitizer or runtime that converts a crash into a
        // nonzero exit (ASan on SIGSEGV) lands here: still CRASHED,
        // just without a signal number.
        o.failed = true;
        o.status = CellStatus::Crashed;
        o.code = diagCodeName(DiagCode::CellCrashed);
        o.error =
            "isolated cell exited with status " +
            std::to_string(WIFEXITED(st) ? WEXITSTATUS(st) : -1) +
            " without a result";
        return o;
    }
    try {
        const json::Value doc = json::Value::parse(buf);
        o.status = parseCellStatus(doc.at("status").asString());
        o.code = doc.at("code").asString();
        o.error = doc.at("error").asString();
        o.signal = static_cast<int>(doc.at("signal").asU64());
        o.failed = o.status != CellStatus::Ok;
        if (o.status == CellStatus::Ok) {
            o.resultJson = doc.at("result");
            restoreResultSummary(o);
        }
    } catch (const std::exception &e) {
        o = JobOutcome{};
        o.failed = true;
        o.status = CellStatus::Crashed;
        o.code = diagCodeName(DiagCode::CellCrashed);
        o.error = std::string("unparsable result from isolated "
                              "cell: ") +
                  e.what();
    }
    return o;
}

void
SweepSupervisor::runCell(std::size_t cell, unsigned attempt,
                         const std::string &key,
                         const CellRunner &runner, JobOutcome &out)
{
    if (sweepInterruptRequested()) {
        out = JobOutcome{};
        out.failed = true;
        out.status = CellStatus::Failed;
        out.code = diagCodeName(DiagCode::Interrupted);
        out.error = "cell not started: sweep interrupted";
        out.attempts = 0;
        return; // deliberately not journaled: --resume re-runs it
    }
    inFlight_.fetch_add(1, std::memory_order_relaxed);
    JobOutcome o;
    if (opts_.isolate) {
        o = runIsolated(runner, cell, attempt);
    } else {
        try {
            o = runner(cell, attempt);
        } catch (const std::exception &e) {
            classifyJobException(o, e);
        } catch (...) {
            o.failed = true;
            o.status = CellStatus::Failed;
            o.code = diagCodeName(DiagCode::Internal);
            o.error = "cell threw a non-std exception";
        }
    }
    o.attempts = attempt;
    if (o.status == CellStatus::Ok && o.resultJson.isNull())
        o.resultJson = o.result.toJson();
    const bool completed =
        o.code != diagCodeName(DiagCode::Interrupted);
    if (opts_.progressFd >= 0 && completed) {
        std::lock_guard<std::mutex> lk(progressM_);
        if (attempt > 1) {
            // This cell already counted a failed attempt; the retry
            // outcome replaces it rather than inflating done/total.
            --progDone_;
            switch (out.status) {
              case CellStatus::Failed:  --progFailed_;  break;
              case CellStatus::Timeout: --progTimeout_; break;
              case CellStatus::Crashed: --progCrashed_; break;
              default: break;
            }
        }
        ++progDone_;
        switch (o.status) {
          case CellStatus::Ok:
            ++progOk_;
            progUops_ += o.result.uops;
            break;
          case CellStatus::Failed:  ++progFailed_;  break;
          case CellStatus::Timeout: ++progTimeout_; break;
          case CellStatus::Crashed: ++progCrashed_; break;
          default: break;
        }
    }
    out = std::move(o);
    if (writer_ && completed)
        journalOutcome(cell, key, out);
    // OK outcomes are final the moment they complete (retries only
    // re-run failures), so hand them off now — after the journal
    // record is durable, so a consumer never learns of a result the
    // journal could still lose. Failures wait for the retry loop.
    if (opts_.onCell && out.status == CellStatus::Ok)
        opts_.onCell(cell, out);
    inFlight_.fetch_sub(1, std::memory_order_relaxed);
    if (completed)
        emitProgress();
}

std::vector<JobOutcome>
SweepSupervisor::run(const std::vector<SimJob> &cells,
                     const std::vector<std::string> &keys)
{
    return run(cells.size(), keys,
               [&cells](std::size_t i, unsigned) {
                   return runOneSimJob(cells[i]);
               });
}

std::vector<JobOutcome>
SweepSupervisor::run(std::size_t n,
                     const std::vector<std::string> &keys,
                     const CellRunner &runner)
{
    if (keys.size() != n)
        throw std::invalid_argument(
            "SweepSupervisor::run: one key per cell required");

    stats_ = SweepStats{};
    stats_.cells = n;
    interrupted_ = false;
    writer_.reset();

    std::vector<JobOutcome> outcomes(n);
    if (!opts_.journalPath.empty()) {
        if (opts_.resume)
            loadJournal(outcomes, keys);
        // A fresh (non-resumed) sweep truncates: stale records from
        // an unrelated run must never satisfy a later --resume.
        writer_ = std::make_unique<JournalWriter>(
            opts_.journalPath, /*truncate=*/!opts_.resume);
    }

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < n; ++i) {
        if (outcomes[i].status != CellStatus::Skipped)
            pending.push_back(i);
        else if (opts_.onCell)
            opts_.onCell(i, outcomes[i]); // restored: already final
    }

    SimJobPool pool(opts_.workers);
    if (opts_.progressFd >= 0) {
        std::lock_guard<std::mutex> lk(progressM_);
        progressDead_ = false;
        progTotal_ = n;
        progDone_ = progOk_ = progFailed_ = 0;
        progTimeout_ = progCrashed_ = 0;
        progSkipped_ = n - pending.size();
        progUops_ = 0;
        progWorkers_ = pool.workers();
        inFlight_.store(0, std::memory_order_relaxed);
        progStart_ = std::chrono::steady_clock::now();
    }
    emitProgress(); // initial heartbeat: grid size + resume skips
    const unsigned totalAttempts = 1 + opts_.retries;
    for (unsigned attempt = 1; attempt <= totalAttempts; ++attempt) {
        if (pending.empty() || sweepInterruptRequested())
            break;
        if (attempt > 1)
            stats_.retries += pending.size();
        pool.forEach(pending.size(), [&](std::size_t k) {
            const std::size_t cell = pending[k];
            runCell(cell, attempt, keys[cell], runner,
                    outcomes[cell]);
        });
        // Deterministic backoff ordering: the next round re-runs the
        // survivors in ascending cell id, so any attempt-count-
        // dependent behaviour (and the journal's retry trail) is
        // reproducible for a given grid and retry budget.
        std::vector<std::size_t> next;
        for (const std::size_t cell : pending) {
            const JobOutcome &o = outcomes[cell];
            if (o.failed &&
                o.code != diagCodeName(DiagCode::Interrupted))
                next.push_back(cell);
        }
        pending = std::move(next);
    }

    // Failures are final only once every retry round has had its
    // chance; hand the gave-up cells off now, in ascending id.
    // Interrupt-cut cells are deliberately excluded: --resume will
    // re-run them, so nothing about them is final yet.
    if (opts_.onCell && !sweepInterruptRequested()) {
        for (std::size_t i = 0; i < n; ++i) {
            const JobOutcome &o = outcomes[i];
            if (o.failed &&
                o.code != diagCodeName(DiagCode::Interrupted))
                opts_.onCell(i, o);
        }
    }

    for (const JobOutcome &o : outcomes) {
        switch (o.status) {
          case CellStatus::Ok:
            ++stats_.ok;
            break;
          case CellStatus::Skipped:
            ++stats_.skipped;
            break;
          case CellStatus::Failed:
            if (o.code == diagCodeName(DiagCode::Interrupted)) {
                ++stats_.interrupted;
            } else {
                ++stats_.failed;
                ++stats_.gaveUp;
            }
            break;
          case CellStatus::Timeout:
            ++stats_.timeout;
            ++stats_.gaveUp;
            break;
          case CellStatus::Crashed:
            ++stats_.crashed;
            ++stats_.gaveUp;
            break;
        }
    }
    interrupted_ = sweepInterruptRequested() || stats_.interrupted > 0;
    return outcomes;
}

} // namespace lrs
