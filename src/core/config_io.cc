#include "core/config_io.hh"

#include <fstream>
#include <functional>
#include <istream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/diag.hh"
#include "common/parse.hh"
#include "common/stats.hh"

namespace lrs
{

namespace
{

std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

bool
parseBool(const std::string &v)
{
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    throw std::invalid_argument("not a boolean: " + v);
}

std::uint64_t
parseU64(const std::string &v)
{
    std::uint64_t n = 0;
    if (!tryParseU64(v, n)) {
        throw std::invalid_argument(
            "not an unsigned integer: '" + v + "'");
    }
    return n;
}

} // namespace

OrderingScheme
parseOrderingScheme(const std::string &s)
{
    if (s == "traditional") return OrderingScheme::Traditional;
    if (s == "opportunistic") return OrderingScheme::Opportunistic;
    if (s == "postponing") return OrderingScheme::Postponing;
    if (s == "inclusive") return OrderingScheme::Inclusive;
    if (s == "exclusive") return OrderingScheme::Exclusive;
    if (s == "perfect") return OrderingScheme::Perfect;
    if (s == "storebarrier") return OrderingScheme::StoreBarrier;
    if (s == "storesets") return OrderingScheme::StoreSets;
    throw std::invalid_argument("unknown scheme: " + s);
}

HmpKind
parseHmpKind(const std::string &s)
{
    if (s == "always-hit") return HmpKind::AlwaysHit;
    if (s == "local") return HmpKind::Local;
    if (s == "chooser") return HmpKind::Chooser;
    if (s == "local+timing") return HmpKind::LocalTiming;
    if (s == "perfect") return HmpKind::Perfect;
    throw std::invalid_argument("unknown hmp: " + s);
}

BankMode
parseBankMode(const std::string &s)
{
    if (s == "multiported") return BankMode::TrueMultiPorted;
    if (s == "conventional") return BankMode::Conventional;
    if (s == "dual") return BankMode::DualScheduled;
    if (s == "sliced") return BankMode::Sliced;
    throw std::invalid_argument("unknown bank mode: " + s);
}

BankPredKind
parseBankPredKind(const std::string &s)
{
    if (s == "none") return BankPredKind::None;
    if (s == "A") return BankPredKind::A;
    if (s == "B") return BankPredKind::B;
    if (s == "C") return BankPredKind::C;
    if (s == "addr") return BankPredKind::Addr;
    throw std::invalid_argument("unknown bank predictor: " + s);
}

ChtKind
parseChtKind(const std::string &s)
{
    if (s == "full") return ChtKind::Full;
    if (s == "tagonly") return ChtKind::TagOnly;
    if (s == "tagless") return ChtKind::Tagless;
    if (s == "combined") return ChtKind::Combined;
    throw std::invalid_argument("unknown CHT kind: " + s);
}

MachineConfig
machineConfigFromIni(std::istream &is, MachineConfig base)
{
    using Setter =
        std::function<void(MachineConfig &, const std::string &)>;
    static const std::map<std::string, Setter> setters = {
        {"scheme",
         [](MachineConfig &c, const std::string &v) {
             c.scheme = parseOrderingScheme(v);
         }},
        {"hmp",
         [](MachineConfig &c, const std::string &v) {
             c.hmp = parseHmpKind(v);
         }},
        {"bank_mode",
         [](MachineConfig &c, const std::string &v) {
             c.bankMode = parseBankMode(v);
         }},
        {"bank_pred",
         [](MachineConfig &c, const std::string &v) {
             c.bankPred = parseBankPredKind(v);
         }},
        {"num_banks",
         [](MachineConfig &c, const std::string &v) {
             c.numBanks = static_cast<unsigned>(parseU64(v));
         }},
        {"sched_window",
         [](MachineConfig &c, const std::string &v) {
             c.schedWindow = static_cast<int>(parseU64(v));
         }},
        {"rob_size",
         [](MachineConfig &c, const std::string &v) {
             c.robSize = static_cast<int>(parseU64(v));
         }},
        {"reg_pool",
         [](MachineConfig &c, const std::string &v) {
             c.regPool = static_cast<int>(parseU64(v));
         }},
        {"fetch_width",
         [](MachineConfig &c, const std::string &v) {
             c.fetchWidth = static_cast<int>(parseU64(v));
         }},
        {"retire_width",
         [](MachineConfig &c, const std::string &v) {
             c.retireWidth = static_cast<int>(parseU64(v));
         }},
        {"int_units",
         [](MachineConfig &c, const std::string &v) {
             c.intUnits = static_cast<int>(parseU64(v));
         }},
        {"mem_units",
         [](MachineConfig &c, const std::string &v) {
             c.memUnits = static_cast<int>(parseU64(v));
         }},
        {"fp_units",
         [](MachineConfig &c, const std::string &v) {
             c.fpUnits = static_cast<int>(parseU64(v));
         }},
        {"complex_units",
         [](MachineConfig &c, const std::string &v) {
             c.complexUnits = static_cast<int>(parseU64(v));
         }},
        {"std_ports",
         [](MachineConfig &c, const std::string &v) {
             c.stdPorts = static_cast<int>(parseU64(v));
         }},
        {"collision_penalty",
         [](MachineConfig &c, const std::string &v) {
             c.collisionPenalty = parseU64(v);
         }},
        {"mob_partial_bits",
         [](MachineConfig &c, const std::string &v) {
             c.mobPartialBits = static_cast<unsigned>(parseU64(v));
         }},
        {"branch_mispredict_penalty",
         [](MachineConfig &c, const std::string &v) {
             c.branchMispredictPenalty = parseU64(v);
         }},
        {"replay_backoff",
         [](MachineConfig &c, const std::string &v) {
             c.replayBackoff = parseU64(v);
         }},
        {"reschedule_penalty",
         [](MachineConfig &c, const std::string &v) {
             c.reschedulePenalty = parseU64(v);
         }},
        {"ahpm_penalty",
         [](MachineConfig &c, const std::string &v) {
             c.ahpmPenalty = parseU64(v);
         }},
        {"stats_interval",
         [](MachineConfig &c, const std::string &v) {
             c.statsInterval = parseU64(v);
         }},
        {"collect_histograms",
         [](MachineConfig &c, const std::string &v) {
             c.collectHistograms = parseBool(v);
         }},
        {"audit_interval",
         [](MachineConfig &c, const std::string &v) {
             c.auditInterval = parseU64(v);
         }},
        {"max_cycles",
         [](MachineConfig &c, const std::string &v) {
             c.maxCycles = parseU64(v);
         }},
        {"exclusive_spec_forward",
         [](MachineConfig &c, const std::string &v) {
             c.exclusiveSpecForward = parseBool(v);
         }},
        {"stride_prefetch",
         [](MachineConfig &c, const std::string &v) {
             c.stridePrefetch = parseBool(v);
         }},
        {"prefetch_degree",
         [](MachineConfig &c, const std::string &v) {
             c.prefetchDegree = static_cast<unsigned>(parseU64(v));
         }},
        {"cht_kind",
         [](MachineConfig &c, const std::string &v) {
             c.cht.kind = parseChtKind(v);
         }},
        {"cht_entries",
         [](MachineConfig &c, const std::string &v) {
             c.cht.entries = parseU64(v);
         }},
        {"cht_assoc",
         [](MachineConfig &c, const std::string &v) {
             c.cht.assoc = static_cast<unsigned>(parseU64(v));
         }},
        {"cht_counter_bits",
         [](MachineConfig &c, const std::string &v) {
             c.cht.counterBits = static_cast<unsigned>(parseU64(v));
         }},
        {"cht_sticky",
         [](MachineConfig &c, const std::string &v) {
             c.cht.sticky = parseBool(v);
         }},
        {"cht_track_distance",
         [](MachineConfig &c, const std::string &v) {
             c.cht.trackDistance = parseBool(v);
         }},
        {"cht_clear_interval",
         [](MachineConfig &c, const std::string &v) {
             c.cht.clearInterval = parseU64(v);
         }},
        {"cht_path_bits",
         [](MachineConfig &c, const std::string &v) {
             c.cht.pathBits = static_cast<unsigned>(parseU64(v));
         }},
        {"l1_bytes",
         [](MachineConfig &c, const std::string &v) {
             c.mem.l1.sizeBytes = parseU64(v);
         }},
        {"l2_bytes",
         [](MachineConfig &c, const std::string &v) {
             c.mem.l2.sizeBytes = parseU64(v);
         }},
        {"mem_latency",
         [](MachineConfig &c, const std::string &v) {
             c.mem.memLatency = parseU64(v);
         }},
    };

    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const auto comment = line.find_first_of("#;");
        if (comment != std::string::npos)
            line.resize(comment);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            throw ConfigError(makeDiag(
                DiagCode::ConfigSyntax, "config_io",
                strprintf("line %d", lineno),
                "expected 'key = value', got '" + line + "'"));
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        const auto it = setters.find(key);
        if (it == setters.end()) {
            throw ConfigError(makeDiag(
                DiagCode::ConfigUnknownKey, "config_io", key,
                strprintf("unknown key at line %d", lineno)));
        }
        try {
            it->second(base, value);
        } catch (const ConfigError &) {
            throw;
        } catch (const std::exception &e) {
            throw ConfigError(makeDiag(
                DiagCode::ConfigInvalid, "config_io", key,
                strprintf("line %d: %s", lineno, e.what())));
        }
    }
    // One pass, all violations: a machine assembled from this file
    // must be buildable, and the user should learn of every bad
    // parameter now rather than one ConfigError per run.
    base.validateOrThrow();
    return base;
}

MachineConfig
machineConfigFromFile(const std::string &path, MachineConfig base)
{
    std::ifstream f(path);
    if (!f) {
        // ConfigError (not IoError): a missing config file is a
        // usage/configuration problem and callers catch it as such.
        throw ConfigError(makeDiag(DiagCode::IoOpenFailed, "config_io",
                                   "path",
                                   "cannot open config: " + path));
    }
    return machineConfigFromIni(f, base);
}

std::string
machineConfigToIni(const MachineConfig &cfg)
{
    std::ostringstream os;
    const auto scheme_name = [&] {
        std::string s = orderingSchemeName(cfg.scheme);
        for (auto &c : s)
            c = static_cast<char>(std::tolower(c));
        return s;
    }();
    os << "# lrs machine configuration\n";
    os << "scheme = " << scheme_name << "\n";
    os << "hmp = " << hmpKindName(cfg.hmp) << "\n";
    os << "bank_mode = "
       << (cfg.bankMode == BankMode::TrueMultiPorted ? "multiported"
           : cfg.bankMode == BankMode::Conventional  ? "conventional"
           : cfg.bankMode == BankMode::DualScheduled ? "dual"
                                                     : "sliced")
       << "\n";
    os << "bank_pred = " << bankPredKindName(cfg.bankPred) << "\n";
    os << "num_banks = " << cfg.numBanks << "\n";
    os << "sched_window = " << cfg.schedWindow << "\n";
    os << "rob_size = " << cfg.robSize << "\n";
    os << "reg_pool = " << cfg.regPool << "\n";
    os << "fetch_width = " << cfg.fetchWidth << "\n";
    os << "retire_width = " << cfg.retireWidth << "\n";
    os << "int_units = " << cfg.intUnits << "\n";
    os << "mem_units = " << cfg.memUnits << "\n";
    os << "fp_units = " << cfg.fpUnits << "\n";
    os << "complex_units = " << cfg.complexUnits << "\n";
    os << "std_ports = " << cfg.stdPorts << "\n";
    os << "collision_penalty = " << cfg.collisionPenalty << "\n";
    os << "mob_partial_bits = " << cfg.mobPartialBits << "\n";
    os << "branch_mispredict_penalty = "
       << cfg.branchMispredictPenalty << "\n";
    os << "replay_backoff = " << cfg.replayBackoff << "\n";
    os << "reschedule_penalty = " << cfg.reschedulePenalty << "\n";
    os << "ahpm_penalty = " << cfg.ahpmPenalty << "\n";
    os << "stats_interval = " << cfg.statsInterval << "\n";
    os << "collect_histograms = "
       << (cfg.collectHistograms ? "true" : "false") << "\n";
    os << "audit_interval = " << cfg.auditInterval << "\n";
    os << "max_cycles = " << cfg.maxCycles << "\n";
    os << "exclusive_spec_forward = "
       << (cfg.exclusiveSpecForward ? "true" : "false") << "\n";
    os << "stride_prefetch = "
       << (cfg.stridePrefetch ? "true" : "false") << "\n";
    os << "prefetch_degree = " << cfg.prefetchDegree << "\n";
    const auto cht_kind = [&] {
        switch (cfg.cht.kind) {
          case ChtKind::Full: return "full";
          case ChtKind::TagOnly: return "tagonly";
          case ChtKind::Tagless: return "tagless";
          case ChtKind::Combined: return "combined";
        }
        return "?";
    }();
    os << "cht_kind = " << cht_kind << "\n";
    os << "cht_entries = " << cfg.cht.entries << "\n";
    os << "cht_assoc = " << cfg.cht.assoc << "\n";
    os << "cht_counter_bits = " << cfg.cht.counterBits << "\n";
    os << "cht_sticky = " << (cfg.cht.sticky ? "true" : "false")
       << "\n";
    os << "cht_track_distance = "
       << (cfg.cht.trackDistance ? "true" : "false") << "\n";
    os << "cht_clear_interval = " << cfg.cht.clearInterval << "\n";
    os << "cht_path_bits = " << cfg.cht.pathBits << "\n";
    os << "l1_bytes = " << cfg.mem.l1.sizeBytes << "\n";
    os << "l2_bytes = " << cfg.mem.l2.sizeBytes << "\n";
    os << "mem_latency = " << cfg.mem.memLatency << "\n";
    return os.str();
}

} // namespace lrs
