#include "core/parallel.hh"

#include "core/core.hh"
#include "core/flight_recorder.hh"
#include "core/runner.hh"
#include "core/snapshot.hh"
#include "trace/library.hh"

namespace lrs
{

namespace
{

/**
 * Set while this thread is executing a pool job (including the
 * calling thread during its worker-0 participation). A nested
 * forEach() under this flag runs inline: the jobs of the outer batch
 * are already spread across the pool, and blocking a worker on a
 * second batch would deadlock the pool against itself.
 */
thread_local bool tlInPoolJob = false;

} // namespace

SimJobPool::SimJobPool(unsigned workers)
    : workers_(workers ? workers : configuredWorkers())
{
    if (workers_ < 1)
        workers_ = 1;
    queues_.reserve(workers_);
    for (unsigned i = 0; i < workers_; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    // The caller is worker 0; only the rest need threads.
    threads_.reserve(workers_ - 1);
    for (unsigned i = 1; i < workers_; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

SimJobPool::~SimJobPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stopping_ = true;
    }
    cvWork_.notify_all();
    for (auto &t : threads_)
        t.join();
}

unsigned
SimJobPool::configuredWorkers()
{
    const std::uint64_t env = envU64("LRS_JOBS", 0);
    if (env > 0) {
        // Cap well above any plausible machine; a typo'd huge value
        // must not try to spawn millions of threads.
        return static_cast<unsigned>(env > 1024 ? 1024 : env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

SimJobPool &
SimJobPool::shared()
{
    static SimJobPool pool;
    return pool;
}

bool
SimJobPool::popJob(unsigned self, std::uint64_t epoch, std::size_t &id)
{
    {
        WorkerQueue &own = *queues_[self];
        std::lock_guard<std::mutex> lk(own.m);
        if (!own.jobs.empty() && own.jobs.front().epoch == epoch) {
            id = own.jobs.front().id;
            own.jobs.pop_front();
            return true;
        }
    }
    // Own deque drained: steal from the back of a sibling's. The
    // epoch tag refuses entries of any other batch (see QueuedJob).
    for (unsigned k = 1; k < workers_; ++k) {
        WorkerQueue &victim = *queues_[(self + k) % workers_];
        std::lock_guard<std::mutex> lk(victim.m);
        if (!victim.jobs.empty() &&
            victim.jobs.back().epoch == epoch) {
            id = victim.jobs.back().id;
            victim.jobs.pop_back();
            return true;
        }
    }
    return false;
}

void
SimJobPool::runJob(Batch &b, std::size_t id)
{
    const bool nested = tlInPoolJob;
    tlInPoolJob = true;
    std::exception_ptr err;
    try {
        (*b.fn)(id);
    } catch (...) {
        err = std::current_exception();
    }
    tlInPoolJob = nested;

    std::lock_guard<std::mutex> lk(m_);
    if (err && !b.firstError)
        b.firstError = err;
    if (--b.pending == 0)
        cvDone_.notify_all();
}

void
SimJobPool::workerLoop(unsigned self)
{
    std::uint64_t seen = 0;
    for (;;) {
        Batch *b = nullptr;
        {
            std::unique_lock<std::mutex> lk(m_);
            cvWork_.wait(lk, [&] {
                return stopping_ || (batch_ && epoch_ != seen);
            });
            if (stopping_)
                return;
            seen = epoch_;
            b = batch_;
        }
        std::size_t id;
        while (popJob(self, seen, id))
            runJob(*b, id);
        // Queues drained for this batch (jobs may still be running on
        // other workers); sleep until the next batch is published.
    }
}

void
SimJobPool::forEach(std::size_t n,
                    const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (workers_ == 1 || n == 1 || tlInPoolJob) {
        // Inline serial path; match the parallel contract: run every
        // job, then rethrow the first failure.
        std::exception_ptr first;
        const bool nested = tlInPoolJob;
        tlInPoolJob = true;
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!first)
                    first = std::current_exception();
            }
        }
        tlInPoolJob = nested;
        if (first)
            std::rethrow_exception(first);
        return;
    }

    std::lock_guard<std::mutex> caller(callerM_);

    Batch b;
    b.fn = &fn;
    b.pending = n;

    std::uint64_t epoch;
    {
        std::lock_guard<std::mutex> lk(m_);
        epoch = epoch_ + 1;
    }
    // Deal job ids round-robin so every worker starts with a spread
    // of the grid; stealing rebalances whatever the deal got wrong.
    for (unsigned w = 0; w < workers_; ++w) {
        WorkerQueue &q = *queues_[w];
        std::lock_guard<std::mutex> lk(q.m);
        for (std::size_t id = w; id < n; id += workers_)
            q.jobs.push_back({epoch, id});
    }
    {
        std::lock_guard<std::mutex> lk(m_);
        batch_ = &b;
        epoch_ = epoch;
    }
    cvWork_.notify_all();

    // Participate as worker 0.
    std::size_t id;
    while (popJob(0, epoch, id))
        runJob(b, id);

    {
        std::unique_lock<std::mutex> lk(m_);
        cvDone_.wait(lk, [&] { return b.pending == 0; });
        batch_ = nullptr;
    }
    if (b.firstError)
        std::rethrow_exception(b.firstError);
}

const char *
cellStatusName(CellStatus s)
{
    switch (s) {
      case CellStatus::Ok:      return "OK";
      case CellStatus::Failed:  return "FAILED";
      case CellStatus::Timeout: return "TIMEOUT";
      case CellStatus::Crashed: return "CRASHED";
      case CellStatus::Skipped: return "SKIPPED";
    }
    return "?";
}

CellStatus
parseCellStatus(const std::string &name)
{
    if (name == "OK") return CellStatus::Ok;
    if (name == "FAILED") return CellStatus::Failed;
    if (name == "TIMEOUT") return CellStatus::Timeout;
    if (name == "CRASHED") return CellStatus::Crashed;
    if (name == "SKIPPED") return CellStatus::Skipped;
    throw std::invalid_argument("unknown cell status: " + name);
}

void
classifyJobException(JobOutcome &o, const std::exception &e)
{
    o.failed = true;
    o.error = e.what();
    // A deadline is a distinct outcome, not a generic failure: the
    // supervisor retries it under the same budget and reports it as
    // TIMEOUT if it persists.
    if (dynamic_cast<const DeadlineError *>(&e)) {
        o.status = CellStatus::Timeout;
        o.code = diagCodeName(DiagCode::DeadlineExceeded);
        return;
    }
    o.status = CellStatus::Failed;
    if (const auto *de = dynamic_cast<const DiagnosticError *>(&e);
        de && !de->diags().empty()) {
        o.code = diagCodeName(de->diags().front().code);
    } else {
        o.code = diagCodeName(DiagCode::Internal);
    }
}

JobOutcome
runOneSimJob(const SimJob &job)
{
    return runOneSimJob(job, nullptr);
}

JobOutcome
runOneSimJob(const SimJob &job, FlightRecorder *fr)
{
    JobOutcome o;
    try {
        auto trace = TraceLibrary::make(job.trace);
        OooCore core(job.cfg);
        core.attachFlightRecorder(fr);
        if (!job.fromSnapshot.empty()) {
            // Warm-once sampling: restore the trace's checkpoint and
            // simulate only the measured region.
            loadSnapshotInto(job.fromSnapshot, core, *trace);
            core.advanceTo(*trace);
            o.result = core.finishRun();
        } else {
            o.result = core.run(*trace);
        }
    } catch (const std::exception &e) {
        // Everything — including an AuditError from a fault-injected
        // cell — fails only this cell; the grid carries on and the
        // front end maps the code to its report.
        classifyJobException(o, e);
        if (fr) {
            fr->note("outcome", o.code + ": " + o.error);
            fr->dumpNow();
        }
    }
    return o;
}

std::vector<JobOutcome>
SimJobPool::runJobs(const std::vector<SimJob> &jobs)
{
    std::vector<JobOutcome> out(jobs.size());
    forEach(jobs.size(),
            [&](std::size_t i) { out[i] = runOneSimJob(jobs[i]); });
    return out;
}

} // namespace lrs
