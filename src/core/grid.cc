#include "core/grid.hh"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/diag.hh"
#include "common/parse.hh"
#include "core/config_io.hh"
#include "core/runner.hh"
#include "trace/library.hh"

namespace lrs
{

namespace
{

/** Split a grid-file list value on commas and whitespace. */
std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : s) {
        if (c == ',' || c == ' ' || c == '\t') {
            if (!cur.empty())
                out.push_back(std::move(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(std::move(cur));
    return out;
}

[[noreturn]] void
throwGrid(const std::string &origin, const std::string &message)
{
    throw ConfigError(makeDiag(DiagCode::ConfigInvalid, "core.grid",
                               "grid", message + " (" + origin + ")"));
}

std::uint64_t
parseU64(const std::string &origin, const std::string &key,
         const std::string &value)
{
    std::uint64_t v = 0;
    if (!tryParseU64(value, v))
        throwGrid(origin, "bad " + key + " value '" + value + "'");
    return v;
}

} // namespace

BatchGrid
parseBatchGrid(std::istream &is, const std::string &origin)
{
    BatchGrid grid;
    std::ostringstream cfg_lines;
    std::string line;
    while (std::getline(is, line)) {
        std::string text = line;
        if (const auto hash = text.find_first_of("#;");
            hash != std::string::npos)
            text.erase(hash);
        const auto eq = text.find('=');
        if (eq == std::string::npos) {
            if (text.find_first_not_of(" \t\r") != std::string::npos)
                cfg_lines << line << '\n'; // let the config parser
                                           // report the syntax error
            continue;
        }
        auto trim = [](std::string s) {
            const auto b = s.find_first_not_of(" \t\r");
            if (b == std::string::npos)
                return std::string();
            const auto e = s.find_last_not_of(" \t\r");
            return s.substr(b, e - b + 1);
        };
        const std::string key = trim(text.substr(0, eq));
        const std::string value = trim(text.substr(eq + 1));
        if (key == "traces") {
            grid.traces = splitList(value);
        } else if (key == "schemes") {
            for (const auto &name : splitList(value)) {
                try {
                    grid.schemes.push_back(parseOrderingScheme(name));
                } catch (const std::invalid_argument &e) {
                    throwGrid(origin, e.what());
                }
            }
        } else if (key == "len") {
            grid.len = parseU64(origin, key, value);
        } else if (key == "jobs") {
            grid.jobs =
                static_cast<unsigned>(parseU64(origin, key, value));
        } else if (key == "warmup_snapshot") {
            grid.warmupSnapshot = parseU64(origin, key, value);
        } else if (key == "snapshot_dir") {
            grid.snapshotDir = value;
        } else {
            cfg_lines << line << '\n';
        }
    }
    std::istringstream cfg_is(cfg_lines.str());
    try {
        grid.base = machineConfigFromIni(cfg_is, grid.base);
    } catch (const ConfigError &) {
        throw;
    } catch (const std::invalid_argument &e) {
        throwGrid(origin, e.what());
    }
    if (grid.traces.empty())
        throwGrid(origin, "grid names no traces");
    if (grid.schemes.empty())
        grid.schemes = allSchemes();
    return grid;
}

BatchGrid
parseBatchGridFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        throw IoError(makeDiag(DiagCode::IoOpenFailed, "core.grid",
                               "path", "cannot open " + path));
    }
    return parseBatchGrid(is, "batch file " + path);
}

void
buildGridJobs(const BatchGrid &grid, std::vector<SimJob> &jobs,
              std::vector<std::string> &keys)
{
    jobs.clear();
    keys.clear();
    jobs.reserve(grid.cells());
    keys.reserve(grid.cells());
    for (const auto &name : grid.traces) {
        TraceParams tp;
        try {
            tp = TraceLibrary::byName(name, grid.len);
        } catch (const std::invalid_argument &e) {
            throw ConfigError(makeDiag(DiagCode::ConfigInvalid,
                                       "core.grid", "traces",
                                       e.what()));
        }
        for (const auto scheme : grid.schemes) {
            SimJob job;
            job.trace = tp;
            job.cfg = grid.base;
            job.cfg.scheme = scheme;
            jobs.push_back(std::move(job));
            keys.push_back(name + "/" + orderingSchemeName(scheme));
        }
    }
}

} // namespace lrs
