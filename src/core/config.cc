/**
 * @file
 * Whole-machine configuration validation.
 *
 * Every parameter of MachineConfig is checked here in one pass and
 * every violation is reported at once — a user fixing a config file
 * should not have to play whack-a-mole with one error per run. The
 * individual predictor/cache constructors still throw on their own
 * (they can be built stand-alone), but OooCore routes through
 * validateOrThrow() before any subsystem is constructed, so a bad
 * machine never half-builds.
 */

#include "core/config.hh"

#include "common/bitutils.hh"

namespace lrs
{

namespace
{

std::string
got(long long v)
{
    return " (got " + std::to_string(v) + ")";
}

} // namespace

std::vector<Diag>
MachineConfig::validate() const
{
    std::vector<Diag> diags;
    const auto bad = [&](const std::string &param,
                         const std::string &msg) {
        diags.push_back(
            makeDiag(DiagCode::ConfigInvalid, "config", param, msg));
    };

    // Front end and window sizing.
    if (fetchWidth < 1)
        bad("fetch_width", "must be >= 1" + got(fetchWidth));
    if (retireWidth < 1)
        bad("retire_width", "must be >= 1" + got(retireWidth));
    if (robSize < 1)
        bad("rob_size", "must be >= 1" + got(robSize));
    if (regPool < 1)
        bad("reg_pool", "must be >= 1" + got(regPool));
    if (schedWindow < 1) {
        bad("sched_window", "must be >= 1" + got(schedWindow));
    } else if (robSize >= 1 && schedWindow > robSize) {
        bad("sched_window",
            "scheduling window (" + std::to_string(schedWindow) +
                ") cannot exceed the ROB (" + std::to_string(robSize) +
                "): every waiting uop holds a ROB entry");
    }
    if (branchHistBits < 1 || branchHistBits > 24) {
        bad("branch_hist_bits",
            "gshare history must be 1..24 bits" + got(branchHistBits));
    }

    // Execution units: a pool of zero units deadlocks the scheduler
    // as soon as a uop of that class reaches the window.
    if (intUnits < 1)
        bad("int_units", "must be >= 1" + got(intUnits));
    if (memUnits < 1)
        bad("mem_units", "must be >= 1" + got(memUnits));
    if (fpUnits < 1)
        bad("fp_units", "must be >= 1" + got(fpUnits));
    if (complexUnits < 1)
        bad("complex_units", "must be >= 1" + got(complexUnits));
    if (stdPorts < 1)
        bad("std_ports", "must be >= 1" + got(stdPorts));

    // Banked-cache pipeline. The per-port free lists are fixed-size
    // arrays of 8; the per-bit predictor needs a power of two.
    if (numBanks < 1 || numBanks > 8 || !isPowerOf2(numBanks)) {
        bad("num_banks", "bank count must be a power of two in 1..8" +
                             got(numBanks));
    }
    if (bankMode == BankMode::Sliced && bankPred == BankPredKind::None) {
        bad("bank_pred",
            "the sliced pipeline requires a bank predictor: without "
            "one every load is replicated to every pipe and the mode "
            "degenerates (pick bank_pred a|b|c|addr)");
    }

    // Load-related speculation machinery.
    if (usesCht() || chtShadow) {
        for (Diag &d : cht.validate("config.cht"))
            diags.push_back(std::move(d));
    }
    if (scheme == OrderingScheme::StoreSets) {
        if (ssitEntries == 0 || !isPowerOf2(ssitEntries)) {
            bad("ssit_entries",
                "SSIT size must be a nonzero power of two" +
                    got(static_cast<long long>(ssitEntries)));
        }
        if (storeSetCount < 1)
            bad("store_set_count", "must be >= 1 (got 0)");
    }
    if (scheme == OrderingScheme::StoreBarrier &&
        (barrierEntries == 0 || !isPowerOf2(barrierEntries))) {
        bad("barrier_entries",
            "barrier cache size must be a nonzero power of two" +
                got(static_cast<long long>(barrierEntries)));
    }
    if (stridePrefetch && (prefetchDegree < 1 || prefetchDegree > 64)) {
        bad("prefetch_degree",
            "prefetch depth must be 1..64 strides" +
                got(prefetchDegree));
    }
    if (mobPartialBits != 0 &&
        (mobPartialBits < 6 || mobPartialBits > 48)) {
        bad("mob_partial_bits",
            "partial comparator width must be 0 (full addresses) or "
            "6..48 bits" +
                got(mobPartialBits));
    }

    // Memory hierarchy geometry.
    for (Diag &d : mem.l1.validate("config.mem.l1"))
        diags.push_back(std::move(d));
    for (Diag &d : mem.l2.validate("config.mem.l2"))
        diags.push_back(std::move(d));

    return diags;
}

void
MachineConfig::validateOrThrow() const
{
    if (auto diags = validate(); !diags.empty())
        throw ConfigError(std::move(diags));
}

} // namespace lrs
