/**
 * @file
 * Statistical (non-performance) evaluations, matching the paper's
 * methodology for hit-miss prediction and bank prediction: the
 * predictors are run over the trace's load stream with a functional
 * cache model and "no effect on scheduling" (sections 3.2, 4.2, 4.3).
 */

#ifndef LRS_CORE_ANALYSIS_HH
#define LRS_CORE_ANALYSIS_HH

#include <cstdint>

#include "memory/hierarchy.hh"
#include "predictors/bank_pred.hh"
#include "predictors/hitmiss.hh"
#include "trace/stream.hh"

namespace lrs
{

/** Outcome counts of a statistical hit-miss predictor run. */
struct HmpStats
{
    std::uint64_t loads = 0;
    std::uint64_t misses = 0; ///< actual L1 misses (incl. dynamic)
    std::uint64_t ahPh = 0;
    std::uint64_t ahPm = 0;
    std::uint64_t amPh = 0;
    std::uint64_t amPm = 0;

    double missRate() const
    {
        return loads ? static_cast<double>(misses) / loads : 0.0;
    }
    /** AM-PM as a fraction of all loads (the figure's middle bar). */
    double caughtFrac() const
    {
        return loads ? static_cast<double>(amPm) / loads : 0.0;
    }
    /** AH-PM as a fraction of all loads (the figure's left bar). */
    double falseMissFrac() const
    {
        return loads ? static_cast<double>(ahPm) / loads : 0.0;
    }
    /** Fraction of actual misses the predictor caught. */
    double coverage() const
    {
        return misses ? static_cast<double>(amPm) / misses : 0.0;
    }
};

/** Which cache level's misses the hit-miss analysis predicts. */
enum class MissLevel
{
    L1, ///< first-level misses (the paper's main evaluation)
    L2, ///< misses to main memory (the thread-switch use case)
};

/**
 * Run @p hmp over the loads of @p trace against a functional timing
 * cache. @p uops_per_cycle converts uop index to pseudo-cycles for the
 * fill-timing (dynamic miss) model. With MissLevel::L2 the predicted
 * outcome is "misses all caches" — the paper's section 2.2 suggests
 * using that prediction to govern thread switches in an SMT machine.
 */
HmpStats analyzeHitMiss(const VecTrace &trace, HitMissPredictor &hmp,
                        const HierarchyParams &mem = {},
                        double uops_per_cycle = 2.0,
                        MissLevel level = MissLevel::L1);

/**
 * Thread-switch value estimate for an L2 hit-miss predictor
 * (section 2.2: "the prediction may be used to govern a thread switch
 * if a load is predicted to miss the L2 cache"). Each caught memory
 * access saves roughly the main-memory latency minus the switch
 * overhead; each false switch costs the overhead.
 */
struct ThreadSwitchEstimate
{
    HmpStats stats;
    Cycle switchOverhead;
    Cycle memLatency;

    /** Net cycles saved per 1000 loads by switch-on-predicted-miss. */
    double
    netSavedPerKiloLoad() const
    {
        if (stats.loads == 0)
            return 0.0;
        const double saved =
            static_cast<double>(stats.amPm) *
            (static_cast<double>(memLatency) -
             static_cast<double>(switchOverhead));
        const double wasted = static_cast<double>(stats.ahPm) *
                              static_cast<double>(switchOverhead);
        return (saved - wasted) * 1000.0 /
               static_cast<double>(stats.loads);
    }
};

ThreadSwitchEstimate estimateThreadSwitch(
    const VecTrace &trace, HitMissPredictor &hmp,
    const HierarchyParams &mem = {}, Cycle switch_overhead = 20);

/** Outcome counts of a statistical bank predictor run. */
struct BankStats
{
    std::uint64_t loads = 0;
    std::uint64_t predicted = 0;
    std::uint64_t correct = 0;
    std::uint64_t wrong = 0;

    /** P: fraction of loads for which a prediction was made. */
    double rate() const
    {
        return loads ? static_cast<double>(predicted) / loads : 0.0;
    }
    /** Accuracy of the predictions that were made. */
    double accuracy() const
    {
        return predicted ? static_cast<double>(correct) / predicted
                         : 0.0;
    }
    /** R: correct-to-wrong ratio. */
    double ratioR() const
    {
        return wrong ? static_cast<double>(correct) / wrong
                     : static_cast<double>(correct);
    }
    /** The paper's section-4.3 metric at a given penalty. */
    double metric(double penalty) const
    {
        return bankMetric(rate(), ratioR(), penalty);
    }
};

/**
 * Run @p pred over the loads of @p trace. The actual bank is the
 * line-interleaved bank of the effective address.
 */
BankStats analyzeBank(const VecTrace &trace, BankPredictor &pred,
                      unsigned line_bytes = 64, unsigned num_banks = 2);

} // namespace lrs

#endif // LRS_CORE_ANALYSIS_HH
