/**
 * @file
 * Convenience helpers the benches and examples use to run traces
 * through machine configurations and compare schemes.
 */

#ifndef LRS_CORE_RUNNER_HH
#define LRS_CORE_RUNNER_HH

#include <string>
#include <vector>

#include "core/config.hh"
#include "core/core.hh"
#include "core/results.hh"
#include "trace/library.hh"

namespace lrs
{

/** Run @p trace through a machine configured as @p cfg. */
SimResult runSim(TraceStream &trace, const MachineConfig &cfg);

/** Generate the trace for @p params and run it. */
SimResult runSim(const TraceParams &params, const MachineConfig &cfg);

/**
 * Run one trace under every ordering scheme (I-VI) with a shared
 * machine configuration; returns results in scheme order. The
 * schemes run concurrently on the shared SimJobPool (honouring
 * LRS_JOBS); the returned vector is bit-identical to a serial loop
 * regardless of worker count — see docs/PARALLELISM.md.
 */
std::vector<SimResult> runAllSchemes(VecTrace &trace,
                                     MachineConfig cfg);

/** The scheme order used by runAllSchemes(). */
const std::vector<OrderingScheme> &allSchemes();

/**
 * Geometric mean of speedups (each vs its own baseline). Zero,
 * negative or NaN values (a crashed scheme yields 0.0; an unran
 * baseline yields NaN) cannot enter a log-mean and would otherwise
 * poison it silently; they are skipped with a one-line E_DATA_INVALID
 * warning on stderr naming the offending value. Returns 0.0 when no
 * usable value remains.
 */
double geomean(const std::vector<double> &values);

/**
 * Read an unsigned integer environment override, e.g. the trace
 * length knob LRS_TRACE_LEN used by all benches. Returns @p fallback
 * when unset; when the variable is set but not fully parsable as a
 * decimal integer — including values beyond 2^64-1, which strtoull
 * would otherwise silently clamp to ULLONG_MAX (ERANGE), and
 * negatives, which it would wrap — a one-line warning goes to stderr
 * and @p fallback is returned (a silently ignored or mangled override
 * would fake experiment results).
 */
std::uint64_t envU64(const char *name, std::uint64_t fallback);

/**
 * Cooperative sweep cancellation, the mechanism behind lrs_sim's
 * SIGINT/SIGTERM handling (docs/ROBUSTNESS.md, "Sweep supervisor").
 * requestSweepInterrupt() is async-signal-safe (one relaxed store on
 * a lock-free atomic), so a signal handler may call it directly. The
 * core polls the flag every few thousand simulated cycles and unwinds
 * with InterruptError; the sweep supervisor stops launching cells and
 * lets already-journaled work stand, so a later --resume continues
 * exactly where the interrupt landed.
 */
void requestSweepInterrupt() noexcept;
bool sweepInterruptRequested() noexcept;
/** Re-arm after a handled interrupt (tests; fresh supervisor runs). */
void clearSweepInterrupt() noexcept;

/**
 * Idle-cycle skip-ahead toggle (docs/PERFORMANCE.md). When on (the
 * default), OooCore::advanceTo() jumps over provably idle cycles —
 * cycles in which no stage can mutate machine state — landing on the
 * earliest future event with interval stats, histograms, audit
 * cadence and the interrupt-poll cadence bulk-accounted to be
 * bit-identical to stepping every cycle. A process-wide runtime flag
 * rather than a MachineConfig field: it cannot change any simulated
 * outcome, so it must not enter config fingerprints (snapshot
 * headers, warm-fork reuse checks). `lrs_sim --no-skip-ahead` and the
 * ThroughputIdentity tests flip it to pin the equivalence.
 */
void setCycleSkipAhead(bool enabled) noexcept;
bool cycleSkipAhead() noexcept;

} // namespace lrs

#endif // LRS_CORE_RUNNER_HH
