#include "core/snapshot.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/diag.hh"
#include "common/io.hh"
#include "common/journal.hh"
#include "core/config_io.hh"
#include "core/core.hh"
#include "core/grid.hh"
#include "core/parallel.hh"
#include "trace/library.hh"
#include "trace/stream.hh"

namespace lrs
{

namespace
{

[[noreturn]] void
badSnapshot(const std::string &path, const std::string &message)
{
    throw ConfigError(makeDiag(DiagCode::JournalInvalid,
                               "core.snapshot", "file",
                               message + " (" + path + ")"));
}

[[noreturn]] void
ioFail(DiagCode code, const std::string &path, const char *what)
{
    throw IoError(makeDiag(code, "core.snapshot", "path",
                           std::string(what) + ": " + path));
}

/** Strict field accessors on a parsed (trusted-framing) record. */
std::uint64_t
fieldU64(const json::Value &rec, const char *key,
         const std::string &path)
{
    const json::Value *v = rec.find(key);
    if (!v || !v->isNumber())
        badSnapshot(path, std::string("missing/non-numeric field '") +
                              key + "'");
    return v->asU64();
}

std::string
fieldString(const json::Value &rec, const char *key,
            const std::string &path)
{
    const json::Value *v = rec.find(key);
    if (!v || !v->isString())
        badSnapshot(path, std::string("missing/non-string field '") +
                              key + "'");
    return v->asString();
}

/** mkdir -p: create every missing component of @p dir. */
void
ensureDir(const std::string &dir)
{
    if (dir.empty())
        return;
    std::string cur;
    std::istringstream is(dir);
    std::string part;
    if (dir[0] == '/')
        cur = "/";
    while (std::getline(is, part, '/')) {
        if (part.empty())
            continue;
        cur += part;
        if (::mkdir(cur.c_str(), 0755) != 0 && errno != EEXIST)
            ioFail(DiagCode::IoOpenFailed, cur,
                   "cannot create directory");
        cur += '/';
    }
}

} // namespace

void
writeSnapshot(const std::string &path, const OooCore &core,
              const TraceStream &trace, Cycle target)
{
    const json::Value state = core.saveState();

    json::Value header = json::Value::object();
    header.set("kind", json::Value("lrs-snapshot"));
    header.set("version", json::Value(kSnapshotFormatVersion));
    header.set("cycle", json::Value(core.now()));
    header.set("target", json::Value(target));
    header.set("trace", json::Value(trace.name()));
    header.set("trace_size",
               json::Value(static_cast<std::uint64_t>(trace.size())));
    // Ingested traces carry a source-content identity; a checkpoint
    // must never be restored against a since-modified trace file.
    if (trace.contentCrc() != 0 || trace.contentBytes() != 0) {
        header.set("trace_bytes", json::Value(trace.contentBytes()));
        header.set("trace_crc32",
                   json::Value(static_cast<std::uint64_t>(
                       trace.contentCrc())));
    }
    header.set("config", json::Value(machineConfigToIni(core.config())));
    header.set("sections", json::Value(static_cast<std::uint64_t>(
                               state.members().size())));

    std::string out = journalLine(header);
    for (const auto &[name, section] : state.members()) {
        json::Value rec = json::Value::object();
        rec.set("section", json::Value(name));
        rec.set("state", section);
        out += journalLine(rec);
    }
    json::Value end = json::Value::object();
    end.set("kind", json::Value("lrs-snapshot-end"));
    end.set("sections", json::Value(static_cast<std::uint64_t>(
                            state.members().size())));
    out += journalLine(end);

    // Temp-write + fsync + rename (the flight recorder's discipline):
    // a SIGKILL at any instant leaves either the previous complete
    // snapshot at @p path or none — never a torn file.
    const std::string tmp = path + ".tmp";
    const int fd = ::open(
        tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0)
        ioFail(DiagCode::IoOpenFailed, tmp, "cannot open");
    if (!writeFully(fd, out)) {
        ::close(fd);
        ioFail(DiagCode::IoWriteFailed, tmp, "write failed");
    }
    if (::fsync(fd) != 0 || ::close(fd) != 0)
        ioFail(DiagCode::IoWriteFailed, tmp, "sync failed");
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        ioFail(DiagCode::IoWriteFailed, path, "rename failed");
}

SnapshotImage
readSnapshot(const std::string &path)
{
    // The journal reader resyncs past damage and keeps counting; a
    // snapshot turns that accounting into a hard rejection — a machine
    // restored from a partially damaged checkpoint would be subtly,
    // silently wrong.
    JournalReadStats stats;
    const std::vector<json::Value> records = readJournal(path, &stats);
    if (stats.badLines)
        badSnapshot(path, "damaged record lines");
    if (stats.truncatedTail)
        badSnapshot(path, "truncated tail");
    if (records.size() < 2)
        badSnapshot(path, "too few records for header + end marker");

    const json::Value &header = records.front();
    if (!header.isObject() ||
        fieldString(header, "kind", path) != "lrs-snapshot")
        badSnapshot(path, "first record is not a snapshot header");
    SnapshotImage img;
    img.version = fieldU64(header, "version", path);
    if (img.version != kSnapshotFormatVersion)
        badSnapshot(path, "unsupported format version " +
                              std::to_string(img.version));
    img.cycle = fieldU64(header, "cycle", path);
    img.target = fieldU64(header, "target", path);
    img.traceName = fieldString(header, "trace", path);
    img.traceSize = fieldU64(header, "trace_size", path);
    // Optional: only ingested-trace snapshots carry these.
    if (const json::Value *v = header.find("trace_bytes")) {
        if (!v->isNumber())
            badSnapshot(path, "non-numeric field 'trace_bytes'");
        img.traceBytes = v->asU64();
        img.traceCrc = static_cast<std::uint32_t>(
            fieldU64(header, "trace_crc32", path));
    }
    img.configIni = fieldString(header, "config", path);
    const std::uint64_t sections = fieldU64(header, "sections", path);

    const json::Value &end = records.back();
    if (!end.isObject() ||
        fieldString(end, "kind", path) != "lrs-snapshot-end")
        badSnapshot(path, "missing end marker");
    if (fieldU64(end, "sections", path) != sections ||
        records.size() != sections + 2)
        badSnapshot(path, "section count mismatch");

    img.state = json::Value::object();
    for (std::size_t i = 1; i + 1 < records.size(); ++i) {
        const json::Value &rec = records[i];
        if (!rec.isObject())
            badSnapshot(path, "section record is not an object");
        const std::string name = fieldString(rec, "section", path);
        const json::Value *state = rec.find("state");
        if (!state)
            badSnapshot(path, "section '" + name + "' has no state");
        if (img.state.find(name))
            badSnapshot(path, "duplicate section '" + name + "'");
        img.state.set(name, *state);
    }
    return img;
}

void
restoreSnapshot(const SnapshotImage &img, OooCore &core,
                TraceStream &trace)
{
    // Trace identity is checked; config identity deliberately is NOT:
    // the warm-fork protocol restores a base-config checkpoint into
    // scheme variants (see file comment in snapshot.hh).
    if (img.traceName != trace.name())
        badSnapshot(img.traceName,
                    "snapshot is for trace '" + img.traceName +
                        "', not '" + trace.name() + "'");
    if (img.traceSize != trace.size())
        badSnapshot(img.traceName,
                    "snapshot trace has " +
                        std::to_string(img.traceSize) + " uops, ours " +
                        std::to_string(trace.size()));
    if (img.traceBytes != trace.contentBytes() ||
        img.traceCrc != trace.contentCrc()) {
        badSnapshot(img.traceName,
                    "snapshot trace content identity mismatch (the "
                    "source file changed since the checkpoint was "
                    "written)");
    }
    core.loadState(img.state, trace);
}

void
loadSnapshotInto(const std::string &path, OooCore &core,
                 TraceStream &trace)
{
    restoreSnapshot(readSnapshot(path), core, trace);
}

std::string
warmupSnapshotPath(const std::string &dir,
                   const std::string &trace_name)
{
    // Library trace names are bare identifiers and map through
    // unchanged (existing checkpoint paths must not move). ChampSim
    // specs contain ':' and '/' — flatten those to keep the file in
    // @p dir, and disambiguate with a hash of the original so two
    // specs never share a checkpoint after flattening.
    std::string flat;
    bool changed = false;
    for (const char c : trace_name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        flat += ok ? c : '_';
        changed = changed || !ok;
    }
    if (changed) {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (const char c : trace_name) {
            h ^= static_cast<unsigned char>(c);
            h *= 0x100000001b3ULL;
        }
        char hex[17];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(h));
        flat += "-";
        flat += hex;
    }
    return dir + "/" + flat + ".warmup.snap";
}

std::string
snapshotDirFor(const BatchGrid &grid, const std::string &fallback_base)
{
    return grid.snapshotDir.empty() ? fallback_base + ".snapshots"
                                    : grid.snapshotDir;
}

void
prepareWarmupSnapshots(const BatchGrid &grid, const std::string &dir,
                       unsigned workers)
{
    ensureDir(dir);
    const std::string wantConfig = machineConfigToIni(grid.base);

    // Worth-reusing check: a leftover checkpoint is only trusted when
    // it validates end to end AND matches this sweep's identity; any
    // mismatch, damage or torn file is rewritten (crash recovery).
    // @p trace is non-null for ingested traces, whose content
    // identity (bytes + CRC of the source file) must also match — a
    // re-downloaded or edited trace file silently invalidates its
    // checkpoint.
    const auto reusable = [&](const std::string &path,
                              const std::string &trace_name,
                              const VecTrace *trace) {
        try {
            const SnapshotImage img = readSnapshot(path);
            return img.target == grid.warmupSnapshot &&
                   img.traceName == trace_name &&
                   img.configIni == wantConfig &&
                   img.traceBytes ==
                       (trace ? trace->contentBytes() : 0) &&
                   img.traceCrc == (trace ? trace->contentCrc() : 0);
        } catch (const IoError &) {
            return false; // absent / unreadable
        } catch (const ConfigError &) {
            return false; // damaged / stale format
        }
    };

    SimJobPool pool(workers);
    std::vector<std::exception_ptr> errors(grid.traces.size());
    pool.forEach(grid.traces.size(), [&](std::size_t i) {
        try {
            const std::string &name = grid.traces[i];
            const std::string path = warmupSnapshotPath(dir, name);
            const TraceParams tp =
                TraceLibrary::byName(name, grid.len);
            // Ingested traces must be read before the reuse check
            // (their identity lives in the file); synthetic traces
            // are only generated when the checkpoint needs rebuilding.
            std::unique_ptr<VecTrace> trace;
            if (!tp.champsimPath.empty())
                trace = TraceLibrary::make(tp);
            if (reusable(path, name, trace.get()))
                return;
            if (!trace)
                trace = TraceLibrary::make(tp);
            OooCore core(grid.base);
            core.beginRun(*trace);
            core.advanceTo(*trace, grid.warmupSnapshot);
            writeSnapshot(path, core, *trace, grid.warmupSnapshot);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    });
    for (const auto &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

void
attachWarmupSnapshots(const BatchGrid &grid, const std::string &dir,
                      std::vector<SimJob> &jobs)
{
    // buildGridJobs() is trace-major: cell i's trace is i/nschemes.
    const std::size_t nschemes = grid.schemes.size();
    for (std::size_t i = 0; i < jobs.size(); ++i)
        jobs[i].fromSnapshot =
            warmupSnapshotPath(dir, grid.traces[i / nschemes]);
}

} // namespace lrs
