/**
 * @file
 * Deterministic parallel sweep engine.
 *
 * Every results figure and ablation runs a grid of
 * (trace × machine-config) simulations, and each simulation job is
 * pure: the trace generator flows from a per-trace seed, the core
 * holds no global mutable state, and the result is a value. That
 * shape is embarrassingly parallel, so SimJobPool shards an arbitrary
 * job grid across worker threads while keeping the aggregate output
 * **bit-identical to a serial run regardless of worker count or
 * completion order**:
 *
 *  - every job gets a slot indexed by its submission order (job id);
 *    workers write results into their slot, never append by finish
 *    time;
 *  - jobs share nothing: each job generates (or copies) its own
 *    trace stream and constructs its own OooCore, whose
 *    StatsRegistry / fault / trace accounting are per-instance;
 *  - aggregation (means, speedups, JSON rows) happens after the
 *    barrier, in job-id order — the same floating-point evaluation
 *    order as the serial loop it replaced.
 *
 * Scheduling is work stealing: job ids are dealt round-robin into
 * per-worker deques; a worker pops from the front of its own deque
 * and, when empty, steals from the back of a sibling's. The calling
 * thread participates as worker 0, so a pool with one worker runs
 * everything inline on the caller (and spawns no threads at all).
 *
 * Worker count: explicit constructor argument, else the LRS_JOBS
 * environment variable, else std::thread::hardware_concurrency().
 * Nested forEach() calls from inside a job run inline on that worker
 * — runAllSchemes() can therefore be parallelised internally and
 * still be submitted as a job itself without deadlock.
 *
 * See docs/PARALLELISM.md for the determinism contract and usage.
 */

#ifndef LRS_CORE_PARALLEL_HH
#define LRS_CORE_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hh"
#include "core/results.hh"
#include "trace/params.hh"

namespace lrs
{

/** One cell of a sweep grid: generate the trace, run the machine. */
struct SimJob
{
    TraceParams trace;
    MachineConfig cfg;
    /**
     * When non-empty, the run restores this warmup checkpoint
     * (core/snapshot.hh) instead of starting cold, then advances to
     * completion. Travels with the job through every execution mode —
     * thread pool, --resume, --isolate subprocesses.
     */
    std::string fromSnapshot;
};

/**
 * What happened to one sweep cell — the supervisor's outcome taxonomy
 * (docs/ROBUSTNESS.md, "Sweep supervisor"):
 *  - Ok:      the simulation completed and the result is usable;
 *  - Failed:  the cell threw (bad config, malformed trace, audit
 *             violation, ...) — JobOutcome::code names the DiagCode;
 *  - Timeout: the per-cell deadline expired (MachineConfig::maxCycles
 *             or the isolation mode's wall-clock watchdog);
 *  - Crashed: the isolated subprocess died abnormally (signal, or
 *             exit without a result) — JobOutcome::signal when known;
 *  - Skipped: --resume found the cell already completed in the
 *             checkpoint journal; the stored result stands.
 */
enum class CellStatus : std::uint8_t
{
    Ok,
    Failed,
    Timeout,
    Crashed,
    Skipped,
};

/** Stable display/journal name: "OK", "FAILED", "TIMEOUT", ... */
const char *cellStatusName(CellStatus s);

/** Inverse of cellStatusName(); throws std::invalid_argument. */
CellStatus parseCellStatus(const std::string &name);

/**
 * Result slot of one job. A job that throws (bad config, malformed
 * trace, audit violation) marks its own slot Failed with the
 * diagnostic text and machine-readable code; sibling jobs are
 * unaffected.
 */
struct JobOutcome
{
    SimResult result;
    CellStatus status = CellStatus::Ok;
    bool failed = false; ///< status is Failed/Timeout/Crashed
    std::string error;   ///< diagnostic text when failed
    /** DiagCode name ("E_CONFIG_INVALID", "E_AUDIT_VIOLATION",
     *  "E_DEADLINE_EXCEEDED", ...); "E_INTERNAL" for exceptions that
     *  carry no structured diagnostics. Empty while status is Ok. */
    std::string code;
    /** Terminating signal of a Crashed isolated cell (0 unknown). */
    int signal = 0;
    /** Executions this outcome took (>1 after supervisor retries;
     *  0 for a Skipped cell restored from the journal). */
    unsigned attempts = 1;
    /**
     * Canonical result document of a completed cell. The supervisor
     * fills it — result.toJson() after a fresh run, or the journal's
     * stored copy for a Skipped cell — so reports re-emit resumed
     * cells byte-identically to an uninterrupted run. Null when the
     * cell has no result (or when the pool was used directly).
     */
    json::Value resultJson;
};

/**
 * Run one (trace, config) cell to a JobOutcome, classifying any
 * exception into the taxonomy above — the single implementation
 * behind SimJobPool::runJobs() and the sweep supervisor, so stderr,
 * journal records and JSON all agree on what a failure was.
 */
JobOutcome runOneSimJob(const SimJob &job);

/**
 * As above with a flight recorder riding along (may be null): the
 * recorder is attached to the core for the duration of the run, and
 * on a failure the outcome classification is noted into it and its
 * dump rewritten before returning — so the per-cell dump ends with
 * the same code/error the journal and JSON report carry
 * (docs/OBSERVABILITY.md, "Flight recorder").
 */
class FlightRecorder;
JobOutcome runOneSimJob(const SimJob &job, FlightRecorder *fr);

/** Fill @p o from an in-flight exception (shared classification). */
void classifyJobException(JobOutcome &o, const std::exception &e);

class SimJobPool
{
  public:
    /**
     * @p workers 0 selects the configured default (LRS_JOBS env var,
     * else hardware concurrency). One worker means fully inline
     * serial execution; N workers spawn N-1 threads (the caller is
     * worker 0).
     */
    explicit SimJobPool(unsigned workers = 0);
    ~SimJobPool();

    SimJobPool(const SimJobPool &) = delete;
    SimJobPool &operator=(const SimJobPool &) = delete;

    unsigned workers() const { return workers_; }

    /**
     * Run fn(0) .. fn(n-1) across the workers and block until all
     * complete. fn must write its output into a slot owned by its
     * index — never append to shared state — for deterministic
     * aggregation. If any invocation throws, every remaining job
     * still runs and the first exception (by completion time, which
     * is only used for propagation, not for results) is rethrown
     * here. Reentrant: called from inside a job it runs inline.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

    /**
     * Run a (TraceParams, MachineConfig) grid: each job generates its
     * trace and runs one OooCore; outcomes are indexed by job id.
     * Exceptions are captured per job (JobOutcome::failed).
     */
    std::vector<JobOutcome> runJobs(const std::vector<SimJob> &jobs);

    /** LRS_JOBS if set and nonzero, else hardware concurrency. */
    static unsigned configuredWorkers();

    /**
     * Process-wide pool used by runAllSchemes() and the benches.
     * Sized by configuredWorkers() at first use.
     */
    static SimJobPool &shared();

  private:
    /**
     * One queued job: the id plus the epoch of the batch it belongs
     * to. The tag is what makes a slow-waking worker safe: it can
     * only pop entries matching the batch it is working on, so a
     * thread still draining after batch k completed can never grab a
     * job published by batch k+1 and run it against a dead Batch.
     */
    struct QueuedJob
    {
        std::uint64_t epoch;
        std::size_t id;
    };

    /** Per-worker deque; own pops front, thieves pop back. */
    struct WorkerQueue
    {
        std::mutex m;
        std::deque<QueuedJob> jobs;
    };

    /** One forEach() invocation in flight. */
    struct Batch
    {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t pending = 0;          ///< guarded by pool m_
        std::exception_ptr firstError;    ///< guarded by pool m_
    };

    void workerLoop(unsigned self);
    bool popJob(unsigned self, std::uint64_t epoch, std::size_t &id);
    void runJob(Batch &b, std::size_t id);

    unsigned workers_ = 1;
    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;

    std::mutex callerM_; ///< serialises concurrent forEach() callers

    std::mutex m_;
    std::condition_variable cvWork_;
    std::condition_variable cvDone_;
    Batch *batch_ = nullptr;    ///< active batch, or null
    std::uint64_t epoch_ = 0;   ///< bumped per published batch
    bool stopping_ = false;
};

} // namespace lrs

#endif // LRS_CORE_PARALLEL_HH
