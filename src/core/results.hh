/**
 * @file
 * Aggregated results of one simulation run: timing, the paper's load
 * classification (Figure 1 terminology), hit-miss prediction counts
 * and resource-waste statistics.
 */

#ifndef LRS_CORE_RESULTS_HH
#define LRS_CORE_RESULTS_HH

#include <cstdint>
#include <string>

namespace lrs
{

struct SimResult
{
    std::string trace;
    std::string config;

    std::uint64_t cycles = 0;
    std::uint64_t uops = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;

    // --- load classification (section 2.1 terminology) ---
    /** Loads with no older unknown-address store at schedule time. */
    std::uint64_t notConflicting = 0;
    std::uint64_t ancPnc = 0; ///< actually-non-colliding, predicted so
    std::uint64_t ancPc = 0;  ///< lost opportunity
    std::uint64_t acPc = 0;   ///< collision caught by the predictor
    std::uint64_t acPnc = 0;  ///< missed collision (re-execution risk)

    /** Loads whose data paid the collision penalty. */
    std::uint64_t collisionPenalties = 0;
    /** Subset that were true order violations (squash recovery). */
    std::uint64_t orderViolations = 0;
    /** Loads serviced by store-to-load forwarding. */
    std::uint64_t forwarded = 0;
    /** Exclusive pairing: loads speculatively fed store data before
     *  the store's address resolved. */
    std::uint64_t specForwards = 0;
    /** Subset of specForwards where the pairing was wrong. */
    std::uint64_t specMisforwards = 0;

    // --- hit-miss prediction (section 2.2 terminology) ---
    std::uint64_t ahPh = 0;
    std::uint64_t ahPm = 0;
    std::uint64_t amPh = 0;
    std::uint64_t amPm = 0;
    std::uint64_t l1Misses = 0;     ///< includes dynamic misses
    std::uint64_t dynamicMisses = 0;

    // --- resource waste ---
    std::uint64_t wastedIssues = 0; ///< issue slots burnt by replays
    std::uint64_t replayedUops = 0; ///< uops that issued more than once

    /** Prefetches issued by the stride prefetch engine. */
    std::uint64_t prefetches = 0;

    // --- banked-cache pipeline (Figure 4 modes) ---
    std::uint64_t bankConflicts = 0;    ///< conventional-pipe stalls
    std::uint64_t bankMispredicts = 0;  ///< sliced-pipe re-executions
    std::uint64_t bankReplications = 0; ///< low-confidence duplicates

    double
    ipc() const
    {
        return cycles ? static_cast<double>(uops) / cycles : 0.0;
    }

    std::uint64_t
    conflicting() const
    {
        return ancPnc + ancPc + acPc + acPnc;
    }

    std::uint64_t actuallyColliding() const { return acPc + acPnc; }

    std::uint64_t
    classifiedLoads() const
    {
        return notConflicting + conflicting();
    }

    /** Speedup of this run relative to a baseline run. */
    double
    speedupOver(const SimResult &base) const
    {
        return cycles ? static_cast<double>(base.cycles) / cycles : 0.0;
    }
};

} // namespace lrs

#endif // LRS_CORE_RESULTS_HH
