/**
 * @file
 * Aggregated results of one simulation run: timing, the paper's load
 * classification (Figure 1 terminology), hit-miss prediction counts,
 * resource-waste statistics, and the optional per-interval time
 * series captured when MachineConfig::statsInterval is set.
 *
 * Ratio convention (ipc(), speedupOver()): a result that never ran
 * has cycles == 0, and both ratios then return quiet NaN rather than
 * 0.0 — a zero would masquerade as a real (terrible) IPC or a real
 * (infinitely bad) speedup in averages and tables. NaN propagates
 * loudly through arithmetic and renders as "nan" / JSON null, so an
 * unran baseline is visible instead of silently skewing a mean.
 * Callers that want a plottable default should test std::isnan().
 */

#ifndef LRS_CORE_RESULTS_HH
#define LRS_CORE_RESULTS_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/json.hh"

namespace lrs
{

/**
 * One statsInterval-wide slice of a run: the deltas and rates the
 * core snapshots every MachineConfig::statsInterval cycles. Rates
 * with an empty denominator in the interval (e.g. no loads) are 0.0,
 * keeping the series directly plottable.
 */
struct IntervalSample
{
    /** Cycle at the *end* of the interval. */
    std::uint64_t cycle = 0;
    /** Uops retired within the interval. */
    std::uint64_t uops = 0;
    /** Retired uops per cycle within the interval. */
    double ipc = 0.0;
    /** Wasted (replayed) issue slots per cycle. */
    double replayRate = 0.0;
    /** CHT mispredictions / classified loads (ANC-PC + AC-PNC). */
    double chtMispredictRate = 0.0;
    /** Hit-miss mispredictions / loads (AH-PM + AM-PH). */
    double hmpMispredictRate = 0.0;
    /** Bank mispredictions / loads (sliced pipe). */
    double bankMispredictRate = 0.0;
    /** Mean scheduling-window fill fraction over the interval. */
    double schedOccupancy = 0.0;
    /** Mean ROB fill fraction over the interval. */
    double robOccupancy = 0.0;
};

struct SimResult
{
    std::string trace;
    std::string config;

    std::uint64_t cycles = 0;
    std::uint64_t uops = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;

    // --- load classification (section 2.1 terminology) ---
    /** Loads with no older unknown-address store at schedule time. */
    std::uint64_t notConflicting = 0;
    std::uint64_t ancPnc = 0; ///< actually-non-colliding, predicted so
    std::uint64_t ancPc = 0;  ///< lost opportunity
    std::uint64_t acPc = 0;   ///< collision caught by the predictor
    std::uint64_t acPnc = 0;  ///< missed collision (re-execution risk)

    /** Loads whose data paid the collision penalty. */
    std::uint64_t collisionPenalties = 0;
    /** Subset that were true order violations (squash recovery). */
    std::uint64_t orderViolations = 0;
    /** Loads serviced by store-to-load forwarding. */
    std::uint64_t forwarded = 0;
    /** Exclusive pairing: loads speculatively fed store data before
     *  the store's address resolved. */
    std::uint64_t specForwards = 0;
    /** Subset of specForwards where the pairing was wrong. */
    std::uint64_t specMisforwards = 0;

    // --- hit-miss prediction (section 2.2 terminology) ---
    std::uint64_t ahPh = 0;
    std::uint64_t ahPm = 0;
    std::uint64_t amPh = 0;
    std::uint64_t amPm = 0;
    std::uint64_t l1Misses = 0;     ///< includes dynamic misses
    std::uint64_t dynamicMisses = 0;

    // --- resource waste ---
    std::uint64_t wastedIssues = 0; ///< issue slots burnt by replays
    std::uint64_t replayedUops = 0; ///< uops that issued more than once

    /** Prefetches issued by the stride prefetch engine. */
    std::uint64_t prefetches = 0;

    // --- banked-cache pipeline (Figure 4 modes) ---
    std::uint64_t bankConflicts = 0;    ///< conventional-pipe stalls
    std::uint64_t bankMispredicts = 0;  ///< sliced-pipe re-executions
    std::uint64_t bankReplications = 0; ///< low-confidence duplicates

    // --- interval time series (empty unless statsInterval was set) ---
    /** The statsInterval the run was captured with (0 = off). */
    std::uint64_t statsInterval = 0;
    std::vector<IntervalSample> intervals;

    /**
     * Telemetry histograms (null unless collectHistograms was set):
     * the "hist.*" registry subtree as a JSON object, carried in the
     * result so batch cells ship their distributions through the
     * journal and the grid merge (docs/OBSERVABILITY.md,
     * "Histograms"). Exported as a "histograms" member only when
     * non-null, keeping histogram-off output byte-identical.
     */
    json::Value histograms;

    /**
     * Retired uops per cycle. NaN when the result never ran
     * (cycles == 0) — see the file-level ratio convention.
     */
    double
    ipc() const
    {
        return cycles ? static_cast<double>(uops) /
                            static_cast<double>(cycles)
                      : std::numeric_limits<double>::quiet_NaN();
    }

    std::uint64_t
    conflicting() const
    {
        return ancPnc + ancPc + acPc + acPnc;
    }

    std::uint64_t actuallyColliding() const { return acPc + acPnc; }

    std::uint64_t
    classifiedLoads() const
    {
        return notConflicting + conflicting();
    }

    /**
     * Speedup of this run relative to a baseline run (>1 = faster
     * than the baseline). NaN when either run never executed
     * (cycles == 0) — see the file-level ratio convention.
     */
    double
    speedupOver(const SimResult &base) const
    {
        if (cycles == 0 || base.cycles == 0)
            return std::numeric_limits<double>::quiet_NaN();
        return static_cast<double>(base.cycles) /
               static_cast<double>(cycles);
    }

    /**
     * Export every field (plus derived ratios and the interval
     * series, one JSON array per metric) as a JSON object.
     */
    json::Value toJson() const;

    /**
     * Machine-snapshot support (core/snapshot.hh): every field
     * exactly, with interval-series doubles carried as IEEE-754 bit
     * patterns so a restored run's final report is byte-identical to
     * an uninterrupted one. Unlike toJson() (the human/tool export),
     * this pair is a lossless round trip.
     */
    json::Value saveState() const;
    void loadState(const json::Value &state);
};

} // namespace lrs

#endif // LRS_CORE_RESULTS_HH
