#include "core/results.hh"

namespace lrs
{

json::Value
SimResult::toJson() const
{
    json::Value v = json::Value::object();
    v.set("trace", trace);
    v.set("config", config);

    v.set("cycles", cycles);
    v.set("uops", uops);
    v.set("loads", loads);
    v.set("stores", stores);
    v.set("branches", branches);
    v.set("branch_mispredicts", branchMispredicts);

    v.set("not_conflicting", notConflicting);
    v.set("anc_pnc", ancPnc);
    v.set("anc_pc", ancPc);
    v.set("ac_pc", acPc);
    v.set("ac_pnc", acPnc);

    v.set("collision_penalties", collisionPenalties);
    v.set("order_violations", orderViolations);
    v.set("forwarded", forwarded);
    v.set("spec_forwards", specForwards);
    v.set("spec_misforwards", specMisforwards);

    v.set("ah_ph", ahPh);
    v.set("ah_pm", ahPm);
    v.set("am_ph", amPh);
    v.set("am_pm", amPm);
    v.set("l1_misses", l1Misses);
    v.set("dynamic_misses", dynamicMisses);

    v.set("wasted_issues", wastedIssues);
    v.set("replayed_uops", replayedUops);
    v.set("prefetches", prefetches);

    v.set("bank_conflicts", bankConflicts);
    v.set("bank_mispredicts", bankMispredicts);
    v.set("bank_replications", bankReplications);

    // Derived ratios (NaN serialises as null per the convention in
    // results.hh / json.hh).
    json::Value derived = json::Value::object();
    derived.set("ipc", ipc());
    derived.set("conflicting", conflicting());
    derived.set("actually_colliding", actuallyColliding());
    derived.set("classified_loads", classifiedLoads());
    v.set("derived", std::move(derived));

    // Interval time series: one array per metric (column layout — a
    // plotting tool can zip any series against "cycle" directly).
    json::Value iv = json::Value::object();
    iv.set("interval_cycles", statsInterval);
    json::Value cycle = json::Value::array();
    json::Value uopsArr = json::Value::array();
    json::Value ipcArr = json::Value::array();
    json::Value replay = json::Value::array();
    json::Value chtMis = json::Value::array();
    json::Value hmpMis = json::Value::array();
    json::Value bankMis = json::Value::array();
    json::Value schedOcc = json::Value::array();
    json::Value robOcc = json::Value::array();
    for (const IntervalSample &s : intervals) {
        cycle.push(s.cycle);
        uopsArr.push(s.uops);
        ipcArr.push(s.ipc);
        replay.push(s.replayRate);
        chtMis.push(s.chtMispredictRate);
        hmpMis.push(s.hmpMispredictRate);
        bankMis.push(s.bankMispredictRate);
        schedOcc.push(s.schedOccupancy);
        robOcc.push(s.robOccupancy);
    }
    iv.set("cycle", std::move(cycle));
    iv.set("uops", std::move(uopsArr));
    iv.set("ipc", std::move(ipcArr));
    iv.set("replay_rate", std::move(replay));
    iv.set("cht_mispredict_rate", std::move(chtMis));
    iv.set("hmp_mispredict_rate", std::move(hmpMis));
    iv.set("bank_mispredict_rate", std::move(bankMis));
    iv.set("sched_occupancy", std::move(schedOcc));
    iv.set("rob_occupancy", std::move(robOcc));
    v.set("intervals", std::move(iv));

    if (!histograms.isNull())
        v.set("histograms", histograms);

    return v;
}

} // namespace lrs
