#include "core/results.hh"

#include <cstring>

#include "common/state_io.hh"

namespace lrs
{

json::Value
SimResult::toJson() const
{
    json::Value v = json::Value::object();
    v.set("trace", trace);
    v.set("config", config);

    v.set("cycles", cycles);
    v.set("uops", uops);
    v.set("loads", loads);
    v.set("stores", stores);
    v.set("branches", branches);
    v.set("branch_mispredicts", branchMispredicts);

    v.set("not_conflicting", notConflicting);
    v.set("anc_pnc", ancPnc);
    v.set("anc_pc", ancPc);
    v.set("ac_pc", acPc);
    v.set("ac_pnc", acPnc);

    v.set("collision_penalties", collisionPenalties);
    v.set("order_violations", orderViolations);
    v.set("forwarded", forwarded);
    v.set("spec_forwards", specForwards);
    v.set("spec_misforwards", specMisforwards);

    v.set("ah_ph", ahPh);
    v.set("ah_pm", ahPm);
    v.set("am_ph", amPh);
    v.set("am_pm", amPm);
    v.set("l1_misses", l1Misses);
    v.set("dynamic_misses", dynamicMisses);

    v.set("wasted_issues", wastedIssues);
    v.set("replayed_uops", replayedUops);
    v.set("prefetches", prefetches);

    v.set("bank_conflicts", bankConflicts);
    v.set("bank_mispredicts", bankMispredicts);
    v.set("bank_replications", bankReplications);

    // Derived ratios (NaN serialises as null per the convention in
    // results.hh / json.hh).
    json::Value derived = json::Value::object();
    derived.set("ipc", ipc());
    derived.set("conflicting", conflicting());
    derived.set("actually_colliding", actuallyColliding());
    derived.set("classified_loads", classifiedLoads());
    v.set("derived", std::move(derived));

    // Interval time series: one array per metric (column layout — a
    // plotting tool can zip any series against "cycle" directly).
    json::Value iv = json::Value::object();
    iv.set("interval_cycles", statsInterval);
    json::Value cycle = json::Value::array();
    json::Value uopsArr = json::Value::array();
    json::Value ipcArr = json::Value::array();
    json::Value replay = json::Value::array();
    json::Value chtMis = json::Value::array();
    json::Value hmpMis = json::Value::array();
    json::Value bankMis = json::Value::array();
    json::Value schedOcc = json::Value::array();
    json::Value robOcc = json::Value::array();
    for (const IntervalSample &s : intervals) {
        cycle.push(s.cycle);
        uopsArr.push(s.uops);
        ipcArr.push(s.ipc);
        replay.push(s.replayRate);
        chtMis.push(s.chtMispredictRate);
        hmpMis.push(s.hmpMispredictRate);
        bankMis.push(s.bankMispredictRate);
        schedOcc.push(s.schedOccupancy);
        robOcc.push(s.robOccupancy);
    }
    iv.set("cycle", std::move(cycle));
    iv.set("uops", std::move(uopsArr));
    iv.set("ipc", std::move(ipcArr));
    iv.set("replay_rate", std::move(replay));
    iv.set("cht_mispredict_rate", std::move(chtMis));
    iv.set("hmp_mispredict_rate", std::move(hmpMis));
    iv.set("bank_mispredict_rate", std::move(bankMis));
    iv.set("sched_occupancy", std::move(schedOcc));
    iv.set("rob_occupancy", std::move(robOcc));
    v.set("intervals", std::move(iv));

    if (!histograms.isNull())
        v.set("histograms", histograms);

    return v;
}

namespace
{

/** The u64 counters of SimResult, in one fixed order shared by the
 *  save and load paths (a mismatch is a compile-time-visible edit to
 *  this single list). */
template <typename R, typename F>
void
forEachCounter(R &r, F &&f)
{
    f("cycles", r.cycles);
    f("uops", r.uops);
    f("loads", r.loads);
    f("stores", r.stores);
    f("branches", r.branches);
    f("branch_mispredicts", r.branchMispredicts);
    f("not_conflicting", r.notConflicting);
    f("anc_pnc", r.ancPnc);
    f("anc_pc", r.ancPc);
    f("ac_pc", r.acPc);
    f("ac_pnc", r.acPnc);
    f("collision_penalties", r.collisionPenalties);
    f("order_violations", r.orderViolations);
    f("forwarded", r.forwarded);
    f("spec_forwards", r.specForwards);
    f("spec_misforwards", r.specMisforwards);
    f("ah_ph", r.ahPh);
    f("ah_pm", r.ahPm);
    f("am_ph", r.amPh);
    f("am_pm", r.amPm);
    f("l1_misses", r.l1Misses);
    f("dynamic_misses", r.dynamicMisses);
    f("wasted_issues", r.wastedIssues);
    f("replayed_uops", r.replayedUops);
    f("prefetches", r.prefetches);
    f("bank_conflicts", r.bankConflicts);
    f("bank_mispredicts", r.bankMispredicts);
    f("bank_replications", r.bankReplications);
    f("stats_interval", r.statsInterval);
}

} // namespace

json::Value
SimResult::saveState() const
{
    json::Value st = json::Value::object();
    st.set("trace", trace);
    st.set("config", config);
    forEachCounter(*this, [&st](const char *key, std::uint64_t v) {
        st.set(key, v);
    });
    // Interval samples as fixed-order 9-tuples; the seven rates are
    // IEEE-754 bit patterns (stateio::packDouble), not decimal text.
    json::Value iv = json::Value::array();
    for (const IntervalSample &s : intervals) {
        json::Value row = json::Value::array();
        row.push(s.cycle);
        row.push(s.uops);
        row.push(stateio::packDouble(s.ipc));
        row.push(stateio::packDouble(s.replayRate));
        row.push(stateio::packDouble(s.chtMispredictRate));
        row.push(stateio::packDouble(s.hmpMispredictRate));
        row.push(stateio::packDouble(s.bankMispredictRate));
        row.push(stateio::packDouble(s.schedOccupancy));
        row.push(stateio::packDouble(s.robOccupancy));
        iv.push(std::move(row));
    }
    st.set("intervals", std::move(iv));
    st.set("histograms", histograms);
    return st;
}

void
SimResult::loadState(const json::Value &state)
{
    trace = stateio::needString(state, "trace");
    config = stateio::needString(state, "config");
    forEachCounter(*this, [&state](const char *key, std::uint64_t &v) {
        v = stateio::needU64(state, key);
    });
    const json::Value &iv = stateio::need(state, "intervals");
    if (!iv.isArray())
        stateio::fail("intervals", "expected an array");
    intervals.clear();
    intervals.reserve(iv.size());
    for (std::size_t i = 0; i < iv.size(); ++i) {
        const json::Value &row = iv.at(i);
        if (!row.isArray() || row.size() != 9)
            stateio::fail("intervals", "expected 9-element rows");
        IntervalSample s;
        s.cycle = row.at(0).asU64();
        s.uops = row.at(1).asU64();
        auto bits = [&row](std::size_t k) {
            double d;
            const std::uint64_t u = row.at(k).asU64();
            static_assert(sizeof(d) == sizeof(u), "double width");
            std::memcpy(&d, &u, sizeof(d));
            return d;
        };
        s.ipc = bits(2);
        s.replayRate = bits(3);
        s.chtMispredictRate = bits(4);
        s.hmpMispredictRate = bits(5);
        s.bankMispredictRate = bits(6);
        s.schedOccupancy = bits(7);
        s.robOccupancy = bits(8);
        intervals.push_back(s);
    }
    histograms = stateio::need(state, "histograms");
}

} // namespace lrs
