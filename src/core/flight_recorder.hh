/**
 * @file
 * Per-cell flight recorder: forensic event ring for failed cells.
 *
 * A sweep cell that dies — a diagnostic, a deadline, or an outright
 * crash under --isolate — takes its in-memory state with it. The
 * flight recorder keeps a bounded ring of the most recent pipeline
 * lifecycle events (reusing the tracer's TraceEvent vocabulary) plus
 * a short list of out-of-band notes (diagnostics, audit findings,
 * outcome classification), and dumps them as CRC-framed JSONL using
 * the same `LRSJ1` line discipline as the checkpoint journal
 * (common/journal.hh) — so the dump survives torn tails and is
 * validated by the same reader.
 *
 * Crash-survival strategy: the recorder cannot run code at SIGKILL
 * time, so instead it *periodically* rewrites its dump file (write to
 * a temp file, fsync, rename — atomic on POSIX) every flushInterval
 * recorded events, plus once when the dump path is set and once from
 * dumpNow() at clean failure classification. Whatever instant the
 * process dies, the last completed rename is a valid, CRC-checkable
 * snapshot of the recent past. Under --isolate the dump file is the
 * transport across the fork: the child (or the pre-fork parent)
 * maintains it in the per-cell path, and the parent references it
 * from the batch JSON failure entry if it exists after the child is
 * reaped.
 *
 * Like the tracer, an unattached recorder costs the core one null
 * test per event; nothing here runs unless --flight-recorder is on.
 */

#ifndef LRS_CORE_FLIGHT_RECORDER_HH
#define LRS_CORE_FLIGHT_RECORDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"
#include "core/tracer.hh"
#include "trace/uop.hh"

namespace lrs
{

class FlightRecorder
{
  public:
    static constexpr std::size_t kDefaultCapacity = 4096;
    static constexpr std::uint64_t kDefaultFlushInterval = 1u << 16;
    static constexpr std::size_t kMaxNotes = 32;

    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * Identify the cell this recorder flies with; appears in the dump
     * header so a dump directory full of cells stays attributable.
     */
    void setIdentity(std::size_t cell, std::string key);

    /**
     * Arrange periodic dumps to @p path (every @p flushInterval
     * events) and write the initial header-only snapshot immediately,
     * so even an instant SIGKILL leaves a valid dump behind.
     */
    void setDumpPath(std::string path,
                     std::uint64_t flushInterval = kDefaultFlushInterval);

    /** Append one pipeline event (called from the core's hot path). */
    void
    record(TraceEvent ev, Cycle cycle, SeqNum seq, Addr pc,
           UopClass cls)
    {
        Event &e = buf_[next_];
        e.cycle = cycle;
        e.seq = seq;
        e.pc = pc;
        e.ev = ev;
        e.cls = cls;
        next_ = next_ + 1 == buf_.size() ? 0 : next_ + 1;
        if (count_ < buf_.size())
            ++count_;
        ++total_;
        if (flushInterval_ && total_ % flushInterval_ == 0)
            dumpNow();
    }

    /**
     * Out-of-band annotation (diagnostic code, audit finding, outcome
     * classification). Bounded at kMaxNotes; later notes drop with a
     * count so the dump states what it lost. Triggers a dump when a
     * dump path is set — notes mark the interesting moments.
     */
    void note(const std::string &kind, const std::string &text);

    /** Rewrite the dump file now (no-op without a dump path). */
    void dumpNow();

    /** Delete the dump file (cell completed fine; leave no debris). */
    void removeDump();

    std::size_t capacity() const { return buf_.size(); }
    std::size_t size() const { return count_; }
    std::uint64_t totalRecorded() const { return total_; }
    bool wrapped() const { return total_ > count_; }
    const std::string &dumpPath() const { return path_; }

    /** The dump's header record (also written as the first line). */
    json::Value headerJson() const;

  private:
    struct Event
    {
        Cycle cycle;
        SeqNum seq;
        Addr pc;
        TraceEvent ev;
        UopClass cls;
    };

    struct Note
    {
        std::string kind;
        std::string text;
    };

    json::Value eventJson(const Event &e) const;

    std::vector<Event> buf_;
    std::size_t next_ = 0;
    std::size_t count_ = 0;
    std::uint64_t total_ = 0;
    std::vector<Note> notes_;
    std::uint64_t droppedNotes_ = 0;
    std::size_t cell_ = 0;
    std::string key_;
    std::string path_;
    std::uint64_t flushInterval_ = 0;
};

} // namespace lrs

#endif // LRS_CORE_FLIGHT_RECORDER_HH
