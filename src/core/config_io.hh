/**
 * @file
 * Machine-configuration text I/O.
 *
 * Parses a small INI-style format ("key = value" lines, '#' or ';'
 * comments) into a MachineConfig, and serialises one back, so
 * experiment configurations can be versioned next to results instead
 * of living in command lines. Also exports the enum parsers shared
 * with the lrs_sim CLI.
 */

#ifndef LRS_CORE_CONFIG_IO_HH
#define LRS_CORE_CONFIG_IO_HH

#include <iosfwd>
#include <string>

#include "core/config.hh"

namespace lrs
{

// Enum parsers (throw std::invalid_argument on unknown names).
OrderingScheme parseOrderingScheme(const std::string &s);
HmpKind parseHmpKind(const std::string &s);
BankMode parseBankMode(const std::string &s);
BankPredKind parseBankPredKind(const std::string &s);
ChtKind parseChtKind(const std::string &s);

/**
 * Apply "key = value" lines from @p is on top of @p base.
 *
 * Recognised keys (see machineConfigToIni() for the full list with
 * current values): scheme, hmp, bank_mode, bank_pred, num_banks,
 * sched_window, rob_size, reg_pool, fetch_width, retire_width,
 * int_units, mem_units, fp_units, complex_units, std_ports,
 * collision_penalty, branch_mispredict_penalty, replay_backoff,
 * reschedule_penalty, ahpm_penalty, exclusive_spec_forward,
 * cht_kind, cht_entries, cht_assoc, cht_counter_bits, cht_sticky,
 * cht_track_distance, cht_clear_interval, cht_path_bits,
 * l1_bytes, l2_bytes, mem_latency.
 *
 * @throws std::invalid_argument on unknown keys or malformed values.
 */
MachineConfig machineConfigFromIni(std::istream &is,
                                   MachineConfig base = {});

/** Load a configuration file from @p path. */
MachineConfig machineConfigFromFile(const std::string &path,
                                    MachineConfig base = {});

/** Serialise @p cfg to the INI format machineConfigFromIni() reads. */
std::string machineConfigToIni(const MachineConfig &cfg);

} // namespace lrs

#endif // LRS_CORE_CONFIG_IO_HH
