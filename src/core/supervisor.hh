/**
 * @file
 * Resilient sweep supervisor: crash-safe batch grids over SimJobPool.
 *
 * The parallel engine (core/parallel.hh) made grids fast; this layer
 * makes them survivable. A SweepSupervisor runs N cells — by default
 * (trace × config) simulations, or any caller-supplied cell runner —
 * and wraps each with the robustness machinery a long grid needs:
 *
 *  - **checkpoint journal** (common/journal.hh): one CRC-guarded
 *    JSONL record per finished cell, appended and fsync()ed as cells
 *    complete, so a crash/SIGKILL loses at most the in-flight cells;
 *  - **resume**: with SweepOptions::resume the journal is validated
 *    against the grid (cell keys must match — a journal from a
 *    different grid is rejected loudly) and completed cells are
 *    restored as Skipped outcomes carrying the stored result JSON,
 *    making the final report byte-identical to an uninterrupted run;
 *  - **per-cell deadlines**: MachineConfig::maxCycles trips inside
 *    the core (deterministic, simulated cycles) and is reported as a
 *    TIMEOUT outcome; isolation mode adds an optional wall-clock
 *    watchdog for cells that wedge outside the simulated clock;
 *  - **bounded retries**: failed/timed-out/crashed cells re-run in
 *    deterministic rounds (ascending cell id per round, up to
 *    SweepOptions::retries extra attempts) so transient faults clear
 *    and only persistent failures surface (sweep.retries /
 *    sweep.gave_up accounting);
 *  - **subprocess isolation** (SweepOptions::isolate): each attempt
 *    forks; the child streams its outcome back over a pipe, and a
 *    SIGSEGV / std::terminate / abort() kills only that cell, which
 *    the parent records as CRASHED (with the signal) while the sweep
 *    continues;
 *  - **cooperative interruption**: when requestSweepInterrupt() fires
 *    (lrs_sim's SIGINT/SIGTERM handler), running cells unwind, queued
 *    cells are marked not-run, journaled work stands, and a later
 *    resume continues exactly where the interrupt landed;
 *  - **live progress stream** (SweepOptions::progressFd): one compact
 *    JSON heartbeat line per completed cell — done/total, per-status
 *    counts, ETA, aggregate uops/sec — for operators watching a long
 *    grid (docs/OBSERVABILITY.md, "Progress stream").
 *
 * Every count lands in a StatsRegistry under "sweep.*". See
 * docs/ROBUSTNESS.md ("Sweep supervisor") for the journal format and
 * the front-end exit-code contract.
 */

#ifndef LRS_CORE_SUPERVISOR_HH
#define LRS_CORE_SUPERVISOR_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/journal.hh"
#include "common/stats_registry.hh"
#include "core/parallel.hh"

namespace lrs
{

/** Knobs of one supervised sweep. */
struct SweepOptions
{
    /** Checkpoint journal path; empty disables journaling. */
    std::string journalPath;
    /**
     * Load the journal first and skip cells it records as OK. The
     * journal must match the grid (same keys for the same ids) or
     * the supervisor throws ConfigError (E_JOURNAL_INVALID). A
     * missing journal file resumes an "empty" run: everything runs.
     */
    bool resume = false;
    /** Extra attempts for FAILED/TIMEOUT/CRASHED cells (0 = none). */
    unsigned retries = 0;
    /** Fork each attempt into a subprocess (see file comment). */
    bool isolate = false;
    /**
     * Wall-clock watchdog per isolated attempt, in milliseconds; on
     * expiry the child is SIGKILLed and the cell reported TIMEOUT.
     * 0 disables. Only meaningful with isolate (in-process cells use
     * the deterministic MachineConfig::maxCycles budget instead).
     */
    std::uint64_t cellTimeoutMs = 0;
    /** Pool size (0 = LRS_JOBS / hardware concurrency). */
    unsigned workers = 0;
    /**
     * Live progress stream: file descriptor to receive one compact
     * JSON heartbeat line per completed cell (plus one before the
     * first cell starts), carrying cells done/total, per-status
     * counts, elapsed/ETA wall time and aggregate simulated-uop
     * throughput (docs/OBSERVABILITY.md, "Progress stream"). -1 (the
     * default) disables emission entirely. The stream reports host
     * wall-clock time and is therefore *not* deterministic — it is an
     * operator-facing side channel and never feeds results; write
     * failures (closed pipe, full disk) silently stop the stream
     * rather than failing the sweep.
     */
    int progressFd = -1;
    /**
     * Incremental result hand-off: invoked once per cell when its
     * outcome becomes **final** —
     *  - journal-restored (Skipped) cells right after the journal is
     *    validated, in ascending cell id, before any cell runs;
     *  - OK cells as they complete (after their journal record is
     *    durable), from whichever pool worker finished them —
     *    concurrent invocations for distinct cells are possible, the
     *    callback must synchronise itself;
     *  - finally-failed (FAILED/TIMEOUT/CRASHED after every retry)
     *    cells after the last retry round, in ascending cell id.
     * Cells cut short by an interrupt are never handed off: they will
     * re-run on --resume, so their outcome is not final. The sweep
     * service (src/service/) streams these to clients; callers that
     * only need the aggregate can leave it unset.
     */
    std::function<void(std::size_t cell, const JobOutcome &o)> onCell;
};

/** Aggregate accounting of one run(), mirrored in stats(). */
struct SweepStats
{
    std::uint64_t cells = 0;    ///< grid size
    std::uint64_t ok = 0;       ///< completed (fresh) cells
    std::uint64_t failed = 0;   ///< final FAILED cells
    std::uint64_t timeout = 0;  ///< final TIMEOUT cells
    std::uint64_t crashed = 0;  ///< final CRASHED cells
    std::uint64_t skipped = 0;  ///< restored from the journal
    std::uint64_t retries = 0;  ///< re-executions performed
    std::uint64_t gaveUp = 0;   ///< cells failed after all attempts
    std::uint64_t interrupted = 0; ///< cells not run (interrupt)
};

class SweepSupervisor
{
  public:
    /**
     * One attempt of one cell. Receives the cell id and the attempt
     * ordinal (1-based) and returns the outcome; exceptions escaping
     * the runner are classified via classifyJobException(). Runners
     * must be safe to call concurrently for distinct cells.
     */
    using CellRunner =
        std::function<JobOutcome(std::size_t cell, unsigned attempt)>;

    explicit SweepSupervisor(SweepOptions opts);
    ~SweepSupervisor();

    SweepSupervisor(const SweepSupervisor &) = delete;
    SweepSupervisor &operator=(const SweepSupervisor &) = delete;

    /**
     * Run a simulation grid: cells[i] under the stable identity
     * keys[i] (e.g. "wd/exclusive"). Keys are what resume validates,
     * so they must be unique and derived from the grid contents, not
     * from run-time state.
     */
    std::vector<JobOutcome> run(const std::vector<SimJob> &cells,
                                const std::vector<std::string> &keys);

    /** Run @p n arbitrary cells through @p runner (tests, tooling). */
    std::vector<JobOutcome> run(std::size_t n,
                                const std::vector<std::string> &keys,
                                const CellRunner &runner);

    /** Did requestSweepInterrupt() cut the last run() short? */
    bool interrupted() const { return interrupted_; }

    const SweepStats &sweepStats() const { return stats_; }

    /** "sweep.*" counters (cells/ok/failed/.../retries/gave_up). */
    const StatsRegistry &stats() const { return reg_; }

  private:
    struct Resumed
    {
        json::Value result;
        unsigned attempts = 0;
    };

    /** Validate + load the journal; fills skipped outcomes. */
    void loadJournal(std::vector<JobOutcome> &outcomes,
                     const std::vector<std::string> &keys);

    /** Append one cell's outcome record (serialised, mutex-guarded). */
    void journalOutcome(std::size_t cell, const std::string &key,
                        const JobOutcome &o);

    /** Fork @p runner for one attempt; see file comment. */
    JobOutcome runIsolated(const CellRunner &runner, std::size_t cell,
                           unsigned attempt);

    /** One attempt, interrupt-aware, isolation-aware, journaled. */
    void runCell(std::size_t cell, unsigned attempt,
                 const std::string &key, const CellRunner &runner,
                 JobOutcome &out);

    /**
     * Emit one heartbeat line to opts_.progressFd (no-op when the
     * stream is disabled or a previous write failed). Counters are
     * snapshotted under progressM_ so concurrent cell completions
     * produce whole, ordered lines.
     */
    void emitProgress();

    SweepOptions opts_;
    SweepStats stats_;
    StatsRegistry reg_;
    std::unique_ptr<JournalWriter> writer_;
    std::mutex journalM_;
    bool interrupted_ = false;

    // --- progress stream state (active only when progressFd >= 0) ---
    std::mutex progressM_;        ///< guards counters + fd writes
    bool progressDead_ = false;   ///< a write failed; stop emitting
    std::uint64_t progTotal_ = 0; ///< grid size of the current run
    std::uint64_t progDone_ = 0;  ///< fresh cells finished so far
    std::uint64_t progOk_ = 0;
    std::uint64_t progFailed_ = 0;
    std::uint64_t progTimeout_ = 0;
    std::uint64_t progCrashed_ = 0;
    std::uint64_t progSkipped_ = 0; ///< restored, never re-run
    std::uint64_t progUops_ = 0;    ///< simulated uops of OK cells
    unsigned progWorkers_ = 0;      ///< resolved pool width
    std::atomic<std::uint64_t> inFlight_{0}; ///< cells running now
    std::chrono::steady_clock::time_point progStart_;
};

} // namespace lrs

#endif // LRS_CORE_SUPERVISOR_HH
