/**
 * @file
 * Checkpointed machine snapshots for sweep-scale warmup reuse
 * (docs/ROBUSTNESS.md, "Snapshots").
 *
 * A snapshot file serialises the COMPLETE dynamic state of one
 * OooCore mid-run — ROB, scheduling window, MOB, caches, every
 * predictor table, RNG streams, result counters and interval
 * bookkeeping — such that a core restored from it and advanced to
 * completion produces statistics *bit-identical* to the uninterrupted
 * run. That contract is what makes sampled simulation honest: the
 * `--validate-snapshot` mode asserts it exactly, not within an error
 * bound.
 *
 * On-disk format: CRC-framed JSONL, the journal's `LRSJ1` framing
 * (common/journal.hh), written atomically (tmp + fsync + rename) so a
 * SIGKILL mid-write leaves either the previous complete snapshot or
 * none. Layout:
 *
 *     header record    {"kind":"lrs-snapshot","version":1,
 *                       "cycle":..,"target":..,"trace":..,
 *                       "trace_size":..,"config":"<ini>",
 *                       "sections":N}
 *     N section records{"section":"core"|"rob"|...,"state":{...}}
 *     end record       {"kind":"lrs-snapshot-end","sections":N}
 *
 * Reading is STRICT, unlike the resync-and-continue journal reader: a
 * damaged line, a missing end record, an unknown format version or a
 * section-count mismatch all throw ConfigError(E_JOURNAL_INVALID). A
 * snapshot that cannot be restored exactly must fail loudly, never
 * produce a subtly different machine.
 *
 * The warm-once sweep protocol (BatchGrid::warmupSnapshot): each
 * trace is simulated once under the grid's base config to the target
 * cycle and checkpointed; every scheme cell of that trace then
 * restores the checkpoint instead of re-warming. Components only the
 * variant has (its CHT, store-sets table, ...) start cold — set
 * `cht_shadow = 1` in the base config to warm a CHT for all variants.
 * Cross-scheme forks are therefore a *measurement protocol*, not
 * bit-equivalent to cold full runs; what IS exact is that the forked
 * sweep itself is deterministic (identical for any worker count, and
 * across kill/--resume), and that a same-config restore is
 * bit-identical to the run it checkpointed.
 */

#ifndef LRS_CORE_SNAPSHOT_HH
#define LRS_CORE_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace lrs
{

class OooCore;
class TraceStream;
struct BatchGrid;
struct SimJob;

/**
 * Current snapshot format version; loaders reject anything else.
 * v2: MOB partial-match counters in the "mob" section; optional
 * trace_bytes/trace_crc32 header fields carrying the content identity
 * of ingested (ChampSim) traces.
 */
constexpr std::uint64_t kSnapshotFormatVersion = 2;

/** One parsed snapshot file. */
struct SnapshotImage
{
    std::uint64_t version = 0;
    /** Simulated cycle the machine was checkpointed at. */
    Cycle cycle = 0;
    /** Stop cycle the writer was asked for (== cycle unless the
     *  machine drained first). */
    Cycle target = 0;
    std::string traceName;
    std::uint64_t traceSize = 0;
    /** Source-content identity of an ingested trace (0,0 = synthetic:
     *  identity is fully covered by name + size). */
    std::uint64_t traceBytes = 0;
    std::uint32_t traceCrc = 0;
    /** machineConfigToIni() of the machine that wrote the snapshot. */
    std::string configIni;
    /** The core state document (object of sections). */
    json::Value state;
};

/**
 * Checkpoint @p core (mid-run, at an advanceTo() boundary) to
 * @p path atomically. @p target is the stop cycle that was requested
 * (recorded for cache-validity checks; pass core.now() if N/A).
 * Throws IoError on any write failure.
 */
void writeSnapshot(const std::string &path, const OooCore &core,
                   const TraceStream &trace, Cycle target);

/**
 * Strictly parse the snapshot at @p path. Throws IoError if the file
 * cannot be read, ConfigError(E_JOURNAL_INVALID) on any content
 * damage (framing, CRC, version, structure).
 */
SnapshotImage readSnapshot(const std::string &path);

/**
 * Restore @p img into @p core, repositioning @p trace. The trace
 * must be the one the snapshot was taken on (name and size are
 * checked); the machine must be structurally compatible (geometry
 * mismatches throw). Replaces beginRun() — follow with advanceTo()/
 * finishRun().
 */
void restoreSnapshot(const SnapshotImage &img, OooCore &core,
                     TraceStream &trace);

/** readSnapshot() + restoreSnapshot() in one step. */
void loadSnapshotInto(const std::string &path, OooCore &core,
                      TraceStream &trace);

/** Canonical checkpoint path of one trace's warmup in @p dir. */
std::string warmupSnapshotPath(const std::string &dir,
                               const std::string &trace_name);

/**
 * Ensure every trace of @p grid has a valid warmup checkpoint in
 * @p dir (created if absent), warming each trace once under the
 * grid's base config to grid.warmupSnapshot cycles. Existing
 * checkpoints are reused only when they validate completely AND were
 * written for the same target cycle, base config and trace — a stale,
 * torn or corrupt file is silently rewritten (the crash-recovery
 * path; atomic replacement keeps concurrent readers safe). Traces are
 * warmed in parallel on @p workers threads (0 = configured default);
 * the result is deterministic for any worker count.
 */
void prepareWarmupSnapshots(const BatchGrid &grid,
                            const std::string &dir, unsigned workers);

/**
 * Point every cell of @p jobs (buildGridJobs() order) at its trace's
 * warmup checkpoint in @p dir (SimJob::fromSnapshot).
 */
void attachWarmupSnapshots(const BatchGrid &grid,
                           const std::string &dir,
                           std::vector<SimJob> &jobs);

/**
 * The checkpoint directory a grid uses: grid.snapshotDir if set, else
 * @p fallback_base + ".snapshots" (deterministic, so --resume and
 * every worker agree without coordination).
 */
std::string snapshotDirFor(const BatchGrid &grid,
                           const std::string &fallback_base);

} // namespace lrs

#endif // LRS_CORE_SNAPSHOT_HH
