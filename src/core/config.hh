/**
 * @file
 * Machine configuration of the simulated out-of-order core.
 *
 * Defaults follow the paper's simulated machine (section 3.1):
 * 6 uops fetched/renamed per clock, a 128-entry renamer register pool,
 * a 32-entry scheduling window, 2 integer / 2 memory / 1 FP / 2 complex
 * execution units, up to 6 uops retired per clock, 16K L1D with a 256K
 * unified 4-way L2 (64-byte lines), and an 8-cycle load-store collision
 * penalty.
 */

#ifndef LRS_CORE_CONFIG_HH
#define LRS_CORE_CONFIG_HH

#include <string>
#include <vector>

#include "common/diag.hh"
#include "common/types.hh"
#include "memory/hierarchy.hh"
#include "predictors/cht.hh"

namespace lrs
{

/**
 * The six memory ordering schemes of section 3.1, plus the Store
 * Barrier Cache of Hesson et al. [Hess95] that the paper positions
 * its CHT against ("similar ... yet more refined, since it deals with
 * specific loads").
 */
enum class OrderingScheme
{
    Traditional,   ///< I: wait for all STAs, may pass STDs
    Opportunistic, ///< II: never wait, pay on actual collisions
    Postponing,    ///< III: Traditional + predicted colliders wait STDs
    Inclusive,     ///< IV: CHT; predicted colliders wait for all stores
    Exclusive,     ///< V: CHT + distance; wait for the predicted store
    Perfect,       ///< VI: oracle disambiguation
    StoreBarrier,  ///< [Hess95]: barrier-predicted stores fence loads
    StoreSets,     ///< [Chry98]: SSIT/LFST store-set prediction
};

const char *orderingSchemeName(OrderingScheme s);

/**
 * Memory-pipeline organisations of Figure 4. TrueMultiPorted has no
 * conflicts and no extra latency; Conventional multi-banked pays a
 * crossbar/decision-stage latency and suffers bank conflicts (with an
 * optional bank predictor steering the scheduler away from them);
 * DualScheduled eliminates conflicts through a second-level scheduler
 * at extra load latency; Sliced hard-wires each pipe to one bank —
 * ideal latency, but it *requires* a bank predictor: low-confidence
 * loads are replicated to every pipe and mispredicted loads
 * re-execute.
 */
enum class BankMode
{
    TrueMultiPorted,
    Conventional,
    DualScheduled,
    Sliced,
};

const char *bankModeName(BankMode m);

/** Which bank predictor the machine uses (section 4.3 configs). */
enum class BankPredKind
{
    None,
    A,    ///< local+gshare+gskew, unanimity
    B,    ///< local+gshare+bimodal, unanimity
    C,    ///< local+2*gshare+gskew, weighted
    Addr, ///< stride address predictor
};

const char *bankPredKindName(BankPredKind k);

/** Hit-miss predictor selection for the core. */
enum class HmpKind
{
    AlwaysHit,   ///< baseline: every load assumed to hit L1
    Local,       ///< local-only predictor (2048 entries, history 8)
    Chooser,     ///< hybrid local+gshare+gskew majority chooser
    LocalTiming, ///< local + outstanding-miss timing information
    Perfect,     ///< oracle hit-miss knowledge
};

const char *hmpKindName(HmpKind k);

/** Full machine configuration. */
struct MachineConfig
{
    // Front end.
    int fetchWidth = 6;
    int retireWidth = 6;
    int robSize = 128;
    int regPool = 128;
    /** Scheduling window (reservation stations). */
    int schedWindow = 32;
    unsigned branchHistBits = 12;
    Cycle branchMispredictPenalty = 8;

    // Execution units.
    int intUnits = 2;
    int memUnits = 2;
    int fpUnits = 1;
    int complexUnits = 2;
    int stdPorts = 2;

    // Latencies.
    Cycle intLat = 1;
    Cycle fpLat = 3;
    Cycle complexLat = 4;
    Cycle branchLat = 1;
    Cycle aguLat = 1;
    Cycle stdLat = 1;

    // Load-related speculation machinery.
    OrderingScheme scheme = OrderingScheme::Traditional;
    ChtParams cht;              ///< used by schemes III-V
    /**
     * Exclusive-scheme extension (section 2.1): use the predicted
     * distance as a load-store *pairing* and speculatively forward
     * the paired store's data to the load as soon as the STD
     * completes — without waiting for the STA. A wrong pairing is
     * detected when the STA resolves and costs a squash like any
     * other ordering violation.
     */
    bool exclusiveSpecForward = false;
    /**
     * Stride prefetch engine: the load-address predictor that backs
     * bank prediction also drives next-address prefetches into L1
     * (the paper notes the Full CHT can host "additional load related
     * information such as data prefetch ... information",
     * section 2.1; the predictor itself is the [Beke99] machinery).
     * Prefetches are issued off the critical path and modelled as
     * free of port cost.
     */
    bool stridePrefetch = false;
    /** How many strides ahead the prefetcher runs. */
    unsigned prefetchDegree = 2;
    /**
     * Attach the CHT in shadow mode: it predicts and trains (so the
     * classification counters include predictions) without affecting
     * scheduling. Used by the CHT design-space study (Figure 9).
     */
    bool chtShadow = false;
    HmpKind hmp = HmpKind::AlwaysHit;
    Cycle collisionPenalty = 8; ///< wrong-ordering re-execution cost
    Cycle replayBackoff = 3;    ///< retry delay after a wasted issue
    /**
     * Recovery delay of replayed uops: the hit/miss indication arrives
     * several cycles after dependents started scheduling (Figure 3 of
     * the paper shows 5), and the re-scheduling pipeline cannot
     * restart instantly.
     */
    Cycle reschedulePenalty = 5;
    Cycle ahpmPenalty = 5;      ///< AH-PM: wait for the hit indication

    // Banked-cache pipeline (Figure 4).
    BankMode bankMode = BankMode::TrueMultiPorted;
    unsigned numBanks = 2;
    BankPredKind bankPred = BankPredKind::None;
    /** Crossbar + decision-stage latency of the conventional pipe. */
    Cycle conventionalExtraLat = 1;
    /** Second-level-scheduler latency of the dual-scheduled pipe. */
    Cycle dualSchedExtraLat = 2;

    /**
     * MOB partial-address disambiguation: compare only the low this
     * many address bits when a load checks older known-address stores,
     * the narrow comparator real MOBs use (and the effect SPOILER
     * measures — 4K-aliasing accesses match at 12+ bits while being
     * disjoint in full addresses). A false (alias-only) match stalls
     * the load for collisionPenalty cycles. 0 (default) = full-address
     * comparison, timing byte-identical to the pre-existing model.
     */
    unsigned mobPartialBits = 0;

    // Store Barrier Cache ([Hess95] baseline).
    std::size_t barrierEntries = 2048;

    // Store sets ([Chry98] baseline).
    std::size_t ssitEntries = 4096;
    std::size_t storeSetCount = 128;

    // Memory hierarchy.
    HierarchyParams mem;

    // Observability.
    /**
     * Snapshot an IntervalSample (IPC, replay rate, predictor
     * mispredict rates, occupancies) every this many cycles into
     * SimResult::intervals. 0 disables interval collection (no
     * per-cycle accounting is done then).
     */
    std::uint64_t statsInterval = 0;

    /**
     * Collect the telemetry histograms (load-to-use delay, replay
     * distance, window/ROB/MOB occupancy, CHT/HMP confidence) under
     * "hist.*" in the stats registry and in SimResult::histograms.
     * Default off: the off path costs one null test per sample site
     * and leaves every export byte-identical
     * (tools/check_overhead.sh). Deterministic when on: histograms
     * record simulated quantities only, so grid aggregates are
     * bit-identical for any worker count (docs/OBSERVABILITY.md,
     * "Histograms").
     */
    bool collectHistograms = false;

    // Robustness.
    /**
     * Walk the ROB / scheduling window / MOB every this many cycles
     * checking structural invariants (see core/auditor.hh). 0
     * disables auditing (the default: audits cost a full window walk
     * each time). A violation raises AuditError — corrupted state
     * must never silently turn into plausible-but-wrong results.
     */
    std::uint64_t auditInterval = 0;

    /**
     * Deterministic per-run cycle budget: run() raises DeadlineError
     * once the simulated clock reaches this many cycles. 0 (default)
     * means unlimited. Batch sweeps use it as the per-cell deadline
     * that turns a wedged or fault-perturbed cell into a TIMEOUT
     * outcome instead of hanging the whole grid — and because it is
     * counted in simulated cycles, the same budget trips at the same
     * point on any host (docs/ROBUSTNESS.md, "Sweep supervisor").
     */
    std::uint64_t maxCycles = 0;

    /** Convenience: does the scheme use a CHT at all? */
    bool
    usesCht() const
    {
        return scheme == OrderingScheme::Postponing ||
               scheme == OrderingScheme::Inclusive ||
               scheme == OrderingScheme::Exclusive;
    }

    /**
     * Check every parameter of the machine (core widths and sizing,
     * execution units, bank configuration, the memory hierarchy
     * geometry, and whichever predictors the selected scheme
     * instantiates). Returns ALL violations at once so a user fixes
     * a config file in one pass; empty = valid.
     */
    std::vector<Diag> validate() const;

    /** Throw ConfigError carrying every violation, if any. */
    void validateOrThrow() const;
};

} // namespace lrs

#endif // LRS_CORE_CONFIG_HH
