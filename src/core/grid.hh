/**
 * @file
 * Batch sweep grids: the (traces × schemes) cross product every
 * figure bench, `lrs_sim --batch` run and `lrs_simd` submission is
 * made of.
 *
 * A grid is described in a small INI dialect:
 *
 *   traces  = wd gcc swim          # required
 *   schemes = traditional, perfect # optional; default: all schemes
 *   len     = 200000               # uops per generated trace
 *   jobs    = 4                    # optional pool-width hint
 *   sched_window = 64              # any machineConfigFromIni() key
 *                                  # becomes the shared base config
 *
 * Parsing lives here — not in the CLI — because the sweep service
 * accepts the same text over a socket and must validate it with
 * exactly the rules the CLI applies (one grammar, one error
 * taxonomy). All failures are structured ConfigError/IoError diags.
 */

#ifndef LRS_CORE_GRID_HH
#define LRS_CORE_GRID_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hh"
#include "core/parallel.hh"

namespace lrs
{

/** One parsed grid: the cell axes plus the shared machine config. */
struct BatchGrid
{
    std::vector<std::string> traces;
    std::vector<OrderingScheme> schemes;
    std::uint64_t len = 200000;
    unsigned jobs = 0;
    /**
     * Warm-once sampling (ini key `warmup_snapshot`, 0 = off): every
     * trace is simulated once under the base config to this cycle,
     * the machine state is checkpointed, and each scheme cell of that
     * trace resumes from the checkpoint instead of re-warming —
     * docs/ROBUSTNESS.md, "Snapshots".
     */
    std::uint64_t warmupSnapshot = 0;
    /** Where warmup checkpoints are kept (ini key `snapshot_dir`);
     *  empty = alongside the journal / a temp dir. */
    std::string snapshotDir;
    MachineConfig base;

    std::size_t cells() const
    {
        return traces.size() * schemes.size();
    }
};

/**
 * Parse grid text from @p is. @p origin names the source in
 * diagnostics ("batch file x.ini", "submission"). Throws ConfigError
 * on unknown keys, malformed values, or an empty trace list.
 */
BatchGrid parseBatchGrid(std::istream &is,
                         const std::string &origin = "grid");

/** Parse the grid file at @p path (IoError if unreadable). */
BatchGrid parseBatchGridFile(const std::string &path);

/**
 * Expand @p grid into its cells, trace-major (the grid order every
 * report prints): jobs[i] is (trace i/nschemes, scheme i%nschemes)
 * and keys[i] is "trace/scheme" — the stable identity the checkpoint
 * journal validates on resume. Throws ConfigError for an unknown
 * trace name.
 */
void buildGridJobs(const BatchGrid &grid, std::vector<SimJob> &jobs,
                   std::vector<std::string> &keys);

} // namespace lrs

#endif // LRS_CORE_GRID_HH
