#include "core/analysis.hh"

namespace lrs
{

HmpStats
analyzeHitMiss(const VecTrace &trace, HitMissPredictor &hmp,
               const HierarchyParams &mem, double uops_per_cycle,
               MissLevel level)
{
    MemoryHierarchy hier(mem);
    HmpStats st;

    const auto &uops = trace.uops();
    for (std::size_t i = 0; i < uops.size(); ++i) {
        const Uop &u = uops[i];
        const auto now =
            static_cast<Cycle>(static_cast<double>(i) / uops_per_cycle);
        if (u.isSta()) {
            // Stores warm the cache (write-allocate) but are not
            // predicted.
            hier.access(u.addr, now);
            continue;
        }
        if (!u.isLoad())
            continue;

        const Addr probe = hmp.timingProbeAddr(u.pc);
        bool pred_miss;
        if (probe != kAddrInvalid) {
            const auto ti = hier.timingInfo(probe, now);
            const HitMissPredictor::Hint hint{ti.outstandingMiss,
                                              ti.recentFill};
            pred_miss = hmp.predictMiss(u.pc, &hint);
        } else {
            pred_miss = hmp.predictMiss(u.pc, nullptr);
        }

        const auto acc = hier.access(u.addr, now);
        const bool miss =
            level == MissLevel::L1
                ? !acc.l1Hit
                : acc.level == MemoryHierarchy::Level::Memory;

        ++st.loads;
        if (miss) {
            ++st.misses;
            if (pred_miss)
                ++st.amPm;
            else
                ++st.amPh;
        } else {
            if (pred_miss)
                ++st.ahPm;
            else
                ++st.ahPh;
        }
        hmp.update(u.pc, miss, u.addr);
    }
    return st;
}

ThreadSwitchEstimate
estimateThreadSwitch(const VecTrace &trace, HitMissPredictor &hmp,
                     const HierarchyParams &mem,
                     Cycle switch_overhead)
{
    ThreadSwitchEstimate est;
    est.stats =
        analyzeHitMiss(trace, hmp, mem, 2.0, MissLevel::L2);
    est.switchOverhead = switch_overhead;
    MemoryHierarchy probe(mem);
    est.memLatency = probe.memLatency();
    return est;
}

BankStats
analyzeBank(const VecTrace &trace, BankPredictor &pred,
            unsigned line_bytes, unsigned num_banks)
{
    BankStats st;
    for (const Uop &u : trace.uops()) {
        if (!u.isLoad())
            continue;
        const unsigned actual =
            static_cast<unsigned>(u.addr / line_bytes) % num_banks;

        const auto p = pred.predict(u.pc);
        ++st.loads;
        if (p.valid) {
            ++st.predicted;
            if (p.bank == actual)
                ++st.correct;
            else
                ++st.wrong;
        }
        pred.updateAddr(u.pc, u.addr, actual);
    }
    return st;
}

} // namespace lrs
