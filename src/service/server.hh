/**
 * @file
 * lrs_simd — crash-tolerant sweep service (docs/SERVICE.md).
 *
 * The Server accepts newline-delimited JSON requests (protocol.hh)
 * over a Unix-domain socket and, optionally, a loopback TCP socket,
 * validates submitted grids with the same MachineConfig / grid
 * machinery the CLI uses, runs them through the sweep supervisor and
 * streams per-cell results back as they finish. Its whole design
 * follows from two robustness contracts:
 *
 * **Durability before acknowledgment.** A submission is appended to a
 * CRC-framed request journal (common/journal.hh) and fsync()ed before
 * its "ack" record is sent. Each submission's cells then checkpoint
 * through the standard SweepSupervisor journal in the same state
 * directory. A daemon SIGKILLed mid-sweep and restarted on that state
 * directory therefore recovers every accepted submission, resumes its
 * unfinished cells, and — because cell results are deterministic and
 * resumed cells replay their journaled bytes — re-delivers a stream
 * **byte-identical** to the one an uninterrupted daemon would have
 * produced. The chaos drill in tools/chaos_sweep.sh enforces this.
 *
 * **Misbehaving clients cannot take the service down.** Admission
 * control rejects malformed JSON, unknown ops, oversized lines and
 * oversized grids with structured "error" records instead of dying;
 * per-client quotas (pending submissions, in-flight cells) bound what
 * one connection can occupy; per-connection output buffers are capped
 * so a slow reader pauses its own result stream (backpressure) rather
 * than growing the daemon without bound; and idle connections are
 * reaped. One client's rejection or disconnect never disturbs a
 * sibling — a disconnected client's journaled submissions even keep
 * running to completion, attachable later.
 *
 * Threading: one event-loop thread owns every socket (poll(), all fds
 * non-blocking, EINTR-safe); one scheduler thread runs submissions
 * sequentially (each internally parallel via SweepOptions::workers)
 * and hands finished cells back under a mutex; a self-pipe wakes the
 * loop from the scheduler and from signal handlers. Shutdown is a
 * drain: stop accepting, refuse new submissions (E_DRAINING),
 * interrupt the running sweep cooperatively (journaled work stands),
 * flush what each client is owed, then exit.
 */

#ifndef LRS_SERVICE_SERVER_HH
#define LRS_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/diag.hh"
#include "common/journal.hh"
#include "core/grid.hh"
#include "core/parallel.hh"

namespace lrs::service
{

/** Deployment and admission-control knobs of one Server. */
struct ServerOptions
{
    /** Unix-domain listening socket path; empty disables. */
    std::string socketPath;
    /**
     * Loopback TCP port; -1 disables, 0 binds an ephemeral port
     * (read the resolved one back via tcpPort()). Binds 127.0.0.1
     * only — the protocol has no authentication.
     */
    int tcpPort = -1;
    /**
     * State directory: requests.jsonl (the request journal) plus one
     * sub_<id>.cells.jsonl cell journal per submission. Restarting a
     * daemon on the same directory recovers and resumes everything
     * it had accepted. Required.
     */
    std::string stateDir;

    // --- sweep execution (forwarded to SweepOptions) ---
    unsigned workers = 0;        ///< 0 = LRS_JOBS / hw concurrency
    unsigned retries = 0;        ///< per-cell retry budget
    bool isolate = false;        ///< fork-per-cell isolation
    std::uint64_t cellTimeoutMs = 0; ///< watchdog (isolate only)

    // --- admission control and quotas ---
    unsigned maxClients = 64;          ///< concurrent connections
    std::size_t maxLineBytes = 1 << 20;    ///< request line cap
    std::size_t maxOutBufBytes = 4 << 20;  ///< per-client send cap
    /** SO_SNDBUF for accepted sockets; 0 keeps the kernel default.
     *  The backpressure tests shrink it so the userspace cap (not
     *  the kernel's) is what a slow reader runs into. */
    int sndBufBytes = 0;
    unsigned maxPendingSubs = 4;       ///< queued+running subs/client
    std::uint64_t maxCellsPerSub = 4096;   ///< grid size cap
    std::uint64_t maxPendingCells = 8192;  ///< undelivered cells/client
    std::uint64_t idleTimeoutMs = 0;   ///< reap idle clients; 0 = off
    std::uint64_t drainTimeoutMs = 3000; ///< flush budget on drain
};

/** Monotonic service counters (the "stats" op reports these). */
struct ServerStats
{
    std::uint64_t accepted = 0;        ///< connections accepted
    std::uint64_t rejectedClients = 0; ///< over maxClients
    std::uint64_t submissions = 0;     ///< grids accepted
    std::uint64_t recovered = 0;       ///< submissions from journal
    std::uint64_t protocolErrors = 0;  ///< error records sent
    std::uint64_t quotaRejects = 0;    ///< E_QUOTA_EXCEEDED sent
    std::uint64_t deliveryPauses = 0;  ///< backpressure engagements
    std::uint64_t idleReaps = 0;       ///< idle connections closed
    std::uint64_t cellsDelivered = 0;  ///< cell records sent
};

class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind listeners, recover journaled submissions from stateDir,
     * then launch the event-loop and scheduler threads. Throws
     * ConfigError/IoError on invalid options or bind failure.
     */
    void start();

    /**
     * Ask the server to drain: async-signal-safe (called from the
     * daemon's SIGTERM/SIGINT handler). The event loop stops
     * accepting, refuses new submissions, interrupts the running
     * sweep, flushes clients (bounded by drainTimeoutMs) and exits.
     */
    void requestStop() noexcept;

    /**
     * Stop and join both threads. @p drain waits for the drain
     * sequence; false tears down immediately (the crash-simulation
     * path used by restart-recovery tests — journaled state survives
     * by construction, in-memory state is discarded).
     */
    void stop(bool drain = true);

    /** Block until the event loop exits (daemon main). */
    void wait();

    /** Resolved TCP port (after start() with tcpPort >= 0). */
    int tcpPort() const { return resolvedTcpPort_; }

    /** Snapshot of the monotonic counters. */
    ServerStats statsSnapshot() const;

    /** Submissions whose sweeps have fully finished. */
    std::uint64_t completedSubmissions() const;

  private:
    /** Lifecycle of one accepted grid. */
    enum class SubState : std::uint8_t
    {
        Queued,
        Running,
        Done,
    };

    /**
     * One accepted submission. Everything mutable after construction
     * is guarded by m_: the scheduler marks cells ready, the event
     * loop drains them into client buffers.
     */
    struct Submission
    {
        std::uint64_t id = 0;
        /** Owning connection id; 0 after disconnect or recovery. */
        std::uint64_t clientId = 0;
        std::string gridText;
        BatchGrid grid;
        std::vector<SimJob> jobs;
        std::vector<std::string> keys;
        SubState state = SubState::Queued;
        bool resume = false; ///< recovered: reuse the cell journal
        std::vector<JobOutcome> outcomes;  ///< slots, filled as final
        std::vector<std::uint8_t> ready;   ///< outcome i is final
        bool interrupted = false; ///< last run was cut by drain
        std::uint64_t ok = 0, failed = 0, timeout = 0, crashed = 0;
    };

    /** A client's view of one submission's result stream. */
    struct Watch
    {
        std::uint64_t subId = 0;
        std::uint64_t nextCell = 0; ///< delivery cursor (ascending)
        bool doneSent = false;
    };

    /** One connected client. Owned by the event-loop thread. */
    struct Session
    {
        int fd = -1;
        std::uint64_t id = 0;
        bool isUnix = false;
        std::string inBuf;  ///< bytes up to the next newline
        std::string outBuf; ///< bytes owed to the client
        std::vector<Watch> watches;
        bool paused = false;         ///< backpressure engaged
        bool dropAfterFlush = false; ///< fatal error already queued
        std::chrono::steady_clock::time_point lastActivity;
    };

    // --- event-loop side ---
    void eventLoop();
    void handleAccept(int listenFd, bool isUnix);
    void handleReadable(Session &s);
    void handleWritable(Session &s);
    void handleLine(Session &s, const std::string &line);
    void handleSubmit(Session &s, const std::string &gridText);
    void handleAttach(Session &s, std::uint64_t subId);
    void sendRecord(Session &s, const json::Value &record);
    void sendError(Session &s, DiagCode code, const std::string &param,
                   const std::string &message, std::uint64_t sub = 0,
                   bool fatal = false);
    /** Move ready cells into session buffers (backpressure-aware). */
    void pumpWatches(Session &s);
    void closeSession(Session &s);
    void beginDrain();
    void finishDrain();

    // --- scheduler side ---
    void schedulerLoop();
    /** Fair share: next queued submission, round-robin by client. */
    Submission *pickNext();
    void runSubmission(Submission &sub);

    // --- shared helpers (m_ held by caller) ---
    unsigned pendingSubsOf(std::uint64_t clientId) const;
    std::uint64_t pendingCellsOf(const Session &s) const;
    void journalRequest(const Submission &sub);
    void recoverState();
    Submission *findSub(std::uint64_t id);
    void wakeLoop() noexcept;

    ServerOptions opts_;
    int resolvedTcpPort_ = -1;

    int unixFd_ = -1;
    int tcpFd_ = -1;
    int wakeR_ = -1;
    int wakeW_ = -1;

    std::thread loopThread_;
    std::thread schedThread_;
    std::atomic<bool> stopRequested_{false};
    std::atomic<bool> hardStop_{false};
    std::atomic<bool> loopExited_{false};
    std::atomic<bool> schedExited_{false};
    bool draining_ = false; ///< event-loop thread only
    std::chrono::steady_clock::time_point drainDeadline_;

    /**
     * Guards submissions (list + every mutable member), the scheduler
     * queue/condvar and the stats counters. Sessions are event-loop-
     * private and not guarded.
     */
    mutable std::mutex m_;
    std::condition_variable cvSched_;
    bool schedStop_ = false;
    std::uint64_t nextSubId_ = 1;
    std::uint64_t nextClientId_ = 1;
    std::vector<std::unique_ptr<Submission>> subs_;
    std::uint64_t lastScheduledClient_ = 0; ///< fair-share cursor
    ServerStats stats_;

    std::unique_ptr<JournalWriter> requestJournal_;
    std::map<int, std::unique_ptr<Session>> sessions_; ///< by fd

    std::mutex waitM_;
    std::condition_variable cvWait_;
};

} // namespace lrs::service

#endif // LRS_SERVICE_SERVER_HH
