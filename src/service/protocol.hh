/**
 * @file
 * Wire protocol of the sweep service (docs/SERVICE.md).
 *
 * Everything on the socket is newline-delimited JSON: one complete
 * JSON object per line, in both directions. Requests carry an "op"
 * member; responses carry a "type" member. The record builders and
 * the request parser live here so the daemon (service/server.hh),
 * the `lrs_sim --submit` client and the tests agree byte-for-byte on
 * the frames — the restart-recovery contract compares raw lines.
 *
 * Client → server ops:
 *   {"op":"submit","grid":"<grid INI text>"}   submit a sweep grid
 *   {"op":"attach","sub":N}                    replay submission N's
 *                                              stream from the start
 *   {"op":"ping"}                              liveness probe
 *   {"op":"stats"}                             server counters
 *
 * Server → client records:
 *   {"type":"ack","sub":N,"cells":M}           submission accepted
 *                                              (journaled durably
 *                                              *before* this is sent)
 *   {"type":"cell","sub":N,"cell":i,"key":..., one per cell, in
 *    "status":...,"result":{...}}              ascending cell id
 *   {"type":"done","sub":N,"ok":..,...}        stream complete
 *   {"type":"error","code":"E_..",...}         structured Diag error
 *   {"type":"pong"} / {"type":"stats",...}     control replies
 *
 * Delivery-order contract: for one submission a client always sees
 * ack, then cell records in ascending cell id, then done. Because
 * cell results are deterministic for any worker count (the PR 3/4
 * contract) and resumed cells re-emit their journaled result bytes,
 * the concatenated stream is byte-identical whether the sweep ran
 * uninterrupted or the daemon was SIGKILLed and restarted mid-sweep.
 */

#ifndef LRS_SERVICE_PROTOCOL_HH
#define LRS_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "common/diag.hh"
#include "common/json.hh"
#include "core/parallel.hh"

namespace lrs::service
{

constexpr int kProtocolVersion = 1;

/** One parsed client request line. */
struct Request
{
    enum class Op
    {
        Submit,
        Attach,
        Ping,
        Stats,
    };

    Op op = Op::Ping;
    std::string grid;      ///< Submit: grid INI text
    std::uint64_t sub = 0; ///< Attach: submission id
};

/**
 * Parse one request object. Throws ConfigError
 * (DiagCode::ProtocolError) naming the defect when the object is not
 * a request the protocol knows.
 */
Request parseRequest(const json::Value &v);

/** Serialise any record to its wire form: compact JSON + '\n'. */
std::string encode(const json::Value &record);

// --- record builders (field order is part of the wire contract) ---

json::Value ackRecord(std::uint64_t sub, std::uint64_t cells);

/**
 * One cell's final outcome. Journal-restored (Skipped) cells are
 * emitted as "OK" with their stored result bytes — a client must not
 * be able to tell a resumed sweep from an uninterrupted one.
 * Attempt counts are deliberately omitted from OK records for the
 * same reason (a restored cell ran zero times this process).
 */
json::Value cellRecord(std::uint64_t sub, std::uint64_t cell,
                       const std::string &key, const JobOutcome &o);

json::Value doneRecord(std::uint64_t sub, std::uint64_t ok,
                       std::uint64_t failed, std::uint64_t timeout,
                       std::uint64_t crashed);

/** Structured error; @p sub 0 means "not submission-scoped". */
json::Value errorRecord(const Diag &d, std::uint64_t sub = 0);

json::Value pongRecord();

// --- client-side request lines (lrs_sim --submit) ---

std::string submitLine(const std::string &gridText);
std::string attachLine(std::uint64_t sub);

} // namespace lrs::service

#endif // LRS_SERVICE_PROTOCOL_HH
