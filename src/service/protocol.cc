#include "service/protocol.hh"

namespace lrs::service
{

namespace
{

[[noreturn]] void
throwProtocol(const std::string &param, const std::string &message)
{
    throw ConfigError(makeDiag(DiagCode::ProtocolError,
                               "service.protocol", param, message));
}

} // namespace

Request
parseRequest(const json::Value &v)
{
    if (!v.isObject())
        throwProtocol("", "request is not a JSON object");
    const json::Value *op = v.find("op");
    if (!op || !op->isString())
        throwProtocol("op", "request carries no string \"op\" member");

    Request req;
    const std::string &name = op->asString();
    if (name == "submit") {
        req.op = Request::Op::Submit;
        const json::Value *grid = v.find("grid");
        if (!grid || !grid->isString())
            throwProtocol("grid",
                          "submit carries no string \"grid\" member");
        req.grid = grid->asString();
    } else if (name == "attach") {
        req.op = Request::Op::Attach;
        const json::Value *sub = v.find("sub");
        if (!sub || !sub->isNumber())
            throwProtocol("sub",
                          "attach carries no numeric \"sub\" member");
        req.sub = sub->asU64();
    } else if (name == "ping") {
        req.op = Request::Op::Ping;
    } else if (name == "stats") {
        req.op = Request::Op::Stats;
    } else {
        throwProtocol("op", "unknown op \"" + name + "\"");
    }
    return req;
}

std::string
encode(const json::Value &record)
{
    std::string line = record.dump(0);
    line.push_back('\n');
    return line;
}

json::Value
ackRecord(std::uint64_t sub, std::uint64_t cells)
{
    json::Value r = json::Value::object();
    r.set("type", "ack");
    r.set("sub", sub);
    r.set("cells", cells);
    return r;
}

json::Value
cellRecord(std::uint64_t sub, std::uint64_t cell,
           const std::string &key, const JobOutcome &o)
{
    json::Value r = json::Value::object();
    r.set("type", "cell");
    r.set("sub", sub);
    r.set("cell", cell);
    r.set("key", key);
    if (o.status == CellStatus::Ok ||
        o.status == CellStatus::Skipped) {
        r.set("status", cellStatusName(CellStatus::Ok));
        r.set("result", o.resultJson);
    } else {
        r.set("status", cellStatusName(o.status));
        r.set("code", o.code);
        r.set("error", o.error);
        if (o.signal)
            r.set("signal", o.signal);
    }
    return r;
}

json::Value
doneRecord(std::uint64_t sub, std::uint64_t ok, std::uint64_t failed,
           std::uint64_t timeout, std::uint64_t crashed)
{
    json::Value r = json::Value::object();
    r.set("type", "done");
    r.set("sub", sub);
    r.set("ok", ok);
    r.set("failed", failed);
    r.set("timeout", timeout);
    r.set("crashed", crashed);
    return r;
}

json::Value
errorRecord(const Diag &d, std::uint64_t sub)
{
    json::Value r = json::Value::object();
    r.set("type", "error");
    if (sub)
        r.set("sub", sub);
    r.set("code", diagCodeName(d.code));
    r.set("component", d.component);
    if (!d.param.empty())
        r.set("param", d.param);
    r.set("message", d.message);
    return r;
}

json::Value
pongRecord()
{
    json::Value r = json::Value::object();
    r.set("type", "pong");
    return r;
}

std::string
submitLine(const std::string &gridText)
{
    json::Value r = json::Value::object();
    r.set("op", "submit");
    r.set("grid", gridText);
    return encode(r);
}

std::string
attachLine(std::uint64_t sub)
{
    json::Value r = json::Value::object();
    r.set("op", "attach");
    r.set("sub", sub);
    return encode(r);
}

} // namespace lrs::service
