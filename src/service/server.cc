#include "service/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/runner.hh"
#include "core/snapshot.hh"
#include "core/supervisor.hh"
#include "service/protocol.hh"

namespace lrs::service
{

namespace
{

using Clock = std::chrono::steady_clock;

[[noreturn]] void
throwIoErrno(const std::string &param, const std::string &what)
{
    throw IoError(makeDiag(DiagCode::IoOpenFailed, "service.server",
                           param,
                           what + " (" +
                               std::string(std::strerror(errno)) +
                               ")"));
}

void
setNonBlockingCloexec(int fd)
{
    int fl = ::fcntl(fd, F_GETFL);
    if (fl >= 0)
        ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
    int fdfl = ::fcntl(fd, F_GETFD);
    if (fdfl >= 0)
        ::fcntl(fd, F_SETFD, fdfl | FD_CLOEXEC);
}

void
closeIf(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {}

Server::~Server()
{
    if (loopThread_.joinable() || schedThread_.joinable())
        stop(false);
}

void
Server::start()
{
    if (opts_.stateDir.empty())
        throwConfig("service.server", "state_dir",
                    "a state directory is required (the request and "
                    "cell journals live there)");
    if (opts_.socketPath.empty() && opts_.tcpPort < 0)
        throwConfig("service.server", "listen",
                    "no listener configured: set a socket path "
                    "and/or a TCP port");
    std::error_code ec;
    std::filesystem::create_directories(opts_.stateDir, ec);
    if (ec)
        throwIoErrno("state_dir", "cannot create state directory " +
                                      opts_.stateDir);

    recoverState();
    requestJournal_ = std::make_unique<JournalWriter>(
        opts_.stateDir + "/requests.jsonl", /*truncate=*/false);

    if (!opts_.socketPath.empty()) {
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        if (opts_.socketPath.size() >= sizeof(sa.sun_path))
            throwConfig("service.server", "socket",
                        "socket path too long: " + opts_.socketPath);
        std::strncpy(sa.sun_path, opts_.socketPath.c_str(),
                     sizeof(sa.sun_path) - 1);
        unixFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (unixFd_ < 0)
            throwIoErrno("socket", "cannot create Unix socket");
        ::unlink(opts_.socketPath.c_str());
        if (::bind(unixFd_, reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) != 0)
            throwIoErrno("socket",
                         "cannot bind " + opts_.socketPath);
        if (::listen(unixFd_, 64) != 0)
            throwIoErrno("socket",
                         "cannot listen on " + opts_.socketPath);
        setNonBlockingCloexec(unixFd_);
    }
    if (opts_.tcpPort >= 0) {
        tcpFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (tcpFd_ < 0)
            throwIoErrno("tcp_port", "cannot create TCP socket");
        int one = 1;
        ::setsockopt(tcpFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in sa{};
        sa.sin_family = AF_INET;
        sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        sa.sin_port =
            htons(static_cast<std::uint16_t>(opts_.tcpPort));
        if (::bind(tcpFd_, reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) != 0)
            throwIoErrno("tcp_port",
                         "cannot bind 127.0.0.1:" +
                             std::to_string(opts_.tcpPort));
        if (::listen(tcpFd_, 64) != 0)
            throwIoErrno("tcp_port", "cannot listen");
        socklen_t len = sizeof(sa);
        if (::getsockname(tcpFd_, reinterpret_cast<sockaddr *>(&sa),
                          &len) == 0)
            resolvedTcpPort_ = ntohs(sa.sin_port);
        setNonBlockingCloexec(tcpFd_);
    }

    int p[2];
    if (::pipe(p) != 0)
        throwIoErrno("wake_pipe", "cannot create wake pipe");
    wakeR_ = p[0];
    wakeW_ = p[1];
    setNonBlockingCloexec(wakeR_);
    setNonBlockingCloexec(wakeW_);

    schedThread_ = std::thread([this] { schedulerLoop(); });
    loopThread_ = std::thread([this] { eventLoop(); });
}

void
Server::requestStop() noexcept
{
    stopRequested_.store(true, std::memory_order_relaxed);
    wakeLoop();
}

void
Server::stop(bool drain)
{
    if (drain) {
        requestStop();
    } else {
        hardStop_.store(true, std::memory_order_relaxed);
        requestSweepInterrupt();
        {
            std::lock_guard<std::mutex> lk(m_);
            schedStop_ = true;
        }
        cvSched_.notify_all();
        wakeLoop();
    }
    if (loopThread_.joinable())
        loopThread_.join();
    if (schedThread_.joinable())
        schedThread_.join();
    // The drain path (and the hard path above) raised the process-
    // wide sweep interrupt; clear it only after both threads are
    // gone, so a later Server in this process starts clean.
    clearSweepInterrupt();
    closeIf(wakeR_);
    closeIf(wakeW_);
}

void
Server::wait()
{
    std::unique_lock<std::mutex> lk(waitM_);
    cvWait_.wait(lk, [this] {
        return loopExited_.load(std::memory_order_acquire);
    });
}

ServerStats
Server::statsSnapshot() const
{
    std::lock_guard<std::mutex> lk(m_);
    return stats_;
}

std::uint64_t
Server::completedSubmissions() const
{
    std::lock_guard<std::mutex> lk(m_);
    std::uint64_t n = 0;
    for (const auto &sub : subs_)
        if (sub->state == SubState::Done)
            ++n;
    return n;
}

void
Server::wakeLoop() noexcept
{
    if (wakeW_ >= 0) {
        const char b = 0;
        // Best effort: a full pipe means a wake-up is already queued.
        [[maybe_unused]] ssize_t r = ::write(wakeW_, &b, 1);
    }
}

// --------------------------------------------------------------------
// Recovery and the request journal
// --------------------------------------------------------------------

void
Server::recoverState()
{
    const std::string path = opts_.stateDir + "/requests.jsonl";
    std::error_code ec;
    if (!std::filesystem::exists(path, ec))
        return;
    JournalReadStats jrs;
    const std::vector<json::Value> recs = readJournal(path, &jrs);
    for (const json::Value &rec : recs) {
        try {
            if (!rec.isObject() || rec.at("v").asU64() != 1 ||
                rec.at("op").asString() != "submit")
                continue;
            auto sub = std::make_unique<Submission>();
            sub->id = rec.at("sub").asU64();
            sub->clientId = 0;
            sub->gridText = rec.at("grid").asString();
            std::istringstream is(sub->gridText);
            sub->grid = parseBatchGrid(is, "recovered submission " +
                                               std::to_string(sub->id));
            buildGridJobs(sub->grid, sub->jobs, sub->keys);
            sub->resume = true; // reuse the cell journal, if any
            sub->outcomes.resize(sub->jobs.size());
            sub->ready.assign(sub->jobs.size(), 0);
            nextSubId_ = std::max(nextSubId_, sub->id + 1);
            ++stats_.recovered;
            subs_.push_back(std::move(sub));
        } catch (const std::exception &e) {
            // A record that validated its CRC but no longer parses
            // means the journal schema/content is damaged beyond this
            // record; drop it loudly and keep the rest.
            std::fprintf(stderr,
                         "lrs_simd: dropping unusable request journal "
                         "record: %s\n",
                         e.what());
        }
    }
    if (jrs.badLines || jrs.truncatedTail)
        std::fprintf(stderr,
                     "lrs_simd: request journal recovery dropped "
                     "%llu damaged line(s)%s\n",
                     static_cast<unsigned long long>(jrs.badLines),
                     jrs.truncatedTail ? " (torn tail)" : "");
}

void
Server::journalRequest(const Submission &sub)
{
    json::Value rec = json::Value::object();
    rec.set("v", 1);
    rec.set("op", "submit");
    rec.set("sub", sub.id);
    rec.set("grid", sub.gridText);
    requestJournal_->append(rec); // durable (fsync) on return
}

// --------------------------------------------------------------------
// Scheduler thread
// --------------------------------------------------------------------

Server::Submission *
Server::findSub(std::uint64_t id)
{
    for (const auto &sub : subs_)
        if (sub->id == id)
            return sub.get();
    return nullptr;
}

Server::Submission *
Server::pickNext()
{
    // Fair share across clients: among the clients with queued
    // submissions, take the one whose id follows the last scheduled
    // client (wrapping), then that client's oldest submission — so a
    // client that queued four grids cannot starve a sibling's one.
    Submission *best = nullptr;
    bool bestWrapped = true;
    std::uint64_t bestClient = 0;
    for (const auto &sub : subs_) {
        if (sub->state != SubState::Queued)
            continue;
        const bool wrapped = sub->clientId <= lastScheduledClient_;
        if (best &&
            (wrapped == bestWrapped
                 ? sub->clientId >= bestClient
                 : wrapped)) // prefer not-wrapped candidates
            continue;
        best = sub.get();
        bestWrapped = wrapped;
        bestClient = sub->clientId;
    }
    return best;
}

void
Server::schedulerLoop()
{
    while (true) {
        Submission *sub = nullptr;
        {
            std::unique_lock<std::mutex> lk(m_);
            cvSched_.wait(lk, [this] {
                return schedStop_ || pickNext() != nullptr;
            });
            if (schedStop_)
                break;
            sub = pickNext();
            sub->state = SubState::Running;
            lastScheduledClient_ = sub->clientId;
        }
        runSubmission(*sub);
    }
    schedExited_.store(true, std::memory_order_release);
    wakeLoop();
}

void
Server::runSubmission(Submission &sub)
{
    SweepOptions so;
    so.journalPath = opts_.stateDir + "/sub_" +
                     std::to_string(sub.id) + ".cells.jsonl";
    so.resume = sub.resume;
    so.retries = opts_.retries;
    so.isolate = opts_.isolate;
    so.cellTimeoutMs = opts_.cellTimeoutMs;
    so.workers = sub.grid.jobs ? sub.grid.jobs : opts_.workers;
    so.onCell = [this, &sub](std::size_t cell, const JobOutcome &o) {
        std::lock_guard<std::mutex> lk(m_);
        sub.outcomes[cell] = o;
        sub.ready[cell] = 1;
        wakeLoop();
    };

    try {
        if (sub.grid.warmupSnapshot) {
            // Warm-once sampling (core/snapshot.hh): checkpoint each
            // trace under the submission's base config, fork every
            // scheme cell from it. Checkpoints live in one shared
            // state-dir location so later submissions with the same
            // base config and traces reuse them outright — the
            // per-file identity check regenerates anything stale, and
            // atomic replacement keeps this safe across daemon
            // restarts mid-write.
            const std::string dir = snapshotDirFor(
                sub.grid, opts_.stateDir + "/warmup");
            prepareWarmupSnapshots(sub.grid, dir, so.workers);
            attachWarmupSnapshots(sub.grid, dir, sub.jobs);
        }
        SweepSupervisor sup(so);
        std::vector<JobOutcome> outcomes = sup.run(sub.jobs, sub.keys);
        std::lock_guard<std::mutex> lk(m_);
        if (sup.interrupted()) {
            // Drain cut the sweep short. Journaled cells stand; the
            // submission goes back to Queued so a restarted daemon
            // (recoverState) resumes it exactly here.
            sub.interrupted = true;
            sub.resume = true;
            sub.state = SubState::Queued;
        } else {
            for (std::size_t i = 0; i < outcomes.size(); ++i) {
                sub.outcomes[i] = std::move(outcomes[i]);
                sub.ready[i] = 1;
            }
            sub.ok = sub.failed = sub.timeout = sub.crashed = 0;
            for (const JobOutcome &o : sub.outcomes) {
                switch (o.status) {
                  case CellStatus::Ok:
                  case CellStatus::Skipped: ++sub.ok;      break;
                  case CellStatus::Failed:  ++sub.failed;  break;
                  case CellStatus::Timeout: ++sub.timeout; break;
                  case CellStatus::Crashed: ++sub.crashed; break;
                }
            }
            sub.state = SubState::Done;
        }
    } catch (const std::exception &e) {
        // Supervisor-level failure (journal I/O, invalid journal).
        // The submission stays recoverable: journaled work is intact
        // and a restart retries it.
        std::fprintf(stderr,
                     "lrs_simd: submission %llu supervisor error: "
                     "%s\n",
                     static_cast<unsigned long long>(sub.id),
                     e.what());
        std::lock_guard<std::mutex> lk(m_);
        sub.interrupted = true;
        sub.resume = true;
        sub.state = SubState::Queued;
    }
    wakeLoop();
}

// --------------------------------------------------------------------
// Event-loop thread
// --------------------------------------------------------------------

unsigned
Server::pendingSubsOf(std::uint64_t clientId) const
{
    unsigned n = 0;
    for (const auto &sub : subs_)
        if (sub->clientId == clientId &&
            sub->state != SubState::Done)
            ++n;
    return n;
}

std::uint64_t
Server::pendingCellsOf(const Session &s) const
{
    std::uint64_t n = 0;
    for (const Watch &w : s.watches) {
        if (w.doneSent)
            continue;
        for (const auto &sub : subs_) {
            if (sub->id == w.subId) {
                const std::uint64_t total = sub->outcomes.size();
                n += total - std::min<std::uint64_t>(w.nextCell,
                                                     total);
                break;
            }
        }
    }
    return n;
}

void
Server::sendRecord(Session &s, const json::Value &record)
{
    s.outBuf += encode(record);
}

void
Server::sendError(Session &s, DiagCode code, const std::string &param,
                  const std::string &message, std::uint64_t sub,
                  bool fatal)
{
    sendRecord(s,
               errorRecord(makeDiag(code, "service.server", param,
                                    message),
                           sub));
    {
        std::lock_guard<std::mutex> lk(m_);
        if (code == DiagCode::QuotaExceeded)
            ++stats_.quotaRejects;
        else
            ++stats_.protocolErrors;
    }
    if (fatal) {
        s.dropAfterFlush = true;
        // Stop consuming input; the owed bytes still flush out.
        ::shutdown(s.fd, SHUT_RD);
    }
}

void
Server::pumpWatches(Session &s)
{
    std::lock_guard<std::mutex> lk(m_);
    for (Watch &w : s.watches) {
        if (w.doneSent)
            continue;
        Submission *sub = findSub(w.subId);
        if (!sub) {
            w.doneSent = true;
            continue;
        }
        const std::uint64_t total = sub->outcomes.size();
        while (w.nextCell < total && sub->ready[w.nextCell]) {
            if (s.outBuf.size() >= opts_.maxOutBufBytes) {
                // Slow reader: stop generating, keep the cursor. The
                // next successful flush resumes exactly here.
                if (!s.paused) {
                    s.paused = true;
                    ++stats_.deliveryPauses;
                }
                return;
            }
            s.outBuf += encode(cellRecord(
                sub->id, w.nextCell,
                sub->keys[static_cast<std::size_t>(w.nextCell)],
                sub->outcomes[static_cast<std::size_t>(w.nextCell)]));
            ++stats_.cellsDelivered;
            ++w.nextCell;
        }
        if (w.nextCell == total && sub->state == SubState::Done) {
            sendRecord(s, doneRecord(sub->id, sub->ok, sub->failed,
                                     sub->timeout, sub->crashed));
            w.doneSent = true;
        }
    }
    s.paused = false;
}

void
Server::handleSubmit(Session &s, const std::string &gridText)
{
    if (draining_) {
        sendError(s, DiagCode::Draining, "",
                  "the service is draining; resubmit after restart");
        return;
    }
    BatchGrid grid;
    std::vector<SimJob> jobs;
    std::vector<std::string> keys;
    try {
        std::istringstream is(gridText);
        grid = parseBatchGrid(is, "submission");
        grid.base.validateOrThrow();
        buildGridJobs(grid, jobs, keys);
    } catch (const ConfigError &e) {
        const Diag &d = e.diags().front();
        sendError(s, d.code, d.param,
                  "[" + d.component + "] " + d.message);
        return;
    }
    std::string quotaWhy;
    {
        std::lock_guard<std::mutex> lk(m_);
        if (pendingSubsOf(s.id) >= opts_.maxPendingSubs) {
            quotaWhy = "client already has " +
                       std::to_string(opts_.maxPendingSubs) +
                       " unfinished submission(s)";
        } else if (grid.cells() > opts_.maxCellsPerSub) {
            quotaWhy = "grid has " + std::to_string(grid.cells()) +
                       " cells; the cap is " +
                       std::to_string(opts_.maxCellsPerSub);
        } else if (pendingCellsOf(s) + grid.cells() >
                   opts_.maxPendingCells) {
            quotaWhy = "submission would exceed " +
                       std::to_string(opts_.maxPendingCells) +
                       " undelivered cells for this client";
        } else {
            auto sub = std::make_unique<Submission>();
            sub->id = nextSubId_++;
            sub->clientId = s.id;
            sub->gridText = gridText;
            sub->grid = std::move(grid);
            sub->jobs = std::move(jobs);
            sub->keys = std::move(keys);
            sub->outcomes.resize(sub->jobs.size());
            sub->ready.assign(sub->jobs.size(), 0);
            Submission *raw = sub.get();
            try {
                journalRequest(*raw); // durable BEFORE the ack
            } catch (const IoError &e) {
                sendRecord(s, errorRecord(e.diags().front()));
                ++stats_.protocolErrors;
                return;
            }
            subs_.push_back(std::move(sub));
            ++stats_.submissions;
            s.watches.push_back(Watch{raw->id, 0, false});
            sendRecord(s, ackRecord(raw->id, raw->outcomes.size()));
            cvSched_.notify_one();
            return;
        }
    }
    sendError(s, DiagCode::QuotaExceeded, "", quotaWhy);
}

void
Server::handleAttach(Session &s, std::uint64_t subId)
{
    enum { Ok, Missing, Quota } verdict;
    std::uint64_t cells = 0;
    {
        std::lock_guard<std::mutex> lk(m_);
        Submission *sub = findSub(subId);
        if (!sub) {
            verdict = Missing;
        } else if (pendingCellsOf(s) + sub->outcomes.size() >
                   opts_.maxPendingCells) {
            verdict = Quota;
        } else {
            verdict = Ok;
            cells = sub->outcomes.size();
            s.watches.push_back(Watch{subId, 0, false});
            sendRecord(s, ackRecord(subId, cells));
        }
    }
    switch (verdict) {
      case Ok:
        pumpWatches(s); // replay whatever is already final
        return;
      case Missing:
        sendError(s, DiagCode::NotFound, "sub",
                  "no submission " + std::to_string(subId) +
                      " in this state directory",
                  subId);
        return;
      case Quota:
        sendError(s, DiagCode::QuotaExceeded, "sub",
                  "attaching submission " + std::to_string(subId) +
                      " would exceed " +
                      std::to_string(opts_.maxPendingCells) +
                      " undelivered cells for this client",
                  subId);
        return;
    }
}

void
Server::handleLine(Session &s, const std::string &line)
{
    s.lastActivity = Clock::now();
    json::Value v;
    try {
        v = json::Value::parse(line);
    } catch (const json::ParseError &e) {
        sendError(s, DiagCode::ProtocolError, "",
                  std::string("request is not valid JSON: ") +
                      e.what());
        return;
    }
    Request req;
    try {
        req = parseRequest(v);
    } catch (const ConfigError &e) {
        const Diag &d = e.diags().front();
        sendError(s, d.code, d.param, d.message);
        return;
    }
    switch (req.op) {
      case Request::Op::Ping:
        sendRecord(s, pongRecord());
        return;
      case Request::Op::Stats: {
        json::Value r = json::Value::object();
        std::lock_guard<std::mutex> lk(m_);
        r.set("type", "stats");
        r.set("accepted", stats_.accepted);
        r.set("rejected_clients", stats_.rejectedClients);
        r.set("submissions", stats_.submissions);
        r.set("recovered", stats_.recovered);
        r.set("protocol_errors", stats_.protocolErrors);
        r.set("quota_rejects", stats_.quotaRejects);
        r.set("delivery_pauses", stats_.deliveryPauses);
        r.set("idle_reaps", stats_.idleReaps);
        r.set("cells_delivered", stats_.cellsDelivered);
        std::uint64_t done = 0;
        for (const auto &sub : subs_)
            if (sub->state == SubState::Done)
                ++done;
        r.set("completed", done);
        sendRecord(s, r);
        return;
      }
      case Request::Op::Submit:
        handleSubmit(s, req.grid);
        return;
      case Request::Op::Attach:
        handleAttach(s, req.sub);
        return;
    }
}

void
Server::handleAccept(int listenFd, bool isUnix)
{
    while (true) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN or a transient accept error
        }
        if (sessions_.size() >= opts_.maxClients) {
            // Over capacity: one structured refusal, then close.
            Diag d = makeDiag(DiagCode::QuotaExceeded,
                              "service.server", "max_clients",
                              "the service is at its connection "
                              "limit (" +
                                  std::to_string(opts_.maxClients) +
                                  ")");
            const std::string line = encode(errorRecord(d));
            (void)::send(fd, line.data(), line.size(),
                         MSG_NOSIGNAL | MSG_DONTWAIT);
            ::close(fd);
            std::lock_guard<std::mutex> lk(m_);
            ++stats_.rejectedClients;
            continue;
        }
        setNonBlockingCloexec(fd);
        if (opts_.sndBufBytes > 0)
            ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF,
                         &opts_.sndBufBytes,
                         sizeof(opts_.sndBufBytes));
        auto s = std::make_unique<Session>();
        s->fd = fd;
        s->isUnix = isUnix;
        s->lastActivity = Clock::now();
        {
            std::lock_guard<std::mutex> lk(m_);
            s->id = nextClientId_++;
            ++stats_.accepted;
        }
        sessions_[fd] = std::move(s);
    }
}

void
Server::closeSession(Session &s)
{
    if (s.fd >= 0) {
        ::close(s.fd);
        s.fd = -1; // reaped by the loop's sweep
    }
}

void
Server::handleReadable(Session &s)
{
    char buf[65536];
    while (s.fd >= 0) {
        const ssize_t n = ::recv(s.fd, buf, sizeof(buf), 0);
        if (n == 0) {
            // EOF. After a fatal error we shut down our own read
            // side, so this is expected — keep the session until the
            // owed error record flushes. A genuine disconnect closes
            // now; journaled submissions keep running (results stay
            // attachable) and nothing leaks.
            if (!s.dropAfterFlush)
                closeSession(s);
            return;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            closeSession(s);
            return;
        }
        if (s.dropAfterFlush)
            continue; // discard: the connection is already doomed
        s.inBuf.append(buf, static_cast<std::size_t>(n));
        std::size_t pos;
        while (s.fd >= 0 &&
               (pos = s.inBuf.find('\n')) != std::string::npos) {
            std::string line = s.inBuf.substr(0, pos);
            s.inBuf.erase(0, pos + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            if (line.size() > opts_.maxLineBytes) {
                sendError(s, DiagCode::ProtocolError, "",
                          "request line exceeds " +
                              std::to_string(opts_.maxLineBytes) +
                              " bytes",
                          0, /*fatal=*/true);
                break;
            }
            handleLine(s, line);
        }
        if (s.fd >= 0 && !s.dropAfterFlush &&
            s.inBuf.size() > opts_.maxLineBytes) {
            sendError(s, DiagCode::ProtocolError, "",
                      "request line exceeds " +
                          std::to_string(opts_.maxLineBytes) +
                          " bytes without a newline",
                      0, /*fatal=*/true);
            s.inBuf.clear();
        }
    }
}

void
Server::handleWritable(Session &s)
{
    while (s.fd >= 0 && !s.outBuf.empty()) {
        const ssize_t n = ::send(s.fd, s.outBuf.data(),
                                 s.outBuf.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            closeSession(s); // EPIPE/ECONNRESET: reader is gone
            return;
        }
        s.outBuf.erase(0, static_cast<std::size_t>(n));
        s.lastActivity = Clock::now();
    }
    if (s.fd >= 0 && s.outBuf.empty() && s.dropAfterFlush)
        closeSession(s);
}

void
Server::beginDrain()
{
    draining_ = true;
    drainDeadline_ =
        Clock::now() + std::chrono::milliseconds(opts_.drainTimeoutMs);
    closeIf(unixFd_);
    closeIf(tcpFd_);
    if (!opts_.socketPath.empty())
        ::unlink(opts_.socketPath.c_str());
    // Running cells finish (and journal, and deliver); queued cells
    // are cut and will resume on the next start from this state dir.
    requestSweepInterrupt();
    {
        std::lock_guard<std::mutex> lk(m_);
        schedStop_ = true;
    }
    cvSched_.notify_all();
}

void
Server::finishDrain()
{
    for (auto &kv : sessions_)
        closeSession(*kv.second);
    sessions_.clear();
}

void
Server::eventLoop()
{
    std::vector<pollfd> pfds;
    std::vector<Session *> polled;
    while (true) {
        if (hardStop_.load(std::memory_order_relaxed))
            break;
        if (stopRequested_.load(std::memory_order_relaxed) &&
            !draining_)
            beginDrain();

        // Generate owed bytes before deciding anything: new-ready
        // cells become cell records, finished sweeps become "done".
        for (auto &kv : sessions_) {
            if (kv.second->fd >= 0) {
                pumpWatches(*kv.second);
                handleWritable(*kv.second); // opportunistic flush
            }
        }
        // Reap sessions closed during pump/flush.
        for (auto it = sessions_.begin(); it != sessions_.end();) {
            if (it->second->fd < 0)
                it = sessions_.erase(it);
            else
                ++it;
        }

        if (draining_) {
            bool owed = false;
            for (const auto &kv : sessions_)
                if (!kv.second->outBuf.empty())
                    owed = true;
            const bool schedDone =
                schedExited_.load(std::memory_order_acquire);
            if ((schedDone && !owed) ||
                Clock::now() >= drainDeadline_)
                break;
        }

        pfds.clear();
        polled.clear();
        pfds.push_back(pollfd{wakeR_, POLLIN, 0});
        if (!draining_) {
            if (unixFd_ >= 0)
                pfds.push_back(pollfd{unixFd_, POLLIN, 0});
            if (tcpFd_ >= 0)
                pfds.push_back(pollfd{tcpFd_, POLLIN, 0});
        }
        const std::size_t firstSession = pfds.size();
        for (auto &kv : sessions_) {
            Session &s = *kv.second;
            short ev = POLLIN;
            if (!s.outBuf.empty())
                ev |= POLLOUT;
            pfds.push_back(pollfd{s.fd, ev, 0});
            polled.push_back(&s);
        }

        const int rc = ::poll(pfds.data(),
                              static_cast<nfds_t>(pfds.size()), 100);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            break; // poll itself failed: unrecoverable loop state
        }

        if (pfds[0].revents & POLLIN) {
            char drain[256];
            while (::read(wakeR_, drain, sizeof(drain)) > 0) {
            }
        }
        std::size_t idx = 1;
        if (!draining_) {
            if (unixFd_ >= 0) {
                if (pfds[idx].revents & POLLIN)
                    handleAccept(unixFd_, true);
                ++idx;
            }
            if (tcpFd_ >= 0) {
                if (pfds[idx].revents & POLLIN)
                    handleAccept(tcpFd_, false);
                ++idx;
            }
        }
        for (std::size_t i = 0; i < polled.size(); ++i) {
            Session &s = *polled[i];
            const short re = pfds[firstSession + i].revents;
            if (s.fd < 0)
                continue;
            if (re & (POLLERR | POLLNVAL)) {
                closeSession(s);
                continue;
            }
            if (re & POLLOUT)
                handleWritable(s);
            if (s.fd >= 0 && (re & (POLLIN | POLLHUP)))
                handleReadable(s);
        }

        if (opts_.idleTimeoutMs > 0) {
            const auto now = Clock::now();
            for (auto &kv : sessions_) {
                Session &s = *kv.second;
                if (s.fd < 0)
                    continue;
                const auto idle =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(now -
                                                   s.lastActivity)
                        .count();
                if (static_cast<std::uint64_t>(idle) >
                    opts_.idleTimeoutMs) {
                    closeSession(s);
                    std::lock_guard<std::mutex> lk(m_);
                    ++stats_.idleReaps;
                }
            }
        }
        for (auto it = sessions_.begin(); it != sessions_.end();) {
            if (it->second->fd < 0)
                it = sessions_.erase(it);
            else
                ++it;
        }
    }

    finishDrain();
    closeIf(unixFd_);
    closeIf(tcpFd_);
    if (!opts_.socketPath.empty())
        ::unlink(opts_.socketPath.c_str());
    {
        std::lock_guard<std::mutex> lk(waitM_);
        loopExited_.store(true, std::memory_order_release);
    }
    cvWait_.notify_all();
}

} // namespace lrs::service
