/**
 * @file
 * Set-associative cache model with fill timing.
 *
 * Unlike a purely functional cache, each line records the cycle its
 * fill completes. An access that finds its line still in flight is a
 * *dynamic miss* (paper section 2.2): it observes the remaining fill
 * latency rather than a fresh full miss or an instant hit. The
 * timing-assisted hit-miss predictor keys on exactly this behaviour via
 * the outstanding-miss-queue interface of the hierarchy.
 */

#ifndef LRS_MEMORY_CACHE_HH
#define LRS_MEMORY_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/diag.hh"
#include "common/json.hh"
#include "common/types.hh"

namespace lrs
{

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 16 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 64;
    /** Access latency of this level, in cycles. */
    Cycle latency = 5;
    /** Number of independently addressed banks (1 = unbanked). */
    unsigned numBanks = 1;

    /**
     * Every violated geometry constraint, all at once (empty =
     * valid). Diags are named under @p component (e.g. "mem.l1").
     */
    std::vector<Diag> validate(const std::string &component) const;
};

/**
 * One level of cache: LRU, write-allocate, with per-line fill times.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /** Outcome of a lookup (without timing chaining to lower levels). */
    struct LookupResult
    {
        bool present;     ///< tag matched
        bool ready;       ///< present and fill complete at access time
        Cycle fillTime;   ///< when the line's data arrived/arrives
    };

    /**
     * Look up @p addr at time @p now without modifying LRU state or
     * allocating. Used by oracle/statistical probes.
     */
    LookupResult probe(Addr addr, Cycle now) const;

    /**
     * Access @p addr at time @p now: update LRU, return the lookup
     * outcome. Does not allocate on miss — the hierarchy decides that
     * once the fill time is known (see fill()).
     */
    LookupResult access(Addr addr, Cycle now);

    /** Install the line of @p addr with its fill completing at @p fill. */
    void fill(Addr addr, Cycle fill_time);

    /** Drop every line (used by tests and phase experiments). */
    void flush();

    const CacheParams &params() const { return params_; }

    /** Bank index of @p addr (line-interleaved). */
    unsigned
    bankOf(Addr addr) const
    {
        return static_cast<unsigned>(addr / params_.lineBytes) %
               params_.numBanks;
    }

    Addr lineAddr(Addr addr) const { return addr / params_.lineBytes; }

    std::uint64_t numSets() const { return numSets_; }

    // Aggregate statistics (over all access() calls).
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t dynamicMisses() const { return dynMisses_; }

    /**
     * Machine-snapshot support (core/snapshot.hh): every line's tag /
     * fill time / LRU stamp / valid bit plus the aggregate counters,
     * exactly. loadState() requires the same geometry (line count)
     * and throws ConfigError(E_JOURNAL_INVALID) otherwise.
     */
    json::Value saveState() const;
    void loadState(const json::Value &state);

  private:
    struct Line
    {
        Addr tag = kAddrInvalid;
        Cycle fillTime = 0;
        Cycle lastUse = 0;
        bool valid = false;
    };

    CacheParams params_;
    std::uint64_t numSets_;
    std::vector<Line> lines_; // numSets_ * assoc, set-major

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t dynMisses_ = 0;
};

} // namespace lrs

#endif // LRS_MEMORY_CACHE_HH
