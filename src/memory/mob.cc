#include "memory/mob.hh"

#include <algorithm>
#include <cassert>

#include "common/state_io.hh"

namespace lrs
{

std::size_t
Mob::olderCount(SeqNum load_seq) const
{
    // Binary search over the seq-sorted logical order: first logical
    // index whose seq >= load_seq.
    std::size_t lo = 0;
    std::size_t hi = count_;
    while (lo < hi) {
        std::size_t mid = lo + (hi - lo) / 2;
        if (at(mid).seq < load_seq)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

void
Mob::append(const StoreRec &r)
{
    if (count_ == ring_.size()) {
        // Grow with a contiguous rebuild: logical order becomes
        // physical order, head_ returns to 0.
        std::vector<StoreRec> grown;
        grown.reserve(ring_.empty() ? 16 : ring_.size() * 2);
        for (std::size_t i = 0; i < count_; ++i)
            grown.push_back(at(i));
        grown.resize(grown.capacity());
        ring_ = std::move(grown);
        head_ = 0;
    }
    ring_[physIndex(count_)] = r;
    ++count_;
}

void
Mob::insert(SeqNum sta_seq, Addr addr, std::uint8_t size, Addr pc,
            bool barrier)
{
    assert(count_ == 0 || at(count_ - 1).seq < sta_seq);
    StoreRec rec;
    rec.seq = sta_seq;
    rec.addr = addr;
    rec.pc = pc;
    rec.size = size;
    rec.barrier = barrier;
    append(rec);
    ++inserted_;
}

void
Mob::markViolation(SeqNum sta_seq)
{
    StoreRec *r = find(sta_seq);
    assert(r != nullptr);
    if (!r->causedViolation)
        ++violations_;
    r->causedViolation = true;
}

void
Mob::registerStats(StatsGroup g)
{
    g.bindCounter("inserted", &inserted_,
                  "stores inserted into the window");
    g.bindCounter("violations", &violations_,
                  "stores that caused a wrong load ordering");
    g.derived("occupancy",
              [this] { return static_cast<double>(count_); },
              "stores currently in the window");
    // Only present in partial-address mode: the default (full-address)
    // registry must stay byte-identical to what the goldens pin.
    if (partialBits_ != 0) {
        g.bindCounter("partial_alias_matches", &partialAliasMatches_,
                      "loads stalled on a false partial-address "
                      "(4K-alias) store match");
        g.bindCounter("partial_true_matches", &partialTrueMatches_,
                      "loads whose partial-address store match was a "
                      "real overlap");
    }
}

bool
Mob::anyBarrierOlderIncomplete(SeqNum load_seq, Cycle now) const
{
    for (std::size_t i = olderCount(load_seq); i-- > 0;) {
        const StoreRec &r = at(i);
        if (r.barrier && !r.completeAt(now))
            return true;
    }
    return false;
}

const Mob::StoreRec *
Mob::get(SeqNum sta_seq) const
{
    return const_cast<Mob *>(this)->find(sta_seq);
}

Mob::StoreRec *
Mob::find(SeqNum sta_seq)
{
    std::size_t older = olderCount(sta_seq);
    if (older < count_ && at(older).seq == sta_seq)
        return &at(older);
    return nullptr;
}

void
Mob::staExecuted(SeqNum sta_seq, Cycle when)
{
    StoreRec *r = find(sta_seq);
    assert(r != nullptr);
    r->staDoneAt = when;
}

void
Mob::stdExecuted(SeqNum sta_seq, Cycle when)
{
    StoreRec *r = find(sta_seq);
    assert(r != nullptr);
    r->stdDoneAt = when;
}

void
Mob::retire(SeqNum sta_seq)
{
    assert(count_ != 0 && at(0).seq == sta_seq);
    (void)sta_seq;
    ++head_;
    if (head_ == ring_.size())
        head_ = 0;
    --count_;
}

void
Mob::clear()
{
    head_ = 0;
    count_ = 0;
}

bool
Mob::anyUnknownAddrOlder(SeqNum load_seq, Cycle now) const
{
    for (std::size_t i = olderCount(load_seq); i-- > 0;) {
        if (!at(i).addrKnownAt(now))
            return true;
    }
    return false;
}

bool
Mob::anyIncompleteOlder(SeqNum load_seq, Cycle now) const
{
    for (std::size_t i = olderCount(load_seq); i-- > 0;) {
        if (!at(i).completeAt(now))
            return true;
    }
    return false;
}

bool
Mob::allOlderComplete(SeqNum load_seq, Cycle now) const
{
    const std::size_t older = olderCount(load_seq);
    for (std::size_t i = 0; i < older; ++i) {
        if (!at(i).completeAt(now))
            return false;
    }
    return true;
}

bool
Mob::allOlderAddrKnown(SeqNum load_seq, Cycle now) const
{
    return !anyUnknownAddrOlder(load_seq, now);
}

bool
Mob::allOlderDataKnown(SeqNum load_seq, Cycle now) const
{
    const std::size_t older = olderCount(load_seq);
    for (std::size_t i = 0; i < older; ++i) {
        if (!at(i).dataKnownAt(now))
            return false;
    }
    return true;
}

const Mob::StoreRec *
Mob::youngestOverlapOlder(SeqNum load_seq, Addr addr,
                          std::uint8_t size) const
{
    for (std::size_t i = olderCount(load_seq); i-- > 0;) {
        const StoreRec &r = at(i);
        if (rangesOverlap(r.addr, r.size, addr, size))
            return &r;
    }
    return nullptr;
}

bool
Mob::collidesAt(SeqNum load_seq, Addr addr, std::uint8_t size,
                Cycle now) const
{
    for (std::size_t i = olderCount(load_seq); i-- > 0;) {
        const StoreRec &r = at(i);
        if (!r.addrKnownAt(now) &&
            rangesOverlap(r.addr, r.size, addr, size)) {
            return true;
        }
    }
    return false;
}

bool
Mob::partialAliasOlder(SeqNum load_seq, Addr addr, std::uint8_t size,
                       Cycle now) const
{
    if (partialBits_ == 0)
        return false;
    const Addr mask = partialBits_ >= 64
                          ? ~Addr(0)
                          : (Addr(1) << partialBits_) - 1;
    for (std::size_t i = olderCount(load_seq); i-- > 0;) {
        const StoreRec &r = at(i);
        if (!r.addrKnownAt(now))
            continue;
        // Narrow comparator: ranges compared in the masked window.
        // Accesses straddling the window boundary wrap; they are
        // vanishingly rare and a wrap only widens the match — i.e.
        // errs conservative, like the hardware.
        if (!rangesOverlap(r.addr & mask, r.size, addr & mask,
                           size)) {
            continue;
        }
        if (rangesOverlap(r.addr, r.size, addr, size)) {
            // The match is real: full-address machinery (forwarding,
            // collision classification) already handles this store.
            ++partialTrueMatches_;
            return false;
        }
        ++partialAliasMatches_;
        return true;
    }
    return false;
}

unsigned
Mob::overlapDistance(SeqNum load_seq, Addr addr,
                     std::uint8_t size) const
{
    unsigned dist = 0;
    for (std::size_t i = olderCount(load_seq); i-- > 0;) {
        const StoreRec &r = at(i);
        ++dist;
        if (rangesOverlap(r.addr, r.size, addr, size))
            return dist;
    }
    return 0;
}

const Mob::StoreRec *
Mob::olderAtDistance(SeqNum load_seq, unsigned distance) const
{
    assert(distance >= 1);
    const std::size_t older = olderCount(load_seq);
    if (older < distance)
        return nullptr;
    return &at(older - distance);
}

json::Value
Mob::saveState() const
{
    json::Value recs = json::Value::array();
    for (std::size_t i = 0; i < count_; ++i) {
        const StoreRec &r = at(i);
        // Fixed field order, one flat array per record: compact and
        // unambiguous (the loader checks the arity).
        json::Value rec = json::Value::array();
        rec.push(json::Value(r.seq));
        rec.push(json::Value(r.addr));
        rec.push(json::Value(r.pc));
        rec.push(json::Value(static_cast<std::uint64_t>(r.size)));
        rec.push(json::Value(static_cast<std::uint64_t>(r.barrier)));
        rec.push(json::Value(
            static_cast<std::uint64_t>(r.causedViolation)));
        rec.push(json::Value(r.staDoneAt));
        rec.push(json::Value(r.stdDoneAt));
        recs.push(std::move(rec));
    }
    json::Value st = json::Value::object();
    st.set("stores", std::move(recs));
    st.set("inserted", json::Value(inserted_));
    st.set("violations", json::Value(violations_));
    st.set("partial_alias", json::Value(partialAliasMatches_));
    st.set("partial_true", json::Value(partialTrueMatches_));
    return st;
}

void
Mob::loadState(const json::Value &state)
{
    const json::Value &recs = stateio::need(state, "stores");
    if (!recs.isArray())
        stateio::fail("stores", "MOB store list is not an array");
    clear();
    for (std::size_t i = 0; i < recs.size(); ++i) {
        const json::Value &rec = recs.at(i);
        if (!rec.isArray() || rec.size() != 8)
            stateio::fail("stores", "MOB record has wrong arity");
        StoreRec r;
        r.seq = rec.at(0).asU64();
        r.addr = rec.at(1).asU64();
        r.pc = rec.at(2).asU64();
        r.size = static_cast<std::uint8_t>(rec.at(3).asU64());
        r.barrier = rec.at(4).asU64() != 0;
        r.causedViolation = rec.at(5).asU64() != 0;
        r.staDoneAt = rec.at(6).asU64();
        r.stdDoneAt = rec.at(7).asU64();
        append(r);
    }
    inserted_ = stateio::needU64(state, "inserted");
    violations_ = stateio::needU64(state, "violations");
    partialAliasMatches_ = stateio::needU64(state, "partial_alias");
    partialTrueMatches_ = stateio::needU64(state, "partial_true");
}

} // namespace lrs
