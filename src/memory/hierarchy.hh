/**
 * @file
 * The data-side memory hierarchy: L1D -> unified L2 -> main memory,
 * matching the paper's simulated machine (16K D-cache, 256K unified
 * 4-way L2, 64-byte lines). Also exposes the outstanding-miss /
 * recently-serviced timing information the timing-assisted hit-miss
 * predictor uses (paper section 2.2).
 */

#ifndef LRS_MEMORY_HIERARCHY_HH
#define LRS_MEMORY_HIERARCHY_HH

#include <cstdint>
#include <deque>

#include "common/stats_registry.hh"
#include "common/types.hh"
#include "memory/cache.hh"

namespace lrs
{

/** Parameters of the full data hierarchy. */
struct HierarchyParams
{
    CacheParams l1 = {"L1D", 16 * 1024, 4, 64, /*latency=*/5,
                      /*banks=*/1};
    CacheParams l2 = {"L2", 256 * 1024, 4, 64, /*latency=*/7,
                      /*banks=*/1};
    /** Additional latency of main memory beyond L1+L2. */
    Cycle memLatency = 45;
    /** How long a serviced line stays in the recently-filled window. */
    Cycle recentFillWindow = 32;
};

/**
 * Two-level data hierarchy with fill timing.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyParams &params);

    /** Memory level that serviced an access. */
    enum class Level { L1, L2, Memory };

    struct Access
    {
        /** True L1 hit: line present and filled at access time. */
        bool l1Hit;
        /** L1 had the line allocated but still in flight. */
        bool dynamicMiss;
        Level level;
        /** Cycle at which the data is available to consumers. */
        Cycle readyAt;
    };

    /**
     * Perform a load/store access to @p addr starting at @p now.
     * Allocates into both levels on miss (inclusive fill).
     */
    Access access(Addr addr, Cycle now);

    /**
     * Timing information for the timing-assisted hit-miss predictor:
     * does @p addr's line have an outstanding (in-flight) miss at
     * @p now, and was it recently filled?
     */
    struct TimingInfo
    {
        bool outstandingMiss; ///< line allocated, fill in the future
        bool recentFill;      ///< fill completed within the window
    };
    TimingInfo timingInfo(Addr addr, Cycle now) const;

    Cache &l1() { return l1_; }
    Cache &l2() { return l2_; }
    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    const HierarchyParams &params() const { return params_; }

    /**
     * Register both levels' access statistics under @p g (as
     * "<g>.l1.*" and "<g>.l2.*").
     */
    void registerStats(StatsGroup g);

    /** Machine-snapshot support: both levels, exactly. */
    json::Value saveState() const;
    void loadState(const json::Value &state);

    /** Total latency of an L1 hit. */
    Cycle l1Latency() const { return params_.l1.latency; }
    /** Total latency of an L1 miss / L2 hit. */
    Cycle l2Latency() const
    {
        return params_.l1.latency + params_.l2.latency;
    }
    /** Total latency of a miss to memory. */
    Cycle memLatency() const
    {
        return l2Latency() + params_.memLatency;
    }

  private:
    HierarchyParams params_;
    Cache l1_;
    Cache l2_;
};

} // namespace lrs

#endif // LRS_MEMORY_HIERARCHY_HH
