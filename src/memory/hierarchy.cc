#include "memory/hierarchy.hh"

#include "common/state_io.hh"

namespace lrs
{

MemoryHierarchy::MemoryHierarchy(const HierarchyParams &params)
    : params_(params), l1_(params.l1), l2_(params.l2)
{
}

void
MemoryHierarchy::registerStats(StatsGroup g)
{
    // The caches own their tallies; export them as derived views so
    // the registry never outlives-or-mutates component internals.
    const auto level = [&](StatsGroup lg, const Cache *c) {
        lg.derived("hits",
                   [c] { return static_cast<double>(c->hits()); },
                   "accesses serviced by a filled line");
        lg.derived("misses",
                   [c] { return static_cast<double>(c->misses()); },
                   "accesses that allocated a new line");
        lg.derived(
            "dynamic_misses",
            [c] { return static_cast<double>(c->dynamicMisses()); },
            "accesses to lines still in flight");
    };
    level(g.group("l1"), &l1_);
    level(g.group("l2"), &l2_);
}

MemoryHierarchy::Access
MemoryHierarchy::access(Addr addr, Cycle now)
{
    const auto r1 = l1_.access(addr, now);
    if (r1.present) {
        if (r1.ready) {
            return {true, false, Level::L1, now + params_.l1.latency};
        }
        // Dynamic miss: data arrives when the in-flight fill lands.
        // Keep L2 LRU state warm for the line as a real access would.
        l2_.access(addr, now);
        const Cycle ready =
            std::max(r1.fillTime, now + params_.l1.latency);
        return {false, true, Level::L2, ready};
    }

    const auto r2 = l2_.access(addr, now);
    if (r2.present && r2.ready) {
        const Cycle ready = now + l2Latency();
        l1_.fill(addr, ready);
        return {false, false, Level::L2, ready};
    }
    if (r2.present) {
        // In flight in L2 as well.
        const Cycle ready =
            std::max(r2.fillTime, now + l2Latency());
        l1_.fill(addr, ready);
        return {false, true, Level::L2, ready};
    }

    const Cycle ready = now + memLatency();
    l2_.fill(addr, ready);
    l1_.fill(addr, ready);
    return {false, false, Level::Memory, ready};
}

json::Value
MemoryHierarchy::saveState() const
{
    json::Value st = json::Value::object();
    st.set("l1", l1_.saveState());
    st.set("l2", l2_.saveState());
    return st;
}

void
MemoryHierarchy::loadState(const json::Value &state)
{
    l1_.loadState(stateio::need(state, "l1"));
    l2_.loadState(stateio::need(state, "l2"));
}

MemoryHierarchy::TimingInfo
MemoryHierarchy::timingInfo(Addr addr, Cycle now) const
{
    const auto p = l1_.probe(addr, now);
    TimingInfo info{false, false};
    if (p.present) {
        if (p.fillTime > now)
            info.outstandingMiss = true;
        else if (now - p.fillTime <= params_.recentFillWindow)
            info.recentFill = true;
    }
    return info;
}

} // namespace lrs
