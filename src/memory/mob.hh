/**
 * @file
 * Memory Ordering Buffer.
 *
 * Tracks every store in the instruction window — STA (address) and STD
 * (data) status separately, P6-style — and answers the ordering queries
 * the scheduler and the collision-classification logic need
 * (paper sections 1.1 and 2.1):
 *
 *  - is there an older store whose address is still unknown?
 *    (the load is then *conflicting*)
 *  - does an older store with unknown-at-schedule-time address overlap
 *    this load's address? (the load is then *actually colliding*)
 *  - which is the youngest older overlapping store, and when do its
 *    STA/STD complete? (forwarding and penalty timing)
 *  - what is the store-distance between a load and its collider?
 *    (the exclusive predictor's distance annotation)
 *
 * The MOB also knows each store's *oracle* address (from the trace)
 * before the STA executes; only the Perfect scheme and the ground-truth
 * classification consult it ahead of STA execution.
 */

#ifndef LRS_MEMORY_MOB_HH
#define LRS_MEMORY_MOB_HH

#include <cstdint>
#include <vector>

#include "common/json.hh"
#include "common/stats_registry.hh"
#include "common/types.hh"

namespace lrs
{

/**
 * Store-tracking half of a P6-style MOB/ROB pair.
 */
class Mob
{
  public:
    /** Status of one in-window store. */
    struct StoreRec
    {
        SeqNum seq;          ///< sequence number of the STA uop
        Addr addr;           ///< oracle address (known to the trace)
        Addr pc = 0;         ///< static PC of the STA (for training)
        std::uint8_t size;
        /** Store Barrier Cache: this store fences following loads. */
        bool barrier = false;
        /** A load was wrongly ordered against this store. */
        bool causedViolation = false;
        Cycle staDoneAt = kCycleNever; ///< address known from here on
        Cycle stdDoneAt = kCycleNever; ///< data available from here on

        bool addrKnownAt(Cycle now) const { return staDoneAt <= now; }
        bool dataKnownAt(Cycle now) const { return stdDoneAt <= now; }
        bool completeAt(Cycle now) const
        {
            return addrKnownAt(now) && dataKnownAt(now);
        }
    };

    /** A new store (STA+STD pair) entered the window at rename. */
    void insert(SeqNum sta_seq, Addr addr, std::uint8_t size,
                Addr pc = 0, bool barrier = false);

    /** Record that a load was wrongly ordered against this store. */
    void markViolation(SeqNum sta_seq);

    /**
     * True iff some older barrier-marked store is incomplete at
     * @p now — the Store Barrier Cache's load fence ([Hess95]).
     */
    bool anyBarrierOlderIncomplete(SeqNum load_seq, Cycle now) const;

    /** The STA executed: address becomes architecturally known. */
    void staExecuted(SeqNum sta_seq, Cycle when);

    /** The STD executed: data becomes available for forwarding. */
    void stdExecuted(SeqNum sta_seq, Cycle when);

    /** The store retired: remove it from the window. */
    void retire(SeqNum sta_seq);

    /** Remove every store (window flush). */
    void clear();

    /** Number of stores currently in the window. */
    std::size_t size() const { return count_; }

    /** Stores ever inserted (lifetime of this MOB). */
    std::uint64_t inserted() const { return inserted_; }
    /** Stores marked as having caused a wrong load ordering. */
    std::uint64_t violationsMarked() const { return violations_; }

    /** Register this MOB's stats under @p g (e.g. "mem.mob"). */
    void registerStats(StatsGroup g);

    /**
     * Enable partial-address disambiguation: queries through
     * partialAliasOlder() compare only the low @p bits of addresses,
     * the way a real MOB's narrow comparators do (and the way SPOILER
     * exploits — 4K-aliasing stores/loads match on the low 12+ bits
     * while the full addresses are disjoint). 0 = full addresses
     * (default; nothing changes). Must be set before registerStats()
     * so the partial counters appear only when the mode is active.
     */
    void setPartialBits(unsigned bits) { partialBits_ = bits; }
    unsigned partialBits() const { return partialBits_; }

    /** Loads whose partial match was a false (alias-only) match. */
    std::uint64_t partialAliasMatches() const
    {
        return partialAliasMatches_;
    }
    /** Loads whose partial match was a true (full-overlap) match. */
    std::uint64_t partialTrueMatches() const
    {
        return partialTrueMatches_;
    }

    /**
     * True iff some store older than @p load_seq has an unknown
     * address at @p now.
     */
    bool anyUnknownAddrOlder(SeqNum load_seq, Cycle now) const;

    /**
     * True iff some store older than @p load_seq is incomplete
     * (address or data still unknown) at @p now — the load is then
     * *conflicting*: it cannot yet be scheduled safely.
     */
    bool anyIncompleteOlder(SeqNum load_seq, Cycle now) const;

    /** True iff every older store has completed (STA and STD) by now. */
    bool allOlderComplete(SeqNum load_seq, Cycle now) const;

    /** True iff every older store's address is known by now. */
    bool allOlderAddrKnown(SeqNum load_seq, Cycle now) const;

    /** True iff every older store's data is known by now. */
    bool allOlderDataKnown(SeqNum load_seq, Cycle now) const;

    /**
     * Youngest older store overlapping [addr, addr+size), using oracle
     * addresses. Returns nullptr if none.
     */
    const StoreRec *youngestOverlapOlder(SeqNum load_seq, Addr addr,
                                         std::uint8_t size) const;

    /**
     * True iff an older store whose address is unknown at @p now
     * overlaps the load's address — the paper's *actually colliding*
     * condition evaluated at schedule time.
     */
    bool collidesAt(SeqNum load_seq, Addr addr, std::uint8_t size,
                    Cycle now) const;

    /**
     * Partial-address check against *known*-address older stores: the
     * narrow comparator a real MOB runs when a load executes. Returns
     * true iff the youngest older known-address store whose low
     * partialBits() match the load does NOT actually overlap it —
     * a false 4K-alias dependence the load must conservatively stall
     * on (counted in partial_alias_matches). A matching store that
     * really overlaps counts as partial_true_matches and returns
     * false (the ordinary collision machinery handles it). Always
     * false when partial matching is off.
     */
    bool partialAliasOlder(SeqNum load_seq, Addr addr,
                           std::uint8_t size, Cycle now) const;

    /**
     * Store-distance of the youngest older overlapping store: 1 means
     * the closest older store, 2 the one before it, etc. Returns 0 if
     * no overlap.
     */
    unsigned overlapDistance(SeqNum load_seq, Addr addr,
                             std::uint8_t size) const;

    /**
     * The @p distance-th closest older store (1 = youngest older).
     * Returns nullptr if fewer than @p distance older stores exist.
     */
    const StoreRec *olderAtDistance(SeqNum load_seq,
                                    unsigned distance) const;

    /** The in-window store with STA sequence @p sta_seq, if any. */
    const StoreRec *get(SeqNum sta_seq) const;

    /**
     * The @p i-th in-window store in program order (0 = oldest).
     * Together with size() this is the read-only view the invariant
     * auditor uses to cross-check the MOB against the ROB.
     */
    const StoreRec &storeAt(std::size_t i) const { return at(i); }

    /**
     * Machine-snapshot support (core/snapshot.hh): every in-window
     * store record plus the lifetime counters, exactly.
     */
    json::Value saveState() const;
    void loadState(const json::Value &state);

  private:
    /**
     * Stores in program order as a ring over one flat array: logical
     * index i lives at ring_[(head_ + i) % ring_.size()]. A flat ring
     * keeps every age-ordered CAM walk on contiguous cache lines
     * (docs/PERFORMANCE.md) where the former std::deque chased
     * block-map pointers. Grown (with a contiguous rebuild) only when
     * count_ hits capacity; pointers returned by the query API are
     * invalidated only by that growth, and no caller holds one across
     * an insert().
     */
    std::vector<StoreRec> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;

    std::size_t
    physIndex(std::size_t logical) const
    {
        std::size_t i = head_ + logical;
        if (i >= ring_.size())
            i -= ring_.size();
        return i;
    }

    StoreRec &at(std::size_t logical) { return ring_[physIndex(logical)]; }
    const StoreRec &
    at(std::size_t logical) const
    {
        return ring_[physIndex(logical)];
    }

    /**
     * Number of in-window stores older than @p load_seq — the logical
     * prefix [0, olderCount) every ordering query iterates. Binary
     * search over the seq-sorted ring, so queries never touch the
     * younger suffix at all (the deque version skip-scanned it).
     */
    std::size_t olderCount(SeqNum load_seq) const;

    /** Append @p r as the youngest store, growing the ring if full. */
    void append(const StoreRec &r);

    std::uint64_t inserted_ = 0;
    std::uint64_t violations_ = 0;

    /** Comparator width; 0 = full-address disambiguation. */
    unsigned partialBits_ = 0;
    // Mutable: the queries are logically const but the accounting of
    // alias vs true matches is a measurement side effect.
    mutable std::uint64_t partialAliasMatches_ = 0;
    mutable std::uint64_t partialTrueMatches_ = 0;

    StoreRec *find(SeqNum sta_seq);
};

/** Do two byte ranges overlap? */
inline bool
rangesOverlap(Addr a1, std::uint8_t s1, Addr a2, std::uint8_t s2)
{
    return a1 < a2 + s2 && a2 < a1 + s1;
}

} // namespace lrs

#endif // LRS_MEMORY_MOB_HH
