#include "memory/cache.hh"

#include "common/bitutils.hh"

namespace lrs
{

std::vector<Diag>
CacheParams::validate(const std::string &component) const
{
    std::vector<Diag> diags;
    const auto bad = [&](const std::string &param,
                         const std::string &msg) {
        diags.push_back(
            makeDiag(DiagCode::ConfigInvalid, component, param, msg));
    };
    if (lineBytes == 0 || !isPowerOf2(lineBytes)) {
        bad("line_bytes", "line size must be a nonzero power of two "
                          "(got " +
                              std::to_string(lineBytes) + ")");
    }
    if (assoc == 0)
        bad("assoc", "associativity must be >= 1 (got 0)");
    if (lineBytes != 0 && assoc != 0) {
        if (sizeBytes < std::uint64_t{lineBytes} * assoc) {
            bad("size_bytes",
                "capacity " + std::to_string(sizeBytes) +
                    " is smaller than one set (" +
                    std::to_string(lineBytes) + "B lines x " +
                    std::to_string(assoc) + " ways)");
        } else if (!isPowerOf2(sizeBytes /
                               (std::uint64_t{lineBytes} * assoc))) {
            bad("size_bytes",
                "capacity " + std::to_string(sizeBytes) +
                    " does not yield a power-of-two set count with " +
                    std::to_string(lineBytes) + "B lines, " +
                    std::to_string(assoc) + " ways");
        }
    }
    if (numBanks == 0 || !isPowerOf2(numBanks)) {
        bad("num_banks", "bank count must be a nonzero power of two "
                         "(got " +
                             std::to_string(numBanks) + ")");
    }
    return diags;
}

Cache::Cache(const CacheParams &params)
    : params_(params)
{
    if (auto diags = params_.validate(params_.name); !diags.empty())
        throw ConfigError(std::move(diags));
    numSets_ = params_.sizeBytes / (params_.lineBytes * params_.assoc);
    lines_.resize(numSets_ * params_.assoc);
}

Cache::LookupResult
Cache::probe(Addr addr, Cycle now) const
{
    const Addr tag = lineAddr(addr);
    const std::uint64_t set = tag & (numSets_ - 1);
    const Line *base = &lines_[set * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Line &l = base[w];
        if (l.valid && l.tag == tag)
            return {true, l.fillTime <= now, l.fillTime};
    }
    return {false, false, 0};
}

Cache::LookupResult
Cache::access(Addr addr, Cycle now)
{
    const Addr tag = lineAddr(addr);
    const std::uint64_t set = tag & (numSets_ - 1);
    Line *base = &lines_[set * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = now;
            if (l.fillTime <= now) {
                ++hits_;
                return {true, true, l.fillTime};
            }
            ++dynMisses_;
            return {true, false, l.fillTime};
        }
    }
    ++misses_;
    return {false, false, 0};
}

void
Cache::fill(Addr addr, Cycle fill_time)
{
    const Addr tag = lineAddr(addr);
    const std::uint64_t set = tag & (numSets_ - 1);
    Line *base = &lines_[set * params_.assoc];
    // Reuse an existing entry (refill), else an invalid way, else LRU.
    Line *victim = nullptr;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            victim = &l;
            break;
        }
    }
    if (!victim) {
        for (unsigned w = 0; w < params_.assoc; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
        }
    }
    if (!victim) {
        victim = base;
        for (unsigned w = 1; w < params_.assoc; ++w)
            if (base[w].lastUse < victim->lastUse)
                victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->fillTime = fill_time;
    victim->lastUse = fill_time;
}

void
Cache::flush()
{
    for (auto &l : lines_)
        l.valid = false;
}

} // namespace lrs
