#include "memory/cache.hh"

#include "common/bitutils.hh"
#include "common/state_io.hh"

namespace lrs
{

std::vector<Diag>
CacheParams::validate(const std::string &component) const
{
    std::vector<Diag> diags;
    const auto bad = [&](const std::string &param,
                         const std::string &msg) {
        diags.push_back(
            makeDiag(DiagCode::ConfigInvalid, component, param, msg));
    };
    if (lineBytes == 0 || !isPowerOf2(lineBytes)) {
        bad("line_bytes", "line size must be a nonzero power of two "
                          "(got " +
                              std::to_string(lineBytes) + ")");
    }
    if (assoc == 0)
        bad("assoc", "associativity must be >= 1 (got 0)");
    if (lineBytes != 0 && assoc != 0) {
        if (sizeBytes < std::uint64_t{lineBytes} * assoc) {
            bad("size_bytes",
                "capacity " + std::to_string(sizeBytes) +
                    " is smaller than one set (" +
                    std::to_string(lineBytes) + "B lines x " +
                    std::to_string(assoc) + " ways)");
        } else if (!isPowerOf2(sizeBytes /
                               (std::uint64_t{lineBytes} * assoc))) {
            bad("size_bytes",
                "capacity " + std::to_string(sizeBytes) +
                    " does not yield a power-of-two set count with " +
                    std::to_string(lineBytes) + "B lines, " +
                    std::to_string(assoc) + " ways");
        }
    }
    if (numBanks == 0 || !isPowerOf2(numBanks)) {
        bad("num_banks", "bank count must be a nonzero power of two "
                         "(got " +
                             std::to_string(numBanks) + ")");
    }
    return diags;
}

Cache::Cache(const CacheParams &params)
    : params_(params)
{
    if (auto diags = params_.validate(params_.name); !diags.empty())
        throw ConfigError(std::move(diags));
    numSets_ = params_.sizeBytes / (params_.lineBytes * params_.assoc);
    lines_.resize(numSets_ * params_.assoc);
}

Cache::LookupResult
Cache::probe(Addr addr, Cycle now) const
{
    const Addr tag = lineAddr(addr);
    const std::uint64_t set = tag & (numSets_ - 1);
    const Line *base = &lines_[set * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Line &l = base[w];
        if (l.valid && l.tag == tag)
            return {true, l.fillTime <= now, l.fillTime};
    }
    return {false, false, 0};
}

Cache::LookupResult
Cache::access(Addr addr, Cycle now)
{
    const Addr tag = lineAddr(addr);
    const std::uint64_t set = tag & (numSets_ - 1);
    Line *base = &lines_[set * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = now;
            if (l.fillTime <= now) {
                ++hits_;
                return {true, true, l.fillTime};
            }
            ++dynMisses_;
            return {true, false, l.fillTime};
        }
    }
    ++misses_;
    return {false, false, 0};
}

void
Cache::fill(Addr addr, Cycle fill_time)
{
    const Addr tag = lineAddr(addr);
    const std::uint64_t set = tag & (numSets_ - 1);
    Line *base = &lines_[set * params_.assoc];
    // Reuse an existing entry (refill), else an invalid way, else LRU.
    Line *victim = nullptr;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            victim = &l;
            break;
        }
    }
    if (!victim) {
        for (unsigned w = 0; w < params_.assoc; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
        }
    }
    if (!victim) {
        victim = base;
        for (unsigned w = 1; w < params_.assoc; ++w)
            if (base[w].lastUse < victim->lastUse)
                victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->fillTime = fill_time;
    victim->lastUse = fill_time;
}

void
Cache::flush()
{
    for (auto &l : lines_)
        l.valid = false;
}

json::Value
Cache::saveState() const
{
    // Column-major flat arrays: compact, and unpackInts() checks each
    // against the structural line count on restore.
    std::vector<std::uint64_t> tags, fills, uses, valids;
    tags.reserve(lines_.size());
    fills.reserve(lines_.size());
    uses.reserve(lines_.size());
    valids.reserve(lines_.size());
    for (const Line &l : lines_) {
        tags.push_back(l.tag);
        fills.push_back(l.fillTime);
        uses.push_back(l.lastUse);
        valids.push_back(l.valid ? 1 : 0);
    }
    json::Value st = json::Value::object();
    st.set("tag", stateio::packInts(tags));
    st.set("fill_time", stateio::packInts(fills));
    st.set("last_use", stateio::packInts(uses));
    st.set("valid", stateio::packInts(valids));
    st.set("hits", json::Value(hits_));
    st.set("misses", json::Value(misses_));
    st.set("dynamic_misses", json::Value(dynMisses_));
    return st;
}

void
Cache::loadState(const json::Value &state)
{
    std::vector<std::uint64_t> tags(lines_.size()),
        fills(lines_.size()), uses(lines_.size()),
        valids(lines_.size());
    stateio::unpackInts(state, "tag", tags);
    stateio::unpackInts(state, "fill_time", fills);
    stateio::unpackInts(state, "last_use", uses);
    stateio::unpackInts(state, "valid", valids);
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        lines_[i].tag = tags[i];
        lines_[i].fillTime = fills[i];
        lines_[i].lastUse = uses[i];
        lines_[i].valid = valids[i] != 0;
    }
    hits_ = stateio::needU64(state, "hits");
    misses_ = stateio::needU64(state, "misses");
    dynMisses_ = stateio::needU64(state, "dynamic_misses");
}

} // namespace lrs
