#include "memory/cache.hh"

#include <cassert>

#include "common/bitutils.hh"

namespace lrs
{

Cache::Cache(const CacheParams &params)
    : params_(params)
{
    assert(params_.lineBytes > 0 && isPowerOf2(params_.lineBytes));
    assert(params_.assoc > 0);
    assert(params_.sizeBytes >= params_.lineBytes * params_.assoc);
    numSets_ = params_.sizeBytes / (params_.lineBytes * params_.assoc);
    assert(isPowerOf2(numSets_));
    lines_.resize(numSets_ * params_.assoc);
}

Cache::LookupResult
Cache::probe(Addr addr, Cycle now) const
{
    const Addr tag = lineAddr(addr);
    const std::uint64_t set = tag & (numSets_ - 1);
    const Line *base = &lines_[set * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Line &l = base[w];
        if (l.valid && l.tag == tag)
            return {true, l.fillTime <= now, l.fillTime};
    }
    return {false, false, 0};
}

Cache::LookupResult
Cache::access(Addr addr, Cycle now)
{
    const Addr tag = lineAddr(addr);
    const std::uint64_t set = tag & (numSets_ - 1);
    Line *base = &lines_[set * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = now;
            if (l.fillTime <= now) {
                ++hits_;
                return {true, true, l.fillTime};
            }
            ++dynMisses_;
            return {true, false, l.fillTime};
        }
    }
    ++misses_;
    return {false, false, 0};
}

void
Cache::fill(Addr addr, Cycle fill_time)
{
    const Addr tag = lineAddr(addr);
    const std::uint64_t set = tag & (numSets_ - 1);
    Line *base = &lines_[set * params_.assoc];
    // Reuse an existing entry (refill), else an invalid way, else LRU.
    Line *victim = nullptr;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            victim = &l;
            break;
        }
    }
    if (!victim) {
        for (unsigned w = 0; w < params_.assoc; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
        }
    }
    if (!victim) {
        victim = base;
        for (unsigned w = 1; w < params_.assoc; ++w)
            if (base[w].lastUse < victim->lastUse)
                victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->fillTime = fill_time;
    victim->lastUse = fill_time;
}

void
Cache::flush()
{
    for (auto &l : lines_)
        l.valid = false;
}

} // namespace lrs
