#include "trace/serialize.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "common/diag.hh"

namespace lrs
{

namespace
{

constexpr char kMagic[8] = {'L', 'R', 'S', 'T', 'R', 'C', '0', '1'};

template <typename T>
void
put(std::ostream &os, T v)
{
    // The simulator only targets little-endian hosts; static-assert
    // rather than byte-swap.
    static_assert(std::endian::native == std::endian::little,
                  "serialisation assumes a little-endian host");
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

[[noreturn]] void
throwTrace(DiagCode code, const std::string &param,
           const std::string &message)
{
    throw TraceError(
        makeDiag(code, "trace.serialize", param, message));
}

template <typename T>
T
get(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is) {
        throwTrace(DiagCode::TraceTruncated, "",
                   "trace file truncated in the header");
    }
    return v;
}

template <typename T>
T
load(const std::uint8_t *p)
{
    T v{};
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/**
 * Decode one 22-byte record and judge its plausibility. The field
 * bounds double as the resync heuristic: a random 22-byte window has
 * roughly a 2^-13 chance of passing all of them, so the reader locks
 * back onto real framing within a few records.
 */
bool
parseRecord(const std::uint8_t *p, Uop &u)
{
    u.pc = load<std::uint64_t>(p);
    const auto cls = p[8];
    if (cls > static_cast<std::uint8_t>(UopClass::Branch))
        return false;
    u.cls = static_cast<UopClass>(cls);
    u.src1 = static_cast<std::int8_t>(p[9]);
    u.src2 = static_cast<std::int8_t>(p[10]);
    u.dst = static_cast<std::int8_t>(p[11]);
    if (u.src1 >= kNumArchRegs || u.src2 >= kNumArchRegs ||
        u.dst >= kNumArchRegs || u.src1 < -1 || u.src2 < -1 ||
        u.dst < -1) {
        return false;
    }
    u.addr = load<std::uint64_t>(p + 12);
    u.memSize = p[20];
    if (u.memSize > 64)
        return false;
    const auto taken = p[21];
    if (taken > 1)
        return false;
    u.taken = taken != 0;
    return true;
}

/** Why a strict read rejects the record at @p p (for the message). */
const char *
describeBadRecord(const std::uint8_t *p)
{
    if (p[8] > static_cast<std::uint8_t>(UopClass::Branch))
        return "malformed uop class";
    const auto reg_ok = [](std::uint8_t b) {
        const auto r = static_cast<std::int8_t>(b);
        return r >= -1 && r < kNumArchRegs;
    };
    if (!reg_ok(p[9]) || !reg_ok(p[10]) || !reg_ok(p[11]))
        return "malformed uop registers";
    return "malformed uop record (memSize/taken out of range)";
}

} // namespace

void
TraceReadStats::registerStats(StatsGroup g)
{
    g.bindCounter("records_read", &recordsRead,
                  "trace records accepted by the reader");
    g.bindCounter("skipped_records", &skippedRecords,
                  "malformed trace records dropped (recovery mode)");
    g.bindCounter("resync_bytes", &resyncBytes,
                  "bytes slid over re-locking record framing");
    g.bindCounter("truncated_tail_bytes", &truncatedTailBytes,
                  "partial-record bytes discarded at end of stream");
    g.bindCounter("missing_records", &missingRecords,
                  "records promised by the header but absent");
    g.bindCounter("dropped_store_uops", &droppedStoreUops,
                  "orphaned STA/STD halves dropped re-pairing stores");
}

namespace
{

/**
 * Enforce the stream's structural invariant after recovery dropped
 * records: every STA is immediately followed by its STD and every STD
 * immediately follows its STA (the decomposition the generator emits
 * and the core's positional pairing assumes). Orphaned halves would
 * leave MOB stores that never complete — a guaranteed deadlock — so
 * they are dropped and accounted.
 */
std::vector<Uop>
repairStorePairs(std::vector<Uop> uops, TraceReadStats &st)
{
    std::vector<Uop> clean;
    clean.reserve(uops.size());
    for (std::size_t i = 0; i < uops.size(); ++i) {
        const Uop &u = uops[i];
        if (u.isSta()) {
            if (i + 1 < uops.size() && uops[i + 1].isStd()) {
                clean.push_back(u);
                clean.push_back(uops[i + 1]);
                ++i;
            } else {
                ++st.droppedStoreUops; // STD lost: drop the STA too
            }
        } else if (u.isStd()) {
            ++st.droppedStoreUops; // STA lost: the STD pairs nothing
        } else {
            clean.push_back(u);
        }
    }
    return clean;
}

} // namespace

void
writeTrace(std::ostream &os, const VecTrace &trace)
{
    os.write(kMagic, sizeof(kMagic));
    put<std::uint32_t>(os,
                       static_cast<std::uint32_t>(trace.name().size()));
    os.write(trace.name().data(),
             static_cast<std::streamsize>(trace.name().size()));
    put<std::uint64_t>(os, trace.size());
    for (const Uop &u : trace.uops()) {
        put<std::uint64_t>(os, u.pc);
        put<std::uint8_t>(os, static_cast<std::uint8_t>(u.cls));
        put<std::int8_t>(os, u.src1);
        put<std::int8_t>(os, u.src2);
        put<std::int8_t>(os, u.dst);
        put<std::uint64_t>(os, u.addr);
        put<std::uint8_t>(os, u.memSize);
        put<std::uint8_t>(os, u.taken ? 1 : 0);
    }
    if (!os) {
        throw IoError(makeDiag(DiagCode::IoWriteFailed,
                               "trace.serialize", "",
                               "trace write failed"));
    }
}

void
writeTraceFile(const std::string &path, const VecTrace &trace)
{
    std::ofstream f(path, std::ios::binary);
    if (!f) {
        throw IoError(makeDiag(DiagCode::IoOpenFailed,
                               "trace.serialize", "path",
                               "cannot open for write: " + path));
    }
    writeTrace(f, trace);
}

std::unique_ptr<VecTrace>
readTrace(std::istream &is, const TraceReadOptions &opts,
          TraceReadStats *stats)
{
    TraceReadStats local;
    TraceReadStats &st = stats ? *stats : local;

    // Header: never subject to recovery. A damaged header means we
    // cannot even trust the record framing, so fail outright.
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        throwTrace(DiagCode::TraceBadMagic, "magic",
                   "not an LRS trace file (expected LRSTRC01)");
    }

    const auto name_len = get<std::uint32_t>(is);
    if (name_len > 4096) {
        throwTrace(DiagCode::TraceBadHeader, "name_len",
                   "implausible trace name length " +
                       std::to_string(name_len) + " (max 4096)");
    }
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    if (!is) {
        throwTrace(DiagCode::TraceTruncated, "name",
                   "trace file truncated inside the name");
    }

    const auto count = get<std::uint64_t>(is);

    // Slurp the record bytes: recovery needs random access for the
    // framing resync, and even the strict path profits from one read.
    std::vector<std::uint8_t> buf(
        std::istreambuf_iterator<char>(is),
        std::istreambuf_iterator<char>{});

    std::vector<Uop> uops;
    // A corrupted count must not drive allocation: cap the reserve at
    // what the stream can physically hold.
    uops.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(count,
                                buf.size() / kTraceRecordBytes)));

    std::size_t off = 0;
    Uop u;
    while (uops.size() < count &&
           off + kTraceRecordBytes <= buf.size()) {
        if (parseRecord(buf.data() + off, u)) {
            uops.push_back(u);
            ++st.recordsRead;
            off += kTraceRecordBytes;
            continue;
        }
        if (!opts.recover) {
            throwTrace(DiagCode::TraceBadRecord,
                       "record " + std::to_string(uops.size()),
                       describeBadRecord(buf.data() + off));
        }
        ++st.skippedRecords;
        if (st.skippedRecords > opts.badRecordBudget) {
            throwTrace(
                DiagCode::TraceBudgetExceeded, "bad_record_budget",
                "skipped " + std::to_string(st.skippedRecords) +
                    " malformed records, budget allows " +
                    std::to_string(opts.badRecordBudget) +
                    " — the trace is damaged beyond graceful "
                    "degradation");
        }
        // Prefer preserved framing: bytes were corrupted in place, so
        // the next record boundary usually parses.
        const std::size_t next = off + kTraceRecordBytes;
        if (next + kTraceRecordBytes > buf.size() ||
            parseRecord(buf.data() + next, u)) {
            off = next;
            continue;
        }
        // Framing lost (bytes inserted/removed): slide one byte at a
        // time until some window parses again.
        std::size_t p = off + 1;
        while (p + kTraceRecordBytes <= buf.size() &&
               !parseRecord(buf.data() + p, u)) {
            ++p;
        }
        st.resyncBytes += p - off;
        off = p;
    }

    if (uops.size() < count) {
        st.missingRecords = count - uops.size();
        st.truncatedTailBytes = buf.size() - off;
        if (!opts.recover) {
            throwTrace(DiagCode::TraceTruncated, "records",
                       "trace file truncated: header promises " +
                           std::to_string(count) + " records, got " +
                           std::to_string(uops.size()));
        }
    }

    if (opts.recover &&
        (st.skippedRecords || st.missingRecords)) {
        uops = repairStorePairs(std::move(uops), st);
    }

    return std::make_unique<VecTrace>(std::move(name),
                                      std::move(uops));
}

std::unique_ptr<VecTrace>
readTraceFile(const std::string &path, const TraceReadOptions &opts,
              TraceReadStats *stats)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        throw IoError(makeDiag(DiagCode::IoOpenFailed,
                               "trace.serialize", "path",
                               "cannot open for read: " + path));
    }
    return readTrace(f, opts, stats);
}

} // namespace lrs
