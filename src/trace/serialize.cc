#include "trace/serialize.hh"

#include <array>
#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace lrs
{

namespace
{

constexpr char kMagic[8] = {'L', 'R', 'S', 'T', 'R', 'C', '0', '1'};

template <typename T>
void
put(std::ostream &os, T v)
{
    // The simulator only targets little-endian hosts; static-assert
    // rather than byte-swap.
    static_assert(std::endian::native == std::endian::little,
                  "serialisation assumes a little-endian host");
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
T
get(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        throw std::runtime_error("trace file truncated");
    return v;
}

} // namespace

void
writeTrace(std::ostream &os, const VecTrace &trace)
{
    os.write(kMagic, sizeof(kMagic));
    put<std::uint32_t>(os,
                       static_cast<std::uint32_t>(trace.name().size()));
    os.write(trace.name().data(),
             static_cast<std::streamsize>(trace.name().size()));
    put<std::uint64_t>(os, trace.size());
    for (const Uop &u : trace.uops()) {
        put<std::uint64_t>(os, u.pc);
        put<std::uint8_t>(os, static_cast<std::uint8_t>(u.cls));
        put<std::int8_t>(os, u.src1);
        put<std::int8_t>(os, u.src2);
        put<std::int8_t>(os, u.dst);
        put<std::uint64_t>(os, u.addr);
        put<std::uint8_t>(os, u.memSize);
        put<std::uint8_t>(os, u.taken ? 1 : 0);
    }
    if (!os)
        throw std::runtime_error("trace write failed");
}

void
writeTraceFile(const std::string &path, const VecTrace &trace)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        throw std::runtime_error("cannot open for write: " + path);
    writeTrace(f, trace);
}

std::unique_ptr<VecTrace>
readTrace(std::istream &is)
{
    char magic[8];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("not an LRS trace file");

    const auto name_len = get<std::uint32_t>(is);
    if (name_len > 4096)
        throw std::runtime_error("implausible trace name length");
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    if (!is)
        throw std::runtime_error("trace file truncated");

    const auto count = get<std::uint64_t>(is);
    std::vector<Uop> uops;
    uops.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        Uop u;
        u.pc = get<std::uint64_t>(is);
        const auto cls = get<std::uint8_t>(is);
        if (cls > static_cast<std::uint8_t>(UopClass::Branch))
            throw std::runtime_error("malformed uop class");
        u.cls = static_cast<UopClass>(cls);
        u.src1 = get<std::int8_t>(is);
        u.src2 = get<std::int8_t>(is);
        u.dst = get<std::int8_t>(is);
        if (u.src1 >= kNumArchRegs || u.src2 >= kNumArchRegs ||
            u.dst >= kNumArchRegs || u.src1 < -1 || u.src2 < -1 ||
            u.dst < -1) {
            throw std::runtime_error("malformed uop registers");
        }
        u.addr = get<std::uint64_t>(is);
        u.memSize = get<std::uint8_t>(is);
        u.taken = get<std::uint8_t>(is) != 0;
        uops.push_back(u);
    }
    return std::make_unique<VecTrace>(std::move(name),
                                      std::move(uops));
}

std::unique_ptr<VecTrace>
readTraceFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        throw std::runtime_error("cannot open for read: " + path);
    return readTrace(f);
}

} // namespace lrs
