#include "trace/uop.hh"

#include "common/stats.hh"

namespace lrs
{

const char *
uopClassName(UopClass cls)
{
    switch (cls) {
      case UopClass::IntAlu:    return "IntAlu";
      case UopClass::FpAlu:     return "FpAlu";
      case UopClass::Complex:   return "Complex";
      case UopClass::Load:      return "Load";
      case UopClass::StoreAddr: return "StoreAddr";
      case UopClass::StoreData: return "StoreData";
      case UopClass::Branch:    return "Branch";
    }
    return "?";
}

std::string
Uop::toString() const
{
    std::string s = strprintf("%-9s pc=0x%llx", uopClassName(cls),
                              static_cast<unsigned long long>(pc));
    if (dst >= 0)
        s += strprintf(" d=r%d", dst);
    if (src1 >= 0)
        s += strprintf(" s1=r%d", src1);
    if (src2 >= 0)
        s += strprintf(" s2=r%d", src2);
    if (addr != kAddrInvalid)
        s += strprintf(" [0x%llx]", static_cast<unsigned long long>(addr));
    if (isBranch())
        s += taken ? " T" : " NT";
    return s;
}

} // namespace lrs
