/**
 * @file
 * Binary trace serialisation.
 *
 * Lets users persist generated traces (for exact cross-machine
 * reproduction) or import uop streams produced by external tools
 * (e.g. a binary-instrumentation pipeline) instead of the synthetic
 * generator. The format is a fixed little-endian record stream with a
 * magic/version header; see writeTrace() for the layout.
 */

#ifndef LRS_TRACE_SERIALIZE_HH
#define LRS_TRACE_SERIALIZE_HH

#include <iosfwd>
#include <memory>
#include <string>

#include "trace/stream.hh"

namespace lrs
{

/**
 * Write @p trace to @p os.
 *
 * Layout: 8-byte magic "LRSTRC01", u32 name length, name bytes,
 * u64 uop count, then per uop: u64 pc, u8 class, i8 src1, i8 src2,
 * i8 dst, u64 addr, u8 memSize, u8 taken.
 *
 * @throws std::runtime_error on stream failure.
 */
void writeTrace(std::ostream &os, const VecTrace &trace);

/** Convenience: write to a file path. */
void writeTraceFile(const std::string &path, const VecTrace &trace);

/**
 * Read a trace previously written with writeTrace().
 *
 * @throws std::runtime_error on bad magic, truncation, or malformed
 *         records (out-of-range class or register numbers).
 */
std::unique_ptr<VecTrace> readTrace(std::istream &is);

/** Convenience: read from a file path. */
std::unique_ptr<VecTrace> readTraceFile(const std::string &path);

} // namespace lrs

#endif // LRS_TRACE_SERIALIZE_HH
