/**
 * @file
 * Binary trace serialisation.
 *
 * Lets users persist generated traces (for exact cross-machine
 * reproduction) or import uop streams produced by external tools
 * (e.g. a binary-instrumentation pipeline) instead of the synthetic
 * generator. The format is a fixed little-endian record stream with a
 * magic/version header; see writeTrace() for the layout.
 *
 * Two reading disciplines:
 *  - strict (default): the first malformed byte aborts the read with
 *    a TraceError. Right for traces the simulator itself wrote.
 *  - recovery (TraceReadOptions::recover): malformed records are
 *    skipped and the reader re-synchronises on the fixed record
 *    framing (sliding a byte at a time when the framing itself is
 *    damaged), so a mostly-good trace from an external producer still
 *    simulates. Every drop is accounted in TraceReadStats ("trace.*"
 *    in the stats registry), and a configurable bad-record budget
 *    turns "mostly good" into a hard failure when exceeded —
 *    degradation is graceful but never silent.
 */

#ifndef LRS_TRACE_SERIALIZE_HH
#define LRS_TRACE_SERIALIZE_HH

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>

#include "common/diag.hh"
#include "common/stats_registry.hh"
#include "trace/stream.hh"

namespace lrs
{

/** Serialized size of one uop record, in bytes. */
constexpr std::size_t kTraceRecordBytes = 22;

/** Policy for tolerant trace reading. */
struct TraceReadOptions
{
    /** Skip malformed records instead of throwing on the first. */
    bool recover = false;
    /**
     * Give up (TraceError, E_TRACE_BUDGET_EXCEEDED) once more than
     * this many records were dropped: a trace that is mostly garbage
     * should fail loudly, not simulate quietly on its few survivors.
     */
    std::uint64_t badRecordBudget =
        std::numeric_limits<std::uint64_t>::max();
};

/** Accounting of one tolerant read (all zero after a clean read). */
struct TraceReadStats
{
    std::uint64_t recordsRead = 0;    ///< records accepted
    std::uint64_t skippedRecords = 0; ///< malformed records dropped
    std::uint64_t resyncBytes = 0;    ///< bytes slid over hunting framing
    std::uint64_t truncatedTailBytes = 0; ///< partial record at EOF
    /** Records promised by the header but missing from the stream. */
    std::uint64_t missingRecords = 0;
    /**
     * Store-half uops dropped to restore STA/STD pairing: the core
     * pairs an STD with the STA directly before it, so when recovery
     * drops one half of a store the surviving half must go too or the
     * MOB wedges on a store that never completes.
     */
    std::uint64_t droppedStoreUops = 0;

    /** Bind these counters under @p g (conventionally "trace"). */
    void registerStats(StatsGroup g);
};

/**
 * Write @p trace to @p os.
 *
 * Layout: 8-byte magic "LRSTRC01", u32 name length, name bytes,
 * u64 uop count, then per uop: u64 pc, u8 class, i8 src1, i8 src2,
 * i8 dst, u64 addr, u8 memSize, u8 taken.
 *
 * @throws IoError on stream failure.
 */
void writeTrace(std::ostream &os, const VecTrace &trace);

/** Convenience: write to a file path. */
void writeTraceFile(const std::string &path, const VecTrace &trace);

/**
 * Read a trace previously written with writeTrace().
 *
 * @throws TraceError on bad magic, truncation, or malformed records
 *         (out-of-range class or register numbers) in strict mode;
 *         in recovery mode, only on bad magic/header or an exhausted
 *         bad-record budget.
 */
std::unique_ptr<VecTrace> readTrace(std::istream &is,
                                    const TraceReadOptions &opts = {},
                                    TraceReadStats *stats = nullptr);

/** Convenience: read from a file path. */
std::unique_ptr<VecTrace>
readTraceFile(const std::string &path,
              const TraceReadOptions &opts = {},
              TraceReadStats *stats = nullptr);

} // namespace lrs

#endif // LRS_TRACE_SERIALIZE_HH
