/**
 * @file
 * Parameters of the synthetic workload generator.
 *
 * The paper evaluates on seven groups of proprietary IA-32 traces
 * (SpecInt95, SpecFP95, SysmarkNT, Sysmark95, Games, Java, TPC). Those
 * traces are not available, so we synthesise uop streams whose
 * *load-related behaviour* matches what the paper's mechanisms exploit:
 * recurrent per-PC collision behaviour (stack push / parameter-load and
 * register save / restore pairs), a ~10/60/30 colliding /
 * non-colliding / non-conflicting load mix, >95% L1 hit rates with
 * per-PC-clustered misses, and per-PC-predictable bank streams.
 * See DESIGN.md section 2 for the substitution rationale.
 */

#ifndef LRS_TRACE_PARAMS_HH
#define LRS_TRACE_PARAMS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace lrs
{

/**
 * The paper's seven trace groups, plus two of our own: Adversarial
 * (hostile synthetic families stressing the predictors — see
 * docs/TRACES.md) and External (traces ingested from ChampSim files
 * rather than synthesised).
 */
enum class TraceGroup
{
    SpecInt95,
    SpecFP95,
    SysmarkNT,
    Sysmark95,
    Games,
    Java,
    TPC,
    Adversarial,
    External,
};

/** Short display name used in bench output ("ISPEC", "NT", ...). */
const char *traceGroupName(TraceGroup g);

/**
 * Knobs of one synthetic trace.
 *
 * The weights (@c wCall .. @c wGlobal) select which code construct the
 * generator emits next; each construct produces a characteristic
 * load/store pattern:
 *  - call blocks: argument pushes followed by parameter loads (short-
 *    distance colliding pairs) and register save/restore pairs (long-
 *    distance colliders, window-size sensitive);
 *  - array loops: strided loads/stores, conflicting but non-colliding,
 *    hit rate set by stride vs line size and footprint vs cache size;
 *  - pointer chases: loads to pseudo-random lines of a region,
 *    mostly missing when the region exceeds the cache;
 *  - global read-modify-write sites: recurrent same-address collisions
 *    with optional phase changes (store phase vs read-only phase).
 */
struct TraceParams
{
    std::string name = "anon";
    TraceGroup group = TraceGroup::SysmarkNT;
    std::uint64_t seed = 1;
    /** Number of dynamic uops to emit. */
    std::uint64_t length = 200000;

    // --- construct mix weights (relative, need not sum to 1) ---
    double wCall = 1.0;
    double wArrayLoop = 1.0;
    double wChase = 0.3;
    double wGlobal = 0.5;

    // --- call/function shape ---
    int numFunctions = 24;
    int maxCallDepth = 3;
    int minArgs = 1, maxArgs = 4;
    int minSaves = 1, maxSaves = 3;
    int minBodyBlocks = 2, maxBodyBlocks = 5;
    /** Probability a body block is itself a (nested) call. */
    double nestedCallProb = 0.2;
    /**
     * Fraction of call sites passing arguments in registers (fastcall)
     * — no memory pushes, so no push/param-load collision pairs.
     */
    double regArgsFrac = 0.4;
    /** Probability a body block spills and refills a stack local. */
    double spillFrac = 0.5;

    // --- array loop shape ---
    int numLoops = 16;
    int minIters = 6, maxIters = 12;
    /** Candidate strides in bytes for non-streaming loops. */
    std::vector<std::uint32_t> strides = {8, 8, 16, 16};
    /** Per-loop array footprint in bytes (non-streaming loops). */
    std::uint64_t minArrayBytes = 512, maxArrayBytes = 2048;
    /**
     * Fraction of static loops that stream: line-sized stride over a
     * footprint larger than L1, so every access misses — the per-PC
     * always-miss pattern hit-miss predictors catch easily.
     */
    double streamingFrac = 0.03;
    std::uint64_t streamingBytes = 64 * 1024;
    /** Probability a loop body also stores to a second array. */
    double loopStoreProb = 0.5;
    /**
     * Probability a loop store is indirect: its STA address depends on
     * the loaded value, delaying address resolution (the unknown-
     * address stores that make following loads *conflicting*).
     */
    double indirectStoreFrac = 0.12;
    /** ALU ops per loop body. */
    int loopAluOps = 3;

    // --- pointer chase shape ---
    int numChases = 6;
    std::uint64_t chaseFootprint = 12 * 1024; ///< aggregate bytes
    int minChaseLen = 4, maxChaseLen = 16;     ///< loads per chase run
    /** Fraction of chase runs that are truly serialised (load->load). */
    double chaseSerialFrac = 0.3;

    // --- globals ---
    int numGlobals = 24;
    /** Uses between mode flips of a phase-changing global (0 = never). */
    int globalPhaseLen = 0;
    /** Fraction of global sites that are read-modify-write (colliding). */
    double globalRmwFrac = 0.6;
    /** Probability an RMW site re-loads the global after the store. */
    double globalReloadProb = 0.7;
    /**
     * Fraction of global sites whose collision behaviour is decided
     * by a preceding conditional branch (taken -> RMW store before
     * the reload, not-taken -> read only). A path-indexed CHT can
     * separate the two behaviours of the reload PC; a plain PC-
     * indexed one cannot (the paper's trace-cache-hint observation).
     */
    double pathCorrGlobalFrac = 0.15;
    /**
     * Fraction of RMW global sites whose store has a LATE address
     * (computed index) but EARLY data: the reload behind it is the
     * paper's speculative value-forwarding opportunity — the
     * exclusive predictor's distance pairing can hand it the store
     * data before the STA resolves.
     */
    double lateAddrGlobalFrac = 0.25;

    // --- instruction mix ---
    /** Fraction of body ALU ops that are FP. */
    double fpFrac = 0.1;
    /** Fraction of body ALU ops that are complex (multi-cycle). */
    double complexFrac = 0.05;
    /** Taken-probability of data-dependent branches. */
    double dataBranchBias = 0.85;
    /** Probability of inserting a data-dependent branch per block. */
    double dataBranchProb = 0.12;

    // --- adversarial constructs (docs/TRACES.md) ---
    /**
     * Weight of SPOILER-style 4K-aliasing storm bursts: a store
     * followed by loads whose addresses share its page offset but
     * live on different pages, so partial-address disambiguation
     * (MachineConfig::mobPartialBits) sees a collision where the full
     * addresses are disjoint. 0 disables the construct entirely —
     * traces that never set it are byte-identical to before it
     * existed.
     */
    double wAlias = 0.0;
    /** Static alias-storm sites. */
    int numAliasSites = 8;
    /** Loads per storm burst (each on a fresh page). */
    int aliasFanout = 6;
    /**
     * Fraction of storm loads that really do collide with the store
     * (same full address) — the signal a partial-matching MOB must
     * separate from the 4K-alias noise.
     */
    double aliasTrueFrac = 0.15;
    /**
     * Flip every alias site's collision behaviour in lockstep every
     * this many bursts (0 = never): the "flipper" family's weapon
     * against CHT training, inverting collide/no-collide at the very
     * moment the table has converged.
     */
    int aliasPhaseLen = 0;
    /** Probability a chase run marks visited nodes (GC-style store). */
    double chaseStoreProb = 0.0;

    // --- external (ChampSim) source ---
    /**
     * Non-empty: ingest this ChampSim trace file instead of
     * synthesising ("-" = stdin; single runs only). The name of such
     * a trace is its "champsim:PATH" spec; `length` caps the
     * instructions read.
     */
    std::string champsimPath;
    /** Tolerant-read discipline for the ChampSim source. */
    bool champsimRecover = false;
    /** Bad-record budget when recovering (see TraceReadOptions). */
    std::uint64_t champsimBadRecordBudget =
        std::uint64_t(0) - 1; // max: unlimited unless configured
    /** Hard cap on distinct 4KiB pages touched. */
    std::uint64_t champsimMaxPages = std::uint64_t(1) << 20;
    /** Hard cap on source size in bytes. */
    std::uint64_t champsimMaxFileBytes = std::uint64_t(1) << 31;
};

} // namespace lrs

#endif // LRS_TRACE_PARAMS_HH
