/**
 * @file
 * Trace stream abstraction and the materialised in-memory trace.
 *
 * The simulator is trace driven (paper section 3): it consumes a
 * sequence of uops in correct-path program order. Benches run the same
 * trace under several machine configurations, so traces are generated
 * once and materialised into a vector.
 */

#ifndef LRS_TRACE_STREAM_HH
#define LRS_TRACE_STREAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "trace/uop.hh"

namespace lrs
{

/**
 * A replayable stream of uops in program order.
 */
class TraceStream
{
  public:
    virtual ~TraceStream() = default;

    /** Next uop, or nullptr at end of trace. */
    virtual const Uop *next() = 0;

    /** Restart the stream from the beginning. */
    virtual void reset() = 0;

    /** Human-readable trace name. */
    virtual const std::string &name() const = 0;

    /** Total number of uops in the trace. */
    virtual std::size_t size() const = 0;

    /**
     * Reposition the cursor so the next() call returns uop @p n (or
     * end-of-trace when @p n >= size()). Snapshot restore
     * (core/snapshot.hh) uses this to fast-forward a fresh stream to
     * where the checkpointed machine had consumed it. The default
     * replays the stream from the start; materialised traces override
     * it with a direct cursor move.
     */
    virtual void
    seek(std::size_t n)
    {
        reset();
        for (std::size_t i = 0; i < n; ++i) {
            if (!next())
                break;
        }
    }

    /**
     * Content identity of an externally ingested trace: the byte count
     * and CRC-32 of the source bytes the decoder consumed. Zero for
     * synthesised traces (whose identity is their name + length — both
     * already checked on snapshot restore). Snapshot restore uses this
     * to refuse a checkpoint taken from a since-modified trace file.
     */
    virtual std::uint64_t contentBytes() const { return 0; }
    virtual std::uint32_t contentCrc() const { return 0; }
};

/**
 * A trace fully materialised in memory.
 */
class VecTrace : public TraceStream
{
  public:
    VecTrace(std::string name, std::vector<Uop> uops)
        : name_(std::move(name)), uops_(std::move(uops))
    {
    }

    const Uop *
    next() override
    {
        if (pos_ >= uops_.size())
            return nullptr;
        return &uops_[pos_++];
    }

    void reset() override { pos_ = 0; }
    const std::string &name() const override { return name_; }
    std::size_t size() const override { return uops_.size(); }

    void
    seek(std::size_t n) override
    {
        pos_ = n < uops_.size() ? n : uops_.size();
    }

    /** Direct access for analyses that want random access. */
    const std::vector<Uop> &uops() const { return uops_; }

    /** Stamp the source-content identity (external readers only). */
    void
    setContentId(std::uint64_t bytes, std::uint32_t crc)
    {
        contentBytes_ = bytes;
        contentCrc_ = crc;
    }

    std::uint64_t contentBytes() const override { return contentBytes_; }
    std::uint32_t contentCrc() const override { return contentCrc_; }

  private:
    std::string name_;
    std::vector<Uop> uops_;
    std::size_t pos_ = 0;
    std::uint64_t contentBytes_ = 0;
    std::uint32_t contentCrc_ = 0;
};

} // namespace lrs

#endif // LRS_TRACE_STREAM_HH
