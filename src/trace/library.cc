#include "trace/library.hh"

#include <cassert>
#include <stdexcept>

#include "common/random.hh"
#include "trace/champsim_reader.hh"
#include "trace/synthetic.hh"

namespace lrs
{

namespace
{

/** FNV-1a, for deriving per-trace seeds from names. */
std::uint64_t
hashName(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Base parameter profile of a trace group (before per-trace jitter). */
TraceParams
groupBase(TraceGroup g)
{
    TraceParams p;
    p.group = g;
    switch (g) {
      case TraceGroup::SpecInt95:
        // Call-heavy integer codes: pointer work resident mostly in L2,
        // frequent short-distance stack collisions.
        p.wCall = 0.9; p.wArrayLoop = 1.2; p.wChase = 0.15;
        p.wGlobal = 0.5;
        p.chaseFootprint = 12 * 1024;
        p.fpFrac = 0.04; p.complexFrac = 0.05;
        p.dataBranchProb = 0.15;
        p.globalPhaseLen = 0;
        break;
      case TraceGroup::SpecFP95:
        // Loop/streaming dominated: long strided loops, several with
        // line-sized strides (per-PC always-miss streams -> highly
        // predictable misses), few calls and few collisions.
        p.wCall = 0.3; p.wArrayLoop = 2.2; p.wChase = 0.05;
        p.wGlobal = 0.3;
        p.streamingFrac = 0.07;
        p.streamingBytes = 128 * 1024;
        p.minArrayBytes = 1024; p.maxArrayBytes = 8 * 1024;
        p.minIters = 12; p.maxIters = 32;
        p.fpFrac = 0.55; p.complexFrac = 0.08;
        p.dataBranchProb = 0.06;
        p.loopAluOps = 4;
        break;
      case TraceGroup::SysmarkNT:
        // Office/NT mix: the most collision-rich group, with
        // phase-changing global sites.
        p.wCall = 0.8; p.wArrayLoop = 1.6; p.wChase = 0.15;
        p.wGlobal = 0.55;
        p.globalPhaseLen = 40;
        p.globalRmwFrac = 0.65;
        p.indirectStoreFrac = 0.18;
        p.chaseFootprint = 12 * 1024;
        p.fpFrac = 0.06;
        break;
      case TraceGroup::Sysmark95:
        p.wCall = 0.8; p.wArrayLoop = 1.4; p.wChase = 0.25;
        p.wGlobal = 0.4;
        p.globalRmwFrac = 0.4;
        p.chaseFootprint = 10 * 1024;
        p.fpFrac = 0.08;
        break;
      case TraceGroup::Games:
        // FP/array mixed with irregular chases.
        p.wCall = 0.8; p.wArrayLoop = 1.5; p.wChase = 0.4;
        p.wGlobal = 0.5;
        p.chaseFootprint = 24 * 1024;
        p.streamingFrac = 0.06;
        p.fpFrac = 0.35;
        p.globalRmwFrac = 0.4;
        break;
      case TraceGroup::Java:
        // Deep call trees and RMW-heavy object fields.
        p.wCall = 1.5; p.wArrayLoop = 0.8; p.wChase = 0.25;
        p.wGlobal = 0.7;
        p.maxCallDepth = 4;
        p.minArgs = 2; p.maxArgs = 5;
        p.minSaves = 2; p.maxSaves = 4;
        p.globalRmwFrac = 0.8;
        p.chaseFootprint = 10 * 1024;
        break;
      case TraceGroup::TPC:
        // Transaction processing: working set far beyond the caches.
        p.wCall = 1.0; p.wArrayLoop = 0.7; p.wChase = 0.4;
        p.wGlobal = 0.8;
        p.chaseFootprint = 64 * 1024;
        p.minChaseLen = 3; p.maxChaseLen = 10;
        p.chaseSerialFrac = 0.5;
        p.globalRmwFrac = 0.5;
        break;
      case TraceGroup::Adversarial:
        // Hostile families; the real shape comes from familyTune().
        p.wCall = 0.3; p.wArrayLoop = 0.3; p.wChase = 0.1;
        p.wGlobal = 0.3;
        break;
      case TraceGroup::External:
        // Ingested (ChampSim) traces: the generator never runs.
        break;
    }
    return p;
}

/**
 * Per-family shape of the adversarial traces (docs/TRACES.md). Each
 * is built to hurt one predictor specifically.
 */
void
familyTune(TraceParams &p)
{
    if (p.name == "spoiler4k") {
        // SPOILER-style 4K-aliasing collision storm: saturate
        // partial-address disambiguation with same-page-offset,
        // different-page load/store pairs.
        p.wAlias = 2.5;
        p.numAliasSites = 12;
        p.aliasFanout = 8;
        p.aliasTrueFrac = 0.15;
    } else if (p.name == "flipper") {
        // Phase-shifting collision flipper: every colliding site in
        // the trace inverts behaviour in lockstep, repeatedly, right
        // as the CHT converges.
        p.wAlias = 0.8;
        p.aliasPhaseLen = 16;
        p.numAliasSites = 8;
        p.aliasTrueFrac = 0.5;
        p.wGlobal = 1.8;
        p.globalRmwFrac = 0.9;
        p.globalPhaseLen = 24;
        p.globalReloadProb = 0.9;
        p.wCall = 0.3; p.wArrayLoop = 0.4; p.wChase = 0.05;
    } else if (p.name == "gcmark") {
        // GC-like mark phase: serialised pointer chases over a
        // far-beyond-L2 heap with visited-bit stores — L1 hit rate
        // collapses and per-PC hit/miss history turns incoherent.
        p.wChase = 2.5;
        p.numChases = 10;
        p.chaseFootprint = 768 * 1024;
        p.minChaseLen = 8; p.maxChaseLen = 24;
        p.chaseSerialFrac = 0.8;
        p.chaseStoreProb = 0.35;
        p.wCall = 0.2; p.wArrayLoop = 0.2; p.wGlobal = 0.3;
    }
}

/** Deterministic per-trace variation so traces within a group differ. */
void
jitter(TraceParams &p)
{
    Rng r(hashName(p.name) ^ 0xabcdef12345ULL);
    auto scale = [&](double &v, double lo, double hi) {
        v *= lo + (hi - lo) * r.uniform();
    };
    scale(p.wCall, 0.7, 1.4);
    scale(p.wArrayLoop, 0.7, 1.4);
    scale(p.wChase, 0.6, 1.6);
    scale(p.wGlobal, 0.7, 1.4);
    p.chaseFootprint = static_cast<std::uint64_t>(
        p.chaseFootprint * (0.6 + 0.9 * r.uniform()));
    p.numFunctions = 16 + static_cast<int>(r.below(16));
    p.numLoops = 8 + static_cast<int>(r.below(6));
    p.numGlobals = 16 + static_cast<int>(r.below(16));
    p.seed = hashName(p.name) | 1;
}

const std::vector<std::pair<TraceGroup, std::vector<std::string>>> &
catalog()
{
    static const std::vector<
        std::pair<TraceGroup, std::vector<std::string>>> kCatalog = {
        {TraceGroup::SpecInt95,
         {"go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl",
          "vortex"}},
        {TraceGroup::SpecFP95,
         {"tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu",
          "turb3d", "apsi", "fpppp", "wave5"}},
        {TraceGroup::SysmarkNT,
         {"cd", "ex", "fl", "pd", "pm", "pp", "wd", "wp"}},
        {TraceGroup::Sysmark95,
         {"access", "excel", "word", "ppoint", "corel", "pmake",
          "lotus", "works"}},
        {TraceGroup::Games,
         {"quake", "descent", "flight", "pinball", "monster"}},
        {TraceGroup::Java, {"javac", "jess", "db", "mtrt", "jack"}},
        {TraceGroup::TPC, {"tpcc", "tpcd"}},
        {TraceGroup::Adversarial, {"spoiler4k", "flipper", "gcmark"}},
    };
    return kCatalog;
}

} // namespace

std::vector<TraceParams>
TraceLibrary::group(TraceGroup g, std::uint64_t length)
{
    std::vector<TraceParams> out;
    for (const auto &[grp, names] : catalog()) {
        if (grp != g)
            continue;
        for (const auto &n : names) {
            TraceParams p = groupBase(g);
            p.name = n;
            p.length = length;
            familyTune(p);
            jitter(p);
            out.push_back(p);
        }
    }
    return out;
}

TraceParams
TraceLibrary::byName(const std::string &name, std::uint64_t length)
{
    // "champsim:PATH" names an ingested external trace. Resolving the
    // spec is cheap and deterministic; the file itself is only opened
    // (and validated) by make().
    if (name.rfind("champsim:", 0) == 0) {
        const std::string path = name.substr(9);
        if (path.empty()) {
            throw std::invalid_argument(
                "champsim trace spec needs a path: champsim:PATH");
        }
        if (path == "-") {
            // stdin is single-pass; grid cells (and warmup snapshots)
            // re-read the source per cell.
            throw std::invalid_argument(
                "'champsim:-' (stdin) cannot be used here — pipe to "
                "'lrs_sim --champsim -' for a single run instead");
        }
        TraceParams p;
        p.group = TraceGroup::External;
        p.name = name;
        p.length = length;
        p.champsimPath = path;
        p.seed = hashName(name) | 1;
        return p;
    }
    for (const auto &[grp, names] : catalog()) {
        for (const auto &n : names) {
            if (n == name) {
                TraceParams p = groupBase(grp);
                p.name = n;
                p.length = length;
                familyTune(p);
                jitter(p);
                return p;
            }
        }
    }
    throw std::invalid_argument("unknown trace name: " + name);
}

std::vector<std::string>
TraceLibrary::names(TraceGroup g)
{
    for (const auto &[grp, names] : catalog())
        if (grp == g)
            return names;
    return {};
}

std::unique_ptr<VecTrace>
TraceLibrary::make(const TraceParams &p)
{
    if (!p.champsimPath.empty()) {
        ChampSimReadOptions o;
        o.read.recover = p.champsimRecover;
        o.read.badRecordBudget = p.champsimBadRecordBudget;
        o.maxInstructions = p.length;
        o.maxPages = p.champsimMaxPages;
        o.maxFileBytes = p.champsimMaxFileBytes;
        return readChampSimFile(p.champsimPath, o);
    }
    return generateTrace(p);
}

} // namespace lrs
