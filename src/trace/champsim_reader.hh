/**
 * @file
 * ChampSim trace ingestion — the hostile-input front end.
 *
 * ChampSim distributes instruction traces as a raw stream of fixed
 * 64-byte little-endian `input_instr` records (no header, no framing,
 * usually xz-compressed on disk):
 *
 *   offset  field
 *   ------  ----------------------------------------------
 *    0      u64 ip          instruction pointer
 *    8      u8  is_branch   0/1
 *    9      u8  branch_taken 0/1 (only with is_branch)
 *   10      u8  destination_registers[2]   0 = none
 *   12      u8  source_registers[4]        0 = none
 *   16      u64 destination_memory[2]      0 = none
 *   32      u64 source_memory[4]           0 = none
 *
 * These files come from outside the trust boundary: they are
 * downloaded, re-hosted, re-compressed and occasionally torn. This
 * reader therefore treats every byte as adversarial:
 *
 *  - plausibility validation of each record before decode (the same
 *    bounds double as the recovery resync heuristic — a random
 *    64-byte window passes with probability ~2^-14);
 *  - strict mode throws a classified TraceError (E_TRACE_*) at the
 *    first malformed record, naming its record index and byte offset;
 *  - recovery mode (TraceReadOptions::recover) skips damaged records,
 *    re-locks framing by sliding a byte at a time, and enforces the
 *    bad-record budget so a mostly-garbage file still fails loudly;
 *  - hard resource caps: maximum file bytes and maximum distinct
 *    4 KiB pages touched (E_TRACE_LIMIT_EXCEEDED when exceeded), plus
 *    a maximum instruction count that truncates like `--len`;
 *  - bounded memory: the stream is decoded through a fixed-size
 *    window, never slurped, so `-` (stdin) works and a multi-GB file
 *    cannot balloon the resident set beyond the decoded uops;
 *  - a torn tail (file ends mid-record) is an error in strict mode
 *    and accounted tolerance in recovery mode.
 *
 * Decode mapping (see docs/TRACES.md): every uop of an instruction
 * carries pc = ip (instruction-granularity predictor indexing, as on
 * real hardware); each non-zero source_memory slot becomes a Load;
 * each non-zero destination_memory slot becomes an STA+STD pair
 * (emitted adjacently, so the core's positional pairing invariant
 * holds by construction); is_branch becomes a Branch uop; an
 * instruction with neither memory nor branch work becomes one ALU uop.
 */

#ifndef LRS_TRACE_CHAMPSIM_READER_HH
#define LRS_TRACE_CHAMPSIM_READER_HH

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>

#include "trace/serialize.hh"
#include "trace/stream.hh"

namespace lrs
{

/** Size of one ChampSim input_instr record, in bytes. */
constexpr std::size_t kChampSimRecordBytes = 64;

/** Policy for reading one ChampSim trace. */
struct ChampSimReadOptions
{
    /** Strict/recovery discipline, shared with the LRSTRC reader. */
    TraceReadOptions read;
    /**
     * Stop after this many instructions (records) — the ChampSim
     * equivalent of `--len`. 0 = read the whole stream.
     */
    std::uint64_t maxInstructions = 0;
    /**
     * Refuse (E_TRACE_LIMIT_EXCEEDED) a trace touching more distinct
     * 4 KiB pages than this: a bound on the page-tracking set and a
     * tripwire for address-field garbage that validation cannot see.
     */
    std::uint64_t maxPages = 1u << 20;
    /**
     * Refuse (E_TRACE_LIMIT_EXCEEDED) a source larger than this many
     * bytes — a decompression bomb piped through stdin must not run
     * the host out of memory before maxInstructions can bite.
     */
    std::uint64_t maxFileBytes = 1ull << 31;
};

/** What was actually ingested (identity + resource accounting). */
struct ChampSimTraceInfo
{
    /** Bytes fetched from the source (the identity domain). */
    std::uint64_t bytes = 0;
    /** CRC-32 over those bytes; snapshot restore validates it. */
    std::uint32_t crc = 0;
    /** Instructions (records) accepted. */
    std::uint64_t instructions = 0;
    /** Distinct 4 KiB pages touched by memory operands. */
    std::uint64_t pages = 0;
};

/**
 * Field-bounds plausibility of one 64-byte window. Exposed for the
 * `--check-journal` file sniffer and the fuzzer harness.
 */
bool champSimRecordPlausible(const std::uint8_t *p);

/**
 * Cheap sniff: does @p path look like a raw ChampSim trace? True when
 * the head of the file is a run of plausible 64-byte records. Never
 * throws (unreadable file → false).
 */
bool looksLikeChampSimFile(const std::string &path);

/**
 * Decode a ChampSim record stream into a materialised trace named
 * @p name. The returned trace carries the source byte count and CRC
 * (VecTrace::contentBytes()/contentCrc()) for snapshot identity.
 *
 * @throws TraceError (E_TRACE_BAD_RECORD / E_TRACE_TRUNCATED /
 *         E_TRACE_BUDGET_EXCEEDED / E_TRACE_LIMIT_EXCEEDED) as
 *         described in the file comment.
 */
std::unique_ptr<VecTrace>
readChampSimTrace(std::istream &is, const std::string &name,
                  const ChampSimReadOptions &opts = {},
                  TraceReadStats *stats = nullptr,
                  ChampSimTraceInfo *info = nullptr);

/**
 * Convenience: read from @p path; "-" reads stdin (single pass — a
 * piped trace cannot be re-read, so grids reject it).
 *
 * @throws IoError (E_IO_OPEN_FAILED) when the file cannot be opened.
 */
std::unique_ptr<VecTrace>
readChampSimFile(const std::string &path,
                 const ChampSimReadOptions &opts = {},
                 TraceReadStats *stats = nullptr,
                 ChampSimTraceInfo *info = nullptr);

} // namespace lrs

#endif // LRS_TRACE_CHAMPSIM_READER_HH
