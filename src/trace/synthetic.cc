#include "trace/synthetic.hh"

#include <algorithm>
#include <cassert>

#include "common/random.hh"

namespace lrs
{

namespace
{

/** Base linear addresses of the synthetic address-space regions. */
constexpr Addr kCodeBase = 0x00400000;
constexpr Addr kGlobalBase = 0x00800000;
constexpr Addr kArrayBase = 0x10000000;
constexpr Addr kAliasBase = 0x20000000;
constexpr Addr kChaseBase = 0x40000000;
constexpr Addr kStackTop = 0x7fff0000;

/** PC space reserved per static construct. */
constexpr Addr kFuncPcStride = 0x2000;
constexpr Addr kLoopPcStride = 0x100;
constexpr Addr kChasePcStride = 0x100;
constexpr Addr kGlobalPcStride = 0x40;
constexpr Addr kAliasPcStride = 0x80;

/** Static shape of one synthetic function. */
struct FuncShape
{
    Addr pcBase;
    int numArgs;
    int numSaves;
    int numBodyBlocks;
    bool regArgs; // fastcall: arguments in registers, no pushes
    std::uint64_t frameBytes;
};

/** Static shape of one strided array loop. */
struct LoopShape
{
    Addr pcBase;
    Addr arrayBase;
    Addr storeBase;       // second array, used when hasStore
    std::uint64_t bytes;  // footprint of each array
    std::uint32_t stride;
    bool hasStore;
    bool indirectStore;   // STA address depends on the loaded value
    std::uint64_t iters;  // nominal trip count (stable per site, so
                          // the loop-exit branch is learnable)
    std::uint64_t pos = 0; // persistent walking offset (wraps)
};

/** Static shape of one pointer-chase region. */
struct ChaseShape
{
    Addr pcBase;
    Addr regionBase;
    std::uint64_t bytes;
    std::uint64_t len; // nominal run length (stable per site)
};

/**
 * Static shape of one SPOILER-style 4K-alias storm site: a store
 * followed by a fan of loads whose addresses share the store's page
 * offset, all but a few on different pages.
 */
struct AliasShape
{
    Addr pcBase;
    Addr storeAddr;
    std::uint64_t bursts = 0;
};

/** Static shape of one global variable access site. */
struct GlobalShape
{
    Addr pcBase;
    Addr addr;
    bool rmw;             // has a store between the two loads
    bool pathCorr = false; // collision decided by a preceding branch
    bool lateAddr = false; // store address resolves after its data
    std::uint64_t uses = 0;
};

/**
 * The generator: builds static shapes, then emits the dynamic stream.
 */
class Generator
{
  public:
    explicit Generator(const TraceParams &p)
        : p_(p), shapeRng_(p.seed * 2654435761u + 17),
          rng_(p.seed * 0x9e3779b97f4a7c15ULL + 3)
    {
        buildShapes();
        out_.reserve(p_.length + 256);
    }

    std::vector<Uop>
    run()
    {
        sp_ = kStackTop;
        // Normalise mix weights into a cumulative distribution. The
        // adversarial wAlias construct sits LAST so that traces with
        // wAlias == 0 draw identical picks to before it existed
        // (adding 0.0 changes neither wsum nor any threshold).
        const double wsum = p_.wCall + p_.wArrayLoop + p_.wChase +
                            p_.wGlobal + p_.wAlias;
        assert(wsum > 0.0);
        std::uint64_t picks = 0;
        while (out_.size() < p_.length) {
            // Programs execute in phases: only a sliding window of
            // the static loops/chases is active at a time, and a
            // chosen construct repeats in a burst. Both give the
            // temporal locality real cache hit rates come from.
            const std::size_t phase = picks / 96;
            ++picks;
            const double r = rng_.uniform() * wsum;
            const auto burst_len = rng_.burst(0.6, 6);
            if (r < p_.wCall) {
                emitCall(pickFunc(), 0);
            } else if (r < p_.wCall + p_.wArrayLoop) {
                if (!streamLoops_.empty() &&
                    rng_.chance(p_.streamingFrac)) {
                    // Streaming sweeps are rare relative to hot loops
                    // and never burst — they are pure cache pollution.
                    emitLoop(streamLoops_[streamRr_++ %
                                          streamLoops_.size()]);
                } else {
                    const std::size_t active = 4;
                    LoopShape &l =
                        loops_[(phase + rng_.below(active)) %
                               loops_.size()];
                    for (std::uint64_t b = 0;
                         b < burst_len && out_.size() < p_.length; ++b)
                        emitLoop(l);
                }
            } else if (r < p_.wCall + p_.wArrayLoop + p_.wChase) {
                ChaseShape &c =
                    chases_[(phase / 4 + rng_.below(2)) %
                            chases_.size()];
                for (std::uint64_t b = 0;
                     b < burst_len && out_.size() < p_.length; ++b)
                    emitChase(c);
            } else if (r < p_.wCall + p_.wArrayLoop + p_.wChase +
                               p_.wGlobal ||
                       aliasSites_.empty()) {
                emitGlobal(globals_[(phase + rng_.below(8)) %
                                    globals_.size()]);
            } else {
                AliasShape &s =
                    aliasSites_[(phase + rng_.below(4)) %
                                aliasSites_.size()];
                for (std::uint64_t b = 0;
                     b < burst_len && out_.size() < p_.length; ++b)
                    emitAliasStorm(s);
            }
        }
        out_.resize(p_.length);
        return std::move(out_);
    }

  private:
    void
    buildShapes()
    {
        funcs_.reserve(p_.numFunctions);
        for (int f = 0; f < p_.numFunctions; ++f) {
            FuncShape fs;
            fs.pcBase = kCodeBase + f * kFuncPcStride;
            fs.numArgs = static_cast<int>(
                shapeRng_.between(p_.minArgs, p_.maxArgs));
            fs.numSaves = static_cast<int>(
                shapeRng_.between(p_.minSaves, p_.maxSaves));
            fs.numBodyBlocks = static_cast<int>(
                shapeRng_.between(p_.minBodyBlocks, p_.maxBodyBlocks));
            fs.regArgs = shapeRng_.chance(p_.regArgsFrac);
            // Frames are aligned to the bank-interleave period (two
            // 64-byte banks), as real ABIs align frames; stack slots
            // then map to per-PC-stable banks.
            fs.frameBytes =
                (8 * (fs.numArgs + fs.numSaves + 8) + 127) & ~127ull;
            funcs_.push_back(fs);
        }

        Addr loop_pc = kCodeBase + 0x100000;
        Addr arr = kArrayBase;
        const int num_stream =
            p_.streamingFrac > 0.0 ? std::max(1, p_.numLoops / 6) : 0;
        loops_.reserve(p_.numLoops);
        streamLoops_.reserve(num_stream);
        for (int l = 0; l < p_.numLoops + num_stream; ++l) {
            const bool streaming = l >= p_.numLoops;
            LoopShape ls;
            ls.pcBase = loop_pc + l * kLoopPcStride;
            if (streaming) {
                // Streaming loop: new line every access.
                ls.bytes = p_.streamingBytes;
                ls.stride = 64;
            } else {
                ls.bytes = shapeRng_.between(p_.minArrayBytes,
                                             p_.maxArrayBytes);
                ls.bytes =
                    std::max<std::uint64_t>(256, ls.bytes & ~63ull);
                ls.stride =
                    p_.strides[shapeRng_.below(p_.strides.size())];
            }
            ls.hasStore = shapeRng_.chance(p_.loopStoreProb);
            ls.indirectStore = shapeRng_.chance(p_.indirectStoreFrac);
            if (!streaming && l == 0 && p_.indirectStoreFrac > 0.0) {
                // Guarantee one indirect-store loop per trace:
                // every real program has stores through computed
                // pointers, and they are what stalls the Traditional
                // scheme.
                ls.hasStore = true;
                ls.indirectStore = true;
            }
            ls.iters = shapeRng_.between(p_.minIters, p_.maxIters);
            // Line-aligned random offsets spread the regions across
            // cache sets; page-aligned bases would alias into the
            // same few sets and fabricate conflict misses.
            ls.arrayBase = arr + shapeRng_.below(1024) * 64;
            arr += ((ls.bytes + 0xffff) & ~0xffffull) + 0x10000;
            if (shapeRng_.chance(0.75)) {
                // In-place update (a[i] = f(a[i])): shares the lines
                // the load just touched, keeping the footprint honest.
                ls.storeBase = ls.arrayBase;
            } else {
                ls.storeBase = arr + shapeRng_.below(1024) * 64;
                arr += ((ls.bytes + 0xffff) & ~0xffffull) + 0x10000;
            }
            if (streaming)
                streamLoops_.push_back(ls);
            else
                loops_.push_back(ls);
        }

        Addr chase_pc = kCodeBase + 0x180000;
        chases_.reserve(p_.numChases);
        for (int c = 0; c < p_.numChases; ++c) {
            ChaseShape cs;
            cs.pcBase = chase_pc + c * kChasePcStride;
            // chaseFootprint is the AGGREGATE irregular working set;
            // split it across the chase sites.
            cs.bytes = std::max<std::uint64_t>(
                4096, p_.chaseFootprint /
                          static_cast<unsigned>(p_.numChases));
            cs.regionBase = kChaseBase + c * ((cs.bytes + 0xffff) * 2) +
                            shapeRng_.below(1024) * 64;
            cs.len = shapeRng_.between(p_.minChaseLen, p_.maxChaseLen);
            chases_.push_back(cs);
        }

        Addr global_pc = kCodeBase + 0x1c0000;
        globals_.reserve(p_.numGlobals);
        for (int g = 0; g < p_.numGlobals; ++g) {
            GlobalShape gs;
            gs.pcBase = global_pc + g * kGlobalPcStride;
            gs.addr = kGlobalBase + g * 64; // one line each, no aliasing
            gs.rmw = shapeRng_.chance(p_.globalRmwFrac);
            gs.pathCorr =
                gs.rmw && shapeRng_.chance(p_.pathCorrGlobalFrac);
            gs.lateAddr = gs.rmw && !gs.pathCorr &&
                          shapeRng_.chance(p_.lateAddrGlobalFrac);
            globals_.push_back(gs);
        }

        // Alias-storm sites come last and only exist when requested:
        // traces with wAlias == 0 leave the shape RNG stream exactly
        // as it was, keeping every pre-existing trace byte-identical.
        if (p_.wAlias > 0.0 && p_.numAliasSites > 0) {
            Addr alias_pc = kCodeBase + 0x200000;
            aliasSites_.reserve(p_.numAliasSites);
            for (int s = 0; s < p_.numAliasSites; ++s) {
                AliasShape as;
                as.pcBase = alias_pc + s * kAliasPcStride;
                // 8-byte-aligned page offset, different per site; 2MB
                // spacing keeps the fan of +4K pages site-private.
                as.storeAddr = kAliasBase + Addr(s) * 0x200000 +
                               shapeRng_.below(512) * 8;
                aliasSites_.push_back(as);
            }
        }
    }

    const FuncShape &pickFunc() { return funcs_[rng_.below(funcs_.size())]; }

    // ----- uop emission helpers -----

    void
    emit(const Uop &u)
    {
        out_.push_back(u);
    }

    void
    emitAlu(Addr pc, int dst, int s1, int s2 = -1)
    {
        Uop u;
        u.pc = pc;
        u.dst = static_cast<std::int8_t>(dst);
        u.src1 = static_cast<std::int8_t>(s1);
        u.src2 = static_cast<std::int8_t>(s2);
        if (rng_.chance(p_.fpFrac)) {
            u.cls = UopClass::FpAlu;
            u.dst = static_cast<std::int8_t>(
                kNumIntRegs + (dst % kNumFpRegs));
        } else if (rng_.chance(p_.complexFrac)) {
            u.cls = UopClass::Complex;
        } else {
            u.cls = UopClass::IntAlu;
        }
        emit(u);
    }

    void
    emitIntOp(Addr pc, int dst, int s1, int s2 = -1)
    {
        Uop u;
        u.pc = pc;
        u.cls = UopClass::IntAlu;
        u.dst = static_cast<std::int8_t>(dst);
        u.src1 = static_cast<std::int8_t>(s1);
        u.src2 = static_cast<std::int8_t>(s2);
        emit(u);
    }

    void
    emitLoad(Addr pc, int dst, Addr addr, std::uint8_t size = 8,
             int addr_src = kStackPtrReg)
    {
        Uop u;
        u.pc = pc;
        u.cls = UopClass::Load;
        u.dst = static_cast<std::int8_t>(dst);
        u.src1 = static_cast<std::int8_t>(addr_src);
        u.addr = addr;
        u.memSize = size;
        emit(u);
    }

    void
    emitStore(Addr pc, Addr addr, int data_src, std::uint8_t size = 8,
              int addr_src = kStackPtrReg)
    {
        Uop sta;
        sta.pc = pc;
        sta.cls = UopClass::StoreAddr;
        sta.src1 = static_cast<std::int8_t>(addr_src);
        sta.addr = addr;
        sta.memSize = size;
        emit(sta);

        Uop std_uop;
        std_uop.pc = pc + 1;
        std_uop.cls = UopClass::StoreData;
        std_uop.src1 = static_cast<std::int8_t>(data_src);
        emit(std_uop);
    }

    void
    emitBranch(Addr pc, bool taken, int src = -1)
    {
        Uop u;
        u.pc = pc;
        u.cls = UopClass::Branch;
        u.src1 = static_cast<std::int8_t>(src);
        u.taken = taken;
        emit(u);
    }

    // ----- construct emission -----

    /**
     * Call block: argument pushes, call, prologue saves, parameter
     * loads (collide with the pushes: distance numSaves+numArgs-a
     * stores), body blocks, epilogue restores (collide with the saves
     * at body-length distance), return.
     */
    void
    emitCall(const FuncShape &f, int depth)
    {
        const Addr pcb = f.pcBase;
        // Caller-side argument passing: memory pushes (creating the
        // classic push / parameter-load collision pairs) or registers.
        if (!f.regArgs) {
            for (int a = 0; a < f.numArgs; ++a) {
                const Addr slot = sp_ - 8 * (a + 1);
                emitStore(pcb + 0x10 + 4 * a, slot, 1 + (a % 6));
            }
        } else {
            for (int a = 0; a < f.numArgs; ++a)
                emitIntOp(pcb + 0x10 + 4 * a, 2 + a, 1 + (a % 6));
        }
        emitIntOp(pcb + 0x30, kStackPtrReg, kStackPtrReg); // SP adjust
        emitBranch(pcb + 0x32, true);                      // call
        const Addr caller_sp = sp_;
        sp_ -= f.frameBytes;

        // Prologue: save callee-saved registers below the frame.
        for (int s = 0; s < f.numSaves; ++s)
            emitStore(pcb + 0x40 + 4 * s, sp_ + 8 * s, 2 + s);

        // Parameter loads from the caller's push slots.
        if (!f.regArgs) {
            for (int a = 0; a < f.numArgs; ++a) {
                const Addr slot = caller_sp - 8 * (a + 1);
                emitLoad(pcb + 0x60 + 4 * a, 2 + a, slot);
            }
        }

        // Body blocks.
        for (int b = 0; b < f.numBodyBlocks && out_.size() < p_.length;
             ++b) {
            emitBodyBlock(pcb + 0x100 + 0x40 * b, f, depth);
        }

        // Epilogue: restore the saved registers.
        for (int s = 0; s < f.numSaves; ++s)
            emitLoad(pcb + 0x80 + 4 * s, 2 + s, sp_ + 8 * s);

        sp_ += f.frameBytes;
        emitIntOp(pcb + 0x90, kStackPtrReg, kStackPtrReg); // SP restore
        emitBranch(pcb + 0x92, true);                      // return
    }

    /** One function body block: ALU work + optional branch/call/etc. */
    void
    emitBodyBlock(Addr pcb, const FuncShape &f, int depth)
    {
        // Short dependent ALU chain over the parameter registers.
        int src = 2;
        for (int i = 0; i < 3; ++i) {
            emitAlu(pcb + 2 * i, 8 + i, src, 2 + i % 3);
            src = 8 + i;
        }
        // Occasional local-variable spill/refill (short-distance
        // collision pair at a recurrent PC).
        if (rng_.chance(p_.spillFrac)) {
            // Spill: SP-relative address (STA resolves fast) but the
            // data comes off a multi-cycle computation (STD lags) —
            // the refill below is the classic wrong load-STD ordering
            // candidate, and under the exclusive scheme it may bypass
            // slower unrelated stores.
            Uop cx;
            cx.pc = pcb + 0x0e;
            cx.cls = UopClass::Complex;
            cx.dst = 12;
            cx.src1 = static_cast<std::int8_t>(src);
            emit(cx);
            const Addr local = sp_ + 8 * (f.numSaves + 1);
            emitStore(pcb + 0x10, local, 12);
            emitAlu(pcb + 0x14, 9, src);
            emitAlu(pcb + 0x16, 10, 9);
            emitLoad(pcb + 0x18, 11, local);
        } else {
            emitAlu(pcb + 0x14, 9, src);
            emitAlu(pcb + 0x16, 10, 9);
            emitAlu(pcb + 0x18, 11, 10);
        }

        if (rng_.chance(p_.dataBranchProb))
            emitBranch(pcb + 0x20, rng_.chance(p_.dataBranchBias), 11);

        if (depth < p_.maxCallDepth && rng_.chance(p_.nestedCallProb) &&
            out_.size() < p_.length) {
            emitCall(pickFunc(), depth + 1);
        }
    }

    /**
     * Strided array loop: per iteration a load, a dependent ALU chain,
     * optionally a store to a second array, and a (mostly taken) loop
     * branch. Loads conflict with in-flight stores but do not collide.
     */
    void
    emitLoop(LoopShape &l)
    {
        // Mostly the site's nominal trip count (so the exit branch is
        // predictable), with occasional +/-1 jitter.
        std::uint64_t iters = l.iters;
        if (rng_.chance(0.2))
            iters = std::max<std::uint64_t>(2, iters + rng_.below(3)) - 1;
        // Hot (non-streaming) loops usually re-walk the same data —
        // that temporal reuse is what keeps real L1 hit rates >95%.
        // Streaming loops keep sweeping forward by design.
        if (l.stride != 64 && rng_.chance(0.7))
            l.pos = 0;
        for (std::uint64_t i = 0;
             i < iters && out_.size() < p_.length; ++i) {
            const Addr a = l.arrayBase + l.pos;
            const auto sz = static_cast<std::uint8_t>(
                std::min<std::uint32_t>(8, l.stride));
            emitLoad(l.pcBase + 0x00, 4, a, sz, 5);
            // Most loop bodies read a second operand (b[i] in
            // a[i] = f(a[i], b[i])); memory ops are roughly a third
            // of real IA-32 uop streams and the added port pressure
            // is what keeps STAs queued behind loads.
            if (l.hasStore)
                emitLoad(l.pcBase + 0x04, 3, l.storeBase + l.pos, sz, 5);
            int src = 4;
            for (int k = 0; k < p_.loopAluOps; ++k) {
                emitAlu(l.pcBase + 0x08 + 2 * k, 6 + k % 2, src);
                src = 6 + k % 2;
            }
            if (l.hasStore) {
                // Indirect stores compute their address from the
                // loaded value, so the STA resolves late and younger
                // loads see an unknown-address store.
                const int addr_src = l.indirectStore ? src : 5;
                emitStore(l.pcBase + 0x20, l.storeBase + l.pos, src,
                          static_cast<std::uint8_t>(
                              std::min<std::uint32_t>(8, l.stride)),
                          addr_src);
            }
            // Loops touch shared state too (counters, accumulators):
            // these embedded RMW sites overlap the loop's in-flight
            // stores, giving the exclusive predictor loads that can
            // bypass slow unrelated stores.
            if (rng_.chance(0.06))
                emitGlobal(globals_[rng_.below(globals_.size())]);
            // Induction update and loop branch.
            emitIntOp(l.pcBase + 0x30, 5, 5);
            emitBranch(l.pcBase + 0x32, i + 1 < iters, 5);
            l.pos += l.stride;
            if (l.pos + 8 > l.bytes)
                l.pos = 0;
        }
    }

    /**
     * Pointer chase: serialised loads to pseudo-random lines of the
     * region (each address depends on the previous load's result).
     * Mostly misses when the region exceeds the cache.
     */
    void
    emitChase(const ChaseShape &c)
    {
        std::uint64_t len = c.len;
        if (rng_.chance(0.2))
            len = std::max<std::uint64_t>(2, len + rng_.below(3)) - 1;
        const std::uint64_t lines = c.bytes / 64;
        const bool serial = rng_.chance(p_.chaseSerialFrac);
        for (std::uint64_t i = 0;
             i < len && out_.size() < p_.length; ++i) {
            const Addr a = c.regionBase + rng_.below(lines) * 64;
            if (serial) {
                // True pointer chase: next address depends on the
                // previous load's value; misses cannot overlap.
                emitLoad(c.pcBase + 0x00, 5, a, 8, 5);
            } else {
                // Array-of-pointers: index advances independently, so
                // the misses overlap (memory-level parallelism).
                emitIntOp(c.pcBase + 0x04, 7, 7);
                emitLoad(c.pcBase + 0x00, 5, a, 8, 7);
            }
            emitAlu(c.pcBase + 0x08, 6, 5);
            // GC-style mark: flag the visited node through the just-
            // loaded pointer (late STA, unknown-address store for
            // every following load). Guarded so traces that never set
            // chaseStoreProb leave the RNG stream untouched.
            if (p_.chaseStoreProb > 0.0 &&
                rng_.chance(p_.chaseStoreProb)) {
                emitStore(c.pcBase + 0x0c, a, 6, 8, 5);
            }
        }
        emitBranch(c.pcBase + 0x10, true, 6);
    }

    /**
     * SPOILER-style 4K-alias storm (docs/TRACES.md): a store with
     * lagging data, then a fan of loads at the same page offset on
     * different pages. Full-address disambiguation proves the fan
     * independent; partial-address disambiguation
     * (MachineConfig::mobPartialBits) sees the page offset match and
     * must conservatively collide — exactly the hazard SPOILER
     * measures. A fixed leading slice of the fan really does collide
     * (same full address), so predictors see both behaviours at
     * stable PCs; aliasPhaseLen inverts the slice in lockstep to
     * yank CHT training mid-run.
     */
    void
    emitAliasStorm(AliasShape &s)
    {
        const bool invert =
            p_.aliasPhaseLen > 0 &&
            ((s.bursts / p_.aliasPhaseLen) % 2 == 1);
        ++s.bursts;
        // The stored value comes off a multi-cycle chain: the STA
        // resolves immediately, the STD lags — colliding loads pay
        // the real wrong-ordering penalty.
        Uop cx;
        cx.pc = s.pcBase;
        cx.cls = UopClass::Complex;
        cx.dst = 9;
        cx.src1 = 7;
        emit(cx);
        emitStore(s.pcBase + 0x02, s.storeAddr, 9, 8, 0);
        const int true_slots = static_cast<int>(
            p_.aliasFanout * p_.aliasTrueFrac + 0.5);
        for (int i = 0;
             i < p_.aliasFanout && out_.size() < p_.length; ++i) {
            const bool collides = (i < true_slots) != invert;
            const Addr a = collides
                               ? s.storeAddr
                               : s.storeAddr + (Addr(i) + 1) * 4096;
            emitLoad(s.pcBase + 0x10 + 4 * i, 6, a, 8, 0);
            emitAlu(s.pcBase + 0x12 + 4 * i, 8, 6);
        }
        emitBranch(s.pcBase + 0x60, true, 8);
    }

    /**
     * Global read-modify-write site. The second load of an RMW site in
     * its store phase collides with the interposed store (distance 1
     * store) at the same static PC every time — the recurrent collider
     * the CHT keys on. A nonzero globalPhaseLen makes the site flip
     * between store phase and read-only phase, exercising predictors'
     * ability to track colliding -> non-colliding behaviour changes.
     */
    void
    emitGlobal(GlobalShape &g)
    {
        ++g.uses;
        bool store_phase =
            p_.globalPhaseLen == 0 ||
            ((g.uses / p_.globalPhaseLen) % 2 == 0);
        if (g.pathCorr) {
            // The branch outcome decides whether the site stores:
            // collision behaviour of the reload below is perfectly
            // correlated with the path, not with the reload's PC.
            store_phase = rng_.chance(0.55);
            emitBranch(g.pcBase + 0x02, store_phase, 6);
        }

        emitLoad(g.pcBase + 0x00, 6, g.addr, 8, 0);
        emitAlu(g.pcBase + 0x08, 7, 6);
        if (g.rmw && store_phase) {
            // The new value comes from a longer computation than the
            // address (a multiply/divide), so the STD lags the STA —
            // the P6 wrong load-STD ordering case the Postponing
            // scheme targets.
            Uop cx;
            cx.pc = g.pcBase + 0x0a;
            cx.cls = UopClass::Complex;
            cx.dst = 9;
            cx.src1 = 7;
            emit(cx);
            Uop cx2 = cx;
            cx2.pc = g.pcBase + 0x0b;
            cx2.src1 = 9;
            emit(cx2);
            if (g.lateAddr) {
                // Indexed store: the address comes off the multi-
                // cycle chain while the data is ready immediately —
                // the reload can only be satisfied early by
                // speculative value forwarding (distance pairing).
                emitStore(g.pcBase + 0x0c, g.addr, 6, 8, 9);
            } else {
                // The store address is a direct global reference (STA
                // resolves immediately) while the data is still being
                // computed — under Traditional ordering the reload
                // below passes the STA check and collides with the
                // pending STD.
                emitStore(g.pcBase + 0x0c, g.addr, 9, 8, 0);
            }
            if (rng_.chance(p_.globalReloadProb)) {
                emitAlu(g.pcBase + 0x10, 8, 7);
                emitLoad(g.pcBase + 0x14, 10, g.addr, 8, 0);
                emitAlu(g.pcBase + 0x18, 11, 10);
                // The reloaded value is consumed by control flow, so
                // delaying this load delays everything downstream.
                if (rng_.chance(0.4)) {
                    emitBranch(g.pcBase + 0x1c,
                               rng_.chance(p_.dataBranchBias), 11);
                }
            }
        } else {
            emitAlu(g.pcBase + 0x10, 8, 7);
            emitAlu(g.pcBase + 0x12, 9, 8);
        }
    }

    const TraceParams &p_;
    Rng shapeRng_;
    Rng rng_;
    std::vector<Uop> out_;
    Addr sp_ = kStackTop;

    std::vector<FuncShape> funcs_;
    std::vector<LoopShape> loops_;
    std::vector<LoopShape> streamLoops_;
    std::size_t streamRr_ = 0;
    std::vector<ChaseShape> chases_;
    std::vector<GlobalShape> globals_;
    std::vector<AliasShape> aliasSites_;
};

} // namespace

std::unique_ptr<VecTrace>
generateTrace(const TraceParams &params)
{
    Generator gen(params);
    return std::make_unique<VecTrace>(params.name, gen.run());
}

const char *
traceGroupName(TraceGroup g)
{
    switch (g) {
      case TraceGroup::SpecInt95: return "ISPEC";
      case TraceGroup::SpecFP95:  return "SpecFP";
      case TraceGroup::SysmarkNT: return "NT";
      case TraceGroup::Sysmark95: return "Sys95";
      case TraceGroup::Games:     return "GAME";
      case TraceGroup::Java:      return "JAVA";
      case TraceGroup::TPC:       return "TPC";
      case TraceGroup::Adversarial: return "ADV";
      case TraceGroup::External:  return "EXT";
    }
    return "?";
}

} // namespace lrs
