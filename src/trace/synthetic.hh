/**
 * @file
 * Synthetic trace generation.
 *
 * generateTrace() synthesises a uop stream from TraceParams. The
 * generator first builds a fixed set of *static* code shapes (functions,
 * array loops, pointer chases, global sites) with stable uop PCs, then
 * walks them pseudo-randomly to emit the dynamic stream. Per-PC
 * recurrence of collision / hit-miss / bank behaviour — the property all
 * three of the paper's predictors rely on — therefore arises naturally
 * rather than being painted on.
 */

#ifndef LRS_TRACE_SYNTHETIC_HH
#define LRS_TRACE_SYNTHETIC_HH

#include <memory>

#include "trace/params.hh"
#include "trace/stream.hh"

namespace lrs
{

/** Generate a materialised trace from @p params (deterministic). */
std::unique_ptr<VecTrace> generateTrace(const TraceParams &params);

} // namespace lrs

#endif // LRS_TRACE_SYNTHETIC_HH
