#include "trace/champsim_reader.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <iostream>
#include <istream>
#include <unordered_set>
#include <vector>

#include "common/crc.hh"
#include "common/diag.hh"

namespace lrs
{

namespace
{

/** Streaming window size: refilled whenever fewer bytes remain. */
constexpr std::size_t kWindowBytes = 64 * 1024;

/** ChampSim register numbers with reserved meanings (Pin encoding). */
constexpr std::uint8_t kCsRegInvalid = 0;
constexpr std::uint8_t kCsRegStackPointer = 6;

[[noreturn]] void
throwTrace(DiagCode code, const std::string &param,
           const std::string &message)
{
    throw TraceError(makeDiag(code, "trace.champsim", param, message));
}

template <typename T>
T
load(const std::uint8_t *p)
{
    static_assert(std::endian::native == std::endian::little,
                  "trace decoding assumes a little-endian host");
    T v{};
    std::memcpy(&v, p, sizeof(v));
    return v;
}

/**
 * Map a ChampSim (Pin-encoded) register number onto our architectural
 * register file. 0 means "no register"; the stack pointer keeps its
 * special identity; everything else folds deterministically into the
 * integer file, skipping the stack-pointer slot so arbitrary registers
 * never alias the stack. High Pin numbers (vector/FP state) land in
 * the same fold — the core only needs dependence edges, not ISA
 * semantics.
 */
std::int8_t
mapReg(std::uint8_t r)
{
    if (r == kCsRegInvalid)
        return -1;
    if (r == kCsRegStackPointer)
        return kStackPtrReg;
    int idx = r % (kNumIntRegs - 1); // [0, 15)
    if (idx >= kStackPtrReg)
        ++idx;
    return static_cast<std::int8_t>(idx);
}

/** Why champSimRecordPlausible() rejects the window at @p p. */
const char *
describeBadRecord(const std::uint8_t *p)
{
    if (load<std::uint64_t>(p) == 0)
        return "instruction pointer is zero";
    if (p[8] > 1)
        return "is_branch is not 0/1";
    if (p[9] > 1)
        return "branch_taken is not 0/1";
    if (p[9] == 1 && p[8] == 0)
        return "branch_taken set on a non-branch";
    return "memory operand is the reserved all-ones address";
}

} // namespace

bool
champSimRecordPlausible(const std::uint8_t *p)
{
    // Field bounds that hold for every record a real tracer emits and
    // that a random/corrupt 64-byte window fails with probability
    // ~1 - 2^-14 — strict validation and resync heuristic in one.
    if (load<std::uint64_t>(p) == 0)
        return false;
    if (p[8] > 1 || p[9] > 1)
        return false;
    if (p[9] == 1 && p[8] == 0)
        return false;
    // The all-ones address is our internal "invalid" sentinel
    // (kAddrInvalid); a record carrying it could confuse the core's
    // address-known logic, and no real trace addresses live there.
    for (std::size_t off = 16; off < kChampSimRecordBytes; off += 8) {
        if (load<std::uint64_t>(p + off) == kAddrInvalid)
            return false;
    }
    return true;
}

bool
looksLikeChampSimFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return false;
    std::uint8_t head[4096];
    f.read(reinterpret_cast<char *>(head), sizeof(head));
    const std::size_t n = static_cast<std::size_t>(f.gcount());
    const std::size_t windows = n / kChampSimRecordBytes;
    if (windows == 0)
        return false;
    // A short file must be whole records; a longer head just needs
    // every complete window to parse.
    if (n < sizeof(head) && n % kChampSimRecordBytes != 0)
        return false;
    for (std::size_t w = 0; w < windows; ++w) {
        if (!champSimRecordPlausible(head + w * kChampSimRecordBytes))
            return false;
    }
    return true;
}

namespace
{

/** Decode one validated record into @p uops. Bounded: <= 13 uops. */
void
decodeRecord(const std::uint8_t *p, std::vector<Uop> &uops)
{
    const Addr ip = load<std::uint64_t>(p);
    const bool is_branch = p[8] != 0;
    const bool taken = p[9] != 0;
    const std::uint8_t *dreg = p + 10;
    const std::uint8_t *sreg = p + 12;

    bool any_mem = false;
    int load_slot = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        const Addr a = load<std::uint64_t>(p + 32 + 8 * i);
        if (a == 0)
            continue;
        Uop u;
        u.pc = ip;
        u.cls = UopClass::Load;
        u.addr = a;
        u.memSize = 8;
        u.src1 = mapReg(sreg[i]);
        // The first loads feed the instruction's destinations.
        u.dst = load_slot < 2 ? mapReg(dreg[load_slot]) : -1;
        if (u.dst < 0)
            u.dst = mapReg(dreg[0]);
        ++load_slot;
        any_mem = true;
        uops.push_back(u);
    }
    for (std::size_t j = 0; j < 2; ++j) {
        const Addr a = load<std::uint64_t>(p + 16 + 8 * j);
        if (a == 0)
            continue;
        Uop sta;
        sta.pc = ip;
        sta.cls = UopClass::StoreAddr;
        sta.addr = a;
        sta.memSize = 8;
        sta.src1 = mapReg(sreg[0]);
        uops.push_back(sta);
        Uop std_;
        std_.pc = ip;
        std_.cls = UopClass::StoreData;
        std_.src1 = mapReg(sreg[1]);
        uops.push_back(std_);
        any_mem = true;
    }
    if (is_branch) {
        Uop b;
        b.pc = ip;
        b.cls = UopClass::Branch;
        b.taken = taken;
        b.src1 = mapReg(sreg[0]);
        uops.push_back(b);
    } else if (!any_mem) {
        // Register-only instruction: one ALU uop. High Pin register
        // numbers carry vector/x87 state, so route those to the FP
        // unit; everything else is integer work.
        Uop a;
        a.pc = ip;
        a.cls = UopClass::IntAlu;
        for (std::size_t i = 0; i < 4; ++i) {
            if ((i < 2 && dreg[i] >= 32) || sreg[i] >= 32)
                a.cls = UopClass::FpAlu;
        }
        a.src1 = mapReg(sreg[0]);
        a.src2 = mapReg(sreg[1]);
        const std::int8_t d = mapReg(dreg[0]);
        if (a.cls == UopClass::FpAlu)
            a.dst = d < 0 ? -1 : static_cast<std::int8_t>(
                                     kNumIntRegs + d % kNumFpRegs);
        else
            a.dst = d;
        uops.push_back(a);
    }
}

} // namespace

std::unique_ptr<VecTrace>
readChampSimTrace(std::istream &is, const std::string &name,
                  const ChampSimReadOptions &opts,
                  TraceReadStats *stats, ChampSimTraceInfo *info)
{
    TraceReadStats local;
    TraceReadStats &st = stats ? *stats : local;
    ChampSimTraceInfo local_info;
    ChampSimTraceInfo &in = info ? *info : local_info;

    std::vector<Uop> uops;
    std::unordered_set<std::uint64_t> pages;
    std::vector<std::uint8_t> buf;
    buf.reserve(kWindowBytes + kChampSimRecordBytes);
    std::size_t off = 0;   // decode cursor into buf
    bool eof = false;
    bool sliding = false;  // recovery lost the framing; hunting
    std::uint64_t record_idx = 0; // records attempted (for messages)

    // Refill the window, enforcing the source-size cap and folding
    // every fetched byte into the identity CRC. The window is the only
    // input-side allocation: a multi-GB source never lives in memory.
    const auto refill = [&]() {
        if (off > 0) {
            buf.erase(buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(off));
            off = 0;
        }
        char tmp[16384];
        while (!eof && buf.size() < kWindowBytes) {
            is.read(tmp, sizeof(tmp));
            const std::size_t n = static_cast<std::size_t>(is.gcount());
            if (n > 0) {
                in.bytes += n;
                if (in.bytes > opts.maxFileBytes) {
                    throwTrace(
                        DiagCode::TraceLimitExceeded, "max_file_bytes",
                        "trace source exceeds the " +
                            std::to_string(opts.maxFileBytes) +
                            "-byte cap — raise --max-file-bytes if "
                            "this is intentional");
                }
                in.crc = crc32(tmp, n, in.crc);
                buf.insert(buf.end(), tmp, tmp + n);
            }
            if (!is)
                eof = true;
        }
    };

    const auto touchPage = [&](Addr a) {
        pages.insert(a >> 12);
        if (pages.size() > opts.maxPages) {
            throwTrace(DiagCode::TraceLimitExceeded, "max_pages",
                       "trace touches more than " +
                           std::to_string(opts.maxPages) +
                           " distinct 4KiB pages — raise --max-pages "
                           "if this is intentional");
        }
    };

    while (true) {
        if (buf.size() - off < kChampSimRecordBytes)
            refill();
        const std::size_t avail = buf.size() - off;
        if (avail < kChampSimRecordBytes)
            break; // end of stream; avail bytes are the tail
        if (opts.maxInstructions != 0 &&
            in.instructions >= opts.maxInstructions) {
            // Instruction cap reached: deliberate truncation, like
            // --len on a synthetic trace. Not an error and not a torn
            // tail — stop cleanly.
            off = buf.size();
            break;
        }
        const std::uint8_t *p = buf.data() + off;
        if (champSimRecordPlausible(p)) {
            const std::size_t before = uops.size();
            decodeRecord(p, uops);
            for (std::size_t i = before; i < uops.size(); ++i) {
                if (uops[i].isMem())
                    touchPage(uops[i].addr);
            }
            ++in.instructions;
            ++st.recordsRead;
            ++record_idx;
            off += kChampSimRecordBytes;
            sliding = false;
            continue;
        }
        if (sliding) {
            ++off;
            ++st.resyncBytes;
            continue;
        }
        if (!opts.read.recover) {
            const std::uint64_t byte_off =
                in.bytes - buf.size() + off;
            throwTrace(DiagCode::TraceBadRecord,
                       "record " + std::to_string(record_idx),
                       std::string(describeBadRecord(p)) +
                           " (byte offset " +
                           std::to_string(byte_off) + ")");
        }
        ++st.skippedRecords;
        ++record_idx;
        if (st.skippedRecords > opts.read.badRecordBudget) {
            throwTrace(
                DiagCode::TraceBudgetExceeded, "bad_record_budget",
                "skipped " + std::to_string(st.skippedRecords) +
                    " malformed records, budget allows " +
                    std::to_string(opts.read.badRecordBudget) +
                    " — the trace is damaged beyond graceful "
                    "degradation");
        }
        // Prefer preserved framing: bytes corrupted in place leave
        // the next record boundary parseable.
        if (avail >= 2 * kChampSimRecordBytes &&
            champSimRecordPlausible(p + kChampSimRecordBytes)) {
            off += kChampSimRecordBytes;
            continue;
        }
        if (avail < 2 * kChampSimRecordBytes) {
            // Nothing after this window: consume it; any leftover
            // becomes the torn tail below.
            off += kChampSimRecordBytes;
            continue;
        }
        // Framing lost (bytes inserted/removed): hunt byte-by-byte.
        sliding = true;
        ++off;
        ++st.resyncBytes;
    }

    const std::size_t tail = buf.size() - off;
    if (tail > 0) {
        if (!opts.read.recover) {
            throwTrace(DiagCode::TraceTruncated, "tail",
                       "stream ends mid-record: " +
                           std::to_string(tail) +
                           " trailing bytes after " +
                           std::to_string(in.instructions) +
                           " records (torn download?)");
        }
        st.truncatedTailBytes += tail;
    }

    if (uops.empty()) {
        if (in.bytes < kChampSimRecordBytes) {
            throwTrace(DiagCode::TraceTruncated, "size",
                       "source holds " + std::to_string(in.bytes) +
                           " bytes — not even one 64-byte ChampSim "
                           "record");
        }
        throwTrace(DiagCode::TraceBadRecord, "records",
                   "no usable ChampSim records in " +
                       std::to_string(in.bytes) + " bytes");
    }

    in.pages = pages.size();
    auto trace = std::make_unique<VecTrace>(name, std::move(uops));
    trace->setContentId(in.bytes, in.crc);
    return trace;
}

std::unique_ptr<VecTrace>
readChampSimFile(const std::string &path,
                 const ChampSimReadOptions &opts,
                 TraceReadStats *stats, ChampSimTraceInfo *info)
{
    if (path == "-")
        return readChampSimTrace(std::cin, "champsim:-", opts, stats,
                                 info);
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        throw IoError(makeDiag(DiagCode::IoOpenFailed,
                               "trace.champsim", "path",
                               "cannot open for read: " + path));
    }
    return readChampSimTrace(f, "champsim:" + path, opts, stats,
                             info);
}

} // namespace lrs
