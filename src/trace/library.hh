/**
 * @file
 * The trace library: named synthetic traces organised into the paper's
 * seven groups (section 3): SpecInt95 (8 traces), SpecFP95 (10),
 * SysmarkNT (8), Sysmark95 (8), Games (5), Java (5) and TPC (2).
 *
 * The SysmarkNT traces carry the labels of Figure 7 (cd, ex, fl, pd,
 * pm, pp, wd, wp) so bench output can be compared bar-for-bar.
 */

#ifndef LRS_TRACE_LIBRARY_HH
#define LRS_TRACE_LIBRARY_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/params.hh"
#include "trace/stream.hh"

namespace lrs
{

/**
 * Factory for the named trace set.
 *
 * All params are deterministic; @c lengthOverride lets benches trade
 * fidelity for run time (the paper used 30M-instruction traces; our
 * benches default to a few hundred thousand uops per trace).
 */
class TraceLibrary
{
  public:
    /** Parameter sets of every trace in @p group. */
    static std::vector<TraceParams> group(TraceGroup g,
                                          std::uint64_t length = 200000);

    /** Parameter set of one named trace (asserts the name exists). */
    static TraceParams byName(const std::string &name,
                              std::uint64_t length = 200000);

    /** All trace names of a group. */
    static std::vector<std::string> names(TraceGroup g);

    /** Generate a ready-to-run trace. */
    static std::unique_ptr<VecTrace> make(const TraceParams &p);
};

} // namespace lrs

#endif // LRS_TRACE_LIBRARY_HH
