/**
 * @file
 * The micro-operation (uop) model.
 *
 * Following the P6 decomposition described in the paper (section 1.1),
 * a load is a single uop while a store is split into a Store-Address
 * (STA) uop and a Store-Data (STD) uop. The synthetic trace generator
 * always emits the STD immediately after its STA; the core pairs them
 * positionally.
 */

#ifndef LRS_TRACE_UOP_HH
#define LRS_TRACE_UOP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace lrs
{

/** Micro-operation classes, mapped to execution-unit classes. */
enum class UopClass : std::uint8_t
{
    IntAlu,     ///< single-cycle integer op, runs on an integer unit
    FpAlu,      ///< pipelined FP op, runs on the FP unit
    Complex,    ///< multi-cycle op (mul/div/string...), complex unit
    Load,       ///< memory load, runs on a memory unit (AGU + cache)
    StoreAddr,  ///< STA: store-address computation, memory unit
    StoreData,  ///< STD: store-data move, no execution unit needed
    Branch,     ///< conditional/unconditional branch, integer unit
};

/** Number of architectural integer registers (r13 is the stack ptr). */
constexpr int kNumIntRegs = 16;
/** Number of architectural FP registers. */
constexpr int kNumFpRegs = 8;
/** Total architectural registers (int regs first, then FP). */
constexpr int kNumArchRegs = kNumIntRegs + kNumFpRegs;
/** Architectural register index of the stack pointer. */
constexpr int kStackPtrReg = 13;

/** Printable name for a uop class. */
const char *uopClassName(UopClass cls);

/**
 * One dynamic micro-operation of a trace.
 *
 * @c pc is the *static* identity of the uop (its linear instruction
 * pointer); all predictors index by it. Register identifiers are
 * architectural; renaming happens inside the core.
 */
struct Uop
{
    Addr pc = 0;
    UopClass cls = UopClass::IntAlu;
    std::int8_t src1 = -1;  ///< first register source, -1 if none
    std::int8_t src2 = -1;  ///< second register source, -1 if none
    std::int8_t dst = -1;   ///< destination register, -1 if none
    Addr addr = kAddrInvalid; ///< effective address (Load / StoreAddr)
    std::uint8_t memSize = 0; ///< access size in bytes (Load / StoreAddr)
    bool taken = false;       ///< branch outcome (Branch only)

    bool isLoad() const { return cls == UopClass::Load; }
    bool isSta() const { return cls == UopClass::StoreAddr; }
    bool isStd() const { return cls == UopClass::StoreData; }
    bool isMem() const { return isLoad() || isSta(); }
    bool isBranch() const { return cls == UopClass::Branch; }

    /** Debug rendering, e.g. "LD r3 <- [0x10000040] @pc=0x401000". */
    std::string toString() const;
};

} // namespace lrs

#endif // LRS_TRACE_UOP_HH
