#include "predictors/bank_pred.hh"

#include "common/bitutils.hh"
#include "common/diag.hh"
#include "common/state_io.hh"
#include "predictors/bimodal.hh"
#include "predictors/gshare.hh"
#include "predictors/gskew.hh"
#include "predictors/local.hh"

namespace lrs
{

namespace
{

std::unique_ptr<LocalPredictor>
bankLocal()
{
    // Paper: local - 512 entries (untagged), 8-bit history (0.5KB).
    return std::make_unique<LocalPredictor>(512, 8);
}

} // namespace

std::unique_ptr<BankPredictor>
makeBankPredictorA()
{
    std::vector<CompositePredictor::Component> comps;
    comps.push_back({bankLocal(), 1.0});
    comps.push_back({std::make_unique<GsharePredictor>(11), 1.0});
    comps.push_back({std::make_unique<GskewPredictor>(1024, 17), 1.0});
    // Unanimity: predict only when all three components agree.
    auto comp = std::make_unique<CompositePredictor>(
        std::move(comps), ChoosePolicy::WeightedThreshold, 3.0);
    return std::make_unique<BinaryBankPredictor>("A", std::move(comp));
}

std::unique_ptr<BankPredictor>
makeBankPredictorB()
{
    std::vector<CompositePredictor::Component> comps;
    comps.push_back({bankLocal(), 1.0});
    comps.push_back({std::make_unique<GsharePredictor>(11), 1.0});
    comps.push_back({std::make_unique<BimodalPredictor>(2048), 1.0});
    auto comp = std::make_unique<CompositePredictor>(
        std::move(comps), ChoosePolicy::WeightedThreshold, 3.0);
    return std::make_unique<BinaryBankPredictor>("B", std::move(comp));
}

std::unique_ptr<BankPredictor>
makeBankPredictorC()
{
    std::vector<CompositePredictor::Component> comps;
    comps.push_back({bankLocal(), 1.0});
    comps.push_back({std::make_unique<GsharePredictor>(11), 2.0});
    comps.push_back({std::make_unique<GskewPredictor>(1024, 17), 1.0});
    // Gshare-weighted vote with a lower bar than unanimity: predicts
    // more often than A at somewhat lower accuracy.
    auto comp = std::make_unique<CompositePredictor>(
        std::move(comps), ChoosePolicy::WeightedThreshold, 2.0);
    return std::make_unique<BinaryBankPredictor>("C", std::move(comp));
}

std::unique_ptr<AddressBankPredictor>
makeAddressBankPredictor()
{
    return std::make_unique<AddressBankPredictor>(64, 2, 1024);
}

PerBitBankPredictor::PerBitBankPredictor(
    unsigned num_banks,
    const std::function<std::unique_ptr<CompositePredictor>()>
        &make_bit)
    : numBanks_(num_banks)
{
    if (num_banks < 2 || !isPowerOf2(num_banks)) {
        throwConfig("pred.bank", "num_banks",
                    "per-bit bank predictor needs a power-of-two bank "
                    "count >= 2 (got " +
                        std::to_string(num_banks) + ")");
    }
    const unsigned bits = floorLog2(num_banks);
    bits_.reserve(bits);
    for (unsigned b = 0; b < bits; ++b)
        bits_.push_back(make_bit());
}

BankPredictor::Prediction
PerBitBankPredictor::predict(Addr pc) const
{
    unsigned bank = 0;
    double conf = 1.0;
    for (std::size_t b = 0; b < bits_.size(); ++b) {
        const auto m = bits_[b]->predictMaybe(pc);
        if (!m.valid) {
            // One undecided bit is enough to withhold the whole
            // prediction (the load is replicated).
            return {false, 0, 0.0};
        }
        bank |= (m.taken ? 1u : 0u) << b;
        conf = std::min(conf, m.confidence);
    }
    return {true, bank, conf};
}

void
PerBitBankPredictor::update(Addr pc, unsigned bank)
{
    for (std::size_t b = 0; b < bits_.size(); ++b)
        bits_[b]->update(pc, ((bank >> b) & 1u) != 0);
}

std::size_t
PerBitBankPredictor::storageBits() const
{
    std::size_t total = 0;
    for (const auto &b : bits_)
        total += b->storageBits();
    return total;
}

std::string
PerBitBankPredictor::name() const
{
    return "perbit-" + std::to_string(numBanks_) + "banks";
}

json::Value
PerBitBankPredictor::saveState() const
{
    json::Value arr = json::Value::array();
    for (const auto &b : bits_)
        arr.push(b->saveState());
    json::Value st = json::Value::object();
    st.set("bits", std::move(arr));
    return st;
}

void
PerBitBankPredictor::loadState(const json::Value &state)
{
    const json::Value &arr = stateio::need(state, "bits");
    if (!arr.isArray() || arr.size() != bits_.size()) {
        stateio::fail("bits", "per-bit bank predictor arity does not "
                              "match the configured bank count");
    }
    for (std::size_t b = 0; b < bits_.size(); ++b)
        bits_[b]->loadState(arr.at(b));
}

std::unique_ptr<PerBitBankPredictor>
makePerBitBankPredictor(unsigned num_banks)
{
    return std::make_unique<PerBitBankPredictor>(num_banks, [] {
        std::vector<CompositePredictor::Component> comps;
        comps.push_back({bankLocal(), 1.0});
        comps.push_back({std::make_unique<GsharePredictor>(11), 1.0});
        comps.push_back(
            {std::make_unique<GskewPredictor>(1024, 17), 1.0});
        return std::make_unique<CompositePredictor>(
            std::move(comps), ChoosePolicy::WeightedThreshold, 3.0);
    });
}

double
bankMetric(double prediction_rate, double ratio_r, double penalty)
{
    if (ratio_r <= 0.0)
        return 0.0;
    const double gain_per_load = prediction_rate *
                                 (0.5 * ratio_r + 1.0 - penalty) /
                                 (ratio_r + 1.0);
    return gain_per_load / 0.5;
}

} // namespace lrs
