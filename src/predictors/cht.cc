#include "predictors/cht.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/random.hh"
#include "common/state_io.hh"

namespace lrs
{

const char *
chtKindName(ChtKind k)
{
    switch (k) {
      case ChtKind::Full:     return "Full";
      case ChtKind::TagOnly:  return "TagOnly";
      case ChtKind::Tagless:  return "Tagless";
      case ChtKind::Combined: return "Combined";
    }
    return "?";
}

std::vector<Diag>
ChtParams::validate(const std::string &component) const
{
    std::vector<Diag> diags;
    const auto bad = [&](const std::string &param,
                         const std::string &msg) {
        diags.push_back(
            makeDiag(DiagCode::ConfigInvalid, component, param, msg));
    };

    if (entries == 0 || !isPowerOf2(entries)) {
        bad("entries", "table size must be a nonzero power of two "
                       "(got " +
                           std::to_string(entries) + ")");
    }
    if (counterBits < 1 || counterBits > 4) {
        bad("counter_bits", "counter width must be 1..4 bits (got " +
                                std::to_string(counterBits) + ")");
    }
    if (tagBits < 1 || tagBits > 32) {
        bad("tag_bits", "partial tag width must be 1..32 bits (got " +
                            std::to_string(tagBits) + ")");
    }
    if (pathBits > 32) {
        bad("path_bits", "path-history slice must be <= 32 bits "
                         "(got " +
                             std::to_string(pathBits) + ")");
    }

    const bool has_tagged = kind != ChtKind::Tagless;
    if (has_tagged) {
        if (assoc == 0) {
            bad("assoc", "associativity must be >= 1 (got 0)");
        } else if (entries != 0 && isPowerOf2(entries)) {
            if (entries % assoc != 0 ||
                !isPowerOf2(entries / assoc)) {
                bad("assoc",
                    "associativity must divide the entry count into "
                    "a power-of-two number of sets (got " +
                        std::to_string(entries) + " entries / " +
                        std::to_string(assoc) + "-way)");
            }
        }
    }
    if (kind == ChtKind::Combined &&
        (taglessEntries == 0 || !isPowerOf2(taglessEntries))) {
        bad("tagless_entries",
            "combined tagless table size must be a nonzero power of "
            "two (got " +
                std::to_string(taglessEntries) + ")");
    }
    return diags;
}

Cht::Cht(const ChtParams &params)
    : params_(params)
{
    if (auto diags = params_.validate(); !diags.empty())
        throw ConfigError(std::move(diags));

    const bool has_tagged = params_.kind != ChtKind::Tagless;
    const bool has_tagless = params_.kind == ChtKind::Tagless ||
                             params_.kind == ChtKind::Combined;

    if (has_tagged) {
        const std::size_t sets = params_.entries / params_.assoc;
        setBits_ = floorLog2(sets);
        tagged_.resize(params_.entries);
    }
    if (has_tagless) {
        const std::size_t n = params_.kind == ChtKind::Tagless
                                  ? params_.entries
                                  : params_.taglessEntries;
        taglessBits_ = floorLog2(n);
        taglessCtr_.assign(n, 0);
        if (params_.trackDistance)
            taglessDist_.assign(n, 0);
    }
}

std::size_t
Cht::setIndex(Addr pc) const
{
    return foldXor(pc >> 1, setBits_) & mask(setBits_);
}

std::uint32_t
Cht::tagOf(Addr pc) const
{
    return static_cast<std::uint32_t>((pc >> (1 + setBits_)) &
                                      mask(params_.tagBits));
}

std::size_t
Cht::taglessIndex(Addr pc) const
{
    return foldXor(pc >> 1, taglessBits_) & mask(taglessBits_);
}

const Cht::Entry *
Cht::lookupTagged(Addr pc) const
{
    const std::size_t set = setIndex(pc);
    const std::uint32_t tag = tagOf(pc);
    const Entry *base = &tagged_[set * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    return nullptr;
}

Cht::Entry *
Cht::lookupTagged(Addr pc)
{
    return const_cast<Entry *>(
        static_cast<const Cht *>(this)->lookupTagged(pc));
}

Cht::Entry *
Cht::allocateTagged(Addr pc)
{
    const std::size_t set = setIndex(pc);
    Entry *base = &tagged_[set * params_.assoc];
    Entry *victim = nullptr;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
    }
    if (!victim) {
        victim = base;
        for (unsigned w = 1; w < params_.assoc; ++w)
            if (base[w].lastUse < victim->lastUse)
                victim = &base[w];
    }
    *victim = Entry{};
    victim->valid = true;
    victim->tag = tagOf(pc);
    victim->lastUse = tick_;
    return victim;
}

bool
Cht::counterPredicts(std::uint8_t c) const
{
    return c >= (1u << (params_.counterBits - 1));
}

void
Cht::counterTrain(std::uint8_t &c, bool up) const
{
    if (params_.sticky) {
        if (up)
            c = (1u << params_.counterBits) - 1;
        return;
    }
    if (up) {
        if (c < (1u << params_.counterBits) - 1)
            ++c;
    } else {
        if (c > 0)
            --c;
    }
}

Addr
Cht::keyOf(Addr pc, std::uint64_t path) const
{
    if (params_.pathBits == 0)
        return pc;
    // Shift the path slice above bit 0 so it perturbs the index and
    // tag rather than the (ignored) low alignment bit.
    return pc ^ ((path & mask(params_.pathBits)) << 5);
}

Cht::Prediction
Cht::predict(Addr pc, std::uint64_t path) const
{
    pc = keyOf(pc, path);
    switch (params_.kind) {
      case ChtKind::Full: {
        const Entry *e = lookupTagged(pc);
        if (!e)
            return {false, 0, 0};
        return {counterPredicts(e->counter), e->distance, e->counter};
      }
      case ChtKind::TagOnly: {
        const Entry *e = lookupTagged(pc);
        if (!e)
            return {false, 0, 0};
        return {true, e->distance, 1};
      }
      case ChtKind::Tagless: {
        const std::size_t i = taglessIndex(pc);
        const bool coll = counterPredicts(taglessCtr_[i]);
        const unsigned dist =
            params_.trackDistance ? taglessDist_[i] : 0;
        return {coll, coll ? dist : 0, taglessCtr_[i]};
      }
      case ChtKind::Combined: {
        const Entry *e = lookupTagged(pc);
        const bool tag_coll = e != nullptr;
        const std::uint8_t tl_ctr = taglessCtr_[taglessIndex(pc)];
        const bool tl_coll = counterPredicts(tl_ctr);
        const bool coll = params_.combineConservative
                              ? (tag_coll || tl_coll)
                              : (tag_coll && tl_coll);
        const unsigned dist = e ? e->distance : 0;
        return {coll, coll ? dist : 0,
                std::max<unsigned>(e ? e->counter : 0, tl_ctr)};
      }
    }
    return {false, 0, 0};
}

void
Cht::update(Addr pc, bool collided, unsigned distance,
            std::uint64_t path)
{
    pc = keyOf(pc, path);
    ++tick_;
    const auto clamped_dist = static_cast<std::uint8_t>(
        std::min<unsigned>(distance, kMaxDistance));

    switch (params_.kind) {
      case ChtKind::Full: {
        Entry *e = lookupTagged(pc);
        if (!e && collided)
            e = allocateTagged(pc); // allocate on first collision only
        if (e) {
            e->lastUse = tick_;
            counterTrain(e->counter, collided);
            if (collided && params_.trackDistance) {
                e->distance = e->distance == 0
                                  ? clamped_dist
                                  : std::min(e->distance, clamped_dist);
            }
        }
        break;
      }
      case ChtKind::TagOnly: {
        Entry *e = lookupTagged(pc);
        if (!e && collided)
            e = allocateTagged(pc);
        if (e && collided) {
            e->lastUse = tick_;
            if (params_.trackDistance) {
                e->distance = e->distance == 0
                                  ? clamped_dist
                                  : std::min(e->distance, clamped_dist);
            }
        }
        break;
      }
      case ChtKind::Tagless: {
        const std::size_t i = taglessIndex(pc);
        counterTrain(taglessCtr_[i], collided);
        if (collided && params_.trackDistance) {
            taglessDist_[i] =
                taglessDist_[i] == 0
                    ? clamped_dist
                    : std::min(taglessDist_[i], clamped_dist);
        }
        break;
      }
      case ChtKind::Combined: {
        counterTrain(taglessCtr_[taglessIndex(pc)], collided);
        Entry *e = lookupTagged(pc);
        if (!e && collided)
            e = allocateTagged(pc);
        if (e && collided) {
            e->lastUse = tick_;
            if (params_.trackDistance) {
                e->distance = e->distance == 0
                                  ? clamped_dist
                                  : std::min(e->distance, clamped_dist);
            }
        }
        break;
      }
    }

    ++updates_;
    maybeCyclicClear();
}

void
Cht::maybeCyclicClear()
{
    if (params_.clearInterval != 0 &&
        updates_ % params_.clearInterval == 0) {
        clear();
    }
}

void
Cht::corruptRandomBit(Rng &rng)
{
    // Pick uniformly over the table's state bits: tagged entries
    // first (valid, tag, counter, distance), then tagless counters
    // and distances.
    if (!tagged_.empty() && (taglessCtr_.empty() || rng.chance(0.5))) {
        Entry &e = tagged_[rng.below(tagged_.size())];
        switch (rng.below(4)) {
          case 0:
            e.valid = !e.valid;
            break;
          case 1:
            e.tag ^= 1u << rng.below(params_.tagBits);
            break;
          case 2:
            e.counter ^= static_cast<std::uint8_t>(
                1u << rng.below(params_.counterBits));
            break;
          default:
            e.distance ^= static_cast<std::uint8_t>(
                1u << rng.below(6));
            break;
        }
        return;
    }
    if (!taglessCtr_.empty()) {
        const std::size_t i = rng.below(taglessCtr_.size());
        if (!taglessDist_.empty() && rng.chance(0.5)) {
            taglessDist_[i] ^= static_cast<std::uint8_t>(
                1u << rng.below(6));
        } else {
            taglessCtr_[i] ^= static_cast<std::uint8_t>(
                1u << rng.below(params_.counterBits));
        }
    }
}

void
Cht::clear()
{
    for (auto &e : tagged_)
        e = Entry{};
    std::fill(taglessCtr_.begin(), taglessCtr_.end(), 0);
    std::fill(taglessDist_.begin(), taglessDist_.end(), 0);
}

std::size_t
Cht::storageBits() const
{
    const std::size_t dist_bits = params_.trackDistance ? 6 : 0;
    std::size_t bits = 0;
    switch (params_.kind) {
      case ChtKind::Full:
        bits = params_.entries *
               (1 + params_.tagBits + params_.counterBits + dist_bits);
        break;
      case ChtKind::TagOnly:
        bits = params_.entries * (1 + params_.tagBits + dist_bits);
        break;
      case ChtKind::Tagless:
        bits = params_.entries * (params_.counterBits + dist_bits);
        break;
      case ChtKind::Combined:
        bits = params_.entries * (1 + params_.tagBits + dist_bits) +
               params_.taglessEntries * params_.counterBits;
        break;
    }
    return bits;
}

std::string
Cht::name() const
{
    std::string n = chtKindName(params_.kind);
    n += "-" + std::to_string(params_.entries);
    if (params_.trackDistance)
        n += "+dist";
    if (params_.pathBits > 0)
        n += "+path" + std::to_string(params_.pathBits);
    return n;
}

void
Cht::registerStats(StatsGroup g)
{
    g.bindCounter("updates", &updates_, "training updates applied");
    g.derived("storage_bits",
              [this] { return static_cast<double>(storageBits()); },
              "hardware budget of this organisation");
}

json::Value
Cht::saveState() const
{
    json::Value recs = json::Value::array();
    for (const Entry &e : tagged_) {
        json::Value rec = json::Value::array();
        rec.push(json::Value(static_cast<std::uint64_t>(e.valid)));
        rec.push(json::Value(static_cast<std::uint64_t>(e.tag)));
        rec.push(json::Value(static_cast<std::uint64_t>(e.counter)));
        rec.push(json::Value(static_cast<std::uint64_t>(e.distance)));
        rec.push(json::Value(e.lastUse));
        recs.push(std::move(rec));
    }
    json::Value st = json::Value::object();
    st.set("tagged", std::move(recs));
    st.set("tagless_ctr", stateio::packInts(taglessCtr_));
    st.set("tagless_dist", stateio::packInts(taglessDist_));
    st.set("tick", json::Value(tick_));
    st.set("updates", json::Value(updates_));
    return st;
}

void
Cht::loadState(const json::Value &state)
{
    const json::Value &recs = stateio::need(state, "tagged");
    if (!recs.isArray() || recs.size() != tagged_.size()) {
        stateio::fail("tagged", "CHT tagged table does not match the "
                                "configured geometry");
    }
    for (std::size_t i = 0; i < tagged_.size(); ++i) {
        const json::Value &rec = recs.at(i);
        if (!rec.isArray() || rec.size() != 5)
            stateio::fail("tagged", "entry has wrong arity");
        Entry &e = tagged_[i];
        e.valid = rec.at(0).asU64() != 0;
        e.tag = static_cast<std::uint32_t>(rec.at(1).asU64());
        e.counter = static_cast<std::uint8_t>(rec.at(2).asU64());
        e.distance = static_cast<std::uint8_t>(rec.at(3).asU64());
        e.lastUse = rec.at(4).asU64();
    }
    stateio::unpackInts(state, "tagless_ctr", taglessCtr_);
    stateio::unpackInts(state, "tagless_dist", taglessDist_);
    tick_ = stateio::needU64(state, "tick");
    updates_ = stateio::needU64(state, "updates");
}

} // namespace lrs
