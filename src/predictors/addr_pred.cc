#include "predictors/addr_pred.hh"

#include "common/diag.hh"
#include "common/state_io.hh"

namespace lrs
{

LoadAddressPredictor::LoadAddressPredictor(std::size_t entries,
                                           unsigned conf_bits,
                                           unsigned conf_threshold)
    : idxBits_(floorLog2(entries)),
      confMax_(static_cast<std::uint8_t>((1u << conf_bits) - 1)),
      confThreshold_(static_cast<std::uint8_t>(conf_threshold)),
      table_(entries)
{
    if (entries == 0 || !isPowerOf2(entries)) {
        throwConfig("pred.addr", "entries",
                    "table size must be a nonzero power of two (got " +
                        std::to_string(entries) + ")");
    }
    if (conf_bits < 1 || conf_bits > 7) {
        throwConfig("pred.addr", "conf_bits",
                    "confidence width must be 1..7 bits (got " +
                        std::to_string(conf_bits) + ")");
    }
    if (conf_threshold > confMax_) {
        throwConfig("pred.addr", "conf_threshold",
                    "threshold " + std::to_string(conf_threshold) +
                        " exceeds the " + std::to_string(conf_bits) +
                        "-bit confidence maximum " +
                        std::to_string(confMax_));
    }
}

LoadAddressPredictor::Prediction
LoadAddressPredictor::predict(Addr pc) const
{
    const Entry &e = table_[index(pc)];
    if (!e.valid || e.tag != tagOf(pc) || e.conf < confThreshold_)
        return {false, 0, 0, 0.0};
    return {true,
            static_cast<Addr>(static_cast<std::int64_t>(e.lastAddr) +
                              e.stride),
            e.stride, static_cast<double>(e.conf) / confMax_};
}

void
LoadAddressPredictor::update(Addr pc, Addr addr)
{
    Entry &e = table_[index(pc)];
    if (!e.valid || e.tag != tagOf(pc)) {
        e = Entry{};
        e.valid = true;
        e.tag = tagOf(pc);
        e.lastAddr = addr;
        e.stride = 0;
        e.conf = 0;
        return;
    }
    const std::int64_t observed =
        static_cast<std::int64_t>(addr) -
        static_cast<std::int64_t>(e.lastAddr);
    if (observed == e.stride) {
        if (e.conf < confMax_)
            ++e.conf;
    } else {
        if (e.conf > 0) {
            --e.conf;
        } else {
            e.stride = observed;
        }
    }
    e.lastAddr = addr;
}

void
LoadAddressPredictor::reset()
{
    for (auto &e : table_)
        e = Entry{};
}

json::Value
LoadAddressPredictor::saveState() const
{
    json::Value recs = json::Value::array();
    for (const Entry &e : table_) {
        json::Value rec = json::Value::array();
        rec.push(json::Value(static_cast<std::uint64_t>(e.tag)));
        rec.push(json::Value(static_cast<std::uint64_t>(e.valid)));
        rec.push(json::Value(e.lastAddr));
        rec.push(json::Value(static_cast<std::int64_t>(e.stride)));
        rec.push(json::Value(static_cast<std::uint64_t>(e.conf)));
        recs.push(std::move(rec));
    }
    json::Value st = json::Value::object();
    st.set("table", std::move(recs));
    return st;
}

void
LoadAddressPredictor::loadState(const json::Value &state)
{
    const json::Value &recs = stateio::need(state, "table");
    if (!recs.isArray() || recs.size() != table_.size()) {
        stateio::fail("table", "address-predictor table does not "
                               "match the configured geometry");
    }
    for (std::size_t i = 0; i < table_.size(); ++i) {
        const json::Value &rec = recs.at(i);
        if (!rec.isArray() || rec.size() != 5)
            stateio::fail("table", "entry has wrong arity");
        Entry &e = table_[i];
        e.tag = static_cast<std::uint32_t>(rec.at(0).asU64());
        e.valid = rec.at(1).asU64() != 0;
        e.lastAddr = rec.at(2).asU64();
        e.stride = rec.at(3).asI64();
        e.conf = static_cast<std::uint8_t>(rec.at(4).asU64());
    }
}

std::size_t
LoadAddressPredictor::storageBits() const
{
    // tag(12) + last addr (32 stored) + stride (16) + conf(2)
    return table_.size() * (12 + 32 + 16 + 2);
}

} // namespace lrs
