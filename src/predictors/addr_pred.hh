/**
 * @file
 * Load address predictor, a simplified stride-based version of the
 * correlated load-address predictor of [Beke99] that the paper adapts
 * for bank prediction ("an address predictor is obviously extremely
 * well suited to be adapted for bank prediction, since the bank is
 * based solely on the load's effective address").
 *
 * Per static load: last address, current stride, and a confidence
 * counter. A prediction (last + stride) is offered only when the
 * stride has repeated, which is what gives the address-based bank
 * predictor its high accuracy at a high prediction rate.
 */

#ifndef LRS_PREDICTORS_ADDR_PRED_HH
#define LRS_PREDICTORS_ADDR_PRED_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitutils.hh"
#include "common/json.hh"
#include "common/types.hh"

namespace lrs
{

class LoadAddressPredictor
{
  public:
    struct Prediction
    {
        bool valid;
        Addr addr;
        /** The learned stride (0 for same-address loads). */
        std::int64_t stride;
        double confidence;
    };

    /**
     * @param entries table entries (power of two)
     * @param conf_bits width of the per-entry confidence counter
     * @param conf_threshold counter value needed to emit a prediction
     */
    explicit LoadAddressPredictor(std::size_t entries = 1024,
                                  unsigned conf_bits = 2,
                                  unsigned conf_threshold = 2);

    /** Predict the next effective address of the load at @p pc. */
    Prediction predict(Addr pc) const;

    /** Train with the actual effective address. */
    void update(Addr pc, Addr addr);

    void reset();
    std::size_t storageBits() const;
    std::string name() const { return "stride-addr"; }

    /** Machine-snapshot support: every table entry, exactly. */
    json::Value saveState() const;
    void loadState(const json::Value &state);

  private:
    struct Entry
    {
        std::uint32_t tag = 0;
        bool valid = false;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        std::uint8_t conf = 0;
    };

    std::size_t index(Addr pc) const
    {
        return foldXor(pc >> 1, idxBits_) & mask(idxBits_);
    }

    std::uint32_t tagOf(Addr pc) const
    {
        return static_cast<std::uint32_t>((pc >> (1 + idxBits_)) &
                                          mask(12));
    }

    unsigned idxBits_;
    std::uint8_t confMax_;
    std::uint8_t confThreshold_;
    std::vector<Entry> table_;
};

} // namespace lrs

#endif // LRS_PREDICTORS_ADDR_PRED_HH
