/**
 * @file
 * Collision History Tables (paper section 2.1).
 *
 * The CHT predicts whether a load will *collide* with some older,
 * not-yet-executed store in the scheduling window. Four practical
 * structures from the paper are implemented:
 *
 *  - Full CHT: tagged, set-associative, an n-bit counter per entry and
 *    optionally a collision distance; allocated on first collision.
 *  - Implicit-predictor (tag-only) CHT: tags only; a hit *is* the
 *    colliding prediction (a sticky, effectively 0-bit predictor).
 *  - Tagless CHT: direct-mapped counters indexed by PC bits; small
 *    entries allow many of them but aliasing interferes.
 *  - Combined: tag-only + tagless; in the conservative mode a load is
 *    predicted non-colliding only when the tag misses AND the tagless
 *    state is non-colliding (maximises AC-PC); the alternate mode
 *    requires both tables to agree on colliding (maximises ANC-PNC).
 *
 * The *exclusive* variant annotates each entry with the minimal
 * observed store-distance to the collider, letting a colliding load
 * still bypass every store younger than the predicted one.
 */

#ifndef LRS_PREDICTORS_CHT_HH
#define LRS_PREDICTORS_CHT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/diag.hh"
#include "common/json.hh"
#include "common/stats_registry.hh"
#include "common/types.hh"

namespace lrs
{

class Rng;

/** The four CHT organisations of Figure 2 / section 4.1. */
enum class ChtKind
{
    Full,
    TagOnly,
    Tagless,
    Combined,
};

const char *chtKindName(ChtKind k);

/** Configuration of a CHT instance. */
struct ChtParams
{
    ChtKind kind = ChtKind::Full;
    /** Entries of the primary table (power of two). */
    std::size_t entries = 2048;
    /** Associativity of tagged tables. */
    unsigned assoc = 4;
    /** Counter width for Full/Tagless (1 or 2 in the paper). */
    unsigned counterBits = 2;
    /** Sticky predictor instead of a counter (Full only). */
    bool sticky = false;
    /** Keep the minimal collision distance (exclusive predictor). */
    bool trackDistance = false;
    /** Partial tag width for tagged tables. */
    unsigned tagBits = 16;
    /** Tagless-table entries for the Combined kind. */
    std::size_t taglessEntries = 4096;
    /** Clear the table every N updates (0 = never), cf. [Chry98]. */
    std::uint64_t clearInterval = 0;
    /**
     * Fold this many bits of branch-path history into the index,
     * giving the same static load different table entries on
     * different execution paths — the paper's trace-cache hint idea
     * ("different behaviors for the same load instruction based on
     * execution path", section 2.1). 0 = plain PC indexing.
     */
    unsigned pathBits = 0;
    /**
     * Combined mode: true = predict colliding when EITHER table says
     * so (conservative, maximises AC-PC); false = only when BOTH do.
     */
    bool combineConservative = true;

    /**
     * Every violated constraint of this parameter set, all at once
     * (empty = valid). Diags are named under @p component
     * ("pred.cht" by default).
     */
    std::vector<Diag> validate(
        const std::string &component = "pred.cht") const;
};

/**
 * A Collision History Table.
 */
class Cht
{
  public:
    /** Saturation limit of the stored collision distance. */
    static constexpr unsigned kMaxDistance = 63;

    struct Prediction
    {
        bool colliding;
        /** Predicted store-distance (1 = closest); 0 = unknown. */
        unsigned distance;
        /**
         * Raw saturating-counter value behind the prediction (0 on a
         * structural miss; tag-only hits report 1). Telemetry feeds
         * this to the confidence histogram; it plays no part in the
         * prediction itself.
         */
        unsigned confidence = 0;
    };

    explicit Cht(const ChtParams &params);

    /**
     * Predict for the load at @p pc. @p path is the branch-path
     * history at prediction time (ignored unless pathBits > 0).
     */
    Prediction predict(Addr pc, std::uint64_t path = 0) const;

    /**
     * Train with the load's actual behaviour. @p distance is the
     * store-distance of the actual collider (ignored if !collided or
     * distance tracking is off); @p path must be the history the
     * prediction was made with.
     */
    void update(Addr pc, bool collided, unsigned distance = 0,
                std::uint64_t path = 0);

    /** Drop all state (also used by the cyclic-clearing policy). */
    void clear();

    /**
     * Fault injection: flip one random state bit (a counter,
     * distance, tag or valid bit chosen by @p rng). Collision
     * predictions are speculation hints, so corrupted state may only
     * change timing, never correctness — the fault-injection tests
     * rely on this method to prove it.
     */
    void corruptRandomBit(Rng &rng);

    /** Hardware budget in bits. */
    std::size_t storageBits() const;

    const ChtParams &params() const { return params_; }

    std::string name() const;

    /** Training updates applied so far. */
    std::uint64_t updates() const { return updates_; }

    /** Register this table's stats under @p g (e.g. "pred.cht"). */
    void registerStats(StatsGroup g);

    /**
     * Machine-snapshot support (core/snapshot.hh): every tagged
     * entry, both tagless tables, the LRU tick and the update count,
     * exactly. loadState() requires the same geometry.
     */
    json::Value saveState() const;
    void loadState(const json::Value &state);

  private:
    struct Entry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        std::uint8_t counter = 0;
        std::uint8_t distance = 0; // 0 = none recorded
        std::uint64_t lastUse = 0;
    };

    /** PC with the configured slice of path history mixed in. */
    Addr keyOf(Addr pc, std::uint64_t path) const;

    // Tagged-table helpers (Full / TagOnly / Combined's tag part).
    const Entry *lookupTagged(Addr key) const;
    Entry *lookupTagged(Addr key);
    Entry *allocateTagged(Addr key);
    std::size_t setIndex(Addr key) const;
    std::uint32_t tagOf(Addr key) const;

    // Tagless-table helpers (Tagless / Combined's tagless part).
    std::size_t taglessIndex(Addr key) const;

    bool counterPredicts(std::uint8_t c) const;
    void counterTrain(std::uint8_t &c, bool up) const;

    void maybeCyclicClear();

    ChtParams params_;
    unsigned setBits_ = 0;      // tagged table
    unsigned taglessBits_ = 0;  // tagless table
    std::vector<Entry> tagged_;
    std::vector<std::uint8_t> taglessCtr_;
    std::vector<std::uint8_t> taglessDist_;
    std::uint64_t tick_ = 0;
    std::uint64_t updates_ = 0;
};

} // namespace lrs

#endif // LRS_PREDICTORS_CHT_HH
