#include "predictors/hitmiss.hh"

#include <stdexcept>
#include <vector>

#include "predictors/chooser.hh"
#include "predictors/gshare.hh"
#include "predictors/gskew.hh"
#include "predictors/local.hh"

namespace lrs
{

std::unique_ptr<HitMissPredictor>
makeLocalHmp()
{
    return std::make_unique<TableHmp>(
        std::make_unique<LocalPredictor>(2048, 8));
}

std::unique_ptr<HitMissPredictor>
makeChooserHmp()
{
    std::vector<CompositePredictor::Component> comps;
    comps.push_back({std::make_unique<LocalPredictor>(512, 8), 1.0});
    comps.push_back({std::make_unique<GsharePredictor>(11), 1.0});
    comps.push_back({std::make_unique<GskewPredictor>(1024, 20), 1.0});
    return std::make_unique<TableHmp>(
        std::make_unique<CompositePredictor>(std::move(comps),
                                             ChoosePolicy::Majority));
}

std::unique_ptr<HitMissPredictor>
makeTimingLocalHmp()
{
    return std::make_unique<TimingHmp>(makeLocalHmp());
}

std::unique_ptr<HitMissPredictor>
makeHmp(const std::string &which)
{
    if (which == "always-hit")
        return std::make_unique<AlwaysHitHmp>();
    if (which == "local")
        return makeLocalHmp();
    if (which == "chooser")
        return makeChooserHmp();
    if (which == "local+timing")
        return makeTimingLocalHmp();
    throw std::invalid_argument("unknown hit-miss predictor: " + which);
}

} // namespace lrs
