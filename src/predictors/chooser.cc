#include "predictors/chooser.hh"

#include <cmath>

namespace lrs
{

CompositePredictor::MaybePrediction
CompositePredictor::predictMaybe(Addr pc) const
{
    double sum = 0.0;
    double total_weight = 0.0;
    bool any_vote = false;

    for (const auto &c : components_) {
        const auto p = c.pred->predict(pc);
        const double sign = p.taken ? 1.0 : -1.0;
        switch (policy_) {
          case ChoosePolicy::Majority:
            sum += sign;
            total_weight += 1.0;
            any_vote = true;
            break;
          case ChoosePolicy::WeightedThreshold:
            sum += sign * c.weight;
            total_weight += c.weight;
            any_vote = true;
            break;
          case ChoosePolicy::ConfidenceFiltered:
            if (p.confidence >= confCutoff_) {
                sum += sign * c.weight;
                total_weight += c.weight;
                any_vote = true;
            }
            break;
          case ChoosePolicy::ConfidenceWeighted:
            sum += sign * c.weight * p.confidence;
            total_weight += c.weight;
            any_vote = true;
            break;
        }
    }

    MaybePrediction out;
    out.taken = sum > 0.0;
    out.confidence =
        total_weight > 0.0 ? std::abs(sum) / total_weight : 0.0;
    switch (policy_) {
      case ChoosePolicy::Majority:
        out.valid = true;
        break;
      default:
        out.valid = any_vote && std::abs(sum) >= threshold_;
        break;
    }
    return out;
}

std::size_t
CompositePredictor::storageBits() const
{
    std::size_t bits = 0;
    for (const auto &c : components_)
        bits += c.pred->storageBits();
    return bits;
}

std::string
CompositePredictor::name() const
{
    std::string n;
    for (const auto &c : components_) {
        if (!n.empty())
            n += "+";
        if (c.weight != 1.0)
            n += std::to_string(static_cast<int>(c.weight)) + "*";
        n += c.pred->name();
    }
    return n;
}

} // namespace lrs
