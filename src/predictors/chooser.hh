/**
 * @file
 * Composite predictors: several binary components combined by a
 * chooser policy. The paper uses a simple majority vote as the
 * hit-miss "chooser" (section 2.2) and evaluates four combination
 * policies for bank prediction (section 2.3):
 *   1. simple majority vote;
 *   2. weighted sum with a prediction threshold;
 *   3. only high-confidence component predictions are counted;
 *   4. component weights scaled by their confidence.
 * Policies 2-4 may *decline* to predict — the prediction-rate /
 * accuracy trade-off Figure 12 sweeps.
 */

#ifndef LRS_PREDICTORS_CHOOSER_HH
#define LRS_PREDICTORS_CHOOSER_HH

#include <memory>
#include <vector>

#include "common/state_io.hh"
#include "predictors/binary.hh"

namespace lrs
{

/** How a composite combines its component votes. */
enum class ChoosePolicy
{
    Majority,           ///< unweighted vote, always predicts
    WeightedThreshold,  ///< signed weighted sum, |sum| >= threshold
    ConfidenceFiltered, ///< only confident components vote
    ConfidenceWeighted, ///< weights scaled by component confidence
};

/**
 * A composite of binary predictors under a chooser policy.
 *
 * Exposes both a forced prediction (BinaryPredictor interface: the
 * sign of the vote sum) and a "maybe" prediction that can decline
 * (used by the bank predictor, where declined loads are replicated to
 * all banks).
 */
class CompositePredictor : public BinaryPredictor
{
  public:
    struct Component
    {
        std::unique_ptr<BinaryPredictor> pred;
        double weight = 1.0;
    };

    /** A prediction that may be withheld. */
    struct MaybePrediction
    {
        bool valid;
        bool taken;
        double confidence;
    };

    CompositePredictor(std::vector<Component> components,
                       ChoosePolicy policy = ChoosePolicy::Majority,
                       double threshold = 0.0,
                       double conf_cutoff = 0.5)
        : components_(std::move(components)), policy_(policy),
          threshold_(threshold), confCutoff_(conf_cutoff)
    {
    }

    /** Combined prediction that may decline. */
    MaybePrediction predictMaybe(Addr pc) const;

    Prediction
    predict(Addr pc) const override
    {
        const auto m = predictMaybe(pc);
        return {m.taken, m.confidence};
    }

    void
    update(Addr pc, bool taken) override
    {
        for (auto &c : components_)
            c.pred->update(pc, taken);
    }

    void
    reset() override
    {
        for (auto &c : components_)
            c.pred->reset();
    }

    std::size_t storageBits() const override;
    std::string name() const override;

    std::size_t numComponents() const { return components_.size(); }

    /** Per-component fan-out, positional (composition is config). */
    json::Value
    saveState() const override
    {
        json::Value arr = json::Value::array();
        for (const auto &c : components_)
            arr.push(c.pred->saveState());
        json::Value st = json::Value::object();
        st.set("components", std::move(arr));
        return st;
    }

    void
    loadState(const json::Value &state) override
    {
        const json::Value &arr = stateio::need(state, "components");
        if (!arr.isArray() || arr.size() != components_.size()) {
            stateio::fail("components",
                          "composite component count does not match "
                          "the configured predictor");
        }
        for (std::size_t i = 0; i < components_.size(); ++i)
            components_[i].pred->loadState(arr.at(i));
    }

  private:
    std::vector<Component> components_;
    ChoosePolicy policy_;
    double threshold_;
    double confCutoff_;
};

} // namespace lrs

#endif // LRS_PREDICTORS_CHOOSER_HH
