/**
 * @file
 * Store-set memory dependence predictor, after Chrysos & Emer
 * [Chry98] — the mechanism the paper positions its CHT against
 * ("similar ... but much more cost effective").
 *
 * Two tables: the SSIT maps instruction PCs (loads AND stores) to a
 * store-set ID; the LFST tracks, per set, the last fetched store of
 * that set still in flight. A load whose PC maps to a set must wait
 * for that store to complete. Sets are built by merging the PCs of a
 * load and a store that caused an ordering violation, and the tables
 * are cleared cyclically to shed stale assignments (as the original
 * paper prescribes).
 *
 * Simplification vs [Chry98]: store-to-store ordering within a set is
 * not enforced (our pipeline model already executes STAs in order of
 * readiness, and the load-store edge is what the evaluation needs).
 */

#ifndef LRS_PREDICTORS_STORE_SETS_HH
#define LRS_PREDICTORS_STORE_SETS_HH

#include <cstdint>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace lrs
{

class StoreSets
{
  public:
    /** Marker for "no store set" / "no store to wait for". */
    static constexpr std::uint32_t kNoSet = 0xffffffff;

    /**
     * @param ssit_entries SSIT entries (power of two)
     * @param num_sets LFST entries (maximum live store sets)
     * @param clear_interval training events between cyclic clears
     *        (0 = never)
     */
    explicit StoreSets(std::size_t ssit_entries = 4096,
                       std::size_t num_sets = 128,
                       std::uint64_t clear_interval = 30000);

    /**
     * A store at @p pc with sequence number @p seq was renamed:
     * if the store belongs to a set, it becomes that set's last
     * fetched store.
     */
    void storeRenamed(Addr pc, SeqNum seq);

    /**
     * A store completed (or retired): if it is still its set's last
     * fetched store, the set empties.
     */
    void storeCompleted(Addr pc, SeqNum seq);

    /**
     * A load at @p pc was renamed: returns the sequence number of the
     * store it must wait for, or kNoStoreSeq if unconstrained.
     */
    static constexpr SeqNum kNoStoreSeq =
        ~static_cast<SeqNum>(0);
    SeqNum loadRenamed(Addr pc) const;

    /**
     * Train on an ordering violation between the load at @p load_pc
     * and the store at @p store_pc (Chrysos-Emer assignment rules).
     */
    void violation(Addr load_pc, Addr store_pc);

    /** Drop every assignment. */
    void clear();

    /** Hardware budget in bits. */
    std::size_t storageBits() const;

    /**
     * Machine-snapshot support (core/snapshot.hh): both tables, the
     * allocation cursor and the cyclic-clear event count, exactly.
     */
    json::Value saveState() const;
    void loadState(const json::Value &state);

  private:
    std::size_t index(Addr pc) const;

    std::vector<std::uint32_t> ssit_; ///< pc -> set id (kNoSet = none)
    struct Lfst
    {
        SeqNum seq = 0;
        bool valid = false;
    };
    std::vector<Lfst> lfst_;
    std::uint32_t nextSet_ = 0;
    std::uint64_t clearInterval_;
    std::uint64_t events_ = 0;
};

} // namespace lrs

#endif // LRS_PREDICTORS_STORE_SETS_HH
