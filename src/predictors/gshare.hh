/**
 * @file
 * Gshare predictor [Mcfa93]: a PHT of saturating counters indexed by
 * the xor of global outcome history and the PC. Used as a hit-miss
 * component ("history length of 11 loads") and in the bank-predictor
 * composites.
 */

#ifndef LRS_PREDICTORS_GSHARE_HH
#define LRS_PREDICTORS_GSHARE_HH

#include <vector>

#include "common/bitutils.hh"
#include "common/sat_counter.hh"
#include "common/state_io.hh"
#include "predictors/binary.hh"

namespace lrs
{

class GsharePredictor : public BinaryPredictor
{
  public:
    /**
     * @param history_bits global history length; the PHT has
     *        2^history_bits counters
     */
    /**
     * @param initial initial counter value; a weakly-taken bias
     *        (e.g. 2 for 2-bit counters) suits branch streams, while 0
     *        (not-taken = hit / non-colliding) suits the load
     *        adaptations.
     */
    explicit GsharePredictor(unsigned history_bits = 11,
                             unsigned counter_bits = 2,
                             std::uint8_t initial = 0)
        : histBits_((checkGshareParams(history_bits), history_bits)),
          initial_(initial),
          pht_(std::size_t{1} << history_bits,
               SatCounter(counter_bits, initial))
    {
    }

    Prediction
    predict(Addr pc) const override
    {
        const auto &c = pht_[index(pc)];
        return {c.predict(), c.confidence()};
    }

    void
    update(Addr pc, bool taken) override
    {
        pht_[index(pc)].update(taken);
        ghist_ = ((ghist_ << 1) | (taken ? 1 : 0)) & mask(histBits_);
    }

    void
    reset() override
    {
        ghist_ = 0;
        for (auto &c : pht_)
            c.set(initial_);
    }

    std::size_t
    storageBits() const override
    {
        return pht_.size() * 2 + histBits_;
    }

    std::string name() const override { return "gshare"; }

    json::Value
    saveState() const override
    {
        json::Value st = json::Value::object();
        st.set("ghist", json::Value(ghist_));
        st.set("pht", stateio::packCounters(pht_));
        return st;
    }

    void
    loadState(const json::Value &state) override
    {
        stateio::unpackCounters(state, "pht", pht_);
        ghist_ = stateio::needU64(state, "ghist") & mask(histBits_);
    }

  private:
    /** PHT size is 2^history_bits; cap it before the allocation. */
    static void
    checkGshareParams(unsigned history_bits)
    {
        if (history_bits < 1 || history_bits > 24) {
            throwConfig("pred.gshare", "history_bits",
                        "history length must be 1..24 (got " +
                            std::to_string(history_bits) + ")");
        }
    }

    std::size_t
    index(Addr pc) const
    {
        return (foldXor(pc >> 1, histBits_) ^ ghist_) & mask(histBits_);
    }

    unsigned histBits_;
    std::uint8_t initial_;
    std::uint64_t ghist_ = 0;
    std::vector<SatCounter> pht_;
};

} // namespace lrs

#endif // LRS_PREDICTORS_GSHARE_HH
