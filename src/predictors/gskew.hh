/**
 * @file
 * Enhanced-skewed (gskew) predictor [Mich97]: three counter banks
 * indexed by decorrelated hashes of (PC, global history); the
 * prediction is the majority of the three banks. Trades conflict
 * aliasing for capacity aliasing exactly as the paper's hit-miss and
 * bank composites require ("each table has 1K entries, and the hash
 * functions operate on a history of 20 loads").
 */

#ifndef LRS_PREDICTORS_GSKEW_HH
#define LRS_PREDICTORS_GSKEW_HH

#include <array>
#include <vector>

#include "common/bitutils.hh"
#include "common/sat_counter.hh"
#include "common/state_io.hh"
#include "predictors/binary.hh"

namespace lrs
{

class GskewPredictor : public BinaryPredictor
{
  public:
    /**
     * @param table_entries counters per bank (power of two)
     * @param history_bits global history folded into the hashes
     */
    explicit GskewPredictor(std::size_t table_entries = 1024,
                            unsigned history_bits = 20,
                            unsigned counter_bits = 2)
        : idxBits_(floorLog2(table_entries)), histBits_(history_bits)
    {
        if (!isPowerOf2(table_entries)) {
            throwConfig("pred.gskew", "table_entries",
                        "bank size must be a power of two (got " +
                            std::to_string(table_entries) + ")");
        }
        for (auto &t : banks_)
            t.assign(table_entries, SatCounter(counter_bits));
    }

    Prediction
    predict(Addr pc) const override
    {
        int votes = 0;
        double conf = 0.0;
        for (unsigned b = 0; b < 3; ++b) {
            const auto &c = banks_[b][index(pc, b)];
            votes += c.predict() ? 1 : -1;
            conf += c.confidence();
        }
        return {votes > 0, conf / 3.0};
    }

    void
    update(Addr pc, bool taken) override
    {
        for (unsigned b = 0; b < 3; ++b)
            banks_[b][index(pc, b)].update(taken);
        ghist_ = ((ghist_ << 1) | (taken ? 1 : 0)) & mask(histBits_);
    }

    void
    reset() override
    {
        ghist_ = 0;
        for (auto &t : banks_)
            for (auto &c : t)
                c.set(0);
    }

    std::size_t
    storageBits() const override
    {
        return 3 * banks_[0].size() * 2 + histBits_;
    }

    std::string name() const override { return "gskew"; }

    json::Value
    saveState() const override
    {
        json::Value st = json::Value::object();
        st.set("ghist", json::Value(ghist_));
        st.set("bank0", stateio::packCounters(banks_[0]));
        st.set("bank1", stateio::packCounters(banks_[1]));
        st.set("bank2", stateio::packCounters(banks_[2]));
        return st;
    }

    void
    loadState(const json::Value &state) override
    {
        stateio::unpackCounters(state, "bank0", banks_[0]);
        stateio::unpackCounters(state, "bank1", banks_[1]);
        stateio::unpackCounters(state, "bank2", banks_[2]);
        ghist_ = stateio::needU64(state, "ghist") & mask(histBits_);
    }

  private:
    std::size_t
    index(Addr pc, unsigned bank) const
    {
        const std::uint64_t h =
            mix64((pc >> 1) * 0x9e3779b97f4a7c15ULL + bank * 0x7f4a7c15 +
                  (ghist_ << 3));
        return h & mask(idxBits_);
    }

    unsigned idxBits_;
    unsigned histBits_;
    std::uint64_t ghist_ = 0;
    std::array<std::vector<SatCounter>, 3> banks_;
};

} // namespace lrs

#endif // LRS_PREDICTORS_GSKEW_HH
