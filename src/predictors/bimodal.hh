/**
 * @file
 * Bimodal predictor: a tagless, direct-mapped table of saturating
 * counters indexed by (folded) PC. The simplest history-free component
 * used in the paper's bank-predictor composites.
 */

#ifndef LRS_PREDICTORS_BIMODAL_HH
#define LRS_PREDICTORS_BIMODAL_HH

#include <vector>

#include "common/bitutils.hh"
#include "common/sat_counter.hh"
#include "common/state_io.hh"
#include "predictors/binary.hh"

namespace lrs
{

class BimodalPredictor : public BinaryPredictor
{
  public:
    /**
     * @param entries number of counters (power of two)
     * @param counter_bits counter width
     */
    explicit BimodalPredictor(std::size_t entries = 2048,
                              unsigned counter_bits = 2)
        : indexBits_(floorLog2(entries)),
          table_(entries, SatCounter(counter_bits))
    {
        if (!isPowerOf2(entries)) {
            throwConfig("pred.bimodal", "entries",
                        "table size must be a power of two (got " +
                            std::to_string(entries) + ")");
        }
    }

    Prediction
    predict(Addr pc) const override
    {
        const auto &c = table_[index(pc)];
        return {c.predict(), c.confidence()};
    }

    void
    update(Addr pc, bool taken) override
    {
        table_[index(pc)].update(taken);
    }

    void
    reset() override
    {
        for (auto &c : table_)
            c.set(0);
    }

    std::size_t
    storageBits() const override
    {
        return table_.size() * 2;
    }

    std::string name() const override { return "bimodal"; }

    json::Value
    saveState() const override
    {
        json::Value st = json::Value::object();
        st.set("table", stateio::packCounters(table_));
        return st;
    }

    void
    loadState(const json::Value &state) override
    {
        stateio::unpackCounters(state, "table", table_);
    }

  private:
    std::size_t index(Addr pc) const
    {
        return foldXor(pc >> 1, indexBits_) & mask(indexBits_);
    }

    unsigned indexBits_;
    std::vector<SatCounter> table_;
};

} // namespace lrs

#endif // LRS_PREDICTORS_BIMODAL_HH
