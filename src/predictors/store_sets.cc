#include "predictors/store_sets.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/diag.hh"
#include "common/state_io.hh"

namespace lrs
{

StoreSets::StoreSets(std::size_t ssit_entries, std::size_t num_sets,
                     std::uint64_t clear_interval)
    : ssit_(ssit_entries, kNoSet), lfst_(num_sets),
      clearInterval_(clear_interval)
{
    if (ssit_entries == 0 || !isPowerOf2(ssit_entries)) {
        throwConfig("pred.store_sets", "ssit_entries",
                    "SSIT size must be a nonzero power of two (got " +
                        std::to_string(ssit_entries) + ")");
    }
    if (num_sets == 0) {
        throwConfig("pred.store_sets", "num_sets",
                    "LFST must have at least one set (got 0)");
    }
}

std::size_t
StoreSets::index(Addr pc) const
{
    return foldXor(pc >> 1, floorLog2(ssit_.size())) &
           (ssit_.size() - 1);
}

void
StoreSets::storeRenamed(Addr pc, SeqNum seq)
{
    const std::uint32_t sid = ssit_[index(pc)];
    if (sid == kNoSet)
        return;
    lfst_[sid].seq = seq;
    lfst_[sid].valid = true;
}

void
StoreSets::storeCompleted(Addr pc, SeqNum seq)
{
    const std::uint32_t sid = ssit_[index(pc)];
    if (sid == kNoSet)
        return;
    if (lfst_[sid].valid && lfst_[sid].seq == seq)
        lfst_[sid].valid = false;
}

SeqNum
StoreSets::loadRenamed(Addr pc) const
{
    const std::uint32_t sid = ssit_[index(pc)];
    if (sid == kNoSet || !lfst_[sid].valid)
        return kNoStoreSeq;
    return lfst_[sid].seq;
}

void
StoreSets::violation(Addr load_pc, Addr store_pc)
{
    ++events_;
    if (clearInterval_ != 0 && events_ % clearInterval_ == 0) {
        clear();
        return;
    }

    std::uint32_t &ls = ssit_[index(load_pc)];
    std::uint32_t &ss = ssit_[index(store_pc)];
    if (ls == kNoSet && ss == kNoSet) {
        // Neither has a set: allocate one for both.
        const std::uint32_t sid =
            nextSet_++ % static_cast<std::uint32_t>(lfst_.size());
        ls = sid;
        ss = sid;
    } else if (ls == kNoSet) {
        ls = ss;
    } else if (ss == kNoSet) {
        ss = ls;
    } else {
        // Both assigned: merge into the smaller ID ([Chry98] rule,
        // which keeps merging convergent).
        const std::uint32_t winner = std::min(ls, ss);
        ls = winner;
        ss = winner;
    }
}

void
StoreSets::clear()
{
    std::fill(ssit_.begin(), ssit_.end(), kNoSet);
    for (auto &l : lfst_)
        l.valid = false;
}

std::size_t
StoreSets::storageBits() const
{
    // SSIT: a set ID per entry; LFST: a sequence tag + valid per set.
    const std::size_t sid_bits = ceilLog2(lfst_.size()) + 1;
    return ssit_.size() * sid_bits + lfst_.size() * (8 + 1);
}

json::Value
StoreSets::saveState() const
{
    json::Value lfst = json::Value::array();
    for (const Lfst &l : lfst_) {
        json::Value rec = json::Value::array();
        rec.push(json::Value(l.seq));
        rec.push(json::Value(static_cast<std::uint64_t>(l.valid)));
        lfst.push(std::move(rec));
    }
    json::Value st = json::Value::object();
    st.set("ssit", stateio::packInts(ssit_));
    st.set("lfst", std::move(lfst));
    st.set("next_set", json::Value(
        static_cast<std::uint64_t>(nextSet_)));
    st.set("events", json::Value(events_));
    return st;
}

void
StoreSets::loadState(const json::Value &state)
{
    stateio::unpackInts(state, "ssit", ssit_);
    const json::Value &lfst = stateio::need(state, "lfst");
    if (!lfst.isArray() || lfst.size() != lfst_.size()) {
        stateio::fail("lfst", "LFST does not match the configured "
                              "store-set count");
    }
    for (std::size_t i = 0; i < lfst_.size(); ++i) {
        const json::Value &rec = lfst.at(i);
        if (!rec.isArray() || rec.size() != 2)
            stateio::fail("lfst", "entry has wrong arity");
        lfst_[i].seq = rec.at(0).asU64();
        lfst_[i].valid = rec.at(1).asU64() != 0;
    }
    nextSet_ = static_cast<std::uint32_t>(
        stateio::needU64(state, "next_set"));
    events_ = stateio::needU64(state, "events");
}

} // namespace lrs
