/**
 * @file
 * Data-cache hit-miss predictors (paper section 2.2).
 *
 * A HitMissPredictor gives a per-load binary hit/miss prediction for
 * the first-level data cache. Configurations from the paper:
 *
 *  - always-hit: what "most processors today" do implicitly;
 *  - local-only: a two-level local predictor with a tagless table of
 *    2048 entries and a history length of 8 (~2KB);
 *  - chooser (hybrid): local (512 entries) + gshare (11-load history)
 *    + gskew (3 x 1K entries, 20-load history) combined by a simple
 *    majority vote (< 2KB total);
 *  - timing-assisted: wraps another predictor and consults the
 *    outstanding-miss queue / recently-serviced buffer — a load whose
 *    line has an in-flight miss is a (dynamic) miss, a load whose line
 *    was just serviced is a hit.
 */

#ifndef LRS_PREDICTORS_HITMISS_HH
#define LRS_PREDICTORS_HITMISS_HH

#include <memory>
#include <string>

#include "common/state_io.hh"
#include "common/stats_registry.hh"
#include "predictors/addr_pred.hh"
#include "predictors/binary.hh"

namespace lrs
{

/**
 * Per-load L1 hit/miss predictor. "Taken" polarity is *miss*.
 */
class HitMissPredictor
{
  public:
    virtual ~HitMissPredictor() = default;

    /** Timing hint from the memory hierarchy (may be absent). */
    struct Hint
    {
        bool outstandingMiss = false;
        bool recentFill = false;
    };

    /** Predict: true = the load will miss L1. */
    virtual bool predictMiss(Addr pc,
                             const Hint *hint = nullptr) const = 0;

    /**
     * Confidence in [0, 1] behind predictMiss() for @p pc, for the
     * telemetry confidence histogram. Purely observational — never
     * consulted by the scheduling machinery — and 0 where the
     * underlying structure has no confidence notion.
     */
    virtual double missConfidence(Addr /*pc*/) const { return 0.0; }

    /**
     * Which line's timing state (outstanding-miss queue / recently-
     * serviced buffer) the machine should probe on behalf of this
     * predictor. Timing structures are indexed by address, and the
     * effective address is unknown at schedule time, so it must be
     * *predicted* (paper section 2.2: "an address predictor can be
     * queried and the result used to check cache-line dependence").
     * Returns kAddrInvalid when no (confident) prediction exists.
     */
    virtual Addr timingProbeAddr(Addr /*pc*/) const
    {
        return kAddrInvalid;
    }

    /**
     * Train with the actual outcome; @p addr is the load's actual
     * effective address (used by address-assisted configurations).
     */
    virtual void update(Addr pc, bool miss,
                        Addr addr = kAddrInvalid) = 0;

    virtual std::size_t storageBits() const = 0;
    virtual std::string name() const = 0;

    /**
     * Register predictor-level stats under @p g (e.g. "pred.hmp").
     * The base registers the hardware budget; subclasses may extend.
     * Outcome counts (AH-PH etc.) are scored by the core, which
     * registers them alongside.
     */
    virtual void
    registerStats(StatsGroup g)
    {
        g.derived("storage_bits",
                  [this] {
                      return static_cast<double>(storageBits());
                  },
                  "hardware budget of this predictor");
    }

    /**
     * Machine-snapshot support (core/snapshot.hh). The default suits
     * stateless predictors (always-hit, perfect): nothing to save,
     * nothing to restore.
     */
    virtual json::Value saveState() const
    {
        return json::Value::object();
    }
    virtual void loadState(const json::Value & /*state*/) {}
};

/** The baseline: every load is predicted to hit. */
class AlwaysHitHmp : public HitMissPredictor
{
  public:
    bool
    predictMiss(Addr, const Hint *) const override
    {
        return false;
    }
    void update(Addr, bool, Addr) override {}
    std::size_t storageBits() const override { return 0; }
    std::string name() const override { return "always-hit"; }
};

/** Adapter running any binary predictor as a hit-miss predictor. */
class TableHmp : public HitMissPredictor
{
  public:
    explicit TableHmp(std::unique_ptr<BinaryPredictor> pred)
        : pred_(std::move(pred))
    {
    }

    bool
    predictMiss(Addr pc, const Hint *) const override
    {
        return pred_->predict(pc).taken;
    }

    double
    missConfidence(Addr pc) const override
    {
        return pred_->predict(pc).confidence;
    }

    void
    update(Addr pc, bool miss, Addr) override
    {
        pred_->update(pc, miss);
    }

    std::size_t storageBits() const override
    {
        return pred_->storageBits();
    }

    std::string name() const override { return pred_->name(); }

    json::Value
    saveState() const override
    {
        json::Value st = json::Value::object();
        st.set("pred", pred_->saveState());
        return st;
    }

    void
    loadState(const json::Value &state) override
    {
        pred_->loadState(stateio::need(state, "pred"));
    }

  private:
    std::unique_ptr<BinaryPredictor> pred_;
};

/**
 * Timing-assisted predictor: an internal stride address predictor
 * guesses the load's line; if (and only if) that guess is confident,
 * the machine probes the outstanding-miss queue / recently-serviced
 * buffer for that line, and the hint overrides the inner table
 * prediction. A wrong address guess naturally yields a wrong (or
 * useless) hint — the realistic cost of this scheme.
 */
class TimingHmp : public HitMissPredictor
{
  public:
    explicit TimingHmp(std::unique_ptr<HitMissPredictor> inner,
                       std::size_t addr_entries = 1024)
        : inner_(std::move(inner)),
          // A lower confidence threshold than the bank predictor's:
          // a wrong line probe just yields a useless hint here, while
          // line-reuse (stride-0) patterns are common and valuable.
          ap_(addr_entries, 2, 1)
    {
    }

    bool
    predictMiss(Addr pc, const Hint *hint) const override
    {
        if (hint) {
            if (hint->outstandingMiss)
                return true; // dynamic miss
            if (hint->recentFill)
                return false; // line just serviced
        }
        return inner_->predictMiss(pc, nullptr);
    }

    double
    missConfidence(Addr pc) const override
    {
        return inner_->missConfidence(pc);
    }

    Addr
    timingProbeAddr(Addr pc) const override
    {
        const auto p = ap_.predict(pc);
        return p.valid ? p.addr : kAddrInvalid;
    }

    void
    update(Addr pc, bool miss, Addr addr) override
    {
        inner_->update(pc, miss, addr);
        if (addr != kAddrInvalid)
            ap_.update(pc, addr);
    }

    std::size_t storageBits() const override
    {
        return inner_->storageBits() + ap_.storageBits();
    }

    std::string name() const override
    {
        return inner_->name() + "+timing";
    }

    json::Value
    saveState() const override
    {
        json::Value st = json::Value::object();
        st.set("inner", inner_->saveState());
        st.set("ap", ap_.saveState());
        return st;
    }

    void
    loadState(const json::Value &state) override
    {
        inner_->loadState(stateio::need(state, "inner"));
        ap_.loadState(stateio::need(state, "ap"));
    }

  private:
    std::unique_ptr<HitMissPredictor> inner_;
    LoadAddressPredictor ap_;
};

/** The paper's local-only configuration (2048 entries, history 8). */
std::unique_ptr<HitMissPredictor> makeLocalHmp();

/** The paper's hybrid chooser (local 512 + gshare 11 + gskew, vote). */
std::unique_ptr<HitMissPredictor> makeChooserHmp();

/** Local-only wrapped with timing information (section 4.2 winner). */
std::unique_ptr<HitMissPredictor> makeTimingLocalHmp();

/** Build a hit-miss predictor by name ("local", "chooser", ...). */
std::unique_ptr<HitMissPredictor> makeHmp(const std::string &which);

} // namespace lrs

#endif // LRS_PREDICTORS_HITMISS_HH
