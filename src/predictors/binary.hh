/**
 * @file
 * The binary predictor framework.
 *
 * Nearly every mechanism in the paper is "a binary predictor adapted
 * from branch prediction" (section 2.2: "since a hit-miss prediction
 * is a binary prediction nearly all branch prediction techniques may
 * be adapted to this task"; likewise bank prediction with two banks).
 * This interface is shared by the bimodal, local, gshare and gskew
 * components and by the chooser composites built from them.
 */

#ifndef LRS_PREDICTORS_BINARY_HH
#define LRS_PREDICTORS_BINARY_HH

#include <cstddef>
#include <string>

#include "common/json.hh"
#include "common/types.hh"

namespace lrs
{

/**
 * A PC-indexed binary (taken / not-taken) predictor.
 *
 * "Taken" maps to: branch taken, load misses, load collides, or bank 1
 * depending on the adaptation.
 */
class BinaryPredictor
{
  public:
    virtual ~BinaryPredictor() = default;

    /** A prediction with a confidence estimate in [0, 1]. */
    struct Prediction
    {
        bool taken;
        double confidence;
    };

    /** Predict the outcome for static instruction @p pc. */
    virtual Prediction predict(Addr pc) const = 0;

    /** Train with the actual outcome (also advances any history). */
    virtual void update(Addr pc, bool taken) = 0;

    /** Forget everything. */
    virtual void reset() = 0;

    /** Hardware budget of the predictor, in bits. */
    virtual std::size_t storageBits() const = 0;

    /** Short name for reports ("gshare", "local", ...). */
    virtual std::string name() const = 0;

    /**
     * Machine-snapshot support (core/snapshot.hh): serialize every
     * mutable table/history exactly, such that a same-configured
     * predictor restored via loadState() predicts and trains
     * bit-identically from here on. loadState() throws
     * ConfigError(E_JOURNAL_INVALID) on a geometry mismatch.
     */
    virtual json::Value saveState() const = 0;
    virtual void loadState(const json::Value &state) = 0;
};

} // namespace lrs

#endif // LRS_PREDICTORS_BINARY_HH
