/**
 * @file
 * Cache-bank predictors (paper sections 2.3 and 4.3).
 *
 * With two banks the bank bit is a binary prediction; the paper's
 * evaluated configurations are composites of binary components under a
 * chooser policy, plus one based on the load-address predictor:
 *
 *   Predictor A = local + gshare + gskew
 *   Predictor B = local + gshare + bimodal
 *   Predictor C = local + 2*gshare + gskew
 *   Addr        = stride address predictor
 *     (Local: 512 entries, 8-bit history; Gshare: 11-bit history;
 *      GSkew: 3 tables of 1024 entries, 17-bit history.)
 *
 * A bank predictor may *decline* to predict (low confidence); such
 * loads are replicated to all banks. The paper's evaluation metric
 * combining prediction rate P, correct/wrong ratio R and the
 * misprediction penalty is implemented by bankMetric().
 */

#ifndef LRS_PREDICTORS_BANK_PRED_HH
#define LRS_PREDICTORS_BANK_PRED_HH

#include <functional>
#include <memory>
#include <string>

#include "common/stats_registry.hh"
#include "predictors/addr_pred.hh"
#include "predictors/chooser.hh"

namespace lrs
{

/**
 * Predicts which of two cache banks a load will access.
 */
class BankPredictor
{
  public:
    virtual ~BankPredictor() = default;

    struct Prediction
    {
        bool valid;      ///< false = no prediction (replicate)
        unsigned bank;   ///< predicted bank, meaningful when valid
        double confidence;
    };

    virtual Prediction predict(Addr pc) const = 0;

    /** Train with the actual bank. */
    virtual void update(Addr pc, unsigned bank) = 0;

    /**
     * Train with the full effective address (address-based
     * configurations need it; the default derives nothing more than
     * the bank).
     */
    virtual void
    updateAddr(Addr pc, Addr /*addr*/, unsigned bank)
    {
        update(pc, bank);
    }

    virtual std::size_t storageBits() const = 0;
    virtual std::string name() const = 0;

    /**
     * Register predictor-level stats under @p g (e.g. "pred.bank").
     * The base registers the hardware budget; subclasses may extend.
     * Outcome counts (mispredicts, replications) are scored by the
     * core, which registers them alongside.
     */
    virtual void
    registerStats(StatsGroup g)
    {
        g.derived("storage_bits",
                  [this] {
                      return static_cast<double>(storageBits());
                  },
                  "hardware budget of this predictor");
    }

    /**
     * Machine-snapshot support (core/snapshot.hh). Default: nothing
     * to save (no stateless bank predictor exists today, but the
     * interface mirrors HitMissPredictor's).
     */
    virtual json::Value saveState() const
    {
        return json::Value::object();
    }
    virtual void loadState(const json::Value & /*state*/) {}
};

/**
 * Bank predictor built from a binary composite (2 banks: taken maps
 * to bank 1).
 */
class BinaryBankPredictor : public BankPredictor
{
  public:
    BinaryBankPredictor(std::string name,
                        std::unique_ptr<CompositePredictor> composite)
        : name_(std::move(name)), composite_(std::move(composite))
    {
    }

    Prediction
    predict(Addr pc) const override
    {
        const auto m = composite_->predictMaybe(pc);
        return {m.valid, m.taken ? 1u : 0u, m.confidence};
    }

    void
    update(Addr pc, unsigned bank) override
    {
        composite_->update(pc, bank != 0);
    }

    std::size_t storageBits() const override
    {
        return composite_->storageBits();
    }

    std::string name() const override { return name_; }

    json::Value
    saveState() const override
    {
        json::Value st = json::Value::object();
        st.set("composite", composite_->saveState());
        return st;
    }

    void
    loadState(const json::Value &state) override
    {
        composite_->loadState(stateio::need(state, "composite"));
    }

  private:
    std::string name_;
    std::unique_ptr<CompositePredictor> composite_;
};

/**
 * Bank predictor derived from the stride load-address predictor: the
 * predicted bank is the bank of the predicted effective address.
 */
class AddressBankPredictor : public BankPredictor
{
  public:
    /**
     * @param line_bytes cache line size (bank interleave granularity)
     * @param num_banks number of banks (power of two)
     */
    explicit AddressBankPredictor(unsigned line_bytes = 64,
                                  unsigned num_banks = 2,
                                  std::size_t entries = 1024)
        : lineBytes_(line_bytes), numBanks_(num_banks), ap_(entries)
    {
    }

    Prediction
    predict(Addr pc) const override
    {
        const auto p = ap_.predict(pc);
        if (!p.valid)
            return {false, 0, 0.0};
        const unsigned bank =
            static_cast<unsigned>(p.addr / lineBytes_) % numBanks_;
        return {true, bank, p.confidence};
    }

    void
    update(Addr /*pc*/, unsigned /*bank*/) override
    {
        // Needs the full address, not just the bank; use updateAddr().
    }

    void
    updateAddr(Addr pc, Addr addr, unsigned /*bank*/) override
    {
        ap_.update(pc, addr);
    }

    /** Train with the actual effective address. */
    void updateAddr(Addr pc, Addr addr) { ap_.update(pc, addr); }

    std::size_t storageBits() const override
    {
        return ap_.storageBits();
    }

    std::string name() const override { return "addr"; }

    json::Value
    saveState() const override
    {
        json::Value st = json::Value::object();
        st.set("ap", ap_.saveState());
        return st;
    }

    void
    loadState(const json::Value &state) override
    {
        ap_.loadState(stateio::need(state, "ap"));
    }

  private:
    unsigned lineBytes_;
    unsigned numBanks_;
    LoadAddressPredictor ap_;
};

/**
 * Bank predictor for more than two banks, built the way section 2.3
 * proposes scaling binary prediction: "each bit of the bank ID can be
 * independently predicted and assigned a confidence rating. If the
 * confidence level of a particular bit is low, the load will be sent
 * to both banks". One binary composite per bank-ID bit; the combined
 * prediction is withheld if any bit's composite declines.
 */
class PerBitBankPredictor : public BankPredictor
{
  public:
    /**
     * @param num_banks power-of-two bank count
     * @param make_bit factory for the per-bit binary composite
     */
    PerBitBankPredictor(
        unsigned num_banks,
        const std::function<std::unique_ptr<CompositePredictor>()>
            &make_bit);

    Prediction predict(Addr pc) const override;
    void update(Addr pc, unsigned bank) override;
    std::size_t storageBits() const override;
    std::string name() const override;

    json::Value saveState() const override;
    void loadState(const json::Value &state) override;

    unsigned numBanks() const { return numBanks_; }

  private:
    unsigned numBanks_;
    std::vector<std::unique_ptr<CompositePredictor>> bits_;
};

/** A PerBitBankPredictor using predictor-A-style composites per bit. */
std::unique_ptr<PerBitBankPredictor>
makePerBitBankPredictor(unsigned num_banks);

/** Paper predictor A: local + gshare + gskew (unanimity). */
std::unique_ptr<BankPredictor> makeBankPredictorA();
/** Paper predictor B: local + gshare + bimodal (unanimity). */
std::unique_ptr<BankPredictor> makeBankPredictorB();
/** Paper predictor C: local + 2*gshare + gskew (weighted threshold). */
std::unique_ptr<BankPredictor> makeBankPredictorC();
/** The address-predictor-based bank predictor. */
std::unique_ptr<AddressBankPredictor> makeAddressBankPredictor();

/**
 * The paper's bank-predictor quality metric (section 4.3):
 *   Metric = GainPerLoad / IdealGain
 *          = P * (0.5*R + 1 - Penalty) / (R + 1) / 0.5
 * where P is the prediction rate, R the correct:wrong prediction
 * ratio, and Penalty the per-misprediction cost in load-units. A
 * perfect dual-ported cache scores 1.
 */
double bankMetric(double prediction_rate, double ratio_r,
                  double penalty);

} // namespace lrs

#endif // LRS_PREDICTORS_BANK_PRED_HH
