/**
 * @file
 * Local (two-level, per-PC history) predictor.
 *
 * The paper's baseline hit-miss predictor is exactly this adaptation:
 * "instead of recording the taken/not-taken history of each branch, we
 * record the hit/miss history of each load ... a tagless table of 2048
 * entries and a history length of 8 (~2KBytes in size)" (section 2.2).
 */

#ifndef LRS_PREDICTORS_LOCAL_HH
#define LRS_PREDICTORS_LOCAL_HH

#include <vector>

#include "common/bitutils.hh"
#include "common/sat_counter.hh"
#include "common/state_io.hh"
#include "predictors/binary.hh"

namespace lrs
{

class LocalPredictor : public BinaryPredictor
{
  public:
    /**
     * @param entries history-table entries (power of two)
     * @param history_bits per-PC history length
     * @param pht_pc_bits PC bits concatenated into the PHT index to
     *        reduce cross-load aliasing (0 = pure PAg)
     */
    explicit LocalPredictor(std::size_t entries = 2048,
                            unsigned history_bits = 8,
                            unsigned pht_pc_bits = 2,
                            unsigned counter_bits = 2)
        : htBits_((checkLocalParams(entries, history_bits, pht_pc_bits),
                   floorLog2(entries))),
          histBits_(history_bits),
          phtPcBits_(pht_pc_bits),
          histories_(entries, 0),
          pht_(std::size_t{1} << (history_bits + pht_pc_bits),
               SatCounter(counter_bits))
    {
    }

    Prediction
    predict(Addr pc) const override
    {
        const auto &c = pht_[phtIndex(pc)];
        return {c.predict(), c.confidence()};
    }

    void
    update(Addr pc, bool taken) override
    {
        pht_[phtIndex(pc)].update(taken);
        auto &h = histories_[htIndex(pc)];
        h = ((h << 1) | (taken ? 1 : 0)) & mask(histBits_);
    }

    void
    reset() override
    {
        std::fill(histories_.begin(), histories_.end(), 0);
        for (auto &c : pht_)
            c.set(0);
    }

    std::size_t
    storageBits() const override
    {
        return histories_.size() * histBits_ + pht_.size() * 2;
    }

    std::string name() const override { return "local"; }

    json::Value
    saveState() const override
    {
        json::Value st = json::Value::object();
        st.set("histories", stateio::packInts(histories_));
        st.set("pht", stateio::packCounters(pht_));
        return st;
    }

    void
    loadState(const json::Value &state) override
    {
        stateio::unpackInts(state, "histories", histories_);
        stateio::unpackCounters(state, "pht", pht_);
    }

  private:
    /** The PHT is 2^(history+pc) entries; validate before allocating. */
    static void
    checkLocalParams(std::size_t entries, unsigned history_bits,
                     unsigned pht_pc_bits)
    {
        if (!isPowerOf2(entries)) {
            throwConfig("pred.local", "entries",
                        "history-table size must be a power of two "
                        "(got " +
                            std::to_string(entries) + ")");
        }
        if (history_bits + pht_pc_bits > 24) {
            throwConfig("pred.local", "history_bits",
                        "history + PC index bits must be <= 24 (got " +
                            std::to_string(history_bits) + " + " +
                            std::to_string(pht_pc_bits) + ")");
        }
    }

    std::size_t
    htIndex(Addr pc) const
    {
        return foldXor(pc >> 1, htBits_) & mask(htBits_);
    }

    std::size_t
    phtIndex(Addr pc) const
    {
        const std::uint64_t h = histories_[htIndex(pc)];
        const std::uint64_t pcb = foldXor(pc >> 1, phtPcBits_);
        return ((pcb << histBits_) | h) & mask(histBits_ + phtPcBits_);
    }

    unsigned htBits_;
    unsigned histBits_;
    unsigned phtPcBits_;
    std::vector<std::uint32_t> histories_;
    std::vector<SatCounter> pht_;
};

} // namespace lrs

#endif // LRS_PREDICTORS_LOCAL_HH
