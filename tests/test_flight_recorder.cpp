/**
 * @file
 * Tests of the per-cell flight recorder (core/flight_recorder.hh):
 * ring bounding and wrap accounting, CRC-framed dumps readable by the
 * journal reader, the failed-cell dump path through runOneSimJob(),
 * plus the host-time self-profiler (common/profiler.hh) and build
 * provenance block (common/buildinfo.hh) that ride in the same
 * telemetry layer.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/buildinfo.hh"
#include "common/journal.hh"
#include "common/profiler.hh"
#include "core/flight_recorder.hh"
#include "core/parallel.hh"
#include "trace/library.hh"

namespace lrs
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "lrs_flight_" + name;
}

void
recordN(FlightRecorder &fr, std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        fr.record(TraceEvent::Issue, /*cycle=*/i, /*seq=*/i,
                  /*pc=*/0x1000 + i, UopClass::Load);
    }
}

TEST(FlightRecorder, RingIsBoundedAndWraps)
{
    FlightRecorder fr(8);
    EXPECT_EQ(fr.capacity(), 8u);
    recordN(fr, 5);
    EXPECT_EQ(fr.size(), 5u);
    EXPECT_FALSE(fr.wrapped());
    recordN(fr, 15);
    EXPECT_EQ(fr.size(), 8u);
    EXPECT_EQ(fr.totalRecorded(), 20u);
    EXPECT_TRUE(fr.wrapped());
}

TEST(FlightRecorder, DumpIsCrcValidJournal)
{
    const std::string path = tmpPath("dump.jsonl");
    std::filesystem::remove(path);
    FlightRecorder fr(16);
    fr.setIdentity(7, "wd/exclusive");
    fr.setDumpPath(path);
    // The initial (header-only) snapshot must already be valid: this
    // is what a SIGKILL right after arming would leave behind.
    {
        JournalReadStats st;
        const auto recs = readJournal(path, &st);
        EXPECT_EQ(st.badLines, 0u);
        ASSERT_EQ(recs.size(), 1u);
        EXPECT_EQ(recs[0].at("type").asString(), "flight_recorder");
    }
    recordN(fr, 40); // wraps a 16-entry ring
    fr.note("test", "note text");
    JournalReadStats st;
    const std::vector<json::Value> recs = readJournal(path, &st);
    EXPECT_EQ(st.badLines, 0u);
    EXPECT_FALSE(st.truncatedTail);
    // Header + one record per retained event.
    ASSERT_EQ(recs.size(), 1u + 16u);
    const json::Value &hdr = recs[0];
    EXPECT_EQ(hdr.at("cell").asU64(), 7u);
    EXPECT_EQ(hdr.at("key").asString(), "wd/exclusive");
    EXPECT_EQ(hdr.at("total_recorded").asU64(), 40u);
    EXPECT_TRUE(hdr.at("wrapped").asBool());
    EXPECT_EQ(hdr.at("notes").size(), 1u);
    // Events are oldest-first: the ring kept cycles 24..39.
    EXPECT_EQ(recs[1].at("c").asU64(), 24u);
    EXPECT_EQ(recs.back().at("c").asU64(), 39u);
    EXPECT_EQ(recs[1].at("e").asString(), "issue");
    fr.removeDump();
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(FlightRecorder, NotesAreBounded)
{
    const std::string path = tmpPath("notes.jsonl");
    std::filesystem::remove(path);
    FlightRecorder fr(4);
    fr.setDumpPath(path);
    for (int i = 0; i < 40; ++i)
        fr.note("k", "note " + std::to_string(i));
    JournalReadStats st;
    const auto recs = readJournal(path, &st);
    EXPECT_EQ(st.badLines, 0u);
    EXPECT_EQ(recs[0].at("notes").size(), FlightRecorder::kMaxNotes);
    EXPECT_EQ(recs[0].at("dropped_notes").asU64(),
              40u - FlightRecorder::kMaxNotes);
    fr.removeDump();
}

TEST(FlightRecorder, FailedCellLeavesClassifiedDump)
{
    const std::string path = tmpPath("failed.jsonl");
    std::filesystem::remove(path);
    FlightRecorder fr;
    fr.setIdentity(3, "wd/traditional");
    fr.setDumpPath(path);

    SimJob job;
    job.trace = TraceLibrary::byName("wd", 50000);
    job.cfg.maxCycles = 100; // deterministic in-core deadline
    const JobOutcome o = runOneSimJob(job, &fr);
    EXPECT_EQ(o.status, CellStatus::Timeout);

    JournalReadStats st;
    const auto recs = readJournal(path, &st);
    EXPECT_EQ(st.badLines, 0u);
    ASSERT_GE(recs.size(), 1u);
    // The outcome classification was noted into the dump before the
    // outcome was returned, so the dump is self-describing.
    bool found = false;
    for (std::size_t i = 0; i < recs[0].at("notes").size(); ++i) {
        const json::Value &n = recs[0].at("notes").at(i);
        if (n.at("kind").asString() == "outcome" &&
            n.at("text").asString().find("E_DEADLINE_EXCEEDED") !=
                std::string::npos)
            found = true;
    }
    EXPECT_TRUE(found);
    // And the ring captured real pipeline events up to the deadline.
    EXPECT_GT(recs[0].at("total_recorded").asU64(), 0u);
    fr.removeDump();
}

TEST(FlightRecorder, SuccessfulCellCostsNothingOnDisk)
{
    SimJob job;
    job.trace = TraceLibrary::byName("wd", 20000);
    FlightRecorder fr; // no dump path set
    const JobOutcome o = runOneSimJob(job, &fr);
    EXPECT_EQ(o.status, CellStatus::Ok);
    EXPECT_GT(fr.totalRecorded(), 0u);
    EXPECT_TRUE(fr.dumpPath().empty());
}

TEST(Profiler, DisabledScopeIsInert)
{
    prof::setEnabled(false);
    prof::resetAll();
    {
        prof::Scope s(prof::Stage::Issue);
    }
    EXPECT_EQ(prof::stageTicks(prof::Stage::Issue), 0u);
}

TEST(Profiler, CollectsPerStageSelfTime)
{
    prof::setEnabled(true);
    prof::resetAll();
    {
        prof::Scope outer(prof::Stage::Issue);
        volatile std::uint64_t sink = 0;
        for (int i = 0; i < 100000; ++i)
            sink += static_cast<std::uint64_t>(i);
        {
            prof::Scope inner(prof::Stage::Predict);
            for (int i = 0; i < 100000; ++i)
                sink += static_cast<std::uint64_t>(i);
        }
    }
    prof::setEnabled(false);
    EXPECT_GT(prof::stageTicks(prof::Stage::Issue), 0u);
    EXPECT_GT(prof::stageTicks(prof::Stage::Predict), 0u);
    EXPECT_EQ(prof::stageTicks(prof::Stage::Commit), 0u);

    const json::Value rep = prof::reportJson(12345, 0.5);
    EXPECT_EQ(rep.at("uops").asU64(), 12345u);
    EXPECT_DOUBLE_EQ(rep.at("uops_per_sec").asDouble(), 24690.0);
    EXPECT_GT(
        rep.at("stages").at("issue").at("seconds").asDouble(), 0.0);
    const std::string text = prof::reportText(12345, 0.5);
    EXPECT_NE(text.find("uops/sec"), std::string::npos);
    prof::resetAll();
}

TEST(BuildInfo, ProvenanceBlockIsComplete)
{
    const json::Value b = buildProvenanceJson();
    EXPECT_FALSE(b.at("compiler").asString().empty());
    EXPECT_FALSE(b.at("compiler_version").asString().empty());
    EXPECT_FALSE(b.at("build_type").asString().empty());
    EXPECT_FALSE(b.at("sanitize").asString().empty());
    EXPECT_FALSE(b.at("git_sha").asString().empty());
}

} // namespace
} // namespace lrs
