/**
 * @file
 * Tests of the sweep service (src/service/): protocol parsing, in-
 * order result delivery, admission control against hostile clients
 * (malformed JSON, oversized lines/grids, quota exhaustion, slow
 * readers, mid-stream disconnects) and the restart-recovery contract
 * — a hard-stopped server restarted on the same state directory
 * re-delivers a result stream byte-identical to an uninterrupted run.
 *
 * Suite naming is deliberate: every suite here is "ParallelService*"
 * and fully fork-free, so the whole file runs under `ctest -R
 * Parallel` in the TSan pass of tools/run_sanitized.sh (the event
 * loop + scheduler + pool threads are exactly what TSan should see).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/io.hh"
#include "core/runner.hh"
#include "service/protocol.hh"
#include "service/server.hh"

namespace lrs::service
{
namespace
{

/** Clear the process-wide interrupt flag however the test exits. */
struct InterruptGuard
{
    InterruptGuard() { clearSweepInterrupt(); }
    ~InterruptGuard() { clearSweepInterrupt(); }
};

/** Fresh per-test state directory + socket path (short: sun_path). */
struct TestDirs
{
    std::string root;
    std::string sock;
    std::string state;

    explicit TestDirs(const std::string &name)
    {
        root = testing::TempDir() + "lrs_svc_" + name;
        std::filesystem::remove_all(root);
        std::filesystem::create_directories(root);
        sock = root + "/d.sock";
        state = root + "/state";
    }
};

ServerOptions
baseOptions(const TestDirs &dirs)
{
    ServerOptions o;
    o.socketPath = dirs.sock;
    o.stateDir = dirs.state;
    o.workers = 2;
    return o;
}

constexpr const char *kSmallGrid =
    "traces = wd\nschemes = traditional, perfect\nlen = 8000\n"
    "jobs = 2\n";

/** 10 cells, big enough to still be running when a follow-up request
 *  lands a few microseconds after the ack. */
constexpr const char *kSlowGrid =
    "traces = wd gcc swim li pm\nschemes = traditional, perfect\n"
    "len = 120000\njobs = 2\n";

/** Minimal blocking JSONL client against the Unix socket. */
class Client
{
  public:
    ~Client() { close(); }

    void
    connect(const std::string &path)
    {
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        ASSERT_LT(path.size(), sizeof(sa.sun_path));
        std::strncpy(sa.sun_path, path.c_str(),
                     sizeof(sa.sun_path) - 1);
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd_, 0);
        ASSERT_EQ(0, ::connect(fd_,
                               reinterpret_cast<sockaddr *>(&sa),
                               sizeof(sa)))
            << std::strerror(errno);
    }

    void
    send(const std::string &line)
    {
        ASSERT_TRUE(writeFully(fd_, line));
    }

    /**
     * Next complete line (without the newline); "" on EOF. Fails the
     * test after @p timeoutMs of silence so a protocol bug cannot
     * hang the suite.
     */
    std::string
    readLine(int timeoutMs = 30000)
    {
        while (true) {
            const std::size_t pos = buf_.find('\n');
            if (pos != std::string::npos) {
                std::string line = buf_.substr(0, pos);
                buf_.erase(0, pos + 1);
                return line;
            }
            pollfd p{fd_, POLLIN, 0};
            const int rc = ::poll(&p, 1, timeoutMs);
            if (rc <= 0) {
                ADD_FAILURE() << "timed out waiting for a line";
                return "";
            }
            char tmp[16384];
            const ssize_t n = ::read(fd_, tmp, sizeof(tmp));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return ""; // EOF
            buf_.append(tmp, static_cast<std::size_t>(n));
        }
    }

    /** True if the server closed the connection (EOF on read). */
    bool
    atEof(int timeoutMs = 30000)
    {
        if (!buf_.empty())
            return false;
        pollfd p{fd_, POLLIN, 0};
        if (::poll(&p, 1, timeoutMs) <= 0)
            return false;
        char tmp[256];
        const ssize_t n = ::read(fd_, tmp, sizeof(tmp));
        if (n > 0) {
            buf_.append(tmp, static_cast<std::size_t>(n));
            return false;
        }
        return n == 0;
    }

    void
    close()
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    std::string buf_;
};

json::Value
parsed(const std::string &line)
{
    EXPECT_FALSE(line.empty()) << "connection closed unexpectedly";
    return json::Value::parse(line.empty() ? "{}" : line);
}

/** Read ack + every cell + done; returns the raw concatenated
 *  stream (the byte-identity currency). */
std::string
readStream(Client &c, std::uint64_t expectCells)
{
    std::string raw;
    const std::string ackLine = c.readLine();
    raw += ackLine + "\n";
    const json::Value ack = parsed(ackLine);
    EXPECT_EQ("ack", ack.at("type").asString());
    EXPECT_EQ(expectCells, ack.at("cells").asU64());
    for (std::uint64_t i = 0; i < expectCells; ++i) {
        const std::string line = c.readLine();
        raw += line + "\n";
        const json::Value cell = parsed(line);
        EXPECT_EQ("cell", cell.at("type").asString());
        EXPECT_EQ(i, cell.at("cell").asU64()) << "out-of-order cell";
    }
    const std::string doneLine = c.readLine();
    raw += doneLine + "\n";
    const json::Value done = parsed(doneLine);
    EXPECT_EQ("done", done.at("type").asString());
    return raw;
}

TEST(ParallelService, PingStatsAndUnknownOp)
{
    InterruptGuard guard;
    TestDirs dirs("ping");
    Server server(baseOptions(dirs));
    server.start();

    Client c;
    c.connect(dirs.sock);
    c.send("{\"op\":\"ping\"}\n");
    EXPECT_EQ("{\"type\":\"pong\"}", c.readLine());

    c.send("{\"op\":\"stats\"}\n");
    const json::Value stats = parsed(c.readLine());
    EXPECT_EQ("stats", stats.at("type").asString());
    EXPECT_EQ(1u, stats.at("accepted").asU64());
    EXPECT_EQ(0u, stats.at("submissions").asU64());

    c.send("{\"op\":\"warp\"}\n");
    const json::Value err = parsed(c.readLine());
    EXPECT_EQ("error", err.at("type").asString());
    EXPECT_EQ("E_PROTOCOL", err.at("code").asString());

    // The connection survives a non-fatal protocol error.
    c.send("{\"op\":\"ping\"}\n");
    EXPECT_EQ("{\"type\":\"pong\"}", c.readLine());

    server.stop(true);
}

TEST(ParallelService, SubmitDeliversCellsInOrderThenDone)
{
    InterruptGuard guard;
    TestDirs dirs("order");
    Server server(baseOptions(dirs));
    server.start();

    Client c;
    c.connect(dirs.sock);
    c.send(submitLine(kSmallGrid));
    const std::string raw = readStream(c, 2);

    // The stream carries real results in grid order.
    const json::Value first =
        json::Value::parse(raw.substr(raw.find('\n') + 1,
                                      raw.find('\n', raw.find('\n') +
                                                         1) -
                                          raw.find('\n') - 1));
    EXPECT_EQ("wd/Traditional", first.at("key").asString());
    EXPECT_EQ("OK", first.at("status").asString());
    EXPECT_GT(first.at("result").at("cycles").asU64(), 0u);

    server.stop(true);
    EXPECT_EQ(1u, server.statsSnapshot().submissions);
}

TEST(ParallelService, MalformedJsonGetsErrorOthersUnaffected)
{
    InterruptGuard guard;
    TestDirs dirs("malformed");
    Server server(baseOptions(dirs));
    server.start();

    Client good;
    good.connect(dirs.sock);
    good.send(submitLine(kSmallGrid));

    Client bad;
    bad.connect(dirs.sock);
    bad.send("this is not json{{{\n");
    const json::Value err = parsed(bad.readLine());
    EXPECT_EQ("error", err.at("type").asString());
    EXPECT_EQ("E_PROTOCOL", err.at("code").asString());
    // Not fatal: the same client can still speak.
    bad.send("{\"op\":\"ping\"}\n");
    EXPECT_EQ("{\"type\":\"pong\"}", bad.readLine());

    // The sibling's sweep is untouched.
    readStream(good, 2);
    EXPECT_GE(server.statsSnapshot().protocolErrors, 1u);
    server.stop(true);
}

TEST(ParallelService, OversizedLineIsFatalOversizedGridIsNot)
{
    InterruptGuard guard;
    TestDirs dirs("oversize");
    ServerOptions opts = baseOptions(dirs);
    opts.maxLineBytes = 512;
    opts.maxCellsPerSub = 4;
    Server server(opts);
    server.start();

    // A grid over the cell cap: structured quota error, connection
    // stays usable.
    Client c;
    c.connect(dirs.sock);
    c.send(submitLine(kSlowGrid)); // 10 cells > cap of 4
    const json::Value err = parsed(c.readLine());
    EXPECT_EQ("error", err.at("type").asString());
    EXPECT_EQ("E_QUOTA_EXCEEDED", err.at("code").asString());
    c.send("{\"op\":\"ping\"}\n");
    EXPECT_EQ("{\"type\":\"pong\"}", c.readLine());

    // A line over the byte cap: one error record, then the server
    // hangs up (it cannot resynchronise inside an unbounded line).
    Client flood;
    flood.connect(dirs.sock);
    std::string big(2048, 'x');
    big.push_back('\n');
    flood.send(big);
    const json::Value ferr = parsed(flood.readLine());
    EXPECT_EQ("E_PROTOCOL", ferr.at("code").asString());
    EXPECT_TRUE(flood.atEof());

    server.stop(true);
}

TEST(ParallelService, SubmissionQuotaRejectsButFirstSweepFinishes)
{
    InterruptGuard guard;
    TestDirs dirs("quota");
    ServerOptions opts = baseOptions(dirs);
    opts.maxPendingSubs = 1;
    Server server(opts);
    server.start();

    Client c;
    c.connect(dirs.sock);
    c.send(submitLine(kSlowGrid));
    const json::Value ack = parsed(c.readLine());
    ASSERT_EQ("ack", ack.at("type").asString());

    // Second submission while the first is still pending: rejected.
    c.send(submitLine(kSmallGrid));
    const std::string next = c.readLine();
    const json::Value rec = parsed(next);
    ASSERT_EQ("error", rec.at("type").asString());
    EXPECT_EQ("E_QUOTA_EXCEEDED", rec.at("code").asString());

    // The first submission still runs to a complete, ordered stream.
    for (std::uint64_t i = 0; i < 10; ++i) {
        const json::Value cell = parsed(c.readLine());
        ASSERT_EQ("cell", cell.at("type").asString());
        EXPECT_EQ(i, cell.at("cell").asU64());
    }
    const json::Value done = parsed(c.readLine());
    EXPECT_EQ("done", done.at("type").asString());
    EXPECT_EQ(10u, done.at("ok").asU64());

    EXPECT_EQ(1u, server.statsSnapshot().quotaRejects);
    server.stop(true);
}

TEST(ParallelService, DisconnectMidStreamLeaksNothingAndStaysAttachable)
{
    InterruptGuard guard;
    TestDirs dirs("disconnect");
    Server server(baseOptions(dirs));
    server.start();

    {
        Client c;
        c.connect(dirs.sock);
        c.send(submitLine(kSlowGrid));
        const json::Value ack = parsed(c.readLine());
        ASSERT_EQ("ack", ack.at("type").asString());
        c.close(); // walk away mid-sweep
    }

    // The journaled submission keeps running to completion.
    for (int i = 0; i < 600; ++i) {
        if (server.completedSubmissions() == 1)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    EXPECT_EQ(1u, server.completedSubmissions());

    // A fresh client replays the whole stream.
    Client again;
    again.connect(dirs.sock);
    again.send(attachLine(1));
    readStream(again, 10);
    server.stop(true);
}

TEST(ParallelService, SlowReaderIsPausedNotBufferedUnbounded)
{
    InterruptGuard guard;
    TestDirs dirs("slow");
    ServerOptions opts = baseOptions(dirs);
    opts.maxOutBufBytes = 1024; // a couple of cell records at most
    opts.sndBufBytes = 1;       // clamped up to the kernel minimum
    Server server(opts);
    server.start();

    Client c;
    c.connect(dirs.sock);
    c.send(submitLine(kSlowGrid));
    // Don't read yet: let the sweep finish against a full buffer.
    for (int i = 0; i < 600; ++i) {
        if (server.completedSubmissions() == 1)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ASSERT_EQ(1u, server.completedSubmissions());
    EXPECT_GE(server.statsSnapshot().deliveryPauses, 1u);

    // Now drain: the stream must still be complete and in order.
    readStream(c, 10);
    server.stop(true);
}

TEST(ParallelService, TwoClientsWithQuotasBothComplete)
{
    InterruptGuard guard;
    TestDirs dirs("pair");
    ServerOptions opts = baseOptions(dirs);
    opts.maxPendingSubs = 1;
    Server server(opts);
    server.start();

    Client a, b;
    a.connect(dirs.sock);
    b.connect(dirs.sock);
    a.send(submitLine(kSmallGrid));
    b.send(submitLine(kSmallGrid));
    const std::string rawA = readStream(a, 2);
    const std::string rawB = readStream(b, 2);

    // Same grid, distinct submission ids, identical cell payloads
    // (determinism is per-cell, not per-submission).
    EXPECT_NE(rawA, rawB);
    std::string normA = rawA, normB = rawB;
    const auto scrub = [](std::string &s, const std::string &sub) {
        std::size_t p;
        while ((p = s.find(sub)) != std::string::npos)
            s.replace(p, sub.size(), "\"sub\":N");
    };
    scrub(normA, "\"sub\":1");
    scrub(normA, "\"sub\":2");
    scrub(normB, "\"sub\":1");
    scrub(normB, "\"sub\":2");
    EXPECT_EQ(normA, normB);
    server.stop(true);
}

TEST(ParallelService, AttachUnknownSubmissionIsNotFound)
{
    InterruptGuard guard;
    TestDirs dirs("notfound");
    Server server(baseOptions(dirs));
    server.start();

    Client c;
    c.connect(dirs.sock);
    c.send(attachLine(42));
    const json::Value err = parsed(c.readLine());
    EXPECT_EQ("error", err.at("type").asString());
    EXPECT_EQ("E_NOT_FOUND", err.at("code").asString());
    server.stop(true);
}

TEST(ParallelService, RestartRecoveryReplaysByteIdenticalStream)
{
    InterruptGuard guard;

    // Reference: an uninterrupted daemon's stream for this grid.
    TestDirs ref("restart_ref");
    std::string reference;
    {
        Server server(baseOptions(ref));
        server.start();
        Client c;
        c.connect(ref.sock);
        c.send(submitLine(kSlowGrid));
        reference = readStream(c, 10);
        server.stop(true);
    }

    // Chaos: hard-stop the server mid-sweep (in-memory state is
    // discarded, exactly like a SIGKILL; journaled state survives).
    TestDirs dirs("restart");
    {
        Server server(baseOptions(dirs));
        server.start();
        Client c;
        c.connect(dirs.sock);
        c.send(submitLine(kSlowGrid));
        const json::Value ack = parsed(c.readLine());
        ASSERT_EQ("ack", ack.at("type").asString());
        // Let at least one cell land in the cell journal so the
        // restart genuinely resumes rather than restarts.
        (void)c.readLine();
        server.stop(false);
    }

    // Restart on the same state directory: the request journal
    // recovers the submission, the cell journal resumes it, and the
    // replayed stream is byte-identical to the uninterrupted run.
    {
        Server server(baseOptions(dirs));
        server.start();
        EXPECT_EQ(1u, server.statsSnapshot().recovered);
        Client c;
        c.connect(dirs.sock);
        c.send(attachLine(1));
        const std::string replay = readStream(c, 10);
        EXPECT_EQ(reference, replay);
        server.stop(true);
    }
}

TEST(ParallelService, DrainRefusesNewSubmissions)
{
    InterruptGuard guard;
    TestDirs dirs("drain");
    Server server(baseOptions(dirs));
    server.start();

    Client c;
    c.connect(dirs.sock);
    c.send(submitLine(kSmallGrid));
    readStream(c, 2); // sweep done; connection still open

    server.requestStop();
    // The drain closes every connection once owed bytes are flushed;
    // nothing further is accepted on it.
    EXPECT_TRUE(c.atEof());
    server.stop(true);
}

} // namespace
} // namespace lrs::service
