/**
 * @file
 * The idle-cycle skip-ahead equivalence contract
 * (docs/PERFORMANCE.md): a run with the skip-ahead fast path enabled
 * must be byte-identical — every counter, interval sample, histogram
 * bucket and the final machine state — to the same run stepping every
 * cycle. The suite pins the contract on dense synthetic traces, on
 * the sparse long-latency workloads the fast path was built for, on
 * the adversarial families, on the golden ChampSim fixture, at
 * awkward stop_at boundaries (including the 16K interrupt-poll
 * cadence), and through a snapshot taken in the middle of a skipped
 * idle region.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/core.hh"
#include "core/runner.hh"
#include "core/snapshot.hh"
#include "trace/champsim_reader.hh"
#include "trace/library.hh"

namespace lrs
{
namespace
{

/** Every test must leave the process-wide toggle as it found it. */
class SkipAheadGuard
{
  public:
    SkipAheadGuard() : saved_(cycleSkipAhead()) {}
    ~SkipAheadGuard() { setCycleSkipAhead(saved_); }

  private:
    bool saved_;
};

/** Long-latency memory under a perfect hit-miss predictor: consumers
 *  sleep until data arrives, so the machine freezes for thousands of
 *  cycles at a time — the regime where the skip-ahead jumps furthest
 *  and any accounting slip would show. */
MachineConfig
sparseConfig()
{
    MachineConfig cfg;
    cfg.cht.trackDistance = true;
    cfg.mem.memLatency = 2000;
    cfg.hmp = HmpKind::Perfect;
    return cfg;
}

/** Run to completion and return the complete lossless state: the
 *  drained machine plus the full result serialization. */
std::string
runDump(const MachineConfig &cfg, TraceStream &trace, bool skip)
{
    setCycleSkipAhead(skip);
    OooCore core(cfg);
    const SimResult r = core.run(trace);
    return core.saveState().dump(0) + "\n" + r.saveState().dump(0);
}

std::string
runDumpNamed(const MachineConfig &cfg, const std::string &name,
             std::uint64_t len, bool skip)
{
    auto trace = TraceLibrary::make(TraceLibrary::byName(name, len));
    return runDump(cfg, *trace, skip);
}

TEST(ThroughputIdentity, SyntheticTracesMatchStepping)
{
    SkipAheadGuard guard;
    for (const char *name : {"wd", "gcc", "li", "compress"}) {
        MachineConfig cfg;
        cfg.cht.trackDistance = true;
        EXPECT_EQ(runDumpNamed(cfg, name, 20000, false),
                  runDumpNamed(cfg, name, 20000, true))
            << name;
    }
}

TEST(ThroughputIdentity, EverySchemeMatchesStepping)
{
    SkipAheadGuard guard;
    for (const auto scheme : allSchemes()) {
        MachineConfig cfg;
        cfg.scheme = scheme;
        cfg.cht.trackDistance = true;
        EXPECT_EQ(runDumpNamed(cfg, "wd", 15000, false),
                  runDumpNamed(cfg, "wd", 15000, true))
            << orderingSchemeName(scheme);
    }
}

TEST(ThroughputIdentity, SparseLongLatencyMatchesStepping)
{
    SkipAheadGuard guard;
    // The big-win regime, with every periodic accounting stream on:
    // histograms record occupancies every cycle and interval samples
    // fire on a fixed cadence, so a bulk-accounting slip of even one
    // cycle breaks the comparison.
    MachineConfig cfg = sparseConfig();
    cfg.collectHistograms = true;
    cfg.statsInterval = 777; // deliberately not a divisor of anything
    cfg.auditInterval = 1000;
    for (const char *name : {"gcmark", "wd"}) {
        EXPECT_EQ(runDumpNamed(cfg, name, 20000, false),
                  runDumpNamed(cfg, name, 20000, true))
            << name;
    }
}

TEST(ThroughputIdentity, AdversarialFamiliesMatchStepping)
{
    SkipAheadGuard guard;
    MachineConfig cfg;
    cfg.scheme = OrderingScheme::Inclusive;
    cfg.cht.trackDistance = true;
    cfg.hmp = HmpKind::Chooser;
    cfg.bankMode = BankMode::Sliced;
    cfg.bankPred = BankPredKind::Addr;
    for (const std::string &name :
         TraceLibrary::names(TraceGroup::Adversarial)) {
        EXPECT_EQ(runDumpNamed(cfg, name, 20000, false),
                  runDumpNamed(cfg, name, 20000, true))
            << name;
    }
}

TEST(ThroughputIdentity, GoldenChampSimTraceMatchesStepping)
{
    SkipAheadGuard guard;
    const std::string path =
        std::string(LRS_TEST_DATA_DIR) + "/golden.champsim";
    MachineConfig cfg = sparseConfig();
    const auto load = [&path] { return readChampSimFile(path); };
    auto ta = load();
    auto tb = load();
    EXPECT_EQ(runDump(cfg, *ta, false), runDump(cfg, *tb, true));
}

TEST(ThroughputIdentity, ArbitraryStopBoundariesMatchStepping)
{
    SkipAheadGuard guard;
    // advanceTo() must land on any stop_at with bit-identical state,
    // including boundaries adjacent to the 16K interrupt-poll cadence
    // that the skip-ahead specifically must not glide over.
    const MachineConfig cfg = sparseConfig();
    for (const Cycle stop :
         {Cycle{1}, Cycle{1000}, Cycle{16383}, Cycle{16384},
          Cycle{16385}, Cycle{100000}}) {
        std::string dumps[2];
        for (int mode = 0; mode < 2; ++mode) {
            auto trace = TraceLibrary::make(
                TraceLibrary::byName("gcmark", 20000));
            setCycleSkipAhead(mode == 1);
            OooCore core(cfg);
            core.beginRun(*trace);
            core.advanceTo(*trace, stop);
            dumps[mode] = core.saveState().dump(0);
        }
        EXPECT_EQ(dumps[0], dumps[1]) << "stop=" << stop;
    }
}

TEST(ThroughputIdentity, SnapshotMidSkipRegionIsBitIdentical)
{
    SkipAheadGuard guard;
    setCycleSkipAhead(true);
    // With 2000-cycle memory stalls, most cycles sit inside idle
    // regions the fast path jumps over. Checkpointing there forces
    // advanceTo() to land exactly on the requested cycle; the resumed
    // run must finish byte-identical to the uninterrupted one.
    const MachineConfig cfg = sparseConfig();
    const std::string path =
        testing::TempDir() + "lrs_throughput_midskip.snap";

    auto full_trace =
        TraceLibrary::make(TraceLibrary::byName("gcmark", 20000));
    OooCore full(cfg);
    const SimResult r_full = full.run(*full_trace);
    ASSERT_GT(r_full.cycles, 10000u); // sparse enough to mean it

    for (const Cycle stop :
         {r_full.cycles / 7, r_full.cycles / 2, r_full.cycles - 3}) {
        {
            auto trace = TraceLibrary::make(
                TraceLibrary::byName("gcmark", 20000));
            OooCore warm(cfg);
            warm.beginRun(*trace);
            warm.advanceTo(*trace, stop);
            EXPECT_EQ(warm.now(), stop);
            writeSnapshot(path, warm, *trace, stop);
        }
        auto trace = TraceLibrary::make(
            TraceLibrary::byName("gcmark", 20000));
        OooCore resumed(cfg);
        loadSnapshotInto(path, resumed, *trace);
        resumed.advanceTo(*trace);
        const SimResult r = resumed.finishRun();
        EXPECT_EQ(r_full.saveState().dump(0), r.saveState().dump(0))
            << "stop=" << stop;
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace lrs
