/**
 * @file
 * Unit and property tests for the Collision History Table family:
 * allocation policy, sticky semantics, distance annotation, the
 * combined modes and cyclic clearing.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "predictors/cht.hh"

namespace lrs
{
namespace
{

ChtParams
fullCht(std::size_t entries = 256)
{
    ChtParams p;
    p.kind = ChtKind::Full;
    p.entries = entries;
    p.assoc = 4;
    p.counterBits = 2;
    return p;
}

TEST(ChtFull, DefaultPredictionIsNonColliding)
{
    Cht cht(fullCht());
    EXPECT_FALSE(cht.predict(0x4000).colliding);
}

TEST(ChtFull, AllocatesOnlyOnCollision)
{
    Cht cht(fullCht());
    // Non-colliding updates must not allocate an entry...
    for (int i = 0; i < 10; ++i)
        cht.update(0x4000, false);
    EXPECT_FALSE(cht.predict(0x4000).colliding);
    // ...so the first collision allocates and a second trains the
    // 2-bit counter over its threshold.
    cht.update(0x4000, true);
    cht.update(0x4000, true);
    EXPECT_TRUE(cht.predict(0x4000).colliding);
}

TEST(ChtFull, CounterAllowsBehaviourChange)
{
    Cht cht(fullCht());
    cht.update(0x4000, true);
    cht.update(0x4000, true);
    cht.update(0x4000, true);
    EXPECT_TRUE(cht.predict(0x4000).colliding);
    // The load stops colliding; the 2-bit counter follows.
    for (int i = 0; i < 4; ++i)
        cht.update(0x4000, false);
    EXPECT_FALSE(cht.predict(0x4000).colliding);
}

TEST(ChtFull, StickyVariantNeverForgets)
{
    ChtParams p = fullCht();
    p.sticky = true;
    Cht cht(p);
    cht.update(0x4000, true);
    for (int i = 0; i < 100; ++i)
        cht.update(0x4000, false);
    EXPECT_TRUE(cht.predict(0x4000).colliding);
}

TEST(ChtFull, DistanceTracksMinimum)
{
    ChtParams p = fullCht();
    p.trackDistance = true;
    Cht cht(p);
    cht.update(0x4000, true, 7);
    cht.update(0x4000, true, 3);
    cht.update(0x4000, true, 5); // must not raise the minimum
    const auto pred = cht.predict(0x4000);
    EXPECT_TRUE(pred.colliding);
    EXPECT_EQ(pred.distance, 3u);
}

TEST(ChtFull, DistanceSaturates)
{
    ChtParams p = fullCht();
    p.trackDistance = true;
    Cht cht(p);
    cht.update(0x4000, true, 1000);
    EXPECT_EQ(cht.predict(0x4000).distance, Cht::kMaxDistance);
}

TEST(ChtFull, DistinctPcsIndependent)
{
    Cht cht(fullCht());
    cht.update(0x4000, true);
    cht.update(0x4000, true);
    EXPECT_TRUE(cht.predict(0x4000).colliding);
    EXPECT_FALSE(cht.predict(0x4008).colliding);
}

TEST(ChtTagOnly, PresenceMeansColliding)
{
    ChtParams p;
    p.kind = ChtKind::TagOnly;
    p.entries = 256;
    Cht cht(p);
    EXPECT_FALSE(cht.predict(0x4000).colliding);
    cht.update(0x4000, true);
    EXPECT_TRUE(cht.predict(0x4000).colliding);
    // Implicitly sticky: non-colliding updates change nothing.
    for (int i = 0; i < 50; ++i)
        cht.update(0x4000, false);
    EXPECT_TRUE(cht.predict(0x4000).colliding);
}

TEST(ChtTagless, TrainsBothDirections)
{
    ChtParams p;
    p.kind = ChtKind::Tagless;
    p.entries = 1024;
    p.counterBits = 1;
    Cht cht(p);
    cht.update(0x4000, true);
    EXPECT_TRUE(cht.predict(0x4000).colliding);
    cht.update(0x4000, false);
    EXPECT_FALSE(cht.predict(0x4000).colliding);
}

TEST(ChtTagless, AliasingInterferes)
{
    // A tiny tagless table must alias: find two PCs sharing an index
    // and show interference — the effect Figure 9 attributes to small
    // tagless tables.
    ChtParams p;
    p.kind = ChtKind::Tagless;
    p.entries = 2;
    p.counterBits = 1;
    Cht cht(p);
    // With 2 entries, PCs 2 apart share an index bit pattern often;
    // search a pair.
    Addr a = 0, b = 0;
    bool found = false;
    for (Addr x = 0x4000; x < 0x4100 && !found; x += 2) {
        for (Addr y = x + 2; y < 0x4100 && !found; y += 2) {
            Cht probe(p);
            probe.update(x, true);
            if (probe.predict(y).colliding) {
                a = x;
                b = y;
                found = true;
            }
        }
    }
    ASSERT_TRUE(found);
    cht.update(a, true);
    EXPECT_TRUE(cht.predict(b).colliding) << "aliased pair";
}

TEST(ChtCombined, ConservativeEitherTableSuffices)
{
    ChtParams p;
    p.kind = ChtKind::Combined;
    p.entries = 256;
    p.taglessEntries = 1024;
    p.counterBits = 1;
    p.combineConservative = true;
    Cht cht(p);
    cht.update(0x4000, true);
    // Both the tag table (allocated) and the tagless counter (set)
    // now say colliding.
    EXPECT_TRUE(cht.predict(0x4000).colliding);
    // Tagless flips back to non-colliding, but the sticky tag entry
    // keeps the conservative prediction colliding.
    cht.update(0x4000, false);
    EXPECT_TRUE(cht.predict(0x4000).colliding);
}

TEST(ChtCombined, AgreementModeNeedsBoth)
{
    ChtParams p;
    p.kind = ChtKind::Combined;
    p.entries = 256;
    p.taglessEntries = 1024;
    p.counterBits = 1;
    p.combineConservative = false;
    Cht cht(p);
    cht.update(0x4000, true);
    EXPECT_TRUE(cht.predict(0x4000).colliding);
    cht.update(0x4000, false); // tagless disagrees now
    EXPECT_FALSE(cht.predict(0x4000).colliding);
}

TEST(Cht, CyclicClearingForgetsStickyState)
{
    ChtParams p;
    p.kind = ChtKind::TagOnly;
    p.entries = 256;
    p.clearInterval = 10;
    Cht cht(p);
    cht.update(0x4000, true);
    EXPECT_TRUE(cht.predict(0x4000).colliding);
    for (int i = 0; i < 10; ++i)
        cht.update(0x5000 + i * 8, false);
    EXPECT_FALSE(cht.predict(0x4000).colliding) << "cleared";
}

TEST(Cht, ClearResetsEverything)
{
    Cht cht(fullCht());
    cht.update(0x4000, true);
    cht.update(0x4000, true);
    cht.clear();
    EXPECT_FALSE(cht.predict(0x4000).colliding);
}

TEST(Cht, CapacityEvictionReplacesLru)
{
    // 1 set of 4 ways: fill 4 colliding loads, touch three, then add
    // a fifth; the untouched one must be evicted.
    ChtParams p = fullCht(4);
    p.assoc = 4;
    Cht cht(p);
    const Addr pcs[4] = {0x1000, 0x2000, 0x3000, 0x5000};
    for (const Addr pc : pcs) {
        cht.update(pc, true);
        cht.update(pc, true);
    }
    // Refresh all but pcs[1].
    cht.update(pcs[0], true);
    cht.update(pcs[2], true);
    cht.update(pcs[3], true);
    cht.update(0x6000, true); // allocate: evicts pcs[1]
    EXPECT_FALSE(cht.predict(pcs[1]).colliding);
    EXPECT_TRUE(cht.predict(pcs[0]).colliding);
}

TEST(Cht, StorageBitsOrdering)
{
    // Tag-only < Full (same entries); tagless is the cheapest per
    // entry — the cost argument of section 2.1.
    ChtParams full = fullCht(2048);
    ChtParams tagonly = full;
    tagonly.kind = ChtKind::TagOnly;
    ChtParams tagless = full;
    tagless.kind = ChtKind::Tagless;
    tagless.counterBits = 1;
    EXPECT_LT(Cht(tagonly).storageBits(), Cht(full).storageBits());
    EXPECT_LT(Cht(tagless).storageBits(),
              Cht(tagonly).storageBits());
}

TEST(Cht, NamesDescriptive)
{
    ChtParams p = fullCht(2048);
    p.trackDistance = true;
    EXPECT_EQ(Cht(p).name(), "Full-2048+dist");
}

TEST(ChtPath, SeparatesBehaviourByPath)
{
    ChtParams p;
    p.kind = ChtKind::Full;
    p.entries = 4096;
    p.assoc = 4;
    p.counterBits = 2;
    p.pathBits = 4;
    Cht cht(p);
    // Same load PC: collides on path 0x5, never on path 0xa.
    for (int i = 0; i < 20; ++i) {
        cht.update(0x4000, true, 1, 0x5);
        cht.update(0x4000, false, 0, 0xa);
    }
    EXPECT_TRUE(cht.predict(0x4000, 0x5).colliding);
    EXPECT_FALSE(cht.predict(0x4000, 0xa).colliding);
}

TEST(ChtPath, ZeroPathBitsIgnoresPath)
{
    Cht cht(fullCht());
    cht.update(0x4000, true, 1, 0x5);
    cht.update(0x4000, true, 1, 0x5);
    EXPECT_TRUE(cht.predict(0x4000, 0xff).colliding)
        << "path must be ignored when pathBits == 0";
}

TEST(ChtPath, PathVariantsStartCold)
{
    ChtParams p;
    p.kind = ChtKind::Full;
    p.entries = 4096;
    p.pathBits = 8;
    Cht cht(p);
    cht.update(0x4000, true, 1, 0x11);
    cht.update(0x4000, true, 1, 0x11);
    EXPECT_TRUE(cht.predict(0x4000, 0x11).colliding);
    // A new path variant has not seen its first collision yet.
    EXPECT_FALSE(cht.predict(0x4000, 0x22).colliding);
}

TEST(ChtPath, NameReflectsPathBits)
{
    ChtParams p = fullCht(2048);
    p.pathBits = 6;
    EXPECT_EQ(Cht(p).name(), "Full-2048+path6");
}

/** Property sweep: every kind/size learns a stable collider set. */
class ChtKindSizeSuite
    : public ::testing::TestWithParam<std::tuple<ChtKind, std::size_t>>
{
};

TEST_P(ChtKindSizeSuite, LearnsStableColliders)
{
    const auto [kind, entries] = GetParam();
    ChtParams p;
    p.kind = kind;
    p.entries = entries;
    p.counterBits = kind == ChtKind::Tagless ? 1 : 2;
    Cht cht(p);

    // 32 colliding loads, 32 never-colliding loads.
    Rng rng(99);
    for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 32; ++i) {
            cht.update(0x4000 + i * 32, true, 1 + i % 8);
            cht.update(0x9000 + i * 32, false);
        }
    }
    int caught = 0;
    int false_pos = 0;
    for (int i = 0; i < 32; ++i) {
        caught += cht.predict(0x4000 + i * 32).colliding;
        false_pos += cht.predict(0x9000 + i * 32).colliding;
    }
    EXPECT_GE(caught, 30) << "misses recurring colliders";
    // Tagless tables may alias a few; tagged ones must be exact.
    if (kind == ChtKind::Tagless)
        EXPECT_LE(false_pos, 8);
    else if (kind == ChtKind::Combined)
        EXPECT_LE(false_pos, 8); // conservative mode ORs the tagless
    else
        EXPECT_EQ(false_pos, 0);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, ChtKindSizeSuite,
    ::testing::Combine(::testing::Values(ChtKind::Full,
                                         ChtKind::TagOnly,
                                         ChtKind::Tagless,
                                         ChtKind::Combined),
                       ::testing::Values(std::size_t{256},
                                         std::size_t{1024},
                                         std::size_t{4096})),
    [](const auto &info) {
        return std::string(chtKindName(std::get<0>(info.param))) +
               "_" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace lrs
