/**
 * @file
 * Unit tests for the bank predictors and the paper's section-4.3
 * evaluation metric.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "predictors/bank_pred.hh"

namespace lrs
{
namespace
{

TEST(BankMetric, PerfectPredictorScoresOneAtZeroPenalty)
{
    // P=1, R->inf, penalty 0: metric -> 2 * 0.5*R/(R+1) -> 1.
    EXPECT_NEAR(bankMetric(1.0, 1e9, 0.0), 1.0, 1e-6);
}

TEST(BankMetric, NoPredictionsScoreZero)
{
    EXPECT_DOUBLE_EQ(bankMetric(0.0, 10.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(bankMetric(0.5, 0.0, 0.0), 0.0);
}

TEST(BankMetric, MatchesClosedForm)
{
    // Metric = P * (0.5R + 1 - pen) / (R+1) / 0.5.
    const double P = 0.7, R = 32.0, pen = 4.0;
    const double expect = P * (0.5 * R + 1 - pen) / (R + 1) / 0.5;
    EXPECT_NEAR(bankMetric(P, R, pen), expect, 1e-12);
}

TEST(BankMetric, DecreasesWithPenalty)
{
    const double m0 = bankMetric(0.7, 30, 0);
    const double m4 = bankMetric(0.7, 30, 4);
    const double m8 = bankMetric(0.7, 30, 8);
    EXPECT_GT(m0, m4);
    EXPECT_GT(m4, m8);
}

TEST(BankMetric, AccuratePredictorDegradesSlower)
{
    // Paper: "a small penalty means we must choose a predictor with a
    // high prediction rate, even if it is less accurate; a higher
    // penalty calls for a more accurate predictor."
    const double rate_heavy_0 = bankMetric(0.9, 10, 0);   // 90%/~91%
    const double acc_heavy_0 = bankMetric(0.6, 100, 0);   // 60%/~99%
    EXPECT_GT(rate_heavy_0, acc_heavy_0);
    const double rate_heavy_8 = bankMetric(0.9, 10, 8);
    const double acc_heavy_8 = bankMetric(0.6, 100, 8);
    EXPECT_LT(rate_heavy_8, acc_heavy_8);
}

TEST(BinaryBankPredictor, LearnsAlternatingBanks)
{
    auto pred = makeBankPredictorC();
    // Strided load alternating banks 0,1,0,1... is a period-2
    // pattern; history components learn it.
    for (int i = 0; i < 200; ++i)
        pred->update(0x4000, i % 2);
    int correct = 0, predicted = 0;
    for (int i = 0; i < 100; ++i) {
        const auto p = pred->predict(0x4000);
        if (p.valid) {
            ++predicted;
            correct += p.bank == static_cast<unsigned>(i % 2);
        }
        pred->update(0x4000, i % 2);
    }
    EXPECT_GT(predicted, 80);
    EXPECT_GT(static_cast<double>(correct) / predicted, 0.95);
}

TEST(BinaryBankPredictor, UnanimityDeclinesOnRandomStream)
{
    auto pred = makeBankPredictorA();
    Rng rng(5);
    int predicted = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        const unsigned bank = static_cast<unsigned>(rng.below(2));
        if (pred->predict(0x4000).valid)
            ++predicted;
        pred->update(0x4000, bank);
    }
    // On an unpredictable stream the unanimous composite should often
    // withhold its prediction.
    EXPECT_LT(static_cast<double>(predicted) / n, 0.8);
}

TEST(AddressBankPredictor, PredictsBankOfStridedStream)
{
    AddressBankPredictor pred(64, 2, 256);
    Addr a = 0x10000;
    for (int i = 0; i < 8; ++i) {
        pred.updateAddr(0x4000, a);
        a += 64;
    }
    const auto p = pred.predict(0x4000);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.bank, static_cast<unsigned>((a / 64) % 2));
}

TEST(AddressBankPredictor, StaysWithinOneBankForSmallStride)
{
    AddressBankPredictor pred(64, 2, 256);
    // Stride 8 within one line: bank stays put for 8 accesses.
    Addr a = 0x10000;
    for (int i = 0; i < 6; ++i) {
        pred.updateAddr(0x4000, a);
        a += 8;
    }
    const auto p = pred.predict(0x4000);
    ASSERT_TRUE(p.valid);
    EXPECT_EQ(p.bank, 0u);
}

TEST(AddressBankPredictor, DeclinesOnIrregularStream)
{
    AddressBankPredictor pred(64, 2, 256);
    Rng rng(17);
    for (int i = 0; i < 64; ++i)
        pred.updateAddr(0x4000, 0x10000 + rng.below(4096) * 16);
    EXPECT_FALSE(pred.predict(0x4000).valid);
}

TEST(BankFactories, PaperBudgetsAndNames)
{
    // Paper: local 0.5KB, gshare 0.5KB, gskew 0.75KB -> composites
    // stay under ~2.5KB.
    EXPECT_EQ(makeBankPredictorA()->name(), "A");
    EXPECT_EQ(makeBankPredictorB()->name(), "B");
    EXPECT_EQ(makeBankPredictorC()->name(), "C");
    EXPECT_LE(makeBankPredictorA()->storageBits(), 8u * 4096);
    EXPECT_LE(makeBankPredictorB()->storageBits(), 8u * 4096);
    EXPECT_LE(makeBankPredictorC()->storageBits(), 8u * 4096);
}

} // namespace
} // namespace lrs
