/**
 * @file
 * Tests for the structural invariant auditor: a sound machine passes,
 * and each class of hand-crafted corruption is caught with a Diag
 * naming the violated invariant. The auditor works on flattened
 * AuditViews precisely so these tests can corrupt state without
 * reaching into a live core.
 */

#include <gtest/gtest.h>

#include "core/auditor.hh"
#include "core/core.hh"
#include "trace/library.hh"

namespace lrs
{
namespace
{

/** A small, internally consistent view to corrupt per test. */
AuditView
soundView()
{
    AuditView v;
    v.robSize = 8;
    v.schedWindow = 4;
    v.regPool = 16;
    v.headSeq = 10;
    v.nextSeq = 13;
    v.rsCount = 2;
    v.poolUsed = 3;
    for (SeqNum s = 10; s < 13; ++s) {
        AuditView::Entry e;
        e.seq = s;
        e.slot = static_cast<int>(s % 8);
        e.waiting = s != 10;
        v.entries.push_back(e);
    }
    // seq 12 consumes seq 10's result.
    v.entries[2].src1Slot = static_cast<int>(10 % 8);
    v.entries[2].src1Seq = 10;
    // seq 12 is an STD paired with STA 11, which the MOB tracks.
    v.entries[2].isPairedStd = true;
    v.entries[2].pairSeq = 11;
    v.mobStores = {11};
    return v;
}

bool
hasParam(const std::vector<Diag> &diags, const std::string &needle)
{
    for (const Diag &d : diags) {
        if (d.param.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

TEST(Auditor, SoundViewPasses)
{
    EXPECT_TRUE(StateAuditor::check(soundView(), 100).empty());
}

TEST(Auditor, CatchesRobOverflow)
{
    AuditView v = soundView();
    v.nextSeq = v.headSeq + 9; // 9 in-flight in an 8-entry ROB
    const auto diags = StateAuditor::check(v, 1);
    EXPECT_TRUE(hasParam(diags, "occupancy"));
}

TEST(Auditor, CatchesHeadBehindNext)
{
    AuditView v = soundView();
    v.nextSeq = v.headSeq - 1;
    EXPECT_TRUE(hasParam(StateAuditor::check(v, 1), "occupancy"));
}

TEST(Auditor, CatchesBrokenAgeOrdering)
{
    AuditView v = soundView();
    v.entries[1].seq = 99; // not headSeq + 1
    EXPECT_TRUE(hasParam(StateAuditor::check(v, 1), "age_order"));
}

TEST(Auditor, CatchesRingSlotMismatch)
{
    AuditView v = soundView();
    v.entries[0].slot = (v.entries[0].slot + 1) % v.robSize;
    EXPECT_TRUE(hasParam(StateAuditor::check(v, 1), "ring_slot"));
}

TEST(Auditor, CatchesWindowMiscount)
{
    AuditView v = soundView();
    v.rsCount = 7; // only 2 entries are Waiting
    EXPECT_TRUE(hasParam(StateAuditor::check(v, 1), "rs_count"));
}

TEST(Auditor, CatchesPoolOverflow)
{
    AuditView v = soundView();
    v.poolUsed = v.regPool + 1;
    EXPECT_TRUE(hasParam(StateAuditor::check(v, 1), "reg_pool"));
    v.poolUsed = -1;
    EXPECT_TRUE(hasParam(StateAuditor::check(v, 1), "reg_pool"));
}

TEST(Auditor, CatchesForwardPointingWakeupEdge)
{
    AuditView v = soundView();
    // Make the oldest entry "depend" on the youngest: impossible.
    v.entries[0].src1Slot = v.entries[2].slot;
    v.entries[0].src1Seq = v.entries[2].seq;
    EXPECT_TRUE(hasParam(StateAuditor::check(v, 1), "src1"));
}

TEST(Auditor, CatchesEdgeSlotSeqDisagreement)
{
    AuditView v = soundView();
    v.entries[2].src1Slot = (v.entries[2].src1Slot + 1) % v.robSize;
    EXPECT_TRUE(hasParam(StateAuditor::check(v, 1), "src1"));
}

TEST(Auditor, CatchesStdPairedWithYoungerSta)
{
    AuditView v = soundView();
    v.entries[2].pairSeq = v.entries[2].seq + 1;
    EXPECT_TRUE(hasParam(StateAuditor::check(v, 1), "std_pair"));
}

TEST(Auditor, CatchesStdWhoseStaTheMobLost)
{
    AuditView v = soundView();
    v.mobStores.clear(); // STA 11 in flight but the MOB forgot it
    EXPECT_TRUE(hasParam(StateAuditor::check(v, 1), "std_pair"));
}

TEST(Auditor, CatchesMobDisorder)
{
    AuditView v = soundView();
    v.mobStores = {12, 11};
    EXPECT_TRUE(hasParam(StateAuditor::check(v, 1), "mob_order"));
}

TEST(Auditor, CatchesMobGhostStore)
{
    AuditView v = soundView();
    v.mobStores = {11, 50}; // 50 was never renamed
    EXPECT_TRUE(hasParam(StateAuditor::check(v, 1), "mob_order"));
}

TEST(Auditor, ViolationDiagsCarryTheCycle)
{
    AuditView v = soundView();
    v.rsCount = 7;
    const auto diags = StateAuditor::check(v, 4242);
    ASSERT_FALSE(diags.empty());
    EXPECT_EQ(diags[0].cycle, 4242u);
    EXPECT_EQ(diags[0].code, DiagCode::AuditViolation);
}

TEST(Auditor, LiveCoreViewIsSound)
{
    MachineConfig cfg;
    OooCore core(cfg);
    EXPECT_TRUE(StateAuditor::check(core.auditView(), 0).empty());
}

TEST(Auditor, AuditedRunCompletesAndCounts)
{
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", 20000));
    MachineConfig cfg;
    cfg.scheme = OrderingScheme::Exclusive;
    cfg.auditInterval = 500;
    OooCore core(cfg);
    const SimResult r = core.run(*trace);
    EXPECT_EQ(r.uops, 20000u);
    // One audit per interval plus the final drained-machine audit.
    EXPECT_GE(core.stats().value("audit.checks"),
              static_cast<double>(r.cycles / 500));
}

TEST(Auditor, AuditedRunMatchesUnauditedRun)
{
    // Auditing is observation only: identical results, on or off.
    auto trace = TraceLibrary::make(TraceLibrary::byName("li", 15000));
    MachineConfig cfg;
    OooCore plain(cfg);
    const SimResult a = plain.run(*trace);
    cfg.auditInterval = 100;
    OooCore audited(cfg);
    const SimResult b = audited.run(*trace);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.uops, b.uops);
    EXPECT_EQ(a.collisionPenalties, b.collisionPenalties);
}

} // namespace
} // namespace lrs
