/**
 * @file
 * Tests of the crash-safe checkpoint journal (common/journal.hh) and
 * its CRC-32 (common/crc.hh): framing, durability-model recovery
 * (every-byte truncation sweep, corrupt records mid-file, resync on
 * the next newline), and the serializer byte-stability the sweep
 * supervisor's resume byte-identity guarantee rests on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/crc.hh"
#include "common/diag.hh"
#include "common/journal.hh"

namespace lrs
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "lrs_journal_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
}

json::Value
record(int i)
{
    json::Value v = json::Value::object();
    v.set("cell", static_cast<std::uint64_t>(i));
    v.set("key", "trace" + std::to_string(i) + "/scheme");
    v.set("status", "OK");
    return v;
}

TEST(Journal, Crc32KnownVector)
{
    // The IEEE check value: CRC-32 of the ASCII digits "123456789".
    EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
    EXPECT_EQ(crc32(std::string()), 0u);
}

TEST(Journal, Crc32IncrementalMatchesOneShot)
{
    const std::string text = "the quick brown fox jumps over";
    const std::uint32_t whole = crc32(text);
    const std::uint32_t half = crc32(text.data(), 10);
    EXPECT_EQ(crc32(text.data() + 10, text.size() - 10, half), whole);
}

TEST(Journal, LineFraming)
{
    const std::string line = journalLine(record(7));
    ASSERT_GT(line.size(), 15u);
    EXPECT_EQ(line.substr(0, 6), "LRSJ1 ");
    EXPECT_EQ(line[14], ' ');
    EXPECT_EQ(line.back(), '\n');
    const std::string body = line.substr(15, line.size() - 16);
    EXPECT_EQ(body, record(7).dump(0));
    // The CRC field covers exactly the JSON bytes.
    char want[9];
    std::snprintf(want, sizeof(want), "%08x", crc32(body));
    EXPECT_EQ(line.substr(6, 8), want);
}

TEST(Journal, WriteReadRoundtrip)
{
    const std::string path = tmpPath("roundtrip.jsonl");
    std::remove(path.c_str());
    {
        JournalWriter w(path);
        for (int i = 0; i < 5; ++i)
            w.append(record(i));
    }
    JournalReadStats st;
    const auto recs = readJournal(path, &st);
    ASSERT_EQ(recs.size(), 5u);
    EXPECT_EQ(st.records, 5u);
    EXPECT_EQ(st.badLines, 0u);
    EXPECT_FALSE(st.truncatedTail);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(recs[i].dump(0), record(i).dump(0));
    std::remove(path.c_str());
}

TEST(Journal, ReopenAppendsAfterExistingRecords)
{
    // The resume path: a second process opens the same journal and
    // keeps appending; nothing already written is disturbed.
    const std::string path = tmpPath("reopen.jsonl");
    std::remove(path.c_str());
    {
        JournalWriter w(path);
        w.append(record(0));
        w.append(record(1));
    }
    {
        JournalWriter w(path, /*truncate=*/false);
        w.append(record(2));
    }
    const auto recs = readJournal(path);
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[2].dump(0), record(2).dump(0));
    std::remove(path.c_str());
}

TEST(Journal, TruncateFlagDiscardsStaleRecords)
{
    const std::string path = tmpPath("truncate.jsonl");
    std::remove(path.c_str());
    {
        JournalWriter w(path);
        w.append(record(0));
    }
    {
        JournalWriter w(path, /*truncate=*/true);
        w.append(record(9));
    }
    const auto recs = readJournal(path);
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].dump(0), record(9).dump(0));
    std::remove(path.c_str());
}

TEST(Journal, EveryByteTruncationSweepNeverThrows)
{
    // The SIGKILL/power-cut model: the file can end at *any* byte.
    // Whatever the cut point, the reader must return exactly the
    // records whose full lines survived, flag a torn tail, and never
    // throw.
    const std::string path = tmpPath("sweep_full.jsonl");
    std::remove(path.c_str());
    {
        JournalWriter w(path);
        for (int i = 0; i < 3; ++i)
            w.append(record(i));
    }
    const std::string bytes = slurp(path);
    std::remove(path.c_str());

    std::vector<std::size_t> lineEnds; // offsets one past each '\n'
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        if (bytes[i] == '\n')
            lineEnds.push_back(i + 1);
    }
    ASSERT_EQ(lineEnds.size(), 3u);

    const std::string cut = tmpPath("sweep_cut.jsonl");
    for (std::size_t len = 0; len <= bytes.size(); ++len) {
        spit(cut, bytes.substr(0, len));
        JournalReadStats st;
        std::vector<json::Value> recs;
        ASSERT_NO_THROW(recs = readJournal(cut, &st)) << "len=" << len;

        std::size_t complete = 0;
        while (complete < lineEnds.size() &&
               lineEnds[complete] <= len)
            ++complete;
        EXPECT_EQ(recs.size(), complete) << "len=" << len;
        EXPECT_EQ(st.records, complete) << "len=" << len;
        const bool torn =
            len > 0 && (complete == 0 || lineEnds[complete - 1] < len);
        EXPECT_EQ(st.truncatedTail, torn) << "len=" << len;
        for (std::size_t i = 0; i < recs.size(); ++i)
            EXPECT_EQ(recs[i].dump(0), record(static_cast<int>(i)).dump(0));
    }
    std::remove(cut.c_str());
}

TEST(Journal, CorruptCrcMidFileDropsOnlyThatRecord)
{
    const std::string path = tmpPath("corrupt.jsonl");
    std::remove(path.c_str());
    {
        JournalWriter w(path);
        for (int i = 0; i < 3; ++i)
            w.append(record(i));
    }
    std::string bytes = slurp(path);
    // Flip one byte inside the middle record's JSON payload.
    const std::size_t firstNl = bytes.find('\n');
    ASSERT_NE(firstNl, std::string::npos);
    bytes[firstNl + 20] ^= 0x1;
    spit(path, bytes);

    JournalReadStats st;
    const auto recs = readJournal(path, &st);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].dump(0), record(0).dump(0));
    EXPECT_EQ(recs[1].dump(0), record(2).dump(0));
    EXPECT_EQ(st.badLines, 1u);
    EXPECT_GT(st.droppedBytes, 0u);
    EXPECT_FALSE(st.truncatedTail);
    std::remove(path.c_str());
}

TEST(Journal, ForeignLinesAreSkippedWithResync)
{
    const std::string path = tmpPath("foreign.jsonl");
    std::remove(path.c_str());
    std::string bytes;
    bytes += journalLine(record(0));
    bytes += "# a comment some other tool scribbled in\n";
    bytes += "\n";
    bytes += journalLine(record(1));
    spit(path, bytes);

    JournalReadStats st;
    const auto recs = readJournal(path, &st);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[1].dump(0), record(1).dump(0));
    // The empty line and the comment both fail framing.
    EXPECT_EQ(st.badLines, 2u);
    std::remove(path.c_str());
}

TEST(Journal, MissingFileThrowsIoError)
{
    EXPECT_THROW(readJournal(tmpPath("definitely_absent.jsonl")),
                 IoError);
}

TEST(Journal, CompactDumpIsAStableFixpoint)
{
    // Resume byte-identity rests on this: a document that has been
    // through dump(0) once re-emits the exact same bytes after a
    // parse→dump round trip, doubles included.
    json::Value v = json::Value::object();
    v.set("ipc", 1.0 / 3.0);
    v.set("speedup", 1.147000000000001);
    v.set("cycles", std::uint64_t{12793});
    v.set("huge", 1.5e300);
    json::Value arr = json::Value::array();
    arr.push(0.1);
    arr.push(2.0);
    v.set("series", std::move(arr));

    const std::string once = v.dump(0);
    EXPECT_EQ(json::Value::parse(once).dump(0), once);
}

} // namespace
} // namespace lrs
