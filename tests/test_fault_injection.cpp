/**
 * @file
 * Fault-injection tests: the simulator must *recover or fail loudly*
 * under deliberately corrupted traces, flipped predictor bits, and
 * perturbed latencies — and every fault must leave an accounting
 * trail. Determinism matters as much as survival: the same seed must
 * reproduce the same faults bit-for-bit.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/fault_injector.hh"
#include "core/core.hh"
#include "predictors/cht.hh"
#include "trace/library.hh"
#include "trace/serialize.hh"

namespace lrs
{
namespace
{

std::string
serializedTraceBytes(const VecTrace &t)
{
    std::stringstream ss;
    writeTrace(ss, t);
    return ss.str();
}

std::size_t
headerBytes(const VecTrace &t)
{
    return 8 + 4 + t.name().size() + 8;
}

TEST(FaultInjector, DisabledByDefault)
{
    FaultInjector fi;
    EXPECT_FALSE(fi.enabled());
    EXPECT_EQ(fi.perturbLatency(), 0u);
    EXPECT_FALSE(fi.fireBitFlip());
}

TEST(FaultInjector, SameSeedSameFaults)
{
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", 5000));
    const std::string orig = serializedTraceBytes(*trace);

    FaultConfig fc;
    fc.seed = 42;
    fc.traceRate = 0.05;
    std::string a = orig, b = orig;
    FaultInjector fia(fc), fib(fc);
    fia.corruptBuffer(reinterpret_cast<std::uint8_t *>(a.data()),
                      a.size(), headerBytes(*trace),
                      kTraceRecordBytes);
    fib.corruptBuffer(reinterpret_cast<std::uint8_t *>(b.data()),
                      b.size(), headerBytes(*trace),
                      kTraceRecordBytes);
    EXPECT_GT(fia.traceFaults(), 0u);
    EXPECT_EQ(fia.traceFaults(), fib.traceFaults());
    EXPECT_EQ(a, b);
    EXPECT_NE(a, orig);
}

TEST(FaultInjector, HeaderIsProtected)
{
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", 2000));
    const std::string orig = serializedTraceBytes(*trace);
    FaultConfig fc;
    fc.traceRate = 1.0; // corrupt every record
    FaultInjector fi(fc);
    std::string bytes = orig;
    fi.corruptBuffer(reinterpret_cast<std::uint8_t *>(bytes.data()),
                     bytes.size(), headerBytes(*trace),
                     kTraceRecordBytes);
    EXPECT_EQ(bytes.substr(0, headerBytes(*trace)),
              orig.substr(0, headerBytes(*trace)));
}

TEST(FaultInjector, CorruptedTraceRecoversWithAccounting)
{
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", 20000));
    std::string bytes = serializedTraceBytes(*trace);
    FaultConfig fc;
    fc.seed = 7;
    fc.traceRate = 0.02; // ~2% of records, over the 1% bar
    FaultInjector fi(fc);
    fi.corruptBuffer(reinterpret_cast<std::uint8_t *>(bytes.data()),
                     bytes.size(), headerBytes(*trace),
                     kTraceRecordBytes);
    ASSERT_GE(fi.traceFaults(), 20000u / 100);

    std::stringstream ss(bytes);
    TraceReadOptions opts;
    opts.recover = true;
    TraceReadStats st;
    auto back = readTrace(ss, opts, &st);
    EXPECT_GT(st.skippedRecords, 0u);
    EXPECT_GT(back->size(), 15000u); // most of the trace survives

    // The degraded trace must still simulate to completion, with the
    // reader's accounting visible through the core's registry.
    MachineConfig cfg;
    cfg.scheme = OrderingScheme::Exclusive;
    OooCore core(cfg);
    st.registerStats(core.stats().group("trace"));
    const SimResult r = core.run(*back);
    EXPECT_EQ(r.uops, back->size());
    EXPECT_GT(core.stats().value("trace.skipped_records"), 0.0);
}

TEST(FaultInjector, ExhaustedBudgetFailsLoudly)
{
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", 20000));
    std::string bytes = serializedTraceBytes(*trace);
    FaultConfig fc;
    fc.traceRate = 0.10;
    FaultInjector fi(fc);
    fi.corruptBuffer(reinterpret_cast<std::uint8_t *>(bytes.data()),
                     bytes.size(), headerBytes(*trace),
                     kTraceRecordBytes);

    std::stringstream ss(bytes);
    TraceReadOptions opts;
    opts.recover = true;
    opts.badRecordBudget = 10; // far fewer than ~10% of 20k records
    EXPECT_THROW(readTrace(ss, opts), TraceError);
}

TEST(FaultInjector, ChtBitFlipsNeverChangeRetiredWork)
{
    // The CHT is a hint structure: flipping its bits may cost cycles
    // but the same uops must retire. Run the same trace with and
    // without aggressive bit flipping and compare the books.
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", 30000));
    MachineConfig cfg;
    cfg.scheme = OrderingScheme::Exclusive;

    OooCore clean(cfg);
    const SimResult base = clean.run(*trace);

    FaultConfig fc;
    fc.seed = 99;
    fc.bitRate = 0.10;
    FaultInjector fi(fc);
    OooCore faulty(cfg);
    faulty.attachFaultInjector(&fi);
    const SimResult hit = faulty.run(*trace);

    EXPECT_GT(fi.bitFlips(), 0u);
    EXPECT_EQ(hit.uops, base.uops);
    EXPECT_EQ(hit.loads, base.loads);
    EXPECT_EQ(hit.stores, base.stores);
}

TEST(FaultInjector, LatencyPerturbationOnlySlowsTheMachine)
{
    auto trace = TraceLibrary::make(TraceLibrary::byName("li", 30000));
    MachineConfig cfg;

    OooCore clean(cfg);
    const SimResult base = clean.run(*trace);

    FaultConfig fc;
    fc.seed = 5;
    fc.latRate = 0.20;
    FaultInjector fi(fc);
    OooCore slow(cfg);
    slow.attachFaultInjector(&fi);
    const SimResult hit = slow.run(*trace);

    EXPECT_GT(fi.latencyPerturbs(), 0u);
    EXPECT_EQ(hit.uops, base.uops);
    EXPECT_GE(hit.cycles, base.cycles); // strictly additive faults
}

TEST(FaultInjector, PerturbedLatencyIsBounded)
{
    FaultConfig fc;
    fc.latRate = 1.0;
    fc.maxLatencyDelta = 8;
    FaultInjector fi(fc);
    for (int i = 0; i < 1000; ++i) {
        const Cycle d = fi.perturbLatency();
        EXPECT_GE(d, 1u);
        EXPECT_LE(d, 8u);
    }
}

TEST(FaultInjector, CorruptRandomBitKeepsChtUsable)
{
    // Hammer a small CHT with bit flips interleaved with traffic; the
    // structure must stay internally consistent (no crash, sane
    // predictions) because scheduling treats it as a pure hint.
    ChtParams p;
    p.entries = 64;
    p.kind = ChtKind::Full;
    p.trackDistance = true;
    Cht cht(p);
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const Addr pc = 0x1000 + (i % 37) * 4;
        cht.update(pc, (i % 3) == 0, 1 + (i % 4), 0);
        cht.corruptRandomBit(rng);
        (void)cht.predict(pc, 0);
    }
    SUCCEED();
}

TEST(FaultInjector, EnvOverridesRejectSignedWrap)
{
    // LRS_FAULT_SEED=-1 once wrapped to 2^64-1 through strtoull; a
    // bad override must keep the default (with a stderr warning), not
    // silently inject under a nonsense seed.
    const FaultConfig defaults;
    ::setenv("LRS_FAULT_SEED", "-1", 1);
    EXPECT_EQ(FaultConfig::fromEnv().seed, defaults.seed);
    ::setenv("LRS_FAULT_SEED", "+7", 1);
    EXPECT_EQ(FaultConfig::fromEnv().seed, defaults.seed);
    ::setenv("LRS_FAULT_SEED", " 7", 1);
    EXPECT_EQ(FaultConfig::fromEnv().seed, defaults.seed);
    ::setenv("LRS_FAULT_SEED", "0xbeef", 1);
    EXPECT_EQ(FaultConfig::fromEnv().seed, defaults.seed);
    ::setenv("LRS_FAULT_SEED", "18446744073709551616", 1);
    EXPECT_EQ(FaultConfig::fromEnv().seed, defaults.seed);
    ::setenv("LRS_FAULT_SEED", "1234", 1);
    EXPECT_EQ(FaultConfig::fromEnv().seed, 1234u);
    ::unsetenv("LRS_FAULT_SEED");

    ::setenv("LRS_FAULT_LAT_MAX", "-3", 1);
    EXPECT_EQ(FaultConfig::fromEnv().maxLatencyDelta,
              defaults.maxLatencyDelta);
    ::unsetenv("LRS_FAULT_LAT_MAX");
}

} // namespace
} // namespace lrs
