/**
 * @file
 * Tests for the statistical analyses used by Figures 10 and 12: the
 * functional hit-miss evaluation and the bank-prediction evaluation.
 */

#include <gtest/gtest.h>

#include "core/analysis.hh"
#include "trace/library.hh"

namespace lrs
{
namespace
{

VecTrace
syntheticLoads()
{
    // 400 loads: pc A streams lines (always misses a big region),
    // pc B hammers one line (always hits after warmup).
    std::vector<Uop> uops;
    Addr stream = 0x100000;
    for (int i = 0; i < 400; ++i) {
        Uop u;
        u.cls = UopClass::Load;
        u.memSize = 8;
        u.dst = 1;
        if (i % 2 == 0) {
            u.pc = 0xA000;
            u.addr = stream;
            stream += 4096;
        } else {
            u.pc = 0xB000;
            u.addr = 0x8000;
        }
        uops.push_back(u);
    }
    return VecTrace("hmload", std::move(uops));
}

TEST(AnalyzeHitMiss, CountsPartitionLoads)
{
    auto trace = syntheticLoads();
    auto hmp = makeHmp("local");
    const auto st = analyzeHitMiss(trace, *hmp);
    EXPECT_EQ(st.loads, 400u);
    EXPECT_EQ(st.ahPh + st.ahPm + st.amPh + st.amPm, st.loads);
    EXPECT_EQ(st.amPh + st.amPm, st.misses);
}

TEST(AnalyzeHitMiss, AlwaysHitNeverPredictsMiss)
{
    auto trace = syntheticLoads();
    AlwaysHitHmp hmp;
    const auto st = analyzeHitMiss(trace, hmp);
    EXPECT_EQ(st.amPm, 0u);
    EXPECT_EQ(st.ahPm, 0u);
    EXPECT_GT(st.misses, 150u); // the streaming half misses
}

TEST(AnalyzeHitMiss, LocalLearnsBimodalLoads)
{
    auto trace = syntheticLoads();
    auto hmp = makeHmp("local");
    const auto st = analyzeHitMiss(trace, *hmp);
    // Streaming pc misses every time -> local catches most of them.
    EXPECT_GT(st.coverage(), 0.8);
    // Hot pc hits every time -> very few false miss predictions.
    EXPECT_LT(st.falseMissFrac(), 0.05);
}

TEST(AnalyzeHitMiss, RealTraceSane)
{
    auto trace =
        TraceLibrary::make(TraceLibrary::byName("wd", 30000));
    auto hmp = makeHmp("chooser");
    const auto st = analyzeHitMiss(*trace, *hmp);
    EXPECT_GT(st.loads, 3000u);
    EXPECT_GT(st.missRate(), 0.005);
    EXPECT_LT(st.missRate(), 0.30);
    EXPECT_EQ(st.ahPh + st.ahPm + st.amPh + st.amPm, st.loads);
}

VecTrace
bankLoads()
{
    // pc A: line-strided (bank alternates 0,1,0,1);
    // pc B: same line always (constant bank).
    std::vector<Uop> uops;
    Addr a = 0x100000;
    for (int i = 0; i < 600; ++i) {
        Uop u;
        u.cls = UopClass::Load;
        u.memSize = 8;
        u.dst = 1;
        if (i % 2 == 0) {
            u.pc = 0xA000;
            u.addr = a;
            a += 64;
        } else {
            u.pc = 0xB000;
            u.addr = 0x8000;
        }
        uops.push_back(u);
    }
    return VecTrace("bankload", std::move(uops));
}

TEST(AnalyzeBank, StatsPartition)
{
    auto trace = bankLoads();
    auto pred = makeBankPredictorC();
    const auto st = analyzeBank(trace, *pred);
    EXPECT_EQ(st.loads, 600u);
    EXPECT_EQ(st.correct + st.wrong, st.predicted);
    EXPECT_LE(st.predicted, st.loads);
    EXPECT_GE(st.rate(), 0.0);
    EXPECT_LE(st.rate(), 1.0);
}

TEST(AnalyzeBank, CompositesLearnRegularStreams)
{
    auto trace = bankLoads();
    auto pred = makeBankPredictorC();
    const auto st = analyzeBank(trace, *pred);
    EXPECT_GT(st.rate(), 0.5);
    EXPECT_GT(st.accuracy(), 0.9);
}

TEST(AnalyzeBank, AddressPredictorNearPerfectOnStrides)
{
    auto trace = bankLoads();
    auto pred = makeAddressBankPredictor();
    const auto st = analyzeBank(trace, *pred);
    EXPECT_GT(st.rate(), 0.8);
    EXPECT_GT(st.accuracy(), 0.97);
}

TEST(AnalyzeBank, MetricUsesMeasuredRateAndRatio)
{
    auto trace = bankLoads();
    auto pred = makeAddressBankPredictor();
    const auto st = analyzeBank(trace, *pred);
    EXPECT_NEAR(st.metric(0.0),
                bankMetric(st.rate(), st.ratioR(), 0.0), 1e-12);
    EXPECT_GT(st.metric(0.0), 0.7);
}

TEST(AnalyzeBank, RealTraceRatesInRange)
{
    auto trace =
        TraceLibrary::make(TraceLibrary::byName("gcc", 30000));
    for (auto make : {makeBankPredictorA, makeBankPredictorB,
                      makeBankPredictorC}) {
        auto pred = make();
        const auto st = analyzeBank(*trace, *pred);
        EXPECT_GT(st.rate(), 0.15) << pred->name();
        EXPECT_LT(st.rate(), 1.0) << pred->name();
        EXPECT_GT(st.accuracy(), 0.75) << pred->name();
    }
}

TEST(AnalyzeL2, MemoryResidentTraceHasL2Misses)
{
    // TPC-style chases exceed the L2: some accesses go to memory.
    auto trace =
        TraceLibrary::make(TraceLibrary::byName("tpcc", 40000));
    auto hmp = makeHmp("local");
    const auto l2 = analyzeHitMiss(*trace, *hmp, {}, 2.0,
                                   MissLevel::L2);
    EXPECT_GT(l2.misses, 50u);
    // L2 misses are a subset of L1 misses.
    auto hmp2 = makeHmp("local");
    const auto l1 = analyzeHitMiss(*trace, *hmp2);
    EXPECT_LT(l2.misses, l1.misses);
}

TEST(AnalyzeL2, CacheResidentTraceHasFewMemoryMisses)
{
    auto trace =
        TraceLibrary::make(TraceLibrary::byName("wd", 40000));
    auto hmp = makeHmp("local");
    const auto l2 = analyzeHitMiss(*trace, *hmp, {}, 2.0,
                                   MissLevel::L2);
    EXPECT_LT(l2.missRate(), 0.05);
}

TEST(ThreadSwitch, EstimateArithmetic)
{
    ThreadSwitchEstimate est;
    est.stats.loads = 1000;
    est.stats.amPm = 10; // caught memory misses
    est.stats.ahPm = 5;  // false switches
    est.switchOverhead = 20;
    est.memLatency = 60;
    // (10 * (60-20) - 5 * 20) * 1000 / 1000 = 300.
    EXPECT_DOUBLE_EQ(est.netSavedPerKiloLoad(), 300.0);
}

TEST(ThreadSwitch, PositiveOnMemoryBoundTrace)
{
    auto trace =
        TraceLibrary::make(TraceLibrary::byName("tpcc", 40000));
    auto hmp = makeHmp("local");
    const auto est = estimateThreadSwitch(*trace, *hmp);
    EXPECT_GT(est.netSavedPerKiloLoad(), 0.0);
    EXPECT_EQ(est.memLatency, MemoryHierarchy({}).memLatency());
}

} // namespace
} // namespace lrs
