/**
 * @file
 * Tests for the pipeline event tracer: ring-buffer semantics
 * (ordering, wraparound), Chrome trace_event output validity, the
 * event mix a real core run produces, and the no-tracer-attached
 * default.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/json.hh"
#include "core/runner.hh"
#include "core/tracer.hh"
#include "trace/library.hh"

namespace lrs
{
namespace
{

TEST(Tracer, EventsKeptInOrder)
{
    PipelineTracer tr(8);
    for (std::uint64_t i = 0; i < 5; ++i)
        tr.record(TraceEvent::Issue, /*cycle=*/10 + i, /*seq=*/i,
                  /*pc=*/0x1000 + 4 * i, UopClass::IntAlu);
    EXPECT_EQ(tr.size(), 5u);
    EXPECT_EQ(tr.totalRecorded(), 5u);
    EXPECT_FALSE(tr.wrapped());
    for (std::size_t i = 0; i < tr.size(); ++i) {
        EXPECT_EQ(tr.at(i).cycle, 10 + i);
        EXPECT_EQ(tr.at(i).seq, i);
    }
}

TEST(Tracer, WraparoundKeepsNewestEvents)
{
    PipelineTracer tr(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        tr.record(TraceEvent::Retire, i, i, 0, UopClass::Load);
    EXPECT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr.totalRecorded(), 10u);
    EXPECT_TRUE(tr.wrapped());
    // Oldest-first readout of the surviving tail: seqs 6..9.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(tr.at(i).seq, 6 + i);
    EXPECT_THROW(tr.at(4), std::out_of_range);
}

TEST(Tracer, ClearEmptiesBuffer)
{
    PipelineTracer tr(4);
    tr.record(TraceEvent::Rename, 1, 1, 0, UopClass::IntAlu);
    tr.clear();
    EXPECT_EQ(tr.size(), 0u);
    EXPECT_EQ(tr.totalRecorded(), 0u);
    EXPECT_FALSE(tr.wrapped());
}

TEST(Tracer, ChromeTraceIsValidJson)
{
    PipelineTracer tr(16);
    tr.record(TraceEvent::Rename, 5, 1, 0x400, UopClass::Load);
    tr.record(TraceEvent::Issue, 7, 1, 0x400, UopClass::Load);
    tr.record(TraceEvent::Retire, 12, 1, 0x400, UopClass::Load);

    const json::Value doc = json::Value::parse(tr.toChromeTrace());
    const json::Value &evs = doc.at("traceEvents");
    ASSERT_TRUE(evs.isArray());
    // 6 metadata records naming the tracks + 3 instant events.
    ASSERT_EQ(evs.size(), kNumTraceEvents + 3);

    std::size_t meta = 0, instant = 0;
    for (std::size_t i = 0; i < evs.size(); ++i) {
        const json::Value &e = evs.at(i);
        const std::string ph = e.at("ph").asString();
        if (ph == "M") {
            ++meta;
            EXPECT_EQ(e.at("name").asString(), "thread_name");
        } else {
            ASSERT_EQ(ph, "i");
            ++instant;
            EXPECT_TRUE(e.has("ts"));
            EXPECT_TRUE(e.at("args").has("seq"));
        }
    }
    EXPECT_EQ(meta, kNumTraceEvents);
    EXPECT_EQ(instant, 3u);
    const json::Value &e0 = evs.at(kNumTraceEvents);
    EXPECT_EQ(e0.at("name").asString(), "rename");
    EXPECT_DOUBLE_EQ(e0.at("ts").asDouble(), 5.0);
    EXPECT_DOUBLE_EQ(
        doc.at("otherData").at("recorded").asDouble(), 3.0);
}

/** A real run with a tracer attached records a broad event mix —
 *  the acceptance bar asks for at least 5 distinct phases. */
TEST(Tracer, CoreRunRecordsAllLifecycleKinds)
{
    MachineConfig cfg;
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", 30000));
    OooCore core(cfg);
    PipelineTracer tr;
    core.attachTracer(&tr);
    const SimResult r = core.run(*trace);

    EXPECT_GE(tr.totalRecorded(),
              2 * r.uops); // at least rename+retire per uop
    std::set<TraceEvent> kinds;
    for (std::size_t i = 0; i < tr.size(); ++i)
        kinds.insert(tr.at(i).ev);
    EXPECT_GE(kinds.size(), 5u);
    EXPECT_TRUE(kinds.count(TraceEvent::Rename));
    EXPECT_TRUE(kinds.count(TraceEvent::Issue));
    EXPECT_TRUE(kinds.count(TraceEvent::Retire));

    // Detach: a second run must record nothing new.
    core.attachTracer(nullptr);
    tr.clear();
    core.run(*trace);
    EXPECT_EQ(tr.totalRecorded(), 0u);
}

TEST(Tracer, ResultsIdenticalWithAndWithoutTracer)
{
    MachineConfig cfg;
    auto trace = TraceLibrary::make(TraceLibrary::byName("gcc", 20000));
    const SimResult plain = OooCore(cfg).run(*trace);

    OooCore core(cfg);
    PipelineTracer tr(1024); // small ring, guaranteed to wrap
    core.attachTracer(&tr);
    const SimResult traced = core.run(*trace);

    EXPECT_EQ(plain.cycles, traced.cycles);
    EXPECT_EQ(plain.uops, traced.uops);
    EXPECT_EQ(plain.wastedIssues, traced.wastedIssues);
    EXPECT_TRUE(tr.wrapped());
    EXPECT_EQ(tr.size(), tr.capacity());
}

} // namespace
} // namespace lrs
