/**
 * @file
 * Integration tests: full library traces through the full machine,
 * checking cross-module invariants and the qualitative results the
 * paper reports (scheme ordering, window-size trends, predictor
 * benefit).
 */

#include <gtest/gtest.h>

#include "core/analysis.hh"
#include "core/runner.hh"

namespace lrs
{
namespace
{

constexpr std::uint64_t kLen = 40000;

MachineConfig
base()
{
    MachineConfig cfg;
    cfg.cht.trackDistance = true;
    return cfg;
}

TEST(Integration, DeterministicAcrossRuns)
{
    const auto tp = TraceLibrary::byName("wd", kLen);
    const auto a = runSim(tp, base());
    const auto b = runSim(tp, base());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.acPnc, b.acPnc);
}

TEST(Integration, AllUopsRetireUnderEveryScheme)
{
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", kLen));
    const auto results = runAllSchemes(*trace, base());
    for (const auto &r : results) {
        EXPECT_EQ(r.uops, kLen) << r.config;
        EXPECT_EQ(r.classifiedLoads(), r.loads) << r.config;
    }
}

TEST(Integration, SchemeOrderingMatchesPaper)
{
    // Figure 7's qualitative result: Traditional <= Postponing and
    // Opportunistic <= Inclusive <= Exclusive <= Perfect (within a
    // small tolerance for scheduling noise).
    auto trace = TraceLibrary::make(TraceLibrary::byName("pm", kLen));
    const auto r = runAllSchemes(*trace, base());
    const double trad = static_cast<double>(r[0].cycles);
    const double opp = static_cast<double>(r[1].cycles);
    const double post = static_cast<double>(r[2].cycles);
    const double incl = static_cast<double>(r[3].cycles);
    const double excl = static_cast<double>(r[4].cycles);
    const double perf = static_cast<double>(r[5].cycles);
    EXPECT_LE(post, trad * 1.01);
    EXPECT_LE(incl, opp * 1.01);
    EXPECT_LE(excl, incl * 1.005);
    EXPECT_LE(perf, excl * 1.005);
    EXPECT_LT(perf, trad); // there is real headroom
}

TEST(Integration, PerfectDisambiguationNeverPenalized)
{
    for (const char *name : {"wd", "gcc", "javac"}) {
        MachineConfig cfg = base();
        cfg.scheme = OrderingScheme::Perfect;
        const auto r =
            runSim(TraceLibrary::byName(name, kLen), cfg);
        EXPECT_EQ(r.collisionPenalties, 0u) << name;
        EXPECT_EQ(r.orderViolations, 0u) << name;
    }
}

TEST(Integration, ChtCutsPenaltiesVsOpportunistic)
{
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", kLen));
    MachineConfig opp = base();
    opp.scheme = OrderingScheme::Opportunistic;
    MachineConfig incl = base();
    incl.scheme = OrderingScheme::Inclusive;
    const auto ro = runSim(*trace, opp);
    const auto ri = runSim(*trace, incl);
    EXPECT_LT(ri.collisionPenalties, ro.collisionPenalties / 2);
}

TEST(Integration, WindowGrowthRaisesCollisionShare)
{
    // Figure 6's trend: AC share grows with the scheduling window.
    const auto tp = TraceLibrary::byName("wd", kLen);
    MachineConfig cfg = base();
    cfg.schedWindow = 8;
    const auto small = runSim(tp, cfg);
    cfg.schedWindow = 128;
    const auto big = runSim(tp, cfg);
    const double small_ac =
        static_cast<double>(small.actuallyColliding()) /
        static_cast<double>(small.classifiedLoads());
    const double big_ac =
        static_cast<double>(big.actuallyColliding()) /
        static_cast<double>(big.classifiedLoads());
    EXPECT_GT(big_ac, small_ac);
    // ... and no-conflict shrinks.
    const double small_nc = static_cast<double>(small.notConflicting) /
                            static_cast<double>(small.classifiedLoads());
    const double big_nc = static_cast<double>(big.notConflicting) /
                          static_cast<double>(big.classifiedLoads());
    EXPECT_LT(big_nc, small_nc);
}

TEST(Integration, WiderMachineGainsMoreFromDisambiguation)
{
    // Figure 8's trend, checked on one NT trace.
    auto trace = TraceLibrary::make(TraceLibrary::byName("pm", kLen));
    auto gain = [&](int ints, int mems) {
        MachineConfig cfg = base();
        cfg.intUnits = ints;
        cfg.memUnits = mems;
        cfg.scheme = OrderingScheme::Traditional;
        const auto t = runSim(*trace, cfg);
        cfg.scheme = OrderingScheme::Perfect;
        const auto p = runSim(*trace, cfg);
        return p.speedupOver(t);
    };
    const double narrow = gain(2, 1);
    const double wide = gain(4, 2);
    EXPECT_GT(wide, narrow * 0.98); // at least comparable
}

TEST(Integration, HmpOrderingMatchesPaper)
{
    // Figure 11's qualitative result on one trace: perfect >=
    // local+timing >= always-hit baseline.
    auto trace = TraceLibrary::make(TraceLibrary::byName("gcc", kLen));
    MachineConfig cfg = base();
    cfg.scheme = OrderingScheme::Perfect;
    cfg.intUnits = 4;
    cfg.hmp = HmpKind::AlwaysHit;
    const auto baseline = runSim(*trace, cfg);
    cfg.hmp = HmpKind::LocalTiming;
    const auto timing = runSim(*trace, cfg);
    cfg.hmp = HmpKind::Perfect;
    const auto perfect = runSim(*trace, cfg);
    EXPECT_LE(perfect.cycles, timing.cycles * 1.002);
    EXPECT_LT(perfect.cycles, baseline.cycles);
    EXPECT_GT(baseline.wastedIssues, perfect.wastedIssues);
}

TEST(Integration, HmpCountsConsistent)
{
    MachineConfig cfg = base();
    cfg.hmp = HmpKind::Local;
    const auto r = runSim(TraceLibrary::byName("wd", kLen), cfg);
    EXPECT_EQ(r.ahPh + r.ahPm + r.amPh + r.amPm, r.loads);
    EXPECT_EQ(r.amPh + r.amPm, r.l1Misses);
}

TEST(Integration, StatisticalVsPipelineMissRatesAgree)
{
    // The functional analysis and the pipeline see similar L1 miss
    // rates (they use the same hierarchy model at different timing
    // resolutions).
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", kLen));
    auto hmp = makeHmp("local");
    const auto st = analyzeHitMiss(*trace, *hmp);
    const auto r = runSim(*trace, base());
    const double stat_rate = st.missRate();
    const double pipe_rate =
        static_cast<double>(r.l1Misses) /
        static_cast<double>(r.loads);
    EXPECT_NEAR(stat_rate, pipe_rate, 0.06);
}

TEST(Integration, AllGroupsRunAllSchemes)
{
    for (const auto g :
         {TraceGroup::SpecInt95, TraceGroup::SpecFP95,
          TraceGroup::SysmarkNT, TraceGroup::Sysmark95,
          TraceGroup::Games, TraceGroup::Java, TraceGroup::TPC}) {
        const auto traces = TraceLibrary::group(g, 10000);
        ASSERT_FALSE(traces.empty());
        auto trace = TraceLibrary::make(traces.front());
        const auto results = runAllSchemes(*trace, base());
        for (const auto &r : results)
            EXPECT_EQ(r.uops, 10000u)
                << traceGroupName(g) << "/" << r.config;
    }
}

TEST(Integration, ShadowChtDoesNotChangeTiming)
{
    // Figure 9's methodology requires the shadow CHT to be purely
    // observational.
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", kLen));
    MachineConfig plain = base();
    plain.scheme = OrderingScheme::Traditional;
    MachineConfig shadow = plain;
    shadow.chtShadow = true;
    const auto rp = runSim(*trace, plain);
    const auto rs = runSim(*trace, shadow);
    EXPECT_EQ(rp.cycles, rs.cycles);
    // But the shadow run has predictions attributed.
    EXPECT_GT(rs.acPc + rs.ancPc, 0u);
    EXPECT_EQ(rp.acPc + rp.ancPc, 0u);
}

} // namespace
} // namespace lrs
