/**
 * @file
 * Tests for the stats registry and the JSON layer underneath it:
 * registration styles (owned/bound/derived), uniform reset,
 * duplicate-name rejection, nested JSON export, and round-tripping
 * SimResult (including interval series) through the JSON parser.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/json.hh"
#include "common/stats_registry.hh"
#include "core/runner.hh"
#include "trace/library.hh"

namespace lrs
{
namespace
{

TEST(JsonValue, ScalarDumpAndParse)
{
    json::Value obj = json::Value::object();
    obj.set("a", json::Value(true));
    obj.set("b", json::Value(3.5));
    obj.set("c", json::Value(std::uint64_t{12345678901234ULL}));
    obj.set("d", json::Value("he\"llo\n"));
    obj.set("e", json::Value(nullptr));

    const json::Value back = json::Value::parse(obj.dump());
    EXPECT_TRUE(back.at("a").asBool());
    EXPECT_DOUBLE_EQ(back.at("b").asDouble(), 3.5);
    EXPECT_DOUBLE_EQ(back.at("c").asDouble(), 12345678901234.0);
    EXPECT_EQ(back.at("d").asString(), "he\"llo\n");
    EXPECT_TRUE(back.at("e").isNull());
}

TEST(JsonValue, NanAndInfSerializeAsNull)
{
    json::Value arr = json::Value::array();
    arr.push(json::Value(std::nan("")));
    arr.push(json::Value(HUGE_VAL));
    const json::Value back = json::Value::parse(arr.dump());
    EXPECT_TRUE(back.at(0).isNull());
    EXPECT_TRUE(back.at(1).isNull());
}

TEST(JsonValue, ParseErrorsReportOffset)
{
    EXPECT_THROW(json::Value::parse("{\"a\":}"), json::ParseError);
    EXPECT_THROW(json::Value::parse("[1,2"), json::ParseError);
    EXPECT_THROW(json::Value::parse("tru"), json::ParseError);
    EXPECT_THROW(json::Value::parse("{} x"), json::ParseError);
}

TEST(StatsRegistry, OwnedCounterRegisterAndReset)
{
    StatsRegistry reg;
    Counter &c = reg.counter("core.uops", "retired uops");
    c += 41;
    ++c;
    EXPECT_EQ(c.value(), 42u);
    EXPECT_DOUBLE_EQ(reg.value("core.uops"), 42.0);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatsRegistry, BoundCounterTracksExternalSlot)
{
    StatsRegistry reg;
    std::uint64_t slot = 0;
    reg.bindCounter("mem.hits", &slot);
    slot = 7;
    EXPECT_DOUBLE_EQ(reg.value("mem.hits"), 7.0);
    reg.reset();
    EXPECT_EQ(slot, 0u); // reset reaches through the binding
    EXPECT_THROW(reg.bindCounter("mem.null", nullptr),
                 std::logic_error);
}

TEST(StatsRegistry, DerivedEvaluatedAtExport)
{
    StatsRegistry reg;
    double x = 1.0;
    reg.derived("rate", [&] { return x; });
    EXPECT_DOUBLE_EQ(reg.value("rate"), 1.0);
    x = 2.5;
    EXPECT_DOUBLE_EQ(reg.value("rate"), 2.5);
    reg.reset(); // derived stats are views; reset must not touch them
    EXPECT_DOUBLE_EQ(reg.value("rate"), 2.5);
}

TEST(StatsRegistry, DuplicateNameThrows)
{
    StatsRegistry reg;
    reg.counter("a.b");
    EXPECT_THROW(reg.counter("a.b"), std::logic_error);
    std::uint64_t slot = 0;
    EXPECT_THROW(reg.bindCounter("a.b", &slot), std::logic_error);
    EXPECT_THROW(reg.counter(""), std::logic_error);
}

TEST(StatsRegistry, GroupPrefixesAndNests)
{
    StatsRegistry reg;
    StatsGroup mem = reg.group("mem");
    StatsGroup l1 = mem.group("l1");
    l1.counter("hits");
    mem.counter("misses");
    EXPECT_TRUE(reg.has("mem.l1.hits"));
    EXPECT_TRUE(reg.has("mem.misses"));
    EXPECT_FALSE(reg.has("l1.hits"));
    const auto names = reg.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "mem.l1.hits"); // registration order
}

TEST(StatsRegistry, JsonExportNestsDottedNames)
{
    StatsRegistry reg;
    reg.counter("mem.l1.hits") += 3;
    reg.counter("mem.l1.misses") += 1;
    reg.counter("core.cycles") += 10;
    Distribution &d = reg.distribution("core.occupancy");
    d.sample(2.0);
    d.sample(4.0);
    Histogram &h = reg.histogram("mob.distance", 4, 1.0);
    h.sample(0.5);
    h.sample(99.0); // overflow

    const json::Value back = json::Value::parse(reg.toJson().dump(2));
    EXPECT_DOUBLE_EQ(
        back.at("mem").at("l1").at("hits").asDouble(), 3.0);
    EXPECT_DOUBLE_EQ(
        back.at("mem").at("l1").at("misses").asDouble(), 1.0);
    EXPECT_DOUBLE_EQ(back.at("core").at("cycles").asDouble(), 10.0);
    const json::Value &occ = back.at("core").at("occupancy");
    EXPECT_DOUBLE_EQ(occ.at("count").asDouble(), 2.0);
    EXPECT_DOUBLE_EQ(occ.at("mean").asDouble(), 3.0);
    const json::Value &dist = back.at("mob").at("distance");
    EXPECT_DOUBLE_EQ(dist.at("overflow").asDouble(), 1.0);
    EXPECT_DOUBLE_EQ(dist.at("total").asDouble(), 2.0);
    EXPECT_EQ(dist.at("counts").size(), 4u);
}

TEST(SimResult, IpcIsNanBeforeAnyRun)
{
    SimResult r;
    EXPECT_TRUE(std::isnan(r.ipc()));
    SimResult other;
    other.cycles = 100;
    other.uops = 50;
    EXPECT_TRUE(std::isnan(other.speedupOver(r)));
    EXPECT_TRUE(std::isnan(r.speedupOver(other)));
}

/** Every SimResult counter must survive the JSON round trip, and a
 *  statsInterval'd run must produce at least four interval series. */
TEST(SimResult, JsonRoundTripWithIntervals)
{
    MachineConfig cfg;
    cfg.statsInterval = 1000;
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", 20000));
    OooCore core(cfg);
    const SimResult r = core.run(*trace);
    ASSERT_GT(r.cycles, 0u);
    ASSERT_FALSE(r.intervals.empty());

    const json::Value doc = json::Value::parse(r.toJson().dump(2));
    EXPECT_EQ(doc.at("trace").asString(), r.trace);
    const auto num = [&](const char *k) {
        return static_cast<std::uint64_t>(doc.at(k).asDouble());
    };
    EXPECT_EQ(num("cycles"), r.cycles);
    EXPECT_EQ(num("uops"), r.uops);
    EXPECT_EQ(num("loads"), r.loads);
    EXPECT_EQ(num("stores"), r.stores);
    EXPECT_EQ(num("branches"), r.branches);
    EXPECT_EQ(num("branch_mispredicts"), r.branchMispredicts);
    EXPECT_EQ(num("not_conflicting"), r.notConflicting);
    EXPECT_EQ(num("anc_pnc"), r.ancPnc);
    EXPECT_EQ(num("anc_pc"), r.ancPc);
    EXPECT_EQ(num("ac_pc"), r.acPc);
    EXPECT_EQ(num("ac_pnc"), r.acPnc);
    EXPECT_EQ(num("collision_penalties"), r.collisionPenalties);
    EXPECT_EQ(num("order_violations"), r.orderViolations);
    EXPECT_EQ(num("forwarded"), r.forwarded);
    EXPECT_EQ(num("l1_misses"), r.l1Misses);
    EXPECT_EQ(num("wasted_issues"), r.wastedIssues);
    EXPECT_EQ(num("replayed_uops"), r.replayedUops);
    EXPECT_DOUBLE_EQ(doc.at("derived").at("ipc").asDouble(), r.ipc());

    const json::Value &iv = doc.at("intervals");
    EXPECT_DOUBLE_EQ(iv.at("interval_cycles").asDouble(), 1000.0);
    // The acceptance bar: at least four parallel series, all the same
    // length as the sample vector.
    const char *series[] = {"cycle", "ipc", "replay_rate",
                            "sched_occupancy", "rob_occupancy"};
    for (const char *name : series) {
        ASSERT_TRUE(iv.has(name)) << name;
        EXPECT_EQ(iv.at(name).size(), r.intervals.size()) << name;
    }
    EXPECT_DOUBLE_EQ(iv.at("ipc").at(0).asDouble(),
                     r.intervals[0].ipc);
}

/** The registry the core builds exposes every major component group. */
TEST(CoreRegistry, ComponentGroupsPresent)
{
    MachineConfig cfg;
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", 5000));
    OooCore core(cfg);
    const SimResult r = core.run(*trace);

    const StatsRegistry &reg = core.stats();
    EXPECT_TRUE(reg.has("core.cycles"));
    EXPECT_TRUE(reg.has("core.uops"));
    EXPECT_TRUE(reg.has("sched.forwarded"));
    EXPECT_TRUE(reg.has("sched.class.not_conflicting"));
    EXPECT_TRUE(reg.has("mem.l1.hits"));
    EXPECT_TRUE(reg.has("mem.mob.inserted"));
    EXPECT_TRUE(reg.has("pred.hmp.ah_ph"));
    EXPECT_DOUBLE_EQ(reg.value("core.cycles"),
                     static_cast<double>(r.cycles));
    EXPECT_DOUBLE_EQ(reg.value("core.uops"),
                     static_cast<double>(r.uops));
}

} // namespace
} // namespace lrs
