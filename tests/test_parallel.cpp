/**
 * @file
 * Tests of the parallel sweep engine (core/parallel.hh) and the
 * aggregation-layer fixes that rode along with it: the pool's
 * determinism contract (bit-identical results for any worker count),
 * its edge cases (empty batches, more workers than jobs, throwing
 * jobs, nesting), and the hardened geomean()/envU64()/JsonReport
 * paths. Suite names start with "Parallel" so the whole group runs
 * under `ctest -R Parallel` (tools/run_sanitized.sh --tsan uses
 * this).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/parallel.hh"
#include "core/runner.hh"
#include "trace/library.hh"

#include "../bench/bench_util.hh"

namespace lrs
{
namespace
{

TEST(Parallel, ForEachRunsEveryIndexExactlyOnce)
{
    SimJobPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);

    constexpr std::size_t kN = 257; // not a multiple of the workers
    std::vector<std::atomic<int>> hits(kN);
    pool.forEach(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, ZeroJobsIsANoop)
{
    SimJobPool pool(4);
    bool called = false;
    pool.forEach(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
    EXPECT_TRUE(pool.runJobs({}).empty());
}

TEST(Parallel, MoreWorkersThanJobs)
{
    SimJobPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    pool.forEach(3, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, RepeatedBatchesOnOnePool)
{
    // Regression guard for batch-epoch confusion: a worker waking
    // late from batch k must never run ids against batch k+1.
    SimJobPool pool(4);
    for (int round = 0; round < 50; ++round) {
        const std::size_t n = 1 + static_cast<std::size_t>(round) % 7;
        std::atomic<std::size_t> ran{0};
        pool.forEach(n, [&](std::size_t) { ran.fetch_add(1); });
        EXPECT_EQ(ran.load(), n) << "round " << round;
    }
}

TEST(Parallel, NestedForEachRunsInline)
{
    // Benches parallelise their outer loop; runAllSchemes() inside a
    // job must fall back to inline execution instead of deadlocking
    // on the shared pool.
    SimJobPool pool(4);
    std::vector<std::atomic<int>> hits(16);
    pool.forEach(4, [&](std::size_t outer) {
        SimJobPool::shared().forEach(4, [&](std::size_t inner) {
            hits[outer * 4 + inner].fetch_add(1);
        });
    });
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "cell " << i;
}

TEST(Parallel, ForEachPropagatesExceptionAfterAllJobsRan)
{
    SimJobPool pool(4);
    std::atomic<std::size_t> ran{0};
    const auto body = [&](std::size_t i) {
        ran.fetch_add(1);
        if (i == 3)
            throw std::runtime_error("job 3 exploded");
    };
    EXPECT_THROW(pool.forEach(8, body), std::runtime_error);
    // One failure poisons the batch's result, not its siblings: every
    // job still ran.
    EXPECT_EQ(ran.load(), 8u);
}

TEST(Parallel, ConfiguredWorkersHonorsLrsJobs)
{
    setenv("LRS_JOBS", "5", 1);
    EXPECT_EQ(SimJobPool::configuredWorkers(), 5u);
    setenv("LRS_JOBS", "0", 1);
    EXPECT_GE(SimJobPool::configuredWorkers(), 1u);
    unsetenv("LRS_JOBS");
    EXPECT_GE(SimJobPool::configuredWorkers(), 1u);
}

/** fig07-shaped grid: every trace crossed with every scheme. */
std::vector<SimJob>
fig07Grid()
{
    std::vector<SimJob> jobs;
    for (const char *name : {"wd", "gcc"}) {
        for (const auto scheme : allSchemes()) {
            SimJob j;
            j.trace = TraceLibrary::byName(name, 20000);
            j.cfg.scheme = scheme;
            j.cfg.cht.trackDistance = true;
            jobs.push_back(j);
        }
    }
    return jobs;
}

std::string
dumpOutcomes(const std::vector<JobOutcome> &outcomes)
{
    std::ostringstream os;
    for (const auto &o : outcomes) {
        EXPECT_FALSE(o.failed) << o.error;
        os << o.result.toJson().dump(2) << "\n";
    }
    return os.str();
}

TEST(Parallel, RunJobsBitIdenticalForAnyWorkerCount)
{
    const auto jobs = fig07Grid();

    // Serial reference: the exact loop the benches ran before the
    // pool existed.
    std::ostringstream serial;
    for (const auto &j : jobs) {
        const auto trace = TraceLibrary::make(j.trace);
        serial << runSim(*trace, j.cfg).toJson().dump(2) << "\n";
    }

    for (const unsigned workers : {1u, 2u, 8u}) {
        SimJobPool pool(workers);
        EXPECT_EQ(dumpOutcomes(pool.runJobs(jobs)), serial.str())
            << "workers=" << workers;
    }
}

TEST(Parallel, ThrowingJobFailsItsSlotOnly)
{
    auto jobs = fig07Grid();
    jobs[2].cfg.intUnits = 0; // rejected by MachineConfig::validate()

    SimJobPool pool(4);
    const auto outcomes = pool.runJobs(jobs);
    ASSERT_EQ(outcomes.size(), jobs.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (i == 2) {
            EXPECT_TRUE(outcomes[i].failed);
            // Machine-readable taxonomy, not just the what() text:
            // the supervisor's journal and the batch failure report
            // both key off this code.
            EXPECT_EQ(outcomes[i].status, CellStatus::Failed);
            EXPECT_EQ(outcomes[i].code, "E_CONFIG_INVALID");
            EXPECT_NE(outcomes[i].error.find("int_units"),
                      std::string::npos)
                << outcomes[i].error;
        } else {
            EXPECT_FALSE(outcomes[i].failed) << outcomes[i].error;
            EXPECT_GT(outcomes[i].result.cycles, 0u);
        }
    }
}

TEST(ParallelRunnerFixes, GeomeanSkipsNonPositiveValues)
{
    // The old fold took log() of whatever it was given, so a single
    // zero/negative speedup poisoned a whole figure with NaN.
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({-2.0, 0.0, 9.0}), 9.0);
    EXPECT_DOUBLE_EQ(geomean({0.0, -1.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_FALSE(std::isnan(geomean({0.0, 2.0})));
}

TEST(ParallelRunnerFixes, EnvU64RejectsOverflowAndNegatives)
{
    // 2^64 and beyond: strtoull clamps and sets ERANGE; the old code
    // silently returned ULLONG_MAX.
    setenv("LRS_TEST_ENV_KNOB", "18446744073709551616", 1);
    EXPECT_EQ(envU64("LRS_TEST_ENV_KNOB", 7), 7u);
    setenv("LRS_TEST_ENV_KNOB", "99999999999999999999999", 1);
    EXPECT_EQ(envU64("LRS_TEST_ENV_KNOB", 7), 7u);
    // strtoull accepts "-5" by wrapping it; we reject it.
    setenv("LRS_TEST_ENV_KNOB", "-5", 1);
    EXPECT_EQ(envU64("LRS_TEST_ENV_KNOB", 7), 7u);
    // The largest representable value still parses.
    setenv("LRS_TEST_ENV_KNOB", "18446744073709551615", 1);
    EXPECT_EQ(envU64("LRS_TEST_ENV_KNOB", 7), UINT64_MAX);
    unsetenv("LRS_TEST_ENV_KNOB");
}

TEST(ParallelJsonReport, WritesAtomicallyToEnvPath)
{
    const std::string path =
        testing::TempDir() + "lrs_test_report.json";
    std::remove(path.c_str());
    setenv("LRS_BENCH_JSON", path.c_str(), 1);

    benchutil::JsonReport rep("unit");
    rep.beginRow();
    rep.value("k", 1.5);
    EXPECT_EQ(rep.write(), path);
    unsetenv("LRS_BENCH_JSON");

    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::stringstream ss;
    ss << is.rdbuf();
    EXPECT_NE(ss.str().find("\"bench\": \"unit\""),
              std::string::npos);
    EXPECT_NE(ss.str().find("\"k\": 1.5"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ParallelJsonReport, DirectoryPathIsAnError)
{
    // A directory target used to fail only after the stream silently
    // wrote nothing; now it is rejected up front.
    setenv("LRS_BENCH_JSON", testing::TempDir().c_str(), 1);
    benchutil::JsonReport rep("unit");
    rep.beginRow();
    rep.value("k", 1.0);
    EXPECT_THROW(rep.write(), std::runtime_error);
    unsetenv("LRS_BENCH_JSON");
}

} // namespace
} // namespace lrs
