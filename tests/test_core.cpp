/**
 * @file
 * Tests of the out-of-order core on hand-crafted micro-traces:
 * latency semantics, resource limits, memory ordering schemes,
 * collision penalties, classification, hit-miss speculation and
 * branch handling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "core/runner.hh"
#include "trace/library.hh"

namespace lrs
{
namespace
{

/** Tiny fluent builder for hand-written uop sequences. */
class TB
{
  public:
    TB &
    alu(Addr pc, int dst, int s1 = -1, int s2 = -1)
    {
        Uop u;
        u.pc = pc;
        u.cls = UopClass::IntAlu;
        u.dst = static_cast<std::int8_t>(dst);
        u.src1 = static_cast<std::int8_t>(s1);
        u.src2 = static_cast<std::int8_t>(s2);
        uops_.push_back(u);
        return *this;
    }

    TB &
    complexOp(Addr pc, int dst, int s1 = -1)
    {
        Uop u;
        u.pc = pc;
        u.cls = UopClass::Complex;
        u.dst = static_cast<std::int8_t>(dst);
        u.src1 = static_cast<std::int8_t>(s1);
        uops_.push_back(u);
        return *this;
    }

    TB &
    fp(Addr pc, int dst, int s1 = -1)
    {
        Uop u;
        u.pc = pc;
        u.cls = UopClass::FpAlu;
        u.dst = static_cast<std::int8_t>(dst);
        u.src1 = static_cast<std::int8_t>(s1);
        uops_.push_back(u);
        return *this;
    }

    TB &
    load(Addr pc, int dst, Addr addr, int asrc = -1,
         std::uint8_t size = 8)
    {
        Uop u;
        u.pc = pc;
        u.cls = UopClass::Load;
        u.dst = static_cast<std::int8_t>(dst);
        u.src1 = static_cast<std::int8_t>(asrc);
        u.addr = addr;
        u.memSize = size;
        uops_.push_back(u);
        return *this;
    }

    /** A full store: STA (address) followed by its STD (data). */
    TB &
    store(Addr pc, Addr addr, int dsrc, int asrc = -1,
          std::uint8_t size = 8)
    {
        Uop sta;
        sta.pc = pc;
        sta.cls = UopClass::StoreAddr;
        sta.src1 = static_cast<std::int8_t>(asrc);
        sta.addr = addr;
        sta.memSize = size;
        uops_.push_back(sta);
        Uop std_uop;
        std_uop.pc = pc + 1;
        std_uop.cls = UopClass::StoreData;
        std_uop.src1 = static_cast<std::int8_t>(dsrc);
        uops_.push_back(std_uop);
        return *this;
    }

    TB &
    branch(Addr pc, bool taken, int src = -1)
    {
        Uop u;
        u.pc = pc;
        u.cls = UopClass::Branch;
        u.src1 = static_cast<std::int8_t>(src);
        u.taken = taken;
        uops_.push_back(u);
        return *this;
    }

    /** Repeat everything built so far @p n more times. */
    TB &
    repeat(int n)
    {
        const std::vector<Uop> block = uops_;
        for (int i = 0; i < n; ++i)
            uops_.insert(uops_.end(), block.begin(), block.end());
        return *this;
    }

    VecTrace build(const std::string &name = "micro")
    {
        return VecTrace(name, std::move(uops_));
    }

  private:
    std::vector<Uop> uops_;
};

MachineConfig
base()
{
    MachineConfig cfg;
    cfg.cht.trackDistance = true;
    return cfg;
}

SimResult
run(VecTrace t, MachineConfig cfg = base())
{
    return runSim(t, cfg);
}

TEST(Core, EmptyTrace)
{
    const auto r = run(TB().build());
    EXPECT_EQ(r.uops, 0u);
    EXPECT_LE(r.cycles, 2u);
}

TEST(Core, RetiresEveryUop)
{
    TB b;
    for (int i = 0; i < 100; ++i)
        b.alu(0x1000 + i * 2, i % 8);
    const auto r = run(b.build());
    EXPECT_EQ(r.uops, 100u);
}

TEST(Core, DependentChainSerializes)
{
    // 40 dependent single-cycle ALUs: >= 40 cycles.
    TB b;
    b.alu(0x1000, 1);
    for (int i = 0; i < 39; ++i)
        b.alu(0x1010 + i * 2, 1, 1);
    const auto r = run(b.build());
    EXPECT_GE(r.cycles, 40u);
}

TEST(Core, IndependentAlusUseBothIntUnits)
{
    // 60 independent ALUs on 2 int units: about 30 cycles of issue,
    // certainly far below serial execution.
    TB b;
    for (int i = 0; i < 60; ++i)
        b.alu(0x1000 + i * 2, i % 12);
    const auto r = run(b.build());
    EXPECT_LT(r.cycles, 45u);
    EXPECT_GE(r.cycles, 30u);
}

TEST(Core, SingleIntUnitHalvesThroughput)
{
    TB b;
    for (int i = 0; i < 60; ++i)
        b.alu(0x1000 + i * 2, i % 12);
    MachineConfig narrow = base();
    narrow.intUnits = 1;
    const auto wide = run(TB(b).build());
    const auto slim = run(b.build(), narrow);
    EXPECT_GT(slim.cycles, wide.cycles + 20);
}

TEST(Core, ComplexOpsSlowerThanAlu)
{
    TB a, c;
    a.alu(0x1000, 1);
    c.complexOp(0x1000, 1);
    for (int i = 0; i < 20; ++i) {
        a.alu(0x1010 + 2 * i, 1, 1);
        c.complexOp(0x1010 + 2 * i, 1, 1);
    }
    EXPECT_GT(run(c.build()).cycles, run(a.build()).cycles + 20);
}

TEST(Core, LoadUseLatencyVisible)
{
    // Chain through loads (same hot address) vs chain through ALUs.
    TB l, a;
    l.load(0x1000, 1, 0x8000);
    a.alu(0x1000, 1);
    for (int i = 0; i < 20; ++i) {
        l.load(0x1010 + 4 * i, 1, 0x8000, 1);
        a.alu(0x1010 + 4 * i, 1, 1);
    }
    const auto lr = run(l.build());
    const auto ar = run(a.build());
    // Each load-use step costs agu(1)+L1(5) vs 1 for the ALU.
    EXPECT_GT(lr.cycles, ar.cycles + 20 * 4);
}

TEST(Core, ColdMissesSlowerThanHits)
{
    TB hot, cold;
    for (int i = 0; i < 30; ++i) {
        hot.load(0x1000 + 4 * i, 1, 0x8000, 1);      // same line
        cold.load(0x1000 + 4 * i, 1,
                  0x100000 + static_cast<Addr>(i) * 4096, 1);
    }
    const auto hr = run(hot.build());
    const auto cr = run(cold.build());
    EXPECT_GT(cr.cycles, hr.cycles);
    EXPECT_GT(cr.l1Misses, 25u);
    EXPECT_LE(hr.l1Misses, 2u);
}

TEST(Core, StoreToLoadForwardingIsClean)
{
    // A slow chain at the head keeps retirement back, so the store is
    // still in the MOB (complete but unretired) when the younger load
    // executes: clean store-to-load forwarding, no penalty.
    TB b;
    b.complexOp(0x0f00, 7);
    b.complexOp(0x0f02, 7, 7);
    b.complexOp(0x0f04, 7, 7);
    b.alu(0x1000, 2);
    b.store(0x1010, 0x9000, 2);
    b.alu(0x1020, 3);
    b.alu(0x1022, 3, 3);
    b.alu(0x1024, 3, 3);
    // The load's address depends on the ALU chain, so it becomes
    // ready only after the store completed.
    b.load(0x1060, 4, 0x9000, /*asrc=*/3);
    const auto r = run(b.build());
    EXPECT_EQ(r.collisionPenalties, 0u);
    EXPECT_GE(r.forwarded, 1u);
}

TEST(Core, OpportunisticPaysCollisionPenalty)
{
    // The store's data comes from a slow chain; the load of the same
    // address right behind it is advanced by the opportunistic
    // scheduler and must pay.
    TB b;
    b.complexOp(0x1000, 2);
    b.complexOp(0x1002, 2, 2);
    b.store(0x1010, 0x9000, /*dsrc=*/2);
    b.load(0x1020, 4, 0x9000);
    b.alu(0x1030, 5, 4);
    b.repeat(30);
    MachineConfig cfg = base();
    cfg.scheme = OrderingScheme::Opportunistic;
    const auto r = run(b.build(), cfg);
    EXPECT_GT(r.collisionPenalties, 10u);
}

TEST(Core, PerfectNeverPaysPenalty)
{
    TB b;
    b.complexOp(0x1000, 2);
    b.store(0x1010, 0x9000, 2);
    b.load(0x1020, 4, 0x9000);
    b.alu(0x1030, 5, 4);
    b.repeat(50);
    MachineConfig cfg = base();
    cfg.scheme = OrderingScheme::Perfect;
    const auto r = run(b.build(), cfg);
    EXPECT_EQ(r.collisionPenalties, 0u);
}

TEST(Core, TraditionalWaitsForUnresolvedSta)
{
    // A store whose ADDRESS comes from a slow chain, followed by many
    // independent loads to other addresses: Traditional stalls them
    // all; Opportunistic does not (and they do not collide).
    TB b;
    b.complexOp(0x1000, 2);
    b.complexOp(0x1002, 2, 2);
    b.complexOp(0x1004, 2, 2);
    b.store(0x1010, 0x9000, /*dsrc=*/1, /*asrc=*/2);
    for (int i = 0; i < 8; ++i)
        b.load(0x1020 + 4 * i, 3, 0x8000 + 8 * i);
    b.repeat(30);
    MachineConfig trad = base();
    trad.scheme = OrderingScheme::Traditional;
    MachineConfig opp = base();
    opp.scheme = OrderingScheme::Opportunistic;
    const auto rt = run(TB(b).build(), trad);
    const auto ro = run(b.build(), opp);
    EXPECT_GT(rt.cycles, ro.cycles + 20);
    EXPECT_EQ(ro.collisionPenalties, 0u);
}

TEST(Core, ClassificationNotConflicting)
{
    TB b;
    for (int i = 0; i < 20; ++i)
        b.load(0x1000 + 4 * i, 1, 0x8000);
    const auto r = run(b.build());
    EXPECT_EQ(r.classifiedLoads(), r.loads);
    EXPECT_EQ(r.notConflicting, r.loads);
}

TEST(Core, ClassificationColliding)
{
    // Slow-address store + immediate same-address load, repeated.
    TB b;
    b.complexOp(0x1000, 2);
    b.store(0x1010, 0x9000, 1, /*asrc=*/2);
    b.load(0x1020, 4, 0x9000);
    b.repeat(40);
    MachineConfig cfg = base();
    cfg.scheme = OrderingScheme::Opportunistic;
    const auto r = run(b.build(), cfg);
    EXPECT_GT(r.actuallyColliding(), 30u);
}

TEST(Core, ClassificationConflictingNotColliding)
{
    // Slow-address store + immediate DIFFERENT-address load.
    TB b;
    b.complexOp(0x1000, 2);
    b.store(0x1010, 0x9000, 1, /*asrc=*/2);
    b.load(0x1020, 4, 0x8000);
    b.repeat(40);
    MachineConfig cfg = base();
    cfg.scheme = OrderingScheme::Opportunistic;
    const auto r = run(b.build(), cfg);
    EXPECT_GT(r.ancPnc + r.ancPc, 30u);
    EXPECT_EQ(r.classifiedLoads(), r.loads);
}

TEST(Core, InclusiveChtLearnsRecurrentCollider)
{
    // After warmup, the CHT predicts the collider and the inclusive
    // scheme stops paying penalties; the opportunistic scheme keeps
    // paying.
    TB b;
    b.complexOp(0x1000, 2);
    b.complexOp(0x1002, 2, 2);
    b.store(0x1010, 0x9000, 2, /*asrc=*/2);
    b.load(0x1020, 4, 0x9000);
    b.alu(0x1030, 5, 4);
    b.repeat(60);
    MachineConfig incl = base();
    incl.scheme = OrderingScheme::Inclusive;
    MachineConfig opp = base();
    opp.scheme = OrderingScheme::Opportunistic;
    const auto ri = run(TB(b).build(), incl);
    const auto ro = run(b.build(), opp);
    EXPECT_LT(ri.collisionPenalties, ro.collisionPenalties / 2);
    EXPECT_GT(ri.acPc, 40u) << "collider should be predicted";
}

TEST(Core, MispredictedBranchesStallFetch)
{
    // Alternating-history-defeating pseudo-random outcomes mispredict
    // often; an all-taken stream predicts nearly perfectly.
    TB noisy, steady;
    Rng rng(123);
    for (int i = 0; i < 300; ++i) {
        noisy.alu(0x1000, 1);
        noisy.branch(0x1002, rng.chance(0.5), 1);
        steady.alu(0x1000, 1);
        steady.branch(0x1002, true, 1);
    }
    const auto rn = run(noisy.build());
    const auto rs = run(steady.build());
    EXPECT_GT(rn.branchMispredicts, 50u);
    EXPECT_LT(rs.branchMispredicts, 10u);
    EXPECT_GT(rn.cycles, rs.cycles * 2);
}

TEST(Core, SchedWindowLimitsParallelism)
{
    // Cold misses each trailed by dependent work: with a tiny window
    // the waiting dependents clog the reservation stations and block
    // younger independent loads from entering, killing memory-level
    // parallelism; a large window keeps the misses overlapped.
    TB b;
    for (int i = 0; i < 100; ++i) {
        b.load(0x1000 + 16 * i, 1,
               0x100000 + static_cast<Addr>(i) * 4096);
        b.alu(0x1004 + 16 * i, 2, 1);
        b.alu(0x1008 + 16 * i, 3, 2);
        b.alu(0x100c + 16 * i, 4, 3);
    }
    MachineConfig small = base();
    small.schedWindow = 4;
    MachineConfig big = base();
    big.schedWindow = 64;
    const auto rs = run(TB(b).build(), small);
    const auto rb = run(b.build(), big);
    EXPECT_GT(rs.cycles, rb.cycles + 100);
    EXPECT_EQ(rs.uops, rb.uops);
}

TEST(Core, HmpPerfectCountsExactly)
{
    TB b;
    for (int i = 0; i < 50; ++i)
        b.load(0x1000 + 4 * i, 1,
               0x100000 + static_cast<Addr>(i) * 4096);
    MachineConfig cfg = base();
    cfg.hmp = HmpKind::Perfect;
    const auto r = run(b.build(), cfg);
    EXPECT_EQ(r.amPh, 0u);
    EXPECT_EQ(r.ahPm, 0u);
    EXPECT_EQ(r.amPm, r.l1Misses);
}

TEST(Core, HmpPerfectAvoidsReplayWaste)
{
    // Dependent work behind cold misses: always-hit wakes consumers
    // too early (wasted issues); perfect knowledge avoids that.
    TB b;
    for (int i = 0; i < 60; ++i) {
        b.load(0x1000 + 8 * i, 1,
               0x100000 + static_cast<Addr>(i) * 4096);
        b.alu(0x1004 + 8 * i, 2, 1);
    }
    MachineConfig ah = base();
    ah.hmp = HmpKind::AlwaysHit;
    MachineConfig pf = base();
    pf.hmp = HmpKind::Perfect;
    const auto ra = run(TB(b).build(), ah);
    const auto rp = run(b.build(), pf);
    EXPECT_GT(ra.wastedIssues, rp.wastedIssues + 30);
    EXPECT_LE(rp.cycles, ra.cycles);
}

TEST(Core, UopAccountingConsistent)
{
    TB b;
    b.alu(0x1000, 1);
    b.store(0x1004, 0x9000, 1);
    b.load(0x1010, 2, 0x9000);
    b.branch(0x1014, true, 2);
    b.repeat(25);
    const auto r = run(b.build());
    EXPECT_EQ(r.uops, 26u * 5);
    EXPECT_EQ(r.loads, 26u);
    EXPECT_EQ(r.stores, 26u);
    EXPECT_EQ(r.branches, 26u);
    EXPECT_EQ(r.classifiedLoads(), r.loads);
}

TEST(Core, IpcNeverExceedsRetireWidth)
{
    TB b;
    for (int i = 0; i < 600; ++i)
        b.alu(0x1000 + 2 * (i % 50), i % 12);
    const auto r = run(b.build());
    EXPECT_LE(r.ipc(), 6.0);
    EXPECT_GT(r.ipc(), 1.0);
}

TEST(Core, ExclusiveBypassesUnrelatedSlowStore)
{
    // Pattern: slow unrelated store (very slow data), fast store to X,
    // load X. Inclusive waits for BOTH stores once the load is
    // predicted colliding; exclusive waits only for the store at the
    // predicted distance (1).
    TB b;
    b.complexOp(0x1000, 2);
    b.complexOp(0x1002, 2, 2);
    b.complexOp(0x1004, 2, 2);
    b.complexOp(0x1006, 2, 2);
    b.store(0x1010, 0xa000, /*dsrc=*/2); // slow-data store, addr known
    b.alu(0x1020, 3);
    b.store(0x1024, 0x9000, /*dsrc=*/3); // fast store to X
    b.load(0x1030, 4, 0x9000);           // collides with X at dist 1
    b.alu(0x1034, 5, 4);
    b.branch(0x1038, true, 5);
    b.repeat(60);
    MachineConfig incl = base();
    incl.scheme = OrderingScheme::Inclusive;
    MachineConfig excl = base();
    excl.scheme = OrderingScheme::Exclusive;
    const auto ri = run(TB(b).build(), incl);
    const auto re = run(b.build(), excl);
    EXPECT_LT(re.cycles, ri.cycles);
}

TEST(Core, ConfigStringRecorded)
{
    MachineConfig cfg = base();
    cfg.scheme = OrderingScheme::Exclusive;
    cfg.hmp = HmpKind::Chooser;
    TB b;
    b.alu(0x1000, 1);
    const auto r = run(b.build(), cfg);
    EXPECT_EQ(r.config, "Exclusive/chooser");
    EXPECT_EQ(r.trace, "micro");
}

TEST(Core, PendingCollisionOrderIsStableAcrossResolution)
{
    // resolvePendingCollisions() compacts its queue in place and must
    // keep the surviving entries in arrival order. The former
    // middle-erase walk made the retry order an artifact of erase
    // mechanics; this pins the contract: each cycle's queue is a
    // subsequence of the previous cycle's queue, with fresh arrivals
    // appended strictly at the tail. (A slot cannot leave and
    // re-enter within one cycle — resolution runs before issue, and
    // re-issuing a reused slot takes a retire plus a rename — so
    // membership in the previous queue identifies survivors exactly.)
    MachineConfig cfg;
    cfg.scheme = OrderingScheme::Opportunistic;
    const auto job = TraceLibrary::byName("spoiler4k", 1500);

    auto full = TraceLibrary::make(job);
    OooCore probe(cfg);
    const SimResult r = probe.run(*full);

    auto trace = TraceLibrary::make(job);
    OooCore core(cfg);
    core.beginRun(*trace);
    std::vector<std::int64_t> prev;
    std::size_t deepest = 0;  // largest queue observed
    std::size_t partials = 0; // cycles resolving some but not all
    for (Cycle c = 1; c <= r.cycles; ++c) {
        core.advanceTo(*trace, c);
        const json::Value st = core.saveState();
        const json::Value &pend =
            st.at("core").at("pending_collision");
        std::vector<std::int64_t> cur;
        for (std::size_t i = 0; i < pend.size(); ++i)
            cur.push_back(pend.at(i).asI64());
        deepest = std::max(deepest, cur.size());

        std::size_t pi = 0;
        bool fresh_seen = false;
        std::size_t survivors = 0;
        for (const std::int64_t slot : cur) {
            const bool survivor =
                std::find(prev.begin(), prev.end(), slot) !=
                prev.end();
            if (survivor) {
                ASSERT_FALSE(fresh_seen)
                    << "cycle " << c << ": survivor after new entry";
                while (pi < prev.size() && prev[pi] != slot)
                    ++pi;
                ASSERT_LT(pi, prev.size())
                    << "cycle " << c << ": survivors reordered";
                ++pi;
                ++survivors;
            } else {
                fresh_seen = true;
            }
        }
        if (survivors != 0 && survivors < prev.size())
            ++partials;
        prev = std::move(cur);
    }
    // The workload must actually exercise the interesting shapes —
    // multi-entry queues and partial resolutions — or the invariant
    // above holds vacuously.
    EXPECT_GE(deepest, 2u);
    EXPECT_GE(partials, 1u);
}

TEST(Runner, GeomeanAndEnv)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({3.0}), 3.0);

    unsetenv("LRS_TEST_ENV_KNOB");
    EXPECT_EQ(envU64("LRS_TEST_ENV_KNOB", 7), 7u);
    setenv("LRS_TEST_ENV_KNOB", "123", 1);
    EXPECT_EQ(envU64("LRS_TEST_ENV_KNOB", 7), 123u);
    setenv("LRS_TEST_ENV_KNOB", "garbage", 1);
    EXPECT_EQ(envU64("LRS_TEST_ENV_KNOB", 7), 7u);
    unsetenv("LRS_TEST_ENV_KNOB");
}

TEST(Runner, RunAllSchemesCoversOrder)
{
    EXPECT_EQ(allSchemes().size(), 6u);
    EXPECT_EQ(allSchemes().front(), OrderingScheme::Traditional);
    EXPECT_EQ(allSchemes().back(), OrderingScheme::Perfect);
}

/** Every scheme must retire every uop, deadlock-free. */
class SchemeSuite : public ::testing::TestWithParam<OrderingScheme>
{
};

TEST_P(SchemeSuite, RunsMixedMicroTraceToCompletion)
{
    TB b;
    b.complexOp(0x1000, 2);
    b.store(0x1010, 0x9000, 2, /*asrc=*/2);
    b.load(0x1020, 4, 0x9000);
    b.load(0x1024, 5, 0x8000);
    b.store(0x1028, 0x8100, 4);
    b.branch(0x1030, true, 5);
    b.alu(0x1034, 6, 4, 5);
    b.repeat(50);
    MachineConfig cfg = base();
    cfg.scheme = GetParam();
    const auto r = run(b.build(), cfg);
    EXPECT_EQ(r.uops, 51u * 9);
    if (GetParam() == OrderingScheme::Perfect) {
        EXPECT_EQ(r.collisionPenalties, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeSuite,
    ::testing::Values(OrderingScheme::Traditional,
                      OrderingScheme::Opportunistic,
                      OrderingScheme::Postponing,
                      OrderingScheme::Inclusive,
                      OrderingScheme::Exclusive,
                      OrderingScheme::Perfect),
    [](const auto &info) {
        return std::string(orderingSchemeName(info.param));
    });

} // namespace
} // namespace lrs
