/**
 * @file
 * Tests for the machine-configuration INI I/O and the shared enum
 * parsers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/parse.hh"
#include "core/config_io.hh"
#include "core/grid.hh"

namespace lrs
{
namespace
{

TEST(ConfigIo, ParsesEveryEnum)
{
    EXPECT_EQ(parseOrderingScheme("exclusive"),
              OrderingScheme::Exclusive);
    EXPECT_EQ(parseOrderingScheme("storebarrier"),
              OrderingScheme::StoreBarrier);
    EXPECT_EQ(parseHmpKind("local+timing"), HmpKind::LocalTiming);
    EXPECT_EQ(parseBankMode("sliced"), BankMode::Sliced);
    EXPECT_EQ(parseBankPredKind("addr"), BankPredKind::Addr);
    EXPECT_EQ(parseChtKind("tagonly"), ChtKind::TagOnly);
    EXPECT_THROW(parseOrderingScheme("bogus"), std::invalid_argument);
    EXPECT_THROW(parseHmpKind("bogus"), std::invalid_argument);
    EXPECT_THROW(parseBankMode("bogus"), std::invalid_argument);
    EXPECT_THROW(parseBankPredKind("bogus"), std::invalid_argument);
    EXPECT_THROW(parseChtKind("bogus"), std::invalid_argument);
}

TEST(ConfigIo, ParsesKeysOnTopOfBase)
{
    std::stringstream ss;
    ss << "# comment\n"
          "scheme = exclusive\n"
          "sched_window = 64   ; trailing comment\n"
          "\n"
          "cht_entries = 512\n"
          "exclusive_spec_forward = true\n";
    const MachineConfig cfg = machineConfigFromIni(ss);
    EXPECT_EQ(cfg.scheme, OrderingScheme::Exclusive);
    EXPECT_EQ(cfg.schedWindow, 64);
    EXPECT_EQ(cfg.cht.entries, 512u);
    EXPECT_TRUE(cfg.exclusiveSpecForward);
    // Untouched fields keep their defaults.
    EXPECT_EQ(cfg.intUnits, 2);
    EXPECT_EQ(cfg.retireWidth, 6);
}

TEST(ConfigIo, RejectsUnknownKey)
{
    std::stringstream ss;
    ss << "warp_drive = on\n";
    EXPECT_THROW(machineConfigFromIni(ss), std::invalid_argument);
}

TEST(ConfigIo, RejectsMalformedLine)
{
    std::stringstream ss;
    ss << "sched_window 64\n";
    EXPECT_THROW(machineConfigFromIni(ss), std::invalid_argument);
}

TEST(ConfigIo, RejectsMalformedValue)
{
    std::stringstream bad_int;
    bad_int << "sched_window = sixty-four\n";
    EXPECT_THROW(machineConfigFromIni(bad_int),
                 std::invalid_argument);
    std::stringstream bad_bool;
    bad_bool << "cht_sticky = maybe\n";
    EXPECT_THROW(machineConfigFromIni(bad_bool),
                 std::invalid_argument);
}

TEST(ConfigIo, RoundTripPreservesEverything)
{
    MachineConfig cfg;
    cfg.scheme = OrderingScheme::StoreBarrier;
    cfg.hmp = HmpKind::Chooser;
    cfg.bankMode = BankMode::Sliced;
    cfg.bankPred = BankPredKind::Addr;
    cfg.numBanks = 4;
    cfg.schedWindow = 48;
    cfg.robSize = 96;
    cfg.intUnits = 3;
    cfg.memUnits = 1;
    cfg.collisionPenalty = 12;
    cfg.exclusiveSpecForward = true;
    cfg.cht.kind = ChtKind::Combined;
    cfg.cht.entries = 1024;
    cfg.cht.sticky = true;
    cfg.cht.pathBits = 6;
    cfg.mem.l1.sizeBytes = 32 * 1024;
    cfg.mem.memLatency = 99;

    std::stringstream ss(machineConfigToIni(cfg));
    const MachineConfig back = machineConfigFromIni(ss);
    EXPECT_EQ(back.scheme, cfg.scheme);
    EXPECT_EQ(back.hmp, cfg.hmp);
    EXPECT_EQ(back.bankMode, cfg.bankMode);
    EXPECT_EQ(back.bankPred, cfg.bankPred);
    EXPECT_EQ(back.numBanks, cfg.numBanks);
    EXPECT_EQ(back.schedWindow, cfg.schedWindow);
    EXPECT_EQ(back.robSize, cfg.robSize);
    EXPECT_EQ(back.intUnits, cfg.intUnits);
    EXPECT_EQ(back.memUnits, cfg.memUnits);
    EXPECT_EQ(back.collisionPenalty, cfg.collisionPenalty);
    EXPECT_EQ(back.exclusiveSpecForward, cfg.exclusiveSpecForward);
    EXPECT_EQ(back.cht.kind, cfg.cht.kind);
    EXPECT_EQ(back.cht.entries, cfg.cht.entries);
    EXPECT_EQ(back.cht.sticky, cfg.cht.sticky);
    EXPECT_EQ(back.cht.pathBits, cfg.cht.pathBits);
    EXPECT_EQ(back.mem.l1.sizeBytes, cfg.mem.l1.sizeBytes);
    EXPECT_EQ(back.mem.memLatency, cfg.mem.memLatency);
}

TEST(ConfigIo, EmptyStreamKeepsBase)
{
    std::stringstream ss;
    MachineConfig base;
    base.schedWindow = 99;
    const MachineConfig cfg = machineConfigFromIni(ss, base);
    EXPECT_EQ(cfg.schedWindow, 99);
}

TEST(ConfigIo, MissingFileThrows)
{
    EXPECT_THROW(machineConfigFromFile("/nonexistent/cfg.ini"),
                 std::invalid_argument);
}

TEST(Parse, TryParseU64IsStrictCanonicalBase10)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(tryParseU64("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(tryParseU64("18446744073709551615", v)); // 2^64-1
    EXPECT_EQ(v, ~std::uint64_t{0});

    // The std::stoull booby traps this helper exists to disarm:
    // "-1" must NOT wrap to 2^64-1, "+1"/whitespace/hex must NOT
    // parse, and overflow must NOT clamp to ULLONG_MAX.
    v = 42;
    EXPECT_FALSE(tryParseU64("-1", v));
    EXPECT_FALSE(tryParseU64("+1", v));
    EXPECT_FALSE(tryParseU64(" 1", v));
    EXPECT_FALSE(tryParseU64("1 ", v));
    EXPECT_FALSE(tryParseU64("1 2", v));
    EXPECT_FALSE(tryParseU64("0x10", v));
    EXPECT_FALSE(tryParseU64("", v));
    EXPECT_FALSE(tryParseU64("18446744073709551616", v)); // 2^64
    EXPECT_FALSE(tryParseU64("99999999999999999999", v));
    EXPECT_EQ(v, 42u); // rejected parses leave the output untouched
}

TEST(ConfigIo, IniRejectsSignedWrapAndNonCanonicalIntegers)
{
    // `max_cycles = -1` once parsed as 2^64-1 via std::stoull —
    // "effectively unbounded" instead of a loud ConfigInvalid.
    for (const char *value :
         {"-1", "+1", "0x10", "1 2", "18446744073709551616"}) {
        std::stringstream ss;
        ss << "max_cycles = " << value << "\n";
        EXPECT_THROW(machineConfigFromIni(ss), ConfigError)
            << "value: " << value;
    }
    // Surrounding whitespace is the ini parser's to trim; the value
    // itself must then be canonical digits.
    std::stringstream ok;
    ok << "max_cycles =   123  \n";
    EXPECT_EQ(machineConfigFromIni(ok).maxCycles, 123u);
}

TEST(ConfigIo, GridRejectsSignedWrapIntegers)
{
    for (const char *line :
         {"len = -1", "jobs = +4", "len = 0x10",
          "warmup_snapshot = -5",
          "len = 18446744073709551616"}) {
        std::stringstream ss;
        ss << "traces = wd\n" << line << "\n";
        EXPECT_THROW(parseBatchGrid(ss, "test"), ConfigError)
            << "line: " << line;
    }
    std::stringstream ok;
    ok << "traces = wd\nlen = 5000\nwarmup_snapshot = 1000\n";
    const BatchGrid grid = parseBatchGrid(ok, "test");
    EXPECT_EQ(grid.len, 5000u);
    EXPECT_EQ(grid.warmupSnapshot, 1000u);
}

} // namespace
} // namespace lrs
