/**
 * @file
 * Tests for the Figure-4 memory-pipeline organisations (banked cache
 * modes in the core), the Store Barrier Cache ordering baseline, and
 * the per-bit multi-bank predictor.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/runner.hh"
#include "predictors/bank_pred.hh"

namespace lrs
{
namespace
{

/** Strided loads: banks alternate; plus dependent ALU work. */
VecTrace
stridedLoads(int n, Addr stride)
{
    std::vector<Uop> uops;
    Addr a = 0x100000;
    for (int i = 0; i < n; ++i) {
        Uop ld;
        ld.pc = 0x4000 + 16 * (i % 4);
        ld.cls = UopClass::Load;
        ld.dst = 1;
        // Wrap within 8KB so the stream stays L1-resident and the
        // issue rate is bank-limited, not miss-limited.
        ld.addr = 0x100000 + (a - 0x100000) % 8192;
        ld.memSize = 8;
        uops.push_back(ld);
        a += stride;
        Uop alu;
        alu.pc = 0x4008 + 16 * (i % 4);
        alu.cls = UopClass::IntAlu;
        alu.dst = 2;
        alu.src1 = 1;
        uops.push_back(alu);
    }
    return VecTrace("strided", std::move(uops));
}

SimResult
runMode(VecTrace trace, BankMode mode, BankPredKind pred,
        unsigned banks = 2)
{
    MachineConfig cfg;
    cfg.bankMode = mode;
    cfg.bankPred = pred;
    cfg.numBanks = banks;
    return runSim(trace, cfg);
}

TEST(BankModes, TrueMultiPortedHasNoBankEffects)
{
    const auto r = runMode(stridedLoads(300, 64),
                           BankMode::TrueMultiPorted,
                           BankPredKind::None);
    EXPECT_EQ(r.bankConflicts, 0u);
    EXPECT_EQ(r.bankMispredicts, 0u);
    EXPECT_EQ(r.bankReplications, 0u);
}

TEST(BankModes, ConventionalSuffersConflictsOnSameBankStream)
{
    // Stride 128 with 2 banks of 64B lines: every load hits bank 0.
    const auto same = runMode(stridedLoads(300, 128),
                              BankMode::Conventional,
                              BankPredKind::None);
    EXPECT_GT(same.bankConflicts, 50u);
    // Stride 64 alternates banks: conflicts mostly vanish.
    const auto alt = runMode(stridedLoads(300, 64),
                             BankMode::Conventional,
                             BankPredKind::None);
    EXPECT_LT(alt.bankConflicts, same.bankConflicts / 2);
}

TEST(BankModes, ConventionalSlowerThanTruePorted)
{
    const auto conv = runMode(stridedLoads(300, 128),
                              BankMode::Conventional,
                              BankPredKind::None);
    const auto ideal = runMode(stridedLoads(300, 128),
                               BankMode::TrueMultiPorted,
                               BankPredKind::None);
    EXPECT_GT(conv.cycles, ideal.cycles);
}

TEST(BankModes, PredictorAssistedSchedulingCutsConflicts)
{
    const auto blind = runMode(stridedLoads(400, 128),
                               BankMode::Conventional,
                               BankPredKind::None);
    const auto guided = runMode(stridedLoads(400, 128),
                                BankMode::Conventional,
                                BankPredKind::Addr);
    EXPECT_LT(guided.bankConflicts, blind.bankConflicts / 2);
}

TEST(BankModes, DualScheduledConflictFreeButSlower)
{
    const auto dual = runMode(stridedLoads(300, 128),
                              BankMode::DualScheduled,
                              BankPredKind::None);
    EXPECT_EQ(dual.bankConflicts, 0u);
    const auto ideal = runMode(stridedLoads(300, 128),
                               BankMode::TrueMultiPorted,
                               BankPredKind::None);
    EXPECT_GE(dual.cycles, ideal.cycles);
}

TEST(BankModes, SlicedWithAddressPredictorNearIdeal)
{
    // Perfectly strided loads: the address predictor nails the bank,
    // so the sliced pipe performs within a few percent of ideal.
    const auto sliced = runMode(stridedLoads(400, 64),
                                BankMode::Sliced, BankPredKind::Addr);
    const auto ideal = runMode(stridedLoads(400, 64),
                               BankMode::TrueMultiPorted,
                               BankPredKind::None);
    EXPECT_LT(sliced.bankMispredicts, 20u);
    EXPECT_LT(static_cast<double>(sliced.cycles),
              static_cast<double>(ideal.cycles) * 1.10);
}

TEST(BankModes, SlicedReplicatesUnpredictableLoads)
{
    // Pseudo-random addresses: the address predictor declines, so
    // loads replicate to both pipes.
    std::vector<Uop> uops;
    Rng rng(7);
    for (int i = 0; i < 300; ++i) {
        Uop ld;
        ld.pc = 0x4000;
        ld.cls = UopClass::Load;
        ld.dst = 1;
        ld.addr = 0x100000 + rng.below(4096) * 64;
        ld.memSize = 8;
        uops.push_back(ld);
    }
    const auto r = runMode(VecTrace("rand", std::move(uops)),
                           BankMode::Sliced, BankPredKind::Addr);
    EXPECT_GT(r.bankReplications, 200u);
}

TEST(BankModes, FourBankSlicedRuns)
{
    const auto r = runMode(stridedLoads(300, 64), BankMode::Sliced,
                           BankPredKind::Addr, 4);
    EXPECT_EQ(r.uops, 600u);
}

TEST(StoreBarrier, LearnsToFenceViolatingStores)
{
    // Recurrent collider: under StoreBarrier the violating store's
    // counter saturates and later instances fence the load — far
    // fewer violations than Opportunistic.
    std::vector<Uop> uops;
    auto block = [&] {
        Uop cx;
        cx.pc = 0x1000;
        cx.cls = UopClass::Complex;
        cx.dst = 2;
        uops.push_back(cx);
        Uop cx2 = cx;
        cx2.pc = 0x1002;
        cx2.src1 = 2;
        uops.push_back(cx2);
        Uop sta;
        sta.pc = 0x1010;
        sta.cls = UopClass::StoreAddr;
        sta.addr = 0x9000;
        sta.memSize = 8;
        sta.src1 = 2;
        uops.push_back(sta);
        Uop std_uop;
        std_uop.pc = 0x1011;
        std_uop.cls = UopClass::StoreData;
        std_uop.src1 = 2;
        uops.push_back(std_uop);
        Uop ld;
        ld.pc = 0x1020;
        ld.cls = UopClass::Load;
        ld.dst = 4;
        ld.addr = 0x9000;
        ld.memSize = 8;
        uops.push_back(ld);
    };
    for (int i = 0; i < 80; ++i)
        block();

    MachineConfig cfg;
    cfg.scheme = OrderingScheme::Opportunistic;
    VecTrace t1("rmw", uops);
    const auto opp = runSim(t1, cfg);
    cfg.scheme = OrderingScheme::StoreBarrier;
    VecTrace t2("rmw", uops);
    const auto sb = runSim(t2, cfg);
    EXPECT_LT(sb.orderViolations, opp.orderViolations / 2);
}

TEST(StoreBarrier, RunsLibraryTraceToCompletion)
{
    MachineConfig cfg;
    cfg.scheme = OrderingScheme::StoreBarrier;
    const auto r =
        runSim(TraceLibrary::byName("wd", 20000), cfg);
    EXPECT_EQ(r.uops, 20000u);
    EXPECT_EQ(r.config, std::string("StoreBarrier/always-hit"));
}

TEST(PerBitBankPredictor, PredictsStableBanksPerBit)
{
    auto p = makePerBitBankPredictor(4);
    for (int i = 0; i < 300; ++i)
        p->update(0x4000, 3); // constant bank 3 (bits 11)
    const auto pred = p->predict(0x4000);
    ASSERT_TRUE(pred.valid);
    EXPECT_EQ(pred.bank, 3u);
}

TEST(PerBitBankPredictor, RandomBitRuinsAccuracyNotJustRate)
{
    auto p = makePerBitBankPredictor(4);
    // Low bit alternates (learnable), high bit is random: whatever
    // predictions escape the per-bit confidence gate can at best
    // coin-flip the high bit, so bank accuracy collapses toward 50%.
    Rng rng(3);
    auto bank_at = [&](int i) {
        return static_cast<unsigned>(i % 2) |
               (static_cast<unsigned>(rng.below(2)) << 1);
    };
    for (int i = 0; i < 400; ++i)
        p->update(0x4000, bank_at(i));
    int predicted = 0, correct = 0;
    for (int i = 0; i < 200; ++i) {
        const unsigned actual = bank_at(i);
        const auto pred = p->predict(0x4000);
        if (pred.valid) {
            ++predicted;
            correct += pred.bank == actual;
        }
        p->update(0x4000, actual);
    }
    if (predicted > 20) {
        EXPECT_LT(static_cast<double>(correct) / predicted, 0.75);
    }
}

TEST(PerBitBankPredictor, NameAndStorage)
{
    auto p2 = makePerBitBankPredictor(2);
    auto p8 = makePerBitBankPredictor(8);
    EXPECT_EQ(p2->name(), "perbit-2banks");
    EXPECT_EQ(p8->name(), "perbit-8banks");
    EXPECT_EQ(p8->storageBits(), 3 * p2->storageBits());
    EXPECT_EQ(p8->numBanks(), 8u);
}


TEST(SpecForward, PairsCorrectlyOnLateAddressStore)
{
    // Store with a slow ADDRESS chain but immediate data, reload of
    // the same address right behind it, repeated: the exclusive
    // scheme with speculative forwarding should pair and forward
    // without mispairs, beating plain exclusive.
    std::vector<Uop> uops;
    for (int i = 0; i < 80; ++i) {
        Uop cx;
        cx.pc = 0x1000;
        cx.cls = UopClass::Complex;
        cx.dst = 2;
        uops.push_back(cx);
        Uop cx2 = cx;
        cx2.pc = 0x1002;
        cx2.src1 = 2;
        uops.push_back(cx2);
        Uop sta;
        sta.pc = 0x1010;
        sta.cls = UopClass::StoreAddr;
        sta.addr = 0x9000;
        sta.memSize = 8;
        sta.src1 = 2; // address off the complex chain (slow)
        uops.push_back(sta);
        Uop std_uop;
        std_uop.pc = 0x1011;
        std_uop.cls = UopClass::StoreData;
        std_uop.src1 = -1; // data immediately ready
        uops.push_back(std_uop);
        Uop ld;
        ld.pc = 0x1020;
        ld.cls = UopClass::Load;
        ld.dst = 4;
        ld.addr = 0x9000;
        ld.memSize = 8;
        uops.push_back(ld);
        Uop alu;
        alu.pc = 0x1024;
        alu.cls = UopClass::IntAlu;
        alu.dst = 5;
        alu.src1 = 4;
        uops.push_back(alu);
        Uop br;
        br.pc = 0x1028;
        br.cls = UopClass::Branch;
        br.src1 = 5;
        br.taken = true;
        uops.push_back(br);
    }
    MachineConfig cfg;
    cfg.cht.trackDistance = true;
    cfg.scheme = OrderingScheme::Exclusive;
    VecTrace t1("latestore", uops);
    const auto plain = runSim(t1, cfg);
    cfg.exclusiveSpecForward = true;
    VecTrace t2("latestore", uops);
    const auto spec = runSim(t2, cfg);
    EXPECT_GT(spec.specForwards, 30u);
    EXPECT_EQ(spec.specMisforwards, 0u);
    EXPECT_LT(spec.cycles, plain.cycles);
}

TEST(SpecForward, MispairDetectedAndPenalised)
{
    // The predicted distance-1 pairing is wrong every other instance:
    // two stores swap order of address resolution so the reload's
    // actual producer alternates. Mispairs must be detected (counted)
    // and the run must still complete correctly.
    std::vector<Uop> uops;
    for (int i = 0; i < 120; ++i) {
        Uop cx;
        cx.pc = 0x1000;
        cx.cls = UopClass::Complex;
        cx.dst = 2;
        uops.push_back(cx);
        // Store A to 0x9000 (slow addr), store B to alternating
        // target (fast addr): youngest-overlap alternates between
        // them while the distance-1 prediction always points at B.
        Uop sta_a;
        sta_a.pc = 0x1010;
        sta_a.cls = UopClass::StoreAddr;
        sta_a.addr = 0x9000;
        sta_a.memSize = 8;
        sta_a.src1 = 2;
        uops.push_back(sta_a);
        Uop std_a;
        std_a.pc = 0x1011;
        std_a.cls = UopClass::StoreData;
        std_a.src1 = -1;
        uops.push_back(std_a);
        Uop sta_b;
        sta_b.pc = 0x1014;
        sta_b.cls = UopClass::StoreAddr;
        sta_b.addr = (i % 2 == 0) ? 0x9000u : 0xa000u;
        sta_b.memSize = 8;
        sta_b.src1 = 2; // also slow
        uops.push_back(sta_b);
        Uop std_b;
        std_b.pc = 0x1015;
        std_b.cls = UopClass::StoreData;
        std_b.src1 = -1;
        uops.push_back(std_b);
        Uop ld;
        ld.pc = 0x1020;
        ld.cls = UopClass::Load;
        ld.dst = 4;
        ld.addr = 0x9000;
        ld.memSize = 8;
        uops.push_back(ld);
    }
    MachineConfig cfg;
    cfg.cht.trackDistance = true;
    cfg.scheme = OrderingScheme::Exclusive;
    cfg.exclusiveSpecForward = true;
    VecTrace t("mispair", uops);
    const auto r = runSim(t, cfg);
    EXPECT_EQ(r.uops, 120u * 6);
    if (r.specForwards > 10) {
        EXPECT_GT(r.specMisforwards, 0u);
    }
}


TEST(StridePrefetch, ReducesMissesOnStreamingLoads)
{
    // Line-strided loads over a large region: every access is a new
    // line; the prefetcher runs ahead and converts later misses into
    // hits or overlapped (dynamic) misses.
    std::vector<Uop> uops;
    Addr a = 0x100000;
    for (int i = 0; i < 500; ++i) {
        Uop ld;
        ld.pc = 0x4000;
        ld.cls = UopClass::Load;
        ld.dst = 1;
        ld.addr = a;
        ld.memSize = 8;
        uops.push_back(ld);
        a += 64;
        Uop alu;
        alu.pc = 0x4008;
        alu.cls = UopClass::IntAlu;
        alu.dst = 2;
        alu.src1 = 1;
        uops.push_back(alu);
    }
    MachineConfig cfg;
    VecTrace t1("stream", uops);
    const auto off = runSim(t1, cfg);
    cfg.stridePrefetch = true;
    cfg.prefetchDegree = 4;
    VecTrace t2("stream", uops);
    const auto on = runSim(t2, cfg);
    EXPECT_GT(on.prefetches, 300u);
    EXPECT_LT(on.cycles, off.cycles);
    // The prefetches turn blocking misses into overlapped (dynamic)
    // ones: cycles drop even though the miss count barely moves.
    EXPECT_GT(on.dynamicMisses, off.dynamicMisses);
}

TEST(StridePrefetch, HarmlessOnIrregularLoads)
{
    std::vector<Uop> uops;
    Rng rng(5);
    for (int i = 0; i < 400; ++i) {
        Uop ld;
        ld.pc = 0x4000;
        ld.cls = UopClass::Load;
        ld.dst = 1;
        ld.addr = 0x100000 + rng.below(4096) * 64;
        ld.memSize = 8;
        uops.push_back(ld);
    }
    MachineConfig cfg;
    VecTrace t1("rand", uops);
    const auto off = runSim(t1, cfg);
    cfg.stridePrefetch = true;
    VecTrace t2("rand", uops);
    const auto on = runSim(t2, cfg);
    // The confidence gate keeps the prefetcher quiet on random
    // streams, so behaviour is essentially unchanged.
    EXPECT_LT(on.prefetches, 40u);
    EXPECT_LE(on.cycles, off.cycles * 102 / 100);
}

} // namespace
} // namespace lrs
