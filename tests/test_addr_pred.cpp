/**
 * @file
 * Unit tests for the stride load-address predictor ([Beke99]-style
 * simplified) used by the address-based bank predictor.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "predictors/addr_pred.hh"

namespace lrs
{
namespace
{

TEST(AddrPred, ColdEntryDoesNotPredict)
{
    LoadAddressPredictor p(256);
    EXPECT_FALSE(p.predict(0x4000).valid);
}

TEST(AddrPred, LearnsConstantStride)
{
    LoadAddressPredictor p(256);
    Addr a = 0x10000;
    for (int i = 0; i < 8; ++i) {
        p.update(0x4000, a);
        a += 64;
    }
    const auto pred = p.predict(0x4000);
    ASSERT_TRUE(pred.valid);
    EXPECT_EQ(pred.addr, a);
}

TEST(AddrPred, LearnsZeroStride)
{
    LoadAddressPredictor p(256);
    for (int i = 0; i < 8; ++i)
        p.update(0x4000, 0x8000);
    const auto pred = p.predict(0x4000);
    ASSERT_TRUE(pred.valid);
    EXPECT_EQ(pred.addr, 0x8000u);
}

TEST(AddrPred, LearnsNegativeStride)
{
    LoadAddressPredictor p(256);
    Addr a = 0x20000;
    for (int i = 0; i < 8; ++i) {
        p.update(0x4000, a);
        a -= 16;
    }
    const auto pred = p.predict(0x4000);
    ASSERT_TRUE(pred.valid);
    EXPECT_EQ(pred.addr, a);
}

TEST(AddrPred, ConfidenceGatesRandomStreams)
{
    LoadAddressPredictor p(256);
    // Pseudo-random addresses: strides effectively never repeat, so
    // confidence never reaches the threshold.
    Rng rng(31);
    for (int i = 0; i < 64; ++i)
        p.update(0x4000, 0x1000 + rng.below(1 << 20) * 8);
    EXPECT_FALSE(p.predict(0x4000).valid);
}

TEST(AddrPred, RecoversAfterStrideChange)
{
    LoadAddressPredictor p(256);
    Addr a = 0x10000;
    for (int i = 0; i < 8; ++i) {
        p.update(0x4000, a);
        a += 8;
    }
    EXPECT_TRUE(p.predict(0x4000).valid);
    // Stride changes from 8 to 128: confidence dips, then recovers.
    for (int i = 0; i < 12; ++i) {
        p.update(0x4000, a);
        a += 128;
    }
    const auto pred = p.predict(0x4000);
    ASSERT_TRUE(pred.valid);
    EXPECT_EQ(pred.addr, a);
}

TEST(AddrPred, SeparatePcsSeparateStreams)
{
    LoadAddressPredictor p(256);
    Addr a = 0x10000, b = 0x90000;
    for (int i = 0; i < 8; ++i) {
        p.update(0x4000, a);
        p.update(0x5000, b);
        a += 8;
        b += 64;
    }
    EXPECT_EQ(p.predict(0x4000).addr, a);
    EXPECT_EQ(p.predict(0x5000).addr, b);
}

TEST(AddrPred, TagConflictReplacesEntry)
{
    // Two PCs that collide in a 1-entry table: the second evicts the
    // first (tag covers pc bits [1,13), so 0x4002 differs).
    LoadAddressPredictor p(1);
    for (int i = 0; i < 8; ++i)
        p.update(0x4000, 0x1000 + i * 8);
    ASSERT_TRUE(p.predict(0x4000).valid);
    p.update(0x4002, 0x2000); // different tag, same (only) index
    EXPECT_FALSE(p.predict(0x4000).valid);
}

TEST(AddrPred, ResetForgets)
{
    LoadAddressPredictor p(256);
    for (int i = 0; i < 8; ++i)
        p.update(0x4000, 0x1000 + i * 8);
    p.reset();
    EXPECT_FALSE(p.predict(0x4000).valid);
}

TEST(AddrPred, StorageBitsScaleWithEntries)
{
    EXPECT_GT(LoadAddressPredictor(2048).storageBits(),
              LoadAddressPredictor(256).storageBits());
}

} // namespace
} // namespace lrs
