/**
 * @file
 * Unit tests for the Memory Ordering Buffer: store tracking, the
 * conflict/collision queries of section 2.1 and the store-distance
 * arithmetic the exclusive predictor relies on.
 */

#include <gtest/gtest.h>

#include "memory/mob.hh"

namespace lrs
{
namespace
{

TEST(RangesOverlap, Basics)
{
    EXPECT_TRUE(rangesOverlap(100, 8, 100, 8));
    EXPECT_TRUE(rangesOverlap(100, 8, 104, 8));  // partial
    EXPECT_TRUE(rangesOverlap(104, 8, 100, 8));  // partial, reversed
    EXPECT_FALSE(rangesOverlap(100, 4, 104, 4)); // adjacent
    EXPECT_TRUE(rangesOverlap(100, 8, 107, 1));  // last byte
    EXPECT_FALSE(rangesOverlap(100, 8, 108, 1));
}

class MobTest : public ::testing::Test
{
  protected:
    Mob mob;
};

TEST_F(MobTest, EmptyMobHasNoConflicts)
{
    EXPECT_FALSE(mob.anyUnknownAddrOlder(100, 0));
    EXPECT_FALSE(mob.anyIncompleteOlder(100, 0));
    EXPECT_TRUE(mob.allOlderComplete(100, 0));
    EXPECT_EQ(mob.youngestOverlapOlder(100, 0x1000, 8), nullptr);
}

TEST_F(MobTest, UnknownAddressUntilStaExecutes)
{
    mob.insert(10, 0x1000, 8);
    EXPECT_TRUE(mob.anyUnknownAddrOlder(20, 5));
    mob.staExecuted(10, 7);
    EXPECT_TRUE(mob.anyUnknownAddrOlder(20, 6));  // not yet at 6
    EXPECT_FALSE(mob.anyUnknownAddrOlder(20, 7)); // known from 7
}

TEST_F(MobTest, YoungerStoresDoNotAffectOlderLoads)
{
    mob.insert(50, 0x1000, 8);
    EXPECT_FALSE(mob.anyUnknownAddrOlder(40, 0));
    EXPECT_FALSE(mob.collidesAt(40, 0x1000, 8, 0));
    EXPECT_EQ(mob.youngestOverlapOlder(40, 0x1000, 8), nullptr);
}

TEST_F(MobTest, CompletionNeedsBothParts)
{
    mob.insert(10, 0x1000, 8);
    mob.staExecuted(10, 5);
    EXPECT_FALSE(mob.allOlderComplete(20, 6));
    EXPECT_TRUE(mob.allOlderAddrKnown(20, 6));
    EXPECT_FALSE(mob.allOlderDataKnown(20, 6));
    mob.stdExecuted(10, 8);
    EXPECT_TRUE(mob.allOlderComplete(20, 8));
    EXPECT_TRUE(mob.allOlderDataKnown(20, 8));
}

TEST_F(MobTest, CollidesOnlyWithUnknownAddressOverlap)
{
    mob.insert(10, 0x1000, 8);
    // Address unknown: a load to the same address collides.
    EXPECT_TRUE(mob.collidesAt(20, 0x1000, 8, 0));
    // Different address still "collides" conservatively? No —
    // collidesAt uses oracle addresses, so a disjoint load does not.
    EXPECT_FALSE(mob.collidesAt(20, 0x2000, 8, 0));
    // Once the address is known, collidesAt is false (the scheduler
    // can see the dependency explicitly).
    mob.staExecuted(10, 3);
    EXPECT_FALSE(mob.collidesAt(20, 0x1000, 8, 3));
}

TEST_F(MobTest, YoungestOverlapPicksClosestStore)
{
    mob.insert(10, 0x1000, 8);
    mob.insert(12, 0x1000, 8);
    mob.insert(14, 0x2000, 8);
    const auto *m = mob.youngestOverlapOlder(20, 0x1000, 8);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->seq, 12u);
}

TEST_F(MobTest, OverlapDistanceCountsStoresBackward)
{
    mob.insert(10, 0x1000, 8);
    mob.insert(12, 0x2000, 8);
    mob.insert(14, 0x3000, 8);
    // Closest older store is seq 14 (distance 1); the overlap with
    // 0x1000 is at distance 3.
    EXPECT_EQ(mob.overlapDistance(20, 0x3000, 8), 1u);
    EXPECT_EQ(mob.overlapDistance(20, 0x2000, 8), 2u);
    EXPECT_EQ(mob.overlapDistance(20, 0x1000, 8), 3u);
    EXPECT_EQ(mob.overlapDistance(20, 0x9000, 8), 0u);
}

TEST_F(MobTest, OlderAtDistance)
{
    mob.insert(10, 0x1000, 8);
    mob.insert(12, 0x2000, 8);
    ASSERT_NE(mob.olderAtDistance(20, 1), nullptr);
    EXPECT_EQ(mob.olderAtDistance(20, 1)->seq, 12u);
    EXPECT_EQ(mob.olderAtDistance(20, 2)->seq, 10u);
    EXPECT_EQ(mob.olderAtDistance(20, 3), nullptr);
    // A load older than every store sees none.
    EXPECT_EQ(mob.olderAtDistance(5, 1), nullptr);
}

TEST_F(MobTest, PartialOverlapDetected)
{
    mob.insert(10, 0x1004, 4);
    EXPECT_TRUE(mob.collidesAt(20, 0x1000, 8, 0));
    EXPECT_FALSE(mob.collidesAt(20, 0x1000, 4, 0));
}

TEST_F(MobTest, RetireRemovesOldest)
{
    mob.insert(10, 0x1000, 8);
    mob.insert(12, 0x2000, 8);
    EXPECT_EQ(mob.size(), 2u);
    mob.retire(10);
    EXPECT_EQ(mob.size(), 1u);
    EXPECT_EQ(mob.get(10), nullptr);
    ASSERT_NE(mob.get(12), nullptr);
}

TEST_F(MobTest, GetFindsBySeq)
{
    mob.insert(10, 0x1000, 8);
    mob.insert(12, 0x2000, 4);
    const auto *r = mob.get(12);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->addr, 0x2000u);
    EXPECT_EQ(r->size, 4u);
    EXPECT_EQ(mob.get(11), nullptr);
}

TEST_F(MobTest, ClearEmpties)
{
    mob.insert(10, 0x1000, 8);
    mob.clear();
    EXPECT_EQ(mob.size(), 0u);
    EXPECT_EQ(mob.get(10), nullptr);
}

TEST_F(MobTest, IncompleteOlderSeesLateData)
{
    mob.insert(10, 0x1000, 8);
    mob.staExecuted(10, 2);
    // Address known but data not: incomplete but not unknown-address.
    EXPECT_FALSE(mob.anyUnknownAddrOlder(20, 5));
    EXPECT_TRUE(mob.anyIncompleteOlder(20, 5));
    mob.stdExecuted(10, 9);
    EXPECT_FALSE(mob.anyIncompleteOlder(20, 9));
}

TEST_F(MobTest, ManyStoresScale)
{
    for (SeqNum s = 0; s < 100; ++s)
        mob.insert(s * 2, 0x1000 + s * 64, 8);
    EXPECT_EQ(mob.size(), 100u);
    EXPECT_EQ(mob.overlapDistance(1000, 0x1000, 8), 100u);
    EXPECT_EQ(mob.olderAtDistance(1000, 100)->seq, 0u);
}

// ---- partial-address (narrow comparator) disambiguation ----
// The SPOILER-style 4K-aliasing cases (docs/TRACES.md): with a
// 12-bit comparator, a store and a load one page apart share a page
// offset, so the MOB sees a match the full addresses disprove.

TEST_F(MobTest, PartialOffByDefault)
{
    mob.insert(10, 0x1000, 8);
    mob.staExecuted(10, 0);
    // Same page offset, different page — but partial matching is off
    // (partialBits 0), so no alias dependence exists.
    EXPECT_FALSE(mob.partialAliasOlder(20, 0x1000 + 4096, 8, 5));
    EXPECT_EQ(mob.partialAliasMatches(), 0u);
    EXPECT_EQ(mob.partialTrueMatches(), 0u);
}

TEST_F(MobTest, PartialAliasVsTrueCollisionClassified)
{
    mob.setPartialBits(12);
    mob.insert(10, 0x1000, 8);
    mob.staExecuted(10, 0);

    // 4K alias: low 12 bits equal, full addresses a page apart. The
    // narrow comparator must report a (false) dependence and count it
    // as an alias, not a true match.
    EXPECT_TRUE(mob.partialAliasOlder(20, 0x1000 + 4096, 8, 5));
    EXPECT_EQ(mob.partialAliasMatches(), 1u);
    EXPECT_EQ(mob.partialTrueMatches(), 0u);

    // Truly colliding (same full address): the ordinary collision
    // machinery owns it — partialAliasOlder returns false and counts
    // it separately.
    EXPECT_FALSE(mob.partialAliasOlder(20, 0x1000, 8, 5));
    EXPECT_EQ(mob.partialAliasMatches(), 1u);
    EXPECT_EQ(mob.partialTrueMatches(), 1u);

    // Different page offset entirely: no match of any kind.
    EXPECT_FALSE(mob.partialAliasOlder(20, 0x2500, 8, 5));
    EXPECT_EQ(mob.partialAliasMatches(), 1u);
    EXPECT_EQ(mob.partialTrueMatches(), 1u);
}

TEST_F(MobTest, PartialIgnoresUnknownAddressAndYoungerStores)
{
    mob.setPartialBits(12);
    mob.insert(10, 0x1000, 8); // STA not executed: address unknown
    EXPECT_FALSE(mob.partialAliasOlder(20, 0x1000 + 4096, 8, 5));
    EXPECT_EQ(mob.partialAliasMatches(), 0u);

    // Known from cycle 7 on: the comparator sees it only then.
    mob.staExecuted(10, 7);
    EXPECT_FALSE(mob.partialAliasOlder(20, 0x1000 + 4096, 8, 6));
    EXPECT_TRUE(mob.partialAliasOlder(20, 0x1000 + 4096, 8, 7));

    // A younger aliasing store never stalls an older load.
    EXPECT_FALSE(mob.partialAliasOlder(5, 0x1000 + 4096, 8, 7));
}

TEST_F(MobTest, PartialYoungestMatchWins)
{
    mob.setPartialBits(12);
    // Older store truly collides; a younger one merely aliases. The
    // comparator scans youngest-first, so the alias is what a load
    // behind both observes.
    mob.insert(10, 0x3000, 8);
    mob.insert(12, 0x3000 + 8192, 8);
    mob.staExecuted(10, 0);
    mob.staExecuted(12, 0);
    EXPECT_TRUE(mob.partialAliasOlder(20, 0x3000 + 4096, 8, 5));
    EXPECT_EQ(mob.partialAliasMatches(), 1u);
    EXPECT_EQ(mob.partialTrueMatches(), 0u);
}

TEST_F(MobTest, PartialCountersRegisteredOnlyWhenActive)
{
    // Stats namespace stays byte-identical with the mode off: the
    // mob.partial_* counters exist only when partialBits != 0.
    StatsRegistry off;
    Mob plain;
    plain.registerStats(off.group("mob"));
    EXPECT_FALSE(off.has("mob.partial_alias_matches"));
    EXPECT_FALSE(off.has("mob.partial_true_matches"));

    StatsRegistry on;
    Mob partial;
    partial.setPartialBits(12);
    partial.registerStats(on.group("mob"));
    ASSERT_TRUE(on.has("mob.partial_alias_matches"));
    ASSERT_TRUE(on.has("mob.partial_true_matches"));

    partial.insert(10, 0x1000, 8);
    partial.staExecuted(10, 0);
    EXPECT_TRUE(partial.partialAliasOlder(20, 0x1000 + 4096, 8, 5));
    EXPECT_EQ(on.value("mob.partial_alias_matches"), 1.0);
    EXPECT_EQ(on.value("mob.partial_true_matches"), 0.0);
}

// ---- ring-buffer mechanics ----
// The MOB stores its window in a circular buffer (initial capacity
// 16, grow-by-rebuild). A steady insert/retire stream cycles the head
// through the physical array many times; every query must see the
// same program-order window as a naive deque would.

TEST_F(MobTest, RingWrapPreservesWindowAndQueries)
{
    // Keep 5 stores in flight while inserting 200: the head index
    // laps the 16-slot ring a dozen times.
    SeqNum next = 0;
    for (int i = 0; i < 200; ++i) {
        const SeqNum seq = next;
        next += 2;
        mob.insert(seq, 0x1000 + seq * 8, 8);
        mob.staExecuted(seq, i);
        mob.stdExecuted(seq, i + 1);
        if (mob.size() > 5)
            mob.retire(mob.storeAt(0).seq);
    }
    ASSERT_EQ(mob.size(), 5u);
    // storeAt() walks oldest to youngest in program order.
    for (std::size_t i = 0; i + 1 < mob.size(); ++i)
        EXPECT_LT(mob.storeAt(i).seq, mob.storeAt(i + 1).seq);
    // The retired majority is gone; the survivors are addressable.
    EXPECT_EQ(mob.get(0), nullptr);
    const SeqNum youngest = mob.storeAt(4).seq;
    ASSERT_NE(mob.get(youngest), nullptr);
    EXPECT_EQ(mob.get(youngest)->addr, 0x1000 + youngest * 8);
    // Ordering queries against the wrapped window.
    EXPECT_EQ(mob.olderAtDistance(next, 1)->seq, youngest);
    EXPECT_EQ(mob.olderAtDistance(next, 5)->seq, mob.storeAt(0).seq);
    EXPECT_EQ(mob.olderAtDistance(next, 6), nullptr);
    EXPECT_EQ(
        mob.overlapDistance(next, 0x1000 + mob.storeAt(0).seq * 8, 8),
        5u);
    EXPECT_TRUE(mob.allOlderComplete(next, 1000));
    EXPECT_EQ(mob.inserted(), 200u);
}

TEST_F(MobTest, GrowthWhileWrappedKeepsProgramOrder)
{
    // Drive head_ to mid-ring, then fill past the 16-slot capacity so
    // the grow-by-rebuild path runs while the window straddles the
    // physical wrap point.
    for (SeqNum s = 0; s < 10; ++s)
        mob.insert(s, 0x100 * (s + 1), 8);
    for (SeqNum s = 0; s < 9; ++s)
        mob.retire(s);
    ASSERT_EQ(mob.size(), 1u);
    for (SeqNum s = 10; s < 40; ++s)
        mob.insert(s, 0x100 * (s + 1), 8);
    ASSERT_EQ(mob.size(), 31u);
    for (std::size_t i = 0; i < mob.size(); ++i) {
        EXPECT_EQ(mob.storeAt(i).seq, 9 + i);
        EXPECT_EQ(mob.storeAt(i).addr, 0x100 * (9 + i + 1));
    }
    EXPECT_EQ(mob.youngestOverlapOlder(100, 0x100 * 10, 8)->seq, 9u);
    // The untouched stores all have unknown addresses.
    EXPECT_TRUE(mob.anyUnknownAddrOlder(100, 1000000));
}

TEST_F(MobTest, StateRoundTripsAfterWrap)
{
    // Wrap the ring, mutate some records, then serialize: a restored
    // MOB must answer every query identically and keep the lifetime
    // counters.
    for (SeqNum s = 0; s < 30; ++s) {
        mob.insert(s * 3, 0x2000 + s * 16, 8, /*pc=*/0x400 + s,
                   /*barrier=*/s % 7 == 0);
        if (s >= 4)
            mob.retire((s - 4) * 3);
    }
    mob.staExecuted(27 * 3, 500);
    mob.markViolation(27 * 3);
    const json::Value st = mob.saveState();

    Mob back;
    back.loadState(st);
    EXPECT_EQ(back.size(), mob.size());
    EXPECT_EQ(back.inserted(), 30u);
    EXPECT_EQ(back.violationsMarked(), 1u);
    for (std::size_t i = 0; i < mob.size(); ++i) {
        const Mob::StoreRec &a = mob.storeAt(i);
        const Mob::StoreRec &b = back.storeAt(i);
        EXPECT_EQ(b.seq, a.seq);
        EXPECT_EQ(b.addr, a.addr);
        EXPECT_EQ(b.pc, a.pc);
        EXPECT_EQ(b.barrier, a.barrier);
        EXPECT_EQ(b.causedViolation, a.causedViolation);
        EXPECT_EQ(b.staDoneAt, a.staDoneAt);
        EXPECT_EQ(b.stdDoneAt, a.stdDoneAt);
    }
    EXPECT_EQ(back.saveState().dump(0), st.dump(0));
    // And the restored ring keeps working past another wrap.
    for (SeqNum s = 30; s < 60; ++s) {
        back.insert(s * 3, 0x2000 + s * 16, 8);
        back.retire(back.storeAt(0).seq);
    }
    EXPECT_EQ(back.size(), mob.size());
    EXPECT_EQ(back.storeAt(back.size() - 1).seq, 59u * 3);
}

} // namespace
} // namespace lrs
