/**
 * @file
 * Unit tests for the set-associative cache model, including the
 * fill-timing (dynamic miss) behaviour the timing-assisted hit-miss
 * predictor depends on.
 */

#include <gtest/gtest.h>

#include "memory/cache.hh"

namespace lrs
{
namespace
{

CacheParams
smallCache()
{
    // 8 sets x 2 ways x 64B = 1KB.
    return {"test", 1024, 2, 64, 3, 1};
}

TEST(Cache, GeometryDerivation)
{
    Cache c(smallCache());
    EXPECT_EQ(c.numSets(), 8u);
}

TEST(Cache, MissThenHitAfterFill)
{
    Cache c(smallCache());
    auto r = c.access(0x1000, 10);
    EXPECT_FALSE(r.present);
    c.fill(0x1000, 20);
    r = c.access(0x1000, 25);
    EXPECT_TRUE(r.present);
    EXPECT_TRUE(r.ready);
}

TEST(Cache, DynamicMissWhileFillInFlight)
{
    Cache c(smallCache());
    c.access(0x2000, 0);
    c.fill(0x2000, 50);
    const auto r = c.access(0x2000, 10);
    EXPECT_TRUE(r.present);
    EXPECT_FALSE(r.ready); // still in flight
    EXPECT_EQ(r.fillTime, 50u);
    EXPECT_EQ(c.dynamicMisses(), 1u);
}

TEST(Cache, SameLineDifferentOffsetsHit)
{
    Cache c(smallCache());
    c.fill(0x3000, 0);
    EXPECT_TRUE(c.access(0x3000, 1).present);
    EXPECT_TRUE(c.access(0x303f, 2).present); // last byte of the line
    EXPECT_FALSE(c.access(0x3040, 3).present); // next line
}

TEST(Cache, LruEviction)
{
    Cache c(smallCache());
    // Three lines mapping to the same set (set stride = 8 lines).
    const Addr a = 0x0000, b = 0x0000 + 8 * 64, d = 0x0000 + 16 * 64;
    c.fill(a, 0);
    c.fill(b, 1);
    c.access(a, 10); // make A recently used
    c.fill(d, 20);   // evicts B (LRU)
    EXPECT_TRUE(c.access(a, 30).present);
    EXPECT_FALSE(c.access(b, 31).present);
    EXPECT_TRUE(c.access(d, 32).present);
}

TEST(Cache, RefillOfPresentLineUpdatesInPlace)
{
    Cache c(smallCache());
    c.fill(0x4000, 5);
    c.fill(0x4000, 90); // refill, not a second way
    const auto r = c.probe(0x4000, 100);
    EXPECT_TRUE(r.present);
    EXPECT_EQ(r.fillTime, 90u);
}

TEST(Cache, ProbeDoesNotTouchLru)
{
    Cache c(smallCache());
    const Addr a = 0x0000, b = 0x0000 + 8 * 64, d = 0x0000 + 16 * 64;
    c.fill(a, 0);
    c.fill(b, 1);
    c.probe(a, 50); // must NOT refresh a's recency
    c.fill(d, 60);  // evicts a (still LRU despite the probe)
    EXPECT_FALSE(c.probe(a, 70).present);
    EXPECT_TRUE(c.probe(b, 71).present);
}

TEST(Cache, FlushEmptiesEverything)
{
    Cache c(smallCache());
    c.fill(0x1000, 0);
    c.fill(0x2000, 0);
    c.flush();
    EXPECT_FALSE(c.access(0x1000, 10).present);
    EXPECT_FALSE(c.access(0x2000, 10).present);
}

TEST(Cache, HitMissCounters)
{
    Cache c(smallCache());
    c.access(0x5000, 0); // miss
    c.fill(0x5000, 1);
    c.access(0x5000, 5); // hit
    c.access(0x5000, 6); // hit
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, BankInterleavingByLine)
{
    CacheParams p = smallCache();
    p.numBanks = 2;
    Cache c(p);
    EXPECT_EQ(c.bankOf(0x0000), 0u);
    EXPECT_EQ(c.bankOf(0x0040), 1u);
    EXPECT_EQ(c.bankOf(0x0080), 0u);
    EXPECT_EQ(c.bankOf(0x003f), 0u); // same line as 0x0
}

TEST(Cache, FullyAssociativeDegenerateCase)
{
    // One set: size 1KB, 16 ways, 64B lines.
    Cache c({"fa", 1024, 16, 64, 1, 1});
    EXPECT_EQ(c.numSets(), 1u);
    for (int i = 0; i < 16; ++i)
        c.fill(static_cast<Addr>(i) * 64, static_cast<Cycle>(i));
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(
            c.probe(static_cast<Addr>(i) * 64, 100).present);
    c.fill(16 * 64, 100); // evicts line 0 (oldest lastUse)
    EXPECT_FALSE(c.probe(0, 101).present);
}

} // namespace
} // namespace lrs
