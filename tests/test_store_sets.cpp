/**
 * @file
 * Tests for the store-set dependence predictor ([Chry98] baseline)
 * and its integration as an ordering scheme.
 */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "predictors/store_sets.hh"

namespace lrs
{
namespace
{

TEST(StoreSets, UntrainedLoadsUnconstrained)
{
    StoreSets ss(256, 16);
    ss.storeRenamed(0x1000, 10);
    EXPECT_EQ(ss.loadRenamed(0x2000), StoreSets::kNoStoreSeq);
}

TEST(StoreSets, ViolationCreatesSetAndFencesLoad)
{
    StoreSets ss(256, 16);
    ss.violation(0x2000, 0x1000);
    // The next dynamic instance of the store becomes the set's last
    // fetched store; the load must wait for it.
    ss.storeRenamed(0x1000, 42);
    EXPECT_EQ(ss.loadRenamed(0x2000), 42u);
}

TEST(StoreSets, CompletionEmptiesLfst)
{
    StoreSets ss(256, 16);
    ss.violation(0x2000, 0x1000);
    ss.storeRenamed(0x1000, 42);
    ss.storeCompleted(0x1000, 42);
    EXPECT_EQ(ss.loadRenamed(0x2000), StoreSets::kNoStoreSeq);
}

TEST(StoreSets, StaleCompletionDoesNotEmptyNewerStore)
{
    StoreSets ss(256, 16);
    ss.violation(0x2000, 0x1000);
    ss.storeRenamed(0x1000, 42);
    ss.storeRenamed(0x1000, 50); // newer instance takes over
    ss.storeCompleted(0x1000, 42);
    EXPECT_EQ(ss.loadRenamed(0x2000), 50u);
}

TEST(StoreSets, MergeRuleJoinsSets)
{
    StoreSets ss(256, 16);
    ss.violation(0x2000, 0x1000); // set A: load1 + store1
    ss.violation(0x3000, 0x1100); // set B: load2 + store2
    // Cross violation merges: load1 must now also wait for store2.
    ss.violation(0x2000, 0x1100);
    ss.storeRenamed(0x1100, 77);
    EXPECT_EQ(ss.loadRenamed(0x2000), 77u);
}

TEST(StoreSets, ClearForgets)
{
    StoreSets ss(256, 16);
    ss.violation(0x2000, 0x1000);
    ss.clear();
    ss.storeRenamed(0x1000, 42);
    EXPECT_EQ(ss.loadRenamed(0x2000), StoreSets::kNoStoreSeq);
}

TEST(StoreSets, StorageBudgetScales)
{
    EXPECT_GT(StoreSets(4096, 128).storageBits(),
              StoreSets(1024, 32).storageBits());
}

TEST(StoreSetsScheme, CutsViolationsOnRecurrentCollider)
{
    // The same recurrent collider as the Store Barrier test: store
    // sets should learn the pair and nearly eliminate violations
    // relative to the opportunistic scheme.
    std::vector<Uop> uops;
    for (int i = 0; i < 100; ++i) {
        Uop cx;
        cx.pc = 0x1000;
        cx.cls = UopClass::Complex;
        cx.dst = 2;
        uops.push_back(cx);
        Uop sta;
        sta.pc = 0x1010;
        sta.cls = UopClass::StoreAddr;
        sta.addr = 0x9000;
        sta.memSize = 8;
        sta.src1 = 2;
        uops.push_back(sta);
        Uop std_uop;
        std_uop.pc = 0x1011;
        std_uop.cls = UopClass::StoreData;
        std_uop.src1 = 2;
        uops.push_back(std_uop);
        Uop ld;
        ld.pc = 0x1020;
        ld.cls = UopClass::Load;
        ld.dst = 4;
        ld.addr = 0x9000;
        ld.memSize = 8;
        uops.push_back(ld);
    }
    MachineConfig cfg;
    cfg.scheme = OrderingScheme::Opportunistic;
    VecTrace t1("rmw", uops);
    const auto opp = runSim(t1, cfg);
    cfg.scheme = OrderingScheme::StoreSets;
    VecTrace t2("rmw", uops);
    const auto ss = runSim(t2, cfg);
    EXPECT_LT(ss.orderViolations, opp.orderViolations / 4);
    EXPECT_EQ(ss.uops, 400u);
}

TEST(StoreSetsScheme, RunsLibraryTraceDeterministically)
{
    MachineConfig cfg;
    cfg.scheme = OrderingScheme::StoreSets;
    const auto tp = TraceLibrary::byName("pm", 20000);
    const auto a = runSim(tp, cfg);
    const auto b = runSim(tp, cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.uops, 20000u);
    EXPECT_EQ(a.config, std::string("StoreSets/always-hit"));
}

} // namespace
} // namespace lrs
