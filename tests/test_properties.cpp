/**
 * @file
 * Property-based tests: the optimised structures are checked against
 * straightforward reference models on randomised inputs, and the core
 * is swept across machine configurations checking invariants that
 * must hold for any machine.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "common/random.hh"
#include "core/runner.hh"
#include "memory/cache.hh"
#include "memory/mob.hh"

namespace lrs
{
namespace
{

// ---------------------------------------------------------------
// Cache vs a plain std::list LRU reference model.
// ---------------------------------------------------------------

/** Trivially correct set-associative LRU model. */
class RefCache
{
  public:
    RefCache(std::uint64_t sets, unsigned assoc, unsigned line)
        : sets_(sets), assoc_(assoc), line_(line), ways_(sets)
    {
    }

    bool
    access(Addr addr)
    {
        const Addr tag = addr / line_;
        auto &set = ways_[tag % sets_];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (*it == tag) {
                set.erase(it);
                set.push_front(tag);
                return true;
            }
        }
        set.push_front(tag);
        if (set.size() > assoc_)
            set.pop_back();
        return false;
    }

  private:
    std::uint64_t sets_;
    unsigned assoc_;
    unsigned line_;
    std::vector<std::list<Addr>> ways_;
};

TEST(CacheProperty, MatchesReferenceLruOnRandomStream)
{
    CacheParams p{"t", 4096, 4, 64, 1, 1};
    Cache cache(p);
    RefCache ref(cache.numSets(), p.assoc, p.lineBytes);

    Rng rng(2024);
    Cycle now = 0;
    int mismatches = 0;
    for (int i = 0; i < 50000; ++i) {
        // Skewed address distribution: hot region + cold tail.
        const Addr a = rng.chance(0.7)
                           ? rng.below(8 * 1024)
                           : rng.below(1024 * 1024);
        ++now;
        const auto r = cache.access(a, now);
        const bool ref_hit = ref.access(a);
        if (!r.present)
            cache.fill(a, now); // immediate fill, like the model
        mismatches += (r.present != ref_hit);
        ASSERT_LT(mismatches, 1) << "diverged at access " << i;
    }
}

TEST(CacheProperty, InclusionNeverExceedsCapacity)
{
    CacheParams p{"t", 2048, 2, 64, 1, 1};
    Cache cache(p);
    Rng rng(7);
    Cycle now = 0;
    for (int i = 0; i < 20000; ++i) {
        const Addr a = rng.below(1 << 20);
        ++now;
        if (!cache.access(a, now).present)
            cache.fill(a, now);
    }
    // Count resident lines by probing every line we may have touched.
    std::size_t resident = 0;
    for (Addr a = 0; a < (1 << 20); a += 64)
        resident += cache.probe(a, now + 1).present;
    EXPECT_LE(resident, p.sizeBytes / p.lineBytes);
}

// ---------------------------------------------------------------
// Mob vs a naive reference on randomised store/load interleavings.
// ---------------------------------------------------------------

struct RefStore
{
    SeqNum seq;
    Addr addr;
    std::uint8_t size;
    Cycle sta = kCycleNever;
    Cycle std_t = kCycleNever;
};

TEST(MobProperty, QueriesMatchNaiveModel)
{
    Mob mob;
    std::vector<RefStore> ref;
    Rng rng(99);
    SeqNum seq = 0;
    Cycle now = 0;

    for (int step = 0; step < 20000; ++step) {
        ++now;
        const auto action = rng.below(10);
        if (action < 3) { // insert a store
            seq += 1 + rng.below(3);
            RefStore s{seq, 0x1000 + rng.below(64) * 8,
                       static_cast<std::uint8_t>(
                           4u << rng.below(2)),
                       kCycleNever, kCycleNever};
            mob.insert(s.seq, s.addr, s.size);
            ref.push_back(s);
        } else if (action < 5 && !ref.empty()) { // resolve an STA
            auto &s = ref[rng.below(ref.size())];
            if (s.sta == kCycleNever) {
                s.sta = now;
                mob.staExecuted(s.seq, now);
            }
        } else if (action < 7 && !ref.empty()) { // resolve an STD
            auto &s = ref[rng.below(ref.size())];
            if (s.std_t == kCycleNever) {
                s.std_t = now;
                mob.stdExecuted(s.seq, now);
            }
        } else if (action < 8 && !ref.empty()) { // retire oldest
            const auto &s = ref.front();
            if (s.sta != kCycleNever && s.std_t != kCycleNever) {
                mob.retire(s.seq);
                ref.erase(ref.begin());
            }
        } else { // query as a hypothetical load
            const SeqNum lseq = seq + 1 + rng.below(4);
            const Addr laddr = 0x1000 + rng.below(64) * 8;
            const std::uint8_t lsize = 8;

            bool any_unknown = false, any_incomplete = false;
            const RefStore *youngest = nullptr;
            unsigned dist = 0, found_dist = 0;
            for (auto it = ref.rbegin(); it != ref.rend(); ++it) {
                if (it->seq >= lseq)
                    continue;
                ++dist;
                const bool addr_known =
                    it->sta != kCycleNever && it->sta <= now;
                const bool data_known =
                    it->std_t != kCycleNever && it->std_t <= now;
                any_unknown |= !addr_known;
                any_incomplete |= !(addr_known && data_known);
                if (!youngest &&
                    rangesOverlap(it->addr, it->size, laddr, lsize)) {
                    youngest = &*it;
                    found_dist = dist;
                }
            }
            ASSERT_EQ(mob.anyUnknownAddrOlder(lseq, now), any_unknown);
            ASSERT_EQ(mob.anyIncompleteOlder(lseq, now),
                      any_incomplete);
            const auto *m =
                mob.youngestOverlapOlder(lseq, laddr, lsize);
            ASSERT_EQ(m != nullptr, youngest != nullptr);
            if (m) {
                ASSERT_EQ(m->seq, youngest->seq);
                ASSERT_EQ(mob.overlapDistance(lseq, laddr, lsize),
                          found_dist);
            }
        }
    }
}

// ---------------------------------------------------------------
// Core invariants across machine configurations.
// ---------------------------------------------------------------

using MachineSweepParam =
    std::tuple<int /*window*/, int /*intUnits*/, int /*memUnits*/,
               OrderingScheme>;

class MachineSweep
    : public ::testing::TestWithParam<MachineSweepParam>
{
};

TEST_P(MachineSweep, InvariantsHold)
{
    const auto [window, ints, mems, scheme] = GetParam();
    MachineConfig cfg;
    cfg.schedWindow = window;
    cfg.intUnits = ints;
    cfg.memUnits = mems;
    cfg.scheme = scheme;
    cfg.cht.trackDistance = true;

    const auto tp = TraceLibrary::byName("pm", 15000);
    const auto r = runSim(tp, cfg);

    // Every uop retires exactly once.
    EXPECT_EQ(r.uops, 15000u);
    // Every load is classified into exactly one bucket.
    EXPECT_EQ(r.classifiedLoads(), r.loads);
    // Retire width bounds IPC.
    EXPECT_LE(r.ipc(), 6.0);
    // HMP buckets partition the loads.
    EXPECT_EQ(r.ahPh + r.ahPm + r.amPh + r.amPm, r.loads);
    EXPECT_EQ(r.amPh + r.amPm, r.l1Misses);
    // Perfect disambiguation never pays.
    if (scheme == OrderingScheme::Perfect) {
        EXPECT_EQ(r.collisionPenalties, 0u);
        EXPECT_EQ(r.orderViolations, 0u);
    }
    // Determinism.
    const auto again = runSim(tp, cfg);
    EXPECT_EQ(again.cycles, r.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MachineSweep,
    ::testing::Combine(
        ::testing::Values(8, 32, 128),
        ::testing::Values(2, 4),
        ::testing::Values(1, 2),
        ::testing::Values(OrderingScheme::Traditional,
                          OrderingScheme::Opportunistic,
                          OrderingScheme::Exclusive,
                          OrderingScheme::Perfect,
                          OrderingScheme::StoreBarrier)),
    [](const auto &info) {
        return "w" + std::to_string(std::get<0>(info.param)) + "_i" +
               std::to_string(std::get<1>(info.param)) + "_m" +
               std::to_string(std::get<2>(info.param)) + "_" +
               orderingSchemeName(std::get<3>(info.param));
    });

TEST(CoreProperty, MoreResourcesNeverHurtMuch)
{
    // Weak monotonicity: growing the window or the EU count must not
    // slow the machine down by more than scheduling noise.
    const auto tp = TraceLibrary::byName("gcc", 20000);
    MachineConfig small;
    small.schedWindow = 16;
    MachineConfig big;
    big.schedWindow = 64;
    const auto rs = runSim(tp, small);
    const auto rb = runSim(tp, big);
    EXPECT_LE(rb.cycles, rs.cycles * 101 / 100);

    MachineConfig narrow;
    narrow.intUnits = 1;
    MachineConfig wide;
    wide.intUnits = 4;
    const auto rn = runSim(tp, narrow);
    const auto rw = runSim(tp, wide);
    EXPECT_LE(rw.cycles, rn.cycles * 101 / 100);
}

TEST(CoreProperty, CollisionPenaltyMonotonicInOpportunistic)
{
    // Raising the collision penalty must not speed up a scheme that
    // pays it.
    const auto tp = TraceLibrary::byName("javac", 20000);
    MachineConfig cfg;
    cfg.scheme = OrderingScheme::Opportunistic;
    cfg.collisionPenalty = 2;
    const auto cheap = runSim(tp, cfg);
    cfg.collisionPenalty = 16;
    const auto dear = runSim(tp, cfg);
    EXPECT_GE(dear.cycles, cheap.cycles);
}

} // namespace
} // namespace lrs
