/**
 * @file
 * Tests for binary trace serialisation: round-trip fidelity, header
 * validation, and malformed-input rejection.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/library.hh"
#include "trace/serialize.hh"

namespace lrs
{
namespace
{

TEST(Serialize, RoundTripsGeneratedTrace)
{
    auto orig =
        TraceLibrary::make(TraceLibrary::byName("wd", 20000));
    std::stringstream ss;
    writeTrace(ss, *orig);
    auto back = readTrace(ss);

    ASSERT_EQ(back->size(), orig->size());
    EXPECT_EQ(back->name(), orig->name());
    for (std::size_t i = 0; i < orig->size(); ++i) {
        const Uop &a = orig->uops()[i];
        const Uop &b = back->uops()[i];
        ASSERT_EQ(a.pc, b.pc) << i;
        ASSERT_EQ(a.cls, b.cls) << i;
        ASSERT_EQ(a.src1, b.src1) << i;
        ASSERT_EQ(a.src2, b.src2) << i;
        ASSERT_EQ(a.dst, b.dst) << i;
        ASSERT_EQ(a.addr, b.addr) << i;
        ASSERT_EQ(a.memSize, b.memSize) << i;
        ASSERT_EQ(a.taken, b.taken) << i;
    }
}

TEST(Serialize, EmptyTraceRoundTrips)
{
    VecTrace empty("nothing", {});
    std::stringstream ss;
    writeTrace(ss, empty);
    auto back = readTrace(ss);
    EXPECT_EQ(back->size(), 0u);
    EXPECT_EQ(back->name(), "nothing");
}

TEST(Serialize, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "NOTATRACEFILE.............";
    EXPECT_THROW(readTrace(ss), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream)
{
    auto orig = TraceLibrary::make(TraceLibrary::byName("wd", 500));
    std::stringstream ss;
    writeTrace(ss, *orig);
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_THROW(readTrace(cut), std::runtime_error);
}

TEST(Serialize, RejectsCorruptUopClass)
{
    VecTrace t("x", std::vector<Uop>(1));
    std::stringstream ss;
    writeTrace(ss, t);
    std::string bytes = ss.str();
    // The class byte of the first uop sits right after the 8-byte
    // magic, 4-byte name length, 1-byte name, 8-byte count, 8-byte pc.
    const std::size_t cls_off = 8 + 4 + 1 + 8 + 8;
    bytes[cls_off] = 0x7f;
    std::stringstream bad(bytes);
    EXPECT_THROW(readTrace(bad), std::runtime_error);
}

TEST(Serialize, TruncationAtEveryByteOffsetFailsCleanly)
{
    // Cutting the stream at ANY byte must yield a TraceError in
    // strict mode — never a crash, hang, or silently short trace.
    auto orig = TraceLibrary::make(TraceLibrary::byName("wd", 8));
    std::stringstream ss;
    writeTrace(ss, *orig);
    const std::string full = ss.str();
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        std::stringstream is(full.substr(0, cut));
        EXPECT_THROW(readTrace(is), TraceError) << "cut at " << cut;
    }
    // The full stream, of course, still reads.
    std::stringstream ok(full);
    EXPECT_EQ(readTrace(ok)->size(), orig->size());
}

TEST(Serialize, TruncatedRecordsRecoverWithAccounting)
{
    auto orig = TraceLibrary::make(TraceLibrary::byName("wd", 100));
    std::stringstream ss;
    writeTrace(ss, *orig);
    const std::string full = ss.str();
    // Chop mid-record: 10 whole records plus half of the 11th.
    std::stringstream cut(
        full.substr(0, full.size() - 89 * kTraceRecordBytes - 11));
    TraceReadOptions opts;
    opts.recover = true;
    TraceReadStats st;
    auto back = readTrace(cut, opts, &st);
    EXPECT_LE(back->size(), 10u); // store re-pairing may drop more
    EXPECT_EQ(st.missingRecords, 100u - st.recordsRead);
    EXPECT_EQ(st.truncatedTailBytes, kTraceRecordBytes - 11);
}

TEST(Serialize, RejectsOversizedNameLength)
{
    // Magic + a name length that would dwarf any real stream: the
    // reader must refuse before trying to allocate it.
    std::string bytes = "LRSTRC01";
    const std::uint32_t huge = 0x7fffffffu;
    bytes.append(reinterpret_cast<const char *>(&huge), 4);
    bytes.append(64, 'x');
    std::stringstream ss(bytes);
    EXPECT_THROW(readTrace(ss), TraceError);
}

TEST(Serialize, RejectsCorruptedHeaderEvenInRecoveryMode)
{
    auto orig = TraceLibrary::make(TraceLibrary::byName("wd", 50));
    std::stringstream ss;
    writeTrace(ss, *orig);
    std::string bytes = ss.str();
    bytes[3] ^= 0xff; // damage the magic
    TraceReadOptions opts;
    opts.recover = true;
    std::stringstream bad(bytes);
    EXPECT_THROW(readTrace(bad, opts), TraceError);
}

TEST(Serialize, RecoverySkipsCorruptRecordAndKeepsFraming)
{
    auto orig = TraceLibrary::make(TraceLibrary::byName("wd", 200));
    std::stringstream ss;
    writeTrace(ss, *orig);
    std::string bytes = ss.str();
    const std::size_t header = 8 + 4 + orig->name().size() + 8;
    // Wreck record 20's class byte in place: framing is preserved.
    bytes[header + 20 * kTraceRecordBytes + 8] = 0x7f;
    TraceReadOptions opts;
    opts.recover = true;
    TraceReadStats st;
    std::stringstream is(bytes);
    auto back = readTrace(is, opts, &st);
    EXPECT_EQ(st.skippedRecords, 1u);
    EXPECT_EQ(st.resyncBytes, 0u); // no byte-hunt needed
    EXPECT_EQ(st.recordsRead, 199u);
}

TEST(Serialize, RecoveryResyncsAfterInsertedGarbage)
{
    auto orig = TraceLibrary::make(TraceLibrary::byName("wd", 200));
    std::stringstream ss;
    writeTrace(ss, *orig);
    std::string bytes = ss.str();
    const std::size_t header = 8 + 4 + orig->name().size() + 8;
    // Insert garbage BETWEEN records: framing itself is now broken
    // and the reader must slide byte-by-byte to re-lock.
    bytes.insert(header + 10 * kTraceRecordBytes,
                 std::string(7, '\x7f'));
    TraceReadOptions opts;
    opts.recover = true;
    TraceReadStats st;
    std::stringstream is(bytes);
    auto back = readTrace(is, opts, &st);
    EXPECT_GT(st.resyncBytes, 0u);
    EXPECT_GT(st.recordsRead, 150u);
    EXPECT_GT(back->size(), 150u);
}

TEST(Serialize, RecoveryNeverLeavesHalfAStore)
{
    // Whatever recovery drops, the surviving stream must keep the
    // STA-immediately-followed-by-STD shape the core requires.
    auto orig = TraceLibrary::make(TraceLibrary::byName("wd", 5000));
    std::stringstream ss;
    writeTrace(ss, *orig);
    std::string bytes = ss.str();
    const std::size_t header = 8 + 4 + orig->name().size() + 8;
    for (std::size_t r = 3; r < 5000; r += 97)
        bytes[header + r * kTraceRecordBytes + 8] = 0x7f;
    TraceReadOptions opts;
    opts.recover = true;
    TraceReadStats st;
    std::stringstream is(bytes);
    auto back = readTrace(is, opts, &st);
    ASSERT_GT(st.skippedRecords, 0u);
    const auto &uops = back->uops();
    for (std::size_t i = 0; i < uops.size(); ++i) {
        if (uops[i].isSta()) {
            ASSERT_LT(i + 1, uops.size()) << "trailing lone STA";
            ASSERT_TRUE(uops[i + 1].isStd()) << "unpaired STA at " << i;
        } else if (uops[i].isStd()) {
            ASSERT_TRUE(i > 0 && uops[i - 1].isSta())
                << "unpaired STD at " << i;
        }
    }
}

TEST(Serialize, FileRoundTrip)
{
    auto orig = TraceLibrary::make(TraceLibrary::byName("li", 5000));
    const std::string path = "/tmp/lrs_test_trace.lrstrc";
    writeTraceFile(path, *orig);
    auto back = readTraceFile(path);
    EXPECT_EQ(back->size(), 5000u);
    EXPECT_EQ(back->name(), "li");
}

TEST(Serialize, MissingFileThrows)
{
    EXPECT_THROW(readTraceFile("/nonexistent/path.lrstrc"),
                 std::runtime_error);
}

} // namespace
} // namespace lrs
