/**
 * @file
 * Tests for binary trace serialisation: round-trip fidelity, header
 * validation, and malformed-input rejection.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/library.hh"
#include "trace/serialize.hh"

namespace lrs
{
namespace
{

TEST(Serialize, RoundTripsGeneratedTrace)
{
    auto orig =
        TraceLibrary::make(TraceLibrary::byName("wd", 20000));
    std::stringstream ss;
    writeTrace(ss, *orig);
    auto back = readTrace(ss);

    ASSERT_EQ(back->size(), orig->size());
    EXPECT_EQ(back->name(), orig->name());
    for (std::size_t i = 0; i < orig->size(); ++i) {
        const Uop &a = orig->uops()[i];
        const Uop &b = back->uops()[i];
        ASSERT_EQ(a.pc, b.pc) << i;
        ASSERT_EQ(a.cls, b.cls) << i;
        ASSERT_EQ(a.src1, b.src1) << i;
        ASSERT_EQ(a.src2, b.src2) << i;
        ASSERT_EQ(a.dst, b.dst) << i;
        ASSERT_EQ(a.addr, b.addr) << i;
        ASSERT_EQ(a.memSize, b.memSize) << i;
        ASSERT_EQ(a.taken, b.taken) << i;
    }
}

TEST(Serialize, EmptyTraceRoundTrips)
{
    VecTrace empty("nothing", {});
    std::stringstream ss;
    writeTrace(ss, empty);
    auto back = readTrace(ss);
    EXPECT_EQ(back->size(), 0u);
    EXPECT_EQ(back->name(), "nothing");
}

TEST(Serialize, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "NOTATRACEFILE.............";
    EXPECT_THROW(readTrace(ss), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream)
{
    auto orig = TraceLibrary::make(TraceLibrary::byName("wd", 500));
    std::stringstream ss;
    writeTrace(ss, *orig);
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() / 2));
    EXPECT_THROW(readTrace(cut), std::runtime_error);
}

TEST(Serialize, RejectsCorruptUopClass)
{
    VecTrace t("x", std::vector<Uop>(1));
    std::stringstream ss;
    writeTrace(ss, t);
    std::string bytes = ss.str();
    // The class byte of the first uop sits right after the 8-byte
    // magic, 4-byte name length, 1-byte name, 8-byte count, 8-byte pc.
    const std::size_t cls_off = 8 + 4 + 1 + 8 + 8;
    bytes[cls_off] = 0x7f;
    std::stringstream bad(bytes);
    EXPECT_THROW(readTrace(bad), std::runtime_error);
}

TEST(Serialize, FileRoundTrip)
{
    auto orig = TraceLibrary::make(TraceLibrary::byName("li", 5000));
    const std::string path = "/tmp/lrs_test_trace.lrstrc";
    writeTraceFile(path, *orig);
    auto back = readTraceFile(path);
    EXPECT_EQ(back->size(), 5000u);
    EXPECT_EQ(back->name(), "li");
}

TEST(Serialize, MissingFileThrows)
{
    EXPECT_THROW(readTraceFile("/nonexistent/path.lrstrc"),
                 std::runtime_error);
}

} // namespace
} // namespace lrs
