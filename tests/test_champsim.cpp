/**
 * @file
 * Hostile-input tests for the ChampSim trace adapter
 * (trace/champsim_reader.hh, docs/TRACES.md): decode correctness,
 * strict/recovery discipline, resource caps, the every-byte
 * truncation sweep, the random-corruption sweep, a structure-aware
 * corpus-mutation fuzz pass, and the snapshot content-identity
 * contract. The committed golden fixture (tests/data/golden.champsim)
 * pins the byte-level behaviour.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

#include "common/diag.hh"
#include "core/core.hh"
#include "core/snapshot.hh"
#include "trace/champsim_reader.hh"
#include "trace/library.hh"

namespace lrs
{
namespace
{

#ifndef LRS_TEST_DATA_DIR
#define LRS_TEST_DATA_DIR "tests/data"
#endif

const std::string kGolden =
    std::string(LRS_TEST_DATA_DIR) + "/golden.champsim";

/** Builder for one 64-byte input_instr record. */
struct Rec
{
    std::uint64_t ip = 0x400000;
    std::uint8_t isBranch = 0;
    std::uint8_t taken = 0;
    std::uint8_t dreg[2] = {0, 0};
    std::uint8_t sreg[4] = {0, 0, 0, 0};
    std::uint64_t dmem[2] = {0, 0};
    std::uint64_t smem[4] = {0, 0, 0, 0};

    void appendTo(std::string &out) const
    {
        std::uint8_t b[kChampSimRecordBytes] = {};
        std::memcpy(b + 0, &ip, 8);
        b[8] = isBranch;
        b[9] = taken;
        std::memcpy(b + 10, dreg, 2);
        std::memcpy(b + 12, sreg, 4);
        std::memcpy(b + 16, dmem, 16);
        std::memcpy(b + 32, smem, 32);
        out.append(reinterpret_cast<const char *>(b),
                   kChampSimRecordBytes);
    }
};

std::string
bytesOf(const std::vector<Rec> &recs)
{
    std::string s;
    for (const Rec &r : recs)
        r.appendTo(s);
    return s;
}

std::unique_ptr<VecTrace>
read(const std::string &bytes, ChampSimReadOptions opts = {},
     TraceReadStats *stats = nullptr, ChampSimTraceInfo *info = nullptr)
{
    std::istringstream is(bytes);
    return readChampSimTrace(is, "t", opts, stats, info);
}

DiagCode
codeOf(const TraceError &e)
{
    return e.diags().empty() ? DiagCode::Internal : e.diags()[0].code;
}

/** Expect a TraceError carrying @p code. */
#define EXPECT_TRACE_ERROR(expr, wanted)                               \
    do {                                                               \
        try {                                                          \
            (void)(expr);                                              \
            FAIL() << "expected TraceError "                           \
                   << diagCodeName(wanted);                            \
        } catch (const TraceError &e) {                                \
            EXPECT_EQ(codeOf(e), wanted) << e.what();                  \
        }                                                              \
    } while (0)

std::string
readFileBytes(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(is)) << path;
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

// ---------------------------------------------------------------- decode

TEST(ChampSimDecode, MixedRecordOrderAndPcSharing)
{
    Rec r;
    r.ip = 0x1234;
    r.isBranch = 1;
    r.taken = 1;
    r.smem[0] = 0x8000;
    r.dmem[0] = 0x9000;
    r.dreg[0] = 3;
    r.sreg[0] = 4;
    r.sreg[1] = 5;
    const auto t = read(bytesOf({r}));
    ASSERT_EQ(t->size(), 4u); // Load, STA, STD, Branch
    const Uop &ld = t->uops()[0];
    const Uop &sta = t->uops()[1];
    const Uop &std_ = t->uops()[2];
    const Uop &br = t->uops()[3];
    EXPECT_EQ(ld.cls, UopClass::Load);
    EXPECT_EQ(ld.addr, 0x8000u);
    EXPECT_EQ(sta.cls, UopClass::StoreAddr);
    EXPECT_EQ(sta.addr, 0x9000u);
    EXPECT_EQ(std_.cls, UopClass::StoreData);
    EXPECT_EQ(br.cls, UopClass::Branch);
    EXPECT_TRUE(br.taken);
    // Instruction-granularity predictor indexing: one pc for all.
    for (std::size_t i = 0; i < t->size(); ++i)
        EXPECT_EQ(t->uops()[i].pc, 0x1234u);
}

TEST(ChampSimDecode, StaStdAlwaysAdjacent)
{
    Rec r;
    r.dmem[0] = 0x9000;
    r.dmem[1] = 0xa000;
    r.smem[0] = 0x8000;
    const auto t = read(bytesOf({r}));
    for (std::size_t i = 0; i < t->size(); ++i) {
        if (t->uops()[i].cls == UopClass::StoreAddr) {
            ASSERT_LT(i + 1, t->size());
            EXPECT_EQ(t->uops()[i + 1].cls, UopClass::StoreData);
        }
    }
}

TEST(ChampSimDecode, RegisterMapping)
{
    // Stack pointer keeps its identity; 0 means none; nothing else
    // may alias the stack-pointer slot.
    Rec sp;
    sp.sreg[0] = 6; // REG_STACK_POINTER in the Pin encoding
    sp.dreg[0] = 1;
    const auto t1 = read(bytesOf({sp}));
    ASSERT_EQ(t1->size(), 1u);
    EXPECT_EQ(t1->uops()[0].src1, kStackPtrReg);

    for (unsigned raw = 1; raw < 64; ++raw) {
        if (raw == 6)
            continue;
        Rec r;
        r.sreg[0] = static_cast<std::uint8_t>(raw);
        const auto t = read(bytesOf({r}));
        ASSERT_EQ(t->size(), 1u);
        EXPECT_NE(t->uops()[0].src1, kStackPtrReg) << "raw " << raw;
        EXPECT_GE(t->uops()[0].src1, 0) << "raw " << raw;
    }

    Rec none; // all-zero registers: no operands
    const auto t0 = read(bytesOf({none}));
    ASSERT_EQ(t0->size(), 1u);
    EXPECT_EQ(t0->uops()[0].src1, -1);
    EXPECT_EQ(t0->uops()[0].dst, -1);
}

TEST(ChampSimDecode, HighRegistersRouteToFp)
{
    Rec r;
    r.sreg[0] = 40; // vector/x87 state in the Pin encoding
    r.dreg[0] = 41;
    const auto t = read(bytesOf({r}));
    ASSERT_EQ(t->size(), 1u);
    EXPECT_EQ(t->uops()[0].cls, UopClass::FpAlu);
    EXPECT_GE(t->uops()[0].dst, static_cast<std::int8_t>(kNumIntRegs));
    EXPECT_LT(t->uops()[0].dst,
              static_cast<std::int8_t>(kNumIntRegs + kNumFpRegs));
}

TEST(ChampSimDecode, UopBoundPerRecord)
{
    // Worst case: 4 loads + 2 stores (STA+STD each) + branch = 9.
    Rec r;
    r.isBranch = 1;
    for (int i = 0; i < 4; ++i)
        r.smem[i] = 0x1000 + 8 * static_cast<unsigned>(i);
    for (int j = 0; j < 2; ++j)
        r.dmem[j] = 0x2000 + 8 * static_cast<unsigned>(j);
    const auto t = read(bytesOf({r}));
    EXPECT_EQ(t->size(), 9u);
}

// ---------------------------------------------------------- strict mode

TEST(ChampSimStrict, RejectsEachImplausibility)
{
    Rec ok;
    ok.smem[0] = 0x8000;

    Rec zero_ip = ok;
    zero_ip.ip = 0;
    EXPECT_TRACE_ERROR(read(bytesOf({ok, zero_ip})),
                       DiagCode::TraceBadRecord);

    Rec bad_branch = ok;
    bad_branch.isBranch = 7;
    EXPECT_TRACE_ERROR(read(bytesOf({bad_branch})),
                       DiagCode::TraceBadRecord);

    Rec taken_nonbranch = ok;
    taken_nonbranch.taken = 1;
    EXPECT_TRACE_ERROR(read(bytesOf({taken_nonbranch})),
                       DiagCode::TraceBadRecord);

    Rec allones = ok;
    allones.smem[2] = ~std::uint64_t(0);
    EXPECT_TRACE_ERROR(read(bytesOf({allones})),
                       DiagCode::TraceBadRecord);
}

TEST(ChampSimStrict, ErrorNamesRecordAndByteOffset)
{
    Rec ok;
    ok.smem[0] = 0x8000;
    Rec bad = ok;
    bad.isBranch = 9;
    try {
        read(bytesOf({ok, ok, ok, bad}));
        FAIL() << "expected TraceError";
    } catch (const TraceError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("record 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("byte offset 192"), std::string::npos)
            << msg;
    }
}

TEST(ChampSimStrict, TornTail)
{
    Rec ok;
    ok.smem[0] = 0x8000;
    std::string bytes = bytesOf({ok, ok});
    bytes.resize(bytes.size() - 10);
    EXPECT_TRACE_ERROR(read(bytes), DiagCode::TraceTruncated);

    ChampSimReadOptions rec;
    rec.read.recover = true;
    TraceReadStats st;
    const auto t = read(bytes, rec, &st);
    EXPECT_EQ(t->size(), 1u);
    EXPECT_EQ(st.truncatedTailBytes, 54u);
}

TEST(ChampSimStrict, EmptyAndGarbageSources)
{
    EXPECT_TRACE_ERROR(read(std::string()), DiagCode::TraceTruncated);
    EXPECT_TRACE_ERROR(read(std::string(13, 'x')),
                       DiagCode::TraceTruncated);

    // All-garbage: strict rejects the first record; recovery with an
    // unlimited budget still refuses to fabricate an empty trace.
    std::mt19937_64 rng(99);
    std::string junk(kChampSimRecordBytes * 16, '\0');
    for (char &c : junk)
        c = static_cast<char>(rng());
    junk[8] = 7; // ensure record 0 is implausible even by luck
    EXPECT_TRACE_ERROR(read(junk), DiagCode::TraceBadRecord);
    ChampSimReadOptions rec;
    rec.read.recover = true;
    EXPECT_TRACE_ERROR(read(junk, rec), DiagCode::TraceBadRecord);
}

// -------------------------------------------------------------- recovery

TEST(ChampSimRecover, InPlaceCorruptionCostsOneRecord)
{
    std::vector<Rec> recs(10);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        recs[i].ip = 0x1000 + 4 * i;
        recs[i].smem[0] = 0x8000 + 8 * i;
    }
    std::string bytes = bytesOf(recs);
    bytes[5 * kChampSimRecordBytes + 8] = 3; // is_branch of record 5

    ChampSimReadOptions rec;
    rec.read.recover = true;
    TraceReadStats st;
    const auto t = read(bytes, rec, &st);
    EXPECT_EQ(t->size(), 9u);
    EXPECT_EQ(st.recordsRead, 9u);
    EXPECT_EQ(st.skippedRecords, 1u);
    EXPECT_EQ(st.resyncBytes, 0u); // framing never lost
}

TEST(ChampSimRecover, SpliceResyncsByteByByte)
{
    // Records whose ip byte 3 is 7: any window misaligned by 5 bytes
    // puts that 7 where is_branch lives, so inserted garbage forces
    // the reader off the record framing and into the byte-slide hunt.
    std::vector<Rec> recs(12);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        recs[i].ip = 0x07000000 + 4 * i;
        recs[i].smem[0] = 0x8000 + 8 * i;
    }
    std::string bytes = bytesOf(recs);
    bytes.insert(3 * kChampSimRecordBytes, 5, '\xff');

    ChampSimReadOptions rec;
    rec.read.recover = true;
    TraceReadStats st;
    const auto t = read(bytes, rec, &st);
    EXPECT_GE(st.recordsRead, 9u);
    EXPECT_GT(st.resyncBytes, 0u);
    EXPECT_GT(t->size(), 0u);
}

TEST(ChampSimRecover, BudgetBoundsTheDamage)
{
    std::vector<Rec> recs(20);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        recs[i].ip = 0x1000 + 4 * i;
        recs[i].smem[0] = 0x8000;
    }
    std::string bytes = bytesOf(recs);
    for (std::size_t i = 0; i < 20; i += 2)
        bytes[i * kChampSimRecordBytes + 8] = 5;

    ChampSimReadOptions rec;
    rec.read.recover = true;
    rec.read.badRecordBudget = 3;
    EXPECT_TRACE_ERROR(read(bytes, rec),
                       DiagCode::TraceBudgetExceeded);
}

// ------------------------------------------------------------------ caps

TEST(ChampSimCaps, MaxInstructionsTruncatesCleanly)
{
    std::vector<Rec> recs(50);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        recs[i].ip = 0x1000 + 4 * i;
        recs[i].smem[0] = 0x8000;
    }
    ChampSimReadOptions opts;
    opts.maxInstructions = 7;
    ChampSimTraceInfo info;
    const auto t = read(bytesOf(recs), opts, nullptr, &info);
    EXPECT_EQ(info.instructions, 7u);
    EXPECT_EQ(t->size(), 7u);
}

TEST(ChampSimCaps, MaxPages)
{
    std::vector<Rec> recs(10);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        recs[i].ip = 0x1000 + 4 * i;
        recs[i].smem[0] = 0x100000 + (i << 12); // new page each
    }
    ChampSimReadOptions opts;
    opts.maxPages = 4;
    EXPECT_TRACE_ERROR(read(bytesOf(recs), opts),
                       DiagCode::TraceLimitExceeded);
}

TEST(ChampSimCaps, MaxFileBytes)
{
    std::vector<Rec> recs(100);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        recs[i].ip = 0x1000 + 4 * i;
        recs[i].smem[0] = 0x8000;
    }
    ChampSimReadOptions opts;
    opts.maxFileBytes = 1000;
    EXPECT_TRACE_ERROR(read(bytesOf(recs), opts),
                       DiagCode::TraceLimitExceeded);
}

// ------------------------------------------------------ golden fixture

TEST(ChampSimGolden, FixtureDecodesToPinnedShape)
{
    TraceReadStats st;
    ChampSimTraceInfo info;
    ChampSimReadOptions opts;
    std::ifstream is(kGolden, std::ios::binary);
    ASSERT_TRUE(static_cast<bool>(is)) << kGolden;
    const auto t = readChampSimTrace(is, "golden", opts, &st, &info);
    EXPECT_EQ(info.instructions, 512u);
    EXPECT_EQ(info.bytes, 32768u);
    EXPECT_EQ(info.crc, 0x0bb4082eu);
    EXPECT_EQ(info.pages, 68u);
    EXPECT_EQ(t->size(), 796u);
    EXPECT_EQ(st.skippedRecords, 0u);
    EXPECT_EQ(t->contentBytes(), 32768u);
    EXPECT_EQ(t->contentCrc(), 0x0bb4082eu);
}

TEST(ChampSimGolden, EveryByteTruncationSweep)
{
    // The exhaustive torn-download drill: cutting the fixture at
    // EVERY byte length must behave exactly per contract — the valid
    // whole-record prefix decodes, the tail is a strict error /
    // accounted recovery, and nothing crashes or over-produces.
    const std::string full = readFileBytes(kGolden);
    ASSERT_EQ(full.size(), 32768u);
    for (std::size_t len = 0; len <= full.size(); ++len) {
        const std::string cut = full.substr(0, len);
        const std::size_t whole = len / kChampSimRecordBytes;
        // Strict: clean multiple of 64 reads fully, else truncated.
        if (len > 0 && len % kChampSimRecordBytes == 0) {
            ChampSimTraceInfo info;
            (void)read(cut, {}, nullptr, &info);
            EXPECT_EQ(info.instructions, whole);
        } else {
            EXPECT_TRACE_ERROR(read(cut), DiagCode::TraceTruncated);
        }
        // Recovery: whole records survive, the tail is accounted.
        ChampSimReadOptions rec;
        rec.read.recover = true;
        if (whole == 0) {
            EXPECT_TRACE_ERROR(read(cut, rec),
                               DiagCode::TraceTruncated);
        } else {
            TraceReadStats st;
            ChampSimTraceInfo info;
            (void)read(cut, rec, &st, &info);
            EXPECT_EQ(info.instructions, whole);
            EXPECT_EQ(st.truncatedTailBytes,
                      len % kChampSimRecordBytes);
        }
    }
}

TEST(ChampSimGolden, RandomByteCorruptionSweep)
{
    // 400 deterministic single-byte corruptions: the reader must
    // either produce a bounded trace or throw a classified
    // TraceError — nothing else may escape, in either mode.
    const std::string full = readFileBytes(kGolden);
    const std::uint64_t bound =
        (full.size() / kChampSimRecordBytes) * 13;
    std::mt19937_64 rng(2026);
    for (int k = 0; k < 400; ++k) {
        std::string mut = full;
        const std::size_t at = rng() % mut.size();
        mut[at] = static_cast<char>(rng());
        for (const bool recover : {false, true}) {
            ChampSimReadOptions opts;
            opts.read.recover = recover;
            try {
                const auto t = read(mut, opts);
                EXPECT_LE(t->size(), bound);
            } catch (const TraceError &) {
                // classified: the contract
            }
        }
    }
}

TEST(ChampSimGolden, CorpusMutationFuzz)
{
    // In-process cousin of tools/lrs_tracefuzz: stacked
    // structure-aware mutations (field edits, record splices, torn
    // tails, garbage) against both reader modes. Only classified
    // TraceErrors may escape.
    const std::string full = readFileBytes(kGolden);
    std::mt19937_64 rng(7);
    for (int iter = 0; iter < 800; ++iter) {
        std::string m = full.substr(0, 4096); // keep iterations fast
        const int mutations = 1 + static_cast<int>(rng() % 4);
        for (int k = 0; k < mutations && !m.empty(); ++k) {
            switch (rng() % 5) {
            case 0:
                m[rng() % m.size()] ^=
                    static_cast<char>(1u << (rng() % 8));
                break;
            case 1: {
                const std::size_t at = rng() % m.size();
                m.erase(at, 1 + rng() % 90);
                break;
            }
            case 2:
                m.resize(rng() % (m.size() + 1));
                break;
            case 3: {
                const std::size_t n = 1 + rng() % 128;
                for (std::size_t i = 0; i < n; ++i)
                    m.push_back(static_cast<char>(rng()));
                break;
            }
            case 4: {
                if (m.size() < 8)
                    break;
                const std::uint64_t v =
                    (rng() % 2) ? ~std::uint64_t(0) : 0;
                std::memcpy(&m[(rng() % (m.size() / 8)) * 8], &v, 8);
                break;
            }
            }
        }
        for (const bool recover : {false, true}) {
            ChampSimReadOptions opts;
            opts.read.recover = recover;
            opts.read.badRecordBudget = rng() % 64;
            try {
                (void)read(m, opts);
            } catch (const TraceError &) {
            }
        }
    }
}

TEST(ChampSimGolden, IdentityCrcPinsContent)
{
    const std::string full = readFileBytes(kGolden);
    const auto a = read(full);
    const auto b = read(full);
    EXPECT_EQ(a->contentBytes(), b->contentBytes());
    EXPECT_EQ(a->contentCrc(), b->contentCrc());

    std::string tweaked = full;
    tweaked[1000] = static_cast<char>(tweaked[1000] ^ 0x40);
    const auto c = read(tweaked);
    EXPECT_NE(a->contentCrc(), c->contentCrc());
}

// ------------------------------------------------------- file sniffing

TEST(ChampSimSniff, RecognisesFixtureRejectsOthers)
{
    EXPECT_TRUE(looksLikeChampSimFile(kGolden));
    EXPECT_FALSE(looksLikeChampSimFile(kGolden + ".does-not-exist"));

    const std::string txt =
        ::testing::TempDir() + "champsim_sniff.txt";
    {
        std::ofstream os(txt, std::ios::binary);
        os << "LRSJ1 00000000 {\"kind\":\"journal\"}\n";
    }
    EXPECT_FALSE(looksLikeChampSimFile(txt));
}

// -------------------------------------------------- library integration

TEST(ChampSimLibrary, SpecRunsThroughByNameAndMake)
{
    const TraceParams p =
        TraceLibrary::byName("champsim:" + kGolden, 100);
    EXPECT_EQ(p.group, TraceGroup::External);
    EXPECT_EQ(p.champsimPath, kGolden);
    const auto t = TraceLibrary::make(p);
    // length caps instructions, like --len (<= 9 uops each).
    EXPECT_GT(t->size(), 0u);
    EXPECT_LE(t->size(), 100u * 9u);
    EXPECT_NE(t->contentCrc(), 0u);
}

TEST(ChampSimLibrary, RejectsEmptyAndStdinSpecs)
{
    EXPECT_THROW(TraceLibrary::byName("champsim:", 100),
                 std::invalid_argument);
    EXPECT_THROW(TraceLibrary::byName("champsim:-", 100),
                 std::invalid_argument);
}

TEST(ChampSimLibrary, AdversarialFamiliesExist)
{
    for (const std::string &name :
         {std::string("spoiler4k"), std::string("flipper"),
          std::string("gcmark")}) {
        const TraceParams p = TraceLibrary::byName(name, 20000);
        EXPECT_EQ(p.group, TraceGroup::Adversarial) << name;
        const auto t = TraceLibrary::make(p);
        EXPECT_EQ(t->size(), 20000u) << name;
    }
    // Generation is deterministic: same name, same bytes.
    const auto a =
        TraceLibrary::make(TraceLibrary::byName("spoiler4k", 5000));
    const auto b =
        TraceLibrary::make(TraceLibrary::byName("spoiler4k", 5000));
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t i = 0; i < a->size(); ++i) {
        EXPECT_EQ(a->uops()[i].pc, b->uops()[i].pc);
        EXPECT_EQ(a->uops()[i].addr, b->uops()[i].addr);
    }
}

// ------------------------------------------------- snapshot identity

TEST(ChampSimSnapshot, ContentIdentityGuardsRestore)
{
    const std::string dir = ::testing::TempDir();
    const std::string snap = dir + "champsim_identity.snap";

    MachineConfig cfg;
    cfg.validateOrThrow();
    const TraceParams p = TraceLibrary::byName("champsim:" + kGolden, 0);
    auto trace = TraceLibrary::make(p);
    OooCore core(cfg);
    core.beginRun(*trace);
    core.advanceTo(*trace, 200);
    writeSnapshot(snap, core, *trace, 200);

    // Same content: restores.
    {
        auto t2 = TraceLibrary::make(p);
        OooCore c2(cfg);
        loadSnapshotInto(snap, c2, *t2);
    }

    // Changed source bytes, same name, same decoded uop count (only
    // an ip byte flips): name and size checks cannot see this — the
    // content identity (byte count + CRC) must reject the restore.
    std::string tweaked = readFileBytes(kGolden);
    tweaked[8 * kChampSimRecordBytes] =
        static_cast<char>(tweaked[8 * kChampSimRecordBytes] ^ 0x04);
    std::istringstream is3(tweaked);
    auto t3 = readChampSimTrace(is3, "champsim:" + kGolden);
    ASSERT_EQ(t3->size(), trace->size());
    OooCore c3(cfg);
    EXPECT_THROW(loadSnapshotInto(snap, c3, *t3), ConfigError);
}

} // namespace
} // namespace lrs
