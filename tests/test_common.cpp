/**
 * @file
 * Unit tests for the common module: deterministic RNG, saturating
 * counters, sticky bits, bit utilities and the statistics package.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/bitutils.hh"
#include "common/random.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"

namespace lrs
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const auto first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, ZeroSeedDoesNotCollapse)
{
    Rng a(0);
    std::set<std::uint64_t> vals;
    for (int i = 0; i < 100; ++i)
        vals.insert(a.next());
    EXPECT_GT(vals.size(), 90u);
}

TEST(Rng, BelowRespectsBound)
{
    Rng a(42);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(a.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng a(42);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(a.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive)
{
    Rng a(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = a.between(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        hit_lo |= v == 3;
        hit_hi |= v == 6;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng a(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(a.chance(0.0));
        EXPECT_TRUE(a.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng a(5);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += a.chance(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng a(11);
    for (int i = 0; i < 10000; ++i) {
        const double u = a.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, BurstBounds)
{
    Rng a(13);
    for (int i = 0; i < 1000; ++i) {
        const auto b = a.burst(0.5, 8);
        ASSERT_GE(b, 1u);
        ASSERT_LE(b, 8u);
    }
}

TEST(SatCounter, TwoBitBasics)
{
    SatCounter c(2);
    EXPECT_FALSE(c.predict());
    c.update(true);
    EXPECT_FALSE(c.predict()); // 1 < threshold 2
    c.update(true);
    EXPECT_TRUE(c.predict());
    c.update(true);
    EXPECT_EQ(c.value(), 3);
    c.update(true); // saturates
    EXPECT_EQ(c.value(), 3);
    c.update(false);
    EXPECT_TRUE(c.predict()); // 2 >= 2
    c.update(false);
    c.update(false);
    EXPECT_EQ(c.value(), 0);
    c.update(false); // saturates at 0
    EXPECT_EQ(c.value(), 0);
}

TEST(SatCounter, OneBitIsLastOutcome)
{
    SatCounter c(1);
    c.update(true);
    EXPECT_TRUE(c.predict());
    c.update(false);
    EXPECT_FALSE(c.predict());
}

TEST(SatCounter, InitialValue)
{
    SatCounter c(2, 2);
    EXPECT_TRUE(c.predict());
}

TEST(SatCounter, ConfidenceMonotonic)
{
    SatCounter c(3);
    c.set(4); // weakly taken
    const double weak = c.confidence();
    c.set(7); // saturated
    EXPECT_GT(c.confidence(), weak);
    EXPECT_DOUBLE_EQ(c.confidence(), 1.0);
}

TEST(StickyBit, OnlySetsNeverClears)
{
    StickyBit s;
    EXPECT_FALSE(s.predict());
    s.update(false);
    EXPECT_FALSE(s.predict());
    s.update(true);
    EXPECT_TRUE(s.predict());
    s.update(false); // sticky: stays set
    EXPECT_TRUE(s.predict());
    s.clear();
    EXPECT_FALSE(s.predict());
}

TEST(BitUtils, PowersOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
}

TEST(BitUtils, Logs)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(65), 6u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
}

TEST(BitUtils, MaskAndBits)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
    EXPECT_EQ(bits(0xabcd, 4, 8), 0xbcu);
}

TEST(BitUtils, FoldXorStableAndBounded)
{
    const auto f1 = foldXor(0x123456789abcdef0ULL, 11);
    EXPECT_EQ(f1, foldXor(0x123456789abcdef0ULL, 11));
    EXPECT_LE(f1, mask(11));
}

TEST(BitUtils, Mix64Decorrelates)
{
    // Consecutive inputs should map to very different outputs.
    const auto a = mix64(1000);
    const auto b = mix64(1001);
    EXPECT_NE(a, b);
    EXPECT_NE(a >> 32, b >> 32);
}

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 4;
    c.inc();
    c.inc(10);
    EXPECT_EQ(c.value(), 16u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, Moments)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    d.sample(2.0);
    d.sample(4.0);
    d.sample(9.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10.0); // [0,10) [10,20) [20,30) [30,40)
    h.sample(0);
    h.sample(9.99);
    h.sample(10);
    h.sample(35);
    h.sample(40); // overflow
    h.sample(-1); // overflow
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, Cdf)
{
    Histogram h(2, 1.0);
    h.sample(0.5, 3);
    h.sample(1.5, 1);
    EXPECT_DOUBLE_EQ(h.cdfAt(0), 0.75);
    EXPECT_DOUBLE_EQ(h.cdfAt(1), 1.0);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"a", "bbbb"});
    t.startRow();
    t.cell("xxxxx");
    t.cell(1.5, 1);
    const std::string s = t.toString();
    EXPECT_NE(s.find("xxxxx"), std::string::npos);
    EXPECT_NE(s.find("1.5"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, PercentCell)
{
    TextTable t({"p"});
    t.startRow();
    t.cellPct(0.1234, 1);
    EXPECT_NE(t.toString().find("12.3%"), std::string::npos);
}

TEST(Strprintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strprintf("%.2f", 1.005), "1.00");
    EXPECT_EQ(strprintf("%s", ""), "");
}

} // namespace
} // namespace lrs
