/**
 * @file
 * Unit tests for the hit-miss predictor configurations: the always-hit
 * baseline, the table adapters, the timing-assisted wrapper and the
 * factory.
 */

#include <gtest/gtest.h>

#include "predictors/hitmiss.hh"
#include "predictors/local.hh"

namespace lrs
{
namespace
{

TEST(AlwaysHitHmp, NeverPredictsMiss)
{
    AlwaysHitHmp hmp;
    EXPECT_FALSE(hmp.predictMiss(0x4000, nullptr));
    hmp.update(0x4000, true, kAddrInvalid);
    hmp.update(0x4000, true, kAddrInvalid);
    EXPECT_FALSE(hmp.predictMiss(0x4000, nullptr));
    EXPECT_EQ(hmp.storageBits(), 0u);
}

TEST(TableHmp, LearnsPerPcMissBias)
{
    TableHmp hmp(std::make_unique<LocalPredictor>(2048, 8));
    for (int i = 0; i < 50; ++i) {
        hmp.update(0x4000, true, kAddrInvalid);  // streaming load: always misses
        hmp.update(0x8000, false, kAddrInvalid); // hot load: always hits
    }
    EXPECT_TRUE(hmp.predictMiss(0x4000, nullptr));
    EXPECT_FALSE(hmp.predictMiss(0x8000, nullptr));
}

TEST(TableHmp, LearnsPeriodicMissPattern)
{
    // A stride-16B load missing every 4th access: the local history
    // ...0001 repeats, which an 8-bit-history local predictor learns.
    TableHmp hmp(std::make_unique<LocalPredictor>(2048, 8));
    for (int warm = 0; warm < 64; ++warm)
        hmp.update(0x4000, warm % 4 == 3, kAddrInvalid);
    int correct = 0;
    for (int i = 0; i < 64; ++i) {
        const bool miss = i % 4 == 3;
        correct += hmp.predictMiss(0x4000, nullptr) == miss;
        hmp.update(0x4000, miss, kAddrInvalid);
    }
    EXPECT_GE(correct, 60);
}

TEST(TimingHmp, OutstandingMissOverrides)
{
    TimingHmp hmp(std::make_unique<AlwaysHitHmp>());
    const HitMissPredictor::Hint h{/*outstandingMiss=*/true,
                                   /*recentFill=*/false};
    EXPECT_TRUE(hmp.predictMiss(0x4000, &h));
}

TEST(TimingHmp, RecentFillOverrides)
{
    // Inner predictor says miss; a recent fill forces a hit
    // prediction.
    auto inner = std::make_unique<TableHmp>(
        std::make_unique<LocalPredictor>(64, 4));
    for (int i = 0; i < 20; ++i)
        inner->update(0x4000, true, kAddrInvalid);
    TimingHmp hmp(std::move(inner));
    const HitMissPredictor::Hint h{false, true};
    EXPECT_FALSE(hmp.predictMiss(0x4000, &h));
    // Without the hint, the inner prediction stands.
    EXPECT_TRUE(hmp.predictMiss(0x4000, nullptr));
}

TEST(TimingHmp, NoHintFallsThrough)
{
    TimingHmp hmp(std::make_unique<AlwaysHitHmp>());
    const HitMissPredictor::Hint h{false, false};
    EXPECT_FALSE(hmp.predictMiss(0x4000, &h));
    EXPECT_FALSE(hmp.predictMiss(0x4000, nullptr));
}

TEST(HmpFactory, BuildsAllNamedConfigurations)
{
    for (const char *name :
         {"always-hit", "local", "chooser", "local+timing"}) {
        auto hmp = makeHmp(name);
        ASSERT_NE(hmp, nullptr) << name;
        EXPECT_EQ(hmp->name().find("unknown"), std::string::npos);
    }
    EXPECT_THROW(makeHmp("nonsense"), std::invalid_argument);
}

TEST(HmpFactory, PaperBudgets)
{
    // Paper section 2.2: local-only ~2KB; chooser < 2KB total.
    const auto local = makeLocalHmp();
    EXPECT_LE(local->storageBits(), 3 * 8 * 1024);
    EXPECT_GE(local->storageBits(), 1 * 8 * 1024);
    const auto chooser = makeChooserHmp();
    EXPECT_LE(chooser->storageBits(), 3 * 8 * 1024);
}

TEST(HmpChooser, MajorityRejectsSingleOutlier)
{
    auto hmp = makeChooserHmp();
    // Uniform always-miss training: all components agree.
    for (int i = 0; i < 100; ++i)
        hmp->update(0x4000, true, kAddrInvalid);
    EXPECT_TRUE(hmp->predictMiss(0x4000, nullptr));
}

} // namespace
} // namespace lrs
