/**
 * @file
 * Tests of the deterministic telemetry histograms
 * (common/histogram.hh): log2 bucket boundaries, exact extrema/sums,
 * merge exactness (including above 2^53, where a double would lose
 * bits), JSON round-tripping, registry integration, and the headline
 * guarantee — a sweep grid's merged histograms are byte-identical for
 * any worker count.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/stats_registry.hh"
#include "core/supervisor.hh"
#include "trace/library.hh"

namespace lrs
{
namespace
{

TEST(Histogram, BucketBoundaries)
{
    // Bucket 0 holds only 0; bucket k holds [2^(k-1), 2^k).
    EXPECT_EQ(Log2Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Log2Histogram::bucketOf(7), 3u);
    EXPECT_EQ(Log2Histogram::bucketOf(8), 4u);
    for (unsigned k = 1; k < 64; ++k) {
        const std::uint64_t lo = std::uint64_t{1} << (k - 1);
        EXPECT_EQ(Log2Histogram::bucketOf(lo), k) << "k=" << k;
        EXPECT_EQ(Log2Histogram::bucketOf(2 * lo - 1), k) << "k=" << k;
        EXPECT_EQ(Log2Histogram::bucketLow(k), lo) << "k=" << k;
    }
    EXPECT_EQ(Log2Histogram::bucketOf(~std::uint64_t{0}), 64u);
    EXPECT_EQ(Log2Histogram::bucketLow(0), 0u);
}

TEST(Histogram, RecordTracksExactExtremaAndSum)
{
    Log2Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    h.record(5);
    h.record(0);
    h.record(1000);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 1005u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.bucket(Log2Histogram::bucketOf(5)), 1u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 335.0);
}

TEST(Histogram, BulkRecordEqualsRepeatedSingles)
{
    // record(v, n) is the skip-ahead's bulk accounting: it must be
    // indistinguishable (mod 2^64) from n single records, including
    // first-sample extrema initialisation and the zero-count no-op.
    Log2Histogram bulk;
    Log2Histogram singles;
    bulk.record(7, 0); // no-op: still empty
    EXPECT_EQ(bulk.toJson().dump(0), Log2Histogram().toJson().dump(0));

    const struct { std::uint64_t v, n; } plan[] = {
        {42, 3}, {0, 1}, {42, 1}, {1u << 20, 5}, {5, 1000}, {7, 0},
    };
    for (const auto &p : plan) {
        bulk.record(p.v, p.n);
        for (std::uint64_t i = 0; i < p.n; ++i)
            singles.record(p.v);
    }
    EXPECT_EQ(bulk.toJson().dump(0), singles.toJson().dump(0));
    EXPECT_EQ(bulk.count(), 1010u);
    EXPECT_EQ(bulk.min(), 0u);
    EXPECT_EQ(bulk.max(), std::uint64_t{1} << 20);

    // A bulk record on an empty histogram must seed min AND max from
    // the value even when the value is 0 (the "count_ == 0" branch).
    Log2Histogram zero;
    zero.record(0, 4);
    EXPECT_EQ(zero.min(), 0u);
    EXPECT_EQ(zero.max(), 0u);
    EXPECT_EQ(zero.count(), 4u);
}

TEST(Histogram, EmptyExport)
{
    const json::Value v = Log2Histogram{}.toJson();
    EXPECT_EQ(v.at("count").asU64(), 0u);
    EXPECT_EQ(v.at("sum").asU64(), 0u);
    EXPECT_EQ(v.at("min").asU64(), 0u);
    EXPECT_EQ(v.at("max").asU64(), 0u);
    EXPECT_EQ(v.at("buckets").size(), 0u);
    // And it parses back to an empty histogram.
    const Log2Histogram h = Log2Histogram::fromJson(v);
    EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, MergeIsExactAdd)
{
    Log2Histogram a, b;
    a.record(3);
    a.record(100);
    b.record(0);
    b.record(7);
    b.record(1 << 20);
    a.merge(b);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_EQ(a.sum(), 3u + 100u + 0u + 7u + (1u << 20));
    EXPECT_EQ(a.min(), 0u);
    EXPECT_EQ(a.max(), std::uint64_t{1} << 20);
    // Merging an empty histogram changes nothing.
    const std::string before = a.toJson().dump();
    a.merge(Log2Histogram{});
    EXPECT_EQ(a.toJson().dump(), before);
    // Merging *into* an empty one copies exactly.
    Log2Histogram c;
    c.merge(a);
    EXPECT_EQ(c.toJson().dump(), a.toJson().dump());
}

TEST(Histogram, JsonRoundTripAbove2To53)
{
    // Values above 2^53 are not representable in a double; the JSON
    // path must keep them exact end to end (the satellite fix in
    // common/json.hh).
    const std::uint64_t big = (std::uint64_t{1} << 60) + 1;
    Log2Histogram h;
    h.record(big);
    h.record(big - 2);
    const std::string text = h.toJson().dump(2);
    const Log2Histogram back =
        Log2Histogram::fromJson(json::Value::parse(text));
    EXPECT_EQ(back.count(), 2u);
    EXPECT_EQ(back.sum(), 2 * big - 2);
    EXPECT_EQ(back.min(), big - 2);
    EXPECT_EQ(back.max(), big);
    EXPECT_EQ(back.toJson().dump(2), text);
}

TEST(Histogram, JsonNumberExactness)
{
    // The underlying json::Value must round-trip u64 exactly.
    const std::uint64_t v = 9007199254740993ull; // 2^53 + 1
    json::Value j(v);
    EXPECT_EQ(j.asU64(), v);
    EXPECT_EQ(json::Value::parse(j.dump()).asU64(), v);
}

TEST(Histogram, RegistryIntegration)
{
    StatsRegistry reg;
    Log2Histogram &h =
        reg.group("hist").log2hist("load_to_use", "test histogram");
    h.record(4);
    h.record(4);
    ASSERT_TRUE(reg.has("hist.load_to_use"));
    EXPECT_DOUBLE_EQ(reg.value("hist.load_to_use"), 2.0);
    const json::Value j = reg.toJson();
    EXPECT_EQ(
        j.at("hist").at("load_to_use").at("count").asU64(), 2u);
    reg.reset();
    EXPECT_EQ(h.count(), 0u);
}

/**
 * Run a small (trace x scheme) grid with histogram collection on and
 * return the serialized cell-order merge of every per-cell histogram
 * — the exact aggregation lrs_sim --batch --histograms performs.
 */
std::string
gridHistograms(unsigned workers)
{
    std::vector<SimJob> jobs;
    std::vector<std::string> keys;
    for (const char *name : {"wd", "gcc"}) {
        for (const auto scheme :
             {OrderingScheme::Traditional, OrderingScheme::Perfect}) {
            SimJob j;
            j.trace = TraceLibrary::byName(name, 20000);
            j.cfg.scheme = scheme;
            j.cfg.cht.trackDistance = true;
            j.cfg.collectHistograms = true;
            jobs.push_back(std::move(j));
            keys.push_back(std::string(name) + "/" +
                           orderingSchemeName(scheme));
        }
    }
    SweepOptions so;
    so.workers = workers;
    SweepSupervisor sup(so);
    const std::vector<JobOutcome> outcomes = sup.run(jobs, keys);

    std::vector<std::string> order;
    std::map<std::string, Log2Histogram> merged;
    for (const JobOutcome &o : outcomes) {
        EXPECT_EQ(o.status, CellStatus::Ok) << o.error;
        const json::Value *h = o.resultJson.find("histograms");
        if (!h)
            continue;
        for (const auto &m : h->members()) {
            auto it = merged.find(m.first);
            if (it == merged.end()) {
                order.push_back(m.first);
                merged.emplace(m.first,
                               Log2Histogram::fromJson(m.second));
            } else {
                it->second.merge(Log2Histogram::fromJson(m.second));
            }
        }
    }
    json::Value doc = json::Value::object();
    for (const std::string &name : order)
        doc.set(name, merged.at(name).toJson());
    return doc.dump(2);
}

TEST(Histogram, GridMergeIdenticalForAnyWorkerCount)
{
    const std::string serial = gridHistograms(1);
    // The merge must actually have content, or the comparison below
    // proves nothing.
    EXPECT_NE(serial.find("load_to_use"), std::string::npos);
    EXPECT_NE(serial.find("occ_rob"), std::string::npos);
    EXPECT_EQ(gridHistograms(2), serial);
    EXPECT_EQ(gridHistograms(8), serial);
}

} // namespace
} // namespace lrs
