/**
 * @file
 * Tests for the structured diagnostics layer: Diag rendering, the
 * exception taxonomy (each type must stay catchable at its
 * historically established std base class), and whole-machine
 * validation returning every violation at once.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "common/diag.hh"
#include "core/config.hh"
#include "core/config_io.hh"
#include "core/core.hh"

namespace lrs
{
namespace
{

TEST(Diag, RendersComponentCodeParamAndMessage)
{
    Diag d = makeDiag(DiagCode::ConfigInvalid, "pred.cht", "entries",
                      "must be a power of two (got 100)");
    const std::string s = d.toString();
    EXPECT_NE(s.find("pred.cht"), std::string::npos) << s;
    EXPECT_NE(s.find("E_CONFIG_INVALID"), std::string::npos) << s;
    EXPECT_NE(s.find("entries"), std::string::npos) << s;
    EXPECT_NE(s.find("got 100"), std::string::npos) << s;
}

TEST(Diag, AuditDiagsCarryTheCycle)
{
    Diag d = makeDiag(DiagCode::AuditViolation, "audit", "occupancy",
                      "too many uops", 1234);
    EXPECT_EQ(d.cycle, 1234u);
    EXPECT_NE(d.toString().find("1234"), std::string::npos);
}

TEST(Diag, FormatDiagsReportsViolationCount)
{
    std::vector<Diag> ds = {
        makeDiag(DiagCode::ConfigInvalid, "a", "x", "bad"),
        makeDiag(DiagCode::ConfigInvalid, "b", "y", "worse"),
    };
    const std::string s = formatDiags(ds);
    EXPECT_NE(s.find("2 violations"), std::string::npos) << s;
}

TEST(Diag, ConfigErrorIsInvalidArgumentAndCarriesDiags)
{
    try {
        throwConfig("pred.test", "width", "must be positive (got 0)");
        FAIL() << "throwConfig returned";
    } catch (const std::invalid_argument &e) {
        // Established catch sites use invalid_argument; the richer
        // interface must be reachable by a further cast.
        const auto *de = dynamic_cast<const DiagnosticError *>(&e);
        ASSERT_NE(de, nullptr);
        ASSERT_EQ(de->diags().size(), 1u);
        EXPECT_EQ(de->diags()[0].component, "pred.test");
        EXPECT_EQ(de->diags()[0].param, "width");
    }
}

TEST(Diag, TraceAndIoErrorsAreRuntimeErrors)
{
    const auto thrower = [](DiagCode c) {
        throw TraceError(makeDiag(c, "trace", "", "x"));
    };
    EXPECT_THROW(thrower(DiagCode::TraceBadMagic), std::runtime_error);
    EXPECT_THROW(thrower(DiagCode::TraceBadMagic), IoError);
    EXPECT_THROW(
        throw IoError(makeDiag(DiagCode::IoOpenFailed, "f", "", "x")),
        std::runtime_error);
}

TEST(MachineValidate, DefaultConfigIsValid)
{
    MachineConfig cfg;
    EXPECT_TRUE(cfg.validate().empty());
    EXPECT_NO_THROW(cfg.validateOrThrow());
}

TEST(MachineValidate, ReportsAllViolationsAtOnce)
{
    MachineConfig cfg;
    cfg.fetchWidth = 0;                  // 1
    cfg.schedWindow = cfg.robSize + 1;   // 2
    cfg.numBanks = 3;                    // 3
    cfg.mem.l1.lineBytes = 48;           // 4
    const auto diags = cfg.validate();
    EXPECT_GE(diags.size(), 4u);
    EXPECT_THROW(cfg.validateOrThrow(), ConfigError);
    EXPECT_THROW(cfg.validateOrThrow(), std::invalid_argument);
}

TEST(MachineValidate, SlicedModeDemandsABankPredictor)
{
    MachineConfig cfg;
    cfg.bankMode = BankMode::Sliced;
    cfg.bankPred = BankPredKind::None;
    const auto diags = cfg.validate();
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].param, "bank_pred");
    cfg.bankPred = BankPredKind::Addr;
    EXPECT_TRUE(cfg.validate().empty());
}

TEST(MachineValidate, ChtCheckedOnlyWhenTheSchemeUsesIt)
{
    MachineConfig cfg;
    cfg.cht.entries = 100; // not a power of two
    cfg.scheme = OrderingScheme::Traditional;
    EXPECT_TRUE(cfg.validate().empty());
    cfg.scheme = OrderingScheme::Inclusive;
    EXPECT_FALSE(cfg.validate().empty());
    cfg.scheme = OrderingScheme::Traditional;
    cfg.chtShadow = true; // shadow mode still builds the CHT
    EXPECT_FALSE(cfg.validate().empty());
}

TEST(MachineValidate, CoreConstructorRejectsBadConfig)
{
    MachineConfig cfg;
    cfg.schedWindow = 0;
    EXPECT_THROW(OooCore core(cfg), ConfigError);
    cfg = MachineConfig{};
    cfg.scheme = OrderingScheme::Exclusive;
    cfg.cht.entries = 100;
    EXPECT_THROW(OooCore core(cfg), ConfigError);
}

TEST(MachineValidate, ConfigFileWithBadValuesNamesTheParameter)
{
    std::istringstream ini("rob_size = 0\nnum_banks = 5\n");
    try {
        machineConfigFromIni(ini, MachineConfig{});
        FAIL() << "invalid config accepted";
    } catch (const ConfigError &e) {
        ASSERT_GE(e.diags().size(), 2u);
        bool saw_rob = false, saw_banks = false;
        for (const Diag &d : e.diags()) {
            saw_rob = saw_rob || d.param == "rob_size";
            saw_banks = saw_banks || d.param == "num_banks";
        }
        EXPECT_TRUE(saw_rob);
        EXPECT_TRUE(saw_banks);
    }
}

TEST(MachineValidate, AuditIntervalRoundTripsThroughIni)
{
    MachineConfig cfg;
    cfg.auditInterval = 4096;
    std::istringstream ini(machineConfigToIni(cfg));
    const MachineConfig back =
        machineConfigFromIni(ini, MachineConfig{});
    EXPECT_EQ(back.auditInterval, 4096u);
}

} // namespace
} // namespace lrs
