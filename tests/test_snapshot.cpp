/**
 * @file
 * Tests of checkpointed machine snapshots (core/snapshot.hh): the
 * bit-identity contract (a restored run finishes with statistics
 * byte-identical to the uninterrupted run, doubles included), strict
 * rejection of every damaged-file shape (the same every-byte
 * truncation sweep the journal recovery tests run, but expecting
 * rejection instead of resync), format/trace/geometry mismatch
 * rejection, and the warm-once grid protocol's determinism across
 * worker counts.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "common/diag.hh"
#include "common/fault_injector.hh"
#include "common/histogram.hh"
#include "common/journal.hh"
#include "core/config_io.hh"
#include "core/core.hh"
#include "core/grid.hh"
#include "core/parallel.hh"
#include "core/runner.hh"
#include "core/snapshot.hh"
#include "trace/library.hh"

namespace lrs
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "lrs_snapshot_" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << bytes;
}

/** The statistics fingerprint identity is compared on: the lossless
 *  state serialization, which packs every double as its IEEE-754 bit
 *  pattern — stricter than any formatted report. */
std::string
fingerprint(const SimResult &r)
{
    return r.saveState().dump(0);
}

/** A feature-heavy config that exercises every optional component the
 *  snapshot serializes: CHT with distance, histograms, intervals,
 *  store-set/banked machinery off to keep it fast but variable. */
MachineConfig
richConfig()
{
    MachineConfig cfg;
    cfg.scheme = OrderingScheme::Exclusive;
    cfg.cht.trackDistance = true;
    cfg.exclusiveSpecForward = true;
    cfg.stridePrefetch = true;
    cfg.hmp = HmpKind::Chooser;
    cfg.bankMode = BankMode::Conventional;
    cfg.bankPred = BankPredKind::A;
    cfg.statsInterval = 500;
    cfg.collectHistograms = true;
    return cfg;
}

SimResult
runFull(const MachineConfig &cfg, const std::string &trace_name,
        std::uint64_t len, FaultInjector *fi = nullptr)
{
    auto trace = TraceLibrary::make(TraceLibrary::byName(trace_name, len));
    OooCore core(cfg);
    core.attachFaultInjector(fi);
    return core.run(*trace);
}

/** Warm to @p stop, checkpoint, restore into a FRESH core, finish. */
SimResult
runThroughSnapshot(const MachineConfig &cfg,
                   const std::string &trace_name, std::uint64_t len,
                   Cycle stop, const std::string &path,
                   FaultInjector *warm_fi = nullptr,
                   FaultInjector *resume_fi = nullptr)
{
    {
        auto trace =
            TraceLibrary::make(TraceLibrary::byName(trace_name, len));
        OooCore warm(cfg);
        warm.attachFaultInjector(warm_fi);
        warm.beginRun(*trace);
        warm.advanceTo(*trace, stop);
        writeSnapshot(path, warm, *trace, stop);
    }
    auto trace =
        TraceLibrary::make(TraceLibrary::byName(trace_name, len));
    OooCore core(cfg);
    core.attachFaultInjector(resume_fi);
    loadSnapshotInto(path, core, *trace);
    core.advanceTo(*trace);
    return core.finishRun();
}

TEST(Snapshot, RestoredRunIsBitIdenticalAcrossSchemes)
{
    // The tentpole contract, per scheme: full run vs
    // warm-save-restore-continue must agree on every counter, every
    // interval sample and every histogram bucket, bit for bit.
    for (const auto scheme :
         {OrderingScheme::Traditional, OrderingScheme::Opportunistic,
          OrderingScheme::Exclusive, OrderingScheme::StoreSets,
          OrderingScheme::StoreBarrier}) {
        MachineConfig cfg;
        cfg.scheme = scheme;
        cfg.cht.trackDistance = true;
        const SimResult full = runFull(cfg, "wd", 20000);
        const std::string path = tmpPath("scheme.snap");
        const SimResult resumed = runThroughSnapshot(
            cfg, "wd", 20000, full.cycles / 2, path);
        EXPECT_EQ(fingerprint(full), fingerprint(resumed))
            << orderingSchemeName(scheme);
        std::remove(path.c_str());
    }
}

TEST(Snapshot, RestoredRunIsBitIdenticalWithEverythingOn)
{
    // Histograms, interval samples, bank predictor, prefetcher,
    // chooser HMP — the checkpoint must carry all of it.
    const MachineConfig cfg = richConfig();
    const SimResult full = runFull(cfg, "gcc", 20000);
    const std::string path = tmpPath("rich.snap");
    for (const Cycle stop : {Cycle{1}, full.cycles / 3,
                             full.cycles - 1, full.cycles + 1000}) {
        const SimResult resumed =
            runThroughSnapshot(cfg, "gcc", 20000, stop, path);
        EXPECT_EQ(fingerprint(full), fingerprint(resumed))
            << "stop=" << stop;
    }
    std::remove(path.c_str());
}

TEST(Snapshot, HistogramsResetOnRestoreFromHistlessDonor)
{
    // Warm-fork with histograms newly enabled: the donor state has no
    // "hist" section, so the restoring core must start its seven
    // distributions cold — even if that core already ran a different
    // workload and its histograms hold counts. Leaking those dirty
    // counts into the resumed run is exactly the bug the single
    // resetHistograms() path closes.
    MachineConfig off = richConfig();
    off.collectHistograms = false;
    const MachineConfig on = richConfig();

    auto dt = TraceLibrary::make(TraceLibrary::byName("wd", 15000));
    OooCore donor(off);
    donor.beginRun(*dt);
    donor.advanceTo(*dt, 3000);
    const json::Value state = donor.saveState();
    ASSERT_EQ(state.find("hist"), nullptr);

    // Reference: a fresh histogram-collecting core resumes from it.
    auto t1 = TraceLibrary::make(TraceLibrary::byName("wd", 15000));
    OooCore fresh(on);
    fresh.loadState(state, *t1);
    fresh.advanceTo(*t1);
    const SimResult r_fresh = fresh.finishRun();
    const json::Value *fh = r_fresh.histograms.find("occ_rob");
    ASSERT_NE(fh, nullptr);
    EXPECT_GT(fh->at("count").asU64(), 0u);

    // Dirty core: run a full unrelated workload first, then resume.
    auto warm = TraceLibrary::make(TraceLibrary::byName("gcc", 15000));
    auto t2 = TraceLibrary::make(TraceLibrary::byName("wd", 15000));
    OooCore dirty(on);
    dirty.run(*warm);
    ASSERT_GT(dirty.saveState()
                  .at("hist")
                  .at("occ_rob")
                  .at("count")
                  .asU64(),
              0u);
    dirty.loadState(state, *t2);
    dirty.advanceTo(*t2);
    const SimResult r_dirty = dirty.finishRun();

    EXPECT_EQ(fingerprint(r_dirty), fingerprint(r_fresh));
}

TEST(Snapshot, HistogramSectionMustContainAllSevenDistributions)
{
    // A partial "hist" section must be rejected atomically: restoring
    // only some distributions would mix donor counts with whatever
    // this core held before.
    const MachineConfig cfg = richConfig();
    auto t = TraceLibrary::make(TraceLibrary::byName("wd", 15000));
    OooCore core(cfg);
    core.beginRun(*t);
    core.advanceTo(*t, 2000);
    const json::Value state = core.saveState();
    const json::Value *h = state.find("hist");
    ASSERT_NE(h, nullptr);
    ASSERT_EQ(h->size(), 7u);

    const auto restore = [&cfg](const json::Value &st) {
        auto tr =
            TraceLibrary::make(TraceLibrary::byName("wd", 15000));
        OooCore c(cfg);
        c.loadState(st, *tr);
    };
    restore(state); // the intact section is accepted

    for (const auto &victim : h->members()) {
        json::Value damaged = json::Value::object();
        for (const auto &m : state.members()) {
            if (m.first != "hist") {
                damaged.set(m.first, m.second);
                continue;
            }
            json::Value sub = json::Value::object();
            for (const auto &k : h->members())
                if (k.first != victim.first)
                    sub.set(k.first, k.second);
            damaged.set("hist", std::move(sub));
        }
        EXPECT_THROW(restore(damaged), ConfigError) << victim.first;
    }

    // An extra eighth distribution is just as malformed.
    json::Value extra = json::Value::object();
    for (const auto &m : state.members()) {
        json::Value v = m.second;
        if (m.first == "hist")
            v.set("mystery", Log2Histogram{}.toJson());
        extra.set(m.first, v);
    }
    EXPECT_THROW(restore(extra), ConfigError);
}

TEST(Snapshot, HistSectionIgnoredWhenCollectionDisabled)
{
    // The reverse fork: a histogram-collecting donor restored into a
    // histograms-off core. The section is surplus telemetry, not an
    // error, and since histograms never influence timing the resumed
    // run must match an uninterrupted histograms-off run bit for bit.
    const MachineConfig on = richConfig();
    MachineConfig off = richConfig();
    off.collectHistograms = false;

    auto dt = TraceLibrary::make(TraceLibrary::byName("wd", 15000));
    OooCore donor(on);
    donor.beginRun(*dt);
    donor.advanceTo(*dt, 3000);
    const json::Value state = donor.saveState();
    ASSERT_NE(state.find("hist"), nullptr);

    auto t = TraceLibrary::make(TraceLibrary::byName("wd", 15000));
    OooCore core(off);
    core.loadState(state, *t);
    core.advanceTo(*t);
    const SimResult r = core.finishRun();
    EXPECT_EQ(fingerprint(r), fingerprint(runFull(off, "wd", 15000)));
    EXPECT_TRUE(r.histograms.isNull());
}

TEST(Snapshot, CheckpointAtCycleZeroAndPastDrain)
{
    MachineConfig cfg;
    cfg.statsInterval = 300;
    const SimResult full = runFull(cfg, "swim", 15000);
    const std::string path = tmpPath("edges.snap");
    // Stop at 0: the snapshot holds a freshly-begun machine.
    SimResult resumed =
        runThroughSnapshot(cfg, "swim", 15000, 0, path);
    EXPECT_EQ(fingerprint(full), fingerprint(resumed));
    // Stop past drain: advanceTo() completed the whole run before the
    // checkpoint; the restored core's advanceTo() is a no-op and
    // finishRun() emits the same statistics.
    resumed = runThroughSnapshot(cfg, "swim", 15000, kCycleNever, path);
    EXPECT_EQ(fingerprint(full), fingerprint(resumed));
    std::remove(path.c_str());
}

TEST(Snapshot, FaultInjectorRngStreamRoundTrips)
{
    // A fault-injected run is deterministic under its seed; the
    // injector's xorshift state and counters must survive the
    // checkpoint or the resumed half would draw a different stream.
    FaultConfig fc;
    fc.bitRate = 0.01;
    fc.latRate = 0.01;
    MachineConfig cfg;
    cfg.scheme = OrderingScheme::Exclusive;
    cfg.cht.trackDistance = true;

    FaultInjector full_fi(fc);
    const SimResult full = runFull(cfg, "wd", 20000, &full_fi);

    FaultInjector warm_fi(fc), resume_fi(fc);
    const std::string path = tmpPath("faults.snap");
    const SimResult resumed = runThroughSnapshot(
        cfg, "wd", 20000, full.cycles / 2, path, &warm_fi, &resume_fi);
    EXPECT_EQ(fingerprint(full), fingerprint(resumed));
    EXPECT_EQ(full_fi.saveState().dump(0), resume_fi.saveState().dump(0));
    std::remove(path.c_str());
}

TEST(Snapshot, HeaderRecordsRunIdentity)
{
    MachineConfig cfg;
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", 15000));
    OooCore core(cfg);
    core.beginRun(*trace);
    core.advanceTo(*trace, 2000);
    const std::string path = tmpPath("header.snap");
    writeSnapshot(path, core, *trace, 2000);

    const SnapshotImage img = readSnapshot(path);
    EXPECT_EQ(img.version, kSnapshotFormatVersion);
    EXPECT_EQ(img.cycle, Cycle{2000});
    EXPECT_EQ(img.target, Cycle{2000});
    EXPECT_EQ(img.traceName, "wd");
    EXPECT_EQ(img.traceSize, trace->size());
    EXPECT_EQ(img.configIni, machineConfigToIni(cfg));
    EXPECT_TRUE(img.state.find("core"));
    EXPECT_TRUE(img.state.find("rob"));
    EXPECT_TRUE(img.state.find("result"));
    std::remove(path.c_str());
}

TEST(Snapshot, EveryByteTruncationIsRejectedNeverMisread)
{
    // Unlike the journal's resync-and-continue, a snapshot must treat
    // ANY truncation as fatal: restoring from a prefix would build a
    // subtly different machine. Only the complete byte string loads.
    MachineConfig cfg;
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", 8000));
    OooCore core(cfg);
    core.beginRun(*trace);
    core.advanceTo(*trace, 500);
    const std::string path = tmpPath("trunc.snap");
    writeSnapshot(path, core, *trace, 500);
    const std::string bytes = slurp(path);
    ASSERT_GT(bytes.size(), 100u);

    const std::string cut = tmpPath("trunc_cut.snap");
    // Every-byte sweeps on a multi-kilobyte file are slow; cover every
    // byte of the first and last lines (framing, header, end marker)
    // and stride through the interior.
    const std::size_t firstNl = bytes.find('\n');
    ASSERT_NE(firstNl, std::string::npos);
    std::vector<std::size_t> lens;
    for (std::size_t len = 0; len <= firstNl + 1; ++len)
        lens.push_back(len);
    for (std::size_t len = firstNl + 2; len + 120 < bytes.size();
         len += 97)
        lens.push_back(len);
    for (std::size_t len = bytes.size() - 120; len < bytes.size(); ++len)
        lens.push_back(len);
    for (const std::size_t len : lens) {
        spit(cut, bytes.substr(0, len));
        EXPECT_THROW(readSnapshot(cut), ConfigError) << "len=" << len;
    }
    spit(cut, bytes);
    EXPECT_NO_THROW(readSnapshot(cut));
    std::remove(cut.c_str());
    std::remove(path.c_str());
}

TEST(Snapshot, CorruptBytesAnywhereAreRejected)
{
    MachineConfig cfg;
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", 8000));
    OooCore core(cfg);
    core.beginRun(*trace);
    core.advanceTo(*trace, 500);
    const std::string path = tmpPath("corrupt.snap");
    writeSnapshot(path, core, *trace, 500);
    const std::string bytes = slurp(path);

    // Flip a bit in the framing tag, the CRC hex, the header JSON, a
    // mid-file section and the end marker.
    const std::vector<std::size_t> offsets = {
        0, 7, 20, bytes.size() / 2, bytes.size() - 5};
    for (const std::size_t off : offsets) {
        std::string damaged = bytes;
        damaged[off] ^= 0x1;
        spit(path, damaged);
        EXPECT_THROW(readSnapshot(path), ConfigError) << "off=" << off;
    }
    std::remove(path.c_str());
}

TEST(Snapshot, UnsupportedVersionAndForeignFilesAreRejected)
{
    const std::string path = tmpPath("version.snap");
    // A future format version.
    json::Value header = json::Value::object();
    header.set("kind", json::Value("lrs-snapshot"));
    header.set("version", json::Value(std::uint64_t{999}));
    header.set("cycle", json::Value(std::uint64_t{0}));
    header.set("target", json::Value(std::uint64_t{0}));
    header.set("trace", json::Value("wd"));
    header.set("trace_size", json::Value(std::uint64_t{1}));
    header.set("config", json::Value(""));
    header.set("sections", json::Value(std::uint64_t{0}));
    json::Value end = json::Value::object();
    end.set("kind", json::Value("lrs-snapshot-end"));
    end.set("sections", json::Value(std::uint64_t{0}));
    spit(path, journalLine(header) + journalLine(end));
    EXPECT_THROW(readSnapshot(path), ConfigError);

    // A perfectly valid *journal* is not a snapshot.
    json::Value rec = json::Value::object();
    rec.set("cell", json::Value(std::uint64_t{0}));
    rec.set("status", json::Value("OK"));
    spit(path, journalLine(rec) + journalLine(rec));
    EXPECT_THROW(readSnapshot(path), ConfigError);

    std::remove(path.c_str());
    EXPECT_THROW(readSnapshot(path), IoError); // absent file
}

TEST(Snapshot, TraceAndGeometryMismatchesAreRejected)
{
    MachineConfig cfg;
    auto trace = TraceLibrary::make(TraceLibrary::byName("wd", 8000));
    OooCore core(cfg);
    core.beginRun(*trace);
    core.advanceTo(*trace, 500);
    const std::string path = tmpPath("mismatch.snap");
    writeSnapshot(path, core, *trace, 500);

    // Wrong trace entirely.
    {
        auto other =
            TraceLibrary::make(TraceLibrary::byName("gcc", 8000));
        OooCore fresh(cfg);
        EXPECT_THROW(loadSnapshotInto(path, fresh, *other),
                     ConfigError);
    }
    // Right name, wrong length (a different sampling run).
    {
        auto other =
            TraceLibrary::make(TraceLibrary::byName("wd", 4000));
        OooCore fresh(cfg);
        EXPECT_THROW(loadSnapshotInto(path, fresh, *other),
                     ConfigError);
    }
    // Structurally incompatible machine: smaller ROB.
    {
        MachineConfig small = cfg;
        small.robSize = 64;
        auto same = TraceLibrary::make(TraceLibrary::byName("wd", 8000));
        OooCore fresh(small);
        EXPECT_THROW(loadSnapshotInto(path, fresh, *same), ConfigError);
    }
    std::remove(path.c_str());
}

TEST(Snapshot, CrossSchemeWarmForkIsDeterministic)
{
    // The warm-once grid protocol: one base-config warmup per trace,
    // every scheme forked from it. The forked sweep must be
    // bit-identical for any worker count, and re-preparing must reuse
    // the checkpoints (same file bytes) rather than re-warm.
    std::istringstream grid_is("traces = wd gcc\n"
                               "schemes = traditional, exclusive, "
                               "storesets\n"
                               "len = 15000\n"
                               "warmup_snapshot = 2000\n"
                               "cht_track_distance = 1\n");
    BatchGrid grid = parseBatchGrid(grid_is, "test");
    const std::string dir = tmpPath("warmdir");

    prepareWarmupSnapshots(grid, dir, 2);
    const std::string before =
        slurp(warmupSnapshotPath(dir, "wd"));
    ASSERT_FALSE(before.empty());
    prepareWarmupSnapshots(grid, dir, 1); // second call: pure reuse
    EXPECT_EQ(slurp(warmupSnapshotPath(dir, "wd")), before);

    std::vector<SimJob> jobs;
    std::vector<std::string> keys;
    buildGridJobs(grid, jobs, keys);
    attachWarmupSnapshots(grid, dir, jobs);
    for (const auto &job : jobs)
        EXPECT_FALSE(job.fromSnapshot.empty());

    std::vector<std::string> serial;
    for (const auto &job : jobs) {
        const JobOutcome o = runOneSimJob(job);
        ASSERT_FALSE(o.failed) << o.error;
        serial.push_back(fingerprint(o.result));
    }
    SimJobPool pool(4);
    const auto outcomes = pool.runJobs(jobs);
    ASSERT_EQ(outcomes.size(), serial.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        ASSERT_FALSE(outcomes[i].failed) << outcomes[i].error;
        EXPECT_EQ(fingerprint(outcomes[i].result), serial[i])
            << keys[i];
    }

    // The base-scheme cell is bit-identical to warm+finish by hand —
    // the fork really does resume, not re-run.
    {
        auto trace =
            TraceLibrary::make(TraceLibrary::byName("wd", 15000));
        MachineConfig base = grid.base;
        base.scheme = grid.schemes[0];
        OooCore core(base);
        loadSnapshotInto(warmupSnapshotPath(dir, "wd"), core, *trace);
        core.advanceTo(*trace);
        EXPECT_EQ(fingerprint(core.finishRun()), serial[0]);
    }

    for (const char *name : {"wd", "gcc"})
        std::remove(warmupSnapshotPath(dir, name).c_str());
    ::rmdir(dir.c_str());
}

TEST(Snapshot, StaleCheckpointsAreRegenerated)
{
    std::istringstream a_is("traces = wd\nlen = 12000\n"
                            "warmup_snapshot = 1000\n");
    BatchGrid a = parseBatchGrid(a_is, "test");
    const std::string dir = tmpPath("staledir");
    prepareWarmupSnapshots(a, dir, 1);
    const std::string path = warmupSnapshotPath(dir, "wd");
    EXPECT_EQ(readSnapshot(path).target, Cycle{1000});

    // Different warmup target → regenerate.
    std::istringstream b_is("traces = wd\nlen = 12000\n"
                            "warmup_snapshot = 2000\n");
    BatchGrid b = parseBatchGrid(b_is, "test");
    prepareWarmupSnapshots(b, dir, 1);
    EXPECT_EQ(readSnapshot(path).target, Cycle{2000});

    // Different base config → regenerate.
    std::istringstream c_is("traces = wd\nlen = 12000\n"
                            "warmup_snapshot = 2000\n"
                            "sched_window = 48\n");
    BatchGrid c = parseBatchGrid(c_is, "test");
    prepareWarmupSnapshots(c, dir, 1);
    EXPECT_EQ(readSnapshot(path).configIni, machineConfigToIni(c.base));

    // A torn file on disk → silently rewritten.
    const std::string bytes = slurp(path);
    spit(path, bytes.substr(0, bytes.size() / 2));
    prepareWarmupSnapshots(c, dir, 1);
    EXPECT_NO_THROW(readSnapshot(path));

    std::remove(path.c_str());
    ::rmdir(dir.c_str());
}

TEST(Snapshot, DirForAndPathHelpers)
{
    BatchGrid grid;
    EXPECT_EQ(snapshotDirFor(grid, "/tmp/fig07.ini"),
              "/tmp/fig07.ini.snapshots");
    grid.snapshotDir = "/var/snaps";
    EXPECT_EQ(snapshotDirFor(grid, "/tmp/fig07.ini"), "/var/snaps");
    EXPECT_EQ(warmupSnapshotPath("/var/snaps", "wd"),
              "/var/snaps/wd.warmup.snap");
}

} // namespace
} // namespace lrs
