/**
 * @file
 * Unit tests for the two-level data hierarchy: latency chaining,
 * inclusive fills, dynamic misses across levels and the
 * outstanding-miss / recently-serviced timing information.
 */

#include <gtest/gtest.h>

#include "memory/hierarchy.hh"

namespace lrs
{
namespace
{

HierarchyParams
params()
{
    HierarchyParams p;
    p.l1 = {"L1", 1024, 2, 64, 5, 1};
    p.l2 = {"L2", 8192, 4, 64, 7, 1};
    p.memLatency = 40;
    p.recentFillWindow = 16;
    return p;
}

TEST(Hierarchy, ColdMissGoesToMemory)
{
    MemoryHierarchy h(params());
    const auto a = h.access(0x10000, 100);
    EXPECT_FALSE(a.l1Hit);
    EXPECT_EQ(a.level, MemoryHierarchy::Level::Memory);
    EXPECT_EQ(a.readyAt, 100u + 5 + 7 + 40);
}

TEST(Hierarchy, L1HitAfterWarmup)
{
    MemoryHierarchy h(params());
    const auto first = h.access(0x10000, 0);
    const auto again = h.access(0x10000, first.readyAt + 1);
    EXPECT_TRUE(again.l1Hit);
    EXPECT_EQ(again.level, MemoryHierarchy::Level::L1);
    EXPECT_EQ(again.readyAt, first.readyAt + 1 + 5);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    auto p = params();
    MemoryHierarchy h(p);
    // Warm the line past its fill time.
    h.access(0x10000, 0);
    // Thrash L1's set with conflicting lines; L1 has 16 sets, so the
    // set stride is 16 lines = 1024 bytes.
    Cycle t = 1000;
    h.access(0x10000 + 1024, t);
    t += 100;
    h.access(0x10000 + 2048, t);
    t += 100;
    // The original line is now out of L1 but still in L2.
    const auto r = h.access(0x10000, t);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_EQ(r.level, MemoryHierarchy::Level::L2);
    EXPECT_EQ(r.readyAt, t + 5 + 7);
}

TEST(Hierarchy, DynamicMissReportsRemainingLatency)
{
    MemoryHierarchy h(params());
    const auto first = h.access(0x20000, 0); // fill lands at 52
    const auto second = h.access(0x20000, 10);
    EXPECT_FALSE(second.l1Hit);
    EXPECT_TRUE(second.dynamicMiss);
    EXPECT_EQ(second.readyAt, first.readyAt);
}

TEST(Hierarchy, TimingInfoOutstandingMiss)
{
    MemoryHierarchy h(params());
    h.access(0x30000, 0); // in flight until 52
    const auto ti = h.timingInfo(0x30000, 10);
    EXPECT_TRUE(ti.outstandingMiss);
    EXPECT_FALSE(ti.recentFill);
}

TEST(Hierarchy, TimingInfoRecentFill)
{
    MemoryHierarchy h(params());
    const auto a = h.access(0x30000, 0);
    const auto ti = h.timingInfo(0x30000, a.readyAt + 5);
    EXPECT_FALSE(ti.outstandingMiss);
    EXPECT_TRUE(ti.recentFill);
    // Outside the window the hint disappears.
    const auto late = h.timingInfo(0x30000, a.readyAt + 100);
    EXPECT_FALSE(late.recentFill);
}

TEST(Hierarchy, TimingInfoUnknownLine)
{
    MemoryHierarchy h(params());
    const auto ti = h.timingInfo(0x77777, 10);
    EXPECT_FALSE(ti.outstandingMiss);
    EXPECT_FALSE(ti.recentFill);
}

TEST(Hierarchy, LatencyAccessors)
{
    MemoryHierarchy h(params());
    EXPECT_EQ(h.l1Latency(), 5u);
    EXPECT_EQ(h.l2Latency(), 12u);
    EXPECT_EQ(h.memLatency(), 52u);
}

TEST(Hierarchy, DefaultsMatchPaperMachine)
{
    HierarchyParams def;
    EXPECT_EQ(def.l1.sizeBytes, 16u * 1024);
    EXPECT_EQ(def.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(def.l2.assoc, 4u);
    EXPECT_EQ(def.l1.lineBytes, 64u);
}

} // namespace
} // namespace lrs
