/**
 * @file
 * Tests for the synthetic trace generator and the trace library:
 * determinism, structural invariants (STA/STD pairing, register
 * ranges, branch semantics), per-PC recurrence and the group catalog.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "memory/mob.hh"
#include "trace/library.hh"
#include "trace/synthetic.hh"

namespace lrs
{
namespace
{

std::unique_ptr<VecTrace>
makeWd(std::uint64_t len = 30000)
{
    return TraceLibrary::make(TraceLibrary::byName("wd", len));
}

TEST(TraceGen, ExactRequestedLength)
{
    EXPECT_EQ(makeWd(30000)->size(), 30000u);
    EXPECT_EQ(makeWd(1000)->size(), 1000u);
}

TEST(TraceGen, Deterministic)
{
    auto a = makeWd(20000);
    auto b = makeWd(20000);
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t i = 0; i < a->size(); ++i) {
        const Uop &x = a->uops()[i];
        const Uop &y = b->uops()[i];
        ASSERT_EQ(x.pc, y.pc) << "at " << i;
        ASSERT_EQ(x.cls, y.cls) << "at " << i;
        ASSERT_EQ(x.addr, y.addr) << "at " << i;
        ASSERT_EQ(x.taken, y.taken) << "at " << i;
    }
}

TEST(TraceGen, DifferentSeedsDiffer)
{
    TraceParams p1 = TraceLibrary::byName("wd", 10000);
    TraceParams p2 = p1;
    p2.seed ^= 0x5555;
    auto a = generateTrace(p1);
    auto b = generateTrace(p2);
    std::size_t same = 0;
    for (std::size_t i = 0; i < a->size(); ++i)
        same += a->uops()[i].pc == b->uops()[i].pc;
    EXPECT_LT(same, a->size());
}

TEST(TraceGen, StdImmediatelyFollowsSta)
{
    auto t = makeWd();
    const auto &u = t->uops();
    for (std::size_t i = 0; i < u.size(); ++i) {
        if (u[i].isStd()) {
            ASSERT_GT(i, 0u);
            EXPECT_TRUE(u[i - 1].isSta()) << "at " << i;
        }
        if (u[i].isSta() && i + 1 < u.size()) {
            EXPECT_TRUE(u[i + 1].isStd()) << "at " << i;
        }
    }
}

TEST(TraceGen, RegistersWithinArchitecturalRange)
{
    auto t = makeWd();
    for (const Uop &u : t->uops()) {
        EXPECT_LT(u.dst, kNumArchRegs);
        EXPECT_LT(u.src1, kNumArchRegs);
        EXPECT_LT(u.src2, kNumArchRegs);
        EXPECT_GE(u.dst, -1);
        EXPECT_GE(u.src1, -1);
        EXPECT_GE(u.src2, -1);
    }
}

TEST(TraceGen, MemoryOpsHaveAddressesOthersDoNot)
{
    auto t = makeWd();
    for (const Uop &u : t->uops()) {
        if (u.isLoad() || u.isSta()) {
            EXPECT_NE(u.addr, kAddrInvalid);
            EXPECT_GT(u.memSize, 0);
        } else {
            EXPECT_EQ(u.addr, kAddrInvalid);
        }
    }
}

TEST(TraceGen, ClassMixRealistic)
{
    auto t = makeWd(100000);
    std::map<UopClass, std::size_t> counts;
    for (const Uop &u : t->uops())
        ++counts[u.cls];
    const double n = static_cast<double>(t->size());
    const double loads = counts[UopClass::Load] / n;
    const double stas = counts[UopClass::StoreAddr] / n;
    const double branches = counts[UopClass::Branch] / n;
    EXPECT_GT(loads, 0.10);
    EXPECT_LT(loads, 0.40);
    EXPECT_GT(stas, 0.03);
    EXPECT_LT(stas, 0.25);
    EXPECT_GT(branches, 0.03);
    EXPECT_LT(branches, 0.30);
    EXPECT_EQ(counts[UopClass::StoreAddr],
              counts[UopClass::StoreData]);
}

TEST(TraceGen, PerPcRecurrence)
{
    // Predictors need recurrent static loads: the number of distinct
    // load PCs must be far below the dynamic load count.
    auto t = makeWd(100000);
    std::set<Addr> pcs;
    std::size_t loads = 0;
    for (const Uop &u : t->uops()) {
        if (u.isLoad()) {
            ++loads;
            pcs.insert(u.pc);
        }
    }
    EXPECT_LT(pcs.size() * 20, loads);
    EXPECT_GT(pcs.size(), 10u);
}

TEST(TraceGen, RecurrentCollisionPairsExist)
{
    // Push/param-load and RMW reload pairs: some static load PC must
    // repeatedly read an address stored shortly before.
    auto t = makeWd(60000);
    const auto &u = t->uops();
    std::map<Addr, int> collider_counts; // load pc -> occurrences
    for (std::size_t i = 0; i < u.size(); ++i) {
        if (!u[i].isLoad())
            continue;
        const std::size_t lo = i > 40 ? i - 40 : 0;
        for (std::size_t j = i; j-- > lo;) {
            if (u[j].isSta() &&
                rangesOverlap(u[j].addr, u[j].memSize, u[i].addr,
                              u[i].memSize)) {
                ++collider_counts[u[i].pc];
                break;
            }
        }
    }
    int recurrent = 0;
    for (const auto &[pc, n] : collider_counts)
        recurrent += n >= 10;
    EXPECT_GE(recurrent, 3)
        << "expected several static loads that collide repeatedly";
}

TEST(TraceGen, BranchOutcomesMostlyPredictable)
{
    // Call/return and chase-end branches are always taken; loop
    // branches are taken except at exit. A simple majority check:
    // most branches are taken.
    auto t = makeWd(60000);
    std::size_t taken = 0, total = 0;
    for (const Uop &u : t->uops()) {
        if (u.isBranch()) {
            ++total;
            taken += u.taken;
        }
    }
    EXPECT_GT(static_cast<double>(taken) / total, 0.6);
}

TEST(TraceGen, StackAddressesBelowStackTop)
{
    auto t = makeWd(30000);
    for (const Uop &u : t->uops()) {
        if (u.isMem() && u.addr >= 0x70000000ull) {
            EXPECT_LT(u.addr, 0x80000000ull);
        }
    }
}

TEST(Uop, ToStringRendersFields)
{
    Uop u;
    u.pc = 0x4010;
    u.cls = UopClass::Load;
    u.dst = 3;
    u.src1 = 5;
    u.addr = 0x8000;
    u.memSize = 8;
    const std::string s = u.toString();
    EXPECT_NE(s.find("Load"), std::string::npos);
    EXPECT_NE(s.find("0x4010"), std::string::npos);
    EXPECT_NE(s.find("d=r3"), std::string::npos);
    EXPECT_NE(s.find("[0x8000]"), std::string::npos);

    Uop b;
    b.cls = UopClass::Branch;
    b.taken = true;
    EXPECT_NE(b.toString().find(" T"), std::string::npos);
    EXPECT_STREQ(uopClassName(UopClass::StoreAddr), "StoreAddr");
}

TEST(VecTrace, IterationAndReset)
{
    std::vector<Uop> uops(3);
    uops[0].pc = 1;
    uops[1].pc = 2;
    uops[2].pc = 3;
    VecTrace t("small", std::move(uops));
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.next()->pc, 1u);
    EXPECT_EQ(t.next()->pc, 2u);
    EXPECT_EQ(t.next()->pc, 3u);
    EXPECT_EQ(t.next(), nullptr);
    t.reset();
    EXPECT_EQ(t.next()->pc, 1u);
}

TEST(TraceLibrary, CatalogMatchesPaperCounts)
{
    // Section 3: SpecInt95 8, SpecFP95 10, SysmarkNT 8, Sysmark95 8,
    // Games 5, Java 5, TPC 2.
    EXPECT_EQ(TraceLibrary::names(TraceGroup::SpecInt95).size(), 8u);
    EXPECT_EQ(TraceLibrary::names(TraceGroup::SpecFP95).size(), 10u);
    EXPECT_EQ(TraceLibrary::names(TraceGroup::SysmarkNT).size(), 8u);
    EXPECT_EQ(TraceLibrary::names(TraceGroup::Sysmark95).size(), 8u);
    EXPECT_EQ(TraceLibrary::names(TraceGroup::Games).size(), 5u);
    EXPECT_EQ(TraceLibrary::names(TraceGroup::Java).size(), 5u);
    EXPECT_EQ(TraceLibrary::names(TraceGroup::TPC).size(), 2u);
}

TEST(TraceLibrary, Figure7TraceLabels)
{
    const auto names = TraceLibrary::names(TraceGroup::SysmarkNT);
    const std::vector<std::string> expect = {"cd", "ex", "fl", "pd",
                                             "pm", "pp", "wd", "wp"};
    EXPECT_EQ(names, expect);
}

TEST(TraceLibrary, ByNameMatchesGroupEntry)
{
    const auto group = TraceLibrary::group(TraceGroup::SysmarkNT, 5000);
    const auto byname = TraceLibrary::byName("wd", 5000);
    bool found = false;
    for (const auto &p : group) {
        if (p.name == "wd") {
            found = true;
            EXPECT_EQ(p.seed, byname.seed);
            EXPECT_EQ(p.chaseFootprint, byname.chaseFootprint);
        }
    }
    EXPECT_TRUE(found);
}

TEST(TraceLibrary, UnknownNameThrows)
{
    EXPECT_THROW(TraceLibrary::byName("nonexistent"),
                 std::invalid_argument);
}

TEST(TraceLibrary, TracesWithinGroupDiffer)
{
    const auto group = TraceLibrary::group(TraceGroup::SysmarkNT, 1000);
    ASSERT_GE(group.size(), 2u);
    EXPECT_NE(group[0].seed, group[1].seed);
}

/** Every named trace in the catalog must generate cleanly. */
class AllTracesSuite : public ::testing::TestWithParam<TraceGroup>
{
};

TEST_P(AllTracesSuite, GeneratesAndIsWellFormed)
{
    for (const auto &p : TraceLibrary::group(GetParam(), 4000)) {
        auto t = TraceLibrary::make(p);
        ASSERT_EQ(t->size(), 4000u) << p.name;
        std::size_t loads = 0;
        for (const Uop &u : t->uops())
            loads += u.isLoad();
        EXPECT_GT(loads, 200u) << p.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllGroups, AllTracesSuite,
    ::testing::Values(TraceGroup::SpecInt95, TraceGroup::SpecFP95,
                      TraceGroup::SysmarkNT, TraceGroup::Sysmark95,
                      TraceGroup::Games, TraceGroup::Java,
                      TraceGroup::TPC),
    [](const auto &info) {
        return std::string(traceGroupName(info.param));
    });

} // namespace
} // namespace lrs
