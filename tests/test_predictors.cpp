/**
 * @file
 * Unit and property tests for the binary predictor components
 * (bimodal, local, gshare, gskew) and the chooser composites.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "common/random.hh"
#include "predictors/bimodal.hh"
#include "predictors/chooser.hh"
#include "predictors/gshare.hh"
#include "predictors/gskew.hh"
#include "predictors/local.hh"

namespace lrs
{
namespace
{

using MakeFn = std::function<std::unique_ptr<BinaryPredictor>()>;

/** Train on a repeating pattern at one PC; return final accuracy. */
double
accuracyOnPattern(BinaryPredictor &p, Addr pc,
                  const std::vector<bool> &pattern, int reps)
{
    int correct = 0, total = 0;
    for (int r = 0; r < reps; ++r) {
        for (const bool outcome : pattern) {
            const auto pred = p.predict(pc);
            if (r >= reps / 2) { // measure after warmup
                ++total;
                correct += pred.taken == outcome;
            }
            p.update(pc, outcome);
        }
    }
    return total ? static_cast<double>(correct) / total : 0.0;
}

struct PredictorSpec
{
    std::string name;
    MakeFn make;
};

class BinaryPredictorSuite
    : public ::testing::TestWithParam<PredictorSpec>
{
};

TEST_P(BinaryPredictorSuite, LearnsConstantTaken)
{
    auto p = GetParam().make();
    EXPECT_GT(accuracyOnPattern(*p, 0x4000, {true}, 100), 0.99);
}

TEST_P(BinaryPredictorSuite, LearnsConstantNotTaken)
{
    auto p = GetParam().make();
    EXPECT_GT(accuracyOnPattern(*p, 0x4000, {false}, 100), 0.99);
}

TEST_P(BinaryPredictorSuite, LearnsShortPeriodicPattern)
{
    auto p = GetParam().make();
    // T T N repeated: history-based predictors should nail this;
    // bimodal converges to majority (2/3).
    const double acc =
        accuracyOnPattern(*p, 0x4000, {true, true, false}, 200);
    EXPECT_GT(acc, 0.6);
}

TEST_P(BinaryPredictorSuite, ResetForgets)
{
    auto p = GetParam().make();
    accuracyOnPattern(*p, 0x4000, {true}, 50);
    p->reset();
    // Immediately after reset a fresh prediction carries low
    // confidence (no training).
    const auto pred = p->predict(0x4000);
    EXPECT_LE(pred.confidence, 1.0);
    // And the predictor can relearn the opposite behaviour.
    EXPECT_GT(accuracyOnPattern(*p, 0x4000, {false}, 50), 0.9);
}

TEST_P(BinaryPredictorSuite, StorageBitsPositive)
{
    auto p = GetParam().make();
    EXPECT_GT(p->storageBits(), 0u);
}

TEST_P(BinaryPredictorSuite, ConfidenceWithinUnitRange)
{
    auto p = GetParam().make();
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const Addr pc = 0x4000 + rng.below(64) * 4;
        const auto pred = p->predict(pc);
        ASSERT_GE(pred.confidence, 0.0);
        ASSERT_LE(pred.confidence, 1.0);
        p->update(pc, rng.chance(0.5));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBinaryPredictors, BinaryPredictorSuite,
    ::testing::Values(
        PredictorSpec{"bimodal",
                      [] { return std::make_unique<BimodalPredictor>(
                               2048); }},
        PredictorSpec{"local",
                      [] { return std::make_unique<LocalPredictor>(
                               2048, 8); }},
        PredictorSpec{"gshare",
                      [] { return std::make_unique<GsharePredictor>(
                               11); }},
        PredictorSpec{"gskew",
                      [] { return std::make_unique<GskewPredictor>(
                               1024, 17); }}),
    [](const auto &info) { return info.param.name; });

TEST(LocalPredictor, TracksPerPcPatternsIndependently)
{
    LocalPredictor p(2048, 8);
    // Two PCs with opposite constant behaviour.
    for (int i = 0; i < 100; ++i) {
        p.update(0x4000, true);
        p.update(0x8000, false);
    }
    EXPECT_TRUE(p.predict(0x4000).taken);
    EXPECT_FALSE(p.predict(0x8000).taken);
}

TEST(LocalPredictor, LearnsLongerPeriodThanBimodalCan)
{
    LocalPredictor local(2048, 8);
    BimodalPredictor bimodal(2048);
    // Period-4 pattern with 3:1 bias: N N N T.
    const std::vector<bool> pat = {false, false, false, true};
    const double la = accuracyOnPattern(local, 0x4000, pat, 300);
    const double ba = accuracyOnPattern(bimodal, 0x4000, pat, 300);
    EXPECT_GT(la, 0.95);
    EXPECT_LT(ba, 0.85); // bimodal predicts the majority only
}

TEST(GsharePredictor, InitialBiasHonoured)
{
    GsharePredictor p(10, 2, 2); // weakly taken
    EXPECT_TRUE(p.predict(0x1234).taken);
    GsharePredictor q(10, 2, 0);
    EXPECT_FALSE(q.predict(0x1234).taken);
}

TEST(GskewPredictor, MajorityOfBanks)
{
    GskewPredictor p(256, 10);
    for (int i = 0; i < 20; ++i)
        p.update(0x4000, true);
    EXPECT_TRUE(p.predict(0x4000).taken);
}

TEST(Chooser, MajorityAlwaysPredicts)
{
    std::vector<CompositePredictor::Component> comps;
    comps.push_back({std::make_unique<BimodalPredictor>(256), 1.0});
    comps.push_back({std::make_unique<GsharePredictor>(8), 1.0});
    comps.push_back({std::make_unique<GskewPredictor>(256, 8), 1.0});
    CompositePredictor c(std::move(comps), ChoosePolicy::Majority);
    const auto m = c.predictMaybe(0x4000);
    EXPECT_TRUE(m.valid);
}

TEST(Chooser, MajorityFollowsComponents)
{
    std::vector<CompositePredictor::Component> comps;
    comps.push_back({std::make_unique<BimodalPredictor>(256), 1.0});
    comps.push_back({std::make_unique<GsharePredictor>(8), 1.0});
    comps.push_back({std::make_unique<GskewPredictor>(256, 8), 1.0});
    CompositePredictor c(std::move(comps), ChoosePolicy::Majority);
    for (int i = 0; i < 50; ++i)
        c.update(0x4000, true);
    EXPECT_TRUE(c.predict(0x4000).taken);
}

TEST(Chooser, UnanimityThresholdDeclinesOnDisagreement)
{
    // Two components trained in opposite directions can never reach a
    // +-2 unanimous sum.
    std::vector<CompositePredictor::Component> comps;
    comps.push_back({std::make_unique<BimodalPredictor>(256), 1.0});
    comps.push_back({std::make_unique<GsharePredictor>(8, 2, 3), 1.0});
    CompositePredictor c(std::move(comps),
                         ChoosePolicy::WeightedThreshold, 2.0);
    // bimodal starts at 0 (not-taken) while gshare starts saturated
    // taken: they disagree before training.
    const auto m = c.predictMaybe(0x4000);
    EXPECT_FALSE(m.valid);
}

TEST(Chooser, UnanimityThresholdPredictsOnAgreement)
{
    std::vector<CompositePredictor::Component> comps;
    comps.push_back({std::make_unique<BimodalPredictor>(256), 1.0});
    comps.push_back({std::make_unique<GsharePredictor>(8), 1.0});
    CompositePredictor c(std::move(comps),
                         ChoosePolicy::WeightedThreshold, 2.0);
    for (int i = 0; i < 30; ++i)
        c.update(0x4000, true);
    const auto m = c.predictMaybe(0x4000);
    EXPECT_TRUE(m.valid);
    EXPECT_TRUE(m.taken);
}

TEST(Chooser, WeightsBias)
{
    // A weight-3 taken-biased component outvotes two not-taken ones
    // under a weighted threshold.
    std::vector<CompositePredictor::Component> comps;
    comps.push_back({std::make_unique<GsharePredictor>(8, 2, 3), 3.0});
    comps.push_back({std::make_unique<BimodalPredictor>(256), 1.0});
    comps.push_back({std::make_unique<BimodalPredictor>(256), 1.0});
    CompositePredictor c(std::move(comps),
                         ChoosePolicy::WeightedThreshold, 1.0);
    const auto m = c.predictMaybe(0x4000);
    EXPECT_TRUE(m.valid);
    EXPECT_TRUE(m.taken); // +3 - 1 - 1 = +1 >= 1
}

TEST(Chooser, ConfidenceFilteredNeedsConfidentComponents)
{
    std::vector<CompositePredictor::Component> comps;
    comps.push_back({std::make_unique<BimodalPredictor>(256), 1.0});
    CompositePredictor c(std::move(comps),
                         ChoosePolicy::ConfidenceFiltered,
                         /*threshold=*/1.0, /*conf_cutoff=*/0.9);
    // Untrained counter at 0 is fully confident not-taken (distance
    // from threshold is max), so it votes; after one taken update the
    // counter sits at 1 (weakly not-taken) with low confidence and is
    // filtered out.
    c.update(0x4000, true);
    const auto m = c.predictMaybe(0x4000);
    EXPECT_FALSE(m.valid);
}

TEST(Chooser, NameAndStorageAggregate)
{
    std::vector<CompositePredictor::Component> comps;
    comps.push_back({std::make_unique<BimodalPredictor>(256), 1.0});
    comps.push_back({std::make_unique<GsharePredictor>(8), 2.0});
    CompositePredictor c(std::move(comps), ChoosePolicy::Majority);
    EXPECT_EQ(c.name(), "bimodal+2*gshare");
    EXPECT_EQ(c.storageBits(), 256u * 2 + (256u * 2 + 8));
    EXPECT_EQ(c.numComponents(), 2u);
}

} // namespace
} // namespace lrs
