/**
 * @file
 * Tests of the resilient sweep supervisor (core/supervisor.hh):
 * journaling + resume byte-identity, grid-mismatch rejection, the
 * bounded retry policy, deterministic per-cell deadlines, failure
 * containment (an AuditError fails one cell, not the sweep), and —
 * in the SupervisorIsolate suite — the fork-per-cell isolation mode.
 *
 * Suite naming is deliberate: "ParallelSupervisor*" suites exercise
 * the supervisor over the thread pool and run under
 * `ctest -R Parallel` (tools/run_sanitized.sh --tsan); the fork-based
 * "SupervisorIsolate" suite is excluded from that TSan pass because
 * fork() inside an instrumented multithreaded process is outside
 * TSan's supported model (ASan/UBSan run it fine).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/diag.hh"
#include "common/journal.hh"
#include "core/runner.hh"
#include "core/supervisor.hh"
#include "trace/library.hh"

namespace lrs
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "lrs_supervisor_" + name;
}

/** Clear the process-wide interrupt flag however the test exits. */
struct InterruptGuard
{
    InterruptGuard() { clearSweepInterrupt(); }
    ~InterruptGuard() { clearSweepInterrupt(); }
};

std::vector<std::string>
makeKeys(std::size_t n)
{
    std::vector<std::string> keys;
    for (std::size_t i = 0; i < n; ++i)
        keys.push_back("cell" + std::to_string(i));
    return keys;
}

/** A cheap deterministic "simulation": cell i yields cycles 1000+i. */
JobOutcome
fakeCell(std::size_t cell)
{
    JobOutcome o;
    o.result.trace = "t" + std::to_string(cell);
    o.result.config = "c";
    o.result.cycles = 1000 + cell;
    o.result.uops = 500;
    return o;
}

/** A small real (trace × scheme) grid, as --batch would build it. */
std::vector<SimJob>
realGrid()
{
    std::vector<SimJob> jobs;
    for (const char *name : {"wd", "gcc"}) {
        for (const auto scheme :
             {OrderingScheme::Traditional, OrderingScheme::Exclusive}) {
            SimJob j;
            j.trace = TraceLibrary::byName(name, 20000);
            j.cfg.scheme = scheme;
            j.cfg.cht.trackDistance = true;
            jobs.push_back(j);
        }
    }
    return jobs;
}

std::string
dumpResults(const std::vector<JobOutcome> &outcomes)
{
    std::string out;
    for (const auto &o : outcomes) {
        EXPECT_TRUE(o.status == CellStatus::Ok ||
                    o.status == CellStatus::Skipped)
            << o.error;
        out += o.resultJson.dump(0);
        out += "\n";
    }
    return out;
}

TEST(ParallelSupervisor, RunsEveryCellAndFillsResultJson)
{
    InterruptGuard guard;
    SweepOptions opts;
    opts.workers = 4;
    SweepSupervisor sup(opts);
    const auto outcomes = sup.run(
        8, makeKeys(8),
        [](std::size_t cell, unsigned) { return fakeCell(cell); });
    ASSERT_EQ(outcomes.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(outcomes[i].status, CellStatus::Ok);
        EXPECT_EQ(outcomes[i].attempts, 1u);
        EXPECT_FALSE(outcomes[i].resultJson.isNull());
        EXPECT_EQ(outcomes[i].resultJson.at("cycles").asU64(),
                  1000 + i);
    }
    EXPECT_EQ(sup.sweepStats().ok, 8u);
    EXPECT_EQ(sup.sweepStats().gaveUp, 0u);
    EXPECT_FALSE(sup.interrupted());
    // The accounting is also a registry ("sweep.*") for JSON export.
    EXPECT_EQ(sup.stats().value("sweep.ok"), 8.0);
}

TEST(ParallelSupervisor, ResumeSkipsJournaledCellsWithoutRerunning)
{
    InterruptGuard guard;
    const std::string path = tmpPath("resume_skip.jsonl");
    std::remove(path.c_str());

    SweepOptions opts;
    opts.journalPath = path;
    opts.workers = 2;
    {
        SweepSupervisor sup(opts);
        sup.run(6, makeKeys(6), [](std::size_t cell, unsigned) {
            return fakeCell(cell);
        });
    }

    opts.resume = true;
    SweepSupervisor sup(opts);
    std::atomic<unsigned> reran{0};
    const auto outcomes =
        sup.run(6, makeKeys(6), [&](std::size_t cell, unsigned) {
            reran.fetch_add(1);
            return fakeCell(cell);
        });
    EXPECT_EQ(reran.load(), 0u);
    EXPECT_EQ(sup.sweepStats().skipped, 6u);
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(outcomes[i].status, CellStatus::Skipped);
        EXPECT_EQ(outcomes[i].attempts, 0u);
        EXPECT_EQ(outcomes[i].resultJson.at("cycles").asU64(),
                  1000 + i);
        // The restored summary feeds the report table.
        EXPECT_EQ(outcomes[i].result.cycles, 1000 + i);
    }
    std::remove(path.c_str());
}

TEST(ParallelSupervisor, ProgressHeartbeatsCountOnlyFreshWorkOnResume)
{
    InterruptGuard guard;
    const std::string path = tmpPath("resume_progress.jsonl");
    std::remove(path.c_str());

    SweepOptions opts;
    opts.journalPath = path;
    opts.workers = 2;
    {
        // First pass: cells 0-2 succeed and journal OK records; 3-5
        // fail, so the resume below must re-run exactly those three.
        SweepSupervisor sup(opts);
        sup.run(6, makeKeys(6),
                [](std::size_t cell, unsigned) -> JobOutcome {
                    if (cell >= 3)
                        throwConfig("test", "cell", "induced failure");
                    return fakeCell(cell);
                });
    }

    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    opts.resume = true;
    opts.progressFd = fds[1];
    SweepSupervisor sup(opts);
    const auto outcomes = sup.run(
        6, makeKeys(6),
        [](std::size_t cell, unsigned) { return fakeCell(cell); });
    close(fds[1]);

    ASSERT_EQ(sup.sweepStats().skipped, 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(outcomes[i].status, CellStatus::Skipped);
    for (std::size_t i = 3; i < 6; ++i)
        EXPECT_EQ(outcomes[i].status, CellStatus::Ok);

    std::string stream;
    char buf[4096];
    for (ssize_t k; (k = read(fds[0], buf, sizeof buf)) > 0;)
        stream.append(buf, static_cast<std::size_t>(k));
    close(fds[0]);

    // Every heartbeat: journal-restored cells ride in "skipped" and
    // never leak into done/uops (the rate and ETA basis). The
    // regression counted them as fresh completions, which inflated
    // the uops/sec rate with work this process never did.
    std::size_t lines = 0;
    json::Value last;
    std::istringstream is(stream);
    for (std::string line; std::getline(is, line);) {
        ++lines;
        const json::Value hb = json::Value::parse(line);
        EXPECT_EQ(hb.at("type").asString(), "progress");
        EXPECT_EQ(hb.at("total").asU64(), 6u);
        EXPECT_EQ(hb.at("skipped").asU64(), 3u);
        const std::uint64_t done = hb.at("done").asU64();
        EXPECT_LE(done, 3u);
        EXPECT_EQ(hb.at("uops").asU64(), done * 500u);
        // No rate basis until the first FRESH completion.
        if (done == 0)
            EXPECT_TRUE(hb.at("eta_ms").isNull());
        last = hb;
    }
    ASSERT_GE(lines, 2u); // at least the initial + final heartbeats
    EXPECT_EQ(last.at("done").asU64(), 3u);
    EXPECT_EQ(last.at("ok").asU64(), 3u);
    EXPECT_EQ(last.at("uops").asU64(), 1500u);
    // Nothing remains: the closing ETA is exactly zero, not a
    // skipped-cells-made-it-negative artifact.
    EXPECT_EQ(last.at("eta_ms").asU64(), 0u);
    std::remove(path.c_str());
}

TEST(ParallelSupervisor, ResumeIsByteIdenticalToUninterruptedRun)
{
    InterruptGuard guard;
    const auto jobs = realGrid();
    const auto keys = makeKeys(jobs.size());
    const std::string path = tmpPath("resume_ident.jsonl");
    std::remove(path.c_str());

    SweepOptions opts;
    opts.journalPath = path;
    opts.workers = 2;
    std::string full;
    {
        SweepSupervisor sup(opts);
        full = dumpResults(sup.run(jobs, keys));
    }

    // Simulate a crash after two cells: keep only the first two
    // journal lines (whatever order they landed in).
    std::string bytes;
    {
        std::vector<json::Value> recs = readJournal(path);
        ASSERT_EQ(recs.size(), jobs.size());
        bytes = journalLine(recs[0]) + journalLine(recs[1]);
    }
    std::remove(path.c_str());

    for (const unsigned workers : {1u, 2u, 8u}) {
        SweepOptions ro = opts;
        ro.resume = true;
        ro.workers = workers;
        // Resume into a scratch copy so each loop iteration starts
        // from the same two-record journal.
        const std::string scratch =
            tmpPath("resume_ident_scratch.jsonl");
        {
            std::ofstream os(scratch,
                             std::ios::binary | std::ios::trunc);
            os << bytes;
        }
        ro.journalPath = scratch;
        SweepSupervisor sup(ro);
        const auto resumed = sup.run(jobs, keys);
        EXPECT_EQ(sup.sweepStats().skipped, 2u);
        EXPECT_EQ(dumpResults(resumed), full)
            << "workers=" << workers;
        std::remove(scratch.c_str());
    }
    std::remove(path.c_str());
}

TEST(ParallelSupervisor, JournalFromDifferentGridIsRejected)
{
    InterruptGuard guard;
    const std::string path = tmpPath("mismatch.jsonl");
    std::remove(path.c_str());

    SweepOptions opts;
    opts.journalPath = path;
    opts.workers = 1;
    {
        SweepSupervisor sup(opts);
        sup.run(4, makeKeys(4), [](std::size_t cell, unsigned) {
            return fakeCell(cell);
        });
    }

    opts.resume = true;
    // Same size, different keys: must be rejected, not half-resumed.
    std::vector<std::string> other = makeKeys(4);
    other[2] = "someone_elses_grid";
    SweepSupervisor sup(opts);
    try {
        sup.run(4, other, [](std::size_t cell, unsigned) {
            return fakeCell(cell);
        });
        FAIL() << "mismatched journal was accepted";
    } catch (const ConfigError &e) {
        ASSERT_FALSE(e.diags().empty());
        EXPECT_EQ(e.diags().front().code, DiagCode::JournalInvalid);
    }

    // A journal larger than the grid is a mismatch too.
    SweepSupervisor small(opts);
    EXPECT_THROW(small.run(2, makeKeys(2),
                           [](std::size_t cell, unsigned) {
                               return fakeCell(cell);
                           }),
                 ConfigError);
    std::remove(path.c_str());
}

TEST(ParallelSupervisor, TransientFailureClearsWithinRetryBudget)
{
    InterruptGuard guard;
    SweepOptions opts;
    opts.retries = 2;
    opts.workers = 2;
    SweepSupervisor sup(opts);
    const auto outcomes = sup.run(
        5, makeKeys(5), [](std::size_t cell, unsigned attempt) {
            if (cell == 3 && attempt < 3) {
                throw AuditError({makeDiag(DiagCode::AuditViolation,
                                           "test", "",
                                           "transient fault")});
            }
            return fakeCell(cell);
        });
    EXPECT_EQ(outcomes[3].status, CellStatus::Ok);
    EXPECT_EQ(outcomes[3].attempts, 3u);
    EXPECT_EQ(sup.sweepStats().ok, 5u);
    EXPECT_EQ(sup.sweepStats().retries, 2u);
    EXPECT_EQ(sup.sweepStats().gaveUp, 0u);
}

TEST(ParallelSupervisor, PersistentFailureGivesUpWithTaxonomy)
{
    InterruptGuard guard;
    SweepOptions opts;
    opts.retries = 1;
    opts.workers = 2;
    SweepSupervisor sup(opts);
    const auto outcomes = sup.run(
        4, makeKeys(4), [](std::size_t cell, unsigned) -> JobOutcome {
            if (cell == 1)
                throwConfig("test", "knob", "always invalid");
            return fakeCell(cell);
        });
    EXPECT_EQ(outcomes[1].status, CellStatus::Failed);
    EXPECT_EQ(outcomes[1].code, "E_CONFIG_INVALID");
    EXPECT_EQ(outcomes[1].attempts, 2u);
    EXPECT_EQ(sup.sweepStats().retries, 1u);
    EXPECT_EQ(sup.sweepStats().gaveUp, 1u);
    EXPECT_EQ(sup.sweepStats().ok, 3u);
}

TEST(ParallelSupervisor, AuditErrorFailsOnlyItsCellAndIsJournaled)
{
    InterruptGuard guard;
    const std::string path = tmpPath("audit.jsonl");
    std::remove(path.c_str());
    SweepOptions opts;
    opts.journalPath = path;
    opts.workers = 2;
    SweepSupervisor sup(opts);
    const auto outcomes = sup.run(
        4, makeKeys(4), [](std::size_t cell, unsigned) -> JobOutcome {
            if (cell == 2) {
                throw AuditError({makeDiag(
                    DiagCode::AuditViolation, "core.auditor", "rob",
                    "head sequence regressed", 4242)});
            }
            return fakeCell(cell);
        });
    for (std::size_t i = 0; i < 4; ++i) {
        if (i == 2) {
            EXPECT_EQ(outcomes[i].status, CellStatus::Failed);
            EXPECT_EQ(outcomes[i].code, "E_AUDIT_VIOLATION");
        } else {
            EXPECT_EQ(outcomes[i].status, CellStatus::Ok)
                << outcomes[i].error;
        }
    }
    // The violation is in the journal — a resumed sweep re-runs the
    // poisoned cell but trusts the three clean ones.
    const auto recs = readJournal(path);
    ASSERT_EQ(recs.size(), 4u);
    unsigned failedRecords = 0;
    for (const auto &r : recs) {
        if (r.at("status").asString() == "FAILED") {
            ++failedRecords;
            EXPECT_EQ(r.at("cell").asU64(), 2u);
            EXPECT_EQ(r.at("code").asString(), "E_AUDIT_VIOLATION");
        }
    }
    EXPECT_EQ(failedRecords, 1u);
    std::remove(path.c_str());
}

TEST(ParallelSupervisor, MaxCyclesBudgetIsDeterministicTimeout)
{
    InterruptGuard guard;
    SimJob job;
    job.trace = TraceLibrary::byName("wd", 50000);
    job.cfg.scheme = OrderingScheme::Exclusive;
    job.cfg.maxCycles = 1000; // far below what 50k uops need

    SweepOptions opts;
    opts.workers = 1;
    SweepSupervisor sup(opts);
    const auto outcomes = sup.run({job}, {"wd/Exclusive"});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, CellStatus::Timeout);
    EXPECT_EQ(outcomes[0].code, "E_DEADLINE_EXCEEDED");
    EXPECT_EQ(sup.sweepStats().timeout, 1u);
    EXPECT_EQ(sup.sweepStats().gaveUp, 1u);
}

TEST(ParallelSupervisor, InterruptedSweepResumesWhereItStopped)
{
    InterruptGuard guard;
    const std::string path = tmpPath("interrupt.jsonl");
    std::remove(path.c_str());

    SweepOptions opts;
    opts.journalPath = path;
    opts.workers = 1; // serial: cells run in ascending id order
    {
        SweepSupervisor sup(opts);
        const auto outcomes = sup.run(
            6, makeKeys(6), [](std::size_t cell, unsigned) {
                if (cell == 2)
                    requestSweepInterrupt(); // "SIGINT" mid-sweep
                return fakeCell(cell);
            });
        EXPECT_TRUE(sup.interrupted());
        // Cells 0..2 completed (2's interrupt lands after its own
        // simulation); 3..5 were never started and not journaled.
        EXPECT_EQ(sup.sweepStats().ok, 3u);
        EXPECT_EQ(sup.sweepStats().interrupted, 3u);
        for (std::size_t i = 3; i < 6; ++i)
            EXPECT_EQ(outcomes[i].code, "E_INTERRUPTED");
        EXPECT_EQ(readJournal(path).size(), 3u);
    }

    clearSweepInterrupt();
    opts.resume = true;
    SweepSupervisor sup(opts);
    std::vector<std::atomic<unsigned>> reran(6);
    const auto outcomes =
        sup.run(6, makeKeys(6), [&](std::size_t cell, unsigned) {
            reran[cell].fetch_add(1);
            return fakeCell(cell);
        });
    EXPECT_FALSE(sup.interrupted());
    EXPECT_EQ(sup.sweepStats().skipped, 3u);
    EXPECT_EQ(sup.sweepStats().ok, 3u);
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(reran[i].load(), i < 3 ? 0u : 1u) << "cell " << i;
    std::remove(path.c_str());
}

TEST(SupervisorIsolate, CrashedCellIsContainedAndAttributed)
{
    InterruptGuard guard;
    const std::string path = tmpPath("crash.jsonl");
    std::remove(path.c_str());
    SweepOptions opts;
    opts.isolate = true;
    opts.journalPath = path;
    opts.workers = 2;
    SweepSupervisor sup(opts);
    const auto outcomes = sup.run(
        4, makeKeys(4), [](std::size_t cell, unsigned) {
            if (cell == 1) {
                // SIGKILL: uninterceptable, so the child dies the
                // same way under ASan/UBSan as in a plain build.
                std::raise(SIGKILL);
            }
            return fakeCell(cell);
        });
    for (std::size_t i = 0; i < 4; ++i) {
        if (i == 1) {
            EXPECT_EQ(outcomes[i].status, CellStatus::Crashed);
            EXPECT_EQ(outcomes[i].code, "E_CELL_CRASHED");
            EXPECT_EQ(outcomes[i].signal, SIGKILL);
        } else {
            EXPECT_EQ(outcomes[i].status, CellStatus::Ok)
                << outcomes[i].error;
            EXPECT_EQ(outcomes[i].resultJson.at("cycles").asU64(),
                      1000 + i);
        }
    }
    EXPECT_EQ(sup.sweepStats().crashed, 1u);
    EXPECT_EQ(sup.sweepStats().ok, 3u);

    // CRASHED is journaled but not final: a resume re-runs it. Run
    // the resume in-process — a forked child could not report back
    // through the reran counters below.
    opts.resume = true;
    opts.isolate = false;
    SweepSupervisor again(opts);
    std::vector<std::atomic<unsigned>> reran(4);
    again.run(4, makeKeys(4), [&](std::size_t cell, unsigned) {
        reran[cell].fetch_add(1);
        return fakeCell(cell);
    });
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(reran[i].load(), i == 1 ? 1u : 0u) << "cell " << i;
    EXPECT_EQ(again.sweepStats().ok, 1u);
    EXPECT_EQ(again.sweepStats().skipped, 3u);
    std::remove(path.c_str());
}

TEST(SupervisorIsolate, IsolatedResultMatchesInProcessByteForByte)
{
    InterruptGuard guard;
    SimJob job;
    job.trace = TraceLibrary::byName("wd", 20000);
    job.cfg.scheme = OrderingScheme::Exclusive;
    job.cfg.cht.trackDistance = true;

    SweepOptions inproc;
    inproc.workers = 1;
    SweepSupervisor a(inproc);
    const auto direct = a.run({job}, {"wd/Exclusive"});

    SweepOptions forked = inproc;
    forked.isolate = true;
    SweepSupervisor b(forked);
    const auto isolated = b.run({job}, {"wd/Exclusive"});

    ASSERT_EQ(direct[0].status, CellStatus::Ok);
    ASSERT_EQ(isolated[0].status, CellStatus::Ok) << isolated[0].error;
    EXPECT_EQ(isolated[0].resultJson.dump(0),
              direct[0].resultJson.dump(0));
    EXPECT_EQ(isolated[0].result.cycles, direct[0].result.cycles);
}

TEST(SupervisorIsolate, WallClockWatchdogKillsWedgedCell)
{
    InterruptGuard guard;
    SweepOptions opts;
    opts.isolate = true;
    opts.cellTimeoutMs = 300;
    opts.workers = 1;
    opts.retries = 1; // a wedged cell stays wedged: still TIMEOUT
    SweepSupervisor sup(opts);
    const auto outcomes = sup.run(
        2, makeKeys(2), [](std::size_t cell, unsigned) {
            if (cell == 0) {
                for (;;) {
                    struct timespec ts = {1, 0};
                    ::nanosleep(&ts, nullptr);
                }
            }
            return fakeCell(cell);
        });
    EXPECT_EQ(outcomes[0].status, CellStatus::Timeout);
    EXPECT_EQ(outcomes[0].code, "E_DEADLINE_EXCEEDED");
    EXPECT_EQ(outcomes[0].attempts, 2u);
    EXPECT_EQ(outcomes[1].status, CellStatus::Ok) << outcomes[1].error;
    EXPECT_EQ(sup.sweepStats().timeout, 1u);
    EXPECT_EQ(sup.sweepStats().retries, 1u);
}

} // namespace
} // namespace lrs
