/**
 * @file
 * Figure 12 — Bank Predictor Comparison.
 *
 * Statistical evaluation of the four bank predictors (A, B, C, Addr)
 * on SpecINT95 and SpecFP95 with a two-banked cache, plotted via the
 * paper's metric against the misprediction penalty (metric 1 = ideal
 * dual-ported cache). Paper: SpecINT prediction rates ~50% for A/B
 * and ~70% for C/Addr; accuracies ~97-98%; the address predictor and
 * C dominate at high penalties.
 */

#include "core/analysis.hh"

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

namespace
{

BankStats
runGroup(TraceGroup g, const char *which)
{
    // Analyse each trace of the group as one pool job; fold the
    // per-trace slots in trace order (byte-identical to the old
    // serial loop).
    const auto traces = groupTraces(g, 4);
    std::vector<BankStats> slots(traces.size());
    parallelSweep(traces.size(), [&](std::size_t ti) {
        auto trace = TraceLibrary::make(traces[ti]);
        std::unique_ptr<BankPredictor> pred;
        if (std::string(which) == "A")
            pred = makeBankPredictorA();
        else if (std::string(which) == "B")
            pred = makeBankPredictorB();
        else if (std::string(which) == "C")
            pred = makeBankPredictorC();
        else
            pred = makeAddressBankPredictor();
        slots[ti] = analyzeBank(*trace, *pred);
    });
    BankStats agg;
    for (const BankStats &st : slots) {
        agg.loads += st.loads;
        agg.predicted += st.predicted;
        agg.correct += st.correct;
        agg.wrong += st.wrong;
    }
    return agg;
}

} // namespace

int
main()
{
    printHeader("Figure 12: bank predictor comparison (metric)",
                "rates ~50% (A,B) vs ~70% (C,Addr) on SpecINT; "
                "accuracy ~97-98%");

    const std::vector<std::pair<const char *, TraceGroup>> groups = {
        {"SpecINT", TraceGroup::SpecInt95},
        {"SpecFP", TraceGroup::SpecFP95},
    };
    const std::vector<const char *> preds = {"A", "B", "C", "Addr"};

    JsonReport jr("fig12_bank_metric");
    for (const auto &[label, g] : groups) {
        std::cout << "--- " << label << " ---\n";
        TextTable t({"pred", "rate", "accuracy", "R", "pen=0",
                     "pen=1", "pen=2", "pen=4", "pen=6", "pen=8",
                     "pen=10"});
        for (const char *which : preds) {
            const BankStats st = runGroup(g, which);
            t.startRow();
            t.cell(which);
            t.cellPct(st.rate(), 1);
            t.cellPct(st.accuracy(), 2);
            t.cell(st.ratioR(), 1);
            for (const double pen : {0.0, 1.0, 2.0, 4.0, 6.0, 8.0,
                                     10.0})
                t.cell(std::max(0.0, st.metric(pen)), 3);
            jr.beginRow();
            jr.value("group", label);
            jr.value("pred", which);
            jr.value("rate", st.rate());
            jr.value("accuracy", st.accuracy());
            jr.value("ratio_r", st.ratioR());
            jr.value("metric_pen4", std::max(0.0, st.metric(4.0)));
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    jr.write();
    return 0;
}
