/**
 * @file
 * Figure 8 — Speedup vs Machine Configuration.
 *
 * Ordering-scheme speedups across machine widths (EU2/MEM1, EU2/MEM2,
 * EU4/MEM2) for NT, SpecInt, Sysmark95 and "Other" (Games+Java+TPC).
 * Paper: wider machines gain more from better memory ordering; NT and
 * SpecInt gain 8-17%, Sys95/Other 5-10%.
 */

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

namespace
{

struct GroupSpec
{
    const char *label;
    std::vector<TraceGroup> groups;
};

struct WidthSpec
{
    const char *label;
    int intUnits;
    int memUnits;
};

} // namespace

int
main()
{
    printHeader("Figure 8: speedup vs machine configuration",
                "wider machines gain more; NT/ISPEC 8-17%, "
                "Sys95/Other 5-10%");

    const std::vector<GroupSpec> groups = {
        {"NT", {TraceGroup::SysmarkNT}},
        {"ISPEC", {TraceGroup::SpecInt95}},
        {"Sys95", {TraceGroup::Sysmark95}},
        {"Other",
         {TraceGroup::Games, TraceGroup::Java, TraceGroup::TPC}},
    };
    const std::vector<WidthSpec> widths = {
        {"EU2/MEM1", 2, 1},
        {"EU2/MEM2", 2, 2},
        {"EU4/MEM2", 4, 2},
    };

    TextTable t({"group", "machine", "Postponing", "Opportunistic",
                 "Inclusive", "Exclusive", "Perfect"});
    JsonReport jr("fig08_machine_config");

    // Gather the per-group trace subsets once, flatten the
    // (group × width × trace) grid into pool jobs — each runs all
    // six schemes — and aggregate the slots in the original order.
    std::vector<std::vector<TraceParams>> group_traces;
    for (const auto &gs : groups) {
        std::vector<TraceParams> traces;
        for (const auto g : gs.groups) {
            auto part = groupTraces(g, 2);
            traces.insert(traces.end(), part.begin(), part.end());
        }
        group_traces.push_back(std::move(traces));
    }

    struct Cell
    {
        std::size_t gi, wi, ti;
    };
    std::vector<Cell> cells;
    for (std::size_t gi = 0; gi < groups.size(); ++gi)
        for (std::size_t wi = 0; wi < widths.size(); ++wi)
            for (std::size_t ti = 0; ti < group_traces[gi].size();
                 ++ti)
                cells.push_back({gi, wi, ti});

    std::vector<std::vector<SimResult>> all(cells.size());
    parallelSweep(cells.size(), [&](std::size_t idx) {
        const Cell &c = cells[idx];
        MachineConfig cfg;
        cfg.cht = paperCht();
        cfg.intUnits = widths[c.wi].intUnits;
        cfg.memUnits = widths[c.wi].memUnits;
        auto trace = TraceLibrary::make(group_traces[c.gi][c.ti]);
        all[idx] = runAllSchemes(*trace, cfg);
    });

    std::size_t idx = 0;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const auto &gs = groups[gi];
        const auto &traces = group_traces[gi];

        for (const auto &ws : widths) {
            std::vector<std::vector<double>> per_scheme(5);
            for (std::size_t ti = 0; ti < traces.size(); ++ti) {
                const auto &results = all[idx++];
                const SimResult &base = results[0];
                per_scheme[0].push_back(
                    results[2].speedupOver(base)); // Postponing
                per_scheme[1].push_back(
                    results[1].speedupOver(base)); // Opportunistic
                per_scheme[2].push_back(results[3].speedupOver(base));
                per_scheme[3].push_back(results[4].speedupOver(base));
                per_scheme[4].push_back(results[5].speedupOver(base));
            }
            t.startRow();
            t.cell(gs.label);
            t.cell(ws.label);
            for (const auto &v : per_scheme)
                t.cell(mean(v), 3);
            jr.beginRow();
            jr.value("group", gs.label);
            jr.value("machine", ws.label);
            jr.value("postponing", mean(per_scheme[0]));
            jr.value("opportunistic", mean(per_scheme[1]));
            jr.value("inclusive", mean(per_scheme[2]));
            jr.value("exclusive", mean(per_scheme[3]));
            jr.value("perfect", mean(per_scheme[4]));
        }
    }
    t.print(std::cout);
    jr.write();
    return 0;
}
