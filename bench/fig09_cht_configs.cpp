/**
 * @file
 * Figure 9 — CHT design space.
 *
 * Prediction behaviour (not speedup) of the four CHT organisations
 * across sizes, on NT traces: the four conflicting-load categories as
 * a percentage of conflicting loads. The CHT runs in shadow mode (it
 * predicts and trains but does not steer scheduling), matching the
 * figure's focus on predictor behaviour. Paper reference points at 2K
 * entries: Full 3.4% ANC-PC / 0.9% AC-PNC (of all loads); Tagless
 * 3.8% / 0.8%; Tag-only 11% / 0.2%; Combined (with 4K tagless)
 * 12.6% / 0.16%.
 */

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

namespace
{

struct ChtSpec
{
    std::string label;
    ChtParams params;
};

std::vector<ChtSpec>
specs()
{
    std::vector<ChtSpec> out;
    for (const std::size_t n : {128, 256, 512, 1024, 2048}) {
        ChtParams p;
        p.kind = ChtKind::Full;
        p.entries = n;
        p.assoc = 4;
        p.counterBits = 2;
        out.push_back({strprintf("Full-%zu", n), p});
    }
    for (const std::size_t n : {2048, 4096, 8192, 16384, 32768}) {
        ChtParams p;
        p.kind = ChtKind::Tagless;
        p.entries = n;
        p.counterBits = 1;
        out.push_back({strprintf("Tagless-%zu", n), p});
    }
    for (const std::size_t n : {128, 256, 512, 1024, 2048}) {
        ChtParams p;
        p.kind = ChtKind::TagOnly;
        p.entries = n;
        p.assoc = 4;
        out.push_back({strprintf("TagOnly-%zu", n), p});
    }
    for (const std::size_t n : {128, 256, 512, 1024, 2048}) {
        ChtParams p;
        p.kind = ChtKind::Combined;
        p.entries = n;
        p.assoc = 4;
        p.counterBits = 1;
        p.taglessEntries = 4096;
        out.push_back({strprintf("Combined-%zu", n), p});
    }
    return out;
}

} // namespace

int
main()
{
    printHeader(
        "Figure 9: CHT configuration behaviour",
        "at 2K entries (% of all loads): Full 3.4 ANC-PC / 0.9 "
        "AC-PNC; Tagless 3.8/0.8; TagOnly 11/0.2; Combined 12.6/0.16");

    const auto traces = groupTraces(TraceGroup::SysmarkNT, 3);

    TextTable t({"config", "AC-PNC%c", "AC-PC%c", "ANC-PNC%c",
                 "ANC-PC%c", "ANC-PC%all", "AC-PNC%all"});
    JsonReport jr("fig09_cht_configs");

    // Submit the (CHT variant × trace) grid through the pool, then
    // aggregate the slots per variant in the original order.
    const auto variant_specs = specs();
    std::vector<SimJob> jobs;
    for (const auto &spec : variant_specs) {
        MachineConfig cfg;
        cfg.scheme = OrderingScheme::Traditional;
        cfg.chtShadow = true;
        cfg.cht = spec.params;
        for (const auto &tp : traces)
            jobs.push_back({tp, cfg, {}});
    }
    const auto outcomes = SimJobPool::shared().runJobs(jobs);

    for (std::size_t si = 0; si < variant_specs.size(); ++si) {
        const auto &spec = variant_specs[si];
        std::uint64_t ac_pnc = 0, ac_pc = 0, anc_pnc = 0, anc_pc = 0;
        std::uint64_t loads = 0;
        for (std::size_t ti = 0; ti < traces.size(); ++ti) {
            const SimResult &r =
                outcomes[si * traces.size() + ti].result;
            ac_pnc += r.acPnc;
            ac_pc += r.acPc;
            anc_pnc += r.ancPnc;
            anc_pc += r.ancPc;
            loads += r.classifiedLoads();
        }
        const double conf =
            static_cast<double>(ac_pnc + ac_pc + anc_pnc + anc_pc);
        const double all = static_cast<double>(loads);
        t.startRow();
        t.cell(spec.label);
        t.cellPct(ac_pnc / conf, 2);
        t.cellPct(ac_pc / conf, 2);
        t.cellPct(anc_pnc / conf, 2);
        t.cellPct(anc_pc / conf, 2);
        t.cellPct(anc_pc / all, 2);
        t.cellPct(ac_pnc / all, 2);
        jr.beginRow();
        jr.value("config", spec.label);
        jr.value("ac_pnc_frac_conf", ac_pnc / conf);
        jr.value("ac_pc_frac_conf", ac_pc / conf);
        jr.value("anc_pnc_frac_conf", anc_pnc / conf);
        jr.value("anc_pc_frac_conf", anc_pc / conf);
        jr.value("anc_pc_frac_all", anc_pc / all);
        jr.value("ac_pnc_frac_all", ac_pnc / all);
    }
    t.print(std::cout);
    jr.write();
    return 0;
}
