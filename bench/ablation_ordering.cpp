/**
 * @file
 * Ablation — ordering schemes vs the Store Barrier Cache baseline.
 *
 * The paper positions its collision predictors against Hesson et
 * al.'s Store Barrier Cache [Hess95]: "our mechanism is in a sense
 * similar to [Hess95] yet more refined, since it deals with specific
 * loads". This bench quantifies that: the barrier cache fences ALL
 * loads behind a flagged store, so it avoids re-executions at the
 * cost of many lost bypass opportunities, landing between Traditional
 * and the CHT-based schemes.
 */

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

int
main()
{
    printHeader("Ablation: Store Barrier Cache [Hess95] vs CHT",
                "barrier cache should land between Traditional and "
                "Inclusive");

    std::vector<TraceParams> traces;
    for (const auto g : {TraceGroup::SysmarkNT, TraceGroup::SpecInt95,
                         TraceGroup::Java}) {
        auto part = groupTraces(g, 2);
        traces.insert(traces.end(), part.begin(), part.end());
    }

    const std::vector<OrderingScheme> schemes = {
        OrderingScheme::Traditional,   OrderingScheme::StoreBarrier,
        OrderingScheme::StoreSets,     OrderingScheme::Opportunistic,
        OrderingScheme::Inclusive,     OrderingScheme::Exclusive,
        OrderingScheme::Perfect,
    };

    TextTable t({"trace", "StoreBarrier", "StoreSets", "Opportunistic",
                 "Inclusive", "Exclusive", "Excl+fwd", "Perfect"});
    std::vector<std::vector<double>> per_scheme(7);

    // One pool job per trace; each job runs the full scheme set plus
    // the forwarding variant over its own generated trace. Per-trace
    // slots are folded in trace order.
    struct Slot
    {
        std::vector<SimResult> results;
        SimResult fwd;
    };
    std::vector<Slot> slots(traces.size());
    parallelSweep(traces.size(), [&](std::size_t ti) {
        auto trace = TraceLibrary::make(traces[ti]);
        MachineConfig cfg;
        cfg.cht = paperCht();

        for (const auto s : schemes) {
            cfg.scheme = s;
            slots[ti].results.push_back(runSim(*trace, cfg));
        }
        // Exclusive with speculative value forwarding (section 2.1's
        // distance-pairing extension).
        cfg.scheme = OrderingScheme::Exclusive;
        cfg.exclusiveSpecForward = true;
        slots[ti].fwd = runSim(*trace, cfg);
    });

    for (std::size_t ti = 0; ti < traces.size(); ++ti) {
        const auto &tp = traces[ti];
        const std::vector<SimResult> &results = slots[ti].results;
        const SimResult &fwd = slots[ti].fwd;
        const SimResult &base = results[0];
        t.startRow();
        t.cell(tp.name);
        for (std::size_t i = 1; i < schemes.size(); ++i) {
            const double s = results[i].speedupOver(base);
            per_scheme[i < 6 ? i - 1 : 6].push_back(s);
            t.cell(s, 3);
            if (schemes[i] == OrderingScheme::Exclusive) {
                const double sf = fwd.speedupOver(base);
                per_scheme[5].push_back(sf);
                t.cell(sf, 3);
            }
        }
    }
    t.startRow();
    t.cell("avg");
    for (const auto &v : per_scheme)
        t.cell(mean(v), 3);
    t.print(std::cout);

    std::cout
        << "\nThe barrier cache fences every load behind a flagged "
           "store; store sets pair\nloads with their producer set "
           "(very few violations, conservative waits); the\nCHT "
           "delays only the loads that actually collide. The paper's "
           "cost claim:\na 4K-entry tagless CHT needs ~4 Kbit vs ~34 "
           "Kbit for these store sets while\nreaching higher speedup "
           "(section 1.1 related work).\n";
    return 0;
}
