/**
 * @file
 * Figure 11 — Speedup of Hit-Miss Prediction.
 *
 * Performance runs on the paper's highest-performing machine (4
 * general + 2 memory units, perfect disambiguation): speedup over the
 * no-HMP (always-predict-hit) baseline for the local, chooser,
 * local+timing and perfect predictors, on SpecInt95 and SysmarkNT.
 * Paper: perfect HMP ~6% average; local+timing ~2.5% (~45% of the
 * potential); correlation between statistical accuracy and speedup.
 */

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

int
main()
{
    printHeader("Figure 11: hit-miss prediction speedup",
                "perfect ~1.06 avg; local+timing ~45% of potential");

    const std::vector<std::pair<const char *, TraceGroup>> groups = {
        {"SpecInt95", TraceGroup::SpecInt95},
        {"SysmarkNT", TraceGroup::SysmarkNT},
    };
    const std::vector<HmpKind> kinds = {
        HmpKind::Local, HmpKind::Chooser, HmpKind::LocalTiming,
        HmpKind::Perfect,
    };

    TextTable t({"group", "local", "chooser", "local+timing",
                 "perfect"});
    JsonReport jr("fig11_hmp_speedup");
    std::vector<std::vector<double>> overall(kinds.size());

    for (const auto &[label, g] : groups) {
        const auto traces = groupTraces(g, 4);
        std::vector<std::vector<double>> per_kind(kinds.size());

        // One pool job per trace: the no-HMP baseline plus every
        // predictor kind over the same generated trace. Speedups
        // land in per-trace slots and are folded in trace order.
        std::vector<std::vector<double>> slots(traces.size());
        parallelSweep(traces.size(), [&](std::size_t ti) {
            auto trace = TraceLibrary::make(traces[ti]);

            MachineConfig cfg;
            cfg.scheme = OrderingScheme::Perfect;
            cfg.intUnits = 4;
            cfg.memUnits = 2;
            cfg.hmp = HmpKind::AlwaysHit;
            const SimResult base = runSim(*trace, cfg);

            for (std::size_t k = 0; k < kinds.size(); ++k) {
                cfg.hmp = kinds[k];
                const SimResult r = runSim(*trace, cfg);
                slots[ti].push_back(r.speedupOver(base));
            }
        });
        for (std::size_t ti = 0; ti < traces.size(); ++ti) {
            for (std::size_t k = 0; k < kinds.size(); ++k) {
                const double s = slots[ti][k];
                per_kind[k].push_back(s);
                overall[k].push_back(s);
            }
        }
        t.startRow();
        t.cell(label);
        for (const auto &v : per_kind)
            t.cell(mean(v), 3);
        jr.beginRow();
        jr.value("group", label);
        jr.value("local", mean(per_kind[0]));
        jr.value("chooser", mean(per_kind[1]));
        jr.value("local_timing", mean(per_kind[2]));
        jr.value("perfect", mean(per_kind[3]));
    }
    t.startRow();
    t.cell("Average");
    for (const auto &v : overall)
        t.cell(mean(v), 3);
    jr.beginRow();
    jr.value("group", "Average");
    jr.value("local", mean(overall[0]));
    jr.value("chooser", mean(overall[1]));
    jr.value("local_timing", mean(overall[2]));
    jr.value("perfect", mean(overall[3]));
    t.print(std::cout);
    jr.write();
    return 0;
}
