/**
 * @file
 * Ablation — scaling bank prediction beyond two banks.
 *
 * Section 2.3 proposes scaling binary bank prediction by predicting
 * each bank-ID bit independently with its own confidence ("if the
 * confidence level of a particular bit is low, the load will be sent
 * to both banks"), or by using a non-binary predictor such as the
 * address predictor. This bench evaluates both on 2, 4 and 8 banks,
 * statistically (rate/accuracy/metric) — the more banks, the harder
 * the per-bit scheme has to work for the same prediction rate.
 */

#include "core/analysis.hh"

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

int
main()
{
    printHeader("Ablation: bank prediction beyond two banks",
                "per-bit prediction rate drops with bank count; the "
                "address predictor scales natively");

    std::vector<TraceParams> traces;
    for (const auto g : {TraceGroup::SpecInt95, TraceGroup::SpecFP95}) {
        auto part = groupTraces(g, 3);
        traces.insert(traces.end(), part.begin(), part.end());
    }

    TextTable t({"banks", "predictor", "rate", "accuracy",
                 "metric(pen=2)"});
    const std::vector<unsigned> bank_counts = {2u, 4u, 8u};
    const std::vector<bool> addr_variants = {false, true};

    // Flatten the (banks × predictor × trace) analysis grid into
    // pool jobs; fold the slots in the original loop order.
    struct Cell
    {
        unsigned banks;
        bool use_addr;
        std::size_t ti;
    };
    std::vector<Cell> cells;
    for (const unsigned banks : bank_counts)
        for (const bool use_addr : addr_variants)
            for (std::size_t ti = 0; ti < traces.size(); ++ti)
                cells.push_back({banks, use_addr, ti});

    std::vector<BankStats> slots(cells.size());
    parallelSweep(cells.size(), [&](std::size_t idx) {
        const Cell &c = cells[idx];
        auto trace = TraceLibrary::make(traces[c.ti]);
        std::unique_ptr<BankPredictor> pred;
        if (c.use_addr) {
            pred = std::make_unique<AddressBankPredictor>(64, c.banks,
                                                          1024);
        } else {
            pred = makePerBitBankPredictor(c.banks);
        }
        slots[idx] = analyzeBank(*trace, *pred, 64, c.banks);
    });

    std::size_t idx = 0;
    for (const unsigned banks : bank_counts) {
        for (const bool use_addr : addr_variants) {
            BankStats agg;
            for (std::size_t ti = 0; ti < traces.size(); ++ti) {
                const BankStats &st = slots[idx++];
                agg.loads += st.loads;
                agg.predicted += st.predicted;
                agg.correct += st.correct;
                agg.wrong += st.wrong;
            }
            t.startRow();
            t.cell(strprintf("%u", banks));
            t.cell(use_addr ? "addr" : "per-bit(A)");
            t.cellPct(agg.rate(), 1);
            t.cellPct(agg.accuracy(), 2);
            t.cell(agg.metric(2.0), 3);
        }
    }
    t.print(std::cout);
    return 0;
}
