/**
 * @file
 * Figure 7 — Speedup vs Memory Ordering Scheme.
 *
 * The eight SysmarkNT traces (cd ex fl pd pm pp wd wp) under the six
 * ordering schemes, speedup relative to Traditional, using the
 * paper's 2K-entry 4-way 2-bit Full CHT. Paper NT averages:
 * Postponing ~1.06, Opportunistic ~1.09, Inclusive ~1.14,
 * Exclusive ~1.16, Perfect ~1.17.
 */

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

int
main()
{
    printHeader("Figure 7: speedup vs memory ordering scheme",
                "NT avg: Post 1.06 / Opp 1.09 / Incl 1.14 / "
                "Excl 1.16 / Perfect 1.17");

    const auto traces =
        TraceLibrary::group(TraceGroup::SysmarkNT, traceLen());

    MachineConfig cfg;
    cfg.cht = paperCht();

    TextTable t({"trace", "Postponing", "Opportunistic", "Inclusive",
                 "Exclusive", "Perfect"});
    JsonReport jr("fig07_ordering_speedup");
    std::vector<std::vector<double>> per_scheme(5);

    // One pool job per trace (each job runs all six schemes; the
    // nested runAllSchemes sweep runs inline inside the job); the
    // per-trace slots are then aggregated in trace order.
    std::vector<std::vector<SimResult>> all(traces.size());
    parallelSweep(traces.size(), [&](std::size_t ti) {
        auto trace = TraceLibrary::make(traces[ti]);
        all[ti] = runAllSchemes(*trace, cfg);
    });

    for (std::size_t ti = 0; ti < traces.size(); ++ti) {
        const auto &tp = traces[ti];
        const auto &results = all[ti];
        const SimResult &base = results[0]; // Traditional
        // runAllSchemes order: Trad, Opp, Post, Incl, Excl, Perfect.
        const double opp = results[1].speedupOver(base);
        const double post = results[2].speedupOver(base);
        const double incl = results[3].speedupOver(base);
        const double excl = results[4].speedupOver(base);
        const double perf = results[5].speedupOver(base);
        per_scheme[0].push_back(post);
        per_scheme[1].push_back(opp);
        per_scheme[2].push_back(incl);
        per_scheme[3].push_back(excl);
        per_scheme[4].push_back(perf);
        t.startRow();
        t.cell(tp.name);
        t.cell(post, 3);
        t.cell(opp, 3);
        t.cell(incl, 3);
        t.cell(excl, 3);
        t.cell(perf, 3);
        jr.beginRow();
        jr.value("trace", tp.name);
        jr.value("postponing", post);
        jr.value("opportunistic", opp);
        jr.value("inclusive", incl);
        jr.value("exclusive", excl);
        jr.value("perfect", perf);
    }
    t.startRow();
    t.cell("NT_avg");
    for (const auto &v : per_scheme)
        t.cell(mean(v), 3);
    jr.beginRow();
    jr.value("trace", "NT_avg");
    jr.value("postponing", mean(per_scheme[0]));
    jr.value("opportunistic", mean(per_scheme[1]));
    jr.value("inclusive", mean(per_scheme[2]));
    jr.value("exclusive", mean(per_scheme[3]));
    jr.value("perfect", mean(per_scheme[4]));
    t.print(std::cout);
    jr.write();
    return 0;
}
