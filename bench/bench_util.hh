/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench accepts two environment knobs:
 *   LRS_TRACE_LEN   uops per trace (default 120000; the paper used 30M
 *                   IA-32 instructions per trace — scale up for
 *                   higher-fidelity runs)
 *   LRS_ALL_TRACES  set to 1 to run every trace of each group instead
 *                   of the default subset used to keep bench time low
 */

#ifndef LRS_BENCH_UTIL_HH
#define LRS_BENCH_UTIL_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "core/runner.hh"
#include "trace/library.hh"

namespace lrs::benchutil
{

inline std::uint64_t
traceLen(std::uint64_t fallback = 120000)
{
    return envU64("LRS_TRACE_LEN", fallback);
}

/** Trace parameter sets for a group, optionally capped. */
inline std::vector<TraceParams>
groupTraces(TraceGroup g, std::size_t cap = SIZE_MAX)
{
    auto all = TraceLibrary::group(g, traceLen());
    if (envU64("LRS_ALL_TRACES", 0) == 0 && all.size() > cap)
        all.resize(cap);
    return all;
}

/** The paper's baseline CHT: 2K-entry 4-way Full CHT, 2-bit counters,
 *  allocated on first collision, with distance tracking for the
 *  exclusive scheme (section 4.1). */
inline ChtParams
paperCht()
{
    ChtParams c;
    c.kind = ChtKind::Full;
    c.entries = 2048;
    c.assoc = 4;
    c.counterBits = 2;
    c.trackDistance = true;
    return c;
}

/** Arithmetic mean (the paper's per-group averages are arithmetic). */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

inline void
printHeader(const std::string &title, const std::string &paper_note)
{
    std::cout << "=== " << title << " ===\n";
    std::cout << "paper reference: " << paper_note << "\n";
    std::cout << "trace length: " << traceLen() << " uops/trace\n\n";
}

} // namespace lrs::benchutil

#endif // LRS_BENCH_UTIL_HH
