/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench accepts two environment knobs:
 *   LRS_TRACE_LEN   uops per trace (default 120000; the paper used 30M
 *                   IA-32 instructions per trace — scale up for
 *                   higher-fidelity runs)
 *   LRS_ALL_TRACES  set to 1 to run every trace of each group instead
 *                   of the default subset used to keep bench time low
 */

#ifndef LRS_BENCH_UTIL_HH
#define LRS_BENCH_UTIL_HH

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "common/buildinfo.hh"
#include "common/io.hh"
#include "common/json.hh"
#include "common/stats.hh"
#include "core/parallel.hh"
#include "core/runner.hh"
#include "trace/library.hh"

namespace lrs::benchutil
{

inline std::uint64_t
traceLen(std::uint64_t fallback = 120000)
{
    return envU64("LRS_TRACE_LEN", fallback);
}

/** Trace parameter sets for a group, optionally capped. */
inline std::vector<TraceParams>
groupTraces(TraceGroup g, std::size_t cap = SIZE_MAX)
{
    auto all = TraceLibrary::group(g, traceLen());
    if (envU64("LRS_ALL_TRACES", 0) == 0 && all.size() > cap)
        all.resize(cap);
    return all;
}

/** The paper's baseline CHT: 2K-entry 4-way Full CHT, 2-bit counters,
 *  allocated on first collision, with distance tracking for the
 *  exclusive scheme (section 4.1). */
inline ChtParams
paperCht()
{
    ChtParams c;
    c.kind = ChtKind::Full;
    c.entries = 2048;
    c.assoc = 4;
    c.counterBits = 2;
    c.trackDistance = true;
    return c;
}

/** Arithmetic mean (the paper's per-group averages are arithmetic). */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

inline void
printHeader(const std::string &title, const std::string &paper_note)
{
    std::cout << "=== " << title << " ===\n";
    std::cout << "paper reference: " << paper_note << "\n";
    std::cout << "trace length: " << traceLen() << " uops/trace\n\n";
}

/**
 * Machine-readable companion to the text tables: each bench collects
 * its swept rows ({"label": value, metric: value, ...}) and writes
 *
 *   {"bench": <name>, "trace_len": N, "rows": [...]}
 *
 * to $LRS_BENCH_JSON if set, else ./bench_results.json. The row flow
 * mirrors TextTable (beginRow() then value() per column), so a bench
 * fills both side by side; addRow() appends a complete row in one
 * call. tools/bench_to_json.sh aggregates the per-bench files into
 * the repo-level BENCH_<pr>.json trajectory.
 *
 * Thread-safety: every member locks an internal mutex, so pool
 * workers may append rows concurrently — though for deterministic
 * row order the benches aggregate serially, in job-id order, after
 * the pool barrier (docs/PARALLELISM.md). write() builds the file
 * next to the target and atomically rename()s it into place, so two
 * processes racing on the same $LRS_BENCH_JSON path end with one
 * intact document instead of an interleaved clobber.
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string bench) : bench_(std::move(bench))
    {
        rows_ = json::Value::array();
    }

    /** Start a new row (finishing the previous one, if any). */
    void
    beginRow()
    {
        std::lock_guard<std::mutex> lk(m_);
        flushRow();
        cur_ = json::Value::object();
        open_ = true;
    }

    template <typename T>
    void
    value(const std::string &key, T v)
    {
        std::lock_guard<std::mutex> lk(m_);
        if (!open_) {
            flushRow();
            cur_ = json::Value::object();
            open_ = true;
        }
        cur_.set(key, json::Value(v));
    }

    /** Append a complete row (e.g. one job's SimResult::toJson()). */
    void
    addRow(json::Value row)
    {
        std::lock_guard<std::mutex> lk(m_);
        flushRow();
        rows_.push(std::move(row));
    }

    /** Write the report atomically; returns the path written. */
    std::string
    write()
    {
        std::lock_guard<std::mutex> lk(m_);
        flushRow();
        json::Value doc = json::Value::object();
        // Provenance leads the document (same contract as lrs_sim
        // --json): consumers that byte-compare bench output across
        // builds strip this first block (tools/check_overhead.sh).
        doc.set("build", buildProvenanceJson());
        doc.set("bench", bench_);
        doc.set("trace_len", traceLen());
        doc.set("rows", std::move(rows_));
        rows_ = json::Value::array();

        const char *env = std::getenv("LRS_BENCH_JSON");
        const std::string path =
            env && *env ? env : "bench_results.json";
        std::error_code ec;
        if (std::filesystem::is_directory(path, ec))
            throw std::runtime_error(
                "JsonReport: LRS_BENCH_JSON points at a directory: " +
                path);

        // Unique temp name per process AND per call, so concurrent
        // writers (two benches, two threads) never share a temp file;
        // rename() then publishes the finished document atomically.
        static std::atomic<unsigned> counter{0};
        const std::string tmp =
            path + ".tmp." + std::to_string(::getpid()) + "." +
            std::to_string(counter.fetch_add(1));
        // writeFully + fsync before publishing: EINTR and short
        // writes are continued, and rename() orders the directory
        // entry but not the data blocks, so without the fsync a
        // crash right after the rename could leave an empty file
        // under the final name — the journal-grade durability rule
        // (docs/ROBUSTNESS.md) applied to reports.
        const int fd = ::open(tmp.c_str(),
                              O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC,
                              0644);
        if (fd < 0)
            throw std::runtime_error("JsonReport: cannot open " + tmp);
        const std::string text = doc.dump(2);
        const bool wrote = writeFully(fd, text) && ::fsync(fd) == 0;
        if (::close(fd) != 0 || !wrote) {
            std::filesystem::remove(tmp, ec);
            throw std::runtime_error("JsonReport: write failed: " +
                                     tmp);
        }
        std::filesystem::rename(tmp, path, ec);
        if (ec) {
            std::filesystem::remove(tmp, ec);
            throw std::runtime_error("JsonReport: cannot rename " +
                                     tmp + " -> " + path);
        }
        return path;
    }

  private:
    /** Caller must hold m_. */
    void
    flushRow()
    {
        if (open_)
            rows_.push(std::move(cur_));
        open_ = false;
    }

    std::mutex m_;
    std::string bench_;
    json::Value rows_;
    json::Value cur_;
    bool open_ = false;
};

/**
 * Sweep-grid helper: run fn(0)..fn(n-1) on the shared SimJobPool
 * (LRS_JOBS workers). fn must write into slot i only; aggregate the
 * slots serially afterwards, in index order, so tables and JSON come
 * out byte-identical to a serial run — the pattern every converted
 * bench follows (docs/PARALLELISM.md).
 */
inline void
parallelSweep(std::size_t n, const std::function<void(std::size_t)> &fn)
{
    SimJobPool::shared().forEach(n, fn);
}

} // namespace lrs::benchutil

#endif // LRS_BENCH_UTIL_HH
