/**
 * @file
 * Figure 6 — Opportunities vs Scheduling-Window Size.
 *
 * SysmarkNT traces, scheduling window swept over 8/16/32/64/128
 * entries. Paper: growing the window steadily increases the AC share
 * while the no-conflict share shrinks, so bigger windows make good
 * memory ordering schemes more valuable.
 */

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

int
main()
{
    printHeader("Figure 6: classification vs scheduling-window size",
                "NT traces; AC grows and no-conflict shrinks as the "
                "window grows from 8 to 128");

    const std::vector<int> windows = {8, 16, 32, 64, 128};
    const auto traces = groupTraces(TraceGroup::SysmarkNT, 4);

    TextTable t({"window", "AC", "ANC", "no-conflict"});
    JsonReport jr("fig06_window_sweep");

    // Submit the full (window × trace) grid, then aggregate the
    // slots per window in the original loop order.
    std::vector<SimJob> jobs;
    for (const int w : windows) {
        MachineConfig cfg;
        cfg.scheme = OrderingScheme::Traditional;
        cfg.schedWindow = w;
        for (const auto &tp : traces)
            jobs.push_back({tp, cfg, {}});
    }
    const auto outcomes = SimJobPool::shared().runJobs(jobs);

    for (std::size_t wi = 0; wi < windows.size(); ++wi) {
        const int w = windows[wi];
        std::uint64_t ac = 0, anc = 0, nc = 0;
        for (std::size_t ti = 0; ti < traces.size(); ++ti) {
            const SimResult &r =
                outcomes[wi * traces.size() + ti].result;
            ac += r.actuallyColliding();
            anc += r.ancPnc + r.ancPc;
            nc += r.notConflicting;
        }
        const double n = static_cast<double>(ac + anc + nc);
        t.startRow();
        t.cell(strprintf("%d", w));
        t.cellPct(ac / n, 1);
        t.cellPct(anc / n, 1);
        t.cellPct(nc / n, 1);
        jr.beginRow();
        jr.value("window", w);
        jr.value("ac_frac", ac / n);
        jr.value("anc_frac", anc / n);
        jr.value("no_conflict_frac", nc / n);
    }
    t.print(std::cout);
    jr.write();
    return 0;
}
