/**
 * @file
 * Figure 10 — Hit-Miss Predictor statistical performance.
 *
 * Statistical runs (no effect on scheduling) of the local-only and
 * hybrid-chooser hit-miss predictors over SpecFP95, SpecInt95,
 * SysmarkNT and Other (Games+Java+TPC). Reported, as in the paper, as
 * a percentage of all loads: AH-PM (mispredicted hits, lower is
 * better), AM-PM (caught misses, higher is better) and total MISSES.
 * Paper: local-only catches 34%-85% of misses (NT..FP) while
 * mispredicting 0.07%-0.32% of hits; the chooser cuts mispredictions
 * to 0.04%-0.2% while giving up little AM-PM; AM-PM : AH-PM >= 5:1.
 */

#include "core/analysis.hh"

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

namespace
{

struct GroupSpec
{
    const char *label;
    std::vector<TraceGroup> groups;
};

} // namespace

int
main()
{
    printHeader("Figure 10: hit-miss predictor performance",
                "local catches 34-85% of misses; chooser trades a "
                "little AM-PM for far fewer AH-PM");

    const std::vector<GroupSpec> groups = {
        {"SpecFP", {TraceGroup::SpecFP95}},
        {"SpecINT", {TraceGroup::SpecInt95}},
        {"SysmarkNT", {TraceGroup::SysmarkNT}},
        {"Others",
         {TraceGroup::Games, TraceGroup::Java, TraceGroup::TPC}},
    };

    TextTable t({"group", "predictor", "AH-PM", "AM-PM", "MISSES",
                 "coverage", "AMPM:AHPM"});
    JsonReport jr("fig10_hmp_stats");

    // Flatten the (group × predictor × trace) analysis grid into
    // pool jobs; aggregate the HmpStats slots in the original order.
    const std::vector<const char *> preds = {"local", "chooser"};
    std::vector<std::vector<TraceParams>> group_traces;
    for (const auto &gs : groups) {
        std::vector<TraceParams> traces;
        for (const auto g : gs.groups) {
            auto part = groupTraces(g, 3);
            traces.insert(traces.end(), part.begin(), part.end());
        }
        group_traces.push_back(std::move(traces));
    }

    struct Cell
    {
        std::size_t gi, pi, ti;
    };
    std::vector<Cell> cells;
    for (std::size_t gi = 0; gi < groups.size(); ++gi)
        for (std::size_t pi = 0; pi < preds.size(); ++pi)
            for (std::size_t ti = 0; ti < group_traces[gi].size();
                 ++ti)
                cells.push_back({gi, pi, ti});

    std::vector<HmpStats> slots(cells.size());
    parallelSweep(cells.size(), [&](std::size_t idx) {
        const Cell &c = cells[idx];
        auto trace = TraceLibrary::make(group_traces[c.gi][c.ti]);
        auto hmp = makeHmp(preds[c.pi]);
        slots[idx] = analyzeHitMiss(*trace, *hmp);
    });

    std::size_t idx = 0;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const auto &gs = groups[gi];
        const auto &traces = group_traces[gi];
        for (const char *which : preds) {
            HmpStats agg;
            for (std::size_t ti = 0; ti < traces.size(); ++ti) {
                const HmpStats &st = slots[idx++];
                agg.loads += st.loads;
                agg.misses += st.misses;
                agg.ahPh += st.ahPh;
                agg.ahPm += st.ahPm;
                agg.amPh += st.amPh;
                agg.amPm += st.amPm;
            }
            t.startRow();
            t.cell(gs.label);
            t.cell(which);
            t.cellPct(agg.falseMissFrac(), 2);
            t.cellPct(agg.caughtFrac(), 2);
            t.cellPct(agg.missRate(), 2);
            t.cellPct(agg.coverage(), 1);
            t.cell(agg.ahPm ? static_cast<double>(agg.amPm) /
                                  static_cast<double>(agg.ahPm)
                            : static_cast<double>(agg.amPm),
                   1);
            jr.beginRow();
            jr.value("group", gs.label);
            jr.value("predictor", which);
            jr.value("ah_pm_frac", agg.falseMissFrac());
            jr.value("am_pm_frac", agg.caughtFrac());
            jr.value("miss_rate", agg.missRate());
            jr.value("coverage", agg.coverage());
        }
    }
    t.print(std::cout);
    jr.write();
    return 0;
}
