/**
 * @file
 * Figure 10 — Hit-Miss Predictor statistical performance.
 *
 * Statistical runs (no effect on scheduling) of the local-only and
 * hybrid-chooser hit-miss predictors over SpecFP95, SpecInt95,
 * SysmarkNT and Other (Games+Java+TPC). Reported, as in the paper, as
 * a percentage of all loads: AH-PM (mispredicted hits, lower is
 * better), AM-PM (caught misses, higher is better) and total MISSES.
 * Paper: local-only catches 34%-85% of misses (NT..FP) while
 * mispredicting 0.07%-0.32% of hits; the chooser cuts mispredictions
 * to 0.04%-0.2% while giving up little AM-PM; AM-PM : AH-PM >= 5:1.
 */

#include "core/analysis.hh"

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

namespace
{

struct GroupSpec
{
    const char *label;
    std::vector<TraceGroup> groups;
};

} // namespace

int
main()
{
    printHeader("Figure 10: hit-miss predictor performance",
                "local catches 34-85% of misses; chooser trades a "
                "little AM-PM for far fewer AH-PM");

    const std::vector<GroupSpec> groups = {
        {"SpecFP", {TraceGroup::SpecFP95}},
        {"SpecINT", {TraceGroup::SpecInt95}},
        {"SysmarkNT", {TraceGroup::SysmarkNT}},
        {"Others",
         {TraceGroup::Games, TraceGroup::Java, TraceGroup::TPC}},
    };

    TextTable t({"group", "predictor", "AH-PM", "AM-PM", "MISSES",
                 "coverage", "AMPM:AHPM"});
    JsonReport jr("fig10_hmp_stats");
    for (const auto &gs : groups) {
        std::vector<TraceParams> traces;
        for (const auto g : gs.groups) {
            auto part = groupTraces(g, 3);
            traces.insert(traces.end(), part.begin(), part.end());
        }
        for (const char *which : {"local", "chooser"}) {
            HmpStats agg;
            for (const auto &tp : traces) {
                auto trace = TraceLibrary::make(tp);
                auto hmp = makeHmp(which);
                const HmpStats st = analyzeHitMiss(*trace, *hmp);
                agg.loads += st.loads;
                agg.misses += st.misses;
                agg.ahPh += st.ahPh;
                agg.ahPm += st.ahPm;
                agg.amPh += st.amPh;
                agg.amPm += st.amPm;
            }
            t.startRow();
            t.cell(gs.label);
            t.cell(which);
            t.cellPct(agg.falseMissFrac(), 2);
            t.cellPct(agg.caughtFrac(), 2);
            t.cellPct(agg.missRate(), 2);
            t.cellPct(agg.coverage(), 1);
            t.cell(agg.ahPm ? static_cast<double>(agg.amPm) /
                                  static_cast<double>(agg.ahPm)
                            : static_cast<double>(agg.amPm),
                   1);
            jr.beginRow();
            jr.value("group", gs.label);
            jr.value("predictor", which);
            jr.value("ah_pm_frac", agg.falseMissFrac());
            jr.value("am_pm_frac", agg.caughtFrac());
            jr.value("miss_rate", agg.missRate());
            jr.value("coverage", agg.coverage());
        }
    }
    t.print(std::cout);
    jr.write();
    return 0;
}
