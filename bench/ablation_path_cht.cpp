/**
 * @file
 * Ablation — path-indexed collision hints.
 *
 * Section 2.1 observes that "storing disambiguation hints within the
 * trace cache may also improve the disambiguation quality by allowing
 * different behaviors for the same load instruction based on
 * execution path". This bench compares a plain PC-indexed Full CHT
 * against the same table with branch-path bits folded into its index,
 * on traces containing path-correlated colliders (global sites whose
 * store phase is decided by a preceding branch).
 */

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

int
main()
{
    printHeader("Ablation: path-indexed CHT (trace-cache hints)",
                "finding: naive path hashing loses to per-path cold "
                "starts; see the note below");

    std::vector<TraceParams> traces;
    for (const auto g : {TraceGroup::SysmarkNT, TraceGroup::Java}) {
        auto part = groupTraces(g, 3);
        traces.insert(traces.end(), part.begin(), part.end());
    }
    // Strengthen the path-correlated population so the effect is
    // measurable at bench trace lengths.
    for (auto &tp : traces)
        tp.pathCorrGlobalFrac = 0.5;

    TextTable t({"entries", "pathBits", "speedup", "AC-PNC%",
                 "ANC-PC%", "penalized/kload"});
    const std::pair<std::size_t, unsigned> sweep[] = {
        {2048, 0},  {2048, 2},  {2048, 4},
        {32768, 0}, {32768, 2}, {32768, 4},
    };
    // One pool job per (sweep point × trace): baseline plus variant
    // over the same generated trace; fold slots in the original
    // loop order.
    const std::size_t n_sweep = std::size(sweep);
    struct Slot
    {
        SimResult base, r;
    };
    std::vector<Slot> slots(n_sweep * traces.size());
    parallelSweep(slots.size(), [&](std::size_t idx) {
        const auto &[entries, path_bits] = sweep[idx / traces.size()];
        const auto &tp = traces[idx % traces.size()];
        auto trace = TraceLibrary::make(tp);
        MachineConfig cfg;
        cfg.scheme = OrderingScheme::Traditional;
        slots[idx].base = runSim(*trace, cfg);

        cfg.scheme = OrderingScheme::Exclusive;
        cfg.cht = paperCht();
        cfg.cht.entries = entries;
        cfg.cht.pathBits = path_bits;
        slots[idx].r = runSim(*trace, cfg);
    });

    for (std::size_t si = 0; si < n_sweep; ++si) {
        const auto &[entries, path_bits] = sweep[si];
        double speedup = 0.0;
        std::uint64_t ac_pnc = 0, anc_pc = 0, conf = 0, pen = 0,
                      loads = 0;
        for (std::size_t ti = 0; ti < traces.size(); ++ti) {
            const Slot &s = slots[si * traces.size() + ti];
            const SimResult &r = s.r;
            speedup += r.speedupOver(s.base);
            ac_pnc += r.acPnc;
            anc_pc += r.ancPc;
            conf += r.conflicting();
            pen += r.collisionPenalties;
            loads += r.loads;
        }
        t.startRow();
        t.cell(strprintf("%zu", entries));
        t.cell(strprintf("%u", path_bits));
        t.cell(speedup / static_cast<double>(traces.size()), 3);
        t.cellPct(conf ? static_cast<double>(ac_pnc) / conf : 0, 2);
        t.cellPct(conf ? static_cast<double>(anc_pc) / conf : 0, 2);
        t.cell(loads ? 1000.0 * pen / loads : 0, 1);
    }
    t.print(std::cout);

    std::cout
        << "\nFinding: folding raw path bits into the CHT index HURTS "
           "even at 16x capacity.\nEach (pc, path) variant must observe "
           "its own first collision before predicting,\nand call-heavy "
           "code has many live paths per load, so the cold-start AC-PNC "
           "cost\noutweighs the correlation gain on the path-decided "
           "colliders. This supports the\npaper's formulation: keep "
           "path-sensitive hints in the trace cache, where entries\n"
           "are already per-path and carry no extra cold-start cost "
           "(section 2.1).\n";
    return 0;
}
