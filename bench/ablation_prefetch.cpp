/**
 * @file
 * Ablation — stride prefetching off the load-address predictor.
 *
 * Section 2.1 notes the Full CHT "is useful for maintaining
 * additional load related information such as data prefetch or value
 * prediction information", and section 2.2 that a correct address
 * prediction could "fetch the data ahead of time". This bench runs
 * the stride prefetch engine (degree sweep) over FP/INT/TPC traces:
 * regular (streaming) misses shrink, irregular (chase) ones do not.
 */

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

int
main()
{
    printHeader("Ablation: stride prefetch (address-predictor driven)",
                "regular miss streams shrink; irregular ones are "
                "unprefetchable");

    const std::vector<std::pair<const char *, TraceGroup>> groups = {
        {"SpecFP", TraceGroup::SpecFP95},
        {"SpecINT", TraceGroup::SpecInt95},
        {"TPC", TraceGroup::TPC},
    };

    TextTable t({"group", "degree", "miss rate", "speedup",
                 "prefetches/kload"});
    for (const auto &[label, g] : groups) {
        const auto traces = groupTraces(g, 3);
        for (const unsigned degree : {0u, 1u, 2u, 4u}) {
            double miss = 0.0, speedup = 0.0, pfk = 0.0;
            for (const auto &tp : traces) {
                auto trace = TraceLibrary::make(tp);
                MachineConfig cfg;
                cfg.scheme = OrderingScheme::Perfect;
                const auto base = runSim(*trace, cfg);
                cfg.stridePrefetch = degree > 0;
                cfg.prefetchDegree = degree;
                const auto r =
                    degree > 0 ? runSim(*trace, cfg) : base;
                miss += static_cast<double>(r.l1Misses) /
                        static_cast<double>(r.loads);
                speedup += r.speedupOver(base);
                pfk += 1000.0 * static_cast<double>(r.prefetches) /
                       static_cast<double>(r.loads);
            }
            const double n = static_cast<double>(traces.size());
            t.startRow();
            t.cell(label);
            t.cell(strprintf("%u", degree));
            t.cellPct(miss / n, 2);
            t.cell(speedup / n, 3);
            t.cell(pfk / n, 0);
        }
    }
    t.print(std::cout);
    return 0;
}
