/**
 * @file
 * Ablation — stride prefetching off the load-address predictor.
 *
 * Section 2.1 notes the Full CHT "is useful for maintaining
 * additional load related information such as data prefetch or value
 * prediction information", and section 2.2 that a correct address
 * prediction could "fetch the data ahead of time". This bench runs
 * the stride prefetch engine (degree sweep) over FP/INT/TPC traces:
 * regular (streaming) misses shrink, irregular (chase) ones do not.
 */

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

int
main()
{
    printHeader("Ablation: stride prefetch (address-predictor driven)",
                "regular miss streams shrink; irregular ones are "
                "unprefetchable");

    const std::vector<std::pair<const char *, TraceGroup>> groups = {
        {"SpecFP", TraceGroup::SpecFP95},
        {"SpecINT", TraceGroup::SpecInt95},
        {"TPC", TraceGroup::TPC},
    };

    TextTable t({"group", "degree", "miss rate", "speedup",
                 "prefetches/kload"});
    const std::vector<unsigned> degrees = {0u, 1u, 2u, 4u};

    // Flatten the (group × degree × trace) grid into pool jobs (each
    // runs baseline + prefetch variant); fold per (group, degree) in
    // the original order.
    struct Cell
    {
        TraceParams tp;
        unsigned degree;
    };
    struct Slot
    {
        SimResult base, r;
    };
    std::vector<Cell> cells;
    std::vector<std::size_t> trace_counts;
    for (const auto &[label, g] : groups) {
        const auto traces = groupTraces(g, 3);
        trace_counts.push_back(traces.size());
        for (const unsigned degree : degrees)
            for (const auto &tp : traces)
                cells.push_back({tp, degree});
    }
    std::vector<Slot> slots(cells.size());
    parallelSweep(cells.size(), [&](std::size_t idx) {
        const Cell &c = cells[idx];
        auto trace = TraceLibrary::make(c.tp);
        MachineConfig cfg;
        cfg.scheme = OrderingScheme::Perfect;
        slots[idx].base = runSim(*trace, cfg);
        cfg.stridePrefetch = c.degree > 0;
        cfg.prefetchDegree = c.degree;
        slots[idx].r =
            c.degree > 0 ? runSim(*trace, cfg) : slots[idx].base;
    });

    std::size_t idx = 0;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const auto &label = groups[gi].first;
        const std::size_t n_traces = trace_counts[gi];
        for (const unsigned degree : degrees) {
            double miss = 0.0, speedup = 0.0, pfk = 0.0;
            for (std::size_t ti = 0; ti < n_traces; ++ti) {
                const Slot &s = slots[idx++];
                const SimResult &r = s.r;
                miss += static_cast<double>(r.l1Misses) /
                        static_cast<double>(r.loads);
                speedup += r.speedupOver(s.base);
                pfk += 1000.0 * static_cast<double>(r.prefetches) /
                       static_cast<double>(r.loads);
            }
            const double n = static_cast<double>(n_traces);
            t.startRow();
            t.cell(label);
            t.cell(strprintf("%u", degree));
            t.cellPct(miss / n, 2);
            t.cell(speedup / n, 3);
            t.cell(pfk / n, 0);
        }
    }
    t.print(std::cout);
    return 0;
}
