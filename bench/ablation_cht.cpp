/**
 * @file
 * Ablation — CHT design choices the paper calls out.
 *
 * Sweeps (on the inclusive scheme): counter width (sticky / 1-bit /
 * 2-bit / 3-bit), cyclic clearing of sticky tables ([Chry98]-style,
 * section 2.1 note), and associativity. Reports speedup over
 * Traditional plus the misprediction mix that explains it.
 */

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

namespace
{

struct Variant
{
    std::string label;
    ChtParams cht;
};

std::vector<Variant>
variants()
{
    std::vector<Variant> out;

    auto base = [] {
        ChtParams p;
        p.kind = ChtKind::Full;
        p.entries = 2048;
        p.assoc = 4;
        p.trackDistance = true;
        return p;
    };

    {
        Variant v{"sticky", base()};
        v.cht.sticky = true;
        v.cht.counterBits = 1;
        out.push_back(v);
    }
    {
        Variant v{"sticky+clear8k", base()};
        v.cht.sticky = true;
        v.cht.counterBits = 1;
        v.cht.clearInterval = 8192;
        out.push_back(v);
    }
    for (const unsigned bits : {1u, 2u, 3u}) {
        Variant v{strprintf("%u-bit counter", bits), base()};
        v.cht.counterBits = bits;
        out.push_back(v);
    }
    for (const unsigned assoc : {1u, 2u, 8u}) {
        Variant v{strprintf("2-bit, %u-way", assoc), base()};
        v.cht.counterBits = 2;
        v.cht.assoc = assoc;
        out.push_back(v);
    }
    return out;
}

} // namespace

int
main()
{
    printHeader("Ablation: CHT counter/clearing/associativity",
                "sticky minimises AC-PNC; counters track behaviour "
                "changes; clearing rescues sticky tables");

    const auto traces = groupTraces(TraceGroup::SysmarkNT, 3);

    TextTable t({"variant", "speedup", "AC-PNC%", "ANC-PC%",
                 "penalized/kload"});

    // One pool job per (variant × trace): the Traditional baseline
    // plus the variant run over the same generated trace. Slots are
    // folded per variant in the original loop order.
    const auto vs = variants();
    struct Slot
    {
        SimResult base, r;
    };
    std::vector<Slot> slots(vs.size() * traces.size());
    parallelSweep(slots.size(), [&](std::size_t idx) {
        const auto &v = vs[idx / traces.size()];
        const auto &tp = traces[idx % traces.size()];
        auto trace = TraceLibrary::make(tp);
        MachineConfig cfg;
        cfg.scheme = OrderingScheme::Traditional;
        slots[idx].base = runSim(*trace, cfg);
        cfg.scheme = OrderingScheme::Inclusive;
        cfg.cht = v.cht;
        slots[idx].r = runSim(*trace, cfg);
    });

    for (std::size_t vi = 0; vi < vs.size(); ++vi) {
        const auto &v = vs[vi];
        double speedup = 0.0;
        std::uint64_t ac_pnc = 0, anc_pc = 0, conf = 0, pen = 0,
                      loads = 0;
        for (std::size_t ti = 0; ti < traces.size(); ++ti) {
            const Slot &s = slots[vi * traces.size() + ti];
            const SimResult &r = s.r;
            speedup += r.speedupOver(s.base);
            ac_pnc += r.acPnc;
            anc_pc += r.ancPc;
            conf += r.conflicting();
            pen += r.collisionPenalties;
            loads += r.loads;
        }
        t.startRow();
        t.cell(v.label);
        t.cell(speedup / static_cast<double>(traces.size()), 3);
        t.cellPct(conf ? static_cast<double>(ac_pnc) / conf : 0, 2);
        t.cellPct(conf ? static_cast<double>(anc_pc) / conf : 0, 2);
        t.cell(loads ? 1000.0 * pen / loads : 0, 1);
    }
    t.print(std::cout);
    return 0;
}
