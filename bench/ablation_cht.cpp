/**
 * @file
 * Ablation — CHT design choices the paper calls out.
 *
 * Sweeps (on the inclusive scheme): counter width (sticky / 1-bit /
 * 2-bit / 3-bit), cyclic clearing of sticky tables ([Chry98]-style,
 * section 2.1 note), and associativity. Reports speedup over
 * Traditional plus the misprediction mix that explains it.
 */

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

namespace
{

struct Variant
{
    std::string label;
    ChtParams cht;
};

std::vector<Variant>
variants()
{
    std::vector<Variant> out;

    auto base = [] {
        ChtParams p;
        p.kind = ChtKind::Full;
        p.entries = 2048;
        p.assoc = 4;
        p.trackDistance = true;
        return p;
    };

    {
        Variant v{"sticky", base()};
        v.cht.sticky = true;
        v.cht.counterBits = 1;
        out.push_back(v);
    }
    {
        Variant v{"sticky+clear8k", base()};
        v.cht.sticky = true;
        v.cht.counterBits = 1;
        v.cht.clearInterval = 8192;
        out.push_back(v);
    }
    for (const unsigned bits : {1u, 2u, 3u}) {
        Variant v{strprintf("%u-bit counter", bits), base()};
        v.cht.counterBits = bits;
        out.push_back(v);
    }
    for (const unsigned assoc : {1u, 2u, 8u}) {
        Variant v{strprintf("2-bit, %u-way", assoc), base()};
        v.cht.counterBits = 2;
        v.cht.assoc = assoc;
        out.push_back(v);
    }
    return out;
}

} // namespace

int
main()
{
    printHeader("Ablation: CHT counter/clearing/associativity",
                "sticky minimises AC-PNC; counters track behaviour "
                "changes; clearing rescues sticky tables");

    const auto traces = groupTraces(TraceGroup::SysmarkNT, 3);

    TextTable t({"variant", "speedup", "AC-PNC%", "ANC-PC%",
                 "penalized/kload"});
    for (const auto &v : variants()) {
        double speedup = 0.0;
        std::uint64_t ac_pnc = 0, anc_pc = 0, conf = 0, pen = 0,
                      loads = 0;
        for (const auto &tp : traces) {
            auto trace = TraceLibrary::make(tp);
            MachineConfig cfg;
            cfg.scheme = OrderingScheme::Traditional;
            const auto base = runSim(*trace, cfg);
            cfg.scheme = OrderingScheme::Inclusive;
            cfg.cht = v.cht;
            const auto r = runSim(*trace, cfg);
            speedup += r.speedupOver(base);
            ac_pnc += r.acPnc;
            anc_pc += r.ancPc;
            conf += r.conflicting();
            pen += r.collisionPenalties;
            loads += r.loads;
        }
        t.startRow();
        t.cell(v.label);
        t.cell(speedup / static_cast<double>(traces.size()), 3);
        t.cellPct(conf ? static_cast<double>(ac_pnc) / conf : 0, 2);
        t.cellPct(conf ? static_cast<double>(anc_pc) / conf : 0, 2);
        t.cell(loads ? 1000.0 * pen / loads : 0, 1);
    }
    t.print(std::cout);
    return 0;
}
