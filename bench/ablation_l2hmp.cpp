/**
 * @file
 * Ablation — L2 hit-miss prediction for thread switching.
 *
 * Section 2.2: "the prediction may be used to govern a thread switch
 * if a load is predicted to miss the L2 cache, and suffer the large
 * latency of accessing main memory" [Tull95]. This bench evaluates
 * the paper's hit-miss predictors re-targeted at misses-to-memory and
 * estimates the cycles a switch-on-predicted-miss SMT policy would
 * reclaim, per group. TPC (working set far beyond the caches) is
 * where the policy should pay off; cache-resident groups should show
 * nothing worth switching for.
 */

#include "core/analysis.hh"

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

int
main()
{
    printHeader("Ablation: L2 hit-miss prediction (thread switch)",
                "switch-on-predicted-L2-miss pays on memory-bound "
                "groups only");

    const std::vector<std::pair<const char *, TraceGroup>> groups = {
        {"TPC", TraceGroup::TPC},
        {"SpecFP", TraceGroup::SpecFP95},
        {"SpecINT", TraceGroup::SpecInt95},
        {"NT", TraceGroup::SysmarkNT},
    };

    TextTable t({"group", "predictor", "mem-miss rate", "coverage",
                 "false-switch", "net cycles/kload"});
    for (const auto &[label, g] : groups) {
        for (const char *which : {"local", "chooser"}) {
            HmpStats agg;
            double net = 0.0;
            const auto traces = groupTraces(g, 3);
            for (const auto &tp : traces) {
                auto trace = TraceLibrary::make(tp);
                auto hmp = makeHmp(which);
                const auto est = estimateThreadSwitch(*trace, *hmp);
                agg.loads += est.stats.loads;
                agg.misses += est.stats.misses;
                agg.ahPm += est.stats.ahPm;
                agg.amPm += est.stats.amPm;
                agg.amPh += est.stats.amPh;
                agg.ahPh += est.stats.ahPh;
                net += est.netSavedPerKiloLoad();
            }
            t.startRow();
            t.cell(label);
            t.cell(which);
            t.cellPct(agg.missRate(), 2);
            t.cellPct(agg.coverage(), 1);
            t.cellPct(agg.falseMissFrac(), 2);
            t.cell(net / static_cast<double>(traces.size()), 1);
        }
    }
    t.print(std::cout);

    std::cout << "\n'net cycles/kload' assumes a 20-cycle thread-"
                 "switch overhead against the\nconfigured main-memory "
                 "latency; positive means switching on the "
                 "prediction\nbeats stalling.\n";
    return 0;
}
