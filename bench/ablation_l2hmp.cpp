/**
 * @file
 * Ablation — L2 hit-miss prediction for thread switching.
 *
 * Section 2.2: "the prediction may be used to govern a thread switch
 * if a load is predicted to miss the L2 cache, and suffer the large
 * latency of accessing main memory" [Tull95]. This bench evaluates
 * the paper's hit-miss predictors re-targeted at misses-to-memory and
 * estimates the cycles a switch-on-predicted-miss SMT policy would
 * reclaim, per group. TPC (working set far beyond the caches) is
 * where the policy should pay off; cache-resident groups should show
 * nothing worth switching for.
 */

#include "core/analysis.hh"

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

int
main()
{
    printHeader("Ablation: L2 hit-miss prediction (thread switch)",
                "switch-on-predicted-L2-miss pays on memory-bound "
                "groups only");

    const std::vector<std::pair<const char *, TraceGroup>> groups = {
        {"TPC", TraceGroup::TPC},
        {"SpecFP", TraceGroup::SpecFP95},
        {"SpecINT", TraceGroup::SpecInt95},
        {"NT", TraceGroup::SysmarkNT},
    };

    TextTable t({"group", "predictor", "mem-miss rate", "coverage",
                 "false-switch", "net cycles/kload"});
    const std::vector<const char *> preds = {"local", "chooser"};

    // Flatten the (group × predictor × trace) estimation grid into
    // pool jobs; fold the slots in the original loop order.
    struct Cell
    {
        TraceParams tp;
        const char *which;
    };
    std::vector<Cell> cells;
    std::vector<std::size_t> trace_counts;
    for (const auto &[label, g] : groups) {
        const auto traces = groupTraces(g, 3);
        trace_counts.push_back(traces.size());
        for (const char *which : preds)
            for (const auto &tp : traces)
                cells.push_back({tp, which});
    }
    std::vector<ThreadSwitchEstimate> slots(cells.size());
    parallelSweep(cells.size(), [&](std::size_t idx) {
        auto trace = TraceLibrary::make(cells[idx].tp);
        auto hmp = makeHmp(cells[idx].which);
        slots[idx] = estimateThreadSwitch(*trace, *hmp);
    });

    std::size_t idx = 0;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const auto &label = groups[gi].first;
        for (const char *which : preds) {
            HmpStats agg;
            double net = 0.0;
            const std::size_t n_traces = trace_counts[gi];
            for (std::size_t ti = 0; ti < n_traces; ++ti) {
                const auto &est = slots[idx++];
                agg.loads += est.stats.loads;
                agg.misses += est.stats.misses;
                agg.ahPm += est.stats.ahPm;
                agg.amPm += est.stats.amPm;
                agg.amPh += est.stats.amPh;
                agg.ahPh += est.stats.ahPh;
                net += est.netSavedPerKiloLoad();
            }
            t.startRow();
            t.cell(label);
            t.cell(which);
            t.cellPct(agg.missRate(), 2);
            t.cellPct(agg.coverage(), 1);
            t.cellPct(agg.falseMissFrac(), 2);
            t.cell(net / static_cast<double>(n_traces), 1);
        }
    }
    t.print(std::cout);

    std::cout << "\n'net cycles/kload' assumes a 20-cycle thread-"
                 "switch overhead against the\nconfigured main-memory "
                 "latency; positive means switching on the "
                 "prediction\nbeats stalling.\n";
    return 0;
}
