/**
 * @file
 * Figure 5 — Load Scheduling Classification.
 *
 * Distribution of dynamic loads into Actually-Colliding (AC),
 * Actually-Non-Colliding-but-conflicting (ANC) and No-conflict, per
 * trace group, on the base machine (32-entry scheduling window,
 * Traditional ordering). Paper: roughly 10% AC / 60% ANC / 30%
 * no-conflict, so 60-70% of loads can benefit from a collision
 * predictor.
 */

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

int
main()
{
    printHeader("Figure 5: load scheduling classification",
                "~10% AC, ~60% ANC, ~30% no-conflict at a 32-entry "
                "window");

    const std::vector<TraceGroup> groups = {
        TraceGroup::SpecInt95, TraceGroup::SysmarkNT,
        TraceGroup::Sysmark95, TraceGroup::Games,
        TraceGroup::Java,      TraceGroup::TPC,
    };

    MachineConfig cfg;
    cfg.scheme = OrderingScheme::Traditional;

    TextTable t({"group", "traces", "AC", "ANC", "no-conflict"});
    JsonReport jr("fig05_load_classification");

    // Flatten the (group × trace) grid into pool jobs; per-group
    // aggregation below walks the slots in the original order.
    std::vector<std::vector<TraceParams>> group_traces;
    std::vector<SimJob> jobs;
    std::vector<std::size_t> first; // job id of each group's first
    for (const auto g : groups) {
        first.push_back(jobs.size());
        group_traces.push_back(groupTraces(g, 4));
        for (const auto &tp : group_traces.back())
            jobs.push_back({tp, cfg, {}});
    }
    const auto outcomes = SimJobPool::shared().runJobs(jobs);

    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const auto g = groups[gi];
        const auto &traces = group_traces[gi];
        std::uint64_t ac = 0, anc = 0, nc = 0;
        for (std::size_t ti = 0; ti < traces.size(); ++ti) {
            const SimResult &r = outcomes[first[gi] + ti].result;
            ac += r.actuallyColliding();
            anc += r.ancPnc + r.ancPc;
            nc += r.notConflicting;
        }
        const double n = static_cast<double>(ac + anc + nc);
        t.startRow();
        t.cell(traceGroupName(g));
        t.cell(strprintf("%zu", traces.size()));
        t.cellPct(ac / n, 1);
        t.cellPct(anc / n, 1);
        t.cellPct(nc / n, 1);
        jr.beginRow();
        jr.value("group", traceGroupName(g));
        jr.value("traces", static_cast<std::uint64_t>(traces.size()));
        jr.value("ac_frac", ac / n);
        jr.value("anc_frac", anc / n);
        jr.value("no_conflict_frac", nc / n);
    }
    t.print(std::cout);
    jr.write();
    return 0;
}
