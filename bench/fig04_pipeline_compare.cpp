/**
 * @file
 * Figure 4 — Memory Pipeline Comparison (executed, not just drawn).
 *
 * The paper's Figure 4 contrasts four memory-pipeline organisations
 * structurally; this bench runs them: a truly multi-ported cache, a
 * conventional multi-banked cache (with and without predictor-assisted
 * scheduling), a dual-scheduled banked cache, and the sliced pipeline
 * driven by each bank predictor. Expectation from section 2.3: the
 * sliced pipe with an accurate predictor approaches ideal
 * multi-porting; the conventional pipe loses to bank conflicts plus
 * crossbar latency; dual scheduling removes conflicts but pays
 * scheduler latency.
 */

#include "bench_util.hh"

using namespace lrs;
using namespace lrs::benchutil;

namespace
{

struct ModeSpec
{
    const char *label;
    BankMode mode;
    BankPredKind pred;
};

} // namespace

int
main()
{
    printHeader("Figure 4 (executed): memory pipeline comparison",
                "sliced + accurate predictor ~= true multi-ported; "
                "conventional suffers conflicts");

    const std::vector<ModeSpec> modes = {
        {"true-multiported", BankMode::TrueMultiPorted,
         BankPredKind::None},
        {"conventional", BankMode::Conventional, BankPredKind::None},
        {"conventional+C", BankMode::Conventional, BankPredKind::C},
        {"dual-scheduled", BankMode::DualScheduled,
         BankPredKind::None},
        {"sliced+A", BankMode::Sliced, BankPredKind::A},
        {"sliced+C", BankMode::Sliced, BankPredKind::C},
        {"sliced+addr", BankMode::Sliced, BankPredKind::Addr},
    };

    std::vector<TraceParams> traces;
    for (const auto g : {TraceGroup::SpecInt95, TraceGroup::SpecFP95,
                         TraceGroup::SysmarkNT}) {
        auto part = groupTraces(g, 2);
        traces.insert(traces.end(), part.begin(), part.end());
    }

    TextTable t({"pipeline", "rel. perf", "conflicts/kload",
                 "mispred/kload", "replicated/kload"});
    JsonReport jr("fig04_pipeline_compare");
    std::vector<double> base_cycles;

    // The whole (mode × trace) grid runs on the pool; slots are
    // indexed by grid position so the serial aggregation below reads
    // them in the original loop order (byte-identical output).
    std::vector<SimResult> grid(modes.size() * traces.size());
    parallelSweep(grid.size(), [&](std::size_t idx) {
        const auto &ms = modes[idx / traces.size()];
        const auto &tp = traces[idx % traces.size()];
        auto trace = TraceLibrary::make(tp);
        MachineConfig cfg;
        cfg.scheme = OrderingScheme::Perfect;
        cfg.bankMode = ms.mode;
        cfg.bankPred = ms.pred;
        grid[idx] = runSim(*trace, cfg);
    });

    for (std::size_t m = 0; m < modes.size(); ++m) {
        const auto &ms = modes[m];
        double rel = 0.0;
        double conf = 0.0, mis = 0.0, rep = 0.0;
        std::size_t i = 0;
        for (std::size_t ti = 0; ti < traces.size(); ++ti) {
            const SimResult &r = grid[m * traces.size() + ti];
            if (ms.mode == BankMode::TrueMultiPorted)
                base_cycles.push_back(static_cast<double>(r.cycles));
            rel += base_cycles.at(i) / static_cast<double>(r.cycles);
            const double kloads =
                static_cast<double>(r.loads) / 1000.0;
            conf += r.bankConflicts / kloads;
            mis += r.bankMispredicts / kloads;
            rep += r.bankReplications / kloads;
            ++i;
        }
        const double n = static_cast<double>(traces.size());
        t.startRow();
        t.cell(ms.label);
        t.cell(rel / n, 3);
        t.cell(conf / n, 1);
        t.cell(mis / n, 1);
        t.cell(rep / n, 1);
        jr.beginRow();
        jr.value("pipeline", ms.label);
        jr.value("rel_perf", rel / n);
        jr.value("conflicts_per_kload", conf / n);
        jr.value("mispredicts_per_kload", mis / n);
        jr.value("replications_per_kload", rep / n);
    }
    t.print(std::cout);
    jr.write();
    return 0;
}
