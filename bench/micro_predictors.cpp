/**
 * @file
 * Microbenchmarks (google-benchmark) of the predictor and substrate
 * hot paths: per-lookup cost of each CHT organisation, the binary
 * predictors, the address predictor, cache access, trace generation
 * and a short end-to-end core run. These back the DESIGN.md cost
 * claims (e.g. the CHT being "much more cost effective" than
 * fully-associative pair tables is only credible if its lookup is
 * table-index cheap).
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "core/runner.hh"
#include "memory/cache.hh"
#include "predictors/addr_pred.hh"
#include "predictors/cht.hh"
#include "predictors/gshare.hh"
#include "predictors/gskew.hh"
#include "predictors/local.hh"
#include "memory/hierarchy.hh"
#include "memory/mob.hh"
#include "trace/library.hh"
#include "trace/serialize.hh"

#include <sstream>

using namespace lrs;

namespace
{

std::vector<Addr>
pcStream(std::size_t n, std::size_t uniq)
{
    Rng rng(42);
    std::vector<Addr> pcs(n);
    for (auto &p : pcs)
        p = 0x400000 + rng.below(uniq) * 16;
    return pcs;
}

void
BM_ChtPredictUpdate(benchmark::State &state)
{
    ChtParams p;
    p.kind = static_cast<ChtKind>(state.range(0));
    p.entries = 2048;
    p.counterBits = p.kind == ChtKind::Tagless ? 1 : 2;
    Cht cht(p);
    const auto pcs = pcStream(4096, 700);
    Rng rng(7);
    std::size_t i = 0;
    for (auto _ : state) {
        const Addr pc = pcs[i++ % pcs.size()];
        benchmark::DoNotOptimize(cht.predict(pc));
        cht.update(pc, rng.chance(0.1), 1 + rng.below(8));
    }
}

void
BM_Gshare(benchmark::State &state)
{
    GsharePredictor p(11);
    const auto pcs = pcStream(4096, 700);
    Rng rng(7);
    std::size_t i = 0;
    for (auto _ : state) {
        const Addr pc = pcs[i++ % pcs.size()];
        benchmark::DoNotOptimize(p.predict(pc));
        p.update(pc, rng.chance(0.5));
    }
}

void
BM_Local(benchmark::State &state)
{
    LocalPredictor p(2048, 8);
    const auto pcs = pcStream(4096, 700);
    Rng rng(7);
    std::size_t i = 0;
    for (auto _ : state) {
        const Addr pc = pcs[i++ % pcs.size()];
        benchmark::DoNotOptimize(p.predict(pc));
        p.update(pc, rng.chance(0.5));
    }
}

void
BM_Gskew(benchmark::State &state)
{
    GskewPredictor p(1024, 17);
    const auto pcs = pcStream(4096, 700);
    Rng rng(7);
    std::size_t i = 0;
    for (auto _ : state) {
        const Addr pc = pcs[i++ % pcs.size()];
        benchmark::DoNotOptimize(p.predict(pc));
        p.update(pc, rng.chance(0.5));
    }
}

void
BM_AddressPredictor(benchmark::State &state)
{
    LoadAddressPredictor p(1024);
    const auto pcs = pcStream(4096, 300);
    std::size_t i = 0;
    for (auto _ : state) {
        const Addr pc = pcs[i++ % pcs.size()];
        benchmark::DoNotOptimize(p.predict(pc));
        p.update(pc, 0x10000000 + i * 8);
    }
}

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache({"L1D", 16 * 1024, 4, 64, 5, 1});
    Rng rng(11);
    Cycle now = 0;
    for (auto _ : state) {
        const Addr a = rng.below(64 * 1024);
        auto r = cache.access(a, ++now);
        if (!r.present)
            cache.fill(a, now + 12);
        benchmark::DoNotOptimize(r);
    }
}

void
BM_TraceGeneration(benchmark::State &state)
{
    TraceParams p = TraceLibrary::byName("wd", 50000);
    for (auto _ : state) {
        auto t = TraceLibrary::make(p);
        benchmark::DoNotOptimize(t->size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 50000);
}

void
BM_CoreRun(benchmark::State &state)
{
    TraceParams p = TraceLibrary::byName("wd", 20000);
    auto trace = TraceLibrary::make(p);
    MachineConfig cfg;
    cfg.scheme = static_cast<OrderingScheme>(state.range(0));
    cfg.cht.trackDistance = true;
    for (auto _ : state) {
        const SimResult r = runSim(*trace, cfg);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 20000);
}

void
BM_MobQueries(benchmark::State &state)
{
    // A realistically full window: 24 stores, queries from a younger
    // load — the per-dispatch cost of the ordering checks.
    Mob mob;
    Rng rng(3);
    for (SeqNum s = 0; s < 24; ++s) {
        mob.insert(s * 4, 0x1000 + rng.below(64) * 8, 8);
        if (rng.chance(0.7))
            mob.staExecuted(s * 4, s);
        if (rng.chance(0.5))
            mob.stdExecuted(s * 4, s + 2);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(mob.anyUnknownAddrOlder(1000, 50));
        benchmark::DoNotOptimize(
            mob.youngestOverlapOlder(1000, 0x1100, 8));
        benchmark::DoNotOptimize(mob.allOlderComplete(1000, 50));
    }
}

void
BM_HierarchyAccess(benchmark::State &state)
{
    MemoryHierarchy h({});
    Rng rng(11);
    Cycle now = 0;
    for (auto _ : state) {
        // 90% hot region, 10% cold tail.
        const Addr a = rng.chance(0.9) ? rng.below(8 * 1024)
                                       : rng.below(1 << 22);
        benchmark::DoNotOptimize(h.access(a, ++now));
    }
}

void
BM_TraceSerialize(benchmark::State &state)
{
    auto t = TraceLibrary::make(TraceLibrary::byName("wd", 20000));
    for (auto _ : state) {
        std::stringstream ss;
        writeTrace(ss, *t);
        auto back = readTrace(ss);
        benchmark::DoNotOptimize(back->size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 20000);
}

} // namespace

BENCHMARK(BM_MobQueries);
BENCHMARK(BM_HierarchyAccess);
BENCHMARK(BM_TraceSerialize);
BENCHMARK(BM_ChtPredictUpdate)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(3)
    ->ArgName("kind");
BENCHMARK(BM_Gshare);
BENCHMARK(BM_Local);
BENCHMARK(BM_Gskew);
BENCHMARK(BM_AddressPredictor);
BENCHMARK(BM_CacheAccess);
BENCHMARK(BM_TraceGeneration);
BENCHMARK(BM_CoreRun)->Arg(0)->Arg(5)->ArgName("scheme");

BENCHMARK_MAIN();
